module discfs

go 1.24
