package discfs

import (
	"fmt"
	"time"

	"discfs/internal/core"
	"discfs/internal/nfs"
)

// A ServerOption configures NewServer.
type ServerOption func(*serverOptions)

type serverOptions struct {
	cfg     core.ServerConfig
	backend string
	sopts   []StoreOption
}

// WithBacking exports fs instead of a freshly built default store. Use
// OpenBackend or NewMemStore to construct one, or supply any vfs.FS
// implementation.
func WithBacking(fs FS) ServerOption {
	return func(o *serverOptions) { o.cfg.Backing = fs; o.backend = "" }
}

// WithBackend builds the backing store from the named registered backend
// (see RegisterBackend) configured by opts.
func WithBackend(name string, opts ...StoreOption) ServerOption {
	return func(o *serverOptions) { o.cfg.Backing = nil; o.backend = name; o.sopts = opts }
}

// WithPolicyText installs additional KeyNote policy verbatim
// (Authorizer: "POLICY" assertions) next to the root-of-trust policy.
func WithPolicyText(text string) ServerOption {
	return func(o *serverOptions) { o.cfg.PolicyText = text }
}

// WithAdmins grants the given principals the administrative procedures
// (revocation, credential listing) in addition to the server key itself.
func WithAdmins(admins ...Principal) ServerOption {
	return func(o *serverOptions) { o.cfg.Admins = append(o.cfg.Admins, admins...) }
}

// WithCacheSize bounds the policy decision cache; the paper used 128
// (the default). Negative disables caching.
func WithCacheSize(n int) ServerOption {
	return func(o *serverOptions) { o.cfg.CacheSize = n }
}

// WithCacheTTL bounds staleness of cached decisions under time-dependent
// policies (default one minute).
func WithCacheTTL(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.cfg.CacheTTL = d }
}

// WithAudit routes access decisions to log instead of a fresh in-memory
// audit log.
func WithAudit(log *AuditLog) ServerOption {
	return func(o *serverOptions) { o.cfg.Audit = log }
}

// WithServerWriteBehind enables server-side unstable writes (NFSv3
// semantics on this server's protocol): WRITE buffers into a per-file
// write-gathering queue and returns immediately, background committers
// coalesce adjacent 8 KiB blocks into large backing-store writes, and
// the COMMIT procedure — driven by the client's Sync/Close barrier — is
// the durability point, with a boot verifier so clients detect a
// restart that lost buffered writes and replay them.
//
// queueBlocks bounds the buffered dirty data in 8 KiB blocks (writers
// throttle beyond it; 0 means 1024, i.e. 8 MiB). committers sizes the
// background flush pool (0 means 2).
func WithServerWriteBehind(queueBlocks, committers int) ServerOption {
	return func(o *serverOptions) {
		o.cfg.WriteBehind = true
		o.cfg.WriteBehindQueue = queueBlocks
		o.cfg.Committers = committers
	}
}

// WithServerDedup stacks the content-addressed deduplicating store
// over the backing filesystem: file data is split into content-defined
// chunks (FastCDC rolling hash), indexed by SHA-256, and each unique
// chunk is stored exactly once — a WRITE whose chunks already exist
// becomes a pure index mutation. The layer sits under the
// write-gathering queue, so with WithServerWriteBehind the committers
// hand whole coalesced runs to the chunker off the acknowledgment
// path. A background sweeper reclaims chunks once no file references
// them. The average chunk size tracks the negotiated transfer size.
// Equivalent to choosing a "+dedup" backend variant with WithBackend.
func WithServerDedup() ServerOption {
	return func(o *serverOptions) { o.cfg.Dedup = true }
}

// WithServerMaxTransfer bounds the READ/WRITE payload the server grants
// during per-connection transfer-size negotiation, in bytes (clamped to
// [8 KiB, 1 MiB]; 0 — and the default — means DefaultMaxTransfer,
// 504 KiB — one 8 KiB block under the 512 KiB buffer-pool class, so a
// maximal record fits the class). Clients propose a size at attach
// (WithMaxTransfer) and the server clamps the proposal to this bound;
// the granted size is the payload of every READ/WRITE RPC on the
// connection and the write-gathering run size on the server. Setting
// 8192 pins v2-era behavior.
func WithServerMaxTransfer(n int) ServerOption {
	return func(o *serverOptions) { o.cfg.MaxTransfer = n }
}

// WithServerDirCursors bounds the server's directory-cursor cache: the
// LRU of listing snapshots that keeps paged READDIR/READDIRPLUS walks
// stable while other clients mutate the directory. Each live cursor
// pins one listing in memory; a walk whose cursor was evicted under
// pressure restarts transparently on the client. n <= 0 — and the
// default — means 256.
func WithServerDirCursors(n int) ServerOption {
	return func(o *serverOptions) { o.cfg.DirCursors = n }
}

// WithClock injects a clock for tests and benchmarks.
func WithClock(now func() time.Time) ServerOption {
	return func(o *serverOptions) { o.cfg.Now = now }
}

// Limits is one principal's admission budget: a sustained request rate
// (token bucket of the given burst) and an in-flight request cap. A
// zero field leaves that axis unlimited.
type Limits = core.Limits

// WithServerLimits applies per-principal admission control to every
// data-plane NFS request, keyed by the authenticated secure-channel
// principal: each principal gets its own token bucket (rps sustained,
// burst capacity; burst 0 defaults to rps) and in-flight cap. Requests
// over budget wait briefly, then fail with ErrThrottled — one hot
// client is pinned to its budget instead of starving the rest.
func WithServerLimits(rps float64, burst float64, inflight int) ServerOption {
	return func(o *serverOptions) {
		o.cfg.LimitDefault = Limits{RPS: rps, Burst: burst, InFlight: inflight}
	}
}

// WithServerLimitOverride assigns one principal its own limits in place
// of the WithServerLimits default (raise a trusted batch service, pin a
// noisy one). May be repeated.
func WithServerLimitOverride(p Principal, l Limits) ServerOption {
	return func(o *serverOptions) {
		if o.cfg.LimitOverrides == nil {
			o.cfg.LimitOverrides = make(map[Principal]Limits)
		}
		o.cfg.LimitOverrides[p] = l
	}
}

// WithServerLimitMaxWait bounds how long an over-budget request is
// delayed (shaped) before being rejected with ErrThrottled; 0 keeps
// the default (250ms).
func WithServerLimitMaxWait(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.cfg.LimitMaxWait = d }
}

// WithServerPeers joins this server to a federation revocation feed:
// every revocation applied here (locally by an admin, or learned from
// a peer) is pushed to each listed peer server, with anti-entropy on
// (re)connect so a peer that was down during the admin action converges
// before serving its next authenticated session. Each peer must accept
// this server's key as an administrator (federations either share the
// server key or cross-register keys with WithAdmins). An empty list
// disables pushing; pushes from peers are always accepted (admin-gated).
func WithServerPeers(addrs ...string) ServerOption {
	return func(o *serverOptions) { o.cfg.Peers = append(o.cfg.Peers, addrs...) }
}

// WithServerPeerSyncWait bounds how long the secure-channel handshake
// gate waits for the revocation feed to sync with unsynced peers before
// admitting a non-admin principal (default 2s). After a partition heals,
// the gate holds the rejoining server's first handshakes until it has
// pulled the log from its peers — so a principal revoked during the
// partition is refused before it is served a single operation. Peers
// that stay unreachable release the gate after one failed attempt
// (availability wins under partition). Negative disables the gate.
func WithServerPeerSyncWait(d time.Duration) ServerOption {
	return func(o *serverOptions) { o.cfg.PeerSyncWait = d }
}

// NewServer constructs a DisCFS server anchored on the administrator key
// serverKey, configured by functional options. With no options the
// server exports a fresh in-memory store (the "mem" backend):
//
//	srv, err := discfs.NewServer(adminKey,
//		discfs.WithBacking(store),
//		discfs.WithCacheSize(128),
//	)
func NewServer(serverKey *KeyPair, opts ...ServerOption) (*Server, error) {
	if serverKey == nil {
		return nil, fmt.Errorf("discfs: no server key")
	}
	o := serverOptions{cfg: core.ServerConfig{ServerKey: serverKey}}
	for _, opt := range opts {
		opt(&o)
	}
	if o.cfg.Backing == nil {
		name := o.backend
		if name == "" {
			name = DefaultBackend
		}
		backing, err := OpenBackend(name, o.sopts...)
		if err != nil {
			return nil, err
		}
		o.cfg.Backing = backing
	}
	return core.NewServer(o.cfg)
}

// NewServerFromConfig constructs a server from a v1-style positional
// configuration struct.
//
// Deprecated: use NewServer with functional options.
func NewServerFromConfig(cfg ServerConfig) (*Server, error) { return core.NewServer(cfg) }

// A ClientOption configures Dial's client-side data cache.
type ClientOption = core.ClientOption

// DefaultReadahead and DefaultWriteBehind are the data-cache defaults:
// blocks prefetched ahead of a sequential read stream, and dirty blocks
// buffered before writers are throttled.
const (
	DefaultReadahead   = core.DefaultReadahead
	DefaultWriteBehind = core.DefaultWriteBehind
)

// WithReadahead sets how many blocks (8 KiB each) the client prefetches
// ahead of a detected sequential read stream. n <= 0 disables
// readahead. The default is DefaultReadahead.
func WithReadahead(n int) ClientOption { return core.WithReadahead(n) }

// WithWriteBehind sets the write-behind window: how many dirty 8 KiB
// blocks the client buffers before throttling writers. Buffered writes
// flush in the background and their errors surface at File.Sync or
// File.Close — the NFS error barrier. The default is
// DefaultWriteBehind.
func WithWriteBehind(n int) ClientOption { return core.WithWriteBehind(n) }

// WithNoDataCache disables the client-side data cache: every File read
// and write becomes one synchronous NFS RPC and errors surface on the
// call that hit them. Use it for workloads that need strict read
// consistency with concurrent remote writers mid-open.
func WithNoDataCache() ClientOption { return core.WithNoDataCache() }

// WithMaxTransfer sets the READ/WRITE transfer size the client proposes
// when attaching, in bytes (clamped to [8 KiB, 1 MiB]; the default
// proposal is DefaultMaxTransfer, 504 KiB). The server grants at most
// its own bound (WithServerMaxTransfer); servers predating the
// negotiation grant the v2 baseline of 8 KiB. The granted size is the
// payload of every READ/WRITE RPC and the granule of the data cache.
func WithMaxTransfer(n int) ClientOption { return core.WithMaxTransfer(n) }

// WithNameCacheTTL sets how long the client trusts cached attributes,
// name lookups and negative lookups before revalidating with the server
// (the actimeo knob of kernel NFS clients; default 3 s). Shorter values
// see remote changes sooner at the cost of more metadata RPCs.
func WithNameCacheTTL(d time.Duration) ClientOption { return core.WithNameCacheTTL(d) }

// WithServers federates the namespace across additional servers: the
// dialed address is shard 0 (the primary, exporting the logical root)
// and each address here becomes the next shard. Partition the
// namespace with WithShardSubtree and WithGraft. The same identity and
// credential chain are presented to every shard — KeyNote credentials
// are self-certifying, so authority (and revocation) spans servers
// with no shared session state between them.
func WithServers(addrs ...string) ClientOption { return core.WithServers(addrs...) }

// WithShardSubtree spreads the children of one directory across all
// shards by consistent hashing of the child name. Every shard must
// export the same directory path; a child lives on the shard its name
// hashes to, and listing the directory merges all shards. With a
// single server this is the identity configuration and changes nothing
// on the wire.
func WithShardSubtree(path string) ClientOption { return core.WithShardSubtree(path) }

// WithGraft statically binds an absolute path to a shard, mount-style:
// the path resolves to that shard's exported root and everything
// beneath it lives there. The shard index counts the primary as 0 and
// the WithServers addresses as 1..N; grafting to 0 is rejected.
func WithGraft(path string, shard int) ClientOption { return core.WithGraft(path, shard) }

// DefaultMaxTransfer is the default negotiated transfer size (bytes).
const DefaultMaxTransfer = nfs.DefaultMaxTransfer

// A StoreOption configures the storage substrates built by NewMemStore,
// OpenBackend and LoadStore.
type StoreOption func(*StoreConfig)

// WithBlockSize sets the FFS block size (default 8192).
func WithBlockSize(n int) StoreOption {
	return func(c *StoreConfig) { c.BlockSize = n }
}

// WithNumBlocks sets the device capacity in blocks (default 1<<18).
func WithNumBlocks(n uint32) StoreOption {
	return func(c *StoreConfig) { c.NumBlocks = n }
}

// WithEncryption stacks CFS content/name encryption over the store,
// keyed by passphrase. Without it the CFS-NE layer is still stacked (the
// paper's configuration) so the code path matches the prototype.
func WithEncryption(passphrase string) StoreOption {
	return func(c *StoreConfig) { c.Encrypt = true; c.Passphrase = passphrase }
}

// storeConfig folds opts into a zero StoreConfig.
func storeConfig(opts []StoreOption) StoreConfig {
	var cfg StoreConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}
