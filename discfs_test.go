package discfs_test

// These tests exercise DisCFS exclusively through the public API,
// proving the facade is sufficient for the workflows the paper
// describes.

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"discfs"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	ctx := context.Background()
	adminKey := discfs.DeterministicKey("api-admin")
	store, err := discfs.NewMemStore()
	if err != nil {
		t.Fatalf("NewMemStore: %v", err)
	}
	srv, err := discfs.NewServer(adminKey, discfs.WithBacking(store))
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	defer srv.Close()

	bobKey := discfs.DeterministicKey("api-bob")
	aliceKey := discfs.DeterministicKey("api-alice")
	if _, err := srv.IssueCredential(bobKey.Principal, store.Root().Ino, "RWX", "bob's grant"); err != nil {
		t.Fatalf("IssueCredential: %v", err)
	}

	bob, err := discfs.Dial(ctx, addr, bobKey)
	if err != nil {
		t.Fatalf("Dial(bob): %v", err)
	}
	defer bob.Close()
	content := []byte("shared via credentials, not accounts")
	if _, _, err := bob.WriteFile(ctx, "/doc.txt", content); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	cred, err := bob.Delegate(ctx, aliceKey.Principal, store.Root().Ino, "RX", "alice reads")
	if err != nil {
		t.Fatalf("Delegate: %v", err)
	}

	alice, err := discfs.Dial(ctx, addr, aliceKey)
	if err != nil {
		t.Fatalf("Dial(alice): %v", err)
	}
	defer alice.Close()
	if _, err := alice.SubmitCredentials(ctx, cred); err != nil {
		t.Fatalf("SubmitCredentials: %v", err)
	}
	got, err := alice.ReadFile(ctx, "/doc.txt")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Errorf("alice read %q", got)
	}

	st := srv.Stats()
	if st.Credentials < 2 || st.Decisions == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestDeprecatedConfigShims(t *testing.T) {
	ctx := context.Background()
	adminKey := discfs.DeterministicKey("shim-admin")
	store, err := discfs.NewMemStoreFromConfig(discfs.StoreConfig{BlockSize: 4096, NumBlocks: 2048})
	if err != nil {
		t.Fatalf("NewMemStoreFromConfig: %v", err)
	}
	srv, err := discfs.NewServerFromConfig(discfs.ServerConfig{
		Backing:   store,
		ServerKey: adminKey,
	})
	if err != nil {
		t.Fatalf("NewServerFromConfig: %v", err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	admin, err := discfs.Dial(ctx, addr, adminKey)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if _, _, err := admin.WriteFile(ctx, "/legacy.txt", []byte("v1 shim")); err != nil {
		t.Fatalf("WriteFile over shim-built server: %v", err)
	}
}

func TestPublicAPIEncryptedStore(t *testing.T) {
	store, err := discfs.NewMemStore(
		discfs.WithEncryption("correct horse battery staple"),
		discfs.WithBlockSize(4096),
		discfs.WithNumBlocks(2048),
	)
	if err != nil {
		t.Fatalf("NewMemStore: %v", err)
	}
	root := store.Root()
	attr, err := store.Create(root, "enc.txt", 0o600)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := store.Write(attr.Handle, 0, []byte("sealed")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	data, _, err := store.Read(attr.Handle, 0, 16)
	if err != nil || string(data) != "sealed" {
		t.Errorf("read = %q, %v", data, err)
	}
}

func TestBackendRegistry(t *testing.T) {
	names := discfs.Backends()
	want := map[string]bool{"mem": false, "ffs": false, "ffs+dedup": false, "mem+dedup": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Errorf("builtin backend %q not registered (got %v)", n, names)
		}
	}

	// The bare-FFS backend serves a DisCFS server like any other.
	fs, err := discfs.OpenBackend("ffs", discfs.WithBlockSize(4096), discfs.WithNumBlocks(2048))
	if err != nil {
		t.Fatalf("OpenBackend(ffs): %v", err)
	}
	if _, err := fs.Create(fs.Root(), "x", 0o644); err != nil {
		t.Fatalf("Create on ffs backend: %v", err)
	}

	if _, err := discfs.OpenBackend("no-such-backend"); err == nil {
		t.Error("unknown backend opened")
	}

	// A custom backend plugs in through the registry.
	if err := discfs.RegisterBackend("test-custom", func(cfg discfs.StoreConfig) (discfs.FS, error) {
		return discfs.NewMemStore(discfs.WithBlockSize(cfg.BlockSize), discfs.WithNumBlocks(cfg.NumBlocks))
	}); err != nil {
		t.Fatalf("RegisterBackend: %v", err)
	}
	// Names are first-wins: a second claim on the same name is a typed
	// error, not a silent overwrite.
	err = discfs.RegisterBackend("test-custom", func(cfg discfs.StoreConfig) (discfs.FS, error) {
		return nil, nil
	})
	if !errors.Is(err, discfs.ErrBackendRegistered) {
		t.Fatalf("duplicate registration: got %v, want ErrBackendRegistered", err)
	}
	if err := discfs.RegisterBackend("", nil); err == nil {
		t.Fatal("empty-name registration accepted")
	}
	ctx := context.Background()
	key := discfs.DeterministicKey("backend-admin")
	srv, err := discfs.NewServer(key, discfs.WithBackend("test-custom", discfs.WithBlockSize(4096)))
	if err != nil {
		t.Fatalf("NewServer(WithBackend): %v", err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := discfs.Dial(ctx, addr, key)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.WriteFile(ctx, "/on-custom-backend", []byte("ok")); err != nil {
		t.Fatalf("WriteFile on custom backend: %v", err)
	}
}

func TestKeyPersistence(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "id.key")
	k1, err := discfs.LoadOrCreateKey(path)
	if err != nil {
		t.Fatalf("LoadOrCreateKey: %v", err)
	}
	k2, err := discfs.LoadOrCreateKey(path)
	if err != nil {
		t.Fatalf("reload: %v", err)
	}
	if k1.Principal != k2.Principal {
		t.Errorf("principal changed across reload: %s vs %s",
			k1.Principal.Short(), k2.Principal.Short())
	}
	k3, err := discfs.LoadKey(path)
	if err != nil || k3.Principal != k1.Principal {
		t.Errorf("LoadKey: %v", err)
	}
	if _, err := discfs.LoadKey(filepath.Join(dir, "missing.key")); err == nil {
		t.Error("missing key file loaded")
	}
}

func TestSignAndParseCredentials(t *testing.T) {
	signer := discfs.DeterministicKey("signer")
	holder := discfs.DeterministicKey("holder")
	cred, err := discfs.SignCredential(signer, discfs.CredentialSpec{
		Licensees:  discfs.LicenseesOr(holder.Principal),
		Conditions: discfs.SubtreeConditions(42, "RW", true, `@hour >= 9`),
		Comment:    "business hours grant",
	})
	if err != nil {
		t.Fatalf("SignCredential: %v", err)
	}
	parsed, err := discfs.ParseCredentials(cred.Source)
	if err != nil || len(parsed) != 1 {
		t.Fatalf("ParseCredentials: %v (%d)", err, len(parsed))
	}
	if err := parsed[0].Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestStorePersistence(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	img := filepath.Join(dir, "store.ffs")

	store, err := discfs.NewMemStore(discfs.WithBlockSize(1024), discfs.WithNumBlocks(2048))
	if err != nil {
		t.Fatal(err)
	}
	root := store.Root()
	attr, err := store.Create(root, "persisted.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.Write(attr.Handle, 0, []byte("survives restarts")); err != nil {
		t.Fatal(err)
	}
	if err := discfs.SaveStore(img, store); err != nil {
		t.Fatalf("SaveStore: %v", err)
	}

	restored, err := discfs.LoadStore(img)
	if err != nil {
		t.Fatalf("LoadStore: %v", err)
	}
	a, err := restored.Lookup(restored.Root(), "persisted.txt")
	if err != nil {
		t.Fatalf("Lookup after restore: %v", err)
	}
	data, _, err := restored.Read(a.Handle, 0, 64)
	if err != nil || string(data) != "survives restarts" {
		t.Errorf("read after restore = %q, %v", data, err)
	}
	// Old handles stay valid across the dump (same ino+gen).
	if a.Handle != attr.Handle {
		t.Errorf("handle changed across persistence: %+v vs %+v", a.Handle, attr.Handle)
	}
	// A DisCFS server runs fine on the restored store.
	srv, err := discfs.NewServer(discfs.DeterministicKey("persist-admin"), discfs.WithBacking(restored))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	admin, err := discfs.Dial(ctx, addr, discfs.DeterministicKey("persist-admin"))
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	got, err := admin.ReadFile(ctx, "/persisted.txt")
	if err != nil || string(got) != "survives restarts" {
		t.Errorf("served read after restore = %q, %v", got, err)
	}
}

func TestSaveStoreRejectsForeignFS(t *testing.T) {
	if err := discfs.SaveStore("/tmp/nope", nil); err == nil {
		t.Error("SaveStore(nil) succeeded")
	}
}
