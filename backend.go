package discfs

import (
	"fmt"
	"sort"
	"sync"

	"discfs/internal/cfs"
	"discfs/internal/ffs"
)

// A BackendFactory builds a storage backend from a StoreConfig. Register
// one to plug a store other than the built-in FFS+CFS stack behind the
// server's vfs.FS seam — the role SafeBucket's storage providers and
// OmniShare's cloud stores play in related systems.
type BackendFactory func(cfg StoreConfig) (FS, error)

// DefaultBackend is the backend NewServer and NewMemStore use when none
// is named: the paper's FFS-on-RAM store wrapped in the CFS layer.
const DefaultBackend = "mem"

var (
	backendMu sync.RWMutex
	backends  = map[string]BackendFactory{}
)

// RegisterBackend makes a storage backend available to OpenBackend and
// WithBackend under name, replacing any previous registration. Typically
// called from an init function in the backend's package.
func RegisterBackend(name string, f BackendFactory) {
	if name == "" || f == nil {
		panic("discfs: RegisterBackend with empty name or nil factory")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	backends[name] = f
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OpenBackend builds a store from the named registered backend.
func OpenBackend(name string, opts ...StoreOption) (FS, error) {
	backendMu.RLock()
	f, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("discfs: unknown backend %q (registered: %v)", name, Backends())
	}
	return f(storeConfig(opts))
}

func init() {
	// "mem": the paper's storage stack — an FFS-style inode filesystem on
	// a RAM-backed block device, wrapped in a CFS layer (encrypting if
	// requested, CFS-NE otherwise).
	RegisterBackend(DefaultBackend, func(cfg StoreConfig) (FS, error) {
		under, err := ffs.New(ffs.Config{BlockSize: cfg.BlockSize, NumBlocks: cfg.NumBlocks})
		if err != nil {
			return nil, err
		}
		return cfs.New(under, cfg.Passphrase, cfg.Encrypt)
	})
	// "ffs": the bare FFS substrate with no CFS layer — the paper's local
	// baseline, useful when the cryptographic layer is provided elsewhere.
	RegisterBackend("ffs", func(cfg StoreConfig) (FS, error) {
		return ffs.New(ffs.Config{BlockSize: cfg.BlockSize, NumBlocks: cfg.NumBlocks})
	})
}
