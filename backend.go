package discfs

import (
	"fmt"
	"sort"
	"sync"

	"discfs/internal/cfs"
	"discfs/internal/dedup"
	"discfs/internal/ffs"
)

// A BackendFactory builds a storage backend from a StoreConfig. Register
// one to plug a store other than the built-in FFS+CFS stack behind the
// server's vfs.FS seam — the role SafeBucket's storage providers and
// OmniShare's cloud stores play in related systems.
type BackendFactory func(cfg StoreConfig) (FS, error)

// DefaultBackend is the backend NewServer and NewMemStore use when none
// is named: the paper's FFS-on-RAM store wrapped in the CFS layer.
const DefaultBackend = "mem"

// ErrBackendRegistered is returned by RegisterBackend when the name is
// already taken. Registration is first-wins: a name collision is a
// wiring bug (two packages claiming the same backend), not something to
// resolve silently by load order.
var ErrBackendRegistered = fmt.Errorf("discfs: backend already registered")

var (
	backendMu sync.RWMutex
	backends  = map[string]BackendFactory{}
)

// RegisterBackend makes a storage backend available to OpenBackend and
// WithBackend under name. Typically called from an init function in the
// backend's package. Registering a name twice fails with
// ErrBackendRegistered (check with errors.Is); an empty name or nil
// factory is rejected outright.
func RegisterBackend(name string, f BackendFactory) error {
	if name == "" || f == nil {
		return fmt.Errorf("discfs: RegisterBackend with empty name or nil factory")
	}
	backendMu.Lock()
	defer backendMu.Unlock()
	if _, dup := backends[name]; dup {
		return fmt.Errorf("%w: %q", ErrBackendRegistered, name)
	}
	backends[name] = f
	return nil
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	backendMu.RLock()
	defer backendMu.RUnlock()
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// OpenBackend builds a store from the named registered backend.
func OpenBackend(name string, opts ...StoreOption) (FS, error) {
	backendMu.RLock()
	f, ok := backends[name]
	backendMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("discfs: unknown backend %q (registered: %v)", name, Backends())
	}
	return f(storeConfig(opts))
}

// mustRegister is the init-time form: the built-in names cannot collide
// unless the package itself is broken.
func mustRegister(name string, f BackendFactory) {
	if err := RegisterBackend(name, f); err != nil {
		panic(err)
	}
}

func init() {
	// "mem": the paper's storage stack — an FFS-style inode filesystem on
	// a RAM-backed block device, wrapped in a CFS layer (encrypting if
	// requested, CFS-NE otherwise).
	mustRegister(DefaultBackend, func(cfg StoreConfig) (FS, error) {
		under, err := ffs.New(ffs.Config{BlockSize: cfg.BlockSize, NumBlocks: cfg.NumBlocks})
		if err != nil {
			return nil, err
		}
		return cfs.New(under, cfg.Passphrase, cfg.Encrypt)
	})
	// "ffs": the bare FFS substrate with no CFS layer — the paper's local
	// baseline, useful when the cryptographic layer is provided elsewhere.
	mustRegister("ffs", func(cfg StoreConfig) (FS, error) {
		return ffs.New(ffs.Config{BlockSize: cfg.BlockSize, NumBlocks: cfg.NumBlocks})
	})
	// "+dedup" variants stack the content-addressed deduplicating store
	// over the base backend: identical data written through any file
	// lands in the chunk store once. The server recognizes the layer and
	// exports its counters (discfs_dedup_*).
	mustRegister("ffs+dedup", func(cfg StoreConfig) (FS, error) {
		under, err := ffs.New(ffs.Config{BlockSize: cfg.BlockSize, NumBlocks: cfg.NumBlocks})
		if err != nil {
			return nil, err
		}
		return dedup.Wrap(under)
	})
	mustRegister("mem+dedup", func(cfg StoreConfig) (FS, error) {
		under, err := ffs.New(ffs.Config{BlockSize: cfg.BlockSize, NumBlocks: cfg.NumBlocks})
		if err != nil {
			return nil, err
		}
		cfsFS, err := cfs.New(under, cfg.Passphrase, cfg.Encrypt)
		if err != nil {
			return nil, err
		}
		return dedup.Wrap(cfsFS)
	})
}
