package discfs

import "discfs/internal/core"

// The DisCFS error taxonomy. Client operations wrap these sentinels so
// callers classify failures with errors.Is across the RPC boundary:
//
//	if _, err := c.ReadFile(ctx, "/secret"); errors.Is(err, discfs.ErrAccessDenied) {
//		// ask the owner for a credential
//	}
//
// The sentinels compose: a denial on a connection that never submitted
// credentials matches both ErrAccessDenied and ErrNoCredentials.
var (
	// ErrAccessDenied reports a policy denial: the submitted credentials
	// do not grant the permission the operation needs.
	ErrAccessDenied = core.ErrAccessDenied
	// ErrNoCredentials qualifies a denial observed before this client
	// submitted any credentials — the paper's freshly-attached mode-000
	// state. It always accompanies ErrAccessDenied.
	ErrNoCredentials = core.ErrNoCredentials
	// ErrStale reports a file handle that no longer names a live file.
	ErrStale = core.ErrStale
	// ErrNotAdmin is returned by administrative procedures (revocation,
	// credential listing) when the caller is not an administrator.
	ErrNotAdmin = core.ErrNotAdmin
	// ErrRevoked reports an attach attempt with a revoked key, refused
	// during the secure-channel handshake.
	ErrRevoked = core.ErrRevoked
	// ErrNotExist reports a missing file or directory.
	ErrNotExist = core.ErrNotExist
	// ErrCredentialRejected reports a submitted credential the server's
	// KeyNote session refused.
	ErrCredentialRejected = core.ErrCredentialRejected
	// ErrThrottled reports server backpressure: admission control
	// rejected the request, or the server was saturated or draining.
	// The operation did not run; back off and retry.
	ErrThrottled = core.ErrThrottled
	// ErrXDev reports an operation spanning two federation shards that
	// must stay on one server: renaming across shards fails with it
	// (the EXDEV contract at a mount boundary) and callers fall back to
	// copy-and-delete.
	ErrXDev = core.ErrXDev
	// ErrPartialFence reports a revocation fan-out that could not
	// confirm on every shard: the reachable shards applied it (and the
	// server-to-server revocation feed converges the rest), but the
	// shards named in the PartialFenceError did not confirm. Match with
	// errors.Is; errors.As a *PartialFenceError for per-shard detail.
	ErrPartialFence = core.ErrPartialFence
)

// PartialFenceError carries per-shard fence status for a RevokeKey or
// RevokeCredential that could not confirm on every shard: the addresses
// that applied the revocation, the addresses that did not, and the
// per-shard errors.
type PartialFenceError = core.PartialFenceError
