// Package discfs is the public API of the Distributed Credential
// Filesystem (DisCFS), a reproduction of "Secure and Flexible Global File
// Sharing" (Miltchev, Prevelakis, Ioannidis, Keromytis, Smith; UPenn
// MS-CIS-01-23 / USENIX 2003).
//
// DisCFS replaces accounts, groups and access-control lists with signed
// KeyNote credentials: a credential identifies the file (by handle), the
// user (by public key), and the conditions of access, and users share
// files simply by issuing new credentials — no administrator involvement.
//
// Every client operation takes a context.Context that bounds the RPC
// (cancellation and deadlines propagate to the wire), constructors take
// functional options, and failures wrap the typed error taxonomy
// (ErrAccessDenied, ErrNoCredentials, ErrStale, ErrNotAdmin, ErrRevoked)
// for errors.Is classification. A minimal exchange:
//
//	ctx := context.Background()
//
//	// Server side: a DisCFS server over an in-memory store.
//	adminKey, _ := discfs.GenerateKey()
//	store, _ := discfs.NewMemStore()
//	srv, _ := discfs.NewServer(adminKey, discfs.WithBacking(store))
//	addr, _ := srv.Start()
//
//	// The administrator delegates the tree to Bob (1st certificate).
//	bobKey, _ := discfs.GenerateKey()
//	srv.IssueCredential(bobKey.Principal, store.Root().Ino, "RWX", "bob")
//
//	// Bob attaches, streams a file in, and delegates read access to
//	// Alice (2nd certificate) — e.g. mailing her the credential text.
//	bob, _ := discfs.Dial(ctx, addr, bobKey)
//	f, _ := bob.Open(ctx, "/paper.txt", os.O_CREATE|os.O_WRONLY)
//	io.Copy(f, manuscript)
//	f.Close()
//	cred, _ := bob.Delegate(ctx, alice.Principal, f.Handle().Ino, "R", "")
//
//	// Alice attaches, submits the credential chain, and reads.
//	alice, _ := discfs.Dial(ctx, addr, aliceKey)
//	alice.SubmitCredentials(ctx, cred)
//	data, _ := alice.ReadFile(ctx, "/paper.txt")
//
// The package re-exports the building blocks for advanced use: the
// KeyNote engine (credential composition, compliance queries), the FFS
// and CFS storage substrates (pluggable via RegisterBackend), and the
// NFSv2 client.
package discfs

import (
	"context"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"strings"

	"discfs/internal/audit"
	"discfs/internal/cfs"
	"discfs/internal/core"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// Re-exported core types. See the respective internal packages for full
// documentation.
type (
	// KeyPair is a principal with its signing key.
	KeyPair = keynote.KeyPair
	// Principal is a KeyNote principal (a public key or opaque name).
	Principal = keynote.Principal
	// Credential is a parsed KeyNote assertion.
	Credential = keynote.Assertion
	// CredentialSpec describes a credential to compose and sign.
	CredentialSpec = keynote.AssertionSpec
	// Session is a persistent KeyNote session.
	Session = keynote.Session

	// Handle identifies a file (inode + generation).
	Handle = vfs.Handle
	// Attr holds file attributes.
	Attr = vfs.Attr
	// FS is the filesystem interface of the storage substrates.
	FS = vfs.FS

	// Server is a DisCFS server.
	Server = core.Server
	// ServerConfig parameterizes NewServerFromConfig.
	//
	// Deprecated: configure NewServer with ServerOption values.
	ServerConfig = core.ServerConfig
	// Client is an attached DisCFS client.
	Client = core.Client
	// File is a streaming handle on a remote file, returned by
	// Client.Open; it implements io.Reader, io.Writer, io.Seeker,
	// io.ReaderAt, io.WriterAt and io.Closer.
	File = core.File
	// Stats summarizes the server's policy-engine work.
	Stats = core.Stats

	// AuditLog records access decisions.
	AuditLog = audit.Log
	// AuditRecord is one decision.
	AuditRecord = audit.Record

	// NFSClient is the raw NFSv2 client, reachable via Client.NFS.
	NFSClient = nfs.Client
	// DirEntry is a directory listing entry.
	DirEntry = nfs.DirEntry
)

// Values is the ordered compliance value set of DisCFS; the index of a
// value equals its rwx permission bitmask.
var Values = core.Values

// Permission bits.
const (
	PermX = core.PermX
	PermW = core.PermW
	PermR = core.PermR
)

// GenerateKey creates a new Ed25519 key pair.
func GenerateKey() (*KeyPair, error) { return keynote.GenerateKey() }

// DeterministicKey derives a stable key pair from a seed string — for
// tests and examples only.
func DeterministicKey(seed string) *KeyPair { return keynote.DeterministicKey(seed) }

// Dial attaches to a DisCFS server, authenticating as identity. The
// attach succeeds without credentials; operations are denied until
// credentials are submitted. ctx bounds the connection establishment,
// handshake and mount. A revoked identity is refused with an error
// matching ErrRevoked.
//
// Options configure the client-side data cache (readahead +
// write-behind with close-to-open consistency; see WithReadahead,
// WithWriteBehind and WithNoDataCache). With no options the cache is
// enabled with the defaults.
func Dial(ctx context.Context, addr string, identity *KeyPair, opts ...ClientOption) (*Client, error) {
	return core.Dial(ctx, addr, identity, opts...)
}

// DialWithCredentials attaches and immediately submits the given
// credentials (the wallet pattern).
func DialWithCredentials(ctx context.Context, addr string, identity *KeyPair, creds ...*Credential) (*Client, error) {
	return core.DialWithCredentials(ctx, addr, identity, creds...)
}

// NewAuditLog creates an audit log keeping the most recent capacity
// records, optionally mirrored as text to w (nil for none). Any
// io.Writer works: a file, a network sink, a test buffer. Mirror lines
// are written asynchronously by a background goroutine so the server's
// check path never blocks on log I/O; call the log's Flush or Close to
// drain (the server's Close does this for its own log).
func NewAuditLog(capacity int, w io.Writer) *AuditLog {
	return NewAuditLogWithQueue(capacity, w, 0)
}

// NewAuditLogWithQueue is NewAuditLog with an explicit mirror-queue
// depth (0 means the default, 4096). When the background writer falls
// behind by more than the queue depth, further mirror lines are
// dropped and counted (AuditLog.Dropped; Stats.AuditDropped) instead
// of stalling the data path.
func NewAuditLogWithQueue(capacity int, w io.Writer, queueDepth int) *AuditLog {
	if f, ok := w.(*os.File); ok && f == nil {
		w = nil // a typed-nil *os.File is not a usable writer
	}
	return audit.NewWithQueue(capacity, w, queueDepth)
}

// SubtreeConditions builds a KeyNote Conditions body granting value on
// the object with inode ino and, when subtree is true, everything
// beneath it. extra, if non-empty, is ANDed in.
func SubtreeConditions(ino uint64, value string, subtree bool, extra string) string {
	return core.SubtreeConditions(ino, value, subtree, extra)
}

// SignCredential composes and signs a credential.
func SignCredential(key *KeyPair, spec CredentialSpec) (*Credential, error) {
	return keynote.Sign(key, spec)
}

// ParseCredentials parses one or more assertions from text (without
// verifying signatures; submission verifies).
func ParseCredentials(text string) ([]*Credential, error) {
	return keynote.ParseAssertions(text)
}

// LicenseesOr renders a Licensees field authorizing any of the given
// principals; see also keynote.LicenseesAnd and LicenseesThreshold.
func LicenseesOr(ps ...Principal) string { return keynote.LicenseesOr(ps...) }

// ---- storage substrates ----

// StoreConfig parameterizes the built-in storage backends. Construct it
// through StoreOption values; the struct is exported for BackendFactory
// implementations and the deprecated *FromConfig shims.
type StoreConfig struct {
	// BlockSize is the FFS block size (default 8192).
	BlockSize int
	// NumBlocks is the device capacity in blocks (default 1<<18).
	NumBlocks uint32
	// Encrypt stacks CFS content/name encryption over the store using
	// Passphrase. When false the CFS-NE layer is still stacked (the
	// paper's configuration) so the code path matches the prototype.
	Encrypt bool
	// Passphrase keys the CFS layer when Encrypt is true.
	Passphrase string
}

// NewMemStore builds the paper's storage stack: an FFS-style inode
// filesystem on a RAM-backed block device, wrapped in a CFS layer
// (encrypting when WithEncryption is given, CFS-NE otherwise).
func NewMemStore(opts ...StoreOption) (FS, error) {
	return OpenBackend(DefaultBackend, opts...)
}

// NewMemStoreFromConfig is NewMemStore from a v1-style positional
// configuration struct.
//
// Deprecated: use NewMemStore with StoreOption values.
func NewMemStoreFromConfig(cfg StoreConfig) (FS, error) {
	return NewMemStore(func(c *StoreConfig) { *c = cfg })
}

// ---- key persistence ----

// SaveKey writes an Ed25519 key pair to path as a hex seed with a
// principal comment, mode 0600.
func SaveKey(path string, k *KeyPair) error {
	seed := k.Seed()
	if seed == nil {
		return fmt.Errorf("discfs: only Ed25519 keys can be saved")
	}
	data := "# DisCFS identity: " + string(k.Principal) + "\n" +
		hex.EncodeToString(seed) + "\n"
	return os.WriteFile(path, []byte(data), 0o600)
}

// LoadKey reads a key pair saved by SaveKey.
func LoadKey(path string) (*KeyPair, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		seed, err := hex.DecodeString(line)
		if err != nil {
			return nil, fmt.Errorf("discfs: bad key file %s: %w", path, err)
		}
		return keynote.KeyFromSeed(seed)
	}
	return nil, fmt.Errorf("discfs: no key material in %s", path)
}

// LoadOrCreateKey loads the key at path, generating and saving a new one
// if the file does not exist.
func LoadOrCreateKey(path string) (*KeyPair, error) {
	if _, err := os.Stat(path); err == nil {
		return LoadKey(path)
	}
	k, err := GenerateKey()
	if err != nil {
		return nil, err
	}
	if err := SaveKey(path, k); err != nil {
		return nil, err
	}
	return k, nil
}

// ---- store persistence ----

// LoadStore restores a filesystem image written by SaveStore and stacks
// the CFS layer per opts (BlockSize/NumBlocks are taken from the image).
func LoadStore(path string, opts ...StoreOption) (FS, error) {
	cfg := storeConfig(opts)
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	under, err := ffs.Load(f, nil)
	if err != nil {
		return nil, err
	}
	return cfs.New(under, cfg.Passphrase, cfg.Encrypt)
}

// SaveStore writes the FFS image underlying a store built by NewMemStore
// or LoadStore to path (atomically, via a temporary file).
func SaveStore(path string, fs FS) error {
	c, ok := fs.(*cfs.CFS)
	if !ok {
		return fmt.Errorf("discfs: store is %T, not a CFS-stacked FFS", fs)
	}
	under, ok := c.Under().(*ffs.FFS)
	if !ok {
		return fmt.Errorf("discfs: backing store is %T, not FFS", c.Under())
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := under.Dump(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}
