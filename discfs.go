// Package discfs is the public API of the Distributed Credential
// Filesystem (DisCFS), a reproduction of "Secure and Flexible Global File
// Sharing" (Miltchev, Prevelakis, Ioannidis, Keromytis, Smith; UPenn
// MS-CIS-01-23 / USENIX 2003).
//
// DisCFS replaces accounts, groups and access-control lists with signed
// KeyNote credentials: a credential identifies the file (by handle), the
// user (by public key), and the conditions of access, and users share
// files simply by issuing new credentials — no administrator involvement.
//
// A minimal exchange looks like this:
//
//	// Server side: back a DisCFS server with an in-memory store.
//	adminKey, _ := discfs.GenerateKey()
//	store, _ := discfs.NewMemStore(discfs.StoreConfig{})
//	srv, _ := discfs.NewServer(discfs.ServerConfig{
//		Backing:   store,
//		ServerKey: adminKey,
//	})
//	addr, _ := srv.Start()
//
//	// The administrator delegates the tree to Bob (1st certificate).
//	bobKey, _ := discfs.GenerateKey()
//	srv.IssueCredential(bobKey.Principal, store.Root().Ino, "RWX", "bob")
//
//	// Bob attaches, stores a file, and delegates read access to Alice
//	// (2nd certificate) — e.g. mailing her the credential text.
//	bob, _ := discfs.Dial(addr, bobKey)
//	attr, _, _ := bob.WriteFile("/paper.txt", []byte("..."))
//	cred, _ := bob.Delegate(alice.Principal, attr.Handle.Ino, "R", "")
//
//	// Alice attaches, submits the credential chain, and reads.
//	alice, _ := discfs.Dial(addr, aliceKey)
//	alice.SubmitCredentials(cred)
//	data, _ := alice.ReadFile("/paper.txt")
//
// The package re-exports the building blocks for advanced use: the
// KeyNote engine (credential composition, compliance queries), the FFS
// and CFS storage substrates, and the NFSv2 client.
package discfs

import (
	"encoding/hex"
	"fmt"
	"os"
	"strings"

	"discfs/internal/audit"
	"discfs/internal/cfs"
	"discfs/internal/core"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// Re-exported core types. See the respective internal packages for full
// documentation.
type (
	// KeyPair is a principal with its signing key.
	KeyPair = keynote.KeyPair
	// Principal is a KeyNote principal (a public key or opaque name).
	Principal = keynote.Principal
	// Credential is a parsed KeyNote assertion.
	Credential = keynote.Assertion
	// CredentialSpec describes a credential to compose and sign.
	CredentialSpec = keynote.AssertionSpec
	// Session is a persistent KeyNote session.
	Session = keynote.Session

	// Handle identifies a file (inode + generation).
	Handle = vfs.Handle
	// Attr holds file attributes.
	Attr = vfs.Attr
	// FS is the filesystem interface of the storage substrates.
	FS = vfs.FS

	// Server is a DisCFS server.
	Server = core.Server
	// ServerConfig parameterizes NewServer.
	ServerConfig = core.ServerConfig
	// Client is an attached DisCFS client.
	Client = core.Client
	// Stats summarizes the server's policy-engine work.
	Stats = core.Stats

	// AuditLog records access decisions.
	AuditLog = audit.Log
	// AuditRecord is one decision.
	AuditRecord = audit.Record

	// NFSClient is the raw NFSv2 client, reachable via Client.NFS.
	NFSClient = nfs.Client
	// DirEntry is a directory listing entry.
	DirEntry = nfs.DirEntry
)

// Values is the ordered compliance value set of DisCFS; the index of a
// value equals its rwx permission bitmask.
var Values = core.Values

// Permission bits.
const (
	PermX = core.PermX
	PermW = core.PermW
	PermR = core.PermR
)

// GenerateKey creates a new Ed25519 key pair.
func GenerateKey() (*KeyPair, error) { return keynote.GenerateKey() }

// DeterministicKey derives a stable key pair from a seed string — for
// tests and examples only.
func DeterministicKey(seed string) *KeyPair { return keynote.DeterministicKey(seed) }

// NewServer constructs a DisCFS server.
func NewServer(cfg ServerConfig) (*Server, error) { return core.NewServer(cfg) }

// Dial attaches to a DisCFS server, authenticating as identity. The
// attach always succeeds; operations are denied until credentials are
// submitted.
func Dial(addr string, identity *KeyPair) (*Client, error) { return core.Dial(addr, identity) }

// NewAuditLog creates an audit log keeping the most recent capacity
// records, optionally mirrored as text to w (may be nil).
func NewAuditLog(capacity int, w *os.File) *AuditLog {
	if w == nil {
		return audit.New(capacity, nil)
	}
	return audit.New(capacity, w)
}

// SubtreeConditions builds a KeyNote Conditions body granting value on
// the object with inode ino and, when subtree is true, everything
// beneath it. extra, if non-empty, is ANDed in.
func SubtreeConditions(ino uint64, value string, subtree bool, extra string) string {
	return core.SubtreeConditions(ino, value, subtree, extra)
}

// SignCredential composes and signs a credential.
func SignCredential(key *KeyPair, spec CredentialSpec) (*Credential, error) {
	return keynote.Sign(key, spec)
}

// ParseCredentials parses one or more assertions from text (without
// verifying signatures; submission verifies).
func ParseCredentials(text string) ([]*Credential, error) {
	return keynote.ParseAssertions(text)
}

// LicenseesOr renders a Licensees field authorizing any of the given
// principals; see also keynote.LicenseesAnd and LicenseesThreshold.
func LicenseesOr(ps ...Principal) string { return keynote.LicenseesOr(ps...) }

// ---- storage substrates ----

// StoreConfig parameterizes NewMemStore.
type StoreConfig struct {
	// BlockSize is the FFS block size (default 8192).
	BlockSize int
	// NumBlocks is the device capacity in blocks (default 1<<18).
	NumBlocks uint32
	// Encrypt stacks CFS content/name encryption over the store using
	// Passphrase. When false the CFS-NE layer is still stacked (the
	// paper's configuration) so the code path matches the prototype.
	Encrypt bool
	// Passphrase keys the CFS layer when Encrypt is true.
	Passphrase string
}

// NewMemStore builds the paper's storage stack: an FFS-style inode
// filesystem on a RAM-backed block device, wrapped in a CFS layer
// (encrypting if requested, CFS-NE otherwise).
func NewMemStore(cfg StoreConfig) (FS, error) {
	under, err := ffs.New(ffs.Config{BlockSize: cfg.BlockSize, NumBlocks: cfg.NumBlocks})
	if err != nil {
		return nil, err
	}
	return cfs.New(under, cfg.Passphrase, cfg.Encrypt)
}

// ---- key persistence ----

// SaveKey writes an Ed25519 key pair to path as a hex seed with a
// principal comment, mode 0600.
func SaveKey(path string, k *KeyPair) error {
	seed := k.Seed()
	if seed == nil {
		return fmt.Errorf("discfs: only Ed25519 keys can be saved")
	}
	data := "# DisCFS identity: " + string(k.Principal) + "\n" +
		hex.EncodeToString(seed) + "\n"
	return os.WriteFile(path, []byte(data), 0o600)
}

// LoadKey reads a key pair saved by SaveKey.
func LoadKey(path string) (*KeyPair, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		seed, err := hex.DecodeString(line)
		if err != nil {
			return nil, fmt.Errorf("discfs: bad key file %s: %w", path, err)
		}
		return keynote.KeyFromSeed(seed)
	}
	return nil, fmt.Errorf("discfs: no key material in %s", path)
}

// LoadOrCreateKey loads the key at path, generating and saving a new one
// if the file does not exist.
func LoadOrCreateKey(path string) (*KeyPair, error) {
	if _, err := os.Stat(path); err == nil {
		return LoadKey(path)
	}
	k, err := GenerateKey()
	if err != nil {
		return nil, err
	}
	if err := SaveKey(path, k); err != nil {
		return nil, err
	}
	return k, nil
}

// LoadStore restores a filesystem image written by SaveStore and stacks
// the CFS layer per cfg (BlockSize/NumBlocks are taken from the image).
func LoadStore(path string, cfg StoreConfig) (FS, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	under, err := ffs.Load(f, nil)
	if err != nil {
		return nil, err
	}
	return cfs.New(under, cfg.Passphrase, cfg.Encrypt)
}

// SaveStore writes the FFS image underlying a store built by NewMemStore
// or LoadStore to path (atomically, via a temporary file).
func SaveStore(path string, fs FS) error {
	c, ok := fs.(*cfs.CFS)
	if !ok {
		return fmt.Errorf("discfs: store is %T, not a CFS-stacked FFS", fs)
	}
	under, ok := c.Under().(*ffs.FFS)
	if !ok {
		return fmt.Errorf("discfs: backing store is %T, not FFS", c.Under())
	}
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if err := under.Dump(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// DialWithCredentials attaches and immediately submits the given
// credentials (the wallet pattern).
func DialWithCredentials(addr string, identity *KeyPair, creds ...*Credential) (*Client, error) {
	return core.DialWithCredentials(addr, identity, creds...)
}
