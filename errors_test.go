package discfs_test

// Typed-error taxonomy tests: every sentinel must survive the RPC
// boundary and classify with errors.Is on the client side.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"discfs"
)

// errServer starts a server on a fresh store and returns its address.
func errServer(t *testing.T, adminKey *discfs.KeyPair) (*discfs.Server, discfs.FS, string) {
	t.Helper()
	store, err := discfs.NewMemStore()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := discfs.NewServer(adminKey, discfs.WithBacking(store))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, store, addr
}

func TestErrAccessDeniedRoundTrip(t *testing.T) {
	ctx := context.Background()
	adminKey := discfs.DeterministicKey("errs-admin")
	srv, store, addr := errServer(t, adminKey)

	admin, err := discfs.Dial(ctx, addr, adminKey)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if _, _, err := admin.WriteFile(ctx, "/secret.txt", []byte("classified")); err != nil {
		t.Fatal(err)
	}

	// A stranger with no credentials: the denial matches both
	// ErrAccessDenied and ErrNoCredentials.
	guestKey := discfs.DeterministicKey("errs-guest")
	guest, err := discfs.Dial(ctx, addr, guestKey)
	if err != nil {
		t.Fatal(err)
	}
	defer guest.Close()
	_, err = guest.ReadFile(ctx, "/secret.txt")
	if !errors.Is(err, discfs.ErrAccessDenied) {
		t.Errorf("uncredentialed read = %v, want ErrAccessDenied", err)
	}
	if !errors.Is(err, discfs.ErrNoCredentials) {
		t.Errorf("uncredentialed read = %v, want ErrNoCredentials qualifier", err)
	}

	// After submitting a read-only credential the write denial is a plain
	// ErrAccessDenied — the no-credentials qualifier must be gone.
	cred, err := srv.IssueCredential(guestKey.Principal, store.Root().Ino, "RX", "guest reads")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := guest.SubmitCredentials(ctx, cred); err != nil {
		t.Fatal(err)
	}
	if _, err := guest.ReadFile(ctx, "/secret.txt"); err != nil {
		t.Fatalf("credentialed read: %v", err)
	}
	_, _, err = guest.WriteFile(ctx, "/secret.txt", []byte("defaced"))
	if !errors.Is(err, discfs.ErrAccessDenied) {
		t.Errorf("read-only write = %v, want ErrAccessDenied", err)
	}
	if errors.Is(err, discfs.ErrNoCredentials) {
		t.Errorf("read-only write = %v, must not match ErrNoCredentials after submit", err)
	}
}

func TestErrNotAdminRoundTrip(t *testing.T) {
	ctx := context.Background()
	adminKey := discfs.DeterministicKey("admin-err-admin")
	_, _, addr := errServer(t, adminKey)

	mallory, err := discfs.Dial(ctx, addr, discfs.DeterministicKey("admin-err-mallory"))
	if err != nil {
		t.Fatal(err)
	}
	defer mallory.Close()
	if _, err := mallory.RevokeKey(ctx, discfs.DeterministicKey("victim").Principal); !errors.Is(err, discfs.ErrNotAdmin) {
		t.Errorf("non-admin RevokeKey = %v, want ErrNotAdmin", err)
	}
	if _, err := mallory.RevokeCredential(ctx, "sig"); !errors.Is(err, discfs.ErrNotAdmin) {
		t.Errorf("non-admin RevokeCredential = %v, want ErrNotAdmin", err)
	}
	if _, err := mallory.ListCredentials(ctx); !errors.Is(err, discfs.ErrNotAdmin) {
		t.Errorf("non-admin ListCredentials = %v, want ErrNotAdmin", err)
	}

	// The administrator is allowed.
	admin, err := discfs.Dial(ctx, addr, adminKey)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if _, err := admin.ListCredentials(ctx); err != nil {
		t.Errorf("admin ListCredentials: %v", err)
	}
}

func TestErrRevokedRoundTrip(t *testing.T) {
	ctx := context.Background()
	adminKey := discfs.DeterministicKey("revoked-admin")
	srv, store, addr := errServer(t, adminKey)

	bobKey := discfs.DeterministicKey("revoked-bob")
	if _, err := srv.IssueCredential(bobKey.Principal, store.Root().Ino, "RWX", "bob"); err != nil {
		t.Fatal(err)
	}
	bob, err := discfs.Dial(ctx, addr, bobKey)
	if err != nil {
		t.Fatal(err)
	}
	bob.Close()

	admin, err := discfs.Dial(ctx, addr, adminKey)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()
	if _, err := admin.RevokeKey(ctx, bobKey.Principal); err != nil {
		t.Fatal(err)
	}

	// Bob's re-attach is refused during the handshake with a typed error.
	_, err = discfs.Dial(ctx, addr, bobKey)
	if !errors.Is(err, discfs.ErrRevoked) {
		t.Errorf("dial after revocation = %v, want ErrRevoked", err)
	}
}

func TestErrNotExistAndStaleRoundTrip(t *testing.T) {
	ctx := context.Background()
	adminKey := discfs.DeterministicKey("stale-admin")
	_, _, addr := errServer(t, adminKey)

	admin, err := discfs.Dial(ctx, addr, adminKey)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	if _, err := admin.ReadFile(ctx, "/never-created"); !errors.Is(err, discfs.ErrNotExist) {
		t.Errorf("read of missing file = %v, want ErrNotExist", err)
	}
	if _, err := admin.Open(ctx, "/never-created", os.O_RDONLY); !errors.Is(err, discfs.ErrNotExist) {
		t.Errorf("open of missing file = %v, want ErrNotExist", err)
	}

	// A handle goes stale when the file is removed behind it.
	f, err := admin.Open(ctx, "/doomed.txt", os.O_CREATE|os.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("short-lived")); err != nil {
		t.Fatal(err)
	}
	dirAttr, err := admin.ResolvePath(ctx, "/")
	if err != nil {
		t.Fatal(err)
	}
	if err := admin.NFS().Remove(ctx, dirAttr.Handle, "doomed.txt"); err != nil {
		t.Fatal(err)
	}
	// Dirty data written after the remove cannot flush; the deferred
	// error surfaces at the Sync barrier as ErrStale.
	if _, err := f.Write([]byte("more")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, discfs.ErrStale) {
		t.Errorf("sync through removed handle = %v, want ErrStale", err)
	}
	// Re-opening the dead handle fails the close-to-open revalidation.
	if _, err := admin.OpenHandle(ctx, f.Handle(), os.O_RDONLY); !errors.Is(err, discfs.ErrStale) {
		t.Errorf("open of removed handle = %v, want ErrStale", err)
	}
}

func TestErrCredentialRejected(t *testing.T) {
	ctx := context.Background()
	adminKey := discfs.DeterministicKey("credrej-admin")
	_, _, addr := errServer(t, adminKey)
	c, err := discfs.Dial(ctx, addr, discfs.DeterministicKey("credrej-user"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.SubmitCredentialText(ctx, "this is not a keynote assertion"); !errors.Is(err, discfs.ErrCredentialRejected) {
		t.Errorf("garbage submission = %v, want ErrCredentialRejected", err)
	}
}

// ---- key persistence error paths ----

func TestLoadKeyCorruptHex(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.key")
	if err := os.WriteFile(path, []byte("zz-not-hex-zz\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := discfs.LoadKey(path); err == nil {
		t.Error("corrupt hex key loaded")
	}
}

func TestLoadKeyEmptyFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.key")
	if err := os.WriteFile(path, nil, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := discfs.LoadKey(path); err == nil {
		t.Error("empty key file loaded")
	}
}

func TestLoadKeyCommentOnly(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "comment.key")
	if err := os.WriteFile(path, []byte("# no key material here\n\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := discfs.LoadKey(path); err == nil {
		t.Error("comment-only key file loaded")
	}
}

func TestLoadKeyWrongSeedLength(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "short.key")
	if err := os.WriteFile(path, []byte("deadbeef\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := discfs.LoadKey(path); err == nil {
		t.Error("8-hex-digit seed loaded as an Ed25519 key")
	}
}

func TestSaveKeyRoundTripsThroughLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ok.key")
	k := discfs.DeterministicKey("save-load")
	if err := discfs.SaveKey(path, k); err != nil {
		t.Fatal(err)
	}
	got, err := discfs.LoadKey(path)
	if err != nil || got.Principal != k.Principal {
		t.Errorf("LoadKey = %v, %v", got, err)
	}
	// SaveKey must refuse an unwritable path rather than silently drop.
	if err := discfs.SaveKey(filepath.Join(dir, "no-such-dir", "k"), k); err == nil {
		t.Error("SaveKey into missing directory succeeded")
	}
}
