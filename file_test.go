package discfs_test

// Streaming-I/O and context-cancellation tests for the v2 client API.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"os"
	"testing"
	"time"

	"discfs"
)

func streamServer(t *testing.T) (string, *discfs.KeyPair) {
	t.Helper()
	adminKey := discfs.DeterministicKey("stream-admin-" + t.Name())
	store, err := discfs.NewMemStore()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := discfs.NewServer(adminKey, discfs.WithBacking(store))
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return addr, adminKey
}

func TestFileStreamingRoundTrip(t *testing.T) {
	ctx := context.Background()
	addr, key := streamServer(t)
	c, err := discfs.Dial(ctx, addr, key)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// 100 KiB spans many NFS MaxData (8 KiB) chunks.
	payload := bytes.Repeat([]byte("0123456789abcdef"), 100*1024/16)

	w, err := c.Open(ctx, "/big.bin", os.O_CREATE|os.O_WRONLY)
	if err != nil {
		t.Fatalf("Open for write: %v", err)
	}
	if w.Credential() == "" {
		t.Error("creating Open returned no creator credential")
	}
	n, err := io.Copy(w, bytes.NewReader(payload))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("Copy in = %d, %v", n, err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := c.Open(ctx, "/big.bin", os.O_RDONLY)
	if err != nil {
		t.Fatalf("Open for read: %v", err)
	}
	defer r.Close()
	if r.Credential() != "" {
		t.Error("non-creating Open returned a credential")
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("streamed read mismatch: %d bytes vs %d", len(got), len(payload))
	}
}

func TestFileSeekReadAtWriteAt(t *testing.T) {
	ctx := context.Background()
	addr, key := streamServer(t)
	c, err := discfs.Dial(ctx, addr, key)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	f, err := c.Open(ctx, "/seek.txt", os.O_CREATE|os.O_RDWR)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write([]byte("hello, world")); err != nil {
		t.Fatal(err)
	}

	// Seek back and read a slice.
	if pos, err := f.Seek(7, io.SeekStart); err != nil || pos != 7 {
		t.Fatalf("Seek = %d, %v", pos, err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(f, buf); err != nil || string(buf) != "world" {
		t.Fatalf("read after seek = %q, %v", buf, err)
	}

	// ReadAt ignores the cursor.
	if _, err := f.ReadAt(buf[:5], 0); err != nil || string(buf[:5]) != "hello" {
		t.Fatalf("ReadAt = %q, %v", buf[:5], err)
	}

	// WriteAt patches in place; Sync is the barrier before reading the
	// file back through a different path than the cached File.
	if _, err := f.WriteAt([]byte("WORLD"), 7); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	data, err := c.ReadFile(ctx, "/seek.txt")
	if err != nil || string(data) != "hello, WORLD" {
		t.Fatalf("after WriteAt = %q, %v", data, err)
	}

	// SeekEnd sees the server-side size.
	if pos, err := f.Seek(0, io.SeekEnd); err != nil || pos != 12 {
		t.Fatalf("SeekEnd = %d, %v", pos, err)
	}

	// Truncate shrinks.
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	data, _ = c.ReadFile(ctx, "/seek.txt")
	if string(data) != "hello" {
		t.Fatalf("after Truncate = %q", data)
	}
}

func TestFileOpenModes(t *testing.T) {
	ctx := context.Background()
	addr, key := streamServer(t)
	c, err := discfs.Dial(ctx, addr, key)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, _, err := c.WriteFile(ctx, "/modes.txt", []byte("original")); err != nil {
		t.Fatal(err)
	}

	// O_RDONLY rejects writes.
	r, err := c.Open(ctx, "/modes.txt", os.O_RDONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Write([]byte("x")); err == nil {
		t.Error("write on O_RDONLY file succeeded")
	}
	r.Close()

	// O_WRONLY rejects reads.
	w, err := c.Open(ctx, "/modes.txt", os.O_WRONLY)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Read(make([]byte, 1)); err == nil {
		t.Error("read on O_WRONLY file succeeded")
	}
	w.Close()

	// O_APPEND starts at end-of-file.
	a, err := c.Open(ctx, "/modes.txt", os.O_WRONLY|os.O_APPEND)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write([]byte("+more")); err != nil {
		t.Fatal(err)
	}
	a.Close()
	data, _ := c.ReadFile(ctx, "/modes.txt")
	if string(data) != "original+more" {
		t.Fatalf("after append = %q", data)
	}

	// O_TRUNC empties the file.
	tr, err := c.Open(ctx, "/modes.txt", os.O_WRONLY|os.O_TRUNC)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	data, _ = c.ReadFile(ctx, "/modes.txt")
	if len(data) != 0 {
		t.Fatalf("after O_TRUNC = %q", data)
	}

	// Operations on a closed File fail.
	if _, err := tr.Write([]byte("x")); err == nil {
		t.Error("write on closed file succeeded")
	}
	if err := tr.Truncate(0); err == nil {
		t.Error("truncate on closed file succeeded")
	}
	if _, err := tr.Stat(); err == nil {
		t.Error("stat on closed file succeeded")
	}

	// O_CREATE|O_EXCL refuses an existing file but creates a missing one.
	if _, err := c.Open(ctx, "/modes.txt", os.O_CREATE|os.O_EXCL|os.O_WRONLY); err == nil {
		t.Error("O_EXCL open of existing file succeeded")
	}
	excl, err := c.Open(ctx, "/fresh.txt", os.O_CREATE|os.O_EXCL|os.O_WRONLY)
	if err != nil {
		t.Fatalf("O_EXCL open of missing file: %v", err)
	}
	excl.Close()

	// Opening a directory fails.
	if _, err := c.Open(ctx, "/", os.O_RDONLY); err == nil {
		t.Error("opened a directory as a file")
	}
}

// blockingFS wraps a store and parks every Read until release is closed,
// simulating a slow or wedged backend so cancellation can be observed
// mid-RPC.
type blockingFS struct {
	discfs.FS
	release chan struct{}
}

func (b *blockingFS) Read(h discfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	<-b.release
	return b.FS.Read(h, off, count)
}

func TestCanceledContextAbortsInFlightRPC(t *testing.T) {
	adminKey := discfs.DeterministicKey("cancel-admin")
	store, err := discfs.NewMemStore()
	if err != nil {
		t.Fatal(err)
	}
	blocking := &blockingFS{FS: store, release: make(chan struct{})}
	srv, err := discfs.NewServer(adminKey, discfs.WithBacking(blocking))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Start()
	if err != nil {
		t.Fatal(err)
	}
	defer close(blocking.release) // let the parked server goroutine finish

	bg := context.Background()
	c, err := discfs.Dial(bg, addr, adminKey)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, _, err := c.WriteFile(bg, "/slow.txt", []byte("contents")); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(bg)
	done := make(chan error, 1)
	go func() {
		_, err := c.ReadFile(ctx, "/slow.txt")
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the READ reach the blocked backend
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled in-flight read = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled RPC did not abort: ReadFile still blocked after 5s")
	}

	// The connection survives an abandoned call: after releasing the
	// backend, fresh operations work.
}

func TestExpiredContextFailsFast(t *testing.T) {
	addr, key := streamServer(t)
	bg := context.Background()
	c, err := discfs.Dial(bg, addr, key)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	expired, cancel := context.WithCancel(bg)
	cancel()
	if _, err := c.ReadFile(expired, "/x"); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled read = %v, want context.Canceled", err)
	}
	if _, err := c.Delegate(expired, key.Principal, 1, "R", ""); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled delegate = %v, want context.Canceled", err)
	}
	if _, err := discfs.Dial(expired, addr, key); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled dial = %v, want context.Canceled", err)
	}

	// A deadline in the past behaves the same.
	past, cancel2 := context.WithDeadline(bg, time.Now().Add(-time.Second))
	defer cancel2()
	if _, err := c.ReadFile(past, "/x"); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("past-deadline read = %v, want context.DeadlineExceeded", err)
	}
}
