// Package cfs implements a CFS-style cryptographic filesystem layer: a
// stacked vfs.FS that encrypts file names and contents over any backing
// store, after Blaze's Cryptographic File System — the codebase the
// DisCFS prototype was derived from.
//
// With Encrypt=false the layer is "CFS-NE", the paper's base case: the
// identical stacking and name-mapping code path with the ciphers replaced
// by identity transforms. DisCFS is CFS-NE plus the credential access
// control layer, so benchmarking CFS-NE against DisCFS isolates the cost
// of the access-control mechanism exactly as the paper does.
package cfs

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/base32"
	"encoding/binary"
	"fmt"
	"strings"

	"discfs/internal/vfs"
)

// nameEncoding is unpadded base32, safe for directory entry names.
var nameEncoding = base32.HexEncoding.WithPadding(base32.NoPadding)

// nameIVLen is the truncated synthetic IV prepended to encrypted names.
const nameIVLen = 8

// CFS is the encrypting layer. It implements vfs.FS.
type CFS struct {
	under   vfs.FS
	encrypt bool

	nameKey []byte // HMAC key for synthetic name IVs
	nameAES cipher.Block
	dataKey []byte // master key for per-file content keys
}

// Option configures New.
type Option func(*CFS)

// New stacks a CFS layer over under. When encrypt is false the layer is
// CFS-NE: all transforms are identity but the code path is unchanged.
// The key may be any passphrase; it is stretched with SHA-256.
func New(under vfs.FS, key string, encrypt bool) (*CFS, error) {
	c := &CFS{under: under, encrypt: encrypt}
	if encrypt {
		master := sha256.Sum256([]byte("cfs-master:" + key))
		nk := sha256.Sum256(append(master[:], []byte(":names")...))
		dk := sha256.Sum256(append(master[:], []byte(":data")...))
		c.nameKey = nk[:]
		c.dataKey = dk[:]
		blk, err := aes.NewCipher(nk[:16])
		if err != nil {
			return nil, fmt.Errorf("cfs: %w", err)
		}
		c.nameAES = blk
	}
	return c, nil
}

// Under returns the backing filesystem.
func (c *CFS) Under() vfs.FS { return c.under }

// Encrypting reports whether transforms are active (false = CFS-NE).
func (c *CFS) Encrypting() bool { return c.encrypt }

// ---- name transform ----

// encodeName maps a cleartext name to its stored form. Deterministic
// (SIV-style): the IV is a truncated HMAC of the name, prepended to the
// CTR ciphertext, so equal names map to equal stored names and lookups
// work without directory scans.
func (c *CFS) encodeName(name string) (string, error) {
	if !c.encrypt {
		return name, nil
	}
	mac := hmac.New(sha256.New, c.nameKey)
	mac.Write([]byte(name))
	iv := mac.Sum(nil)[:nameIVLen]
	ct := make([]byte, len(name))
	c.nameXOR(iv, []byte(name), ct)
	enc := nameEncoding.EncodeToString(append(append([]byte{}, iv...), ct...))
	if len(enc) > vfs.MaxNameLen {
		return "", vfs.ErrNameTooLong
	}
	return enc, nil
}

// decodeName maps a stored name back to cleartext.
func (c *CFS) decodeName(stored string) (string, error) {
	if !c.encrypt {
		return stored, nil
	}
	raw, err := nameEncoding.DecodeString(strings.ToUpper(stored))
	if err != nil || len(raw) < nameIVLen {
		return "", fmt.Errorf("%w: undecodable name %q", vfs.ErrIO, stored)
	}
	iv, ct := raw[:nameIVLen], raw[nameIVLen:]
	pt := make([]byte, len(ct))
	c.nameXOR(iv, ct, pt)
	return string(pt), nil
}

// nameXOR applies the CTR keystream for a name IV.
func (c *CFS) nameXOR(iv, src, dst []byte) {
	var full [aes.BlockSize]byte
	copy(full[:], iv)
	stream := cipher.NewCTR(c.nameAES, full[:])
	stream.XORKeyStream(dst, src)
}

// ---- content transform ----

// fileStreamXOR en/decrypts len(data) bytes of a file at byte offset off.
// AES-CTR keyed per file by the handle (ino+gen), with the counter
// derived from the block offset, gives random access without
// read-modify-write — the property the original CFS engineered with its
// precomputed pad.
func (c *CFS) fileStreamXOR(h vfs.Handle, off uint64, data []byte) ([]byte, error) {
	if !c.encrypt || len(data) == 0 {
		return data, nil
	}
	stream, err := c.fileStream(h, off)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(data))
	stream.XORKeyStream(out, data)
	return out, nil
}

// xorInPlace is fileStreamXOR transforming data in place (the buffer is
// ours, not a caller's): a no-op in the CFS-NE configuration.
func (c *CFS) xorInPlace(h vfs.Handle, off uint64, data []byte) error {
	if !c.encrypt || len(data) == 0 {
		return nil
	}
	stream, err := c.fileStream(h, off)
	if err != nil {
		return err
	}
	stream.XORKeyStream(data, data)
	return nil
}

// fileStream builds the per-file CTR key stream positioned at off.
func (c *CFS) fileStream(h vfs.Handle, off uint64) (cipher.Stream, error) {
	mac := hmac.New(sha256.New, c.dataKey)
	var hb [12]byte
	binary.BigEndian.PutUint64(hb[:8], h.Ino)
	binary.BigEndian.PutUint32(hb[8:], h.Gen)
	mac.Write(hb[:])
	fileKey := mac.Sum(nil)
	blk, err := aes.NewCipher(fileKey[:16])
	if err != nil {
		return nil, fmt.Errorf("cfs: %w", err)
	}
	// Counter = offset / 16; intra-block skip handled by discarding.
	var iv [aes.BlockSize]byte
	binary.BigEndian.PutUint64(iv[8:], off/aes.BlockSize)
	stream := cipher.NewCTR(blk, iv[:])
	skip := int(off % aes.BlockSize)
	if skip > 0 {
		var junk [aes.BlockSize]byte
		stream.XORKeyStream(junk[:skip], junk[:skip])
	}
	return stream, nil
}

// ---- vfs.FS ----

// Root implements vfs.FS.
func (c *CFS) Root() vfs.Handle { return c.under.Root() }

// GetAttr implements vfs.FS.
func (c *CFS) GetAttr(h vfs.Handle) (vfs.Attr, error) { return c.under.GetAttr(h) }

// SetAttr implements vfs.FS.
func (c *CFS) SetAttr(h vfs.Handle, s vfs.SetAttr) (vfs.Attr, error) {
	return c.under.SetAttr(h, s)
}

// Lookup implements vfs.FS.
func (c *CFS) Lookup(dir vfs.Handle, name string) (vfs.Attr, error) {
	if name == "." || name == ".." {
		return c.under.Lookup(dir, name)
	}
	enc, err := c.encodeName(name)
	if err != nil {
		return vfs.Attr{}, err
	}
	return c.under.Lookup(dir, enc)
}

// Read implements vfs.FS.
func (c *CFS) Read(h vfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	data, eof, err := c.under.Read(h, off, count)
	if err != nil {
		return nil, false, err
	}
	pt, err := c.fileStreamXOR(h, off, data)
	if err != nil {
		return nil, false, err
	}
	return pt, eof, nil
}

// ReadInto implements vfs.ReaderInto: ciphertext lands in dst via the
// substrate's own zero-copy path and is decrypted in place, so the CFS
// layer adds no allocation or copy to the data plane (none at all in
// the paper's CFS-NE configuration).
func (c *CFS) ReadInto(h vfs.Handle, off uint64, dst []byte) (int, bool, error) {
	n, eof, err := vfs.ReadFSInto(c.under, h, off, dst)
	if err != nil {
		return 0, false, err
	}
	if err := c.xorInPlace(h, off, dst[:n]); err != nil {
		return 0, false, err
	}
	return n, eof, nil
}

// Write implements vfs.FS.
func (c *CFS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	ct, err := c.fileStreamXOR(h, off, data)
	if err != nil {
		return vfs.Attr{}, err
	}
	return c.under.Write(h, off, ct)
}

// Create implements vfs.FS.
func (c *CFS) Create(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	if !vfs.ValidName(name) {
		return vfs.Attr{}, vfs.ErrInval
	}
	enc, err := c.encodeName(name)
	if err != nil {
		return vfs.Attr{}, err
	}
	return c.under.Create(dir, enc, mode)
}

// Remove implements vfs.FS.
func (c *CFS) Remove(dir vfs.Handle, name string) error {
	enc, err := c.encodeName(name)
	if err != nil {
		return err
	}
	return c.under.Remove(dir, enc)
}

// Rename implements vfs.FS.
func (c *CFS) Rename(fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error {
	if !vfs.ValidName(toName) {
		return vfs.ErrInval
	}
	fromEnc, err := c.encodeName(fromName)
	if err != nil {
		return err
	}
	toEnc, err := c.encodeName(toName)
	if err != nil {
		return err
	}
	return c.under.Rename(fromDir, fromEnc, toDir, toEnc)
}

// Mkdir implements vfs.FS.
func (c *CFS) Mkdir(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	if !vfs.ValidName(name) {
		return vfs.Attr{}, vfs.ErrInval
	}
	enc, err := c.encodeName(name)
	if err != nil {
		return vfs.Attr{}, err
	}
	return c.under.Mkdir(dir, enc, mode)
}

// Rmdir implements vfs.FS.
func (c *CFS) Rmdir(dir vfs.Handle, name string) error {
	enc, err := c.encodeName(name)
	if err != nil {
		return err
	}
	return c.under.Rmdir(dir, enc)
}

// ReadDir implements vfs.FS, decrypting entry names.
func (c *CFS) ReadDir(dir vfs.Handle) ([]vfs.DirEntry, error) {
	ents, err := c.under.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	if !c.encrypt {
		return ents, nil
	}
	out := make([]vfs.DirEntry, 0, len(ents))
	for _, e := range ents {
		name, err := c.decodeName(e.Name)
		if err != nil {
			// Foreign entries (written without the key) stay visible
			// under their stored names, as in CFS.
			out = append(out, e)
			continue
		}
		out = append(out, vfs.DirEntry{Name: name, Handle: e.Handle})
	}
	return out, nil
}

// Symlink implements vfs.FS. Targets are encrypted like names so the
// backing store leaks nothing.
func (c *CFS) Symlink(dir vfs.Handle, name, target string, mode uint32) (vfs.Attr, error) {
	if !vfs.ValidName(name) {
		return vfs.Attr{}, vfs.ErrInval
	}
	encName, err := c.encodeName(name)
	if err != nil {
		return vfs.Attr{}, err
	}
	encTarget, err := c.encodeName(target)
	if err != nil {
		return vfs.Attr{}, err
	}
	return c.under.Symlink(dir, encName, encTarget, mode)
}

// Readlink implements vfs.FS.
func (c *CFS) Readlink(h vfs.Handle) (string, error) {
	stored, err := c.under.Readlink(h)
	if err != nil {
		return "", err
	}
	return c.decodeName(stored)
}

// Link implements vfs.FS.
func (c *CFS) Link(dir vfs.Handle, name string, target vfs.Handle) (vfs.Attr, error) {
	if !vfs.ValidName(name) {
		return vfs.Attr{}, vfs.ErrInval
	}
	enc, err := c.encodeName(name)
	if err != nil {
		return vfs.Attr{}, err
	}
	return c.under.Link(dir, enc, target)
}

// StatFS implements vfs.FS.
func (c *CFS) StatFS() (vfs.StatFS, error) { return c.under.StatFS() }

// Sync implements the optional vfs.Syncer capability by delegating to
// the backing store, so the COMMIT durability barrier reaches the
// device through the encryption layer.
func (c *CFS) Sync() error { return vfs.SyncFS(c.under) }
