package cfs

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"discfs/internal/ffs"
	"discfs/internal/vfs"
)

func newStack(t *testing.T, encrypt bool) (*CFS, *ffs.FFS) {
	t.Helper()
	under, err := ffs.New(ffs.Config{BlockSize: 1024, NumBlocks: 4096})
	if err != nil {
		t.Fatalf("ffs.New: %v", err)
	}
	c, err := New(under, "test passphrase", encrypt)
	if err != nil {
		t.Fatalf("cfs.New: %v", err)
	}
	return c, under
}

func TestEncryptedRoundTrip(t *testing.T) {
	c, _ := newStack(t, true)
	root := c.Root()
	attr, err := c.Create(root, "secret.txt", 0o600)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	msg := []byte("attack at dawn")
	if _, err := c.Write(attr.Handle, 0, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, eof, err := c.Read(attr.Handle, 0, 100)
	if err != nil || !eof {
		t.Fatalf("Read: %v eof=%v", err, eof)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read = %q, want %q", got, msg)
	}
}

func TestCiphertextActuallyDiffers(t *testing.T) {
	c, under := newStack(t, true)
	root := c.Root()
	attr, _ := c.Create(root, "f", 0o600)
	msg := []byte("plaintext must not reach the store")
	c.Write(attr.Handle, 0, msg)
	// Read through the backing store directly: must be ciphertext.
	raw, _, err := under.Read(attr.Handle, 0, 100)
	if err != nil {
		t.Fatalf("raw read: %v", err)
	}
	if bytes.Equal(raw, msg) {
		t.Error("backing store holds plaintext")
	}
	if bytes.Contains(raw, []byte("plaintext")) {
		t.Error("backing store leaks plaintext fragment")
	}
}

func TestNamesEncryptedInStore(t *testing.T) {
	c, under := newStack(t, true)
	root := c.Root()
	if _, err := c.Create(root, "visible-name.txt", 0o600); err != nil {
		t.Fatal(err)
	}
	raw, err := under.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != 1 {
		t.Fatalf("%d raw entries", len(raw))
	}
	if strings.Contains(raw[0].Name, "visible") {
		t.Errorf("stored name %q leaks plaintext", raw[0].Name)
	}
	// Through the layer the cleartext name is back.
	ents, err := c.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "visible-name.txt" {
		t.Errorf("decrypted listing = %v", ents)
	}
	// Lookup by cleartext name works (deterministic encryption).
	if _, err := c.Lookup(root, "visible-name.txt"); err != nil {
		t.Errorf("Lookup: %v", err)
	}
}

func TestNEModeIsIdentity(t *testing.T) {
	c, under := newStack(t, false)
	if c.Encrypting() {
		t.Fatal("NE mode reports encrypting")
	}
	root := c.Root()
	attr, _ := c.Create(root, "clear.txt", 0o644)
	msg := []byte("cfs-ne passes bytes through")
	c.Write(attr.Handle, 0, msg)
	raw, _, err := under.Read(attr.Handle, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw, msg) {
		t.Error("NE mode altered data")
	}
	ents, _ := under.ReadDir(root)
	if ents[0].Name != "clear.txt" {
		t.Errorf("NE mode altered name: %q", ents[0].Name)
	}
}

func TestRandomAccessCrypto(t *testing.T) {
	c, _ := newStack(t, true)
	root := c.Root()
	attr, _ := c.Create(root, "ra", 0o600)
	data := make([]byte, 10000)
	rng := rand.New(rand.NewSource(3))
	rng.Read(data)
	// Write the file in shuffled odd-sized pieces.
	type span struct{ off, end int }
	var spans []span
	for off := 0; off < len(data); off += 613 {
		end := off + 613
		if end > len(data) {
			end = len(data)
		}
		spans = append(spans, span{off, end})
	}
	rng.Shuffle(len(spans), func(i, j int) { spans[i], spans[j] = spans[j], spans[i] })
	for _, s := range spans {
		if _, err := c.Write(attr.Handle, uint64(s.off), data[s.off:s.end]); err != nil {
			t.Fatalf("Write(%d): %v", s.off, err)
		}
	}
	// Read back at random offsets.
	for i := 0; i < 50; i++ {
		off := rng.Intn(len(data) - 1)
		n := 1 + rng.Intn(len(data)-off)
		got, _, err := c.Read(attr.Handle, uint64(off), uint32(n))
		if err != nil {
			t.Fatalf("Read(%d,%d): %v", off, n, err)
		}
		if !bytes.Equal(got, data[off:off+len(got)]) {
			t.Fatalf("random access mismatch at %d+%d", off, n)
		}
	}
}

func TestDifferentFilesDifferentKeystreams(t *testing.T) {
	c, under := newStack(t, true)
	root := c.Root()
	a1, _ := c.Create(root, "f1", 0o600)
	a2, _ := c.Create(root, "f2", 0o600)
	msg := bytes.Repeat([]byte("same plaintext! "), 4)
	c.Write(a1.Handle, 0, msg)
	c.Write(a2.Handle, 0, msg)
	r1, _, _ := under.Read(a1.Handle, 0, 100)
	r2, _, _ := under.Read(a2.Handle, 0, 100)
	if bytes.Equal(r1, r2) {
		t.Error("two files share a keystream (ECB-style leak)")
	}
}

func TestSymlinkTargetEncrypted(t *testing.T) {
	c, under := newStack(t, true)
	root := c.Root()
	attr, err := c.Symlink(root, "link", "secret-target", 0o777)
	if err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	rawTarget, err := under.Readlink(attr.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rawTarget, "secret") {
		t.Errorf("stored target %q leaks", rawTarget)
	}
	got, err := c.Readlink(attr.Handle)
	if err != nil || got != "secret-target" {
		t.Errorf("Readlink = %q, %v", got, err)
	}
}

func TestNamespaceOpsThroughLayer(t *testing.T) {
	for _, encrypt := range []bool{true, false} {
		c, _ := newStack(t, encrypt)
		root := c.Root()
		d, err := c.Mkdir(root, "docs", 0o755)
		if err != nil {
			t.Fatalf("Mkdir: %v", err)
		}
		f, err := c.Create(d.Handle, "a.txt", 0o644)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if _, err := c.Link(d.Handle, "b.txt", f.Handle); err != nil {
			t.Fatalf("Link: %v", err)
		}
		if err := c.Rename(d.Handle, "a.txt", root, "moved.txt"); err != nil {
			t.Fatalf("Rename: %v", err)
		}
		if _, err := c.Lookup(root, "moved.txt"); err != nil {
			t.Errorf("Lookup(moved): %v", err)
		}
		if err := c.Remove(d.Handle, "b.txt"); err != nil {
			t.Fatalf("Remove: %v", err)
		}
		if err := c.Rmdir(root, "docs"); err != nil {
			t.Fatalf("Rmdir: %v", err)
		}
		if _, err := c.Lookup(root, "docs"); !errors.Is(err, vfs.ErrNotExist) {
			t.Errorf("Lookup(docs) after rmdir = %v", err)
		}
		// Dot lookups pass through un-mapped.
		if _, err := c.Lookup(root, "."); err != nil {
			t.Errorf("Lookup(.): %v", err)
		}
	}
}

func TestWrongKeyCannotRead(t *testing.T) {
	under, err := ffs.New(ffs.Config{BlockSize: 1024, NumBlocks: 2048})
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := New(under, "right key", true)
	c2, _ := New(under, "wrong key", true)
	root := c1.Root()
	attr, _ := c1.Create(root, "f", 0o600)
	msg := []byte("confidential")
	c1.Write(attr.Handle, 0, msg)
	// Name lookup with the wrong key fails (different name mapping).
	if _, err := c2.Lookup(root, "f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("wrong-key lookup = %v, want ErrNotExist", err)
	}
	// Even with the handle, the content decrypts to garbage.
	got, _, err := c2.Read(attr.Handle, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, msg) {
		t.Error("wrong key decrypted the data")
	}
}

func TestQuickContentRoundTrip(t *testing.T) {
	c, _ := newStack(t, true)
	root := c.Root()
	attr, err := c.Create(root, "q", 0o600)
	if err != nil {
		t.Fatal(err)
	}
	f := func(off16 uint16, data []byte) bool {
		off := uint64(off16)
		if _, err := c.Write(attr.Handle, off, data); err != nil {
			return false
		}
		got, _, err := c.Read(attr.Handle, off, uint32(len(data)))
		if err != nil {
			return false
		}
		return bytes.Equal(got, data) || (len(data) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestQuickNameRoundTrip(t *testing.T) {
	c, _ := newStack(t, true)
	f := func(raw []byte) bool {
		if len(raw) == 0 || len(raw) > 80 {
			return true
		}
		name := make([]byte, len(raw))
		for i, b := range raw {
			name[i] = "abcdefghijklmnopqrstuvwxyz0123456789._-"[int(b)%39]
		}
		n := string(name)
		if !vfs.ValidName(n) {
			return true
		}
		enc, err := c.encodeName(n)
		if err != nil {
			return false
		}
		dec, err := c.decodeName(enc)
		return err == nil && dec == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestForeignEntriesStayVisible(t *testing.T) {
	// A file written to the backing store without the CFS key (e.g. by
	// an out-of-band tool) has an undecodable name; CFS lists it under
	// its stored name rather than hiding it, as the original CFS did.
	under, err := ffs.New(ffs.Config{BlockSize: 1024, NumBlocks: 1024})
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(under, "the key", true)
	if err != nil {
		t.Fatal(err)
	}
	root := c.Root()
	if _, err := c.Create(root, "mine.txt", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := under.Create(root, "foreign-plaintext-name", 0o644); err != nil {
		t.Fatal(err)
	}
	ents, err := c.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 2 {
		t.Fatalf("listed %d entries, want 2", len(ents))
	}
	var sawMine, sawForeign bool
	for _, e := range ents {
		switch e.Name {
		case "mine.txt":
			sawMine = true
		case "foreign-plaintext-name":
			sawForeign = true
		}
	}
	if !sawMine || !sawForeign {
		t.Errorf("listing = %v, want decrypted own name and raw foreign name", ents)
	}
}

func TestLongNamesRejectedWhenEncrypted(t *testing.T) {
	under, _ := ffs.New(ffs.Config{BlockSize: 1024, NumBlocks: 512})
	c, _ := New(under, "k", true)
	// Base32 + IV expansion can push an otherwise-legal name past the
	// limit; the layer must reject it rather than truncate.
	long := strings.Repeat("n", 200) // 200 plaintext → >255 encoded
	if _, err := c.Create(c.Root(), long, 0o644); !errors.Is(err, vfs.ErrNameTooLong) {
		t.Errorf("long name = %v, want ErrNameTooLong", err)
	}
}
