package cache

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// Bytes is a byte-budget LRU keyed by 32-byte content addresses — the
// dedup layer's chunk read cache. Unlike Cache it bounds total stored
// bytes rather than entry count, because chunk sizes vary by an order
// of magnitude. It shares the sharding rationale: 16 independent LRUs
// so concurrent readers of different chunks never contend on one lock.
//
// Values are content-addressed, so entries can never go stale; there is
// no generation or expiry machinery. Put transfers ownership of the
// slice to the cache; Get returns a shared read-only view that callers
// must copy out of, never write through.
type Bytes struct {
	shards [bytesShards]bytesShard
	hits   atomic.Uint64
	misses atomic.Uint64
}

const bytesShards = 16

type bytesShard struct {
	mu    sync.Mutex
	cap   int // byte budget for this shard
	bytes int // bytes currently held
	ll    *list.List
	m     map[[32]byte]*list.Element
}

type bytesEntry struct {
	key [32]byte
	val []byte
}

// NewBytes returns a cache bounded to roughly capacity bytes in total
// (each shard gets an equal slice of the budget). capacity must be
// positive.
func NewBytes(capacity int) *Bytes {
	per := capacity / bytesShards
	if per < 1 {
		per = 1
	}
	b := &Bytes{}
	for i := range b.shards {
		b.shards[i] = bytesShard{
			cap: per,
			ll:  list.New(),
			m:   make(map[[32]byte]*list.Element),
		}
	}
	return b
}

// shardForSum picks a shard from the key's own entropy; content
// addresses are uniformly distributed already, so no extra hashing.
func (b *Bytes) shardForSum(key [32]byte) *bytesShard {
	return &b.shards[int(key[0])%bytesShards]
}

// Get returns the cached value for key. The returned slice is shared:
// read-only, valid until the caller stops using it (eviction only drops
// the cache's reference).
func (b *Bytes) Get(key [32]byte) ([]byte, bool) {
	s := b.shardForSum(key)
	s.mu.Lock()
	el, ok := s.m[key]
	if !ok {
		s.mu.Unlock()
		b.misses.Add(1)
		return nil, false
	}
	s.ll.MoveToFront(el)
	v := el.Value.(*bytesEntry).val
	s.mu.Unlock()
	b.hits.Add(1)
	return v, true
}

// Put inserts val under key, taking ownership of the slice. Values
// larger than a shard's whole budget are declined (caching them would
// evict everything else for one entry that can't recur often enough to
// pay for it).
func (b *Bytes) Put(key [32]byte, val []byte) {
	s := b.shardForSum(key)
	if len(val) > s.cap {
		return
	}
	s.mu.Lock()
	if el, ok := s.m[key]; ok {
		// Content-addressed: same key ⇒ same bytes. Just refresh.
		s.ll.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.m[key] = s.ll.PushFront(&bytesEntry{key: key, val: val})
	s.bytes += len(val)
	for s.bytes > s.cap {
		back := s.ll.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*bytesEntry)
		s.ll.Remove(back)
		delete(s.m, ent.key)
		s.bytes -= len(ent.val)
	}
	s.mu.Unlock()
}

// Stats returns cumulative hit and miss counts.
func (b *Bytes) Stats() (hits, misses uint64) {
	return b.hits.Load(), b.misses.Load()
}

// Len returns the number of cached entries.
func (b *Bytes) Len() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// Bytes returns the number of cached bytes.
func (b *Bytes) Bytes() int {
	n := 0
	for i := range b.shards {
		s := &b.shards[i]
		s.mu.Lock()
		n += s.bytes
		s.mu.Unlock()
	}
	return n
}
