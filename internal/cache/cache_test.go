package cache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

var t0 = time.Date(2001, 6, 15, 12, 0, 0, 0, time.UTC)

func entry(perm uint8, gen uint64) Entry {
	return Entry{Perm: perm, Gen: gen, Expires: t0.Add(time.Minute)}
}

// k builds a Key from a short name; tests address entries by peer.
func k(peer string) Key { return Key{Peer: peer} }

func TestPutGet(t *testing.T) {
	c := New(4)
	c.Put(k("a"), entry(7, 1))
	got, ok := c.Get(k("a"), 1, t0)
	if !ok || got.Perm != 7 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := c.Get(k("missing"), 1, t0); ok {
		t.Error("missing key hit")
	}
}

func TestKeyDistinguishesHandle(t *testing.T) {
	c := New(8)
	c.Put(Key{Peer: "a", Ino: 1}, entry(7, 1))
	if _, ok := c.Get(Key{Peer: "a", Ino: 2}, 1, t0); ok {
		t.Error("different inode hit")
	}
	if _, ok := c.Get(Key{Peer: "a", Ino: 1, Gen: 1}, 1, t0); ok {
		t.Error("different handle generation hit")
	}
}

func TestGenerationInvalidates(t *testing.T) {
	c := New(4)
	c.Put(k("a"), entry(7, 1))
	if _, ok := c.Get(k("a"), 2, t0); ok {
		t.Error("stale generation hit")
	}
	// The stale entry is evicted.
	if c.Len() != 0 {
		t.Errorf("len = %d after stale hit", c.Len())
	}
}

func TestExpiryInvalidates(t *testing.T) {
	c := New(4)
	c.Put(k("a"), entry(7, 1))
	if _, ok := c.Get(k("a"), 1, t0.Add(2*time.Minute)); ok {
		t.Error("expired entry hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	if c.Shards() != 1 {
		t.Fatalf("small cache has %d shards, want 1", c.Shards())
	}
	c.Put(k("a"), entry(1, 1))
	c.Put(k("b"), entry(2, 1))
	c.Put(k("c"), entry(3, 1))
	// Touch "a" so "b" is the oldest.
	c.Get(k("a"), 1, t0)
	c.Put(k("d"), entry(4, 1))
	if _, ok := c.Get(k("b"), 1, t0); ok {
		t.Error("LRU victim survived")
	}
	for _, key := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k(key), 1, t0); !ok {
			t.Errorf("%q evicted wrongly", key)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestUpdateExisting(t *testing.T) {
	c := New(2)
	c.Put(k("a"), entry(1, 1))
	c.Put(k("a"), entry(5, 1))
	got, _ := c.Get(k("a"), 1, t0)
	if got.Perm != 5 {
		t.Errorf("perm = %d", got.Perm)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestPurgeAndRemove(t *testing.T) {
	c := New(4)
	c.Put(k("a"), entry(1, 1))
	c.Put(k("b"), entry(2, 1))
	c.Remove(k("a"))
	if _, ok := c.Get(k("a"), 1, t0); ok {
		t.Error("removed key hit")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("len after purge = %d", c.Len())
	}
	if _, ok := c.Get(k("b"), 1, t0); ok {
		t.Error("purged key hit")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put(k("a"), entry(1, 1))
	if _, ok := c.Get(k("a"), 1, t0); ok {
		t.Error("zero-capacity cache stored an entry")
	}
}

func TestStatsCount(t *testing.T) {
	c := New(4)
	c.Put(k("a"), entry(1, 1))
	c.Get(k("a"), 1, t0)
	c.Get(k("a"), 1, t0)
	c.Get(k("miss"), 1, t0)
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d, want 2/1", hits, misses)
	}
}

// ---- sharded behavior ----

func TestShardedDefaults(t *testing.T) {
	c := New(128) // the paper's capacity: sharded
	if c.Shards() != defaultShards {
		t.Fatalf("shards = %d, want %d", c.Shards(), defaultShards)
	}
	if c.Cap() != 128 {
		t.Fatalf("cap = %d", c.Cap())
	}
	// Per-shard capacities sum to the total.
	sum := 0
	for i := range c.shards {
		sum += c.shards[i].cap
	}
	if sum != 128 {
		t.Errorf("shard capacities sum to %d, want 128", sum)
	}
}

func TestShardedRoundTrip(t *testing.T) {
	// Headroom over the 200 live keys: eviction is per-shard, so the
	// bound must absorb hashing imbalance across the 8 shards.
	c := NewSharded(512, 8)
	for i := 0; i < 200; i++ {
		c.Put(Key{Peer: fmt.Sprintf("peer-%d", i), Ino: uint64(i)}, entry(uint8(i%8), 1))
	}
	for i := 0; i < 200; i++ {
		got, ok := c.Get(Key{Peer: fmt.Sprintf("peer-%d", i), Ino: uint64(i)}, 1, t0)
		if !ok {
			t.Fatalf("peer-%d missing", i)
		}
		if got.Perm != uint8(i%8) {
			t.Fatalf("peer-%d perm = %d", i, got.Perm)
		}
	}
	hits, misses := c.Stats()
	if hits != 200 || misses != 0 {
		t.Errorf("stats = %d/%d, want 200/0", hits, misses)
	}
}

func TestShardedSpread(t *testing.T) {
	c := NewSharded(1024, 16)
	for i := 0; i < 512; i++ {
		c.Put(Key{Peer: fmt.Sprintf("ed25519-hex:%064d", i)}, entry(1, 1))
	}
	// Hashing must actually spread keys: no shard should hold more than
	// a quarter of the population (expected ~32 of 512 per shard).
	for i := range c.shards {
		if n := c.shards[i].ll.Len(); n > 128 {
			t.Fatalf("shard %d holds %d of 512 entries; hash not spreading", i, n)
		}
	}
}

func TestTinyShardedCache(t *testing.T) {
	// Fewer capacity units than shards: every shard still admits one
	// entry rather than silently caching nothing.
	c := NewSharded(2, 8)
	c.Put(k("a"), entry(3, 1))
	if _, ok := c.Get(k("a"), 1, t0); !ok {
		t.Error("tiny sharded cache dropped entry")
	}
}

func TestConcurrentSharded(t *testing.T) {
	c := New(1024)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := Key{Peer: fmt.Sprintf("worker-%d", g), Ino: uint64(i % 64)}
				if i%3 == 0 {
					c.Put(key, entry(uint8(i%8), 1))
				} else {
					c.Get(key, 1, t0)
				}
			}
		}(g)
	}
	wg.Wait()
	hits, misses := c.Stats()
	if hits+misses == 0 {
		t.Error("no gets recorded")
	}
}

// TestAgainstModel checks the LRU against a brute-force model under a
// random workload. A single-shard cache is exactly LRU.
func TestAgainstModel(t *testing.T) {
	const capn = 8
	c := New(capn)
	type modelEnt struct {
		val  Entry
		used int
	}
	model := map[string]*modelEnt{}
	tick := 0
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 5000; step++ {
		key := fmt.Sprintf("k%d", rng.Intn(20))
		tick++
		switch rng.Intn(3) {
		case 0: // put
			e := entry(uint8(rng.Intn(8)), 1)
			c.Put(k(key), e)
			if m, ok := model[key]; ok {
				m.val, m.used = e, tick
			} else {
				if len(model) == capn {
					// evict least recently used
					var victim string
					min := 1 << 30
					for k, m := range model {
						if m.used < min {
							min, victim = m.used, k
						}
					}
					delete(model, victim)
				}
				model[key] = &modelEnt{val: e, used: tick}
			}
		case 1: // get
			got, ok := c.Get(k(key), 1, t0)
			m, mok := model[key]
			if ok != mok {
				t.Fatalf("step %d: Get(%q) ok=%v, model=%v", step, key, ok, mok)
			}
			if ok {
				if got.Perm != m.val.Perm {
					t.Fatalf("step %d: Get(%q) perm=%d, model=%d", step, key, got.Perm, m.val.Perm)
				}
				m.used = tick
			}
		case 2: // remove
			c.Remove(k(key))
			delete(model, key)
		}
		if c.Len() != len(model) {
			t.Fatalf("step %d: len=%d model=%d", step, c.Len(), len(model))
		}
	}
}
