package cache

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

var t0 = time.Date(2001, 6, 15, 12, 0, 0, 0, time.UTC)

func entry(perm uint8, gen uint64) Entry {
	return Entry{Perm: perm, Gen: gen, Expires: t0.Add(time.Minute)}
}

func TestPutGet(t *testing.T) {
	c := New(4)
	c.Put("a", entry(7, 1))
	got, ok := c.Get("a", 1, t0)
	if !ok || got.Perm != 7 {
		t.Fatalf("Get = %+v, %v", got, ok)
	}
	if _, ok := c.Get("missing", 1, t0); ok {
		t.Error("missing key hit")
	}
}

func TestGenerationInvalidates(t *testing.T) {
	c := New(4)
	c.Put("a", entry(7, 1))
	if _, ok := c.Get("a", 2, t0); ok {
		t.Error("stale generation hit")
	}
	// The stale entry is evicted.
	if c.Len() != 0 {
		t.Errorf("len = %d after stale hit", c.Len())
	}
}

func TestExpiryInvalidates(t *testing.T) {
	c := New(4)
	c.Put("a", entry(7, 1))
	if _, ok := c.Get("a", 1, t0.Add(2*time.Minute)); ok {
		t.Error("expired entry hit")
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(3)
	c.Put("a", entry(1, 1))
	c.Put("b", entry(2, 1))
	c.Put("c", entry(3, 1))
	// Touch "a" so "b" is the oldest.
	c.Get("a", 1, t0)
	c.Put("d", entry(4, 1))
	if _, ok := c.Get("b", 1, t0); ok {
		t.Error("LRU victim survived")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k, 1, t0); !ok {
			t.Errorf("%q evicted wrongly", k)
		}
	}
	if c.Len() != 3 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestUpdateExisting(t *testing.T) {
	c := New(2)
	c.Put("a", entry(1, 1))
	c.Put("a", entry(5, 1))
	got, _ := c.Get("a", 1, t0)
	if got.Perm != 5 {
		t.Errorf("perm = %d", got.Perm)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d", c.Len())
	}
}

func TestPurgeAndRemove(t *testing.T) {
	c := New(4)
	c.Put("a", entry(1, 1))
	c.Put("b", entry(2, 1))
	c.Remove("a")
	if _, ok := c.Get("a", 1, t0); ok {
		t.Error("removed key hit")
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("len after purge = %d", c.Len())
	}
	if _, ok := c.Get("b", 1, t0); ok {
		t.Error("purged key hit")
	}
}

func TestZeroCapacityDisables(t *testing.T) {
	c := New(0)
	c.Put("a", entry(1, 1))
	if _, ok := c.Get("a", 1, t0); ok {
		t.Error("zero-capacity cache stored an entry")
	}
}

func TestStatsCount(t *testing.T) {
	c := New(4)
	c.Put("a", entry(1, 1))
	c.Get("a", 1, t0)
	c.Get("a", 1, t0)
	c.Get("miss", 1, t0)
	hits, misses := c.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d/%d, want 2/1", hits, misses)
	}
}

// TestAgainstModel checks the LRU against a brute-force model under a
// random workload.
func TestAgainstModel(t *testing.T) {
	const capn = 8
	c := New(capn)
	type modelEnt struct {
		val  Entry
		used int
	}
	model := map[string]*modelEnt{}
	tick := 0
	rng := rand.New(rand.NewSource(5))
	for step := 0; step < 5000; step++ {
		key := fmt.Sprintf("k%d", rng.Intn(20))
		tick++
		switch rng.Intn(3) {
		case 0: // put
			e := entry(uint8(rng.Intn(8)), 1)
			c.Put(key, e)
			if m, ok := model[key]; ok {
				m.val, m.used = e, tick
			} else {
				if len(model) == capn {
					// evict least recently used
					var victim string
					min := 1 << 30
					for k, m := range model {
						if m.used < min {
							min, victim = m.used, k
						}
					}
					delete(model, victim)
				}
				model[key] = &modelEnt{val: e, used: tick}
			}
		case 1: // get
			got, ok := c.Get(key, 1, t0)
			m, mok := model[key]
			if ok != mok {
				t.Fatalf("step %d: Get(%q) ok=%v, model=%v", step, key, ok, mok)
			}
			if ok {
				if got.Perm != m.val.Perm {
					t.Fatalf("step %d: Get(%q) perm=%d, model=%d", step, key, got.Perm, m.val.Perm)
				}
				m.used = tick
			}
		case 2: // remove
			c.Remove(key)
			delete(model, key)
		}
		if c.Len() != len(model) {
			t.Fatalf("step %d: len=%d model=%d", step, c.Len(), len(model))
		}
	}
}
