// Package cache provides the policy-decision cache of the DisCFS server.
//
// The paper's prototype keeps "a cache of requested operations and policy
// results" (§5) and runs its macro-benchmark with a cache of 128 policy
// results (§6). This is that cache: a bounded LRU mapping (principal,
// handle) to the compliance value the KeyNote engine computed, with
// generation- and time-based invalidation so credential submissions,
// revocations, and time-of-day policies take effect.
//
// The cache is N-way sharded by key hash so concurrent requests from
// different principals never contend on one lock: each shard is an
// independent LRU with its own mutex and hit/miss counters. Small
// capacities collapse to a single shard, which keeps eviction order
// exactly LRU where the bound is tight enough for it to matter.
package cache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"time"
)

// Key identifies one cached decision: which principal asked about which
// file handle. Using a comparable struct (rather than a formatted
// string) keeps the hot path allocation-free.
type Key struct {
	Peer string // requesting principal, canonical form
	Ino  uint64 // handle inode number
	Gen  uint32 // handle generation
}

// Entry is a cached policy decision.
type Entry struct {
	// Perm is the rwx permission bitmask (0-7) the compliance check
	// yielded.
	Perm uint8
	// Gen is the policy-session generation at decision time; a differing
	// generation invalidates the entry.
	Gen uint64
	// Expires is the wall-clock expiry (time-dependent conditions are
	// re-evaluated at most this much later).
	Expires time.Time
}

// singleShardMax is the largest capacity served by one shard. Below it,
// eviction is exactly LRU; above it, the cache spreads over shards and
// eviction is LRU per shard.
const singleShardMax = 63

// defaultShards is the shard count for capacities above singleShardMax.
// Power of two, comfortably more than typical core counts.
const defaultShards = 16

// seed is the process-wide hash seed; one seed shared by every cache
// keeps shardFor cheap.
var seed = maphash.MakeSeed()

// Cache is a bounded decision cache, sharded for concurrent use.
type Cache struct {
	shards []shard
	mask   uint64
	cap    int
}

type shard struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[Key]*list.Element

	hits   uint64
	misses uint64
}

type lruItem struct {
	key Key
	val Entry
}

// New creates a cache holding up to capacity decisions. The paper used
// 128. A capacity of 0 disables caching (every Get misses).
func New(capacity int) *Cache {
	n := defaultShards
	if capacity <= singleShardMax {
		n = 1
	}
	return NewSharded(capacity, n)
}

// NewSharded creates a cache with an explicit shard count, which is
// rounded up to a power of two. Capacity is distributed across shards.
func NewSharded(capacity, shards int) *Cache {
	if capacity < 0 {
		capacity = 0
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	c := &Cache{shards: make([]shard, n), mask: uint64(n - 1), cap: capacity}
	base, extra := capacity/n, capacity%n
	for i := range c.shards {
		sc := base
		if i < extra {
			sc++
		}
		c.shards[i] = shard{
			cap:   sc,
			ll:    list.New(),
			items: make(map[Key]*list.Element, sc),
		}
	}
	return c
}

// Shards returns the shard count (monitoring, tests).
func (c *Cache) Shards() int { return len(c.shards) }

// Cap returns the total capacity.
func (c *Cache) Cap() int { return c.cap }

func (c *Cache) shardFor(k Key) *shard {
	if c.mask == 0 {
		return &c.shards[0]
	}
	h := maphash.String(seed, k.Peer)
	h ^= (k.Ino + uint64(k.Gen)<<48) * 0x9e3779b97f4a7c15
	h ^= h >> 29
	return &c.shards[h&c.mask]
}

// Get looks up a decision, applying generation and expiry checks.
func (c *Cache) Get(k Key, gen uint64, now time.Time) (Entry, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[k]
	if !ok {
		s.misses++
		return Entry{}, false
	}
	ent := el.Value.(*lruItem).val
	if ent.Gen != gen || now.After(ent.Expires) {
		s.ll.Remove(el)
		delete(s.items, k)
		s.misses++
		return Entry{}, false
	}
	if s.ll.Front() != el {
		s.ll.MoveToFront(el)
	}
	s.hits++
	return ent, true
}

// Put stores a decision, evicting the shard's least recently used entry
// if the shard is full.
func (c *Cache) Put(k Key, ent Entry) {
	if c.cap <= 0 {
		return
	}
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cap <= 0 {
		// Capacity smaller than the shard count left this shard empty;
		// hold one entry anyway so tiny sharded caches still function.
		s.cap = 1
	}
	if el, ok := s.items[k]; ok {
		el.Value.(*lruItem).val = ent
		s.ll.MoveToFront(el)
		return
	}
	el := s.ll.PushFront(&lruItem{key: k, val: ent})
	s.items[k] = el
	if s.ll.Len() > s.cap {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.items, oldest.Value.(*lruItem).key)
		}
	}
}

// Remove drops one key.
func (c *Cache) Remove(k Key) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		s.ll.Remove(el)
		delete(s.items, k)
	}
}

// Purge drops every entry (e.g. after a revocation).
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[Key]*list.Element, s.cap)
		s.mu.Unlock()
	}
}

// Len returns the current entry count.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Stats returns cumulative hit and miss counts, summed over shards.
func (c *Cache) Stats() (hits, misses uint64) {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}
