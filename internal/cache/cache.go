// Package cache provides the policy-decision cache of the DisCFS server.
//
// The paper's prototype keeps "a cache of requested operations and policy
// results" (§5) and runs its macro-benchmark with a cache of 128 policy
// results (§6). This is that cache: a bounded LRU mapping (principal,
// handle) to the compliance value the KeyNote engine computed, with
// generation- and time-based invalidation so credential submissions,
// revocations, and time-of-day policies take effect.
package cache

import (
	"container/list"
	"sync"
	"time"
)

// Entry is a cached policy decision.
type Entry struct {
	// Perm is the rwx permission bitmask (0-7) the compliance check
	// yielded.
	Perm uint8
	// Gen is the policy-session generation at decision time; a differing
	// generation invalidates the entry.
	Gen uint64
	// Expires is the wall-clock expiry (time-dependent conditions are
	// re-evaluated at most this much later).
	Expires time.Time
}

// LRU is a bounded least-recently-used decision cache, safe for
// concurrent use.
type LRU struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List
	items map[string]*list.Element

	hits   uint64
	misses uint64
}

type lruItem struct {
	key string
	val Entry
}

// New creates a cache holding up to capacity decisions. The paper used
// 128. A capacity of 0 disables caching (every Get misses).
func New(capacity int) *LRU {
	return &LRU{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// Get looks up a decision, applying generation and expiry checks.
func (c *LRU) Get(key string, gen uint64, now time.Time) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Entry{}, false
	}
	ent := el.Value.(*lruItem).val
	if ent.Gen != gen || now.After(ent.Expires) {
		c.ll.Remove(el)
		delete(c.items, key)
		c.misses++
		return Entry{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent, true
}

// Put stores a decision, evicting the least recently used entry if full.
func (c *LRU) Put(key string, ent Entry) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruItem).val = ent
		c.ll.MoveToFront(el)
		return
	}
	el := c.ll.PushFront(&lruItem{key: key, val: ent})
	c.items[key] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		if oldest != nil {
			c.ll.Remove(oldest)
			delete(c.items, oldest.Value.(*lruItem).key)
		}
	}
}

// Remove drops one key.
func (c *LRU) Remove(key string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.Remove(el)
		delete(c.items, key)
	}
}

// Purge drops every entry (e.g. after a revocation).
func (c *LRU) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element, c.cap)
}

// Len returns the current entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats returns cumulative hit and miss counts.
func (c *LRU) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
