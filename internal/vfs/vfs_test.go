package vfs

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestValidName(t *testing.T) {
	valid := []string{"a", "file.txt", "with space", "UPPER", "x.y.z", "-dash", "名前"}
	for _, n := range valid {
		if !ValidName(n) {
			t.Errorf("ValidName(%q) = false, want true", n)
		}
	}
	invalid := []string{"", ".", "..", "a/b", "/", "nul\x00", strings.Repeat("x", MaxNameLen+1)}
	for _, n := range invalid {
		if ValidName(n) {
			t.Errorf("ValidName(%q) = true, want false", n)
		}
	}
	// Exactly MaxNameLen is allowed.
	if !ValidName(strings.Repeat("x", MaxNameLen)) {
		t.Error("name of exactly MaxNameLen rejected")
	}
}

func TestQuickValidNameNeverAcceptsSeparators(t *testing.T) {
	f := func(s string) bool {
		if ValidName(s) {
			return !strings.ContainsAny(s, "/\x00") && s != "" && s != "." && s != ".."
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestHandleZero(t *testing.T) {
	if !(Handle{}).IsZero() {
		t.Error("zero handle not IsZero")
	}
	if (Handle{Ino: 1}).IsZero() || (Handle{Gen: 1}).IsZero() {
		t.Error("non-zero handle reported IsZero")
	}
}

func TestFileTypeValues(t *testing.T) {
	// NFSv2 ftype codes must match; the wire protocol depends on these.
	if TypeRegular != 1 || TypeDir != 2 || TypeSymlink != 5 {
		t.Errorf("file type codes drifted: reg=%d dir=%d link=%d",
			TypeRegular, TypeDir, TypeSymlink)
	}
}
