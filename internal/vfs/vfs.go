// Package vfs defines the filesystem interface shared by the DisCFS
// stack: the FFS substrate implements it, the CFS layer stacks on top of
// any implementation, the DisCFS core wraps one with credential checks,
// and the NFS server exports one over RPC.
package vfs

import (
	"errors"
	"time"
)

// Handle identifies a file: an inode number plus a generation counter.
// The paper's prototype used bare inode numbers and flagged exactly this
// inode+generation scheme (as in 4.4BSD NFS) as the fix; we implement
// the fix.
type Handle struct {
	Ino uint64
	Gen uint32
}

// IsZero reports whether the handle is the zero value (no file).
func (h Handle) IsZero() bool { return h.Ino == 0 && h.Gen == 0 }

// FileType enumerates file kinds (the NFSv2 subset DisCFS needs).
type FileType uint32

// File types.
const (
	TypeNone    FileType = 0
	TypeRegular FileType = 1
	TypeDir     FileType = 2
	TypeSymlink FileType = 5
)

// Attr holds file attributes, mirroring the NFSv2 fattr structure.
type Attr struct {
	Handle Handle
	Type   FileType
	Mode   uint32 // permission bits (low 9 bits + setuid/setgid/sticky)
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   uint64
	Blocks uint64 // allocated blocks
	Atime  time.Time
	Mtime  time.Time
	Ctime  time.Time
}

// SetAttr carries the mutable attributes of an NFSv2 sattr; nil fields
// are left unchanged.
type SetAttr struct {
	Mode  *uint32
	UID   *uint32
	GID   *uint32
	Size  *uint64
	Atime *time.Time
	Mtime *time.Time
}

// DirEntry is one directory entry.
type DirEntry struct {
	Name   string
	Handle Handle
}

// StatFS describes filesystem capacity, mirroring NFSv2 statfs results.
type StatFS struct {
	BlockSize   uint32
	TotalBlocks uint64
	FreeBlocks  uint64
	AvailBlocks uint64
	TotalInodes uint64
	FreeInodes  uint64
}

// FS is the filesystem interface. Implementations must be safe for
// concurrent use.
type FS interface {
	// Root returns the handle of the filesystem root directory.
	Root() Handle
	// GetAttr returns the attributes of h.
	GetAttr(h Handle) (Attr, error)
	// SetAttr updates attributes of h and returns the new attributes.
	SetAttr(h Handle, s SetAttr) (Attr, error)
	// Lookup resolves name within directory dir.
	Lookup(dir Handle, name string) (Attr, error)
	// Read returns up to count bytes at offset off. eof is true when the
	// read reaches the end of the file.
	Read(h Handle, off uint64, count uint32) (data []byte, eof bool, err error)
	// Write stores data at offset off, extending the file as needed.
	Write(h Handle, off uint64, data []byte) (Attr, error)
	// Create makes a regular file in dir.
	Create(dir Handle, name string, mode uint32) (Attr, error)
	// Remove unlinks a non-directory from dir.
	Remove(dir Handle, name string) error
	// Rename moves fromName in fromDir to toName in toDir, replacing a
	// non-directory target if present.
	Rename(fromDir Handle, fromName string, toDir Handle, toName string) error
	// Mkdir makes a directory in dir.
	Mkdir(dir Handle, name string, mode uint32) (Attr, error)
	// Rmdir removes an empty directory from dir.
	Rmdir(dir Handle, name string) error
	// ReadDir lists all entries of dir, excluding "." and "..".
	ReadDir(dir Handle) ([]DirEntry, error)
	// Symlink creates a symbolic link to target.
	Symlink(dir Handle, name, target string, mode uint32) (Attr, error)
	// Readlink returns the target of a symlink.
	Readlink(h Handle) (string, error)
	// Link creates a hard link to target named name in dir.
	Link(dir Handle, name string, target Handle) (Attr, error)
	// StatFS reports capacity.
	StatFS() (StatFS, error)
}

// Syncer is an optional FS capability: implementations whose storage
// has a volatile write cache expose Sync as the durability barrier. The
// NFS COMMIT operation reaches it through any stacked layers; data
// written before a successful Sync survives a crash of the store.
type Syncer interface {
	Sync() error
}

// ReaderInto is an optional FS capability: Read with a caller-supplied
// destination, the zero-copy half of the data plane. ReadInto fills dst
// with file content at off — short only at end of file — and reports
// the byte count and EOF exactly as Read does. The NFS server reads
// directly into the reply record through it, skipping the per-call
// allocation and copy of the Read path. Implementations must not retain
// dst.
type ReaderInto interface {
	ReadInto(h Handle, off uint64, dst []byte) (n int, eof bool, err error)
}

// ReadFSInto reads through fs's ReaderInto capability when present, and
// falls back to Read-and-copy otherwise.
func ReadFSInto(fs FS, h Handle, off uint64, dst []byte) (int, bool, error) {
	if ri, ok := fs.(ReaderInto); ok {
		return ri.ReadInto(h, off, dst)
	}
	data, eof, err := fs.Read(h, off, uint32(len(dst)))
	if err != nil {
		return 0, false, err
	}
	return copy(dst, data), eof, nil
}

// SyncFS flushes fs if it implements Syncer, and is a no-op otherwise.
func SyncFS(fs FS) error {
	if s, ok := fs.(Syncer); ok {
		return s.Sync()
	}
	return nil
}

// Filesystem errors; the NFS layer maps them onto NFSv2 status codes.
var (
	ErrNotExist    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrStale       = errors.New("vfs: stale file handle")
	ErrPerm        = errors.New("vfs: permission denied")
	ErrNoSpace     = errors.New("vfs: no space left on device")
	ErrNameTooLong = errors.New("vfs: file name too long")
	ErrInval       = errors.New("vfs: invalid argument")
	ErrIO          = errors.New("vfs: i/o error")
	ErrFBig        = errors.New("vfs: file too large")
	// ErrThrottled reports admission-control rejection: the request was
	// shaped beyond its principal's budget and should be retried after a
	// backoff. It maps to the TRYLATER extension status on the wire.
	ErrThrottled = errors.New("vfs: request throttled")
)

// MaxNameLen is the maximum directory entry name length (NFSv2 limit).
const MaxNameLen = 255

// ValidName reports whether name is a legal directory entry name.
func ValidName(name string) bool {
	if name == "" || name == "." || name == ".." || len(name) > MaxNameLen {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] == '/' || name[i] == 0 {
			return false
		}
	}
	return true
}
