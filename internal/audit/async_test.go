package audit

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// countingWriter counts lines written; optionally blocks each Write
// until released, to simulate a slow sink.
type countingWriter struct {
	mu      sync.Mutex
	lines   int
	started chan struct{} // signaled once on first Write
	release chan struct{} // nil: never block
	once    sync.Once
}

func (w *countingWriter) Write(p []byte) (int, error) {
	w.once.Do(func() {
		if w.started != nil {
			close(w.started)
		}
	})
	if w.release != nil {
		<-w.release
	}
	w.mu.Lock()
	w.lines += strings.Count(string(p), "\n")
	w.mu.Unlock()
	return len(p), nil
}

func (w *countingWriter) count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lines
}

// TestCloseDrains: every record appended before Close appears in the
// mirror output — nothing is lost in the queue.
func TestCloseDrains(t *testing.T) {
	w := &countingWriter{}
	l := New(64, w)
	const n = 500
	for i := 0; i < n; i++ {
		l.Append(rec("k", true))
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := w.count(); got != n {
		t.Errorf("mirror wrote %d lines, want %d", got, n)
	}
	if d := l.Dropped(); d != 0 {
		t.Errorf("dropped = %d, want 0", d)
	}
	// Idempotent.
	if err := l.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestDropCounter saturates a tiny queue against a blocked writer and
// checks the drop accounting: written + dropped == appended.
func TestDropCounter(t *testing.T) {
	w := &countingWriter{
		started: make(chan struct{}),
		release: make(chan struct{}),
	}
	l := NewWithQueue(64, w, 4)
	// First record: the worker picks it up and blocks inside Write.
	l.Append(rec("k", true))
	<-w.started
	// Fill the queue (depth 4), then overflow it.
	const overflow = 7
	for i := 0; i < 4+overflow; i++ {
		l.Append(rec("k", true))
	}
	if d := l.Dropped(); d != overflow {
		t.Errorf("dropped = %d, want %d", d, overflow)
	}
	close(w.release)
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := w.count(); got != 1+4 {
		t.Errorf("mirror wrote %d lines, want 5", got)
	}
	// The ring saw everything, drops or not.
	total, _ := l.Totals()
	if total != 1+4+overflow {
		t.Errorf("total = %d, want %d", total, 1+4+overflow)
	}
}

type failWriter struct{}

func (failWriter) Write(p []byte) (int, error) { return 0, errors.New("disk full") }

// TestWriteErrorSurfaces: Flush and Close report the first mirror write
// error.
func TestWriteErrorSurfaces(t *testing.T) {
	l := New(16, failWriter{})
	l.Append(rec("k", true))
	if err := l.Flush(); err == nil {
		t.Error("Flush returned nil after write failure")
	}
	if err := l.Close(); err == nil {
		t.Error("Close returned nil after write failure")
	}
}

// TestAppendAfterClose: the ring still records, the mirror does not, and
// nothing panics.
func TestAppendAfterClose(t *testing.T) {
	w := &countingWriter{}
	l := New(64, w)
	l.Append(rec("k", true))
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l.Append(rec("k", false))
	total, denied := l.Totals()
	if total != 2 || denied != 1 {
		t.Errorf("totals = %d/%d, want 2/1", total, denied)
	}
	if got := w.count(); got != 1 {
		t.Errorf("mirror wrote %d lines after close, want 1", got)
	}
}

// TestShardedRecentOrder: with per-slot locking, Recent still returns
// the newest records first, globally ordered.
func TestShardedRecentOrder(t *testing.T) {
	l := New(32, nil)
	for i := 0; i < 100; i++ {
		r := rec("k", true)
		r.Ino = uint64(i)
		l.Append(r)
	}
	got := l.Recent(10)
	if len(got) != 10 {
		t.Fatalf("Recent = %d records", len(got))
	}
	for i, r := range got {
		if want := uint64(99 - i); r.Ino != want {
			t.Errorf("recent[%d].Ino = %d, want %d", i, r.Ino, want)
		}
	}
	if full := l.Recent(1000); len(full) != 32 {
		t.Errorf("retained %d records, want 32", len(full))
	}
}

// TestConcurrentAppendWithWriter hammers Append from many goroutines
// against a live mirror, for the race detector.
func TestConcurrentAppendWithWriter(t *testing.T) {
	w := &countingWriter{}
	l := New(256, w)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r := rec(fmt.Sprintf("worker-%d", g), i%4 != 0)
				l.Append(r)
				if i%50 == 0 {
					l.Recent(8)
					l.Totals()
				}
			}
		}(g)
	}
	wg.Wait()
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	total, _ := l.Totals()
	if total != 1600 {
		t.Errorf("total = %d, want 1600", total)
	}
	if got := uint64(w.count()) + l.Dropped(); got != 1600 {
		t.Errorf("written+dropped = %d, want 1600", got)
	}
}
