// Package audit implements the DisCFS access log. The paper (§4.2): "the
// system may not know that Alice is trying to get at a file, but it can
// log that key A was used and that key B authorized the operation" — the
// log records the requesting key, the operation, the handle, and the
// policy outcome.
package audit

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Record is one access-control decision.
type Record struct {
	Time    time.Time
	Peer    string // requesting principal (canonical form)
	Op      string // operation class, e.g. "read", "write", "lookup"
	Ino     uint64
	Gen     uint32
	Name    string // entry name for directory operations
	Value   string // compliance value, e.g. "RWX" or "false"
	Allowed bool
	Cached  bool // decision came from the policy cache
}

// Log is a bounded in-memory ring of records, optionally mirrored to an
// io.Writer as text lines. Safe for concurrent use.
type Log struct {
	mu     sync.Mutex
	w      io.Writer
	ring   []Record
	next   int
	filled bool

	total  uint64
	denied uint64
}

// New creates a log retaining the most recent capacity records; w may be
// nil.
func New(capacity int, w io.Writer) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Log{ring: make([]Record, capacity), w: w}
}

// Append records one decision.
func (l *Log) Append(r Record) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.ring[l.next] = r
	l.next = (l.next + 1) % len(l.ring)
	if l.next == 0 {
		l.filled = true
	}
	l.total++
	if !r.Allowed {
		l.denied++
	}
	if l.w != nil {
		verdict := "DENY"
		if r.Allowed {
			verdict = "ALLOW"
		}
		cached := ""
		if r.Cached {
			cached = " (cached)"
		}
		fmt.Fprintf(l.w, "%s %s %s ino=%d gen=%d name=%q value=%s%s peer=%s\n",
			r.Time.Format(time.RFC3339), verdict, r.Op, r.Ino, r.Gen, r.Name,
			r.Value, cached, shorten(r.Peer))
	}
}

// shorten abbreviates principals for readable log lines.
func shorten(p string) string {
	if len(p) > 28 {
		return p[:28] + "…"
	}
	return p
}

// Recent returns up to n of the most recent records, newest first.
func (l *Log) Recent(n int) []Record {
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.filled {
		size = len(l.ring)
	}
	if n > size {
		n = size
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		idx := (l.next - 1 - i + len(l.ring)) % len(l.ring)
		out = append(out, l.ring[idx])
	}
	return out
}

// Totals reports cumulative decision counts.
func (l *Log) Totals() (total, denied uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total, l.denied
}
