// Package audit implements the DisCFS access log. The paper (§4.2): "the
// system may not know that Alice is trying to get at a file, but it can
// log that key A was used and that key B authorized the operation" — the
// log records the requesting key, the operation, the handle, and the
// policy outcome.
//
// The log is built so the server's per-operation check never blocks on
// it: the in-memory ring uses per-slot locks (appends from different
// cores touch different slots), and the optional io.Writer mirror is
// fed through a bounded queue drained by a background goroutine that
// batches writes. When the queue saturates, mirror lines are dropped
// (and counted) rather than stalling the data path; the ring always
// records.
package audit

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Record is one access-control decision.
type Record struct {
	Time    time.Time
	Peer    string // requesting principal (canonical form)
	Op      string // operation class, e.g. "read", "write", "lookup"
	Ino     uint64
	Gen     uint32
	Name    string // entry name for directory operations
	Value   string // compliance value, e.g. "RWX" or "false"
	Allowed bool
	Cached  bool // decision came from the policy cache
}

// defaultQueueDepth bounds the writer-mirror queue when the caller does
// not choose one.
const defaultQueueDepth = 4096

// batchMax bounds how many records the background writer folds into one
// io.Writer call.
const batchMax = 256

// slot is one ring position with its own lock. The global sequence
// counter assigns every record a unique slot, so concurrent appends
// lock different slots and never contend (a collision needs one
// appender to lap the whole ring mid-append of another); this is what
// lets eight cores log decisions without serializing on a shared ring
// mutex.
type slot struct {
	mu  sync.Mutex
	seq uint64 // 0: never written
	rec Record
}

// Log is a bounded in-memory ring of records, optionally mirrored to an
// io.Writer as text lines. Safe for concurrent use; Append never blocks
// on the mirror's I/O.
type Log struct {
	w io.Writer

	seq    atomic.Uint64 // total records appended (== Totals total)
	denied atomic.Uint64

	ring []slot

	// Writer mirror (nil w: all of this stays nil/idle).
	ch        chan Record
	flushCh   chan chan error
	quit      chan struct{}
	done      chan struct{}
	closed    atomic.Bool
	dropped   atomic.Uint64
	closeOnce sync.Once

	emu  sync.Mutex
	werr error // first mirror write error
}

// New creates a log retaining the most recent capacity records; w may be
// nil. With a writer, mirror lines are written asynchronously with a
// default queue depth; call Close to drain before process exit.
func New(capacity int, w io.Writer) *Log {
	return NewWithQueue(capacity, w, 0)
}

// NewWithQueue is New with an explicit writer-queue depth (0 means the
// default). Appends beyond the queue's capacity while the writer is
// behind drop the mirror line and increment Dropped; the in-memory ring
// is unaffected.
func NewWithQueue(capacity int, w io.Writer, queueDepth int) *Log {
	if capacity <= 0 {
		capacity = 1024
	}
	l := &Log{w: w, ring: make([]slot, capacity)}
	if w != nil {
		if queueDepth <= 0 {
			queueDepth = defaultQueueDepth
		}
		l.ch = make(chan Record, queueDepth)
		l.flushCh = make(chan chan error)
		l.quit = make(chan struct{})
		l.done = make(chan struct{})
		go l.writer()
	}
	return l
}

// Append records one decision. It never blocks: the ring insert locks
// only the record's own slot and the mirror enqueue is non-blocking.
func (l *Log) Append(r Record) {
	seq := l.seq.Add(1)
	if !r.Allowed {
		l.denied.Add(1)
	}
	sl := &l.ring[(seq-1)%uint64(len(l.ring))]
	sl.mu.Lock()
	if seq > sl.seq { // don't let a lapped straggler overwrite newer data
		sl.seq, sl.rec = seq, r
	}
	sl.mu.Unlock()
	if l.ch != nil && !l.closed.Load() {
		select {
		case l.ch <- r:
		default:
			l.dropped.Add(1)
		}
	}
}

// writer is the background goroutine that drains the mirror queue.
func (l *Log) writer() {
	defer close(l.done)
	batch := make([]Record, 0, batchMax)
	for {
		select {
		case r := <-l.ch:
			batch = append(batch[:0], r)
		drain:
			for len(batch) < batchMax {
				select {
				case r2 := <-l.ch:
					batch = append(batch, r2)
				default:
					break drain
				}
			}
			l.writeBatch(batch)
		case ack := <-l.flushCh:
			l.drainAll(&batch)
			ack <- l.writeErr()
		case <-l.quit:
			l.drainAll(&batch)
			return
		}
	}
}

// drainAll empties the queue, writing in batches.
func (l *Log) drainAll(batch *[]Record) {
	for {
		b := (*batch)[:0]
		for len(b) < batchMax {
			select {
			case r := <-l.ch:
				b = append(b, r)
			default:
				if len(b) > 0 {
					l.writeBatch(b)
				}
				*batch = b
				return
			}
		}
		l.writeBatch(b)
		*batch = b
	}
}

// writeBatch formats records into one buffer and issues a single Write.
func (l *Log) writeBatch(batch []Record) {
	if len(batch) == 0 {
		return
	}
	var buf bytes.Buffer
	for _, r := range batch {
		verdict := "DENY"
		if r.Allowed {
			verdict = "ALLOW"
		}
		cached := ""
		if r.Cached {
			cached = " (cached)"
		}
		fmt.Fprintf(&buf, "%s %s %s ino=%d gen=%d name=%q value=%s%s peer=%s\n",
			r.Time.Format(time.RFC3339), verdict, r.Op, r.Ino, r.Gen, r.Name,
			r.Value, cached, shorten(r.Peer))
	}
	if _, err := l.w.Write(buf.Bytes()); err != nil {
		l.emu.Lock()
		if l.werr == nil {
			l.werr = err
		}
		l.emu.Unlock()
	}
}

func (l *Log) writeErr() error {
	l.emu.Lock()
	defer l.emu.Unlock()
	return l.werr
}

// Flush blocks until every mirror line enqueued before the call has been
// written, returning the first write error seen so far. It is a no-op
// without a writer.
func (l *Log) Flush() error {
	if l.ch == nil {
		return nil
	}
	ack := make(chan error, 1)
	select {
	case l.flushCh <- ack:
		return <-ack
	case <-l.done:
		return l.writeErr()
	}
}

// Close drains the mirror queue, stops the background writer, and
// returns the first write error. Further Appends still land in the ring
// but are not mirrored. Close is idempotent.
func (l *Log) Close() error {
	if l.ch == nil {
		return nil
	}
	l.closeOnce.Do(func() {
		l.closed.Store(true)
		close(l.quit)
	})
	<-l.done
	return l.writeErr()
}

// Dropped reports how many mirror lines were discarded because the
// writer queue was full.
func (l *Log) Dropped() uint64 { return l.dropped.Load() }

// Pending reports how many mirror lines are queued but not yet written.
func (l *Log) Pending() int {
	if l.ch == nil {
		return 0
	}
	return len(l.ch)
}

// shorten abbreviates principals for readable log lines.
func shorten(p string) string {
	if len(p) > 28 {
		return p[:28] + "…"
	}
	return p
}

// Recent returns up to n of the most recent records, newest first.
func (l *Log) Recent(n int) []Record {
	type seqRecord struct {
		rec Record
		seq uint64
	}
	all := make([]seqRecord, 0, len(l.ring))
	for i := range l.ring {
		sl := &l.ring[i]
		sl.mu.Lock()
		if sl.seq > 0 {
			all = append(all, seqRecord{rec: sl.rec, seq: sl.seq})
		}
		sl.mu.Unlock()
	}
	sort.Slice(all, func(i, j int) bool { return all[i].seq > all[j].seq })
	if n > len(all) {
		n = len(all)
	}
	out := make([]Record, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, all[i].rec)
	}
	return out
}

// Totals reports cumulative decision counts.
func (l *Log) Totals() (total, denied uint64) {
	return l.seq.Load(), l.denied.Load()
}
