package audit

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func rec(peer string, allowed bool) Record {
	return Record{
		Time: time.Date(2001, 6, 15, 12, 0, 0, 0, time.UTC),
		Peer: peer, Op: "read", Ino: 42, Gen: 1,
		Value: "R", Allowed: allowed,
	}
}

func TestAppendAndRecent(t *testing.T) {
	l := New(4, nil)
	for i := 0; i < 3; i++ {
		l.Append(rec("k", true))
	}
	if got := l.Recent(10); len(got) != 3 {
		t.Errorf("Recent = %d records, want 3", len(got))
	}
}

func TestRingWraps(t *testing.T) {
	l := New(4, nil)
	for i := 0; i < 10; i++ {
		r := rec("k", true)
		r.Ino = uint64(i)
		l.Append(r)
	}
	got := l.Recent(10)
	if len(got) != 4 {
		t.Fatalf("Recent = %d records, want 4 (capacity)", len(got))
	}
	// Newest first: inos 9, 8, 7, 6.
	for i, want := range []uint64{9, 8, 7, 6} {
		if got[i].Ino != want {
			t.Errorf("recent[%d].Ino = %d, want %d", i, got[i].Ino, want)
		}
	}
}

func TestTotals(t *testing.T) {
	l := New(8, nil)
	l.Append(rec("a", true))
	l.Append(rec("b", false))
	l.Append(rec("c", false))
	total, denied := l.Totals()
	if total != 3 || denied != 2 {
		t.Errorf("totals = %d/%d, want 3/2", total, denied)
	}
}

func TestWriterOutput(t *testing.T) {
	var sb strings.Builder
	l := New(8, &sb)
	r := rec("ed25519-hex:abcdef0123456789abcdef0123456789", false)
	r.Cached = true
	r.Name = "secret.txt"
	l.Append(r)
	// Mirror lines are written asynchronously; Flush waits for them.
	if err := l.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	line := sb.String()
	for _, want := range []string{"DENY", "read", "ino=42", `name="secret.txt"`, "(cached)", "value=R"} {
		if !strings.Contains(line, want) {
			t.Errorf("log line %q missing %q", line, want)
		}
	}
}

func TestConcurrentAppend(t *testing.T) {
	l := New(128, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				l.Append(rec("k", i%2 == 0))
			}
		}()
	}
	wg.Wait()
	total, denied := l.Totals()
	if total != 800 || denied != 400 {
		t.Errorf("totals = %d/%d, want 800/400", total, denied)
	}
}

func TestDefaultCapacity(t *testing.T) {
	l := New(0, nil)
	l.Append(rec("k", true))
	if len(l.Recent(5)) != 1 {
		t.Error("zero-capacity constructor broke the ring")
	}
}
