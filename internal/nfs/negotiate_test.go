package nfs

import (
	"bytes"
	"context"
	"net"
	"testing"

	"discfs/internal/ffs"
	"discfs/internal/sunrpc"
	"discfs/internal/xdr"
)

// startStackMax is startStack with a configurable server transfer bound.
func startStackMax(t *testing.T, serverMax int) (*Client, *ffs.FFS) {
	t.Helper()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 1 << 14})
	if err != nil {
		t.Fatalf("ffs.New: %v", err)
	}
	srv := NewServer(StaticExport{FS: backing})
	if serverMax != 0 {
		srv.SetMaxTransfer(serverMax)
	}
	rpcSrv := sunrpc.NewServer()
	srv.RegisterAll(rpcSrv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go rpcSrv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := NewClient(sunrpc.NewClient(conn))
	t.Cleanup(func() {
		c.RPC().Close()
		rpcSrv.Close()
	})
	return c, backing
}

func TestNegotiateGrantAndClamp(t *testing.T) {
	ctx := context.Background()
	cases := []struct {
		name      string
		serverMax int
		propose   uint32
		want      uint32
	}{
		{"default grant", 0, DefaultMaxTransfer, DefaultMaxTransfer},
		{"server clamps", 64 << 10, DefaultMaxTransfer, 64 << 10},
		{"client proposes less", 0, 32 << 10, 32 << 10},
		{"v2 server pins baseline", MaxData, DefaultMaxTransfer, MaxData},
		{"zero proposal means default", 0, 0, DefaultMaxTransfer},
		{"proposal above protocol limit", 0, 1 << 30, DefaultMaxTransfer},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c, _ := startStackMax(t, tc.serverMax)
			got, err := c.Negotiate(ctx, tc.propose)
			if err != nil {
				t.Fatalf("Negotiate: %v", err)
			}
			if got != tc.want {
				t.Errorf("granted %d, want %d", got, tc.want)
			}
			if c.MaxData() != tc.want {
				t.Errorf("MaxData() = %d after negotiation", c.MaxData())
			}
		})
	}
}

// TestNegotiateLegacyServerFallback: a server predating ProcFSInfo
// answers PROC_UNAVAIL; the client must fall back to the 8 KiB baseline
// without surfacing an error.
func TestNegotiateLegacyServerFallback(t *testing.T) {
	ctx := context.Background()
	rpcSrv := sunrpc.NewServer()
	// A v2-era NFS program: every procedure beyond the RFC 1094 set is
	// unavailable.
	rpcSrv.Register(Prog, Vers, func(_ *sunrpc.Context, proc uint32, _ *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, error) {
		if proc > ProcStatfs {
			return sunrpc.ProcUnavail, nil
		}
		res.Uint32(uint32(OK))
		return sunrpc.Success, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpcSrv.Serve(ln)
	defer rpcSrv.Close()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(sunrpc.NewClient(conn))
	defer c.RPC().Close()

	granted, err := c.Negotiate(ctx, DefaultMaxTransfer)
	if err != nil {
		t.Fatalf("Negotiate against legacy server: %v", err)
	}
	if granted != MaxData || c.MaxData() != MaxData {
		t.Errorf("granted = %d, MaxData() = %d; want baseline %d", granted, c.MaxData(), MaxData)
	}
}

// TestLargeTransferRoundTrip moves a multi-megabyte file through
// negotiated 512 KiB READs/WRITEs and checks byte-exactness — including
// a single Write call far beyond the old 8 KiB bound.
func TestLargeTransferRoundTrip(t *testing.T) {
	ctx := context.Background()
	c, _ := startStackMax(t, 0)
	if _, err := c.Negotiate(ctx, DefaultMaxTransfer); err != nil {
		t.Fatal(err)
	}
	root := mountRoot(t, c)
	attr, err := c.Create(ctx, root, "big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 3<<20+12345)
	for i := range data {
		data[i] = byte(i * 2654435761 >> 16)
	}
	// One oversized logical write: WriteAll chunks it into 512 KiB
	// WRITEs, 7 RPCs instead of the v2 path's 385.
	if err := c.WriteAll(ctx, attr.Handle, data); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := c.ReadAll(ctx, attr.Handle)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large transfer corrupted")
	}
	// A single READ larger than the file returns exactly the file.
	head, _, err := c.Read(ctx, attr.Handle, 0, DefaultMaxTransfer)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(head, data[:DefaultMaxTransfer]) {
		t.Fatal("single 512 KiB READ corrupted")
	}
}

// TestTransferInterop runs the old/new size matrix both directions: an
// un-negotiated (v2-era 8 KiB) client against a large-transfer server,
// and a large-proposing client against a server pinned to 8 KiB — each
// writing and reading the other's data through a shared backing store.
func TestTransferInterop(t *testing.T) {
	ctx := context.Background()
	for _, tc := range []struct {
		name      string
		serverMax int
		negotiate bool
	}{
		{"v2 client, large server", 0, false},
		{"large client, v2 server", MaxData, true},
		{"large client, large server", 0, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, backing := startStackMax(t, tc.serverMax)
			if tc.negotiate {
				if _, err := c.Negotiate(ctx, DefaultMaxTransfer); err != nil {
					t.Fatal(err)
				}
			}
			// A second connection to the same server at the other size.
			c2, _ := startStackMax2(t, backing, tc.serverMax)
			if !tc.negotiate {
				if _, err := c2.Negotiate(ctx, DefaultMaxTransfer); err != nil {
					t.Fatal(err)
				}
			}
			root := mountRoot(t, c)
			attr, err := c.Create(ctx, root, "x", 0o644)
			if err != nil {
				t.Fatal(err)
			}
			data := make([]byte, 1<<20+777)
			for i := range data {
				data[i] = byte(i * 131)
			}
			if err := c.WriteAll(ctx, attr.Handle, data); err != nil {
				t.Fatal(err)
			}
			got, err := c2.ReadAll(ctx, attr.Handle)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("cross-size read corrupted")
			}
			// And back the other way.
			for i := range data {
				data[i] ^= 0xFF
			}
			if err := c2.WriteAll(ctx, attr.Handle, data); err != nil {
				t.Fatal(err)
			}
			got, err = c.ReadAll(ctx, attr.Handle)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("reverse cross-size read corrupted")
			}
		})
	}
}

// startStackMax2 serves an existing backing store on a fresh server and
// returns a connected client.
func startStackMax2(t *testing.T, backing *ffs.FFS, serverMax int) (*Client, *ffs.FFS) {
	t.Helper()
	srv := NewServer(StaticExport{FS: backing})
	if serverMax != 0 {
		srv.SetMaxTransfer(serverMax)
	}
	rpcSrv := sunrpc.NewServer()
	srv.RegisterAll(rpcSrv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go rpcSrv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(sunrpc.NewClient(conn))
	t.Cleanup(func() {
		c.RPC().Close()
		rpcSrv.Close()
	})
	return c, backing
}
