package nfs

import (
	"bytes"
	"context"
	"errors"
	"net"
	"testing"
	"testing/quick"

	"discfs/internal/ffs"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

func newEnc() *xdr.Encoder         { return xdr.NewEncoder() }
func newDec(b []byte) *xdr.Decoder { return xdr.NewDecoder(b) }

// startStack brings up FFS → NFS server → TCP → NFS client.
func startStack(t *testing.T) (*Client, *ffs.FFS) {
	t.Helper()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 8192})
	if err != nil {
		t.Fatalf("ffs.New: %v", err)
	}
	rpcSrv := sunrpc.NewServer()
	NewServer(StaticExport{FS: backing}).RegisterAll(rpcSrv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go rpcSrv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := NewClient(sunrpc.NewClient(conn))
	t.Cleanup(func() {
		c.RPC().Close()
		rpcSrv.Close()
	})
	return c, backing
}

func mountRoot(t *testing.T, c *Client) vfs.Handle {
	ctx := context.Background()
	t.Helper()
	root, err := c.Mount(ctx, "/export")
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return root
}

func TestMountAndNull(t *testing.T) {
	ctx := context.Background()
	c, backing := startStack(t)
	root := mountRoot(t, c)
	if root != backing.Root() {
		t.Errorf("mounted root %+v != backend root %+v", root, backing.Root())
	}
	if err := c.Null(ctx); err != nil {
		t.Errorf("NULL: %v", err)
	}
	if err := c.Unmount(ctx, "/export"); err != nil {
		t.Errorf("UMNT: %v", err)
	}
}

func TestCreateWriteReadOverWire(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	attr, err := c.Create(ctx, root, "wire.txt", 0o644)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	if attr.Type != vfs.TypeRegular {
		t.Errorf("type = %v", attr.Type)
	}
	msg := []byte("over the wire")
	if _, err := c.Write(ctx, attr.Handle, 0, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	data, a2, err := c.Read(ctx, attr.Handle, 0, 100)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(data, msg) {
		t.Errorf("read = %q", data)
	}
	if a2.Size != uint64(len(msg)) {
		t.Errorf("size = %d", a2.Size)
	}
}

func TestLookupAndGetattr(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	created, _ := c.Create(ctx, root, "f", 0o600)
	found, err := c.Lookup(ctx, root, "f")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if found.Handle != created.Handle {
		t.Error("lookup handle mismatch")
	}
	ga, err := c.GetAttr(ctx, created.Handle)
	if err != nil {
		t.Fatalf("GetAttr: %v", err)
	}
	if ga.Mode != 0o600 {
		t.Errorf("mode = %o", ga.Mode)
	}
	if _, err := c.Lookup(ctx, root, "missing"); StatOf(err) != ErrNoEnt {
		t.Errorf("Lookup(missing) = %v, want NOENT", err)
	}
}

func TestSetattrTruncateOverWire(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	attr, _ := c.Create(ctx, root, "t", 0o644)
	c.Write(ctx, attr.Handle, 0, bytes.Repeat([]byte("z"), 5000))
	sa := NewSAttr()
	sa.Size = 100
	got, err := c.SetAttr(ctx, attr.Handle, sa)
	if err != nil {
		t.Fatalf("SetAttr: %v", err)
	}
	if got.Size != 100 {
		t.Errorf("size = %d", got.Size)
	}
}

func TestRemoveRenameOverWire(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	c.Create(ctx, root, "a", 0o644)
	if err := c.Rename(ctx, root, "a", root, "b"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := c.Lookup(ctx, root, "a"); StatOf(err) != ErrNoEnt {
		t.Error("old name survived rename")
	}
	if err := c.Remove(ctx, root, "b"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := c.Remove(ctx, root, "b"); StatOf(err) != ErrNoEnt {
		t.Errorf("double remove = %v", err)
	}
}

func TestMkdirReaddirRmdir(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	d, err := c.Mkdir(ctx, root, "dir", 0o755)
	if err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	for _, n := range []string{"x", "y", "z"} {
		if _, err := c.Create(ctx, d.Handle, n, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := c.ReadDirAll(ctx, d.Handle)
	if err != nil {
		t.Fatalf("ReadDirAll: %v", err)
	}
	if len(ents) != 3 {
		t.Errorf("%d entries, want 3", len(ents))
	}
	if err := c.Rmdir(ctx, root, "dir"); StatOf(err) != ErrNotEmpty {
		t.Errorf("rmdir non-empty = %v", err)
	}
	for _, n := range []string{"x", "y", "z"} {
		c.Remove(ctx, d.Handle, n)
	}
	if err := c.Rmdir(ctx, root, "dir"); err != nil {
		t.Fatalf("Rmdir: %v", err)
	}
}

func TestReaddirPaging(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	want := map[string]bool{}
	for i := 0; i < 200; i++ {
		name := "file-" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		if _, err := c.Create(ctx, root, name, 0o644); err != nil {
			t.Fatal(err)
		}
		want[name] = true
	}
	// Page with a small count to force multiple READDIR round-trips.
	var got []DirEntry
	cookie := uint32(0)
	pages := 0
	for {
		ents, eof, err := c.ReadDirPage(ctx, root, cookie, 512)
		if err != nil {
			t.Fatalf("ReadDirPage: %v", err)
		}
		pages++
		got = append(got, ents...)
		if eof {
			break
		}
		cookie = ents[len(ents)-1].Cookie
	}
	if pages < 2 {
		t.Errorf("expected multiple pages, got %d", pages)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d entries, want %d", len(got), len(want))
	}
	for _, e := range got {
		if !want[e.Name] {
			t.Errorf("unexpected entry %q", e.Name)
		}
		delete(want, e.Name)
	}
}

func TestSymlinkReadlinkOverWire(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	if err := c.Symlink(ctx, root, "l", "/the/target", 0o777); err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	la, err := c.Lookup(ctx, root, "l")
	if err != nil {
		t.Fatal(err)
	}
	if la.Type != vfs.TypeSymlink {
		t.Errorf("type = %v", la.Type)
	}
	target, err := c.Readlink(ctx, la.Handle)
	if err != nil || target != "/the/target" {
		t.Errorf("Readlink = %q, %v", target, err)
	}
}

func TestLinkOverWire(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	f, _ := c.Create(ctx, root, "orig", 0o644)
	if err := c.Link(ctx, f.Handle, root, "alias"); err != nil {
		t.Fatalf("Link: %v", err)
	}
	a, err := c.GetAttr(ctx, f.Handle)
	if err != nil || a.Nlink != 2 {
		t.Errorf("nlink = %d, %v", a.Nlink, err)
	}
}

func TestStatFSOverWire(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	st, err := c.StatFS(ctx, root)
	if err != nil {
		t.Fatalf("StatFS: %v", err)
	}
	if st.BSize != 4096 || st.Blocks != 8192 {
		t.Errorf("statfs = %+v", st)
	}
	if st.TSize != DefaultMaxTransfer {
		t.Errorf("tsize = %d", st.TSize)
	}
}

func TestStaleHandleOverWire(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	f, _ := c.Create(ctx, root, "gone", 0o644)
	c.Remove(ctx, root, "gone")
	if _, err := c.GetAttr(ctx, f.Handle); StatOf(err) != ErrStale {
		t.Errorf("GetAttr(stale) = %v, want STALE", err)
	}
	// Forged/foreign handle is stale, not a crash.
	forged := vfs.Handle{Ino: 999999, Gen: 42}
	if _, err := c.GetAttr(ctx, forged); StatOf(err) != ErrStale {
		t.Errorf("GetAttr(forged) = %v, want STALE", err)
	}
}

func TestLargeSequentialTransfer(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	attr, _ := c.Create(ctx, root, "big", 0o644)
	data := make([]byte, 100*1024)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := c.WriteAll(ctx, attr.Handle, data); err != nil {
		t.Fatalf("WriteAll: %v", err)
	}
	got, err := c.ReadAll(ctx, attr.Handle)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("large transfer corrupted")
	}
}

func TestWriteBeyondMaxTransferRejected(t *testing.T) {
	ctx := context.Background()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	attr, _ := c.Create(ctx, root, "f", 0o644)
	// A write larger than the server's transfer bound violates the
	// protocol; the server must reject it as garbage rather than accept
	// a jumbo frame. (The client's own clamp is bypassed by pinning a
	// transfer size above the server's bound.)
	c.SetMaxData(MaxTransferLimit)
	_, err := c.Write(ctx, attr.Handle, 0, make([]byte, DefaultMaxTransfer+1))
	var re *sunrpc.RPCError
	if !errors.As(err, &re) || re.Stat != sunrpc.GarbageArgs {
		t.Errorf("oversized write = %v, want GarbageArgs", err)
	}
}

func TestFHRoundTrip(t *testing.T) {
	f := func(ino uint64, gen uint32) bool {
		h := vfs.Handle{Ino: ino, Gen: gen}
		fh := EncodeFH(h)
		got, err := DecodeFH(fh[:])
		return err == nil && got == h
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Corrupt magic must be rejected.
	fh := EncodeFH(vfs.Handle{Ino: 1, Gen: 1})
	fh[0] = 'X'
	if _, err := DecodeFH(fh[:]); !errors.Is(err, vfs.ErrStale) {
		t.Errorf("bad magic = %v, want ErrStale", err)
	}
	if _, err := DecodeFH(fh[:8]); !errors.Is(err, vfs.ErrStale) {
		t.Errorf("short handle = %v, want ErrStale", err)
	}
}

func TestSAttrRoundTrip(t *testing.T) {
	f := func(mode, uid, gid, size uint32) bool {
		in := SAttr{Mode: mode, UID: uid, GID: gid, Size: size}
		e := newEnc()
		in.Encode(e)
		out := DecodeSAttr(newDec(e.Bytes()))
		return out.Mode == in.Mode && out.UID == in.UID &&
			out.GID == in.GID && out.Size == in.Size
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMapErrorTable(t *testing.T) {
	cases := []struct {
		err  error
		want Stat
	}{
		{nil, OK},
		{vfs.ErrNotExist, ErrNoEnt},
		{vfs.ErrExist, ErrExist},
		{vfs.ErrNotDir, ErrNotDir},
		{vfs.ErrIsDir, ErrIsDir},
		{vfs.ErrNotEmpty, ErrNotEmpty},
		{vfs.ErrStale, ErrStale},
		{vfs.ErrPerm, ErrAcces},
		{vfs.ErrNoSpace, ErrNoSpc},
		{vfs.ErrNameTooLong, ErrNameLong},
		{vfs.ErrFBig, ErrFBig},
		{errors.New("anything else"), ErrIO},
	}
	for _, c := range cases {
		if got := MapError(c.err); got != c.want {
			t.Errorf("MapError(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}
