package nfs

import (
	"context"
	"testing"
	"time"

	"discfs/internal/vfs"
)

func cachedStack(t *testing.T, ttl time.Duration) (*CachingClient, vfs.Handle) {
	t.Helper()
	c, _ := startStack(t)
	root := mountRoot(t, c)
	return NewCachingClient(c, ttl), root
}

func TestAttrCacheServesRepeatedGetattr(t *testing.T) {
	ctx := context.Background()
	cc, root := cachedStack(t, time.Minute)
	attr, err := cc.Create(ctx, root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := cc.GetAttr(ctx, attr.Handle); err != nil {
			t.Fatal(err)
		}
	}
	hits, misses := cc.CacheStats()
	if hits < 9 {
		t.Errorf("hits = %d over 10 repeated GETATTRs, want ≥9", hits)
	}
	_ = misses
}

func TestLookupCacheServesRepeatedLookups(t *testing.T) {
	ctx := context.Background()
	cc, root := cachedStack(t, time.Minute)
	if _, err := cc.Create(ctx, root, "f", 0o644); err != nil {
		t.Fatal(err)
	}
	h0, m0 := cc.CacheStats()
	for i := 0; i < 10; i++ {
		if _, err := cc.Lookup(ctx, root, "f"); err != nil {
			t.Fatal(err)
		}
	}
	h1, m1 := cc.CacheStats()
	if h1-h0 < 9 {
		t.Errorf("lookup hits = %d, want ≥9", h1-h0)
	}
	if m1-m0 > 1 {
		t.Errorf("lookup misses = %d, want ≤1", m1-m0)
	}
}

func TestWriteUpdatesCachedSize(t *testing.T) {
	ctx := context.Background()
	cc, root := cachedStack(t, time.Minute)
	attr, _ := cc.Create(ctx, root, "f", 0o644)
	cc.GetAttr(ctx, attr.Handle) // prime cache with size 0
	if _, err := cc.Write(ctx, attr.Handle, 0, []byte("12345")); err != nil {
		t.Fatal(err)
	}
	got, err := cc.GetAttr(ctx, attr.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size != 5 {
		t.Errorf("cached size after write = %d, want 5", got.Size)
	}
}

func TestMutationInvalidatesLookup(t *testing.T) {
	ctx := context.Background()
	cc, root := cachedStack(t, time.Minute)
	cc.Create(ctx, root, "old", 0o644)
	if _, err := cc.Lookup(ctx, root, "old"); err != nil {
		t.Fatal(err)
	}
	if err := cc.Rename(ctx, root, "old", root, "new"); err != nil {
		t.Fatal(err)
	}
	// The stale lookup entry must be gone: "old" now misses for real.
	if _, err := cc.Lookup(ctx, root, "old"); StatOf(err) != ErrNoEnt {
		t.Errorf("lookup of renamed entry = %v, want NOENT", err)
	}
	if _, err := cc.Lookup(ctx, root, "new"); err != nil {
		t.Errorf("lookup of new name: %v", err)
	}
	// Remove invalidates too.
	if err := cc.Remove(ctx, root, "new"); err != nil {
		t.Fatal(err)
	}
	if _, err := cc.Lookup(ctx, root, "new"); StatOf(err) != ErrNoEnt {
		t.Errorf("lookup after remove = %v, want NOENT", err)
	}
}

func TestTTLExpiryRefetches(t *testing.T) {
	ctx := context.Background()
	cc, root := cachedStack(t, time.Minute)
	// Deterministic clock.
	clock := time.Date(2026, 6, 1, 12, 0, 0, 0, time.UTC)
	cc.now = func() time.Time { return clock }
	attr, _ := cc.Create(ctx, root, "f", 0o644)
	cc.GetAttr(ctx, attr.Handle)
	h0, _ := cc.CacheStats()
	cc.GetAttr(ctx, attr.Handle) // within TTL: hit
	h1, _ := cc.CacheStats()
	if h1 != h0+1 {
		t.Fatalf("expected a hit within TTL")
	}
	clock = clock.Add(2 * time.Minute) // past TTL
	_, m0 := cc.CacheStats()
	cc.GetAttr(ctx, attr.Handle)
	_, m1 := cc.CacheStats()
	if m1 != m0+1 {
		t.Errorf("expected a miss after TTL expiry")
	}
}

func TestStaleWindowIsBounded(t *testing.T) {
	ctx := context.Background()
	// A second (uncached) client mutates behind the cache's back: the
	// caching client sees stale data within TTL and fresh data after
	// Purge — the NFS close-to-open trade, made explicit.
	raw, _ := startStack(t)
	root := mountRoot(t, raw)
	cc := NewCachingClient(raw, time.Hour)
	attr, _ := cc.Create(ctx, root, "f", 0o644)
	cc.Write(ctx, attr.Handle, 0, []byte("v1"))
	cc.GetAttr(ctx, attr.Handle) // prime: size 2

	// Out-of-band truncate through the same underlying client (bypassing
	// the cache wrapper entirely).
	sa := NewSAttr()
	sa.Size = 0
	if _, err := raw.SetAttr(ctx, attr.Handle, sa); err != nil {
		t.Fatal(err)
	}

	got, _ := cc.GetAttr(ctx, attr.Handle)
	if got.Size != 2 {
		t.Errorf("within TTL, expected stale size 2, got %d", got.Size)
	}
	cc.Purge()
	got, _ = cc.GetAttr(ctx, attr.Handle)
	if got.Size != 0 {
		t.Errorf("after purge, size = %d, want fresh 0", got.Size)
	}
}
