package nfs

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"discfs/internal/ffs"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// startStackExt is startStack plus the NFS server, for tests that poke
// protocol-level knobs (cursor capacity).
func startStackExt(t *testing.T) (*Client, *ffs.FFS, *Server) {
	t.Helper()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 8192})
	if err != nil {
		t.Fatalf("ffs.New: %v", err)
	}
	c, srv, _ := startStackWith(t, backing, false)
	return c, backing, srv
}

// procCounter counts NFS-program calls by procedure.
type procCounter struct {
	mu sync.Mutex
	n  map[uint32]int
}

func (p *procCounter) get(proc uint32) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n[proc]
}

// startStackWith exports srvFS through a wire handler that counts every
// call; with legacy true it answers PROC_UNAVAIL for the extension
// procedures, emulating a server predating READDIRPLUS/LOOKUPPLUS.
func startStackWith(t *testing.T, srvFS vfs.FS, legacy bool) (*Client, *Server, *procCounter) {
	t.Helper()
	srv := NewServer(StaticExport{FS: srvFS})
	rpcSrv := sunrpc.NewServer()
	srv.RegisterAll(rpcSrv)
	cnt := &procCounter{n: make(map[uint32]int)}
	rpcSrv.Register(Prog, Vers, func(ctx *sunrpc.Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, error) {
		cnt.mu.Lock()
		cnt.n[proc]++
		cnt.mu.Unlock()
		if legacy && proc >= ProcReaddirPlus {
			return sunrpc.ProcUnavail, nil
		}
		return srv.dispatch(ctx, proc, args, res)
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go rpcSrv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := NewClient(sunrpc.NewClient(conn))
	t.Cleanup(func() {
		c.RPC().Close()
		rpcSrv.Close()
	})
	return c, srv, cnt
}

// mkdirWithFiles populates dir/name with n files named prefix%02d.
func mkdirWithFiles(t *testing.T, fs vfs.FS, parent vfs.Handle, name, prefix string, n int) vfs.Handle {
	t.Helper()
	d, err := fs.Mkdir(parent, name, 0o755)
	if err != nil {
		t.Fatalf("Mkdir %s: %v", name, err)
	}
	for i := 0; i < n; i++ {
		if _, err := fs.Create(d.Handle, fmt.Sprintf("%s%02d", prefix, i), 0o644); err != nil {
			t.Fatalf("Create: %v", err)
		}
	}
	return d.Handle
}

// TestReadDirPagingStableUnderMutation is the tentpole regression: a
// paged READDIR walk with removes, creates and a rename landing between
// pages must return exactly the snapshot-time listing — every stable
// entry once, nothing duplicated, nothing dropped. Index cookies over a
// re-listed directory failed this.
func TestReadDirPagingStableUnderMutation(t *testing.T) {
	ctx := context.Background()
	c, backing := startStack(t)
	mountRoot(t, c)
	dir := mkdirWithFiles(t, backing, backing.Root(), "d", "f", 40)

	orig := make(map[string]bool, 40)
	for i := 0; i < 40; i++ {
		orig[fmt.Sprintf("f%02d", i)] = true
	}

	seen := make(map[string]int)
	cookie, mutated := uint32(0), false
	for {
		ents, eof, err := c.ReadDirPage(ctx, dir, cookie, 256)
		if err != nil {
			t.Fatalf("ReadDirPage: %v", err)
		}
		for _, e := range ents {
			seen[e.Name]++
		}
		if eof {
			break
		}
		if len(ents) == 0 {
			t.Fatal("empty page without eof at count 256")
		}
		cookie = ents[len(ents)-1].Cookie
		if !mutated {
			mutated = true
			// Mutations that shift a re-listed directory's indices in
			// both directions, plus a rename.
			for _, name := range []string{"f30", "f35"} {
				if err := backing.Remove(dir, name); err != nil {
					t.Fatalf("Remove %s: %v", name, err)
				}
			}
			for _, name := range []string{"aa_new", "zz_new"} {
				if _, err := backing.Create(dir, name, 0o644); err != nil {
					t.Fatalf("Create %s: %v", name, err)
				}
			}
			if err := backing.Rename(dir, "f38", dir, "f38_renamed"); err != nil {
				t.Fatalf("Rename: %v", err)
			}
		}
	}
	if !mutated {
		t.Fatal("walk finished in one page; count too large for the test")
	}
	if len(seen) != len(orig) {
		t.Errorf("walk saw %d names, want the %d snapshot names", len(seen), len(orig))
	}
	for name, n := range seen {
		if !orig[name] {
			t.Errorf("walk saw %q, not in the snapshot", name)
		}
		if n != 1 {
			t.Errorf("walk saw %q %d times", name, n)
		}
	}
	for name := range orig {
		if seen[name] == 0 {
			t.Errorf("walk dropped %q", name)
		}
	}
}

// TestReadDirPlusPagingStableUnderMutation: same stability contract for
// the batched proc; entries removed mid-walk degrade to name-only
// (attributes are fetched at page time), never corrupt the page.
func TestReadDirPlusPagingStableUnderMutation(t *testing.T) {
	ctx := context.Background()
	c, backing := startStack(t)
	mountRoot(t, c)
	dir := mkdirWithFiles(t, backing, backing.Root(), "d", "f", 30)

	seen := make(map[string]int)
	nameOnly := make(map[string]bool)
	var verf, cookie uint64
	mutated := false
	for {
		pg, err := c.ReadDirPlus(ctx, dir, verf, cookie, 1024)
		if err != nil {
			t.Fatalf("ReadDirPlus: %v", err)
		}
		verf = pg.Verf
		for _, e := range pg.Entries {
			seen[e.Name]++
			if !e.HasAttr {
				nameOnly[e.Name] = true
			}
		}
		if pg.EOF {
			break
		}
		if len(pg.Entries) == 0 {
			t.Fatal("empty page without eof at count 1024")
		}
		cookie = pg.Entries[len(pg.Entries)-1].Cookie
		if !mutated {
			mutated = true
			if err := backing.Remove(dir, "f25"); err != nil {
				t.Fatalf("Remove: %v", err)
			}
			if _, err := backing.Create(dir, "new_file", 0o644); err != nil {
				t.Fatalf("Create: %v", err)
			}
		}
	}
	if !mutated {
		t.Fatal("walk finished in one page; count too large for the test")
	}
	if len(seen) != 30 {
		t.Errorf("walk saw %d names, want 30", len(seen))
	}
	for name, n := range seen {
		if n != 1 {
			t.Errorf("walk saw %q %d times", name, n)
		}
	}
	if seen["f25"] != 1 {
		t.Errorf("removed-mid-walk f25 seen %d times, want 1 (snapshot entry)", seen["f25"])
	}
	if !nameOnly["f25"] {
		t.Error("removed-mid-walk f25 still carried attributes")
	}
	for name := range seen {
		if name != "f25" && nameOnly[name] {
			t.Errorf("surviving entry %q lost its attributes", name)
		}
	}
}

// TestReadDirCursorEvictionDetected: the cookie-verifier-mismatch
// regression. A READDIR resume whose cursor was evicted must fail with
// ErrStale — detection, not a silent walk over a re-listed directory —
// and a fresh listing must succeed.
func TestReadDirCursorEvictionDetected(t *testing.T) {
	ctx := context.Background()
	c, backing, srv := startStackExt(t)
	mountRoot(t, c)
	srv.SetDirCursorCap(1)
	dirA := mkdirWithFiles(t, backing, backing.Root(), "a", "f", 30)
	dirB := mkdirWithFiles(t, backing, backing.Root(), "b", "g", 3)

	ents, eof, err := c.ReadDirPage(ctx, dirA, 0, 256)
	if err != nil || eof || len(ents) == 0 {
		t.Fatalf("first page: %d entries, eof %v, err %v", len(ents), eof, err)
	}
	// A listing of another directory evicts A's only cursor slot.
	if _, err := c.ReadDirAll(ctx, dirB); err != nil {
		t.Fatalf("ReadDirAll(b): %v", err)
	}
	_, _, err = c.ReadDirPage(ctx, dirA, ents[len(ents)-1].Cookie, 256)
	if StatOf(err) != ErrStale {
		t.Fatalf("resume after eviction: err %v, want ErrStale", err)
	}
	// The client restarts transparently: a fresh bulk listing works.
	all, err := c.ReadDirAll(ctx, dirA)
	if err != nil {
		t.Fatalf("ReadDirAll(a) after eviction: %v", err)
	}
	if len(all) != 30 {
		t.Errorf("restarted listing: %d entries, want 30", len(all))
	}
	if n := srv.DirCursorCount(); n != 1 {
		t.Errorf("DirCursorCount = %d, want 1 (capacity)", n)
	}
}

// TestReadDirPlusBadCookie: a READDIRPLUS resume with an evicted
// verifier or an out-of-range cookie fails with ErrBadCookie, and the
// bulk listing recovers by restarting.
func TestReadDirPlusBadCookie(t *testing.T) {
	ctx := context.Background()
	c, backing, srv := startStackExt(t)
	mountRoot(t, c)
	srv.SetDirCursorCap(1)
	dirA := mkdirWithFiles(t, backing, backing.Root(), "a", "f", 30)
	dirB := mkdirWithFiles(t, backing, backing.Root(), "b", "g", 3)

	pg, err := c.ReadDirPlus(ctx, dirA, 0, 0, 512)
	if err != nil || pg.EOF || len(pg.Entries) == 0 {
		t.Fatalf("first page: %d entries, eof %v, err %v", len(pg.Entries), pg.EOF, err)
	}
	// Out-of-range cookie against the live cursor.
	if _, err := c.ReadDirPlus(ctx, dirA, pg.Verf, 9999, 512); StatOf(err) != ErrBadCookie {
		t.Errorf("out-of-range cookie: err %v, want ErrBadCookie", err)
	}
	// Evict the cursor, then resume with the old verifier.
	if _, _, err := c.ReadDirPlusAll(ctx, dirB); err != nil {
		t.Fatalf("ReadDirPlusAll(b): %v", err)
	}
	last := pg.Entries[len(pg.Entries)-1].Cookie
	if _, err := c.ReadDirPlus(ctx, dirA, pg.Verf, last, 512); StatOf(err) != ErrBadCookie {
		t.Errorf("resume after eviction: err %v, want ErrBadCookie", err)
	}
	_, ents, err := c.ReadDirPlusAll(ctx, dirA)
	if err != nil {
		t.Fatalf("ReadDirPlusAll(a): %v", err)
	}
	if len(ents) != 30 {
		t.Errorf("restarted listing: %d entries, want 30", len(ents))
	}
}

// TestReadDirEmptyPageRetry: an empty non-eof page (count budget below
// the next entry's size) must not end the listing — ReadDirAll grows
// the count and returns everything. Treating it as eof was the silent
// truncation bug.
func TestReadDirEmptyPageRetry(t *testing.T) {
	ctx := context.Background()
	c, backing := startStack(t)
	mountRoot(t, c)
	dir := mkdirWithFiles(t, backing, backing.Root(), "d", "longname_", 5)

	ents, eof, err := c.ReadDirPage(ctx, dir, 0, 20)
	if err != nil {
		t.Fatalf("ReadDirPage: %v", err)
	}
	if len(ents) != 0 || eof {
		t.Fatalf("tiny count: %d entries, eof %v; want an empty non-eof page", len(ents), eof)
	}
	all, err := c.readDirAll(ctx, dir, 20)
	if err != nil {
		t.Fatalf("readDirAll from tiny count: %v", err)
	}
	if len(all) != 5 {
		t.Errorf("listing from tiny count: %d entries, want 5 (silent truncation?)", len(all))
	}
}

// TestReadDirPageBudget: every page's encoded entry list — including
// XDR string padding — must fit the requested count. The old estimate
// skipped the padding, overshooting the client's budget on names whose
// length is not a multiple of 4.
func TestReadDirPageBudget(t *testing.T) {
	ctx := context.Background()
	c, backing := startStack(t)
	mountRoot(t, c)
	d, err := backing.Mkdir(backing.Root(), "d", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	// Name lengths 1..12 cover every padding residue.
	total := 0
	for i := 1; i <= 12; i++ {
		name := fmt.Sprintf("%0*d", i, i)
		if _, err := backing.Create(d.Handle, name, 0o644); err != nil {
			t.Fatal(err)
		}
		total++
	}
	for _, count := range []uint32{40, 64, 100} {
		cookie, got := uint32(0), 0
		for {
			ents, eof, err := c.ReadDirPage(ctx, d.Handle, cookie, count)
			if err != nil {
				t.Fatalf("ReadDirPage(count=%d): %v", count, err)
			}
			wire := 8 // entry-list terminator + eof
			for _, e := range ents {
				wire += 4 + 4 + 4 + len(e.Name) + (4-len(e.Name)%4)%4 + 4
			}
			if wire > int(count) {
				t.Errorf("count %d: page encodes %d entry bytes, over budget", count, wire)
			}
			got += len(ents)
			if eof {
				break
			}
			if len(ents) == 0 {
				t.Fatalf("count %d: empty page without eof", count)
			}
			cookie = ents[len(ents)-1].Cookie
		}
		if got != total {
			t.Errorf("count %d: walked %d entries, want %d", count, got, total)
		}
	}
}

// TestReadDirPlusAllMatches: the batched listing returns the same names
// as READDIR and piggybacks attributes matching the backing store.
func TestReadDirPlusAllMatches(t *testing.T) {
	ctx := context.Background()
	c, backing := startStack(t)
	root := mountRoot(t, c)
	for i := 0; i < 10; i++ {
		a, err := backing.Create(backing.Root(), fmt.Sprintf("f%d", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := backing.Write(a.Handle, 0, make([]byte, 100*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := backing.Mkdir(backing.Root(), "sub", 0o755); err != nil {
		t.Fatal(err)
	}

	plain, err := c.ReadDirAll(ctx, root)
	if err != nil {
		t.Fatal(err)
	}
	dirA, ents, err := c.ReadDirPlusAll(ctx, root)
	if err != nil {
		t.Fatal(err)
	}
	if dirA.Handle != root || dirA.Type != vfs.TypeDir {
		t.Errorf("dir attr: handle %v type %v", dirA.Handle, dirA.Type)
	}
	if len(ents) != len(plain) {
		t.Fatalf("READDIRPLUS %d entries, READDIR %d", len(ents), len(plain))
	}
	for i, e := range ents {
		if e.Name != plain[i].Name {
			t.Errorf("entry %d: name %q vs READDIR %q", i, e.Name, plain[i].Name)
		}
		if !e.HasAttr {
			t.Errorf("entry %q: no attributes", e.Name)
			continue
		}
		want, err := backing.GetAttr(e.Handle)
		if err != nil {
			t.Fatalf("backing GetAttr(%q): %v", e.Name, err)
		}
		if e.Attr.Handle != want.Handle || e.Attr.Size != want.Size || e.Attr.Type != want.Type {
			t.Errorf("entry %q: attr %+v, backing %+v", e.Name, e.Attr, want)
		}
	}
}

// TestLookupPlus: the compound proc returns child attributes, directory
// attributes and access bits in one round trip; a miss still carries
// the directory attributes for negative caching.
func TestLookupPlus(t *testing.T) {
	ctx := context.Background()
	c, backing := startStack(t)
	root := mountRoot(t, c)
	a, err := backing.Create(backing.Root(), "x.txt", 0o644)
	if err != nil {
		t.Fatal(err)
	}

	r, err := c.LookupPlus(ctx, root, "x.txt")
	if err != nil {
		t.Fatalf("LookupPlus: %v", err)
	}
	if r.Attr.Handle != a.Handle {
		t.Errorf("child handle %v, want %v", r.Attr.Handle, a.Handle)
	}
	if r.Dir.Handle != root {
		t.Errorf("dir handle %v, want root", r.Dir.Handle)
	}
	if want := AccessRead | AccessWrite | AccessExec; r.Access != want {
		t.Errorf("access %b, want %b (no checker: all granted)", r.Access, want)
	}

	miss, err := c.LookupPlus(ctx, root, "ghost")
	if StatOf(err) != ErrNoEnt {
		t.Fatalf("miss: err %v, want ErrNoEnt", err)
	}
	if miss.Dir.Handle != root {
		t.Errorf("miss carried dir handle %v, want root", miss.Dir.Handle)
	}
}

// gatedFS wraps a backing FS with a switchable AccessChecker, to model
// credential revocation between pages.
type gatedFS struct {
	vfs.FS
	allow atomic.Bool
}

func (g *gatedFS) Access(vfs.Handle) (uint32, error) {
	if g.allow.Load() {
		return AccessRead | AccessWrite | AccessExec, nil
	}
	return 0, nil
}

// TestReadDirPlusRevocationMidWalk: resumed pages re-run the read gate,
// so access revoked after the first page stops the walk instead of
// streaming the rest of the snapshot.
func TestReadDirPlusRevocationMidWalk(t *testing.T) {
	ctx := context.Background()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 8192})
	if err != nil {
		t.Fatal(err)
	}
	g := &gatedFS{FS: backing}
	g.allow.Store(true)
	c, _, _ := startStackWith(t, g, false)
	root, err := c.Mount(ctx, "/export")
	if err != nil {
		t.Fatal(err)
	}
	dir := mkdirWithFiles(t, backing, root, "d", "f", 30)

	pg, err := c.ReadDirPlus(ctx, dir, 0, 0, 512)
	if err != nil || pg.EOF {
		t.Fatalf("first page: eof %v, err %v", pg.EOF, err)
	}
	g.allow.Store(false)
	_, err = c.ReadDirPlus(ctx, dir, pg.Verf, pg.Entries[len(pg.Entries)-1].Cookie, 512)
	if StatOf(err) != ErrAcces {
		t.Errorf("resume after revocation: err %v, want ErrAcces", err)
	}
}

// TestReadDirPlusFallbackLegacyServer: against a server that answers
// PROC_UNAVAIL, ReadDirPlusAll degrades to READDIR + per-name LOOKUP
// with the same result, and the client latches the downgrade instead of
// re-probing every call.
func TestReadDirPlusFallbackLegacyServer(t *testing.T) {
	ctx := context.Background()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 8192})
	if err != nil {
		t.Fatal(err)
	}
	c, _, cnt := startStackWith(t, backing, true)
	root, err := c.Mount(ctx, "/export")
	if err != nil {
		t.Fatal(err)
	}
	dir := mkdirWithFiles(t, backing, root, "d", "f", 8)

	for round := 0; round < 2; round++ {
		dirA, ents, err := c.ReadDirPlusAll(ctx, dir)
		if err != nil {
			t.Fatalf("ReadDirPlusAll round %d: %v", round, err)
		}
		if dirA.Handle != dir || len(ents) != 8 {
			t.Fatalf("round %d: dir %v, %d entries", round, dirA.Handle, len(ents))
		}
		for _, e := range ents {
			if !e.HasAttr {
				t.Errorf("round %d: fallback entry %q has no attributes", round, e.Name)
			}
		}
	}
	if !c.plusUnavail.Load() {
		t.Error("client did not latch the downgrade")
	}
	if n := cnt.get(ProcReaddirPlus); n != 1 {
		t.Errorf("READDIRPLUS probed %d times, want 1 (latched)", n)
	}

	// The caching client's LookupPlus path downgrades over the same
	// latch.
	cc := NewCachingClient(c, time.Minute)
	a, err := cc.Lookup(ctx, dir, "f03")
	if err != nil {
		t.Fatalf("caching Lookup on legacy server: %v", err)
	}
	if a.Type != vfs.TypeRegular {
		t.Errorf("lookup type %v", a.Type)
	}
}

// TestCachingNegativeLookup: a lookup miss is cached — the second miss
// answers from the negative cache without an RPC — and creating the
// name clears it.
func TestCachingNegativeLookup(t *testing.T) {
	ctx := context.Background()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 8192})
	if err != nil {
		t.Fatal(err)
	}
	c, _, cnt := startStackWith(t, backing, false)
	root, err := c.Mount(ctx, "/export")
	if err != nil {
		t.Fatal(err)
	}
	cc := NewCachingClient(c, time.Minute)

	for i := 0; i < 3; i++ {
		if _, err := cc.Lookup(ctx, root, "ghost"); StatOf(err) != ErrNoEnt {
			t.Fatalf("lookup %d: err %v, want ErrNoEnt", i, err)
		}
	}
	if n := cnt.get(ProcLookupPlus) + cnt.get(ProcLookup); n != 1 {
		t.Errorf("3 misses cost %d lookup RPCs, want 1 (negative cache)", n)
	}

	if _, err := cc.Create(ctx, root, "ghost", 0o644); err != nil {
		t.Fatalf("Create: %v", err)
	}
	if _, err := cc.Lookup(ctx, root, "ghost"); err != nil {
		t.Errorf("lookup after create: %v (stale negative entry?)", err)
	}
}

// TestCachingBulkInstall: one ReadDirPlusAll primes the attribute and
// name caches — the following per-entry GetAttr and Lookup calls cost
// zero RPCs.
func TestCachingBulkInstall(t *testing.T) {
	ctx := context.Background()
	backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 8192})
	if err != nil {
		t.Fatal(err)
	}
	c, _, cnt := startStackWith(t, backing, false)
	root, err := c.Mount(ctx, "/export")
	if err != nil {
		t.Fatal(err)
	}
	dir := mkdirWithFiles(t, backing, root, "d", "f", 12)
	cc := NewCachingClient(c, time.Minute)

	ents, err := cc.ReadDirPlusAll(ctx, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 12 {
		t.Fatalf("%d entries, want 12", len(ents))
	}
	getattrs, lookups := cnt.get(ProcGetattr), cnt.get(ProcLookup)+cnt.get(ProcLookupPlus)
	for _, e := range ents {
		if _, err := cc.GetAttr(ctx, e.Attr.Handle); err != nil {
			t.Fatal(err)
		}
		if _, err := cc.Lookup(ctx, dir, e.Name); err != nil {
			t.Fatal(err)
		}
	}
	if n := cnt.get(ProcGetattr); n != getattrs {
		t.Errorf("GetAttr after bulk install cost %d RPCs, want 0", n-getattrs)
	}
	if n := cnt.get(ProcLookup) + cnt.get(ProcLookupPlus); n != lookups {
		t.Errorf("Lookup after bulk install cost %d RPCs, want 0", n-lookups)
	}
}

// TestCachingInstallGenerationCheck is the reinstall-race regression: a
// result fetched before an invalidation must not be installed after it.
// (The race itself — RPC in flight while forgetHandle runs — is not
// schedulable deterministically, so the gate is asserted directly.)
func TestCachingInstallGenerationCheck(t *testing.T) {
	ctx := context.Background()
	c, backing := startStack(t)
	mountRoot(t, c)
	a, err := backing.Create(backing.Root(), "x", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cc := NewCachingClient(c, time.Minute)

	// The losing interleaving: snapshot, fetch, invalidate, install.
	gen := cc.generation()
	attr, err := cc.Client.GetAttr(ctx, a.Handle)
	if err != nil {
		t.Fatal(err)
	}
	cc.forgetHandle(a.Handle)
	cc.installAt(gen, attr)
	cc.mu.Lock()
	_, resurrected := cc.attrs[a.Handle]
	cc.mu.Unlock()
	if resurrected {
		t.Error("stale result installed after invalidation (generation check missing)")
	}

	// The clean interleaving still installs.
	cc.installAt(cc.generation(), attr)
	cc.mu.Lock()
	_, ok := cc.attrs[a.Handle]
	cc.mu.Unlock()
	if !ok {
		t.Error("install with current generation was dropped")
	}
}

// TestReadDirConcurrentMutationStress races paged listings against
// directory churn and cursor eviction (capacity 1). Every listing that
// succeeds must contain each of the 50 stable names exactly once; a
// listing may only fail with the stale-cursor error ReadDirAll could
// not outrun. Run with -race.
func TestReadDirConcurrentMutationStress(t *testing.T) {
	ctx := context.Background()
	c, backing, srv := startStackExt(t)
	mountRoot(t, c)
	srv.SetDirCursorCap(1)
	dir := mkdirWithFiles(t, backing, backing.Root(), "d", "stable", 50)
	other := mkdirWithFiles(t, backing, backing.Root(), "other", "g", 10)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // churn the listed directory's contents
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			name := fmt.Sprintf("churn%d", i%7)
			if _, err := backing.Create(dir, name, 0o644); err == nil {
				_ = backing.Remove(dir, name)
			}
		}
	}()
	go func() { // churn the single cursor slot with competing listings
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = c.ReadDirAll(ctx, other)
		}
	}()

	for i := 0; i < 15; i++ {
		ents, err := c.ReadDirAll(ctx, dir)
		if err != nil {
			// The only acceptable failure: restarts could not outrun
			// cursor eviction. Silent truncation or corruption is not.
			if StatOf(err) != ErrStale {
				t.Fatalf("listing %d: %v", i, err)
			}
			continue
		}
		seen := make(map[string]int, len(ents))
		for _, e := range ents {
			seen[e.Name]++
			if seen[e.Name] > 1 {
				t.Fatalf("listing %d: %q duplicated", i, e.Name)
			}
		}
		for j := 0; j < 50; j++ {
			if name := fmt.Sprintf("stable%02d", j); seen[name] != 1 {
				t.Fatalf("listing %d: stable entry %q seen %d times", i, name, seen[name])
			}
		}
	}
	close(stop)
	wg.Wait()
}
