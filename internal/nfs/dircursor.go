package nfs

import (
	"container/list"
	"math/rand"
	"sync"

	"discfs/internal/vfs"
)

// Directory cursors: server-side snapshots that make READDIR paging
// stable under concurrent mutation.
//
// The v2 protocol resumes a listing from an opaque cookie. Deriving the
// cookie from an entry's index over a freshly re-listed directory — what
// this server did before — corrupts the walk the moment another client
// removes or creates an entry between pages: indices shift, entries are
// duplicated or silently skipped. Instead, the first page of a walk
// captures an immutable snapshot of the listing, tagged with a verifier
// drawn from a monotonic counter, and every later page resumes from an
// index into that same snapshot. A walk therefore always sees exactly
// the entries that existed when it started (stable entries are neither
// duplicated nor dropped), and a resume whose cursor is gone — evicted,
// or replaced by a newer walk — is *detected* (stale-cookie error, the
// client restarts the listing) instead of silently producing garbage.
//
// Snapshots live in one bounded LRU per server, shared by all peers, so
// a million-entry directory streams page by page without re-listing per
// page and without unbounded memory: the store holds at most cap
// snapshots and evicts the least recently used.

// DefaultDirCursors is the default snapshot-LRU capacity. Each cursor
// holds one directory listing (~40 bytes + name per entry), so the
// default bounds worst-case memory at a few hundred concurrent walks.
const DefaultDirCursors = 256

// dirSnapshot is one immutable directory listing, captured at the first
// page of a walk.
type dirSnapshot struct {
	verf uint64 // full verifier (READDIRPLUS cookieverf)
	dir  vfs.Handle
	peer string
	ents []vfs.DirEntry
}

// legacyKey addresses a snapshot from a v2 READDIR cookie, which has
// room for only 8 bits of verifier (the check byte) next to the entry
// index; the peer and directory provide the rest of the identity.
type legacyKey struct {
	peer string
	dir  vfs.Handle
	v8   uint8
}

// dirCursors is the bounded snapshot LRU.
type dirCursors struct {
	mu     sync.Mutex
	cap    int
	next   uint64 // verifier allocator, monotonic
	lru    *list.List
	byVerf map[uint64]*list.Element
	byLeg  map[legacyKey]*list.Element
}

func newDirCursors(capacity int) *dirCursors {
	if capacity <= 0 {
		capacity = DefaultDirCursors
	}
	return &dirCursors{
		cap: capacity,
		// Seed the verifier away from zero and from any previous
		// incarnation of this server, so a cookie issued before a restart
		// cannot alias a fresh cursor.
		next:   rand.Uint64() | 1,
		lru:    list.New(),
		byVerf: make(map[uint64]*list.Element),
		byLeg:  make(map[legacyKey]*list.Element),
	}
}

// setCap rebounds the LRU, evicting down to the new capacity.
func (dc *dirCursors) setCap(capacity int) {
	if capacity <= 0 {
		capacity = DefaultDirCursors
	}
	dc.mu.Lock()
	dc.cap = capacity
	dc.evictLocked()
	dc.mu.Unlock()
}

// count reports live snapshots (for the operations-plane gauge).
func (dc *dirCursors) count() int {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	return dc.lru.Len()
}

func (dc *dirCursors) legKey(s *dirSnapshot) legacyKey {
	return legacyKey{peer: s.peer, dir: s.dir, v8: uint8(s.verf >> 24)}
}

// create captures a new snapshot for (peer, dir) and returns it. A live
// snapshot whose legacy key collides (same peer, dir and check byte) is
// replaced — its outstanding cookies will miss and report stale.
func (dc *dirCursors) create(peer string, dir vfs.Handle, ents []vfs.DirEntry) *dirSnapshot {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	s := &dirSnapshot{verf: dc.next, dir: dir, peer: peer, ents: ents}
	dc.next++
	if old, ok := dc.byLeg[dc.legKey(s)]; ok {
		dc.removeLocked(old)
	}
	el := dc.lru.PushFront(s)
	dc.byVerf[s.verf] = el
	dc.byLeg[dc.legKey(s)] = el
	dc.evictLocked()
	return s
}

// byVerifier resumes a READDIRPLUS walk: the full verifier names the
// snapshot exactly. nil when evicted or never issued.
func (dc *dirCursors) byVerifier(verf uint64) *dirSnapshot {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	el, ok := dc.byVerf[verf]
	if !ok {
		return nil
	}
	dc.lru.MoveToFront(el)
	return el.Value.(*dirSnapshot)
}

// byLegacy resumes a v2 READDIR walk from the cookie's check byte.
func (dc *dirCursors) byLegacy(peer string, dir vfs.Handle, v8 uint8) *dirSnapshot {
	dc.mu.Lock()
	defer dc.mu.Unlock()
	el, ok := dc.byLeg[legacyKey{peer: peer, dir: dir, v8: v8}]
	if !ok {
		return nil
	}
	dc.lru.MoveToFront(el)
	return el.Value.(*dirSnapshot)
}

func (dc *dirCursors) removeLocked(el *list.Element) {
	s := el.Value.(*dirSnapshot)
	dc.lru.Remove(el)
	delete(dc.byVerf, s.verf)
	if cur, ok := dc.byLeg[dc.legKey(s)]; ok && cur == el {
		delete(dc.byLeg, dc.legKey(s))
	}
}

func (dc *dirCursors) evictLocked() {
	for dc.lru.Len() > dc.cap {
		dc.removeLocked(dc.lru.Back())
	}
}
