// Package nfs implements the NFS version 2 protocol (RFC 1094): wire
// types, a user-level server dispatching into a vfs.FS backend, the MOUNT
// protocol, and a Go client library that plays the role the kernel NFS
// client plays in the paper's prototype.
package nfs

import (
	"errors"
	"fmt"
	"time"

	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// Program numbers and versions.
const (
	// Prog is the NFS program number.
	Prog = 100003
	// Vers is NFS version 2.
	Vers = 2
	// MountProg is the MOUNT protocol program number.
	MountProg = 100005
	// MountVers is MOUNT protocol version 1.
	MountVers = 1
)

// NFSv2 procedure numbers.
const (
	ProcNull       = 0
	ProcGetattr    = 1
	ProcSetattr    = 2
	ProcRoot       = 3 // obsolete
	ProcLookup     = 4
	ProcReadlink   = 5
	ProcRead       = 6
	ProcWritecache = 7 // unused
	ProcWrite      = 8
	ProcCreate     = 9
	ProcRemove     = 10
	ProcRename     = 11
	ProcLink       = 12
	ProcSymlink    = 13
	ProcMkdir      = 14
	ProcRmdir      = 15
	ProcReaddir    = 16
	ProcStatfs     = 17
	// ProcCommit is this server's extension beyond RFC 1094: the NFSv3
	// COMMIT durability barrier (unstable WRITEs are flushed to stable
	// storage; the reply carries the boot verifier so clients detect a
	// restart that lost buffered writes and replay them).
	ProcCommit = 18
	// ProcFSInfo is the FSINFO-style transfer-size negotiation, the
	// second extension slot: the client proposes the largest READ/WRITE
	// payload it wants to use, the server clamps the proposal to its
	// configured maximum and replies with the granted size. Servers
	// predating the extension answer PROC_UNAVAIL, which clients treat
	// as a grant of the v2 baseline (MaxData, 8 KiB) — see
	// Client.Negotiate.
	ProcFSInfo = 19
	// ProcReaddirPlus is the batched metadata extension (NFSv3
	// READDIRPLUS in spirit): one call returns a page of directory
	// entries with their attributes and file handles piggybacked, sized
	// to the negotiated transfer, resumed via a 64-bit cookie validated
	// against a cookie verifier naming a server-side snapshot of the
	// listing. A verifier the server no longer holds answers
	// ErrBadCookie and the client restarts the walk from cookie 0.
	// Servers predating the extension answer PROC_UNAVAIL; clients fall
	// back to READDIR + per-name LOOKUP.
	ProcReaddirPlus = 20
	// ProcLookupPlus is the compound LOOKUP+GETATTR+ACCESS extension:
	// one call resolves a name and returns the directory's attributes,
	// the child's handle and attributes, and the caller's access bits on
	// the child. A miss (ErrNoEnt) still carries the directory's
	// attributes so clients can scope negative name-cache entries.
	// PROC_UNAVAIL falls back to plain LOOKUP.
	ProcLookupPlus = 21
)

// procNames labels NFS procedures for metrics and diagnostics.
var procNames = [...]string{
	ProcNull:        "null",
	ProcGetattr:     "getattr",
	ProcSetattr:     "setattr",
	ProcRoot:        "root",
	ProcLookup:      "lookup",
	ProcReadlink:    "readlink",
	ProcRead:        "read",
	ProcWritecache:  "writecache",
	ProcWrite:       "write",
	ProcCreate:      "create",
	ProcRemove:      "remove",
	ProcRename:      "rename",
	ProcLink:        "link",
	ProcSymlink:     "symlink",
	ProcMkdir:       "mkdir",
	ProcRmdir:       "rmdir",
	ProcReaddir:     "readdir",
	ProcStatfs:      "statfs",
	ProcCommit:      "commit",
	ProcFSInfo:      "fsinfo",
	ProcReaddirPlus: "readdirplus",
	ProcLookupPlus:  "lookupplus",
}

// ProcName returns a stable lower-case label for an NFS procedure
// number, for metric label values.
func ProcName(proc uint32) string {
	if proc < uint32(len(procNames)) && procNames[proc] != "" {
		return procNames[proc]
	}
	return fmt.Sprintf("proc%d", proc)
}

// MOUNT procedure numbers.
const (
	MountProcNull = 0
	MountProcMnt  = 1
	MountProcUmnt = 3
)

// Stat is an NFSv2 status code.
type Stat uint32

// NFSv2 status codes.
const (
	OK          Stat = 0
	ErrPerm     Stat = 1
	ErrNoEnt    Stat = 2
	ErrIO       Stat = 5
	ErrAcces    Stat = 13
	ErrExist    Stat = 17
	ErrNotDir   Stat = 20
	ErrIsDir    Stat = 21
	ErrFBig     Stat = 27
	ErrNoSpc    Stat = 28
	ErrROFS     Stat = 30
	ErrNameLong Stat = 63
	ErrNotEmpty Stat = 66
	ErrDQuot    Stat = 69
	ErrStale    Stat = 70
)

// ErrTryLater is a protocol extension (both ends of this protocol are
// ours): the server's admission control rejected the request and the
// client should back off and retry. The value matches NFSv3's
// NFS3ERR_JUKEBOX (10008), the closest standard analogue — servers
// predating the extension never emit it, and clients predating it
// surface a generic error rather than misreading a v2 code.
const ErrTryLater Stat = 10008

// ErrXDev reports a cross-device operation: under federation, a RENAME
// or LINK whose two handles live on different shards (servers) cannot
// be performed atomically and is rejected client-side before anything
// touches the wire. The value matches NFS3ERR_XDEV (and errno EXDEV);
// no NFSv2 code collides with it. Servers never emit it — a single
// server is a single device.
const ErrXDev Stat = 18

// ErrBadCookie is a protocol extension paired with ProcReaddirPlus: the
// cookie verifier no longer names a live directory cursor (evicted from
// the server's bounded snapshot LRU, or issued before a restart), so
// the walk cannot be resumed — the client restarts it from cookie 0.
// The value matches NFSv3's NFS3ERR_BAD_COOKIE.
const ErrBadCookie Stat = 10003

func (s Stat) String() string {
	switch s {
	case OK:
		return "OK"
	case ErrPerm:
		return "operation not permitted"
	case ErrNoEnt:
		return "no such file or directory"
	case ErrIO:
		return "i/o error"
	case ErrAcces:
		return "permission denied"
	case ErrExist:
		return "file exists"
	case ErrNotDir:
		return "not a directory"
	case ErrIsDir:
		return "is a directory"
	case ErrFBig:
		return "file too large"
	case ErrNoSpc:
		return "no space left on device"
	case ErrROFS:
		return "read-only file system"
	case ErrNameLong:
		return "file name too long"
	case ErrNotEmpty:
		return "directory not empty"
	case ErrDQuot:
		return "quota exceeded"
	case ErrStale:
		return "stale file handle"
	case ErrXDev:
		return "cross-shard operation"
	case ErrTryLater:
		return "request throttled, try again later"
	case ErrBadCookie:
		return "readdir cookie is stale"
	}
	return fmt.Sprintf("nfs status %d", uint32(s))
}

// Error wraps a non-OK Stat as a Go error (client side).
type Error struct{ Stat Stat }

func (e *Error) Error() string { return "nfs: " + e.Stat.String() }

// StatOf extracts the NFS status from an error returned by the client
// helpers; OK when err is nil, ErrIO for non-NFS errors.
func StatOf(err error) Stat {
	if err == nil {
		return OK
	}
	var ne *Error
	if errors.As(err, &ne) {
		return ne.Stat
	}
	return ErrIO
}

// MapError converts a vfs error to an NFS status (server side).
func MapError(err error) Stat {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, vfs.ErrNotExist):
		return ErrNoEnt
	case errors.Is(err, vfs.ErrExist):
		return ErrExist
	case errors.Is(err, vfs.ErrNotDir):
		return ErrNotDir
	case errors.Is(err, vfs.ErrIsDir):
		return ErrIsDir
	case errors.Is(err, vfs.ErrNotEmpty):
		return ErrNotEmpty
	case errors.Is(err, vfs.ErrStale):
		return ErrStale
	case errors.Is(err, vfs.ErrPerm):
		return ErrAcces
	case errors.Is(err, vfs.ErrNoSpace):
		return ErrNoSpc
	case errors.Is(err, vfs.ErrNameTooLong):
		return ErrNameLong
	case errors.Is(err, vfs.ErrFBig):
		return ErrFBig
	case errors.Is(err, vfs.ErrThrottled):
		return ErrTryLater
	case errors.Is(err, vfs.ErrInval):
		return ErrIO // NFSv2 has no EINVAL; IO is the catch-all
	default:
		return ErrIO
	}
}

// FHSize is the fixed NFSv2 file handle size.
const FHSize = 32

// MaxData is the NFSv2 baseline READ/WRITE transfer size: the fallback
// every connection starts from, and all an un-negotiated (v2-era) peer
// ever uses.
const MaxData = 8192

// Negotiated transfer bounds (see ProcFSInfo). DefaultMaxTransfer is
// the server-side default clamp: one 8 KiB block under the 512 KiB
// pool class, so a maximal record — payload plus RPC framing and
// attributes — still fits the class and a cached block pins exactly
// the memory the cache accounts for (a full 512 KiB payload would tip
// every record into the 1 MiB class, doubling the footprint).
// MaxTransferLimit is the protocol's absolute ceiling (the record
// layers size their buffers to carry it).
const (
	DefaultMaxTransfer = (512 - 8) << 10
	MaxTransferLimit   = 1 << 20
)

// ClampTransfer bounds a transfer-size proposal or configuration value
// to [MaxData, MaxTransferLimit] and rounds it down to a whole number
// of MaxData blocks — an unaligned grant would quietly disable the
// block-aligned zero-copy read path and the write-gathering run match.
// 0 (and anything below the baseline) means the baseline.
func ClampTransfer(n int) uint32 {
	if n < MaxData {
		return MaxData
	}
	if n > MaxTransferLimit {
		return MaxTransferLimit
	}
	return uint32(n - n%MaxData)
}

// MaxPath and MaxName bound path and name strings.
const (
	MaxPath = 1024
	MaxName = 255
)

// Federation shard tags. A federated client stamps the shard id of the
// owning server into the top byte of every handle's inode number, so
// any operation on the handle routes to the right server without a
// table lookup. The tag exists only inside the client process: it is
// stripped before a handle is encoded onto the wire and applied as
// handles are decoded off it, so servers — including pre-federation
// ones — only ever see untagged inos. Shard 0's tag is zero, making
// the transform the identity for a single-server (legacy) deployment:
// a fed-aware client against a stock server leaks no prefix bytes.
const (
	// ShardShift is the bit position of the shard tag within Ino.
	ShardShift = 56
	// MaxServerIno bounds server-assigned inode numbers; anything
	// larger would collide with the tag space. FFS inode numbers are
	// dense small integers, far below this.
	MaxServerIno = uint64(1)<<ShardShift - 1
)

// TagIno stamps a shard id into an untagged inode number.
func TagIno(shard int, ino uint64) uint64 { return ino | uint64(shard)<<ShardShift }

// UntagIno strips the shard tag from an inode number.
func UntagIno(ino uint64) uint64 { return ino & MaxServerIno }

// ShardOfIno extracts the shard id from a (possibly tagged) inode.
func ShardOfIno(ino uint64) int { return int(ino >> ShardShift) }

// fhMagic distinguishes handles minted by this server.
var fhMagic = [4]byte{'D', 'F', 'S', '2'}

// EncodeFH packs a vfs.Handle into a 32-byte NFS file handle.
func EncodeFH(h vfs.Handle) [FHSize]byte {
	var fh [FHSize]byte
	copy(fh[0:4], fhMagic[:])
	be64(fh[4:12], h.Ino)
	be32(fh[12:16], h.Gen)
	return fh
}

// DecodeFH unpacks an NFS file handle; stale/foreign handles error.
func DecodeFH(fh []byte) (vfs.Handle, error) {
	if len(fh) != FHSize || fh[0] != fhMagic[0] || fh[1] != fhMagic[1] ||
		fh[2] != fhMagic[2] || fh[3] != fhMagic[3] {
		return vfs.Handle{}, vfs.ErrStale
	}
	return vfs.Handle{
		Ino: rd64(fh[4:12]),
		Gen: rd32(fh[12:16]),
	}, nil
}

func be64(b []byte, v uint64) {
	b[0], b[1], b[2], b[3] = byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32)
	b[4], b[5], b[6], b[7] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
func be32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v>>24), byte(v>>16), byte(v>>8), byte(v)
}
func rd64(b []byte) uint64 {
	return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
		uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
}
func rd32(b []byte) uint32 {
	return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
}

// FAttr is the NFSv2 fattr structure.
type FAttr struct {
	Type      uint32
	Mode      uint32
	Nlink     uint32
	UID       uint32
	GID       uint32
	Size      uint32
	BlockSize uint32
	Rdev      uint32
	Blocks    uint32
	FSID      uint32
	FileID    uint32
	Atime     time.Time
	Mtime     time.Time
	Ctime     time.Time
}

// NFSv2 file type codes (subset).
const (
	ftypeNon  = 0
	ftypeReg  = 1
	ftypeDir  = 2
	ftypeLink = 5
)

// mode type bits, as in stat(2); NFSv2 duplicates the type in the mode.
const (
	modeDir  = 0o040000
	modeReg  = 0o100000
	modeLink = 0o120000
)

// FAttrFromVFS converts vfs.Attr to the wire fattr.
func FAttrFromVFS(a vfs.Attr, blockSize uint32) FAttr {
	fa := FAttr{
		Mode:      a.Mode,
		Nlink:     a.Nlink,
		UID:       a.UID,
		GID:       a.GID,
		Size:      uint32(a.Size),
		BlockSize: blockSize,
		Blocks:    uint32(a.Blocks),
		FSID:      1,
		FileID:    uint32(a.Handle.Ino),
		Atime:     a.Atime,
		Mtime:     a.Mtime,
		Ctime:     a.Ctime,
	}
	switch a.Type {
	case vfs.TypeRegular:
		fa.Type = ftypeReg
		fa.Mode |= modeReg
	case vfs.TypeDir:
		fa.Type = ftypeDir
		fa.Mode |= modeDir
	case vfs.TypeSymlink:
		fa.Type = ftypeLink
		fa.Mode |= modeLink
	default:
		fa.Type = ftypeNon
	}
	return fa
}

func encodeTime(e *xdr.Encoder, t time.Time) {
	if t.IsZero() {
		e.Uint32(0)
		e.Uint32(0)
		return
	}
	e.Uint32(uint32(t.Unix()))
	e.Uint32(uint32(t.Nanosecond() / 1000))
}

func decodeTime(d *xdr.Decoder) time.Time {
	sec := d.Uint32()
	usec := d.Uint32()
	if sec == 0 && usec == 0 {
		return time.Time{}
	}
	return time.Unix(int64(sec), int64(usec)*1000)
}

// Encode writes the fattr to e.
func (fa *FAttr) Encode(e *xdr.Encoder) {
	e.Uint32(fa.Type)
	e.Uint32(fa.Mode)
	e.Uint32(fa.Nlink)
	e.Uint32(fa.UID)
	e.Uint32(fa.GID)
	e.Uint32(fa.Size)
	e.Uint32(fa.BlockSize)
	e.Uint32(fa.Rdev)
	e.Uint32(fa.Blocks)
	e.Uint32(fa.FSID)
	e.Uint32(fa.FileID)
	encodeTime(e, fa.Atime)
	encodeTime(e, fa.Mtime)
	encodeTime(e, fa.Ctime)
}

// DecodeFAttr reads an fattr from d.
func DecodeFAttr(d *xdr.Decoder) FAttr {
	return FAttr{
		Type: d.Uint32(), Mode: d.Uint32(), Nlink: d.Uint32(),
		UID: d.Uint32(), GID: d.Uint32(), Size: d.Uint32(),
		BlockSize: d.Uint32(), Rdev: d.Uint32(), Blocks: d.Uint32(),
		FSID: d.Uint32(), FileID: d.Uint32(),
		Atime: decodeTime(d), Mtime: decodeTime(d), Ctime: decodeTime(d),
	}
}

// noVal is the sattr "do not set" sentinel.
const noVal = 0xffffffff

// SAttr is the NFSv2 settable-attributes structure.
type SAttr struct {
	Mode  uint32
	UID   uint32
	GID   uint32
	Size  uint32
	Atime time.Time
	Mtime time.Time
	// SetAtime/SetMtime distinguish zero times from "do not set".
	SetAtime bool
	SetMtime bool
}

// NewSAttr returns an SAttr with every field marked "do not set".
func NewSAttr() SAttr {
	return SAttr{Mode: noVal, UID: noVal, GID: noVal, Size: noVal}
}

// Encode writes the sattr.
func (s *SAttr) Encode(e *xdr.Encoder) {
	e.Uint32(s.Mode)
	e.Uint32(s.UID)
	e.Uint32(s.GID)
	e.Uint32(s.Size)
	if s.SetAtime {
		encodeTime(e, s.Atime)
	} else {
		e.Uint32(noVal)
		e.Uint32(noVal)
	}
	if s.SetMtime {
		encodeTime(e, s.Mtime)
	} else {
		e.Uint32(noVal)
		e.Uint32(noVal)
	}
}

// DecodeSAttr reads an sattr.
func DecodeSAttr(d *xdr.Decoder) SAttr {
	s := SAttr{
		Mode: d.Uint32(), UID: d.Uint32(), GID: d.Uint32(), Size: d.Uint32(),
	}
	asec, ausec := d.Uint32(), d.Uint32()
	msec, musec := d.Uint32(), d.Uint32()
	if asec != noVal {
		s.SetAtime = true
		s.Atime = time.Unix(int64(asec), int64(ausec)*1000)
	}
	if msec != noVal {
		s.SetMtime = true
		s.Mtime = time.Unix(int64(msec), int64(musec)*1000)
	}
	return s
}

// ToVFS converts the sattr into a vfs.SetAttr.
func (s *SAttr) ToVFS() vfs.SetAttr {
	var out vfs.SetAttr
	if s.Mode != noVal {
		m := s.Mode & 0o7777
		out.Mode = &m
	}
	if s.UID != noVal {
		u := s.UID
		out.UID = &u
	}
	if s.GID != noVal {
		g := s.GID
		out.GID = &g
	}
	if s.Size != noVal {
		sz := uint64(s.Size)
		out.Size = &sz
	}
	if s.SetAtime {
		t := s.Atime
		out.Atime = &t
	}
	if s.SetMtime {
		t := s.Mtime
		out.Mtime = &t
	}
	return out
}

// DirEntry is one READDIR result entry.
type DirEntry struct {
	FileID uint32
	Name   string
	Cookie uint32
}

// DirEntryPlus is one READDIRPLUS result entry: a directory entry with
// its file handle and attributes piggybacked. HasAttr is false (and
// Handle zero) when the server could not fetch attributes for the
// entry — typically because it was removed after the walk's snapshot
// was taken; callers fall back to a LOOKUP or skip the name.
type DirEntryPlus struct {
	FileID  uint32
	Name    string
	Cookie  uint64
	Handle  vfs.Handle
	HasAttr bool
	Attr    vfs.Attr
}

// Access permission bits carried by ProcLookupPlus replies (and the
// AccessChecker capability), the classic rwx encoding.
const (
	AccessExec  uint32 = 1
	AccessWrite uint32 = 2
	AccessRead  uint32 = 4
)
