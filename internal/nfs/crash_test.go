package nfs

// Crash-consistency suite for the server write path: a fault-injecting
// block device with a volatile write cache simulates a power cut at
// every Nth write, dropping the cache after applying a pseudo-random
// subset of it in shuffled order (the partial, reordered writeback a
// real disk cache performs as power dies). The assertions are exactly
// the NFS COMMIT contract:
//
//   - data a COMMIT acknowledged before the cut is intact, unless a
//     later (uncommitted) write targeted the same block — then the
//     block holds one of the post-commit versions, never anything
//     older than the committed one;
//   - unacknowledged writes may vanish or partially land;
//   - the filesystem checker passes after the cut — metadata writes
//     are synchronous, so a power cut never corrupts structure.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"discfs/internal/ffs"
	"discfs/internal/vfs"
)

var errPowerCut = errors.New("crashdev: power is out")

type cdWrite struct {
	bn   uint32
	data []byte
}

// crashDevice is a BlockDevice whose writes land in a volatile cache
// until Sync copies them to the backing MemDevice. Arm schedules a
// power cut after the Nth subsequent write.
type crashDevice struct {
	inner *ffs.MemDevice

	mu        sync.Mutex
	volatile  []cdWrite
	armed     bool
	countdown int
	cut       bool
	rng       *rand.Rand
}

func newCrashDevice(blockSize int, numBlocks uint32, seed int64) *crashDevice {
	return &crashDevice{
		inner: ffs.NewMemDevice(blockSize, numBlocks, ffs.DiskModel{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (d *crashDevice) BlockSize() int    { return d.inner.BlockSize() }
func (d *crashDevice) NumBlocks() uint32 { return d.inner.NumBlocks() }

// Arm schedules the power cut after n more writes.
func (d *crashDevice) Arm(n int) {
	d.mu.Lock()
	d.armed = true
	d.countdown = n
	d.mu.Unlock()
}

// Cut reports whether the power has been cut.
func (d *crashDevice) Cut() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cut
}

// ReadBlock reads through the volatile cache (the drive serves its own
// cached writes), newest entry first. Post-cut reads serve the platter:
// the dying machine's view no longer matters, but rollback paths in the
// filesystem still read.
func (d *crashDevice) ReadBlock(bn uint32, buf []byte) error {
	d.mu.Lock()
	for i := len(d.volatile) - 1; i >= 0; i-- {
		if d.volatile[i].bn == bn {
			data := d.volatile[i].data
			d.mu.Unlock()
			copy(buf, data)
			for i := len(data); i < len(buf); i++ {
				buf[i] = 0
			}
			return nil
		}
	}
	d.mu.Unlock()
	return d.inner.ReadBlock(bn, buf)
}

// WriteBlock caches the write; when the armed countdown expires, the
// power cut fires: a random subset of the cache lands on the platter
// in random order, the rest is lost.
func (d *crashDevice) WriteBlock(bn uint32, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cut {
		// Power is out; the write goes nowhere. Reporting success is
		// the realistic model (the machine dies, nobody reads the
		// status), and the driver stops on Cut().
		return nil
	}
	d.volatile = append(d.volatile, cdWrite{bn: bn, data: append([]byte(nil), data...)})
	if d.armed {
		d.countdown--
		if d.countdown <= 0 {
			d.performCutLocked()
		}
	}
	return nil
}

// Sync flushes the volatile cache to the platter.
func (d *crashDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cut {
		return errPowerCut
	}
	for _, w := range d.volatile {
		if err := d.inner.WriteBlock(w.bn, w.data); err != nil {
			return err
		}
	}
	d.volatile = nil
	return nil
}

// performCutLocked is the power cut: a shuffled random subset of the
// volatile cache reaches the platter; everything else is gone.
func (d *crashDevice) performCutLocked() {
	d.cut = true
	idx := d.rng.Perm(len(d.volatile))
	for _, i := range idx {
		if d.rng.Intn(2) == 0 {
			continue // this cached write never left the drive
		}
		w := d.volatile[i]
		_ = d.inner.WriteBlock(w.bn, w.data)
	}
	d.volatile = nil
}

// Recover restores power: the platter is what survived.
func (d *crashDevice) Recover() {
	d.mu.Lock()
	d.cut = false
	d.armed = false
	d.volatile = nil
	d.mu.Unlock()
}

// ---- the suite ----

const (
	crashBS       = 8192
	crashFiles    = 4
	crashBlocks   = 8 // blocks per file
	crashOps      = 400
	crashCommitEv = 3 // commit every Nth op
)

// pattern fills one crash-test block: (file, block, version) tagged.
func pattern(file, block, version int) []byte {
	b := make([]byte, crashBS)
	for i := range b {
		b[i] = byte(file*131 + block*31 + version*7 + i)
	}
	return b
}

// crashIteration runs one power-cut scenario: cut after the cutAt-th
// device write of the overwrite phase. It reports whether the cut
// actually fired (a huge cutAt outlives the workload).
func crashIteration(t *testing.T, cutAt int) bool {
	t.Helper()
	dev := newCrashDevice(crashBS, 4096, int64(cutAt)*7919+1)
	backing, err := ffs.New(ffs.Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGatherFS(backing, GatherConfig{Committers: 1})
	defer g.Close()

	// Setup phase (durable by construction): create the files, write
	// every block once, commit. All allocation and namespace traffic
	// happens here, before the cut is armed.
	handles := make([]vfs.Handle, crashFiles)
	version := make([][]int, crashFiles) // current version per block
	lastAck := make([][]int, crashFiles) // version at the last acked COMMIT
	uncommitted := make([][]map[int]bool, crashFiles)
	for f := 0; f < crashFiles; f++ {
		a, err := g.Create(g.Root(), fmt.Sprintf("f%d", f), 0o644)
		if err != nil {
			t.Fatal(err)
		}
		handles[f] = a.Handle
		version[f] = make([]int, crashBlocks)
		lastAck[f] = make([]int, crashBlocks)
		uncommitted[f] = make([]map[int]bool, crashBlocks)
		for b := 0; b < crashBlocks; b++ {
			uncommitted[f][b] = map[int]bool{}
			if _, err := g.Write(handles[f], uint64(b*crashBS), pattern(f, b, 0)); err != nil {
				t.Fatal(err)
			}
		}
		if _, _, err := g.Commit(handles[f]); err != nil {
			t.Fatal(err)
		}
	}

	// Overwrite phase under the armed device.
	dev.Arm(cutAt)
	rng := rand.New(rand.NewSource(int64(cutAt)*104729 + 3))
	fired := false
	for op := 0; op < crashOps && !fired; op++ {
		f := rng.Intn(crashFiles)
		b := rng.Intn(crashBlocks)
		version[f][b]++
		uncommitted[f][b][version[f][b]] = true
		if _, err := g.Write(handles[f], uint64(b*crashBS), pattern(f, b, version[f][b])); err != nil {
			break // power already out
		}
		if op%crashCommitEv == crashCommitEv-1 {
			cf := rng.Intn(crashFiles)
			_, _, err := g.Commit(handles[cf])
			if err == nil && !dev.Cut() {
				// Acknowledged durable: everything written to cf so far.
				for b := 0; b < crashBlocks; b++ {
					lastAck[cf][b] = version[cf][b]
					uncommitted[cf][b] = map[int]bool{}
				}
			}
		}
		fired = dev.Cut()
	}
	if !dev.Cut() {
		return false
	}

	// Recovery: power returns; the gather queue's contents (RAM) and
	// the device's volatile cache are gone.
	dev.Recover()

	// 1. Metadata is structurally sound.
	if errs := backing.Check(); len(errs) != 0 {
		t.Fatalf("cut@%d: fsck after power cut: %v", cutAt, errs[0])
	}
	// 2. Per block: the content is the last committed version, or any
	// version written after it — never anything older.
	for f := 0; f < crashFiles; f++ {
		for b := 0; b < crashBlocks; b++ {
			got, _, err := backing.Read(handles[f], uint64(b*crashBS), crashBS)
			if err != nil {
				t.Fatalf("cut@%d: read f%d block %d: %v", cutAt, f, b, err)
			}
			if bytes.Equal(got, pattern(f, b, lastAck[f][b])) {
				continue
			}
			ok := false
			for v := range uncommitted[f][b] {
				if v > lastAck[f][b] && bytes.Equal(got, pattern(f, b, v)) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("cut@%d: f%d block %d: content is neither the committed version %d nor any later write (COMMIT-acknowledged data lost)",
					cutAt, f, b, lastAck[f][b])
			}
		}
	}
	return true
}

// TestCrashConsistencySweep simulates a power cut at every write
// position from 1 to 120 — over 100 distinct cut points through the
// unstable-write/COMMIT pipeline.
func TestCrashConsistencySweep(t *testing.T) {
	fired := 0
	for cut := 1; cut <= 120; cut++ {
		if crashIteration(t, cut) {
			fired++
		}
	}
	if fired < 100 {
		t.Fatalf("only %d of 120 cut points fired; workload too small", fired)
	}
	t.Logf("verified COMMIT durability across %d power-cut points", fired)
}

// TestCrashMetadataDurability cuts power right after namespace traffic:
// synchronous metadata (creates, renames, removes) must survive any
// cut because every namespace operation syncs the device.
func TestCrashMetadataDurability(t *testing.T) {
	for cut := 1; cut <= 30; cut++ {
		dev := newCrashDevice(crashBS, 4096, int64(cut)*31+5)
		backing, err := ffs.New(ffs.Config{Device: dev})
		if err != nil {
			t.Fatal(err)
		}
		root := backing.Root()
		// Namespace workload with the device armed: the cut lands
		// between operations' internal writes, but each op syncs before
		// returning, so a completed op is durable.
		dev.Arm(cut)
		var done []string
		for i := 0; i < 40 && !dev.Cut(); i++ {
			name := fmt.Sprintf("d%d", i)
			if _, err := backing.Mkdir(root, name, 0o755); err != nil {
				break
			}
			if !dev.Cut() {
				done = append(done, name)
			}
		}
		if !dev.Cut() {
			continue
		}
		dev.Recover()
		if errs := backing.Check(); len(errs) != 0 {
			t.Fatalf("cut@%d: fsck: %v", cut, errs[0])
		}
		for _, name := range done {
			if _, err := backing.Lookup(root, name); err != nil {
				t.Fatalf("cut@%d: completed mkdir %s lost: %v", cut, name, err)
			}
		}
	}
}
