package nfs

import (
	"bytes"
	"errors"
	"testing"

	"discfs/internal/ffs"
	"discfs/internal/vfs"
)

func gatherOver(t *testing.T, cfg GatherConfig) (*GatherFS, *ffs.FFS) {
	t.Helper()
	backing, err := ffs.New(ffs.Config{BlockSize: 1024, NumBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	g := NewGatherFS(backing, cfg)
	t.Cleanup(func() { g.Close() })
	return g, backing
}

func mustCreate(t *testing.T, fs vfs.FS, name string) vfs.Handle {
	t.Helper()
	a, err := fs.Create(fs.Root(), name, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return a.Handle
}

func TestGatherWriteCommitReachesBacking(t *testing.T) {
	g, backing := gatherOver(t, GatherConfig{})
	h := mustCreate(t, g, "f")
	want := bytes.Repeat([]byte("abcdefgh"), 3000) // 24000 bytes, multi-extent
	for off := 0; off < len(want); off += MaxData {
		end := off + MaxData
		if end > len(want) {
			end = len(want)
		}
		if _, err := g.Write(h, uint64(off), want[off:end]); err != nil {
			t.Fatalf("Write: %v", err)
		}
	}
	ver, attr, err := g.Commit(h)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if ver != g.Verifier() || ver == 0 {
		t.Errorf("verifier = %d, want %d (non-zero)", ver, g.Verifier())
	}
	if attr.Size != uint64(len(want)) {
		t.Errorf("committed size = %d, want %d", attr.Size, len(want))
	}
	got, _, err := backing.Read(h, 0, uint32(len(want)))
	if err != nil || !bytes.Equal(got, want) {
		t.Fatalf("backing content mismatch after commit (err=%v)", err)
	}
	st := g.Stats()
	if st.WritesGathered == 0 || st.BackendWrites == 0 || st.Commits != 1 {
		t.Errorf("stats = %+v, want gathered>0, backendWrites>0, commits=1", st)
	}
	if st.BackendWrites >= st.WritesGathered {
		t.Errorf("no coalescing: %d backend writes for %d gathered", st.BackendWrites, st.WritesGathered)
	}
}

func TestGatherNewestWinsOnOverlap(t *testing.T) {
	g, _ := gatherOver(t, GatherConfig{})
	h := mustCreate(t, g, "f")
	if _, err := g.Write(h, 0, bytes.Repeat([]byte{'A'}, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(h, 50, bytes.Repeat([]byte{'B'}, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(h, 25, bytes.Repeat([]byte{'C'}, 10)); err != nil {
		t.Fatal(err)
	}
	want := append(bytes.Repeat([]byte{'A'}, 25), bytes.Repeat([]byte{'C'}, 10)...)
	want = append(want, bytes.Repeat([]byte{'A'}, 15)...)
	want = append(want, bytes.Repeat([]byte{'B'}, 100)...)
	// Read through the gather layer (pre-commit) and after commit.
	got, eof, err := g.Read(h, 0, 4096)
	if err != nil || !eof {
		t.Fatalf("gather read: err=%v eof=%v", err, eof)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("gather read = %q..., want %q...", got[:40], want[:40])
	}
	if _, _, err := g.Commit(h); err != nil {
		t.Fatal(err)
	}
	got2, _, err := g.Read(h, 0, 4096)
	if err != nil || !bytes.Equal(got2, want) {
		t.Fatalf("post-commit read mismatch (err=%v)", err)
	}
}

func TestGatherReadOverlayAndAttrBeforeFlush(t *testing.T) {
	// A huge queue and no pressure: data sits buffered, so reads and
	// attrs must be served from the overlay.
	g, backing := gatherOver(t, GatherConfig{QueueBlocks: 1 << 16})
	h := mustCreate(t, g, "f")
	if _, err := backing.Write(h, 0, []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(h, 4, []byte("WXYZ")); err != nil {
		t.Fatal(err)
	}
	got, _, err := g.Read(h, 0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "0123WXYZ89" {
		t.Errorf("overlay read = %q, want 0123WXYZ89", got)
	}
	// Buffered extension past backing EOF: size overlays, hole zero-fills.
	if _, err := g.Write(h, 20, []byte("TAIL")); err != nil {
		t.Fatal(err)
	}
	a, err := g.GetAttr(h)
	if err != nil || a.Size != 24 {
		t.Errorf("GetAttr size = %d (err=%v), want 24", a.Size, err)
	}
	got, eof, err := g.Read(h, 0, 64)
	if err != nil || !eof {
		t.Fatalf("read: err=%v eof=%v", err, eof)
	}
	want := append([]byte("0123WXYZ89"), make([]byte, 10)...)
	want = append(want, []byte("TAIL")...)
	if !bytes.Equal(got, want) {
		t.Errorf("extended read = %q, want %q", got, want)
	}
}

func TestGatherWriteToDirFailsSynchronously(t *testing.T) {
	g, _ := gatherOver(t, GatherConfig{})
	if _, err := g.Write(g.Root(), 0, []byte("x")); !errors.Is(err, vfs.ErrIsDir) {
		t.Errorf("Write to dir = %v, want ErrIsDir", err)
	}
	var bogus vfs.Handle
	bogus.Ino = 999
	if _, err := g.Write(bogus, 0, []byte("x")); !errors.Is(err, vfs.ErrStale) {
		t.Errorf("Write to bogus handle = %v, want ErrStale", err)
	}
}

func TestGatherStaleAtCommit(t *testing.T) {
	g, _ := gatherOver(t, GatherConfig{QueueBlocks: 1 << 16})
	h := mustCreate(t, g, "victim")
	if _, err := g.Write(h, 0, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := g.Remove(g.Root(), "victim"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Commit(h); !errors.Is(err, vfs.ErrStale) {
		t.Errorf("Commit after remove = %v, want ErrStale", err)
	}
	// The barrier cleared the error; the layer stays usable.
	h2 := mustCreate(t, g, "ok")
	if _, err := g.Write(h2, 0, []byte("fine")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.Commit(h2); err != nil {
		t.Fatal(err)
	}
}

func TestGatherThrottleDrains(t *testing.T) {
	// A tiny queue bound forces the throttle path on every write.
	g, backing := gatherOver(t, GatherConfig{QueueBlocks: 1, Committers: 1})
	h := mustCreate(t, g, "f")
	want := bytes.Repeat([]byte("z"), 20*MaxData)
	for off := 0; off < len(want); off += MaxData {
		if _, err := g.Write(h, uint64(off), want[off:off+MaxData]); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := g.Commit(h); err != nil {
		t.Fatal(err)
	}
	got, _, err := backing.Read(h, 0, uint32(len(want)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("backing read mismatch: %d of %d bytes", len(got), len(want))
	}
}

func TestGatherSyncDrainsEverything(t *testing.T) {
	g, backing := gatherOver(t, GatherConfig{QueueBlocks: 1 << 16})
	var hs []vfs.Handle
	for _, name := range []string{"a", "b", "c"} {
		h := mustCreate(t, g, name)
		if _, err := g.Write(h, 0, []byte(name+name+name)); err != nil {
			t.Fatal(err)
		}
		hs = append(hs, h)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, h := range hs {
		name := []string{"a", "b", "c"}[i]
		got, _, err := backing.Read(h, 0, 16)
		if err != nil || string(got) != name+name+name {
			t.Fatalf("file %s not drained: %q, %v", name, got, err)
		}
	}
	if st := g.Stats(); st.QueueDepth != 0 {
		t.Errorf("queue depth after Sync = %d", st.QueueDepth)
	}
}

func TestGatherRebootChangesVerifierAndDropsPending(t *testing.T) {
	g, backing := gatherOver(t, GatherConfig{QueueBlocks: 1 << 16})
	h := mustCreate(t, g, "f")
	if _, err := g.Write(h, 0, []byte("committed")); err != nil {
		t.Fatal(err)
	}
	v1, _, err := g.Commit(h)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(h, 0, []byte("UNSTABLE!")); err != nil {
		t.Fatal(err)
	}
	g.Reboot(true)
	v2, _, err := g.Commit(h)
	if err != nil {
		t.Fatal(err)
	}
	if v1 == v2 {
		t.Error("verifier unchanged across reboot")
	}
	got, _, err := backing.Read(h, 0, 16)
	if err != nil || string(got) != "committed" {
		t.Errorf("backing after dropped pending = %q, %v; want committed", got, err)
	}
}

// gateFS blocks backing Writes until released, exposing the window
// where an extent has been dequeued but its backing write has not
// landed yet.
type gateFS struct {
	vfs.FS
	entered chan struct{}
	release chan struct{}
}

func (s *gateFS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	s.entered <- struct{}{}
	<-s.release
	return s.FS.Write(h, off, data)
}

func TestGatherReadSeesInflightWrite(t *testing.T) {
	// A READ racing the committer must still see bytes whose WRITE was
	// already acknowledged, even while their extent is dequeued and the
	// backing write is in flight.
	backing, err := ffs.New(ffs.Config{BlockSize: 1024, NumBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	gate := &gateFS{FS: backing, entered: make(chan struct{}, 8), release: make(chan struct{})}
	g := NewGatherFS(gate, GatherConfig{QueueBlocks: 1 << 16})
	h := mustCreate(t, g, "f")
	if _, err := g.Write(h, 0, []byte("HELLO")); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := g.Commit(h)
		done <- err
	}()
	<-gate.entered // extent dequeued, backing write blocked: the race window
	got, _, err := g.Read(h, 0, 16)
	if err != nil {
		t.Fatalf("Read during in-flight write: %v", err)
	}
	if string(got) != "HELLO" {
		t.Fatalf("Read during in-flight write = %q, want HELLO (acked bytes vanished)", got)
	}
	// A newer write queued during the window must win over the older
	// in-flight bytes on overlap.
	if _, err := g.Write(h, 3, []byte("YO")); err != nil {
		t.Fatal(err)
	}
	if got, _, err = g.Read(h, 0, 16); err != nil || string(got) != "HELYO" {
		t.Fatalf("overlapped read during in-flight write = %q, %v; want HELYO", got, err)
	}
	close(gate.release)
	if err := <-done; err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	if got, _, err := backing.Read(h, 0, 16); err != nil || string(got) != "HELYO" {
		t.Fatalf("backing after drain = %q, %v; want HELYO", got, err)
	}
}

func TestGatherStaleFlushReclaimsEntry(t *testing.T) {
	// A file unlinked behind the gather layer's back (the Lookup/Remove
	// race with a concurrent rename): the next barrier must reclaim its
	// buffered state rather than pinning the entry with a sticky error.
	g, backing := gatherOver(t, GatherConfig{QueueBlocks: 1 << 16})
	h := mustCreate(t, g, "victim")
	if _, err := g.Write(h, 0, []byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := backing.Remove(backing.Root(), "victim"); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatalf("Sync: %v (a stale flush is benign to the whole-server barrier)", err)
	}
	g.mu.Lock()
	tracked, depth := len(g.files), g.dirty
	g.mu.Unlock()
	if tracked != 0 || depth != 0 {
		t.Errorf("after stale flush: %d tracked files, %d dirty bytes; want 0, 0", tracked, depth)
	}
	if _, _, err := g.Commit(h); !errors.Is(err, vfs.ErrStale) {
		t.Errorf("Commit on unlinked handle = %v, want ErrStale", err)
	}
}

func TestGatherWriteAfterCloseWritesThrough(t *testing.T) {
	g, backing := gatherOver(t, GatherConfig{QueueBlocks: 1 << 16})
	h := mustCreate(t, g, "f")
	if _, err := g.Write(h, 0, []byte("before")); err != nil {
		t.Fatal(err)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}
	// A write after Close must not buffer into a queue nothing drains:
	// it writes through to the backing store synchronously.
	if _, err := g.Write(h, 6, []byte("after!")); err != nil {
		t.Fatal(err)
	}
	got, _, err := backing.Read(h, 0, 16)
	if err != nil || string(got) != "beforeafter!" {
		t.Fatalf("backing after post-Close write = %q, %v; want beforeafter!", got, err)
	}
	if st := g.Stats(); st.QueueDepth != 0 {
		t.Errorf("post-Close write buffered: queue depth = %d, want 0", st.QueueDepth)
	}
}

func TestCommitFSFallbackStableServer(t *testing.T) {
	backing, err := ffs.New(ffs.Config{BlockSize: 1024, NumBlocks: 1024})
	if err != nil {
		t.Fatal(err)
	}
	h := mustCreate(t, backing, "f")
	if _, err := backing.Write(h, 0, []byte("stable")); err != nil {
		t.Fatal(err)
	}
	ver, attr, err := CommitFS(backing, h)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 0 {
		t.Errorf("stable-server verifier = %d, want 0", ver)
	}
	if attr.Size != 6 {
		t.Errorf("attr.Size = %d, want 6", attr.Size)
	}
}
