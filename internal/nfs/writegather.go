package nfs

// Server-side write gathering: the NFSv3 unstable-write model bolted
// onto this server's v2-era protocol. WRITE buffers into a per-file
// queue and returns immediately; a pool of background committers
// coalesces adjacent blocks into large backing-store writes; the COMMIT
// procedure (ProcCommit, an extension slot beyond RFC 1094) is the
// durability barrier that drains the file's queue and flushes the
// device's volatile cache. A boot verifier returned by every COMMIT
// lets clients detect a server restart that lost buffered writes and
// replay them — the NFSv3 writeverf3 mechanism.
//
// The gather layer sits directly above the backing store (below the
// per-principal policy views), so buffered bytes are shared server
// state: any reader, on any connection, sees them merged over the
// backing data immediately.

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/vfs"
)

// Committer is an optional vfs.FS capability: the COMMIT durability
// barrier. Commit drains any buffered writes for h to stable storage
// and returns the server's boot verifier with the file's post-commit
// attributes.
type Committer interface {
	Commit(h vfs.Handle) (uint64, vfs.Attr, error)
}

// CommitFS commits h on fs: through its Committer capability when
// present, and as a plain sync-plus-getattr barrier otherwise (a server
// without write-behind holds nothing volatile, so its verifier is the
// stable zero value).
func CommitFS(fs vfs.FS, h vfs.Handle) (uint64, vfs.Attr, error) {
	if c, ok := fs.(Committer); ok {
		return c.Commit(h)
	}
	if err := vfs.SyncFS(fs); err != nil {
		return 0, vfs.Attr{}, err
	}
	a, err := fs.GetAttr(h)
	return 0, a, err
}

// GatherConfig parameterizes NewGatherFS. The zero value means
// "enabled with defaults".
type GatherConfig struct {
	// QueueBlocks bounds the buffered dirty data across all files, in
	// MaxData-sized blocks; writers are throttled beyond it. Default
	// 1024 (8 MiB).
	QueueBlocks int
	// Committers is the background committer pool size. Default 2.
	Committers int
	// MaxRunBlocks caps one coalesced backing write, in blocks.
	// Default 64 (512 KiB).
	MaxRunBlocks int
	// Verifier overrides the boot verifier; 0 draws a random one.
	Verifier uint64
}

func (c GatherConfig) normalized() GatherConfig {
	if c.QueueBlocks <= 0 {
		c.QueueBlocks = 1024
	}
	if c.Committers <= 0 {
		c.Committers = 2
	}
	if c.MaxRunBlocks <= 0 {
		c.MaxRunBlocks = 64
	}
	if c.Verifier == 0 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err == nil {
			c.Verifier = binary.BigEndian.Uint64(b[:])
		} else {
			c.Verifier = uint64(time.Now().UnixNano())
		}
		if c.Verifier == 0 {
			c.Verifier = 1
		}
	}
	return c
}

// GatherStats is a snapshot of the gather layer's work.
type GatherStats struct {
	// QueueDepth is the buffered dirty data right now, in bytes.
	QueueDepth int
	// WritesGathered counts WRITE operations absorbed into the queue.
	WritesGathered uint64
	// BackendWrites counts coalesced writes issued to the backing
	// store; WritesGathered/BackendWrites is the gathering ratio.
	BackendWrites uint64
	// Commits counts COMMIT barriers served.
	Commits uint64
}

// extent is one contiguous run of buffered bytes. Extents in a file's
// queue are sorted, disjoint and non-adjacent (insert merges); their
// data slices are never mutated in place after publication, so readers
// may snapshot them outside the lock.
type extent struct {
	off  uint64
	data []byte
}

func (e extent) end() uint64 { return e.off + uint64(len(e.data)) }

// gfile is the pending state of one file.
type gfile struct {
	exts      []extent
	inflight  extent    // extent dequeued for a backing write still in flight; readers merge it under exts
	pendEnd   uint64    // max buffered end offset
	pendMtime time.Time // last buffered write
	attr      vfs.Attr  // last attributes observed from the backing store
	flushing  bool      // a committer (or commit barrier) owns the flush
	werr      error     // first deferred backing write error since the last barrier
}

// GatherFS wraps a backing vfs.FS with server-side write-behind. It
// implements vfs.FS, Committer and vfs.Syncer.
type GatherFS struct {
	backing vfs.FS
	cfg     GatherConfig

	verifier atomic.Uint64

	mu      sync.Mutex
	cond    *sync.Cond
	files   map[vfs.Handle]*gfile
	dirty   int // buffered bytes across all files
	workers int
	stopped bool

	gathered      atomic.Uint64
	backendWrites atomic.Uint64
	commits       atomic.Uint64
}

var (
	_ vfs.FS     = (*GatherFS)(nil)
	_ Committer  = (*GatherFS)(nil)
	_ vfs.Syncer = (*GatherFS)(nil)
)

// NewGatherFS stacks the write-gathering layer over backing.
func NewGatherFS(backing vfs.FS, cfg GatherConfig) *GatherFS {
	g := &GatherFS{
		backing: backing,
		cfg:     cfg.normalized(),
		files:   make(map[vfs.Handle]*gfile),
	}
	g.verifier.Store(g.cfg.Verifier)
	g.cond = sync.NewCond(&g.mu)
	return g
}

// Backing returns the wrapped filesystem.
func (g *GatherFS) Backing() vfs.FS { return g.backing }

// Verifier returns the current boot verifier.
func (g *GatherFS) Verifier() uint64 { return g.verifier.Load() }

// Stats returns a snapshot of the layer's counters.
func (g *GatherFS) Stats() GatherStats {
	g.mu.Lock()
	depth := g.dirty
	g.mu.Unlock()
	return GatherStats{
		QueueDepth:     depth,
		WritesGathered: g.gathered.Load(),
		BackendWrites:  g.backendWrites.Load(),
		Commits:        g.commits.Load(),
	}
}

// Reboot simulates (or administratively forces) the post-restart state:
// a fresh boot verifier and, when dropPending is true, the loss of
// every buffered-but-uncommitted write. Clients detect the verifier
// change at their next COMMIT and replay uncommitted data, exactly as
// NFSv3 clients do after a server crash.
func (g *GatherFS) Reboot(dropPending bool) {
	var b [8]byte
	v := uint64(time.Now().UnixNano())
	if _, err := rand.Read(b[:]); err == nil {
		v = binary.BigEndian.Uint64(b[:])
	}
	if v == 0 {
		v = 1
	}
	g.mu.Lock()
	g.verifier.Store(v)
	if dropPending {
		for h, f := range g.files {
			g.dirty -= f.pendingBytes()
			f.exts = nil
			f.werr = nil
			if !f.flushing {
				delete(g.files, h)
			}
		}
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

func (f *gfile) pendingBytes() int {
	n := 0
	for _, e := range f.exts {
		n += len(e.data)
	}
	return n
}

// ---- buffering ----

// insert merges [off, off+len(data)) into f's extent list, newest data
// winning on overlap, and returns the change in buffered bytes. Caller
// holds g.mu. Existing extent data is never mutated in place — overlaps
// build a fresh slice — so concurrent readers holding snapshots of the
// old slices stay consistent.
func (f *gfile) insert(off uint64, data []byte) int {
	newEnd := off + uint64(len(data))
	// First extent whose end reaches our start, i.e. could merge.
	i := sort.Search(len(f.exts), func(k int) bool { return f.exts[k].end() >= off })
	// Last extent (exclusive) whose start is within our end.
	j := i
	for j < len(f.exts) && f.exts[j].off <= newEnd {
		j++
	}
	delta := len(data)
	if i == j {
		// No overlap or adjacency: splice in a private copy.
		e := extent{off: off, data: append([]byte(nil), data...)}
		f.exts = append(f.exts, extent{})
		copy(f.exts[i+1:], f.exts[i:])
		f.exts[i] = e
	} else {
		start := off
		if f.exts[i].off < start {
			start = f.exts[i].off
		}
		end := newEnd
		if e := f.exts[j-1].end(); e > end {
			end = e
		}
		merged := make([]byte, end-start)
		for _, e := range f.exts[i:j] {
			delta -= len(e.data)
			copy(merged[e.off-start:], e.data)
		}
		copy(merged[off-start:], data)
		delta += len(merged) - len(data)
		f.exts[i] = extent{off: start, data: merged}
		f.exts = append(f.exts[:i+1], f.exts[j:]...)
	}
	if newEnd > f.pendEnd {
		f.pendEnd = newEnd
	}
	return delta
}

// overlayAttr rewrites a to reflect buffered state. Caller holds g.mu.
func (f *gfile) overlayAttr(a vfs.Attr) vfs.Attr {
	if f.pendEnd > a.Size {
		a.Size = f.pendEnd
	}
	if f.pendMtime.After(a.Mtime) {
		a.Mtime = f.pendMtime
		a.Ctime = f.pendMtime
	}
	return a
}

// Write implements vfs.FS: an unstable write. The data is buffered and
// acknowledged immediately; it reaches the backing store through the
// committer pool and becomes durable at the next COMMIT.
func (g *GatherFS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	if len(data) == 0 {
		return g.GetAttr(h)
	}
	g.mu.Lock()
	if g.stopped {
		return g.writeThroughStoppedLocked(h, off, data)
	}
	f := g.files[h]
	if f == nil {
		// First write to this handle: validate it synchronously so WRITE
		// to a directory or a stale handle fails now, not at COMMIT.
		g.mu.Unlock()
		a, err := g.backing.GetAttr(h)
		if err != nil {
			return vfs.Attr{}, err
		}
		if a.Type == vfs.TypeDir {
			return vfs.Attr{}, vfs.ErrIsDir
		}
		if a.Type != vfs.TypeRegular {
			// Symlinks and exotica skip the gather path.
			return g.backing.Write(h, off, data)
		}
		g.mu.Lock()
		if g.stopped {
			return g.writeThroughStoppedLocked(h, off, data)
		}
		if f = g.files[h]; f == nil {
			f = &gfile{attr: a}
			g.files[h] = f
		}
	}
	g.dirty += f.insert(off, data)
	f.pendMtime = time.Now()
	attr := f.overlayAttr(f.attr)
	g.gathered.Add(1)
	g.ensureWorkersLocked()
	g.cond.Broadcast()
	// Throttle once the queue bound is exceeded; committers drain it.
	for g.dirty > g.cfg.QueueBlocks*MaxData && !g.stopped {
		g.cond.Wait()
	}
	g.mu.Unlock()
	return attr, nil
}

// writeThroughStoppedLocked handles a Write issued after Close():
// buffering now would leave data no committer will ever drain, so the
// write goes through to the backing store synchronously — after any
// extents that raced the Close drain have landed, keeping the layer's
// newest-wins ordering (the committers must not flush an older queued
// extent over these bytes). Caller holds g.mu; it is released.
func (g *GatherFS) writeThroughStoppedLocked(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	var err error
	if f := g.files[h]; f != nil {
		err = g.drainLocked(h, f)
	}
	g.mu.Unlock()
	if err != nil {
		return vfs.Attr{}, err
	}
	return g.backing.Write(h, off, data)
}

// ---- committing ----

func (g *GatherFS) ensureWorkersLocked() {
	for g.workers < g.cfg.Committers {
		g.workers++
		go g.committer()
	}
}

// pickLocked returns a file whose buffered data should flush now. To
// maximize gathering, background committers run only under queue
// pressure (above half the bound) or when a file's head extent already
// fills a whole backing run; otherwise data waits for its COMMIT
// barrier, which drains inline — small writes therefore coalesce for
// as long as NFS semantics allow.
func (g *GatherFS) pickLocked() (vfs.Handle, *gfile) {
	// After stop, anything still queued (a write that raced Close) must
	// drain unconditionally — no further barrier will come for it.
	pressure := g.stopped || g.dirty > g.cfg.QueueBlocks*MaxData/2
	maxRun := g.cfg.MaxRunBlocks * MaxData
	for h, f := range g.files {
		if f.flushing || len(f.exts) == 0 {
			continue
		}
		if pressure || len(f.exts[0].data) >= maxRun {
			return h, f
		}
	}
	return vfs.Handle{}, nil
}

// flushOneLocked takes the first extent run (up to MaxRunBlocks) of f
// and writes it to the backing store, releasing g.mu around the write.
// Caller holds g.mu; f must not be flushing. The per-file flushing flag
// keeps backing writes for one file ordered, which makes the merged
// buffer's newest-wins semantics carry over to the backing store.
func (g *GatherFS) flushOneLocked(h vfs.Handle, f *gfile) {
	e := f.exts[0]
	maxRun := g.cfg.MaxRunBlocks * MaxData
	if len(e.data) > maxRun {
		// Split: flush the head, leave the tail queued.
		f.exts[0] = extent{off: e.off + uint64(maxRun), data: e.data[maxRun:]}
		e = extent{off: e.off, data: e.data[:maxRun]}
	} else {
		f.exts = f.exts[1:]
	}
	g.dirty -= len(e.data)
	f.flushing = true
	// Keep the dequeued extent visible to the read path until the
	// backing write lands: the WRITE that buffered it was already
	// acknowledged, so a READ in this window must still see the bytes.
	f.inflight = e
	g.mu.Unlock()

	attr, err := g.backing.Write(h, e.off, e.data)
	g.backendWrites.Add(1)

	g.mu.Lock()
	f.flushing = false
	f.inflight = extent{}
	if err != nil {
		if errors.Is(err, vfs.ErrStale) {
			// The file is gone (removed or replaced under buffered
			// writes): the remaining extents can never land, and a sticky
			// error would pin the entry in g.files until some client
			// COMMITs the dead handle. Drop the state instead — COMMIT
			// and Sync on the handle still observe staleness through the
			// backing GetAttr.
			for _, e := range f.exts {
				g.dirty -= len(e.data)
			}
			f.exts = nil
		} else if f.werr == nil {
			// The buffered write is lost; the error surfaces at the next
			// COMMIT barrier, as a deferred write error does on a client.
			f.werr = err
		}
	} else {
		f.attr = attr
	}
	if len(f.exts) == 0 && f.werr == nil && g.files[h] == f {
		delete(g.files, h)
	}
	g.cond.Broadcast()
}

// committer is one background flush worker.
func (g *GatherFS) committer() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		h, f := g.pickLocked()
		if f == nil {
			if g.stopped && g.dirty == 0 {
				g.workers--
				return
			}
			g.cond.Wait()
			continue
		}
		g.flushOneLocked(h, f)
	}
}

// drainLocked flushes every buffered extent of f inline and waits out
// concurrent flushes, then returns (and clears) the sticky error.
// Caller holds g.mu.
func (g *GatherFS) drainLocked(h vfs.Handle, f *gfile) error {
	for {
		if len(f.exts) > 0 && !f.flushing {
			g.flushOneLocked(h, f)
			continue
		}
		if f.flushing {
			g.cond.Wait()
			continue
		}
		break
	}
	err := f.werr
	f.werr = nil
	if g.files[h] == f && len(f.exts) == 0 {
		delete(g.files, h)
	}
	return err
}

// Commit implements Committer: the durability barrier behind the COMMIT
// procedure. It drains h's buffered writes to the backing store,
// flushes the store's volatile device cache, and returns the boot
// verifier with fresh attributes.
func (g *GatherFS) Commit(h vfs.Handle) (uint64, vfs.Attr, error) {
	g.commits.Add(1)
	g.mu.Lock()
	var err error
	if f := g.files[h]; f != nil {
		err = g.drainLocked(h, f)
	}
	g.mu.Unlock()
	ver := g.verifier.Load()
	if err != nil {
		return ver, vfs.Attr{}, err
	}
	if err := vfs.SyncFS(g.backing); err != nil {
		return ver, vfs.Attr{}, err
	}
	a, err := g.backing.GetAttr(h)
	if err != nil {
		return ver, vfs.Attr{}, err
	}
	return ver, a, nil
}

// Sync implements vfs.Syncer: a full barrier draining every file,
// whether or not the committers would have flushed it yet. A file
// removed under buffered writes is benign here: its stale flush drops
// the buffered state without recording an error, and staleness
// surfaces on the dead handle's own COMMIT (through the backing
// GetAttr), not on the whole-server barrier.
func (g *GatherFS) Sync() error {
	var first error
	g.mu.Lock()
	for {
		var h vfs.Handle
		var f *gfile
		for hh, ff := range g.files {
			if len(ff.exts) > 0 || ff.flushing || ff.werr != nil {
				h, f = hh, ff
				break
			}
		}
		if f == nil {
			break
		}
		if err := g.drainLocked(h, f); err != nil && first == nil {
			first = err
		}
		if g.files[h] == f && len(f.exts) == 0 && !f.flushing {
			delete(g.files, h) // drained clean; drop the tracking entry
		}
	}
	g.mu.Unlock()
	if err := vfs.SyncFS(g.backing); err != nil && first == nil {
		first = err
	}
	return first
}

// Close drains all buffered writes and stops the committer pool.
func (g *GatherFS) Close() error {
	err := g.Sync()
	g.mu.Lock()
	g.stopped = true
	g.cond.Broadcast()
	g.mu.Unlock()
	return err
}

// ---- read-side merging ----

// Read implements vfs.FS, overlaying buffered extents on the backing
// data so every principal reads its (and everyone's) unstable writes.
func (g *GatherFS) Read(h vfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	g.mu.Lock()
	f := g.files[h]
	var snap []extent
	var pendEnd uint64
	if f != nil {
		end := off + uint64(count)
		// The in-flight extent first: it is older than anything still
		// queued, so queued extents copied after it win on overlap.
		if len(f.inflight.data) > 0 && f.inflight.end() > off && f.inflight.off < end {
			snap = append(snap, f.inflight)
		}
		for _, e := range f.exts {
			if e.end() > off && e.off < end {
				snap = append(snap, e) // data slices are immutable once published
			}
		}
		pendEnd = f.pendEnd
	}
	g.mu.Unlock()

	data, eof, err := g.backing.Read(h, off, count)
	if err != nil {
		return nil, false, err
	}
	if len(snap) == 0 {
		if pendEnd > off+uint64(len(data)) {
			eof = false // buffered bytes extend the file past this read
			if pendEnd > off && uint64(len(data)) < uint64(count) {
				// The read landed in a buffered-extension hole: zero-fill.
				want := pendEnd - off
				if want > uint64(count) {
					want = uint64(count)
				}
				data = append(data, make([]byte, int(want)-len(data))...)
			}
		}
		return data, eof, nil
	}
	// Result spans to the furthest of backing data and buffered bytes,
	// capped at count.
	resEnd := off + uint64(len(data))
	for _, e := range snap {
		if e.end() > resEnd {
			resEnd = e.end()
		}
	}
	if resEnd > off+uint64(count) {
		resEnd = off + uint64(count)
	}
	out := make([]byte, resEnd-off)
	copy(out, data)
	for _, e := range snap {
		lo, hi := e.off, e.end()
		if lo < off {
			lo = off
		}
		if hi > resEnd {
			hi = resEnd
		}
		if hi > lo {
			copy(out[lo-off:hi-off], e.data[lo-e.off:hi-e.off])
		}
	}
	if pendEnd > resEnd {
		eof = false // buffered bytes continue past this read
	}
	return out, eof, nil
}

// ReadInto implements vfs.ReaderInto. With no buffered state for h —
// the steady state between write bursts — the read lands directly in
// dst through the backing store's own zero-copy path; a file with
// buffered extents takes the overlay Read and copies.
func (g *GatherFS) ReadInto(h vfs.Handle, off uint64, dst []byte) (int, bool, error) {
	g.mu.Lock()
	busy := g.files[h] != nil
	g.mu.Unlock()
	if busy {
		data, eof, err := g.Read(h, off, uint32(len(dst)))
		if err != nil {
			return 0, false, err
		}
		return copy(dst, data), eof, nil
	}
	return vfs.ReadFSInto(g.backing, h, off, dst)
}

// GetAttr implements vfs.FS with buffered size/mtime overlay.
func (g *GatherFS) GetAttr(h vfs.Handle) (vfs.Attr, error) {
	a, err := g.backing.GetAttr(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	g.mu.Lock()
	if f := g.files[h]; f != nil {
		a = f.overlayAttr(a)
	}
	g.mu.Unlock()
	return a, nil
}

// SetAttr implements vfs.FS. Attribute changes — above all truncation —
// order against buffered writes by draining them first.
func (g *GatherFS) SetAttr(h vfs.Handle, s vfs.SetAttr) (vfs.Attr, error) {
	g.mu.Lock()
	var err error
	if f := g.files[h]; f != nil {
		err = g.drainLocked(h, f)
	}
	g.mu.Unlock()
	if err != nil {
		return vfs.Attr{}, err
	}
	return g.backing.SetAttr(h, s)
}

// Lookup implements vfs.FS with buffered attribute overlay.
func (g *GatherFS) Lookup(dir vfs.Handle, name string) (vfs.Attr, error) {
	a, err := g.backing.Lookup(dir, name)
	if err != nil {
		return vfs.Attr{}, err
	}
	g.mu.Lock()
	if f := g.files[a.Handle]; f != nil {
		a = f.overlayAttr(a)
	}
	g.mu.Unlock()
	return a, nil
}

// ---- passthrough namespace operations ----

// Root implements vfs.FS.
func (g *GatherFS) Root() vfs.Handle { return g.backing.Root() }

// Create implements vfs.FS.
func (g *GatherFS) Create(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	return g.backing.Create(dir, name, mode)
}

// discardIfGone drops the buffered extents of h when the inode no
// longer exists (removed with buffered writes outstanding): they can
// never land, and flushing them would only manufacture stale-handle
// noise. A surviving hard link keeps them.
func (g *GatherFS) discardIfGone(h vfs.Handle) {
	if _, err := g.backing.GetAttr(h); !errors.Is(err, vfs.ErrStale) {
		return
	}
	g.mu.Lock()
	if f := g.files[h]; f != nil {
		g.dirty -= f.pendingBytes()
		f.exts = nil
		if !f.flushing {
			delete(g.files, h)
		}
		g.cond.Broadcast()
	}
	g.mu.Unlock()
}

// Remove implements vfs.FS; buffered writes to the removed file (if it
// had no other links) are discarded. The Lookup/Remove pair is not
// atomic against a concurrent rename swapping the entry — a file
// unlinked through that race is reclaimed when its next flush or
// barrier observes ErrStale and drops the buffered state.
func (g *GatherFS) Remove(dir vfs.Handle, name string) error {
	target, lerr := g.backing.Lookup(dir, name)
	if err := g.backing.Remove(dir, name); err != nil {
		return err
	}
	if lerr == nil {
		g.discardIfGone(target.Handle)
	}
	return nil
}

// Rename implements vfs.FS. Buffered writes are keyed by handle, so
// they follow the file across the rename untouched; a replaced target
// has its buffered writes discarded with it.
func (g *GatherFS) Rename(fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error {
	dst, derr := g.backing.Lookup(toDir, toName)
	if err := g.backing.Rename(fromDir, fromName, toDir, toName); err != nil {
		return err
	}
	if derr == nil {
		g.discardIfGone(dst.Handle)
	}
	return nil
}

// Mkdir implements vfs.FS.
func (g *GatherFS) Mkdir(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	return g.backing.Mkdir(dir, name, mode)
}

// Rmdir implements vfs.FS.
func (g *GatherFS) Rmdir(dir vfs.Handle, name string) error {
	return g.backing.Rmdir(dir, name)
}

// ReadDir implements vfs.FS.
func (g *GatherFS) ReadDir(dir vfs.Handle) ([]vfs.DirEntry, error) {
	return g.backing.ReadDir(dir)
}

// Symlink implements vfs.FS.
func (g *GatherFS) Symlink(dir vfs.Handle, name, target string, mode uint32) (vfs.Attr, error) {
	return g.backing.Symlink(dir, name, target, mode)
}

// Readlink implements vfs.FS.
func (g *GatherFS) Readlink(h vfs.Handle) (string, error) {
	return g.backing.Readlink(h)
}

// Link implements vfs.FS.
func (g *GatherFS) Link(dir vfs.Handle, name string, target vfs.Handle) (vfs.Attr, error) {
	return g.backing.Link(dir, name, target)
}

// StatFS implements vfs.FS.
func (g *GatherFS) StatFS() (vfs.StatFS, error) { return g.backing.StatFS() }
