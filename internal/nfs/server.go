package nfs

import (
	"time"

	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// Exporter supplies the filesystem view served to a given peer. DisCFS
// returns a per-principal policy-enforcing view; plain exports ignore the
// peer.
type Exporter interface {
	// View returns the filesystem to serve to peer (the transport's
	// authenticated identity; empty over plain TCP).
	View(peer string) (vfs.FS, error)
}

// StaticExport serves one filesystem to every peer.
type StaticExport struct{ FS vfs.FS }

// View implements Exporter.
func (s StaticExport) View(string) (vfs.FS, error) { return s.FS, nil }

// Server dispatches the NFS and MOUNT programs into an Exporter.
type Server struct {
	exp Exporter
	// maxTransfer is the largest READ/WRITE payload this server moves in
	// one call; FSINFO negotiation clamps client proposals to it.
	maxTransfer uint32
	// admit, when set, gates every data-plane procedure (everything but
	// NULL and FSINFO) per authenticated peer. A non-nil error rejects
	// the call with ErrTryLater; otherwise the returned release runs
	// when the procedure finishes.
	admit func(peer string, proc uint32) (func(), error)
	// observe, when set, receives every completed data-plane call with
	// its procedure, resulting status and latency.
	observe func(proc uint32, st Stat, d time.Duration)
}

// SetAdmit installs the per-peer admission hook (the server-side
// limiter). Call before serving.
func (s *Server) SetAdmit(fn func(peer string, proc uint32) (func(), error)) { s.admit = fn }

// SetObserver installs the per-call completion observer (the metrics
// seam). Call before serving.
func (s *Server) SetObserver(fn func(proc uint32, st Stat, d time.Duration)) { s.observe = fn }

// NewServer creates an NFS server over exp, granting negotiated
// transfers up to DefaultMaxTransfer (SetMaxTransfer adjusts).
func NewServer(exp Exporter) *Server {
	return &Server{exp: exp, maxTransfer: DefaultMaxTransfer}
}

// SetMaxTransfer bounds the transfer size this server grants during
// FSINFO negotiation (and accepts on the wire), clamped to
// [MaxData, MaxTransferLimit]. Setting it to MaxData pins v2-era 8 KiB
// behavior. Call before serving.
func (s *Server) SetMaxTransfer(n int) { s.maxTransfer = ClampTransfer(n) }

// MaxTransfer reports the configured transfer bound.
func (s *Server) MaxTransfer() uint32 { return s.maxTransfer }

// RegisterAll installs the NFS and MOUNT programs on rpc.
func (s *Server) RegisterAll(rpc *sunrpc.Server) {
	rpc.Register(Prog, Vers, s.dispatch)
	rpc.Register(MountProg, MountVers, s.dispatchMount)
}

// dispatchMount handles the MOUNT program: MNT returns the root handle of
// the peer's view. DisCFS semantics: the mount itself always succeeds —
// access control happens per-operation once credentials arrive.
func (s *Server) dispatchMount(ctx *sunrpc.Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, error) {
	switch proc {
	case MountProcNull:
		return sunrpc.Success, nil
	case MountProcMnt:
		_ = args.String(MaxPath) // dirpath; a single export is served
		if args.Err() != nil {
			return sunrpc.GarbageArgs, nil
		}
		fs, err := s.exp.View(ctx.Peer)
		if err != nil {
			res.Uint32(uint32(ErrAcces))
			return sunrpc.Success, nil
		}
		fh := EncodeFH(fs.Root())
		res.Uint32(uint32(OK))
		res.OpaqueFixed(fh[:])
		return sunrpc.Success, nil
	case MountProcUmnt:
		_ = args.String(MaxPath)
		return sunrpc.Success, nil
	}
	return sunrpc.ProcUnavail, nil
}

// dispatch handles the NFS program, wrapping the procedure bodies in
// the observation seam (latency + resulting status per proc).
func (s *Server) dispatch(ctx *sunrpc.Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, error) {
	if proc == ProcNull {
		return sunrpc.Success, nil
	}
	if proc == ProcFSInfo {
		return s.fsinfo(args, res)
	}
	var start time.Time
	if s.observe != nil {
		start = time.Now()
	}
	astat, st, err := s.serve(ctx, proc, args, res)
	if s.observe != nil {
		if astat != sunrpc.Success && st == OK {
			st = ErrIO // garbage args / unknown proc: count as an error
		}
		s.observe(proc, st, time.Since(start))
	}
	return astat, err
}

// serve runs one data-plane procedure and reports its NFS status
// alongside the RPC accept status.
func (s *Server) serve(ctx *sunrpc.Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, Stat, error) {
	if s.admit != nil {
		release, err := s.admit(ctx.Peer, proc)
		if err != nil {
			res.Uint32(uint32(ErrTryLater))
			return sunrpc.Success, ErrTryLater, nil
		}
		defer release()
	}
	fs, err := s.exp.View(ctx.Peer)
	if err != nil {
		res.Uint32(uint32(ErrAcces))
		return sunrpc.Success, ErrAcces, nil
	}
	h := &procHandler{fs: fs, args: args, res: res, maxTransfer: s.maxTransfer}
	var fn func()
	switch proc {
	case ProcGetattr:
		fn = h.getattr
	case ProcSetattr:
		fn = h.setattr
	case ProcLookup:
		fn = h.lookup
	case ProcReadlink:
		fn = h.readlink
	case ProcRead:
		fn = h.read
	case ProcWrite:
		fn = h.write
	case ProcCreate:
		fn = h.create
	case ProcRemove:
		fn = h.remove
	case ProcRename:
		fn = h.rename
	case ProcLink:
		fn = h.link
	case ProcSymlink:
		fn = h.symlink
	case ProcMkdir:
		fn = h.mkdir
	case ProcRmdir:
		fn = h.rmdir
	case ProcReaddir:
		fn = h.readdir
	case ProcStatfs:
		fn = h.statfs
	case ProcCommit:
		fn = h.commit
	case ProcRoot, ProcWritecache:
		return sunrpc.Success, OK, nil // obsolete no-ops per RFC 1094
	default:
		return sunrpc.ProcUnavail, OK, nil
	}
	fn()
	if h.garbage || args.Err() != nil {
		return sunrpc.GarbageArgs, OK, nil
	}
	return sunrpc.Success, h.stat, nil
}

// fsinfo answers the transfer-size negotiation: the grant is the
// client's proposal clamped to this server's bound. Stateless — the
// server accepts anything up to its own bound regardless of what a
// connection negotiated, so the grant is purely the client's license.
func (s *Server) fsinfo(args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, error) {
	proposed := args.Uint32()
	if args.Err() != nil {
		return sunrpc.GarbageArgs, nil
	}
	granted := ClampTransfer(int(proposed))
	if granted > s.maxTransfer {
		granted = s.maxTransfer
	}
	res.Uint32(uint32(OK))
	res.Uint32(granted)
	res.Uint32(s.maxTransfer) // the server's own bound, for diagnostics
	return sunrpc.Success, nil
}

// procHandler carries per-call state for the procedure bodies.
type procHandler struct {
	fs          vfs.FS
	args        *xdr.Decoder
	res         *xdr.Encoder
	maxTransfer uint32
	garbage     bool
	// stat is the NFS status the procedure encoded (OK until an error
	// path runs); the dispatch observer reads it for error counting.
	stat Stat
}

// fail encodes an error status result, recording it for the observer.
func (h *procHandler) fail(err error) {
	h.stat = MapError(err)
	h.res.Uint32(uint32(h.stat))
}

// fh decodes a file handle argument.
func (h *procHandler) fh() (vfs.Handle, bool) {
	raw := h.args.OpaqueFixed(FHSize)
	if h.args.Err() != nil {
		h.garbage = true
		return vfs.Handle{}, false
	}
	vh, err := DecodeFH(raw)
	if err != nil {
		// A well-formed but foreign handle is a STALE error, not garbage.
		h.stat = ErrStale
		h.res.Uint32(uint32(ErrStale))
		return vfs.Handle{}, false
	}
	return vh, true
}

// name decodes a filename argument.
func (h *procHandler) name() (string, bool) {
	n := h.args.String(MaxName + 1)
	if h.args.Err() != nil {
		h.garbage = true
		return "", false
	}
	return n, true
}

// blockSize fetches the backend block size for fattr, defaulting sanely.
func (h *procHandler) blockSize() uint32 {
	if st, err := h.fs.StatFS(); err == nil && st.BlockSize > 0 {
		return st.BlockSize
	}
	return MaxData
}

// attrstat encodes the common (status, fattr) result.
func (h *procHandler) attrstat(a vfs.Attr, err error) {
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	fa := FAttrFromVFS(a, h.blockSize())
	fa.Encode(h.res)
}

// diropres encodes the common (status, fhandle, fattr) result.
func (h *procHandler) diropres(a vfs.Attr, err error) {
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	fh := EncodeFH(a.Handle)
	h.res.OpaqueFixed(fh[:])
	fa := FAttrFromVFS(a, h.blockSize())
	fa.Encode(h.res)
}

// status encodes a bare status result.
func (h *procHandler) status(err error) {
	h.fail(err)
}

func (h *procHandler) getattr() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	h.attrstat(h.fs.GetAttr(vh))
}

func (h *procHandler) setattr() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	sa := DecodeSAttr(h.args)
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	h.attrstat(h.fs.SetAttr(vh, sa.ToVFS()))
}

func (h *procHandler) lookup() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	h.diropres(h.fs.Lookup(vh, name))
}

func (h *procHandler) readlink() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	target, err := h.fs.Readlink(vh)
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	h.res.String(target)
}

func (h *procHandler) read() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	offset := h.args.Uint32()
	count := h.args.Uint32()
	_ = h.args.Uint32() // totalcount, unused per RFC
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	if count > h.maxTransfer {
		count = h.maxTransfer
	}
	// Zero-copy read: size the payload from the attributes, reserve its
	// opaque window in the reply record, and let the store fill it
	// directly (vfs.ReaderInto reaches through the policy view, the
	// write-gathering overlay and the CFS layer down to the device).
	attr, err := h.fs.GetAttr(vh)
	if err != nil {
		h.fail(err)
		return
	}
	n := uint64(count)
	switch {
	case uint64(offset) >= attr.Size:
		n = 0
	case uint64(offset)+n > attr.Size:
		n = attr.Size - uint64(offset)
	}
	mark := h.res.Len()
	h.res.Uint32(uint32(OK))
	fa := FAttrFromVFS(attr, h.blockSize())
	fa.Encode(h.res)
	lenPos := h.res.Len()
	window := h.res.OpaqueInto(int(n))
	nr, _, err := vfs.ReadFSInto(h.fs, vh, uint64(offset), window)
	if err != nil {
		h.res.Truncate(mark)
		h.fail(err)
		return
	}
	if nr != int(n) {
		// The file shrank between the attribute snapshot and the read
		// (concurrent truncate): shorten the opaque in place.
		h.res.PatchUint32(lenPos, uint32(nr))
		h.res.Truncate(lenPos + 4 + nr)
		h.res.Reserve((4 - nr%4) % 4) // restore the zero padding
	}
}

func (h *procHandler) write() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	_ = h.args.Uint32() // beginoffset, unused
	offset := h.args.Uint32()
	_ = h.args.Uint32() // totalcount, unused
	data := h.args.Opaque(int(h.maxTransfer))
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	h.attrstat(h.fs.Write(vh, uint64(offset), data))
}

func (h *procHandler) create() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	sa := DecodeSAttr(h.args)
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	mode := sa.Mode
	if mode == noVal {
		mode = 0o644
	}
	attr, err := h.fs.Create(vh, name, mode&0o7777)
	if err == nil && sa.Size != noVal {
		sz := uint64(sa.Size)
		attr, err = h.fs.SetAttr(attr.Handle, vfs.SetAttr{Size: &sz})
	}
	h.diropres(attr, err)
}

func (h *procHandler) remove() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	h.status(h.fs.Remove(vh, name))
}

func (h *procHandler) rename() {
	fromH, ok := h.fh()
	if !ok {
		return
	}
	fromName, ok := h.name()
	if !ok {
		return
	}
	toH, ok := h.fh()
	if !ok {
		return
	}
	toName, ok := h.name()
	if !ok {
		return
	}
	h.status(h.fs.Rename(fromH, fromName, toH, toName))
}

func (h *procHandler) link() {
	target, ok := h.fh()
	if !ok {
		return
	}
	dirH, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	_, err := h.fs.Link(dirH, name, target)
	h.status(err)
}

func (h *procHandler) symlink() {
	dirH, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	target := h.args.String(MaxPath)
	sa := DecodeSAttr(h.args)
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	mode := sa.Mode
	if mode == noVal {
		mode = 0o777
	}
	_, err := h.fs.Symlink(dirH, name, target, mode&0o7777)
	h.status(err)
}

func (h *procHandler) mkdir() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	sa := DecodeSAttr(h.args)
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	mode := sa.Mode
	if mode == noVal {
		mode = 0o755
	}
	h.diropres(h.fs.Mkdir(vh, name, mode&0o7777))
}

func (h *procHandler) rmdir() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	h.status(h.fs.Rmdir(vh, name))
}

func (h *procHandler) readdir() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	cookie := h.args.Uint32()
	count := h.args.Uint32()
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	ents, err := h.fs.ReadDir(vh)
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	// The cookie is the index of the next entry; stable because the
	// backend returns a deterministic ordering.
	budget := int(count)
	if budget > MaxData {
		budget = MaxData
	}
	i := int(cookie)
	for ; i < len(ents); i++ {
		e := ents[i]
		need := 4 + 4 + 4 + len(e.Name) + 8 // entry overhead estimate
		if budget < need {
			break
		}
		budget -= need
		h.res.Bool(true) // another entry follows
		h.res.Uint32(uint32(e.Handle.Ino))
		h.res.String(e.Name)
		h.res.Uint32(uint32(i + 1)) // cookie of the next entry
	}
	h.res.Bool(false)          // end of entry list
	h.res.Bool(i >= len(ents)) // eof
}

// commit handles ProcCommit: (fhandle, offset, count) → (status, fattr,
// verifier). offset/count are accepted for NFSv3 fidelity but the whole
// file is committed, as real servers do.
func (h *procHandler) commit() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	_ = h.args.Uint32() // offset
	_ = h.args.Uint32() // count
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	ver, attr, err := CommitFS(h.fs, vh)
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	fa := FAttrFromVFS(attr, h.blockSize())
	fa.Encode(h.res)
	h.res.Uint64(ver)
}

func (h *procHandler) statfs() {
	_, ok := h.fh()
	if !ok {
		return
	}
	st, err := h.fs.StatFS()
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	h.res.Uint32(h.maxTransfer) // tsize: optimal transfer size
	h.res.Uint32(st.BlockSize)
	h.res.Uint32(uint32(st.TotalBlocks))
	h.res.Uint32(uint32(st.FreeBlocks))
	h.res.Uint32(uint32(st.AvailBlocks))
}
