package nfs

import (
	"time"

	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// Exporter supplies the filesystem view served to a given peer. DisCFS
// returns a per-principal policy-enforcing view; plain exports ignore the
// peer.
type Exporter interface {
	// View returns the filesystem to serve to peer (the transport's
	// authenticated identity; empty over plain TCP).
	View(peer string) (vfs.FS, error)
}

// StaticExport serves one filesystem to every peer.
type StaticExport struct{ FS vfs.FS }

// View implements Exporter.
func (s StaticExport) View(string) (vfs.FS, error) { return s.FS, nil }

// AccessChecker is an optional FS capability: report the access bits
// (AccessRead | AccessWrite | AccessExec) the calling principal holds
// on h. The DisCFS policy view implements it from the credential
// decision; plain exports without it are treated as granting
// everything. The server consults it to re-authorize resumed READDIR
// walks (whose pages read from a snapshot, not the filesystem) and to
// fill the access word of LOOKUPPLUS replies.
type AccessChecker interface {
	Access(h vfs.Handle) (uint32, error)
}

// Server dispatches the NFS and MOUNT programs into an Exporter.
type Server struct {
	exp Exporter
	// maxTransfer is the largest READ/WRITE payload this server moves in
	// one call; FSINFO negotiation clamps client proposals to it.
	maxTransfer uint32
	// cursors is the bounded LRU of directory-listing snapshots backing
	// READDIR/READDIRPLUS paging (see dircursor.go).
	cursors *dirCursors
	// admit, when set, gates every data-plane procedure (everything but
	// NULL and FSINFO) per authenticated peer. A non-nil error rejects
	// the call with ErrTryLater; otherwise the returned release runs
	// when the procedure finishes.
	admit func(peer string, proc uint32) (func(), error)
	// observe, when set, receives every completed data-plane call with
	// its procedure, resulting status and latency.
	observe func(proc uint32, st Stat, d time.Duration)
}

// SetAdmit installs the per-peer admission hook (the server-side
// limiter). Call before serving.
func (s *Server) SetAdmit(fn func(peer string, proc uint32) (func(), error)) { s.admit = fn }

// SetObserver installs the per-call completion observer (the metrics
// seam). Call before serving.
func (s *Server) SetObserver(fn func(proc uint32, st Stat, d time.Duration)) { s.observe = fn }

// NewServer creates an NFS server over exp, granting negotiated
// transfers up to DefaultMaxTransfer (SetMaxTransfer adjusts).
func NewServer(exp Exporter) *Server {
	return &Server{exp: exp, maxTransfer: DefaultMaxTransfer, cursors: newDirCursors(0)}
}

// SetDirCursorCap bounds the directory-cursor LRU: how many in-progress
// directory walks keep their listing snapshot live server-side. Walks
// beyond the bound still complete — their next page reports a stale
// cookie and the client restarts the listing. 0 restores
// DefaultDirCursors. Safe to call while serving.
func (s *Server) SetDirCursorCap(n int) { s.cursors.setCap(n) }

// DirCursorCount reports live directory cursors (for metrics).
func (s *Server) DirCursorCount() int { return s.cursors.count() }

// SetMaxTransfer bounds the transfer size this server grants during
// FSINFO negotiation (and accepts on the wire), clamped to
// [MaxData, MaxTransferLimit]. Setting it to MaxData pins v2-era 8 KiB
// behavior. Call before serving.
func (s *Server) SetMaxTransfer(n int) { s.maxTransfer = ClampTransfer(n) }

// MaxTransfer reports the configured transfer bound.
func (s *Server) MaxTransfer() uint32 { return s.maxTransfer }

// RegisterAll installs the NFS and MOUNT programs on rpc.
func (s *Server) RegisterAll(rpc *sunrpc.Server) {
	rpc.Register(Prog, Vers, s.dispatch)
	rpc.Register(MountProg, MountVers, s.dispatchMount)
}

// dispatchMount handles the MOUNT program: MNT returns the root handle of
// the peer's view. DisCFS semantics: the mount itself always succeeds —
// access control happens per-operation once credentials arrive.
func (s *Server) dispatchMount(ctx *sunrpc.Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, error) {
	switch proc {
	case MountProcNull:
		return sunrpc.Success, nil
	case MountProcMnt:
		_ = args.String(MaxPath) // dirpath; a single export is served
		if args.Err() != nil {
			return sunrpc.GarbageArgs, nil
		}
		fs, err := s.exp.View(ctx.Peer)
		if err != nil {
			res.Uint32(uint32(ErrAcces))
			return sunrpc.Success, nil
		}
		fh := EncodeFH(fs.Root())
		res.Uint32(uint32(OK))
		res.OpaqueFixed(fh[:])
		return sunrpc.Success, nil
	case MountProcUmnt:
		_ = args.String(MaxPath)
		return sunrpc.Success, nil
	}
	return sunrpc.ProcUnavail, nil
}

// dispatch handles the NFS program, wrapping the procedure bodies in
// the observation seam (latency + resulting status per proc).
func (s *Server) dispatch(ctx *sunrpc.Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, error) {
	if proc == ProcNull {
		return sunrpc.Success, nil
	}
	if proc == ProcFSInfo {
		return s.fsinfo(args, res)
	}
	var start time.Time
	if s.observe != nil {
		start = time.Now()
	}
	astat, st, err := s.serve(ctx, proc, args, res)
	if s.observe != nil {
		if astat != sunrpc.Success && st == OK {
			st = ErrIO // garbage args / unknown proc: count as an error
		}
		s.observe(proc, st, time.Since(start))
	}
	return astat, err
}

// serve runs one data-plane procedure and reports its NFS status
// alongside the RPC accept status.
func (s *Server) serve(ctx *sunrpc.Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, Stat, error) {
	if s.admit != nil {
		release, err := s.admit(ctx.Peer, proc)
		if err != nil {
			res.Uint32(uint32(ErrTryLater))
			return sunrpc.Success, ErrTryLater, nil
		}
		defer release()
	}
	fs, err := s.exp.View(ctx.Peer)
	if err != nil {
		res.Uint32(uint32(ErrAcces))
		return sunrpc.Success, ErrAcces, nil
	}
	h := &procHandler{fs: fs, args: args, res: res, maxTransfer: s.maxTransfer, peer: ctx.Peer, cursors: s.cursors}
	var fn func()
	switch proc {
	case ProcGetattr:
		fn = h.getattr
	case ProcSetattr:
		fn = h.setattr
	case ProcLookup:
		fn = h.lookup
	case ProcReadlink:
		fn = h.readlink
	case ProcRead:
		fn = h.read
	case ProcWrite:
		fn = h.write
	case ProcCreate:
		fn = h.create
	case ProcRemove:
		fn = h.remove
	case ProcRename:
		fn = h.rename
	case ProcLink:
		fn = h.link
	case ProcSymlink:
		fn = h.symlink
	case ProcMkdir:
		fn = h.mkdir
	case ProcRmdir:
		fn = h.rmdir
	case ProcReaddir:
		fn = h.readdir
	case ProcStatfs:
		fn = h.statfs
	case ProcCommit:
		fn = h.commit
	case ProcReaddirPlus:
		fn = h.readdirplus
	case ProcLookupPlus:
		fn = h.lookupplus
	case ProcRoot, ProcWritecache:
		return sunrpc.Success, OK, nil // obsolete no-ops per RFC 1094
	default:
		return sunrpc.ProcUnavail, OK, nil
	}
	fn()
	if h.garbage || args.Err() != nil {
		return sunrpc.GarbageArgs, OK, nil
	}
	return sunrpc.Success, h.stat, nil
}

// fsinfo answers the transfer-size negotiation: the grant is the
// client's proposal clamped to this server's bound. Stateless — the
// server accepts anything up to its own bound regardless of what a
// connection negotiated, so the grant is purely the client's license.
func (s *Server) fsinfo(args *xdr.Decoder, res *xdr.Encoder) (sunrpc.AcceptStat, error) {
	proposed := args.Uint32()
	if args.Err() != nil {
		return sunrpc.GarbageArgs, nil
	}
	granted := ClampTransfer(int(proposed))
	if granted > s.maxTransfer {
		granted = s.maxTransfer
	}
	res.Uint32(uint32(OK))
	res.Uint32(granted)
	res.Uint32(s.maxTransfer) // the server's own bound, for diagnostics
	return sunrpc.Success, nil
}

// procHandler carries per-call state for the procedure bodies.
type procHandler struct {
	fs          vfs.FS
	args        *xdr.Decoder
	res         *xdr.Encoder
	maxTransfer uint32
	// peer is the transport's authenticated identity; directory cursors
	// are scoped to it so one peer's walk can never resume another's.
	peer    string
	cursors *dirCursors
	garbage bool
	// stat is the NFS status the procedure encoded (OK until an error
	// path runs); the dispatch observer reads it for error counting.
	stat Stat
}

// fail encodes an error status result, recording it for the observer.
func (h *procHandler) fail(err error) {
	h.stat = MapError(err)
	h.res.Uint32(uint32(h.stat))
}

// fh decodes a file handle argument.
func (h *procHandler) fh() (vfs.Handle, bool) {
	raw := h.args.OpaqueFixed(FHSize)
	if h.args.Err() != nil {
		h.garbage = true
		return vfs.Handle{}, false
	}
	vh, err := DecodeFH(raw)
	if err != nil {
		// A well-formed but foreign handle is a STALE error, not garbage.
		h.stat = ErrStale
		h.res.Uint32(uint32(ErrStale))
		return vfs.Handle{}, false
	}
	return vh, true
}

// name decodes a filename argument.
func (h *procHandler) name() (string, bool) {
	n := h.args.String(MaxName + 1)
	if h.args.Err() != nil {
		h.garbage = true
		return "", false
	}
	return n, true
}

// blockSize fetches the backend block size for fattr, defaulting sanely.
func (h *procHandler) blockSize() uint32 {
	if st, err := h.fs.StatFS(); err == nil && st.BlockSize > 0 {
		return st.BlockSize
	}
	return MaxData
}

// attrstat encodes the common (status, fattr) result.
func (h *procHandler) attrstat(a vfs.Attr, err error) {
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	fa := FAttrFromVFS(a, h.blockSize())
	fa.Encode(h.res)
}

// diropres encodes the common (status, fhandle, fattr) result.
func (h *procHandler) diropres(a vfs.Attr, err error) {
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	fh := EncodeFH(a.Handle)
	h.res.OpaqueFixed(fh[:])
	fa := FAttrFromVFS(a, h.blockSize())
	fa.Encode(h.res)
}

// status encodes a bare status result.
func (h *procHandler) status(err error) {
	h.fail(err)
}

func (h *procHandler) getattr() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	h.attrstat(h.fs.GetAttr(vh))
}

func (h *procHandler) setattr() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	sa := DecodeSAttr(h.args)
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	h.attrstat(h.fs.SetAttr(vh, sa.ToVFS()))
}

func (h *procHandler) lookup() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	h.diropres(h.fs.Lookup(vh, name))
}

func (h *procHandler) readlink() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	target, err := h.fs.Readlink(vh)
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	h.res.String(target)
}

func (h *procHandler) read() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	offset := h.args.Uint32()
	count := h.args.Uint32()
	_ = h.args.Uint32() // totalcount, unused per RFC
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	if count > h.maxTransfer {
		count = h.maxTransfer
	}
	// Zero-copy read: size the payload from the attributes, reserve its
	// opaque window in the reply record, and let the store fill it
	// directly (vfs.ReaderInto reaches through the policy view, the
	// write-gathering overlay and the CFS layer down to the device).
	attr, err := h.fs.GetAttr(vh)
	if err != nil {
		h.fail(err)
		return
	}
	n := uint64(count)
	switch {
	case uint64(offset) >= attr.Size:
		n = 0
	case uint64(offset)+n > attr.Size:
		n = attr.Size - uint64(offset)
	}
	mark := h.res.Len()
	h.res.Uint32(uint32(OK))
	fa := FAttrFromVFS(attr, h.blockSize())
	fa.Encode(h.res)
	lenPos := h.res.Len()
	window := h.res.OpaqueInto(int(n))
	nr, _, err := vfs.ReadFSInto(h.fs, vh, uint64(offset), window)
	if err != nil {
		h.res.Truncate(mark)
		h.fail(err)
		return
	}
	if nr != int(n) {
		// The file shrank between the attribute snapshot and the read
		// (concurrent truncate): shorten the opaque in place.
		h.res.PatchUint32(lenPos, uint32(nr))
		h.res.Truncate(lenPos + 4 + nr)
		h.res.Reserve((4 - nr%4) % 4) // restore the zero padding
	}
}

func (h *procHandler) write() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	_ = h.args.Uint32() // beginoffset, unused
	offset := h.args.Uint32()
	_ = h.args.Uint32() // totalcount, unused
	data := h.args.Opaque(int(h.maxTransfer))
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	h.attrstat(h.fs.Write(vh, uint64(offset), data))
}

func (h *procHandler) create() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	sa := DecodeSAttr(h.args)
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	mode := sa.Mode
	if mode == noVal {
		mode = 0o644
	}
	attr, err := h.fs.Create(vh, name, mode&0o7777)
	if err == nil && sa.Size != noVal {
		sz := uint64(sa.Size)
		attr, err = h.fs.SetAttr(attr.Handle, vfs.SetAttr{Size: &sz})
	}
	h.diropres(attr, err)
}

func (h *procHandler) remove() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	h.status(h.fs.Remove(vh, name))
}

func (h *procHandler) rename() {
	fromH, ok := h.fh()
	if !ok {
		return
	}
	fromName, ok := h.name()
	if !ok {
		return
	}
	toH, ok := h.fh()
	if !ok {
		return
	}
	toName, ok := h.name()
	if !ok {
		return
	}
	h.status(h.fs.Rename(fromH, fromName, toH, toName))
}

func (h *procHandler) link() {
	target, ok := h.fh()
	if !ok {
		return
	}
	dirH, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	_, err := h.fs.Link(dirH, name, target)
	h.status(err)
}

func (h *procHandler) symlink() {
	dirH, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	target := h.args.String(MaxPath)
	sa := DecodeSAttr(h.args)
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	mode := sa.Mode
	if mode == noVal {
		mode = 0o777
	}
	_, err := h.fs.Symlink(dirH, name, target, mode&0o7777)
	h.status(err)
}

func (h *procHandler) mkdir() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	sa := DecodeSAttr(h.args)
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	mode := sa.Mode
	if mode == noVal {
		mode = 0o755
	}
	h.diropres(h.fs.Mkdir(vh, name, mode&0o7777))
}

func (h *procHandler) rmdir() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	h.status(h.fs.Rmdir(vh, name))
}

// Legacy READDIR cookie layout: the low 24 bits carry the resume index
// into the walk's snapshot (cookie = index of the next entry + 0 — i.e.
// entry i carries cookie i+1), the high 8 bits carry a check byte of
// the snapshot's verifier so a resume against the wrong snapshot is
// detected rather than silently misread.
const (
	legacyIdxMask     = 1<<24 - 1
	legacyMaxEntries  = 1<<24 - 1
	fattrEncodedSize  = 11*4 + 3*8 // 11 words + 3 (sec, usec) time pairs
	readdirTrailerLen = 8          // no-more-entries word + eof word
)

// pad4 is the XDR padding a string or opaque of length n carries.
func pad4(n int) int { return (4 - n%4) % 4 }

func (h *procHandler) readdir() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	cookie := h.args.Uint32()
	count := h.args.Uint32()
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	var snap *dirSnapshot
	idx := 0
	if cookie == 0 {
		ents, err := h.fs.ReadDir(vh)
		if err != nil {
			h.fail(err)
			return
		}
		if len(ents) > legacyMaxEntries {
			// The 24-bit legacy cookie cannot page past this; refuse the
			// walk rather than silently truncate it (READDIRPLUS's 64-bit
			// cookie has no such cap).
			h.fail(vfs.ErrFBig)
			return
		}
		snap = h.cursors.create(h.peer, vh, ents)
	} else {
		snap = h.cursors.byLegacy(h.peer, vh, uint8(cookie>>24))
		idx = int(cookie & legacyIdxMask)
		if snap == nil || idx > len(snap.ents) {
			// The cursor was evicted or replaced mid-walk: resuming by
			// index against a fresh listing is exactly the
			// concurrent-mutation corruption this scheme exists to
			// prevent, so report a stale cookie and let the client
			// restart the listing from scratch.
			h.stat = ErrStale
			h.res.Uint32(uint32(ErrStale))
			return
		}
	}
	h.res.Uint32(uint32(OK))
	// budget is the client's reply-byte allowance for the entry list;
	// reserve the trailing false+eof words up front so a maximal page
	// never overshoots it.
	budget := int(count)
	if budget > int(h.maxTransfer) {
		budget = int(h.maxTransfer)
	}
	budget -= readdirTrailerLen
	check := (snap.verf >> 24) & 0xff
	i := idx
	for ; i < len(snap.ents); i++ {
		e := snap.ents[i]
		// XDR size of one entry: more + fileid + (len, bytes, padding) +
		// cookie.
		need := 4 + 4 + 4 + len(e.Name) + pad4(len(e.Name)) + 4
		if budget < need {
			break
		}
		budget -= need
		h.res.Bool(true) // another entry follows
		h.res.Uint32(uint32(e.Handle.Ino))
		h.res.String(e.Name)
		h.res.Uint32(uint32(check)<<24 | uint32(i+1))
	}
	h.res.Bool(false)               // end of entry list
	h.res.Bool(i >= len(snap.ents)) // eof
}

// readdirplus handles ProcReaddirPlus: (fh, cookieverf, cookie, count)
// → (status, dir fattr, cookieverf, entry*, eof). Each entry carries
// name, fileid, a 64-bit cookie, and — when the object still exists —
// its file handle and attributes, fetched at page time through the
// policy view so every batched entry is authorized and masked with
// current policy, not snapshot-time policy.
func (h *procHandler) readdirplus() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	verf := h.args.Uint64()
	cookie := h.args.Uint64()
	count := h.args.Uint32()
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	var snap *dirSnapshot
	idx := 0
	if cookie == 0 {
		ents, err := h.fs.ReadDir(vh) // the policy-checked listing
		if err != nil {
			h.fail(err)
			return
		}
		snap = h.cursors.create(h.peer, vh, ents)
	} else {
		snap = h.cursors.byVerifier(verf)
		if snap == nil || snap.dir != vh || snap.peer != h.peer ||
			cookie > uint64(len(snap.ents)) {
			h.stat = ErrBadCookie
			h.res.Uint32(uint32(ErrBadCookie))
			return
		}
		idx = int(cookie)
		// Resumed pages read from the snapshot, not the filesystem:
		// re-run the read gate the initial ReadDir ran, so a revocation
		// mid-walk takes effect on the next page.
		if ac, ok := h.fs.(AccessChecker); ok {
			bits, err := ac.Access(vh)
			if err != nil {
				h.fail(err)
				return
			}
			if bits&AccessRead == 0 {
				h.fail(vfs.ErrPerm)
				return
			}
		}
	}
	dirAttr, err := h.fs.GetAttr(vh)
	if err != nil {
		h.fail(err)
		return
	}
	bs := h.blockSize()
	h.res.Uint32(uint32(OK))
	dfa := FAttrFromVFS(dirAttr, bs)
	dfa.Encode(h.res)
	h.res.Uint64(snap.verf)
	budget := int(count)
	if budget > int(h.maxTransfer) {
		budget = int(h.maxTransfer)
	}
	budget -= readdirTrailerLen
	i := idx
	for ; i < len(snap.ents); i++ {
		e := snap.ents[i]
		// Worst-case XDR size of one plus entry: more + fileid + name +
		// cookie + has_fh + fh + has_attr + fattr.
		need := 4 + 4 + 4 + len(e.Name) + pad4(len(e.Name)) + 8 +
			4 + FHSize + 4 + fattrEncodedSize
		if budget < need {
			break
		}
		budget -= need
		h.res.Bool(true)
		h.res.Uint32(uint32(e.Handle.Ino))
		h.res.String(e.Name)
		h.res.Uint64(uint64(i + 1))
		if a, aerr := h.fs.GetAttr(e.Handle); aerr == nil {
			fh := EncodeFH(a.Handle)
			h.res.Bool(true)
			h.res.OpaqueFixed(fh[:])
			h.res.Bool(true)
			efa := FAttrFromVFS(a, bs)
			efa.Encode(h.res)
		} else {
			// Removed (or unreadable) since the snapshot: a name-only
			// entry; the client falls back to LOOKUP or skips it.
			h.res.Bool(false)
			h.res.Bool(false)
		}
	}
	h.res.Bool(false)
	h.res.Bool(i >= len(snap.ents))
}

// lookupplus handles ProcLookupPlus, the compound
// LOOKUP+GETATTR+ACCESS: (dir fh, name) → on OK (dir fattr, child fh,
// child fattr, access bits); on ErrNoEnt the reply still carries the
// directory's attributes so the client can scope a negative name-cache
// entry to this version of the directory.
func (h *procHandler) lookupplus() {
	dirH, ok := h.fh()
	if !ok {
		return
	}
	name, ok := h.name()
	if !ok {
		return
	}
	bs := h.blockSize()
	a, err := h.fs.Lookup(dirH, name)
	if err != nil {
		if MapError(err) != ErrNoEnt {
			h.fail(err)
			return
		}
		dirAttr, derr := h.fs.GetAttr(dirH)
		if derr != nil {
			h.fail(derr)
			return
		}
		h.stat = ErrNoEnt
		h.res.Uint32(uint32(ErrNoEnt))
		dfa := FAttrFromVFS(dirAttr, bs)
		dfa.Encode(h.res)
		return
	}
	dirAttr, err := h.fs.GetAttr(dirH)
	if err != nil {
		h.fail(err)
		return
	}
	access := AccessRead | AccessWrite | AccessExec
	if ac, ok := h.fs.(AccessChecker); ok {
		bits, aerr := ac.Access(a.Handle)
		if aerr != nil {
			h.fail(aerr)
			return
		}
		access = bits
	}
	h.res.Uint32(uint32(OK))
	dfa := FAttrFromVFS(dirAttr, bs)
	dfa.Encode(h.res)
	fh := EncodeFH(a.Handle)
	h.res.OpaqueFixed(fh[:])
	cfa := FAttrFromVFS(a, bs)
	cfa.Encode(h.res)
	h.res.Uint32(access)
}

// commit handles ProcCommit: (fhandle, offset, count) → (status, fattr,
// verifier). offset/count are accepted for NFSv3 fidelity but the whole
// file is committed, as real servers do.
func (h *procHandler) commit() {
	vh, ok := h.fh()
	if !ok {
		return
	}
	_ = h.args.Uint32() // offset
	_ = h.args.Uint32() // count
	if h.args.Err() != nil {
		h.garbage = true
		return
	}
	ver, attr, err := CommitFS(h.fs, vh)
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	fa := FAttrFromVFS(attr, h.blockSize())
	fa.Encode(h.res)
	h.res.Uint64(ver)
}

func (h *procHandler) statfs() {
	_, ok := h.fh()
	if !ok {
		return
	}
	st, err := h.fs.StatFS()
	if err != nil {
		h.fail(err)
		return
	}
	h.res.Uint32(uint32(OK))
	h.res.Uint32(h.maxTransfer) // tsize: optimal transfer size
	h.res.Uint32(st.BlockSize)
	h.res.Uint32(uint32(st.TotalBlocks))
	h.res.Uint32(uint32(st.FreeBlocks))
	h.res.Uint32(uint32(st.AvailBlocks))
}
