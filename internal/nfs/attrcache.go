package nfs

import (
	"context"
	"sync"
	"time"

	"discfs/internal/vfs"
)

// CachingClient wraps a Client with attribute and lookup caching, the
// way kernel NFS clients do (the acregmin/acregmax "actimeo" machinery).
// GETATTR and LOOKUP results are served from cache within the TTL; local
// mutations invalidate the affected entries. This buys the usual NFS
// trade: dramatically fewer metadata RPCs for close-to-open consistency
// instead of strict consistency — remote writers may be invisible for up
// to TTL.
type CachingClient struct {
	*Client
	ttl time.Duration
	now func() time.Time

	mu    sync.Mutex
	attrs map[vfs.Handle]attrEntry
	looks map[lookupKey]lookupEntry

	hits, misses uint64
}

type attrEntry struct {
	attr    vfs.Attr
	expires time.Time
}

type lookupKey struct {
	dir  vfs.Handle
	name string
}

type lookupEntry struct {
	attr    vfs.Attr
	expires time.Time
}

// DefaultAttrTTL matches the traditional acregmin default of 3 seconds.
const DefaultAttrTTL = 3 * time.Second

// NewCachingClient wraps c. ttl of 0 means DefaultAttrTTL.
func NewCachingClient(c *Client, ttl time.Duration) *CachingClient {
	if ttl == 0 {
		ttl = DefaultAttrTTL
	}
	return &CachingClient{
		Client: c,
		ttl:    ttl,
		now:    time.Now,
		attrs:  make(map[vfs.Handle]attrEntry),
		looks:  make(map[lookupKey]lookupEntry),
	}
}

// CacheStats reports cumulative hit/miss counts across both caches.
func (c *CachingClient) CacheStats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// remember stores attrs in both caches as appropriate.
func (c *CachingClient) remember(a vfs.Attr) {
	c.mu.Lock()
	c.attrs[a.Handle] = attrEntry{attr: a, expires: c.now().Add(c.ttl)}
	c.mu.Unlock()
}

// forgetHandle drops the attribute entry for h.
func (c *CachingClient) forgetHandle(h vfs.Handle) {
	c.mu.Lock()
	delete(c.attrs, h)
	c.mu.Unlock()
}

// forgetDir drops the dir's attribute entry and every lookup under it.
func (c *CachingClient) forgetDir(dir vfs.Handle) {
	c.mu.Lock()
	delete(c.attrs, dir)
	for k := range c.looks {
		if k.dir == dir {
			delete(c.looks, k)
		}
	}
	c.mu.Unlock()
}

// GetAttr serves from cache within the TTL.
func (c *CachingClient) GetAttr(ctx context.Context, h vfs.Handle) (vfs.Attr, error) {
	c.mu.Lock()
	if e, ok := c.attrs[h]; ok && c.now().Before(e.expires) {
		c.hits++
		c.mu.Unlock()
		return e.attr, nil
	}
	c.misses++
	c.mu.Unlock()
	a, err := c.Client.GetAttr(ctx, h)
	if err != nil {
		c.forgetHandle(h)
		return a, err
	}
	c.remember(a)
	return a, nil
}

// Revalidate forces a fresh GETATTR for h, bypassing the TTL, and
// installs the result — the close-to-open revalidation step: callers
// compare the returned attributes (mtime, size) against their cached
// view and invalidate derived state on mismatch.
func (c *CachingClient) Revalidate(ctx context.Context, h vfs.Handle) (vfs.Attr, error) {
	a, err := c.Client.GetAttr(ctx, h)
	if err != nil {
		c.forgetHandle(h)
		return a, err
	}
	c.remember(a)
	return a, nil
}

// Lookup serves from cache within the TTL.
func (c *CachingClient) Lookup(ctx context.Context, dir vfs.Handle, name string) (vfs.Attr, error) {
	key := lookupKey{dir, name}
	c.mu.Lock()
	if e, ok := c.looks[key]; ok && c.now().Before(e.expires) {
		c.hits++
		c.mu.Unlock()
		return e.attr, nil
	}
	c.misses++
	c.mu.Unlock()
	a, err := c.Client.Lookup(ctx, dir, name)
	if err != nil {
		return a, err
	}
	c.mu.Lock()
	c.looks[key] = lookupEntry{attr: a, expires: c.now().Add(c.ttl)}
	c.attrs[a.Handle] = attrEntry{attr: a, expires: c.now().Add(c.ttl)}
	c.mu.Unlock()
	return a, nil
}

// Read updates the attribute cache from the piggybacked fattr.
func (c *CachingClient) Read(ctx context.Context, h vfs.Handle, offset, count uint32) ([]byte, vfs.Attr, error) {
	data, a, err := c.Client.Read(ctx, h, offset, count)
	if err == nil {
		c.remember(a)
	}
	return data, a, err
}

// Write invalidates and refreshes the file's attributes.
func (c *CachingClient) Write(ctx context.Context, h vfs.Handle, offset uint32, data []byte) (vfs.Attr, error) {
	a, err := c.Client.Write(ctx, h, offset, data)
	if err != nil {
		c.forgetHandle(h)
		return a, err
	}
	c.remember(a)
	return a, nil
}

// SetAttr refreshes the cache with the returned attributes.
func (c *CachingClient) SetAttr(ctx context.Context, h vfs.Handle, sa SAttr) (vfs.Attr, error) {
	a, err := c.Client.SetAttr(ctx, h, sa)
	if err != nil {
		c.forgetHandle(h)
		return a, err
	}
	c.remember(a)
	return a, nil
}

// Create invalidates the directory and caches the new file.
func (c *CachingClient) Create(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	a, err := c.Client.Create(ctx, dir, name, mode)
	c.forgetDir(dir)
	if err == nil {
		c.remember(a)
	}
	return a, err
}

// Mkdir invalidates the parent and caches the new directory.
func (c *CachingClient) Mkdir(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	a, err := c.Client.Mkdir(ctx, dir, name, mode)
	c.forgetDir(dir)
	if err == nil {
		c.remember(a)
	}
	return a, err
}

// Remove invalidates the directory and the dead entry.
func (c *CachingClient) Remove(ctx context.Context, dir vfs.Handle, name string) error {
	err := c.Client.Remove(ctx, dir, name)
	c.forgetDir(dir)
	return err
}

// Rmdir invalidates the parent.
func (c *CachingClient) Rmdir(ctx context.Context, dir vfs.Handle, name string) error {
	err := c.Client.Rmdir(ctx, dir, name)
	c.forgetDir(dir)
	return err
}

// Rename invalidates both directories.
func (c *CachingClient) Rename(ctx context.Context, fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error {
	err := c.Client.Rename(ctx, fromDir, fromName, toDir, toName)
	c.forgetDir(fromDir)
	c.forgetDir(toDir)
	return err
}

// Link invalidates the directory and the target's attributes (nlink).
func (c *CachingClient) Link(ctx context.Context, target vfs.Handle, dir vfs.Handle, name string) error {
	err := c.Client.Link(ctx, target, dir, name)
	c.forgetDir(dir)
	c.forgetHandle(target)
	return err
}

// Symlink invalidates the directory.
func (c *CachingClient) Symlink(ctx context.Context, dir vfs.Handle, name, targetPath string, mode uint32) error {
	err := c.Client.Symlink(ctx, dir, name, targetPath, mode)
	c.forgetDir(dir)
	return err
}

// Purge drops every cached entry (e.g. after credential changes alter
// what the masked modes look like).
func (c *CachingClient) Purge() {
	c.mu.Lock()
	c.attrs = make(map[vfs.Handle]attrEntry)
	c.looks = make(map[lookupKey]lookupEntry)
	c.mu.Unlock()
}
