package nfs

import (
	"context"
	"sync"
	"time"

	"discfs/internal/vfs"
)

// CachingClient wraps a Client with attribute, name and negative-name
// caching, the way kernel NFS clients do (the acregmin/acregmax
// "actimeo" machinery plus the dentry cache). GETATTR and LOOKUP
// results — including misses — are served from cache within the TTL;
// local mutations invalidate the affected entries. This buys the usual
// NFS trade: dramatically fewer metadata RPCs for close-to-open
// consistency instead of strict consistency — remote writers may be
// invisible for up to TTL.
//
// Invalidation discipline: every invalidation bumps a generation
// counter (the client-side analogue of the server's path epoch from the
// authorization pipeline: one cheap counter whose bump retires a whole
// class of cached state at once). Every RPC-filling path snapshots the
// generation before issuing the RPC and installs its result only if no
// invalidation ran in between — otherwise a Lookup/GetAttr that started
// before a concurrent forgetDir/forgetHandle would re-install the stale
// result after the invalidation. A spuriously skipped install (the
// invalidation was for an unrelated entry) just costs one extra miss.
type CachingClient struct {
	*Client
	ttl time.Duration
	now func() time.Time

	mu sync.Mutex
	// gen is the invalidation generation, bumped by every forget/purge
	// and checked at insert.
	gen   uint64
	attrs map[vfs.Handle]attrEntry
	looks map[lookupKey]lookupEntry
	// negs caches lookup misses: a name known absent from a directory
	// answers ErrNoEnt without an RPC until the TTL passes or the
	// directory is invalidated.
	negs map[lookupKey]negEntry

	hits, misses uint64
}

type attrEntry struct {
	attr    vfs.Attr
	expires time.Time
}

type lookupKey struct {
	dir  vfs.Handle
	name string
}

type lookupEntry struct {
	attr    vfs.Attr
	expires time.Time
}

type negEntry struct {
	expires time.Time
}

// DefaultAttrTTL matches the traditional acregmin default of 3 seconds.
const DefaultAttrTTL = 3 * time.Second

// NewCachingClient wraps c. ttl of 0 means DefaultAttrTTL.
func NewCachingClient(c *Client, ttl time.Duration) *CachingClient {
	if ttl == 0 {
		ttl = DefaultAttrTTL
	}
	return &CachingClient{
		Client: c,
		ttl:    ttl,
		now:    time.Now,
		attrs:  make(map[vfs.Handle]attrEntry),
		looks:  make(map[lookupKey]lookupEntry),
		negs:   make(map[lookupKey]negEntry),
	}
}

// TTL reports the configured attribute/name cache lifetime.
func (c *CachingClient) TTL() time.Duration { return c.ttl }

// CacheStats reports cumulative hit/miss counts across the caches.
func (c *CachingClient) CacheStats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// generation snapshots the invalidation generation; take it before an
// RPC whose result will be installed with installAt.
func (c *CachingClient) generation() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen
}

// installAt stores attrs, but only if no invalidation ran since gen was
// snapshotted — the insert-time generation check.
func (c *CachingClient) installAt(gen uint64, a vfs.Attr) {
	c.mu.Lock()
	if c.gen == gen {
		c.attrs[a.Handle] = attrEntry{attr: a, expires: c.now().Add(c.ttl)}
	}
	c.mu.Unlock()
}

// forgetHandle drops the attribute entry for h.
func (c *CachingClient) forgetHandle(h vfs.Handle) {
	c.mu.Lock()
	c.gen++
	delete(c.attrs, h)
	c.mu.Unlock()
}

// forgetDir drops the dir's attribute entry and every lookup — positive
// and negative — under it.
func (c *CachingClient) forgetDir(dir vfs.Handle) {
	c.mu.Lock()
	c.forgetDirLocked(dir)
	c.mu.Unlock()
}

func (c *CachingClient) forgetDirLocked(dir vfs.Handle) {
	c.gen++
	delete(c.attrs, dir)
	for k := range c.looks {
		if k.dir == dir {
			delete(c.looks, k)
		}
	}
	for k := range c.negs {
		if k.dir == dir {
			delete(c.negs, k)
		}
	}
}

// installNew is the mutation-path install: in one critical section,
// invalidate the directory (the op changed it) and install the op's own
// fresh result plus its lookup entry. Folding both into one section
// keeps the op's install from racing its own invalidation.
func (c *CachingClient) installNew(dir vfs.Handle, name string, a vfs.Attr) {
	c.mu.Lock()
	c.forgetDirLocked(dir)
	exp := c.now().Add(c.ttl)
	c.attrs[a.Handle] = attrEntry{attr: a, expires: exp}
	c.looks[lookupKey{dir, name}] = lookupEntry{attr: a, expires: exp}
	c.mu.Unlock()
}

// GetAttr serves from cache within the TTL.
func (c *CachingClient) GetAttr(ctx context.Context, h vfs.Handle) (vfs.Attr, error) {
	c.mu.Lock()
	if e, ok := c.attrs[h]; ok && c.now().Before(e.expires) {
		c.hits++
		c.mu.Unlock()
		return e.attr, nil
	}
	c.misses++
	gen := c.gen
	c.mu.Unlock()
	a, err := c.Client.GetAttr(ctx, h)
	if err != nil {
		c.forgetHandle(h)
		return a, err
	}
	c.installAt(gen, a)
	return a, nil
}

// Revalidate forces a fresh GETATTR for h, bypassing the TTL, and
// installs the result — the close-to-open revalidation step: callers
// compare the returned attributes (mtime, size) against their cached
// view and invalidate derived state on mismatch.
func (c *CachingClient) Revalidate(ctx context.Context, h vfs.Handle) (vfs.Attr, error) {
	gen := c.generation()
	a, err := c.Client.GetAttr(ctx, h)
	if err != nil {
		c.forgetHandle(h)
		return a, err
	}
	c.installAt(gen, a)
	return a, nil
}

// Lookup serves from cache within the TTL — including cached misses,
// which answer ErrNoEnt without an RPC. A cache miss goes to the
// compound LOOKUPPLUS when the server speaks it (one round trip fills
// the child's attributes, the directory's attributes and — on a miss —
// a negative entry), falling back to plain LOOKUP otherwise.
func (c *CachingClient) Lookup(ctx context.Context, dir vfs.Handle, name string) (vfs.Attr, error) {
	key := lookupKey{dir, name}
	c.mu.Lock()
	if e, ok := c.looks[key]; ok && c.now().Before(e.expires) {
		c.hits++
		c.mu.Unlock()
		return e.attr, nil
	}
	if e, ok := c.negs[key]; ok && c.now().Before(e.expires) {
		c.hits++
		c.mu.Unlock()
		return vfs.Attr{}, &Error{Stat: ErrNoEnt}
	}
	c.misses++
	gen := c.gen
	c.mu.Unlock()

	var (
		a, dirA vfs.Attr
		haveDir bool
		err     error
	)
	if !c.plusUnavail.Load() {
		var r LookupPlusResult
		r, err = c.Client.LookupPlus(ctx, dir, name)
		if isProcUnavail(err) {
			c.plusUnavail.Store(true)
		} else {
			a, dirA, haveDir = r.Attr, r.Dir, true
		}
	}
	if c.plusUnavail.Load() {
		a, err = c.Client.Lookup(ctx, dir, name)
	}
	if err != nil {
		if StatOf(err) == ErrNoEnt {
			c.mu.Lock()
			if c.gen == gen {
				exp := c.now().Add(c.ttl)
				c.negs[key] = negEntry{expires: exp}
				if haveDir {
					c.attrs[dir] = attrEntry{attr: dirA, expires: exp}
				}
			}
			c.mu.Unlock()
		}
		return vfs.Attr{}, err
	}
	c.mu.Lock()
	if c.gen == gen {
		exp := c.now().Add(c.ttl)
		c.looks[key] = lookupEntry{attr: a, expires: exp}
		c.attrs[a.Handle] = attrEntry{attr: a, expires: exp}
		if haveDir {
			c.attrs[dir] = attrEntry{attr: dirA, expires: exp}
		}
	}
	c.mu.Unlock()
	return a, nil
}

// ReadDirPlusAll lists dir with piggybacked attributes and bulk-installs
// the results: the directory's own attributes, every carried entry's
// attributes, and the matching (dir, name) lookup entries — one call
// primes the cache for the per-file GetAttr/Lookup traffic of a tree
// walk. The whole batch is generation-checked as one install.
func (c *CachingClient) ReadDirPlusAll(ctx context.Context, dir vfs.Handle) ([]DirEntryPlus, error) {
	gen := c.generation()
	dirA, ents, err := c.Client.ReadDirPlusAll(ctx, dir)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.gen == gen {
		exp := c.now().Add(c.ttl)
		c.attrs[dir] = attrEntry{attr: dirA, expires: exp}
		for _, e := range ents {
			if !e.HasAttr {
				continue
			}
			c.attrs[e.Attr.Handle] = attrEntry{attr: e.Attr, expires: exp}
			c.looks[lookupKey{dir, e.Name}] = lookupEntry{attr: e.Attr, expires: exp}
		}
	}
	c.mu.Unlock()
	return ents, nil
}

// Read updates the attribute cache from the piggybacked fattr.
func (c *CachingClient) Read(ctx context.Context, h vfs.Handle, offset, count uint32) ([]byte, vfs.Attr, error) {
	gen := c.generation()
	data, a, err := c.Client.Read(ctx, h, offset, count)
	if err == nil {
		c.installAt(gen, a)
	}
	return data, a, err
}

// Write invalidates and refreshes the file's attributes.
func (c *CachingClient) Write(ctx context.Context, h vfs.Handle, offset uint32, data []byte) (vfs.Attr, error) {
	gen := c.generation()
	a, err := c.Client.Write(ctx, h, offset, data)
	if err != nil {
		c.forgetHandle(h)
		return a, err
	}
	c.installAt(gen, a)
	return a, nil
}

// SetAttr refreshes the cache with the returned attributes.
func (c *CachingClient) SetAttr(ctx context.Context, h vfs.Handle, sa SAttr) (vfs.Attr, error) {
	gen := c.generation()
	a, err := c.Client.SetAttr(ctx, h, sa)
	if err != nil {
		c.forgetHandle(h)
		return a, err
	}
	c.installAt(gen, a)
	return a, nil
}

// Create invalidates the directory and caches the new file.
func (c *CachingClient) Create(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	a, err := c.Client.Create(ctx, dir, name, mode)
	if err != nil {
		c.forgetDir(dir)
		return a, err
	}
	c.installNew(dir, name, a)
	return a, nil
}

// Mkdir invalidates the parent and caches the new directory.
func (c *CachingClient) Mkdir(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	a, err := c.Client.Mkdir(ctx, dir, name, mode)
	if err != nil {
		c.forgetDir(dir)
		return a, err
	}
	c.installNew(dir, name, a)
	return a, nil
}

// Remove invalidates the directory and the dead entry.
func (c *CachingClient) Remove(ctx context.Context, dir vfs.Handle, name string) error {
	err := c.Client.Remove(ctx, dir, name)
	c.forgetDir(dir)
	return err
}

// Rmdir invalidates the parent.
func (c *CachingClient) Rmdir(ctx context.Context, dir vfs.Handle, name string) error {
	err := c.Client.Rmdir(ctx, dir, name)
	c.forgetDir(dir)
	return err
}

// Rename invalidates both directories.
func (c *CachingClient) Rename(ctx context.Context, fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error {
	err := c.Client.Rename(ctx, fromDir, fromName, toDir, toName)
	c.forgetDir(fromDir)
	c.forgetDir(toDir)
	return err
}

// Link invalidates the directory and the target's attributes (nlink).
func (c *CachingClient) Link(ctx context.Context, target vfs.Handle, dir vfs.Handle, name string) error {
	err := c.Client.Link(ctx, target, dir, name)
	c.forgetDir(dir)
	c.forgetHandle(target)
	return err
}

// Symlink invalidates the directory.
func (c *CachingClient) Symlink(ctx context.Context, dir vfs.Handle, name, targetPath string, mode uint32) error {
	err := c.Client.Symlink(ctx, dir, name, targetPath, mode)
	c.forgetDir(dir)
	return err
}

// Purge drops every cached entry (e.g. after credential changes alter
// what the masked modes look like).
func (c *CachingClient) Purge() {
	c.mu.Lock()
	c.gen++
	c.attrs = make(map[vfs.Handle]attrEntry)
	c.looks = make(map[lookupKey]lookupEntry)
	c.negs = make(map[lookupKey]negEntry)
	c.mu.Unlock()
}
