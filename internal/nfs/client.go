package nfs

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"discfs/internal/bufpool"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// Client is an NFSv2 client over a sunrpc connection. It stands in for
// the kernel NFS client of the paper's prototype: same procedures, same
// wire format, usable from tests, tools and the DisCFS client library.
type Client struct {
	rpc *sunrpc.Client
	// maxData is this connection's READ/WRITE transfer size: the v2
	// baseline until Negotiate (or SetMaxData) raises it.
	maxData atomic.Uint32
	// plusUnavail latches once the server answers PROC_UNAVAIL to a
	// READDIRPLUS, so later bulk listings skip straight to the legacy
	// READDIR + per-name LOOKUP fallback.
	plusUnavail atomic.Bool
	// shardTag is the federation shard id this connection belongs to,
	// pre-shifted to the handle tag position (see ShardShift). Handles
	// passed in carry the tag in Ino; it is stripped before encoding
	// and re-applied after decoding, so the server only ever sees its
	// own untagged inos. Zero (shard 0, or no federation) makes both
	// transforms the identity. Set once at connection setup, before
	// concurrent use.
	shardTag uint64
}

// SetShard assigns the connection's federation shard id. Must be
// called before the client is shared between goroutines.
func (c *Client) SetShard(id int) { c.shardTag = uint64(id) << ShardShift }

// WireFH returns h's on-the-wire form: the shard tag is verified
// against this connection's shard and stripped. A handle tagged for a
// different shard yields ErrXDev — the op was about to address the
// wrong server, which under federation means a cross-shard operation.
func (c *Client) WireFH(h vfs.Handle) ([FHSize]byte, error) {
	if h.Ino&^MaxServerIno != c.shardTag {
		return [FHSize]byte{}, &Error{Stat: ErrXDev}
	}
	return EncodeFH(vfs.Handle{Ino: h.Ino & MaxServerIno, Gen: h.Gen}), nil
}

// DecodeWireFH decodes a handle received from the server and applies
// this connection's shard tag. A tagged connection refuses server inos
// that would overflow into the tag space.
func (c *Client) DecodeWireFH(raw []byte) (vfs.Handle, error) {
	h, err := DecodeFH(raw)
	if err != nil {
		return vfs.Handle{}, err
	}
	return c.tagHandle(h)
}

func (c *Client) tagHandle(h vfs.Handle) (vfs.Handle, error) {
	if c.shardTag == 0 {
		return h, nil
	}
	if h.Ino > MaxServerIno {
		return vfs.Handle{}, fmt.Errorf("nfs: server ino %#x overflows the federation tag space", h.Ino)
	}
	h.Ino |= c.shardTag
	return h, nil
}

// NewClient wraps an RPC client. The connection starts at the v2
// baseline transfer size (MaxData); call Negotiate to raise it.
func NewClient(rpc *sunrpc.Client) *Client {
	c := &Client{rpc: rpc}
	c.maxData.Store(MaxData)
	return c
}

// RPC exposes the underlying RPC client (for the DisCFS extension
// program, which shares the connection).
func (c *Client) RPC() *sunrpc.Client { return c.rpc }

// MaxData returns the connection's current transfer size: the largest
// payload one READ or WRITE carries.
func (c *Client) MaxData() uint32 { return c.maxData.Load() }

// SetMaxData pins the transfer size without a negotiation round trip —
// for additional data connections to a server whose grant is already
// known. The value is clamped to [MaxData, MaxTransferLimit].
func (c *Client) SetMaxData(n uint32) { c.maxData.Store(ClampTransfer(int(n))) }

// Negotiate proposes a transfer size (ProcFSInfo) and adopts the
// server's grant for subsequent READs and WRITEs on this connection. A
// server predating the extension (PROC_UNAVAIL or a version mismatch)
// is a valid answer meaning the v2 baseline: the connection stays at 8
// KiB and no error is returned. propose == 0 proposes
// DefaultMaxTransfer.
func (c *Client) Negotiate(ctx context.Context, propose uint32) (uint32, error) {
	if propose == 0 {
		propose = DefaultMaxTransfer
	}
	propose = ClampTransfer(int(propose))
	e := xdr.NewEncoder()
	e.Uint32(propose)
	d, err := c.call(ctx, ProcFSInfo, e.Bytes())
	if err != nil {
		var re *sunrpc.RPCError
		if errors.As(err, &re) && (re.Stat == sunrpc.ProcUnavail || re.Stat == sunrpc.ProgMismatch || re.Stat == sunrpc.GarbageArgs) {
			c.maxData.Store(MaxData)
			return MaxData, nil
		}
		return c.maxData.Load(), err
	}
	defer recycleReply(d)
	granted := d.Uint32()
	if err := d.Err(); err != nil {
		return c.maxData.Load(), err
	}
	// Never exceed our own proposal, whatever the server claims.
	granted = ClampTransfer(int(granted))
	if granted > propose {
		granted = propose
	}
	c.maxData.Store(granted)
	return granted, nil
}

// Mount issues MOUNTPROC_MNT and returns the root file handle.
func (c *Client) Mount(ctx context.Context, dirpath string) (vfs.Handle, error) {
	e := xdr.NewEncoder()
	e.String(dirpath)
	d, err := c.rpc.Call(ctx, MountProg, MountVers, MountProcMnt, e.Bytes())
	if err != nil {
		return vfs.Handle{}, err
	}
	defer recycleReply(d)
	if st := Stat(d.Uint32()); st != OK {
		return vfs.Handle{}, &Error{Stat: st}
	}
	raw := d.OpaqueFixed(FHSize)
	if d.Err() != nil {
		return vfs.Handle{}, d.Err()
	}
	return c.DecodeWireFH(raw)
}

// Unmount issues MOUNTPROC_UMNT.
func (c *Client) Unmount(ctx context.Context, dirpath string) error {
	e := xdr.NewEncoder()
	e.String(dirpath)
	d, err := c.rpc.Call(ctx, MountProg, MountVers, MountProcUmnt, e.Bytes())
	recycleReply(d)
	return err
}

// Null issues the NFS NULL procedure (an RPC round-trip).
func (c *Client) Null(ctx context.Context) error {
	d, err := c.rpc.Call(ctx, Prog, Vers, ProcNull, nil)
	recycleReply(d)
	return err
}

// call runs an NFS procedure and checks the leading status word. On
// success the returned decoder's backing record is pooled and owned by
// the caller: recycle it (recycleReply) once nothing aliases it, or
// hand it off (Read's payload). Failure paths recycle it here.
func (c *Client) call(ctx context.Context, proc uint32, args []byte) (*xdr.Decoder, error) {
	d, err := c.rpc.Call(ctx, Prog, Vers, proc, args)
	if err != nil {
		return nil, err
	}
	if st := Stat(d.Uint32()); st != OK {
		recycleReply(d)
		return nil, &Error{Stat: st}
	}
	if err := d.Err(); err != nil {
		recycleReply(d)
		return nil, err
	}
	return d, nil
}

// recycleReply returns a reply record to the buffer pool. Callers must
// be done with every alias into the record (Opaque/OpaqueFixed slices);
// decoded values and strings are copies and stay valid. nil is a no-op,
// so `defer recycleReply(d)` composes with call's error return.
func recycleReply(d *xdr.Decoder) {
	if d != nil {
		bufpool.Put(d.Buffer())
	}
}

// RecycleReply is recycleReply for callers outside the package that
// issue raw sunrpc calls (the core extension procedures) and are done
// with the reply record.
func RecycleReply(d *xdr.Decoder) { recycleReply(d) }

// decodeAttr reads an fattr result into a vfs.Attr plus the wire fattr.
func decodeAttr(d *xdr.Decoder, h vfs.Handle) (vfs.Attr, FAttr, error) {
	fa := DecodeFAttr(d)
	if err := d.Err(); err != nil {
		return vfs.Attr{}, FAttr{}, err
	}
	a := vfs.Attr{
		Handle: h,
		Mode:   fa.Mode & 0o7777,
		Nlink:  fa.Nlink,
		UID:    fa.UID,
		GID:    fa.GID,
		Size:   uint64(fa.Size),
		Blocks: uint64(fa.Blocks),
		Atime:  fa.Atime,
		Mtime:  fa.Mtime,
		Ctime:  fa.Ctime,
	}
	switch fa.Type {
	case ftypeReg:
		a.Type = vfs.TypeRegular
	case ftypeDir:
		a.Type = vfs.TypeDir
	case ftypeLink:
		a.Type = vfs.TypeSymlink
	}
	return a, fa, nil
}

// decodeDiropres reads (fhandle, fattr).
func (c *Client) decodeDiropres(d *xdr.Decoder) (vfs.Attr, error) {
	raw := d.OpaqueFixed(FHSize)
	if err := d.Err(); err != nil {
		return vfs.Attr{}, err
	}
	h, err := c.DecodeWireFH(raw)
	if err != nil {
		return vfs.Attr{}, err
	}
	a, _, err := decodeAttr(d, h)
	return a, err
}

// GetAttr issues GETATTR.
func (c *Client) GetAttr(ctx context.Context, h vfs.Handle) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	e.OpaqueFixed(fh[:])
	d, err := c.call(ctx, ProcGetattr, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	defer recycleReply(d)
	a, _, err := decodeAttr(d, h)
	return a, err
}

// SetAttr issues SETATTR.
func (c *Client) SetAttr(ctx context.Context, h vfs.Handle, sa SAttr) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	e.OpaqueFixed(fh[:])
	sa.Encode(e)
	d, err := c.call(ctx, ProcSetattr, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	defer recycleReply(d)
	a, _, err := decodeAttr(d, h)
	return a, err
}

// Lookup issues LOOKUP.
func (c *Client) Lookup(ctx context.Context, dir vfs.Handle, name string) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(dir)
	if err != nil {
		return vfs.Attr{}, err
	}
	e.OpaqueFixed(fh[:])
	e.String(name)
	d, err := c.call(ctx, ProcLookup, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	defer recycleReply(d)
	return c.decodeDiropres(d)
}

// Readlink issues READLINK.
func (c *Client) Readlink(ctx context.Context, h vfs.Handle) (string, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(h)
	if err != nil {
		return "", err
	}
	e.OpaqueFixed(fh[:])
	d, err := c.call(ctx, ProcReadlink, e.Bytes())
	if err != nil {
		return "", err
	}
	defer recycleReply(d)
	s := d.String(MaxPath)
	return s, d.Err()
}

// Read issues READ; at most MaxData() bytes are returned. The returned
// data aliases the RPC reply record — a pooled buffer whose ownership
// passes to the caller with the slice (the data cache installs it as a
// block without copying; other callers just let the GC reclaim it).
func (c *Client) Read(ctx context.Context, h vfs.Handle, offset uint32, count uint32) ([]byte, vfs.Attr, error) {
	if max := c.maxData.Load(); count > max {
		count = max
	}
	e := xdr.NewEncoder()
	fh, err := c.WireFH(h)
	if err != nil {
		return nil, vfs.Attr{}, err
	}
	e.OpaqueFixed(fh[:])
	e.Uint32(offset)
	e.Uint32(count)
	e.Uint32(count) // totalcount
	d, err := c.call(ctx, ProcRead, e.Bytes())
	if err != nil {
		return nil, vfs.Attr{}, err
	}
	a, _, err := decodeAttr(d, h)
	if err != nil {
		recycleReply(d)
		return nil, vfs.Attr{}, err
	}
	data := d.Opaque(MaxTransferLimit)
	if err := d.Err(); err != nil {
		recycleReply(d)
		return nil, vfs.Attr{}, err
	}
	return data, a, nil
}

// ReadInto issues READ with the payload copied into dst (at most
// MaxData() bytes per call) and recycles the reply record immediately —
// the path for callers that own a destination buffer and do not want
// the Read hand-off. Returns the bytes read; 0 at or beyond EOF.
func (c *Client) ReadInto(ctx context.Context, h vfs.Handle, offset uint32, dst []byte) (int, vfs.Attr, error) {
	count := uint32(len(dst))
	if max := c.maxData.Load(); count > max {
		count = max
	}
	e := xdr.NewEncoder()
	fh, err := c.WireFH(h)
	if err != nil {
		return 0, vfs.Attr{}, err
	}
	e.OpaqueFixed(fh[:])
	e.Uint32(offset)
	e.Uint32(count)
	e.Uint32(count) // totalcount
	d, err := c.call(ctx, ProcRead, e.Bytes())
	if err != nil {
		return 0, vfs.Attr{}, err
	}
	defer recycleReply(d) // dst copy below: nothing aliases the record
	a, _, err := decodeAttr(d, h)
	if err != nil {
		return 0, vfs.Attr{}, err
	}
	data := d.Opaque(MaxTransferLimit)
	if err := d.Err(); err != nil {
		return 0, vfs.Attr{}, err
	}
	n := copy(dst, data)
	return n, a, nil
}

// Write issues WRITE; data must be at most MaxData() bytes. The payload
// is encoded directly into the outgoing record — one copy between the
// caller's buffer and the wire.
func (c *Client) Write(ctx context.Context, h vfs.Handle, offset uint32, data []byte) (vfs.Attr, error) {
	fh, err := c.WireFH(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	d, err := c.rpc.CallAppend(ctx, Prog, Vers, ProcWrite, len(data)+64, func(e *xdr.Encoder) {
		e.OpaqueFixed(fh[:])
		e.Uint32(0) // beginoffset
		e.Uint32(offset)
		e.Uint32(uint32(len(data))) // totalcount
		e.Opaque(data)
	})
	if err != nil {
		return vfs.Attr{}, err
	}
	defer recycleReply(d)
	if st := Stat(d.Uint32()); st != OK {
		return vfs.Attr{}, &Error{Stat: st}
	}
	if err := d.Err(); err != nil {
		return vfs.Attr{}, err
	}
	a, _, err := decodeAttr(d, h)
	return a, err
}

// Commit issues COMMIT (this server's NFSv3-style extension): the
// durability barrier for unstable WRITEs. It returns the file's
// post-commit attributes and the server's boot verifier; a verifier
// that changed between two COMMITs means the server restarted and may
// have lost writes acknowledged-but-uncommitted in between, which the
// caller must replay.
func (c *Client) Commit(ctx context.Context, h vfs.Handle) (vfs.Attr, uint64, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(h)
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	e.OpaqueFixed(fh[:])
	e.Uint32(0) // offset: whole file
	e.Uint32(0) // count: whole file
	d, err := c.call(ctx, ProcCommit, e.Bytes())
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	defer recycleReply(d)
	a, _, err := decodeAttr(d, h)
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	ver := d.Uint64()
	return a, ver, d.Err()
}

// Create issues CREATE.
func (c *Client) Create(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(dir)
	if err != nil {
		return vfs.Attr{}, err
	}
	e.OpaqueFixed(fh[:])
	e.String(name)
	sa := NewSAttr()
	sa.Mode = mode
	sa.Encode(e)
	d, err := c.call(ctx, ProcCreate, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	defer recycleReply(d)
	return c.decodeDiropres(d)
}

// Remove issues REMOVE.
func (c *Client) Remove(ctx context.Context, dir vfs.Handle, name string) error {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(dir)
	if err != nil {
		return err
	}
	e.OpaqueFixed(fh[:])
	e.String(name)
	d, err := c.call(ctx, ProcRemove, e.Bytes())
	recycleReply(d)
	return err
}

// Rename issues RENAME. Under federation a source and destination on
// different shards cannot be renamed atomically: the mismatched handle
// tag surfaces as ErrXDev before anything reaches the wire.
func (c *Client) Rename(ctx context.Context, fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error {
	e := xdr.NewEncoder()
	f1, err := c.WireFH(fromDir)
	if err != nil {
		return err
	}
	e.OpaqueFixed(f1[:])
	e.String(fromName)
	f2, err := c.WireFH(toDir)
	if err != nil {
		return err
	}
	e.OpaqueFixed(f2[:])
	e.String(toName)
	d, err := c.call(ctx, ProcRename, e.Bytes())
	recycleReply(d)
	return err
}

// Link issues LINK.
func (c *Client) Link(ctx context.Context, target vfs.Handle, dir vfs.Handle, name string) error {
	e := xdr.NewEncoder()
	ft, err := c.WireFH(target)
	if err != nil {
		return err
	}
	e.OpaqueFixed(ft[:])
	fd, err := c.WireFH(dir)
	if err != nil {
		return err
	}
	e.OpaqueFixed(fd[:])
	e.String(name)
	d, err := c.call(ctx, ProcLink, e.Bytes())
	recycleReply(d)
	return err
}

// Symlink issues SYMLINK.
func (c *Client) Symlink(ctx context.Context, dir vfs.Handle, name, target string, mode uint32) error {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(dir)
	if err != nil {
		return err
	}
	e.OpaqueFixed(fh[:])
	e.String(name)
	e.String(target)
	sa := NewSAttr()
	sa.Mode = mode
	sa.Encode(e)
	d, err := c.call(ctx, ProcSymlink, e.Bytes())
	recycleReply(d)
	return err
}

// Mkdir issues MKDIR.
func (c *Client) Mkdir(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(dir)
	if err != nil {
		return vfs.Attr{}, err
	}
	e.OpaqueFixed(fh[:])
	e.String(name)
	sa := NewSAttr()
	sa.Mode = mode
	sa.Encode(e)
	d, err := c.call(ctx, ProcMkdir, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	defer recycleReply(d)
	return c.decodeDiropres(d)
}

// Rmdir issues RMDIR.
func (c *Client) Rmdir(ctx context.Context, dir vfs.Handle, name string) error {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(dir)
	if err != nil {
		return err
	}
	e.OpaqueFixed(fh[:])
	e.String(name)
	d, err := c.call(ctx, ProcRmdir, e.Bytes())
	recycleReply(d)
	return err
}

// ReadDirPage issues one READDIR call from cookie.
func (c *Client) ReadDirPage(ctx context.Context, dir vfs.Handle, cookie, count uint32) ([]DirEntry, bool, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(dir)
	if err != nil {
		return nil, false, err
	}
	e.OpaqueFixed(fh[:])
	e.Uint32(cookie)
	e.Uint32(count)
	d, err := c.call(ctx, ProcReaddir, e.Bytes())
	if err != nil {
		return nil, false, err
	}
	defer recycleReply(d) // entry names are String copies
	var ents []DirEntry
	for d.Bool() {
		ent := DirEntry{
			FileID: d.Uint32(),
			Name:   d.String(MaxName),
			Cookie: d.Uint32(),
		}
		if d.Err() != nil {
			return nil, false, d.Err()
		}
		ents = append(ents, ent)
	}
	eof := d.Bool()
	return ents, eof, d.Err()
}

// maxListingRestarts bounds how many times a bulk listing restarts
// after the server reports its cursor gone (stale/bad cookie) before
// surfacing the error — a guard against livelock when cursors are
// evicted faster than a walk completes.
const maxListingRestarts = 4

// ReadDirAll pages through READDIR until eof. A stale cookie mid-walk
// (the server dropped this walk's cursor) restarts the listing from
// scratch; an empty non-eof page (count budget smaller than the next
// entry) retries with a doubled count — it is never treated as the end
// of the listing.
func (c *Client) ReadDirAll(ctx context.Context, dir vfs.Handle) ([]DirEntry, error) {
	return c.readDirAll(ctx, dir, MaxData)
}

func (c *Client) readDirAll(ctx context.Context, dir vfs.Handle, count uint32) ([]DirEntry, error) {
	for attempt := 0; ; attempt++ {
		all, restartable, err := c.readDirPass(ctx, dir, count)
		if err == nil {
			return all, nil
		}
		if !restartable || attempt == maxListingRestarts {
			return nil, err
		}
	}
}

// readDirPass is one front-to-back paging pass. restartable reports
// that the error was a stale cookie mid-walk, fixable by re-listing.
func (c *Client) readDirPass(ctx context.Context, dir vfs.Handle, count uint32) (all []DirEntry, restartable bool, err error) {
	cookie := uint32(0)
	for {
		ents, eof, err := c.ReadDirPage(ctx, dir, cookie, count)
		if err != nil {
			return nil, cookie != 0 && StatOf(err) == ErrStale, err
		}
		all = append(all, ents...)
		if eof {
			return all, false, nil
		}
		if len(ents) == 0 {
			// Empty page without eof: the count budget is smaller than
			// the next entry. Grow it and retry — returning the partial
			// listing as complete would silently truncate it.
			if count >= MaxTransferLimit {
				return nil, false, fmt.Errorf("nfs: empty READDIR page at count %d without eof", count)
			}
			count *= 2
			continue
		}
		cookie = ents[len(ents)-1].Cookie
	}
}

// ReadDirPlusPage is one READDIRPLUS reply page.
type ReadDirPlusPage struct {
	// Dir is the directory's own attributes, refreshed every page.
	Dir vfs.Attr
	// Verf names the server-side cursor; pass it back with the cookie.
	Verf    uint64
	Entries []DirEntryPlus
	EOF     bool
}

// ReadDirPlus issues one READDIRPLUS call: a page of directory entries
// with attributes piggybacked, up to count reply bytes. Start a walk
// with verf = cookie = 0; resume with the previous page's Verf and the
// last entry's Cookie. An ErrBadCookie status means the server no
// longer holds the walk's cursor: restart from 0.
func (c *Client) ReadDirPlus(ctx context.Context, dir vfs.Handle, verf, cookie uint64, count uint32) (ReadDirPlusPage, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(dir)
	if err != nil {
		return ReadDirPlusPage{}, err
	}
	e.OpaqueFixed(fh[:])
	e.Uint64(verf)
	e.Uint64(cookie)
	e.Uint32(count)
	d, err := c.call(ctx, ProcReaddirPlus, e.Bytes())
	if err != nil {
		return ReadDirPlusPage{}, err
	}
	defer recycleReply(d) // names are String copies, handles decoded
	var pg ReadDirPlusPage
	dirA, _, err := decodeAttr(d, dir)
	if err != nil {
		return pg, err
	}
	pg.Dir = dirA
	pg.Verf = d.Uint64()
	for d.Bool() {
		ent := DirEntryPlus{
			FileID: d.Uint32(),
			Name:   d.String(MaxName),
			Cookie: d.Uint64(),
		}
		if d.Bool() {
			raw := d.OpaqueFixed(FHSize)
			if err := d.Err(); err != nil {
				return pg, err
			}
			h, err := c.DecodeWireFH(raw)
			if err != nil {
				return pg, err
			}
			ent.Handle = h
		}
		if d.Bool() {
			a, _, err := decodeAttr(d, ent.Handle)
			if err != nil {
				return pg, err
			}
			ent.Attr = a
			ent.HasAttr = true
		}
		if err := d.Err(); err != nil {
			return pg, err
		}
		pg.Entries = append(pg.Entries, ent)
	}
	pg.EOF = d.Bool()
	return pg, d.Err()
}

// ReadDirPlusAll lists dir with attributes piggybacked, paging
// READDIRPLUS at the negotiated transfer size until eof. It restarts on
// a bad cookie (bounded), and against servers predating the extension
// falls back to READDIR plus one LOOKUP per name — same result, v2-era
// cost. Returns the directory's own attributes alongside the entries.
func (c *Client) ReadDirPlusAll(ctx context.Context, dir vfs.Handle) (vfs.Attr, []DirEntryPlus, error) {
	if !c.plusUnavail.Load() {
		dirA, ents, err := c.readDirPlusAll(ctx, dir)
		if !isProcUnavail(err) {
			return dirA, ents, err
		}
		c.plusUnavail.Store(true)
	}
	ents, err := c.ReadDirAll(ctx, dir)
	if err != nil {
		return vfs.Attr{}, nil, err
	}
	dirA, err := c.GetAttr(ctx, dir)
	if err != nil {
		return vfs.Attr{}, nil, err
	}
	out := make([]DirEntryPlus, 0, len(ents))
	for _, e := range ents {
		pe := DirEntryPlus{FileID: e.FileID, Name: e.Name, Cookie: uint64(e.Cookie)}
		if a, lerr := c.Lookup(ctx, dir, e.Name); lerr == nil {
			pe.Handle, pe.Attr, pe.HasAttr = a.Handle, a, true
		} else if st := StatOf(lerr); st != ErrNoEnt && st != ErrAcces {
			return vfs.Attr{}, nil, lerr
		}
		out = append(out, pe)
	}
	return dirA, out, nil
}

func (c *Client) readDirPlusAll(ctx context.Context, dir vfs.Handle) (vfs.Attr, []DirEntryPlus, error) {
	for attempt := 0; ; attempt++ {
		dirA, all, err := c.readDirPlusPass(ctx, dir)
		if err == nil {
			return dirA, all, nil
		}
		// ErrBadCookie only arises on a resume, so it is always a
		// restartable mid-walk cursor loss.
		if StatOf(err) != ErrBadCookie || attempt == maxListingRestarts {
			return vfs.Attr{}, nil, err
		}
	}
}

func (c *Client) readDirPlusPass(ctx context.Context, dir vfs.Handle) (vfs.Attr, []DirEntryPlus, error) {
	var (
		all          []DirEntryPlus
		dirA         vfs.Attr
		verf, cookie uint64
	)
	count := c.maxData.Load()
	for {
		pg, err := c.ReadDirPlus(ctx, dir, verf, cookie, count)
		if err != nil {
			return vfs.Attr{}, nil, err
		}
		dirA, verf = pg.Dir, pg.Verf
		all = append(all, pg.Entries...)
		if pg.EOF {
			return dirA, all, nil
		}
		if len(pg.Entries) == 0 {
			if count >= MaxTransferLimit {
				return vfs.Attr{}, nil, fmt.Errorf("nfs: empty READDIRPLUS page at count %d without eof", count)
			}
			count *= 2
			continue
		}
		cookie = pg.Entries[len(pg.Entries)-1].Cookie
	}
}

// isProcUnavail reports an RPC-level "procedure not implemented"
// answer — the defined way a pre-extension server declines a proc.
func isProcUnavail(err error) bool {
	var re *sunrpc.RPCError
	return errors.As(err, &re) && (re.Stat == sunrpc.ProcUnavail || re.Stat == sunrpc.ProgMismatch)
}

// LookupPlusResult is the compound LOOKUP+GETATTR+ACCESS reply.
type LookupPlusResult struct {
	Attr   vfs.Attr // the child
	Dir    vfs.Attr // the directory's attributes at lookup time
	Access uint32   // caller's access bits on the child (AccessRead...)
}

// LookupPlus issues ProcLookupPlus. On ErrNoEnt the returned result
// still carries the directory attributes alongside the error, so
// callers can install a negative name-cache entry scoped to this
// version of the directory. Servers predating the extension answer
// PROC_UNAVAIL (see isProcUnavail); callers fall back to Lookup.
func (c *Client) LookupPlus(ctx context.Context, dir vfs.Handle, name string) (LookupPlusResult, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(dir)
	if err != nil {
		return LookupPlusResult{}, err
	}
	e.OpaqueFixed(fh[:])
	e.String(name)
	d, err := c.rpc.Call(ctx, Prog, Vers, ProcLookupPlus, e.Bytes())
	if err != nil {
		return LookupPlusResult{}, err
	}
	defer recycleReply(d)
	var r LookupPlusResult
	switch st := Stat(d.Uint32()); st {
	case OK:
	case ErrNoEnt:
		dirA, _, derr := decodeAttr(d, dir)
		if derr != nil {
			return LookupPlusResult{}, derr
		}
		r.Dir = dirA
		return r, &Error{Stat: ErrNoEnt}
	default:
		if err := d.Err(); err != nil {
			return LookupPlusResult{}, err
		}
		return LookupPlusResult{}, &Error{Stat: st}
	}
	dirA, _, err := decodeAttr(d, dir)
	if err != nil {
		return LookupPlusResult{}, err
	}
	r.Dir = dirA
	raw := d.OpaqueFixed(FHSize)
	if err := d.Err(); err != nil {
		return LookupPlusResult{}, err
	}
	h, err := c.DecodeWireFH(raw)
	if err != nil {
		return LookupPlusResult{}, err
	}
	a, _, err := decodeAttr(d, h)
	if err != nil {
		return LookupPlusResult{}, err
	}
	r.Attr = a
	r.Access = d.Uint32()
	return r, d.Err()
}

// StatFSResult is the STATFS reply.
type StatFSResult struct {
	TSize  uint32 // optimal transfer size
	BSize  uint32
	Blocks uint32
	BFree  uint32
	BAvail uint32
}

// StatFS issues STATFS.
func (c *Client) StatFS(ctx context.Context, h vfs.Handle) (StatFSResult, error) {
	e := xdr.NewEncoder()
	fh, err := c.WireFH(h)
	if err != nil {
		return StatFSResult{}, err
	}
	e.OpaqueFixed(fh[:])
	d, err := c.call(ctx, ProcStatfs, e.Bytes())
	if err != nil {
		return StatFSResult{}, err
	}
	defer recycleReply(d)
	r := StatFSResult{
		TSize: d.Uint32(), BSize: d.Uint32(),
		Blocks: d.Uint32(), BFree: d.Uint32(), BAvail: d.Uint32(),
	}
	return r, d.Err()
}

// ReadAll reads the entire file through sequential maximal READs. It
// goes through ReadInto so every reply record is recycled: Read's
// hand-off would pin one pooled record per chunk behind the result's
// interior aliases, and Put silently drops slices whose capacity no
// longer matches a pool class.
func (c *Client) ReadAll(ctx context.Context, h vfs.Handle) ([]byte, error) {
	var out []byte
	off := uint32(0)
	buf := make([]byte, c.maxData.Load())
	for {
		n, attr, err := c.ReadInto(ctx, h, off, buf)
		if err != nil {
			return nil, err
		}
		out = append(out, buf[:n]...)
		off += uint32(n)
		if n == 0 || uint64(off) >= attr.Size {
			return out, nil
		}
	}
}

// WriteAll writes data through sequential maximal WRITEs at offset 0.
func (c *Client) WriteAll(ctx context.Context, h vfs.Handle, data []byte) error {
	step := int(c.maxData.Load())
	for off := 0; off < len(data); off += step {
		end := off + step
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.Write(ctx, h, uint32(off), data[off:end]); err != nil {
			return err
		}
	}
	return nil
}
