package nfs

import (
	"context"

	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// Client is an NFSv2 client over a sunrpc connection. It stands in for
// the kernel NFS client of the paper's prototype: same procedures, same
// wire format, usable from tests, tools and the DisCFS client library.
type Client struct {
	rpc *sunrpc.Client
}

// NewClient wraps an RPC client.
func NewClient(rpc *sunrpc.Client) *Client { return &Client{rpc: rpc} }

// RPC exposes the underlying RPC client (for the DisCFS extension
// program, which shares the connection).
func (c *Client) RPC() *sunrpc.Client { return c.rpc }

// Mount issues MOUNTPROC_MNT and returns the root file handle.
func (c *Client) Mount(ctx context.Context, dirpath string) (vfs.Handle, error) {
	e := xdr.NewEncoder()
	e.String(dirpath)
	d, err := c.rpc.Call(ctx, MountProg, MountVers, MountProcMnt, e.Bytes())
	if err != nil {
		return vfs.Handle{}, err
	}
	if st := Stat(d.Uint32()); st != OK {
		return vfs.Handle{}, &Error{Stat: st}
	}
	raw := d.OpaqueFixed(FHSize)
	if d.Err() != nil {
		return vfs.Handle{}, d.Err()
	}
	return DecodeFH(raw)
}

// Unmount issues MOUNTPROC_UMNT.
func (c *Client) Unmount(ctx context.Context, dirpath string) error {
	e := xdr.NewEncoder()
	e.String(dirpath)
	_, err := c.rpc.Call(ctx, MountProg, MountVers, MountProcUmnt, e.Bytes())
	return err
}

// Null issues the NFS NULL procedure (an RPC round-trip).
func (c *Client) Null(ctx context.Context) error {
	_, err := c.rpc.Call(ctx, Prog, Vers, ProcNull, nil)
	return err
}

// call runs an NFS procedure and checks the leading status word.
func (c *Client) call(ctx context.Context, proc uint32, args []byte) (*xdr.Decoder, error) {
	d, err := c.rpc.Call(ctx, Prog, Vers, proc, args)
	if err != nil {
		return nil, err
	}
	if st := Stat(d.Uint32()); st != OK {
		return nil, &Error{Stat: st}
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return d, nil
}

// decodeAttr reads an fattr result into a vfs.Attr plus the wire fattr.
func decodeAttr(d *xdr.Decoder, h vfs.Handle) (vfs.Attr, FAttr, error) {
	fa := DecodeFAttr(d)
	if err := d.Err(); err != nil {
		return vfs.Attr{}, FAttr{}, err
	}
	a := vfs.Attr{
		Handle: h,
		Mode:   fa.Mode & 0o7777,
		Nlink:  fa.Nlink,
		UID:    fa.UID,
		GID:    fa.GID,
		Size:   uint64(fa.Size),
		Blocks: uint64(fa.Blocks),
		Atime:  fa.Atime,
		Mtime:  fa.Mtime,
		Ctime:  fa.Ctime,
	}
	switch fa.Type {
	case ftypeReg:
		a.Type = vfs.TypeRegular
	case ftypeDir:
		a.Type = vfs.TypeDir
	case ftypeLink:
		a.Type = vfs.TypeSymlink
	}
	return a, fa, nil
}

// decodeDiropres reads (fhandle, fattr).
func decodeDiropres(d *xdr.Decoder) (vfs.Attr, error) {
	raw := d.OpaqueFixed(FHSize)
	if err := d.Err(); err != nil {
		return vfs.Attr{}, err
	}
	h, err := DecodeFH(raw)
	if err != nil {
		return vfs.Attr{}, err
	}
	a, _, err := decodeAttr(d, h)
	return a, err
}

// GetAttr issues GETATTR.
func (c *Client) GetAttr(ctx context.Context, h vfs.Handle) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(h)
	e.OpaqueFixed(fh[:])
	d, err := c.call(ctx, ProcGetattr, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	a, _, err := decodeAttr(d, h)
	return a, err
}

// SetAttr issues SETATTR.
func (c *Client) SetAttr(ctx context.Context, h vfs.Handle, sa SAttr) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(h)
	e.OpaqueFixed(fh[:])
	sa.Encode(e)
	d, err := c.call(ctx, ProcSetattr, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	a, _, err := decodeAttr(d, h)
	return a, err
}

// Lookup issues LOOKUP.
func (c *Client) Lookup(ctx context.Context, dir vfs.Handle, name string) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(dir)
	e.OpaqueFixed(fh[:])
	e.String(name)
	d, err := c.call(ctx, ProcLookup, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	return decodeDiropres(d)
}

// Readlink issues READLINK.
func (c *Client) Readlink(ctx context.Context, h vfs.Handle) (string, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(h)
	e.OpaqueFixed(fh[:])
	d, err := c.call(ctx, ProcReadlink, e.Bytes())
	if err != nil {
		return "", err
	}
	s := d.String(MaxPath)
	return s, d.Err()
}

// Read issues READ; at most MaxData bytes are returned.
func (c *Client) Read(ctx context.Context, h vfs.Handle, offset uint32, count uint32) ([]byte, vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(h)
	e.OpaqueFixed(fh[:])
	e.Uint32(offset)
	e.Uint32(count)
	e.Uint32(count) // totalcount
	d, err := c.call(ctx, ProcRead, e.Bytes())
	if err != nil {
		return nil, vfs.Attr{}, err
	}
	a, _, err := decodeAttr(d, h)
	if err != nil {
		return nil, vfs.Attr{}, err
	}
	data := d.Opaque(MaxData)
	if err := d.Err(); err != nil {
		return nil, vfs.Attr{}, err
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, a, nil
}

// Write issues WRITE; data must be at most MaxData bytes.
func (c *Client) Write(ctx context.Context, h vfs.Handle, offset uint32, data []byte) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(h)
	e.OpaqueFixed(fh[:])
	e.Uint32(0) // beginoffset
	e.Uint32(offset)
	e.Uint32(uint32(len(data))) // totalcount
	e.Opaque(data)
	d, err := c.call(ctx, ProcWrite, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	a, _, err := decodeAttr(d, h)
	return a, err
}

// Commit issues COMMIT (this server's NFSv3-style extension): the
// durability barrier for unstable WRITEs. It returns the file's
// post-commit attributes and the server's boot verifier; a verifier
// that changed between two COMMITs means the server restarted and may
// have lost writes acknowledged-but-uncommitted in between, which the
// caller must replay.
func (c *Client) Commit(ctx context.Context, h vfs.Handle) (vfs.Attr, uint64, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(h)
	e.OpaqueFixed(fh[:])
	e.Uint32(0) // offset: whole file
	e.Uint32(0) // count: whole file
	d, err := c.call(ctx, ProcCommit, e.Bytes())
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	a, _, err := decodeAttr(d, h)
	if err != nil {
		return vfs.Attr{}, 0, err
	}
	ver := d.Uint64()
	return a, ver, d.Err()
}

// Create issues CREATE.
func (c *Client) Create(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(dir)
	e.OpaqueFixed(fh[:])
	e.String(name)
	sa := NewSAttr()
	sa.Mode = mode
	sa.Encode(e)
	d, err := c.call(ctx, ProcCreate, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	return decodeDiropres(d)
}

// Remove issues REMOVE.
func (c *Client) Remove(ctx context.Context, dir vfs.Handle, name string) error {
	e := xdr.NewEncoder()
	fh := EncodeFH(dir)
	e.OpaqueFixed(fh[:])
	e.String(name)
	_, err := c.call(ctx, ProcRemove, e.Bytes())
	return err
}

// Rename issues RENAME.
func (c *Client) Rename(ctx context.Context, fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error {
	e := xdr.NewEncoder()
	f1 := EncodeFH(fromDir)
	e.OpaqueFixed(f1[:])
	e.String(fromName)
	f2 := EncodeFH(toDir)
	e.OpaqueFixed(f2[:])
	e.String(toName)
	_, err := c.call(ctx, ProcRename, e.Bytes())
	return err
}

// Link issues LINK.
func (c *Client) Link(ctx context.Context, target vfs.Handle, dir vfs.Handle, name string) error {
	e := xdr.NewEncoder()
	ft := EncodeFH(target)
	e.OpaqueFixed(ft[:])
	fd := EncodeFH(dir)
	e.OpaqueFixed(fd[:])
	e.String(name)
	_, err := c.call(ctx, ProcLink, e.Bytes())
	return err
}

// Symlink issues SYMLINK.
func (c *Client) Symlink(ctx context.Context, dir vfs.Handle, name, target string, mode uint32) error {
	e := xdr.NewEncoder()
	fh := EncodeFH(dir)
	e.OpaqueFixed(fh[:])
	e.String(name)
	e.String(target)
	sa := NewSAttr()
	sa.Mode = mode
	sa.Encode(e)
	_, err := c.call(ctx, ProcSymlink, e.Bytes())
	return err
}

// Mkdir issues MKDIR.
func (c *Client) Mkdir(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(dir)
	e.OpaqueFixed(fh[:])
	e.String(name)
	sa := NewSAttr()
	sa.Mode = mode
	sa.Encode(e)
	d, err := c.call(ctx, ProcMkdir, e.Bytes())
	if err != nil {
		return vfs.Attr{}, err
	}
	return decodeDiropres(d)
}

// Rmdir issues RMDIR.
func (c *Client) Rmdir(ctx context.Context, dir vfs.Handle, name string) error {
	e := xdr.NewEncoder()
	fh := EncodeFH(dir)
	e.OpaqueFixed(fh[:])
	e.String(name)
	_, err := c.call(ctx, ProcRmdir, e.Bytes())
	return err
}

// ReadDirPage issues one READDIR call from cookie.
func (c *Client) ReadDirPage(ctx context.Context, dir vfs.Handle, cookie, count uint32) ([]DirEntry, bool, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(dir)
	e.OpaqueFixed(fh[:])
	e.Uint32(cookie)
	e.Uint32(count)
	d, err := c.call(ctx, ProcReaddir, e.Bytes())
	if err != nil {
		return nil, false, err
	}
	var ents []DirEntry
	for d.Bool() {
		ent := DirEntry{
			FileID: d.Uint32(),
			Name:   d.String(MaxName),
			Cookie: d.Uint32(),
		}
		if d.Err() != nil {
			return nil, false, d.Err()
		}
		ents = append(ents, ent)
	}
	eof := d.Bool()
	return ents, eof, d.Err()
}

// ReadDirAll pages through READDIR until eof.
func (c *Client) ReadDirAll(ctx context.Context, dir vfs.Handle) ([]DirEntry, error) {
	var all []DirEntry
	cookie := uint32(0)
	for {
		ents, eof, err := c.ReadDirPage(ctx, dir, cookie, MaxData)
		if err != nil {
			return nil, err
		}
		all = append(all, ents...)
		if eof || len(ents) == 0 {
			return all, nil
		}
		cookie = ents[len(ents)-1].Cookie
	}
}

// StatFSResult is the STATFS reply.
type StatFSResult struct {
	TSize  uint32 // optimal transfer size
	BSize  uint32
	Blocks uint32
	BFree  uint32
	BAvail uint32
}

// StatFS issues STATFS.
func (c *Client) StatFS(ctx context.Context, h vfs.Handle) (StatFSResult, error) {
	e := xdr.NewEncoder()
	fh := EncodeFH(h)
	e.OpaqueFixed(fh[:])
	d, err := c.call(ctx, ProcStatfs, e.Bytes())
	if err != nil {
		return StatFSResult{}, err
	}
	r := StatFSResult{
		TSize: d.Uint32(), BSize: d.Uint32(),
		Blocks: d.Uint32(), BFree: d.Uint32(), BAvail: d.Uint32(),
	}
	return r, d.Err()
}

// ReadAll reads the entire file through sequential MaxData READs.
func (c *Client) ReadAll(ctx context.Context, h vfs.Handle) ([]byte, error) {
	var out []byte
	off := uint32(0)
	for {
		data, attr, err := c.Read(ctx, h, off, MaxData)
		if err != nil {
			return nil, err
		}
		out = append(out, data...)
		off += uint32(len(data))
		if len(data) == 0 || uint64(off) >= attr.Size {
			return out, nil
		}
	}
}

// WriteAll writes data through sequential MaxData WRITEs at offset 0.
func (c *Client) WriteAll(ctx context.Context, h vfs.Handle, data []byte) error {
	for off := 0; off < len(data); off += MaxData {
		end := off + MaxData
		if end > len(data) {
			end = len(data)
		}
		if _, err := c.Write(ctx, h, uint32(off), data[off:end]); err != nil {
			return err
		}
	}
	return nil
}
