package nfs

import (
	"bytes"
	"testing"
)

// TestGatherReadIntoSeesBufferedWrites: ReadInto through the gather
// layer must merge buffered (unstable) extents exactly as Read does —
// the overlay path — and take the zero-copy passthrough once a COMMIT
// drains the file.
func TestGatherReadIntoSeesBufferedWrites(t *testing.T) {
	// A huge queue bound keeps writes buffered (no committer pressure),
	// so the overlay path is what ReadInto must serve.
	g, backing := gatherOver(t, GatherConfig{QueueBlocks: 1 << 16})
	h := mustCreate(t, g, "f")

	// Backing holds an older version; buffered extents overwrite part.
	if _, err := backing.Write(h, 0, bytes.Repeat([]byte{0x11}, 4000)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(h, 1000, bytes.Repeat([]byte{0x22}, 500)); err != nil {
		t.Fatal(err)
	}
	if _, err := g.Write(h, 3500, bytes.Repeat([]byte{0x33}, 1500)); err != nil {
		t.Fatal(err) // extends the file past the backing size
	}

	want, wantEOF, err := g.Read(h, 0, 6000)
	if err != nil {
		t.Fatal(err)
	}
	dst := bytes.Repeat([]byte{0xFF}, 6000)
	n, eof, err := g.ReadInto(h, 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) || eof != wantEOF {
		t.Fatalf("ReadInto = (%d,%v), Read = (%d,%v)", n, eof, len(want), wantEOF)
	}
	if !bytes.Equal(dst[:n], want) {
		t.Fatal("buffered overlay mismatch between Read and ReadInto")
	}

	// After COMMIT the buffered state drains and ReadInto serves the
	// backing store's zero-copy path with identical content.
	if _, _, err := g.Commit(h); err != nil {
		t.Fatal(err)
	}
	n2, _, err := g.ReadInto(h, 0, dst)
	if err != nil {
		t.Fatal(err)
	}
	if n2 != n || !bytes.Equal(dst[:n2], want) {
		t.Fatal("post-commit ReadInto diverges from pre-commit content")
	}
}
