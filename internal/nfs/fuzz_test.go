package nfs

import (
	"testing"

	"discfs/internal/ffs"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// fuzzFS builds a tiny filesystem with a few objects so handle-bearing
// procedures have something real to hit.
func fuzzFS(tb testing.TB) *ffs.FFS {
	backing, err := ffs.New(ffs.Config{BlockSize: 512, NumBlocks: 256})
	if err != nil {
		tb.Fatalf("ffs.New: %v", err)
	}
	root := backing.Root()
	if _, err := backing.Create(root, "f", 0o644); err != nil {
		tb.Fatal(err)
	}
	if _, err := backing.Mkdir(root, "d", 0o755); err != nil {
		tb.Fatal(err)
	}
	if _, err := backing.Symlink(root, "l", "f", 0o777); err != nil {
		tb.Fatal(err)
	}
	return backing
}

// FuzzProtoDispatch feeds arbitrary argument bytes into every NFS
// procedure handler (the wire-facing decode entry points of the
// server): whatever the input, dispatch must return a status — never
// panic, never hand garbage to the store that a well-formed error
// wouldn't cover.
func FuzzProtoDispatch(f *testing.F) {
	// Seeds: valid encodes of representative calls.
	seed := func(proc uint32, enc func(*xdr.Encoder)) {
		e := xdr.NewEncoder()
		enc(e)
		f.Add(proc, append([]byte(nil), e.Bytes()...))
	}
	rootFH := EncodeFH(vfs.Handle{Ino: 1, Gen: 1})
	seed(ProcGetattr, func(e *xdr.Encoder) { e.OpaqueFixed(rootFH[:]) })
	seed(ProcLookup, func(e *xdr.Encoder) { e.OpaqueFixed(rootFH[:]); e.String("f") })
	seed(ProcRead, func(e *xdr.Encoder) {
		e.OpaqueFixed(rootFH[:])
		e.Uint32(0)
		e.Uint32(4096)
		e.Uint32(4096)
	})
	seed(ProcWrite, func(e *xdr.Encoder) {
		e.OpaqueFixed(rootFH[:])
		e.Uint32(0)
		e.Uint32(0)
		e.Uint32(5)
		e.Opaque([]byte("bytes"))
	})
	seed(ProcCreate, func(e *xdr.Encoder) {
		e.OpaqueFixed(rootFH[:])
		e.String("new")
		sa := NewSAttr()
		sa.Mode = 0o644
		sa.Encode(e)
	})
	seed(ProcReaddir, func(e *xdr.Encoder) { e.OpaqueFixed(rootFH[:]); e.Uint32(0); e.Uint32(4096) })
	seed(ProcSetattr, func(e *xdr.Encoder) {
		e.OpaqueFixed(rootFH[:])
		sa := NewSAttr()
		sa.Size = 0
		sa.Encode(e)
	})
	seed(ProcCommit, func(e *xdr.Encoder) { e.OpaqueFixed(rootFH[:]); e.Uint32(0); e.Uint32(0) })
	seed(ProcFSInfo, func(e *xdr.Encoder) { e.Uint32(DefaultMaxTransfer) })
	seed(ProcRename, func(e *xdr.Encoder) {
		e.OpaqueFixed(rootFH[:])
		e.String("f")
		e.OpaqueFixed(rootFH[:])
		e.String("g")
	})
	f.Add(uint32(99), []byte{})         // unknown proc
	f.Add(uint32(ProcWrite), []byte{0}) // truncated
	f.Add(uint32(ProcLookup), []byte{}) // empty args

	f.Fuzz(func(t *testing.T, proc uint32, args []byte) {
		backing := fuzzFS(t)
		srv := NewServer(StaticExport{FS: backing})
		gather := NewGatherFS(backing, GatherConfig{})
		gsrv := NewServer(StaticExport{FS: gather})
		defer gather.Close()

		for _, s := range []*Server{srv, gsrv} {
			res := xdr.NewEncoder()
			ctx := &sunrpc.Context{Peer: "fuzz"}
			stat, err := s.dispatch(ctx, proc%24, xdr.NewDecoder(args), res)
			if err != nil {
				t.Fatalf("dispatch returned handler error: %v", err)
			}
			_ = stat
			// Mount program too: it shares the decode helpers.
			res = xdr.NewEncoder()
			if _, err := s.dispatchMount(ctx, proc%4, xdr.NewDecoder(args), res); err != nil {
				t.Fatalf("mount dispatch error: %v", err)
			}
		}

		// The standalone decode entry points must be panic-free as well.
		d := xdr.NewDecoder(args)
		_ = DecodeFAttr(d)
		d = xdr.NewDecoder(args)
		_ = DecodeSAttr(d)
		if _, err := DecodeFH(args); err != nil && err != vfs.ErrStale {
			t.Fatalf("DecodeFH error %v", err)
		}
	})
}
