package bench

// The parallel multi-client write benchmark: N writers stream blocks
// into their own files concurrently — the workload the server's
// per-inode locking and write-gathering pipeline exist for. The
// baseline is the same filesystem behind a single global RWMutex (the
// pre-refactor server), so the reported ratio is exactly the win of
// the concurrent write path.

import (
	"context"
	"fmt"
	"sync"
	"time"

	"discfs/internal/core"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/vfs"
)

// SerialFS wraps a vfs.FS in one global RWMutex — the locking model
// this PR removed from the FFS substrate, preserved here as the
// benchmark baseline. Reads share the lock; every mutation is
// exclusive, so concurrent writers serialize completely.
type SerialFS struct {
	mu sync.RWMutex
	fs vfs.FS
}

// NewSerialFS wraps fs.
func NewSerialFS(fs vfs.FS) *SerialFS { return &SerialFS{fs: fs} }

var _ vfs.FS = (*SerialFS)(nil)

// Root implements vfs.FS.
func (s *SerialFS) Root() vfs.Handle {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fs.Root()
}

// GetAttr implements vfs.FS.
func (s *SerialFS) GetAttr(h vfs.Handle) (vfs.Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fs.GetAttr(h)
}

// SetAttr implements vfs.FS.
func (s *SerialFS) SetAttr(h vfs.Handle, sa vfs.SetAttr) (vfs.Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.SetAttr(h, sa)
}

// Lookup implements vfs.FS.
func (s *SerialFS) Lookup(dir vfs.Handle, name string) (vfs.Attr, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fs.Lookup(dir, name)
}

// Read implements vfs.FS.
func (s *SerialFS) Read(h vfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fs.Read(h, off, count)
}

// Write implements vfs.FS.
func (s *SerialFS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Write(h, off, data)
}

// Create implements vfs.FS.
func (s *SerialFS) Create(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Create(dir, name, mode)
}

// Remove implements vfs.FS.
func (s *SerialFS) Remove(dir vfs.Handle, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Remove(dir, name)
}

// Rename implements vfs.FS.
func (s *SerialFS) Rename(fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Rename(fromDir, fromName, toDir, toName)
}

// Mkdir implements vfs.FS.
func (s *SerialFS) Mkdir(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Mkdir(dir, name, mode)
}

// Rmdir implements vfs.FS.
func (s *SerialFS) Rmdir(dir vfs.Handle, name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Rmdir(dir, name)
}

// ReadDir implements vfs.FS.
func (s *SerialFS) ReadDir(dir vfs.Handle) ([]vfs.DirEntry, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fs.ReadDir(dir)
}

// Symlink implements vfs.FS.
func (s *SerialFS) Symlink(dir vfs.Handle, name, target string, mode uint32) (vfs.Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Symlink(dir, name, target, mode)
}

// Readlink implements vfs.FS.
func (s *SerialFS) Readlink(h vfs.Handle) (string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fs.Readlink(h)
}

// Link implements vfs.FS.
func (s *SerialFS) Link(dir vfs.Handle, name string, target vfs.Handle) (vfs.Attr, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fs.Link(dir, name, target)
}

// StatFS implements vfs.FS.
func (s *SerialFS) StatFS() (vfs.StatFS, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.fs.StatFS()
}

// ---- the benchmark ----

// ParallelWriteResult is one parallel-write measurement.
type ParallelWriteResult struct {
	Writers int
	Bytes   int64 // aggregate bytes written
	Elapsed time.Duration
}

// KBps reports the aggregate throughput in KiB/s.
func (r ParallelWriteResult) KBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / 1024 / r.Elapsed.Seconds()
}

// handleSyncer lets remote views drain client-side write-behind inside
// the measured window, so the reported throughput includes the barrier.
type handleSyncer interface {
	SyncAll() error
}

// ParallelWrite runs len(views) concurrent writers, each streaming size
// bytes in ChunkSize blocks into its own file through its own view.
// Views may share one filesystem (per-writer *ffs.FFS views) or carry
// their own client connection (per-writer ClientFS); each writer ends
// with the view's sync barrier when it has one, so buffered writes are
// on the server before the clock stops.
func ParallelWrite(views []vfs.FS, size int64) (ParallelWriteResult, error) {
	n := len(views)
	block := make([]byte, ChunkSize)
	for i := range block {
		block[i] = byte(i)
	}
	errs := make([]error, n)
	var wg sync.WaitGroup
	start := time.Now()
	for i, view := range views {
		wg.Add(1)
		go func(i int, view vfs.FS) {
			defer wg.Done()
			name := fmt.Sprintf("pw%d.dat", i)
			a, err := view.Create(view.Root(), name, 0o644)
			if err != nil {
				errs[i] = fmt.Errorf("writer %d: create: %w", i, err)
				return
			}
			for off := int64(0); off < size; off += ChunkSize {
				nb := int64(ChunkSize)
				if off+nb > size {
					nb = size - off
				}
				if _, err := view.Write(a.Handle, uint64(off), block[:nb]); err != nil {
					errs[i] = fmt.Errorf("writer %d: write at %d: %w", i, off, err)
					return
				}
			}
			if s, ok := view.(handleSyncer); ok {
				if err := s.SyncAll(); err != nil {
					errs[i] = fmt.Errorf("writer %d: sync: %w", i, err)
				}
			}
		}(i, view)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return ParallelWriteResult{}, err
		}
	}
	return ParallelWriteResult{Writers: n, Bytes: size * int64(n), Elapsed: elapsed}, nil
}

// parallelDisk is the synthetic disk behind the parallel-write rows: a
// modest per-seek latency so the measurement is device-overlap-bound
// (as a real multi-client server is), not memcpy-bound — essential on
// single-core CI runners, where pure CPU work cannot speed up with
// goroutines.
var parallelDisk = ffs.DiskModel{SeekLatency: 100 * time.Microsecond}

// NewParallelFFS builds a fresh concurrent FFS with the parallel-write
// disk model and returns n views sharing it.
func NewParallelFFS(n int) ([]vfs.FS, *ffs.FFS, error) {
	fs, err := ffs.New(ffs.Config{BlockSize: ChunkSize, NumBlocks: 1 << 15, Disk: parallelDisk})
	if err != nil {
		return nil, nil, err
	}
	views := make([]vfs.FS, n)
	for i := range views {
		views[i] = fs
	}
	return views, fs, nil
}

// NewParallelFFSSerial is NewParallelFFS behind the global-lock
// baseline wrapper.
func NewParallelFFSSerial(n int) ([]vfs.FS, *ffs.FFS, error) {
	fs, err := ffs.New(ffs.Config{BlockSize: ChunkSize, NumBlocks: 1 << 15, Disk: parallelDisk})
	if err != nil {
		return nil, nil, err
	}
	serial := NewSerialFS(fs)
	views := make([]vfs.FS, n)
	for i := range views {
		views[i] = serial
	}
	return views, fs, nil
}

// NewParallelDisCFS starts a DisCFS server (write-behind per the flag)
// over an FFS store with the parallel-write disk model and dials n
// independent clients, returning one ClientFS view per client.
func NewParallelDisCFS(n int, writeBehind bool) ([]vfs.FS, func() core.Stats, func(), error) {
	backing, err := ffs.New(ffs.Config{BlockSize: ChunkSize, NumBlocks: 1 << 15, Disk: parallelDisk})
	if err != nil {
		return nil, nil, nil, err
	}
	adminKey := keynote.DeterministicKey("pw-admin")
	srv, err := core.NewServer(core.ServerConfig{
		Backing:     backing,
		ServerKey:   adminKey,
		CacheSize:   128,
		WriteBehind: writeBehind,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	if _, err := srv.IssueCredential(adminKey.Principal, backing.Root().Ino, "RWX", "parallel bench"); err != nil {
		srv.Close()
		return nil, nil, nil, err
	}
	addr, err := srv.Start()
	if err != nil {
		srv.Close()
		return nil, nil, nil, err
	}
	views := make([]vfs.FS, 0, n)
	closers := make([]func(), 0, n+1)
	closeAll := func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		srv.Close()
	}
	for i := 0; i < n; i++ {
		client, err := core.Dial(context.Background(), addr, adminKey)
		if err != nil {
			closeAll()
			return nil, nil, nil, err
		}
		cfs := NewClientFS(client)
		views = append(views, cfs)
		closers = append(closers, func() { cfs.Close(); client.Close() })
	}
	return views, srv.Stats, closeAll, nil
}
