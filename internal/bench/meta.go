package bench

// The metadata-plane acceptance measure: walking and stat'ing a
// 10k-entry synthetic source tree with one LOOKUP RPC per name — the
// only option a v2 client has — versus batched READDIRPLUS pages with
// piggybacked attributes. Both walks run over the same CFS-NE loopback
// server (the paper's base case, so the comparison isolates the
// protocol change from credentials and the secure channel) and must
// visit exactly the same files and bytes; the batched walk has to win
// by the per-RPC round trips it no longer pays.

import (
	"context"
	"fmt"
	"time"

	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// MetaTreeSpec is the metadata benchmark's tree: 20 subsystems x 5
// nested levels x 100 files = 10,000 files (~10.1k directory entries),
// tiny contents — all namespace, no data plane.
var MetaTreeSpec = TreeSpec{
	Subsystems:   20,
	FilesPerDir:  100,
	MeanFileSize: 512,
	Depth:        5,
	Seed:         2003,
}

// MetaResult is the walk/stat comparison over one tree.
type MetaResult struct {
	// Files and Dirs are the tree's size as both walks observed it.
	Files int
	Dirs  int
	// LegacySec is the per-name-RPC walk's wall time (best of runs);
	// PlusSec the batched READDIRPLUS walk's.
	LegacySec float64
	PlusSec   float64
	// Speedup is LegacySec / PlusSec.
	Speedup float64
}

// MetaSetup is a CFS-NE server with the benchmark tree on it and one
// measurement connection.
type MetaSetup struct {
	s         *Setup
	cc        *nfs.CachingClient
	root      vfs.Handle
	closeConn func()
	// Files and Dirs are the generated tree's true size, for validating
	// walk results against.
	Files int
	Dirs  int
}

// NewMetaSetup brings up the CFS-NE loopback server, generates the tree
// directly on the backing store (population is not part of the
// measurement), and dials one extra connection for the walks.
func NewMetaSetup(spec TreeSpec) (*MetaSetup, error) {
	s, err := SetupCFSNE()
	if err != nil {
		return nil, err
	}
	files, _, err := GenerateTree(s.Populate, s.Populate.Root(), spec)
	if err != nil {
		s.Close()
		return nil, err
	}
	cc, root, closeConn, err := DialCFSNECached(s)
	if err != nil {
		s.Close()
		return nil, err
	}
	depth := spec.Depth
	if depth < 1 {
		depth = 1
	}
	return &MetaSetup{
		s:         s,
		cc:        cc,
		root:      root,
		closeConn: closeConn,
		Files:     files,
		Dirs:      1 + spec.Subsystems*depth, // sys/ + every nested level
	}, nil
}

// Close tears down the connection and the server.
func (m *MetaSetup) Close() {
	m.closeConn()
	m.s.Close()
}

// WalkLegacy stats the whole tree the per-name way (READDIR pages plus
// one LOOKUP RPC per entry) and reports what it saw and how long it
// took.
func (m *MetaSetup) WalkLegacy() (files, dirs int, bytes int64, elapsed time.Duration, err error) {
	fs := NewRemoteFS(m.cc.Client, m.root)
	start := time.Now()
	files, dirs, bytes, err = StatTree(fs, m.root)
	return files, dirs, bytes, time.Since(start), err
}

// WalkPlus stats the whole tree through batched READDIRPLUS listings
// with piggybacked attributes, on a fresh attribute cache so nothing
// carries over between runs.
func (m *MetaSetup) WalkPlus() (files, dirs int, bytes int64, elapsed time.Duration, err error) {
	cc := nfs.NewCachingClient(m.cc.Client, 0)
	start := time.Now()
	files, dirs, bytes, err = WalkStatPlus(context.Background(), cc, m.root)
	return files, dirs, bytes, time.Since(start), err
}

// WalkStatPlus walks the tree under root using batched READDIRPLUS
// listings; entries whose attributes the server could not piggyback
// fall back to one cached lookup each.
func WalkStatPlus(ctx context.Context, cc *nfs.CachingClient, root vfs.Handle) (files, dirs int, bytes int64, err error) {
	ents, err := cc.ReadDirPlusAll(ctx, root)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, e := range ents {
		a := e.Attr
		if !e.HasAttr {
			a, err = cc.Lookup(ctx, root, e.Name)
			if err != nil {
				return files, dirs, bytes, err
			}
		}
		if a.Type == vfs.TypeDir {
			dirs++
			f, d, b, err := WalkStatPlus(ctx, cc, a.Handle)
			files, dirs, bytes = files+f, dirs+d, bytes+b
			if err != nil {
				return files, dirs, bytes, err
			}
			continue
		}
		files++
		bytes += int64(a.Size)
	}
	return files, dirs, bytes, nil
}

// Meta runs the walk/stat comparison: both walks over the same tree,
// best of runs each, cross-checked to have visited identical files and
// bytes.
func Meta(spec TreeSpec, runs int) (MetaResult, error) {
	if runs < 1 {
		runs = 1
	}
	m, err := NewMetaSetup(spec)
	if err != nil {
		return MetaResult{}, err
	}
	defer m.Close()

	var res MetaResult
	var legacyBytes int64
	for i := 0; i < runs; i++ {
		files, dirs, bytes, elapsed, err := m.WalkLegacy()
		if err != nil {
			return res, fmt.Errorf("bench: legacy walk: %w", err)
		}
		if files != m.Files {
			return res, fmt.Errorf("bench: legacy walk saw %d files, tree has %d", files, m.Files)
		}
		if res.LegacySec == 0 || elapsed.Seconds() < res.LegacySec {
			res.LegacySec = elapsed.Seconds()
		}
		res.Files, res.Dirs, legacyBytes = files, dirs, bytes
	}
	for i := 0; i < runs; i++ {
		files, dirs, bytes, elapsed, err := m.WalkPlus()
		if err != nil {
			return res, fmt.Errorf("bench: readdirplus walk: %w", err)
		}
		if files != res.Files || dirs != res.Dirs || bytes != legacyBytes {
			return res, fmt.Errorf("bench: walk mismatch: legacy saw %d files/%d dirs/%d bytes, plus saw %d/%d/%d",
				res.Files, res.Dirs, legacyBytes, files, dirs, bytes)
		}
		if res.PlusSec == 0 || elapsed.Seconds() < res.PlusSec {
			res.PlusSec = elapsed.Seconds()
		}
	}
	if res.PlusSec > 0 {
		res.Speedup = res.LegacySec / res.PlusSec
	}
	return res, nil
}
