package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/core"
	"discfs/internal/keynote"
	"discfs/internal/vfs"
)

// AuthzSetup is a server prepared for the authorization micro-benchmark
// (the paper's Figures 8-9 measure the per-operation compliance check;
// this measures the same path under concurrency): N distinct principals,
// each holding one RWX credential on the exported root, checking access
// directly against the server's decision pipeline with no RPC in the
// way. The cached variant uses the paper's 128-entry decision cache;
// the uncached variant disables it so every check runs a full KeyNote
// evaluation.
type AuthzSetup struct {
	Server *core.Server
	Peers  []keynote.Principal
	Root   vfs.Handle
	Close  func()
}

// NewAuthzSetup builds the benchmark server. cacheSize follows
// core.ServerConfig conventions (0 = the paper's 128, negative =
// disabled). extraCreds installs that many additional irrelevant
// credentials (distinct third-party principals) to model a busy server
// whose session holds far more delegations than any one request needs.
func NewAuthzSetup(principals, cacheSize, extraCreds int) (*AuthzSetup, error) {
	backing, err := ffsStore()
	if err != nil {
		return nil, err
	}
	srv, err := core.NewServer(core.ServerConfig{
		Backing:   backing,
		ServerKey: keynote.DeterministicKey("authz-admin"),
		CacheSize: cacheSize,
	})
	if err != nil {
		return nil, err
	}
	root := backing.Root()
	peers := make([]keynote.Principal, principals)
	for i := range peers {
		key := keynote.DeterministicKey(fmt.Sprintf("authz-user-%d", i))
		peers[i] = key.Principal
		if _, err := srv.IssueCredential(key.Principal, root.Ino, "RWX",
			fmt.Sprintf("authz bench user %d", i)); err != nil {
			srv.Close()
			return nil, err
		}
	}
	for i := 0; i < extraCreds; i++ {
		key := keynote.DeterministicKey(fmt.Sprintf("authz-bystander-%d", i))
		if _, err := srv.IssueCredential(key.Principal, root.Ino+1+uint64(i), "R",
			fmt.Sprintf("authz bystander %d", i)); err != nil {
			srv.Close()
			return nil, err
		}
	}
	return &AuthzSetup{
		Server: srv,
		Peers:  peers,
		Root:   root,
		Close:  func() { srv.Close() },
	}, nil
}

// AuthzResult is one measurement of the parallel check throughput.
type AuthzResult struct {
	Goroutines int
	Ops        uint64
	Elapsed    time.Duration
}

// OpsPerSec reports the aggregate check throughput.
func (r AuthzResult) OpsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// RunAuthz drives the server's check path from the given number of
// goroutines for the given number of operations per goroutine. Each
// goroutine acts as one principal (round-robin over the setup's peers),
// the contention pattern of many independent clients hitting one server.
func (a *AuthzSetup) RunAuthz(goroutines, opsPerG int) AuthzResult {
	var ops atomic.Uint64
	var wg sync.WaitGroup
	start := time.Now()
	for g := 0; g < goroutines; g++ {
		peer := a.Peers[g%len(a.Peers)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPerG; i++ {
				if err := a.Server.Check(peer, a.Root, core.PermR, "read"); err != nil {
					panic(fmt.Sprintf("authz bench: unexpected denial: %v", err))
				}
			}
			ops.Add(uint64(opsPerG))
		}()
	}
	wg.Wait()
	return AuthzResult{Goroutines: goroutines, Ops: ops.Load(), Elapsed: time.Since(start)}
}
