package bench

// The soak harness: the operations-plane proving ground. It runs a
// DisCFS server with write-behind, admission control and the metrics
// registry live, then churns many short-lived secure-channel sessions
// through mixed read/write/authorization traffic while injecting the
// failures the subsystem exists to absorb — a hot principal hammering
// past its token bucket, a key revoked mid-run, connections cut without
// goodbye — and finally drains the server gracefully. The result
// carries the aggregate throughput, server-side latency quantiles (read
// from the metrics histograms, not client timers), throttle counts, and
// the two leak indicators CI gates on: audit records dropped and pooled
// buffers still outstanding after teardown.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/bufpool"
	"discfs/internal/cfs"
	"discfs/internal/core"
	"discfs/internal/dedup"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/metrics"
)

// SoakOptions configures RunSoak; the zero value runs a short smoke.
type SoakOptions struct {
	// Duration is the measurement window (default 5s).
	Duration time.Duration
	// Workers is the number of concurrent session-churning goroutines
	// (default 32); each dials, performs a burst of mixed operations,
	// and disconnects, so sessions established over a run is a large
	// multiple of this.
	Workers int
	// HotWorkers share one "hot" principal whose admission budget is
	// capped at HotRPS (default 4 workers at 50 req/s): the soak's
	// noisy neighbor.
	HotWorkers int
	HotRPS     float64
	// CutEvery injects an abrupt connection cut (Client.Abort) instead
	// of an orderly close every n-th iteration per worker (default 7;
	// <0 disables).
	CutEvery int
	// Log receives progress lines; nil discards them.
	Log func(format string, args ...any)
}

// SoakResult is the harness's report card.
type SoakResult struct {
	Duration float64 `json:"duration_sec"`
	Workers  int     `json:"workers"`

	Sessions  uint64  `json:"sessions"` // secure-channel sessions established
	Ops       uint64  `json:"ops"`      // client operations completed OK
	OpsPerSec float64 `json:"ops_per_sec"`
	Errors    uint64  `json:"errors"` // unexpected client errors

	ErrSample  string  `json:"err_sample,omitempty"` // first unexpected error seen
	Throttled  uint64  `json:"throttled"`            // client ops refused with ErrThrottled
	HotOps     uint64  `json:"hot_ops"`              // hot principal's completed ops
	ColdOps    uint64  `json:"cold_ops"`             // everyone else's completed ops
	RevokedErr uint64  `json:"revoked_errs"`         // expected failures after the mid-run revocation
	Cuts       uint64  `json:"cuts"`                 // abrupt connection cuts injected
	ScrapeLen  int     `json:"scrape_bytes"`         // mid-run /metrics body size
	P50ms      float64 `json:"p50_ms"`               // server-side NFS latency, from the histograms
	P99ms      float64 `json:"p99_ms"`

	ServerThrottledRate uint64 `json:"server_throttled_rate"`
	ServerThrottledConc uint64 `json:"server_throttled_concurrency"`
	AuditDropped        uint64 `json:"audit_dropped"`       // leak gate: must be 0
	BufpoolOutstanding  int64  `json:"bufpool_outstanding"` // leak gate: must be 0 after teardown
	DrainErr            string `json:"drain_err,omitempty"`

	// Federated revocation churn phase: a 3-server feed mesh where every
	// revocation is applied on one server and must reach the other two
	// through the revocation feed while victims churn sessions against
	// those lagging servers.
	FedRevoked     int    `json:"fed_revoked"`            // victims fenced on every server
	FeedPropagated uint64 `json:"revocations_propagated"` // feed entries pushed to peers, summed: must be > 0
	FeedLag        uint64 `json:"feed_lag"`               // unacked feed entries at the end, summed: must be 0

	// Dedup churn phase: overwrite/truncate/unlink churn against the
	// content-addressed store with the background sweeper racing the
	// writers, then a refcount fsck after drain.
	DedupOps       uint64 `json:"dedup_ops"`          // churn operations completed
	DedupChunks    int64  `json:"dedup_chunks"`       // unique chunks surviving the final sweep
	DedupHits      uint64 `json:"dedup_hits"`         // writes absorbed as index mutations: must be > 0
	DedupReclaimed uint64 `json:"dedup_gc_reclaimed"` // chunks the sweeper reclaimed over the phase
	DedupRefLeaks  int    `json:"dedup_ref_leaks"`    // leak gate: must be 0 (fsck mismatches + post-sweep orphans)
}

// RunSoak builds a server, runs the churn, and tears everything down.
func RunSoak(opts SoakOptions) (*SoakResult, error) {
	if opts.Duration <= 0 {
		opts.Duration = 5 * time.Second
	}
	if opts.Workers <= 0 {
		opts.Workers = 32
	}
	if opts.HotWorkers <= 0 {
		opts.HotWorkers = 4
	}
	if opts.HotRPS <= 0 {
		opts.HotRPS = 50
	}
	if opts.CutEvery == 0 {
		opts.CutEvery = 7
	}
	logf := opts.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	bufBase := bufpool.Outstanding()

	backing, err := ffs.New(ffs.Config{BlockSize: 8192, NumBlocks: 1 << 16})
	if err != nil {
		return nil, err
	}
	ne, err := cfs.New(backing, "", false)
	if err != nil {
		return nil, err
	}
	adminKey := keynote.DeterministicKey("soak-admin")
	hotKey := keynote.DeterministicKey("soak-hot")
	victimKey := keynote.DeterministicKey("soak-victim")
	srv, err := core.NewServer(core.ServerConfig{
		Backing:     ne,
		ServerKey:   adminKey,
		WriteBehind: true,
		LimitOverrides: map[keynote.Principal]core.Limits{
			hotKey.Principal: {RPS: opts.HotRPS, InFlight: 8},
		},
		// Shape only briefly before refusing: the soak wants visible
		// ErrThrottled counts, not requests parked in the limiter.
		LimitMaxWait: 10 * time.Millisecond,
	})
	if err != nil {
		return nil, err
	}
	keys := make([]*keynote.KeyPair, opts.Workers)
	for i := range keys {
		switch {
		case i < opts.HotWorkers:
			keys[i] = hotKey
		case i == opts.HotWorkers:
			keys[i] = victimKey
		default:
			keys[i] = keynote.DeterministicKey(fmt.Sprintf("soak-user-%d", i))
		}
	}
	issued := map[keynote.Principal]bool{}
	for _, k := range keys {
		if issued[k.Principal] {
			continue
		}
		issued[k.Principal] = true
		if _, err := srv.IssueCredential(k.Principal, ne.Root().Ino, "RWX", "soak user"); err != nil {
			srv.Close()
			return nil, err
		}
	}
	addr, err := srv.Start()
	if err != nil {
		srv.Close()
		return nil, err
	}
	msrv, err := metrics.Serve("127.0.0.1:0", srv.Metrics(), func() error {
		if srv.Draining() {
			return fmt.Errorf("draining")
		}
		return nil
	})
	if err != nil {
		srv.Close()
		return nil, err
	}
	logf("soak: server %s, metrics http://%s/metrics, %d workers (%d hot @ %g rps) for %v",
		addr, msrv.Addr(), opts.Workers, opts.HotWorkers, opts.HotRPS, opts.Duration)

	var (
		ops, errs, throttled, sessions atomic.Uint64
		hotOps, coldOps, revokedErrs   atomic.Uint64
		cuts                           atomic.Uint64
		errSample                      atomic.Value // first unexpected error, for the report
	)
	unexpected := func(err error) {
		errs.Add(1)
		errSample.CompareAndSwap(nil, err.Error())
	}
	deadline := time.Now().Add(opts.Duration)
	revokeAt := time.Now().Add(opts.Duration / 2)
	var revoked atomic.Bool

	ctx := context.Background()
	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func(id int, key *keynote.KeyPair) {
			defer wg.Done()
			hot := key == hotKey
			victim := key == victimKey
			payload := []byte(strings.Repeat("soak-data ", 256)) // ~2.5 KiB
			for iter := 0; time.Now().Before(deadline); iter++ {
				c, err := core.Dial(ctx, addr, key)
				if err != nil {
					// Once revoked, any dial failure is expected: usually
					// ErrRevoked from the handshake, but a fence that cuts
					// the connection mid-negotiate surfaces as a bare
					// transport error.
					if victim && revoked.Load() {
						revokedErrs.Add(1)
						time.Sleep(10 * time.Millisecond)
						continue
					}
					unexpected(err)
					time.Sleep(time.Millisecond)
					continue
				}
				sessions.Add(1)
				path := fmt.Sprintf("/soak-w%d", id)
				for j := 0; j < 4 && time.Now().Before(deadline); j++ {
					var err error
					switch j % 4 {
					case 0:
						_, _, err = c.WriteFile(ctx, path, payload)
					case 1:
						_, err = c.ReadFile(ctx, path)
					case 2:
						_, err = c.List(ctx, "/")
					case 3:
						_, err = c.ResolvePath(ctx, path)
					}
					switch {
					case err == nil:
						ops.Add(1)
						if hot {
							hotOps.Add(1)
						} else {
							coldOps.Add(1)
						}
					case errors.Is(err, core.ErrThrottled):
						throttled.Add(1)
						time.Sleep(5 * time.Millisecond) // back off, as the taxonomy asks
					case victim && revoked.Load():
						revokedErrs.Add(1)
					case hot && errors.Is(err, core.ErrNotExist):
						// Cascade from a throttled WriteFile: the file was
						// never created, so the follow-up read misses. The
						// throttle itself is already counted above.
						throttled.Add(1)
					default:
						unexpected(err)
					}
				}
				if opts.CutEvery > 0 && iter%opts.CutEvery == opts.CutEvery-1 {
					cuts.Add(1)
					c.Abort()
				} else {
					c.Close()
				}
			}
		}(i, keys[i])
	}

	// Mid-run fault injection and observability checks, off the workers'
	// backs: revoke the victim's key through the admin RPC path (the
	// real revocation machinery, decision-cache purge included), then
	// scrape /metrics the way a collector would.
	var scrapeLen int
	var scrapeErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		time.Sleep(time.Until(revokeAt))
		admin, err := core.Dial(ctx, addr, adminKey)
		if err != nil {
			scrapeErr = fmt.Errorf("admin dial: %w", err)
			return
		}
		if _, err := admin.RevokeKey(ctx, victimKey.Principal); err != nil {
			scrapeErr = fmt.Errorf("revoke: %w", err)
		}
		revoked.Store(true)
		admin.Close()
		logf("soak: revoked victim key mid-run")
		resp, err := http.Get("http://" + msrv.Addr() + "/metrics")
		if err != nil {
			scrapeErr = fmt.Errorf("scrape: %w", err)
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		scrapeLen = len(body)
		if !strings.Contains(string(body), "discfs_nfs_latency_seconds_bucket") {
			scrapeErr = fmt.Errorf("scrape missing latency histogram (%d bytes)", scrapeLen)
		}
	}()

	wg.Wait()

	// Read the histograms before teardown, then drain gracefully.
	lat := srv.NFSLatency()
	rate, conc := srv.Throttled()
	st := srv.Stats()
	shCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	drainErr := srv.Shutdown(shCtx)
	cancel()
	msrv.Close()
	if scrapeErr != nil && drainErr == nil {
		drainErr = scrapeErr
	}

	// Federated revocation churn, after the single-server drain but
	// before the bufpool gate is sampled so a leak here fails CI too.
	fed, fedErr := runFedRevocationChurn(logf)
	if fedErr != nil && drainErr == nil {
		drainErr = fedErr
	}

	// Dedup churn, likewise inside the bufpool-gate window: the chunker
	// borrows pooled buffers, so a leak there must fail the same gate.
	ded, dedErr := runDedupChurn(logf)
	if dedErr != nil && drainErr == nil {
		drainErr = dedErr
	}

	res := &SoakResult{
		Duration:            opts.Duration.Seconds(),
		Workers:             opts.Workers,
		Sessions:            sessions.Load(),
		Ops:                 ops.Load(),
		OpsPerSec:           float64(ops.Load()) / opts.Duration.Seconds(),
		Errors:              errs.Load(),
		Throttled:           throttled.Load(),
		HotOps:              hotOps.Load(),
		ColdOps:             coldOps.Load(),
		RevokedErr:          revokedErrs.Load(),
		Cuts:                cuts.Load(),
		ScrapeLen:           scrapeLen,
		P50ms:               lat.Quantile(0.50) * 1000,
		P99ms:               lat.Quantile(0.99) * 1000,
		ServerThrottledRate: rate,
		ServerThrottledConc: conc,
		AuditDropped:        st.AuditDropped,
		BufpoolOutstanding:  bufpool.Outstanding() - bufBase,
		FedRevoked:          fed.revoked,
		FeedPropagated:      fed.propagated,
		FeedLag:             fed.lag,
		DedupOps:            ded.ops,
		DedupChunks:         ded.chunks,
		DedupHits:           ded.hits,
		DedupReclaimed:      ded.reclaimed,
		DedupRefLeaks:       ded.refLeaks,
	}
	if drainErr != nil {
		res.DrainErr = drainErr.Error()
	}
	if s, ok := errSample.Load().(string); ok {
		res.ErrSample = s
	}
	return res, nil
}

// fedChurnStats is what the federated revocation phase reports back.
type fedChurnStats struct {
	revoked    int    // victims fenced on every server
	propagated uint64 // feed entries pushed to peers, summed across servers
	lag        uint64 // unacked feed entries at the end, summed
}

// runFedRevocationChurn exercises the server-to-server revocation feed
// under load: three servers in a full feed mesh, a dozen victim
// principals churning sessions against servers 1 and 2, and an admin
// connected only to server 0 revoking every victim. The revocations
// must ride the feed to the other two servers, cut the victims there,
// and leave the feed fully acknowledged (lag 0) — the soak's
// convergence gate.
func runFedRevocationChurn(logf func(format string, args ...any)) (fedChurnStats, error) {
	const (
		nServers = 3
		nVictims = 12
		deadline = 15 * time.Second
	)
	var stats fedChurnStats
	ctx := context.Background()

	// Pre-listen so every server knows its peers' addresses up front.
	lns := make([]net.Listener, nServers)
	addrs := make([]string, nServers)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return stats, err
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}

	// One shared server key: each server automatically accepts its
	// peers' feed connections as admin, the same deployment shape the
	// -fed-peers flag documents.
	adminKey := keynote.DeterministicKey("soak-fed-admin")
	srvs := make([]*core.Server, 0, nServers)
	defer func() {
		for _, s := range srvs {
			s.Close()
		}
	}()
	victims := make([]*keynote.KeyPair, nVictims)
	for i := range victims {
		victims[i] = keynote.DeterministicKey(fmt.Sprintf("soak-fed-victim-%d", i))
	}
	for i := 0; i < nServers; i++ {
		backing, err := ffs.New(ffs.Config{BlockSize: 8192, NumBlocks: 1 << 14})
		if err != nil {
			return stats, err
		}
		ne, err := cfs.New(backing, "", false)
		if err != nil {
			return stats, err
		}
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		srv, err := core.NewServer(core.ServerConfig{
			Backing:   ne,
			ServerKey: adminKey,
			Peers:     peers,
		})
		if err != nil {
			return stats, err
		}
		srvs = append(srvs, srv)
		for _, v := range victims {
			if _, err := srv.IssueCredential(v.Principal, ne.Root().Ino, "RWX", "fed soak victim"); err != nil {
				return stats, err
			}
		}
		go srv.Serve(lns[i])
	}
	logf("soak: fed revocation churn across %v", addrs)

	// Victims churn sessions against the servers that will only learn
	// of their revocation through the feed. A goroutine exits once its
	// server refuses it with ErrRevoked.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var churnErrs atomic.Uint64
	for _, v := range victims {
		for _, si := range []int{1, 2} {
			wg.Add(1)
			go func(key *keynote.KeyPair, addr string) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					c, err := core.Dial(ctx, addr, key)
					if err != nil {
						if errors.Is(err, core.ErrRevoked) {
							return // fenced: done
						}
						churnErrs.Add(1)
						time.Sleep(5 * time.Millisecond)
						continue
					}
					for {
						if _, err := c.List(ctx, "/"); err != nil {
							break // cut or revoked: redial decides which
						}
						select {
						case <-stop:
							c.Close()
							return
						default:
						}
						time.Sleep(time.Millisecond)
					}
					c.Close()
				}
			}(v, addrs[si])
		}
	}

	// The admin talks to server 0 only; everything else is the feed's
	// problem.
	revokeAll := func() error {
		admin, err := core.Dial(ctx, addrs[0], adminKey)
		if err != nil {
			return fmt.Errorf("fed churn: admin dial: %w", err)
		}
		defer admin.Close()
		for _, v := range victims {
			if _, err := admin.RevokeKey(ctx, v.Principal); err != nil {
				return fmt.Errorf("fed churn: revoke %s: %w", v.Principal, err)
			}
		}
		return nil
	}
	err := revokeAll()

	if err == nil {
		// Convergence: every server must fence every victim, then the
		// feed must drain to zero unacknowledged entries.
		limit := time.Now().Add(deadline)
		for time.Now().Before(limit) {
			n := 0
			for _, v := range victims {
				all := true
				for _, srv := range srvs {
					if !srv.Session().Revoked(v.Principal) {
						all = false
						break
					}
				}
				if all {
					n++
				}
			}
			stats.revoked = n
			if n == nVictims {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if stats.revoked != nVictims {
			err = fmt.Errorf("fed churn: only %d/%d victims fenced on every server within %v",
				stats.revoked, nVictims, deadline)
		}
		for time.Now().Before(limit) {
			var lag uint64
			for _, srv := range srvs {
				l, _, _ := srv.RevocationFeed()
				lag += l
			}
			stats.lag = lag
			if lag == 0 {
				break
			}
			time.Sleep(20 * time.Millisecond)
		}
		if err == nil && stats.lag != 0 {
			err = fmt.Errorf("fed churn: feed lag still %d after %v", stats.lag, deadline)
		}
	}

	close(stop)
	wg.Wait()
	for _, srv := range srvs {
		_, p, _ := srv.RevocationFeed()
		stats.propagated += p
	}
	logf("soak: fed churn: %d/%d victims fenced, %d feed entries propagated, lag %d, %d transient churn errors",
		stats.revoked, nVictims, stats.propagated, stats.lag, churnErrs.Load())
	return stats, err
}

// dedupChurnStats is what the dedup churn phase reports back.
type dedupChurnStats struct {
	ops       uint64 // churn operations completed
	chunks    int64  // unique chunks surviving the final sweep
	hits      uint64 // writes absorbed as pure index mutations
	reclaimed uint64 // chunks the sweeper reclaimed over the phase
	refLeaks  int    // fsck mismatches + post-sweep orphans: must be 0
}

// runDedupChurn exercises the content-addressed store's refcount
// machinery under the kind of churn the steady-state server sees:
// several clients rewriting, truncating and unlinking duplicate-heavy
// files through the full write-behind stack while the background
// sweeper races them on a short interval. After a graceful drain (which
// closes the dedup layer, final sweep included) it recomputes every
// chunk's reference count from the on-disk manifests and compares with
// the live index — any disagreement, missing chunk, or chunk the
// sweeper should have reclaimed counts as a leak and fails CI.
func runDedupChurn(logf func(format string, args ...any)) (dedupChurnStats, error) {
	const (
		nWorkers    = 6
		nIters      = 10
		segment     = 64 << 10
		segsPerFile = 6
	)
	var stats dedupChurnStats
	ctx := context.Background()

	backing, err := ffs.New(ffs.Config{BlockSize: 8192, NumBlocks: 1 << 15})
	if err != nil {
		return stats, err
	}
	dd, err := dedup.Wrap(backing,
		dedup.WithAvgChunkSize(32<<10),
		// Aggressive sweeping on purpose: the GC's quiesce handshake
		// must hold up with writers constantly in flight.
		dedup.WithSweepInterval(25*time.Millisecond))
	if err != nil {
		return stats, err
	}
	adminKey := keynote.DeterministicKey("soak-dedup-admin")
	srv, err := core.NewServer(core.ServerConfig{
		Backing:     dd,
		ServerKey:   adminKey,
		WriteBehind: true,
		Dedup:       true,
	})
	if err != nil {
		return stats, err
	}
	addr, err := srv.Start()
	if err != nil {
		srv.Close()
		return stats, err
	}
	logf("soak: dedup churn: %d workers x %d iterations against %s", nWorkers, nIters, addr)

	// The shared pool: segments every worker rewrites, so cross-file
	// refcounts climb well past one and every unlink is a decref, not
	// a delete.
	shared := make([][]byte, 3)
	for i := range shared {
		shared[i] = make([]byte, segment)
		dedupFill(shared[i], uint64(0xC0FFEE+i))
	}

	var ops atomic.Uint64
	errs := make([]error, nWorkers)
	var wg sync.WaitGroup
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := core.Dial(ctx, addr, adminKey)
			if err != nil {
				errs[w] = fmt.Errorf("dedup churn: dial: %w", err)
				return
			}
			defer c.Close()
			unique := make([]byte, segment)
			fail := func(step string, err error) {
				errs[w] = fmt.Errorf("dedup churn worker %d: %s: %w", w, step, err)
			}
			for iter := 0; iter < nIters; iter++ {
				// Three filenames per worker, cycled, so every generation
				// overwrites a live manifest rather than starting fresh.
				name := fmt.Sprintf("dedup-churn-w%d-%d", w, iter%3)
				f, err := c.Open(ctx, "/"+name, os.O_CREATE|os.O_RDWR|os.O_TRUNC)
				if err != nil {
					fail("open", err)
					return
				}
				for s := 0; s < segsPerFile; s++ {
					seg := shared[(w+s)%len(shared)]
					if s%3 == 2 { // one unique segment in three
						dedupFill(unique, uint64(w)<<40|uint64(iter)<<20|uint64(s))
						seg = unique
					}
					if _, err := f.Write(seg); err != nil {
						fail("write", err)
						f.Close()
						return
					}
				}
				if err := f.Sync(); err != nil {
					fail("sync", err)
					f.Close()
					return
				}
				switch iter % 3 {
				case 1: // shrink: every truncated-away chunk is a decref
					if err := f.Truncate(2 * segment); err != nil {
						fail("truncate", err)
						f.Close()
						return
					}
				case 2: // unaligned overwrite: shifts chunk boundaries mid-file
					if _, err := f.WriteAt(shared[w%len(shared)], segment/2); err != nil {
						fail("overwrite", err)
						f.Close()
						return
					}
				}
				if err := f.Sync(); err != nil {
					fail("resync", err)
					f.Close()
					return
				}
				if err := f.Close(); err != nil {
					fail("close", err)
					return
				}
				if iter%4 == 3 { // unlink: the file's chunk refs must drop and GC
					if err := c.NFS().Remove(ctx, c.Root(), name); err != nil {
						fail("remove", err)
						return
					}
				}
				ops.Add(1)
			}
		}(w)
	}
	wg.Wait()
	err = nil
	for _, e := range errs {
		if e != nil {
			err = e
			break
		}
	}

	// Graceful drain: Shutdown flushes the gather plane and closes the
	// dedup layer, whose shutdown path runs a final unlinking sweep.
	shCtx, cancel := context.WithTimeout(ctx, 10*time.Second)
	if derr := srv.Shutdown(shCtx); derr != nil && err == nil {
		err = fmt.Errorf("dedup churn: drain: %w", derr)
	}
	cancel()

	// The fsck: recompute every refcount from the on-disk manifests and
	// compare with the live index. After the shutdown sweep there must
	// be no orphans either — a zero-ref chunk still on disk means the
	// sweeper lost track of it.
	v, verr := dd.Verify()
	if verr != nil && err == nil {
		err = fmt.Errorf("dedup churn: verify: %w", verr)
	}
	st := dd.Stats()
	stats.ops = ops.Load()
	stats.chunks = st.Chunks
	stats.hits = st.Hits
	stats.reclaimed = st.GCChunks
	stats.refLeaks = v.RefMismatch + v.MissingChunk + v.Orphans
	logf("soak: dedup churn: %d ops, %d chunks live, %d hits, %d reclaimed, %d ref leaks",
		stats.ops, stats.chunks, stats.hits, stats.reclaimed, stats.refLeaks)
	if err == nil && stats.hits == 0 {
		err = fmt.Errorf("dedup churn: duplicate-heavy workload produced zero dedup hits")
	}
	return stats, err
}
