package bench

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// Differential testing: the same pseudo-random operation sequence is
// applied to the local FFS and to the full remote stacks (CFS-NE and
// DisCFS); every operation must produce the same outcome (success with
// equal data/attributes, or the same error class) on all three. This
// checks the NFS protocol layer, the CFS pass-through, the policy layer
// (with a full-access user) and the RemoteFS adapter against the local
// semantics in one sweep.

// diffOp applies one operation and returns a comparable outcome string.
type diffOp func(fs vfs.FS, state *diffState) string

// diffState tracks the namespace the generator knows about.
type diffState struct {
	dirs  []string // paths relative to root, "" = root
	files []string
	rng   *rand.Rand
}

// resolve walks a path, returning the handle or an error string.
func resolve(fs vfs.FS, path string) (vfs.Handle, string) {
	cur := fs.Root()
	if path == "" {
		return cur, ""
	}
	for _, part := range splitPath(path) {
		a, err := fs.Lookup(cur, part)
		if err != nil {
			return vfs.Handle{}, errClass(err)
		}
		cur = a.Handle
	}
	return cur, ""
}

func splitPath(p string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(p); i++ {
		if i == len(p) || p[i] == '/' {
			if i > start {
				out = append(out, p[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// errClass collapses equivalent local and remote errors to one label.
func errClass(err error) string {
	if err == nil {
		return "ok"
	}
	return "err:" + nfs.MapError(err).String()
}

func opCreate(name string) diffOp {
	return func(fs vfs.FS, st *diffState) string {
		dir := st.dirs[st.rng.Intn(len(st.dirs))]
		h, ec := resolve(fs, dir)
		if ec != "" {
			return "resolve-" + ec
		}
		_, err := fs.Create(h, name, 0o644)
		return fmt.Sprintf("create(%s/%s)=%s", dir, name, errClass(err))
	}
}

func opWrite(seed int64) diffOp {
	return func(fs vfs.FS, st *diffState) string {
		if len(st.files) == 0 {
			return "nofiles"
		}
		path := st.files[st.rng.Intn(len(st.files))]
		h, ec := resolve(fs, path)
		if ec != "" {
			return "resolve-" + ec
		}
		r := rand.New(rand.NewSource(seed))
		data := make([]byte, r.Intn(20000))
		r.Read(data)
		off := uint64(r.Intn(30000))
		_, err := fs.Write(h, off, data)
		return fmt.Sprintf("write(%s,%d,%d)=%s", path, off, len(data), errClass(err))
	}
}

func opReadBack(seed int64) diffOp {
	return func(fs vfs.FS, st *diffState) string {
		if len(st.files) == 0 {
			return "nofiles"
		}
		path := st.files[st.rng.Intn(len(st.files))]
		h, ec := resolve(fs, path)
		if ec != "" {
			return "resolve-" + ec
		}
		r := rand.New(rand.NewSource(seed))
		off := uint64(r.Intn(30000))
		n := uint32(r.Intn(20000))
		data, eof, err := fs.Read(h, off, n)
		if err != nil {
			return "read=" + errClass(err)
		}
		sum := 0
		for _, b := range data {
			sum += int(b)
		}
		return fmt.Sprintf("read(%s,%d,%d)=%d:%d:%v", path, off, n, len(data), sum, eof)
	}
}

func opMkdir(name string) diffOp {
	return func(fs vfs.FS, st *diffState) string {
		dir := st.dirs[st.rng.Intn(len(st.dirs))]
		h, ec := resolve(fs, dir)
		if ec != "" {
			return "resolve-" + ec
		}
		_, err := fs.Mkdir(h, name, 0o755)
		return fmt.Sprintf("mkdir(%s/%s)=%s", dir, name, errClass(err))
	}
}

func opRemove() diffOp {
	return func(fs vfs.FS, st *diffState) string {
		if len(st.files) == 0 {
			return "nofiles"
		}
		path := st.files[st.rng.Intn(len(st.files))]
		parts := splitPath(path)
		dirPath := ""
		if len(parts) > 1 {
			dirPath = path[:len(path)-len(parts[len(parts)-1])-1]
		}
		h, ec := resolve(fs, dirPath)
		if ec != "" {
			return "resolve-" + ec
		}
		err := fs.Remove(h, parts[len(parts)-1])
		return fmt.Sprintf("remove(%s)=%s", path, errClass(err))
	}
}

func opList() diffOp {
	return func(fs vfs.FS, st *diffState) string {
		dir := st.dirs[st.rng.Intn(len(st.dirs))]
		h, ec := resolve(fs, dir)
		if ec != "" {
			return "resolve-" + ec
		}
		ents, err := fs.ReadDir(h)
		if err != nil {
			return "readdir=" + errClass(err)
		}
		names := make([]string, 0, len(ents))
		for _, e := range ents {
			names = append(names, e.Name)
		}
		// Order-insensitive digest.
		sortStrings(names)
		return fmt.Sprintf("readdir(%s)=%v", dir, names)
	}
}

func opAttr() diffOp {
	return func(fs vfs.FS, st *diffState) string {
		if len(st.files) == 0 {
			return "nofiles"
		}
		path := st.files[st.rng.Intn(len(st.files))]
		h, ec := resolve(fs, path)
		if ec != "" {
			return "resolve-" + ec
		}
		a, err := fs.GetAttr(h)
		if err != nil {
			return "getattr=" + errClass(err)
		}
		return fmt.Sprintf("getattr(%s)=type%d:size%d:nlink%d", path, a.Type, a.Size, a.Nlink)
	}
}

func opTruncate(seed int64) diffOp {
	return func(fs vfs.FS, st *diffState) string {
		if len(st.files) == 0 {
			return "nofiles"
		}
		path := st.files[st.rng.Intn(len(st.files))]
		h, ec := resolve(fs, path)
		if ec != "" {
			return "resolve-" + ec
		}
		r := rand.New(rand.NewSource(seed))
		sz := uint64(r.Intn(25000))
		_, err := fs.SetAttr(h, vfs.SetAttr{Size: &sz})
		return fmt.Sprintf("trunc(%s,%d)=%s", path, sz, errClass(err))
	}
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// TestDifferentialLocalVsRemote runs the generated op sequence against
// all three stacks and requires identical outcomes at every step.
func TestDifferentialLocalVsRemote(t *testing.T) {
	setups, err := AllSetups()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range setups {
		defer s.Close()
	}

	// Per-stack generator state; identical seeds keep them in lockstep.
	states := make([]*diffState, len(setups))
	for i := range states {
		states[i] = &diffState{dirs: []string{""}, rng: rand.New(rand.NewSource(77))}
	}

	// Deterministic op schedule.
	sched := rand.New(rand.NewSource(42))
	nameCtr := 0
	for step := 0; step < 400; step++ {
		var op diffOp
		var track func(st *diffState)
		switch k := sched.Intn(10); {
		case k < 3:
			nameCtr++
			name := fmt.Sprintf("f%03d", nameCtr)
			op = opCreate(name)
			track = func(st *diffState) {
				dir := st.dirs[len(st.dirs)-1] // approximate; outcomes matter, not tracking
				_ = dir
			}
			// Track optimistically in all states below.
		case k < 5:
			op = opWrite(sched.Int63())
		case k < 7:
			op = opReadBack(sched.Int63())
		case k == 7:
			nameCtr++
			op = opMkdir(fmt.Sprintf("d%03d", nameCtr))
		case k == 8:
			op = opList()
		default:
			op = opAttr()
		}
		_ = track

		var first string
		for i, s := range setups {
			// Lockstep rngs: draw identical random choices.
			got := op(s.FS, states[i])
			if i == 0 {
				first = got
				continue
			}
			if got != first {
				t.Fatalf("step %d: %s diverges from FFS:\n  FFS:    %s\n  %s: %s",
					step, s.Name, first, s.Name, got)
			}
		}
		// Post-step: keep the generators' namespace view in sync by
		// replaying bookkeeping on the first state's outcome only.
		if len(first) > 7 && first[:7] == "create(" && first[len(first)-3:] == "=ok" {
			path := first[7 : len(first)-4]
			path = trimLeadingSlash(path)
			for _, st := range states {
				st.files = append(st.files, path)
			}
		}
		if len(first) > 6 && first[:6] == "mkdir(" && first[len(first)-3:] == "=ok" {
			path := trimLeadingSlash(first[6 : len(first)-4])
			for _, st := range states {
				st.dirs = append(st.dirs, path)
			}
		}
		if len(first) > 7 && first[:7] == "remove(" && first[len(first)-3:] == "=ok" {
			path := first[7 : len(first)-4]
			for _, st := range states {
				for j, f := range st.files {
					if f == path {
						st.files = append(st.files[:j], st.files[j+1:]...)
						break
					}
				}
			}
		}
	}
	// Final content comparison: every tracked file byte-identical.
	st := states[0]
	for _, path := range st.files {
		var ref []byte
		for i, s := range setups {
			h, ec := resolve(s.FS, path)
			if ec != "" {
				t.Fatalf("final resolve %s on %s: %s", path, s.Name, ec)
			}
			a, err := s.FS.GetAttr(h)
			if err != nil {
				t.Fatalf("final getattr %s on %s: %v", path, s.Name, err)
			}
			data, _, err := s.FS.Read(h, 0, uint32(a.Size))
			if err != nil {
				t.Fatalf("final read %s on %s: %v", path, s.Name, err)
			}
			if i == 0 {
				ref = data
			} else if !bytes.Equal(data, ref) {
				t.Fatalf("final content of %s differs on %s (%d vs %d bytes)",
					path, s.Name, len(data), len(ref))
			}
		}
	}
}

func trimLeadingSlash(p string) string {
	for len(p) > 0 && p[0] == '/' {
		p = p[1:]
	}
	return p
}
