package bench

import (
	"context"
	"io"
	"os"
	"sync"

	"discfs/internal/core"
	"discfs/internal/vfs"
)

// ClientFS adapts a DisCFS core.Client to vfs.FS with file I/O routed
// through core.File — and therefore through the client-side data cache
// (readahead + write-behind) when the client has it enabled. Namespace
// operations go straight to the NFS client. It plays the role the
// kernel VFS + page cache play above a real NFS mount, so the Bonnie
// workloads exercise the cached path the way applications would.
type ClientFS struct {
	c   *core.Client
	ctx context.Context

	mu    sync.Mutex
	files map[vfs.Handle]*core.File
}

// NewClientFS wraps an attached client.
func NewClientFS(c *core.Client) *ClientFS {
	return &ClientFS{c: c, ctx: context.Background(), files: make(map[vfs.Handle]*core.File)}
}

var _ vfs.FS = (*ClientFS)(nil)

// file returns the cached open File for h, opening it read-write on
// first use.
func (r *ClientFS) file(h vfs.Handle) (*core.File, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.files[h]; ok {
		return f, nil
	}
	f, err := r.c.OpenHandle(r.ctx, h, os.O_RDWR)
	if err != nil {
		return nil, err
	}
	r.files[h] = f
	return f, nil
}

// closeFile syncs and forgets the open File on h, if any.
func (r *ClientFS) closeFile(h vfs.Handle) error {
	r.mu.Lock()
	f := r.files[h]
	delete(r.files, h)
	r.mu.Unlock()
	if f == nil {
		return nil
	}
	return f.Close()
}

// SyncAll drains the write-behind queue of every open File and runs the
// COMMIT durability barrier — the end-of-measurement barrier of the
// parallel write benchmark.
func (r *ClientFS) SyncAll() error {
	r.mu.Lock()
	files := make([]*core.File, 0, len(r.files))
	for _, f := range r.files {
		files = append(files, f)
	}
	r.mu.Unlock()
	var err error
	for _, f := range files {
		if e := f.Sync(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Close drains and closes every open File.
func (r *ClientFS) Close() error {
	r.mu.Lock()
	files := r.files
	r.files = make(map[vfs.Handle]*core.File)
	r.mu.Unlock()
	var err error
	for _, f := range files {
		if e := f.Close(); e != nil && err == nil {
			err = e
		}
	}
	return err
}

// Root implements vfs.FS.
func (r *ClientFS) Root() vfs.Handle { return r.c.Root() }

// GetAttr implements vfs.FS; the size reflects unflushed local writes,
// as stat on a kernel page cache does.
func (r *ClientFS) GetAttr(h vfs.Handle) (vfs.Attr, error) {
	a, err := r.c.NFS().GetAttr(r.ctx, h)
	if err != nil {
		return a, err
	}
	r.mu.Lock()
	f := r.files[h]
	r.mu.Unlock()
	if f != nil {
		if sz := f.Size(); sz > int64(a.Size) {
			a.Size = uint64(sz)
		}
	}
	return a, nil
}

// SetAttr implements vfs.FS; size changes on an open file go through
// File.Truncate so buffered writes drain first.
func (r *ClientFS) SetAttr(h vfs.Handle, s vfs.SetAttr) (vfs.Attr, error) {
	r.mu.Lock()
	f := r.files[h]
	r.mu.Unlock()
	if s.Size != nil && f != nil {
		if err := f.Truncate(int64(*s.Size)); err != nil {
			return vfs.Attr{}, err
		}
		rest := s
		rest.Size = nil
		if rest == (vfs.SetAttr{}) {
			return r.GetAttr(h)
		}
		s = rest
	}
	return remoteSetAttr(r.ctx, r.c.NFS(), h, s)
}

// Read implements vfs.FS through the cached File.
func (r *ClientFS) Read(h vfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	f, err := r.file(h)
	if err != nil {
		return nil, false, err
	}
	buf := make([]byte, count)
	n, err := f.ReadAt(buf, int64(off))
	if err == io.EOF {
		return buf[:n], true, nil
	}
	return buf[:n], false, err
}

// Write implements vfs.FS through the cached File (write-behind).
func (r *ClientFS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	f, err := r.file(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	if _, err := f.WriteAt(data, int64(off)); err != nil {
		return vfs.Attr{}, err
	}
	return vfs.Attr{Handle: h, Type: vfs.TypeRegular, Size: uint64(f.Size())}, nil
}

// Lookup implements vfs.FS.
func (r *ClientFS) Lookup(dir vfs.Handle, name string) (vfs.Attr, error) {
	return r.c.NFS().Lookup(r.ctx, dir, name)
}

// Create implements vfs.FS.
func (r *ClientFS) Create(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	return r.c.NFS().Create(r.ctx, dir, name, mode)
}

// Remove implements vfs.FS, draining and closing any open File on the
// victim first.
func (r *ClientFS) Remove(dir vfs.Handle, name string) error {
	if a, err := r.c.NFS().Lookup(r.ctx, dir, name); err == nil {
		if err := r.closeFile(a.Handle); err != nil {
			return err
		}
	}
	return r.c.NFS().Remove(r.ctx, dir, name)
}

// Rename implements vfs.FS.
func (r *ClientFS) Rename(fd vfs.Handle, fn string, td vfs.Handle, tn string) error {
	return r.c.NFS().Rename(r.ctx, fd, fn, td, tn)
}

// Mkdir implements vfs.FS.
func (r *ClientFS) Mkdir(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	return r.c.NFS().Mkdir(r.ctx, dir, name, mode)
}

// Rmdir implements vfs.FS.
func (r *ClientFS) Rmdir(dir vfs.Handle, name string) error {
	return r.c.NFS().Rmdir(r.ctx, dir, name)
}

// ReadDir implements vfs.FS.
func (r *ClientFS) ReadDir(dir vfs.Handle) ([]vfs.DirEntry, error) {
	ents, err := r.c.NFS().ReadDirAll(r.ctx, dir)
	if err != nil {
		return nil, err
	}
	out := make([]vfs.DirEntry, 0, len(ents))
	for _, e := range ents {
		out = append(out, vfs.DirEntry{Name: e.Name, Handle: vfs.Handle{Ino: uint64(e.FileID)}})
	}
	return out, nil
}

// Symlink implements vfs.FS.
func (r *ClientFS) Symlink(dir vfs.Handle, name, target string, mode uint32) (vfs.Attr, error) {
	if err := r.c.NFS().Symlink(r.ctx, dir, name, target, mode); err != nil {
		return vfs.Attr{}, err
	}
	return r.c.NFS().Lookup(r.ctx, dir, name)
}

// Readlink implements vfs.FS.
func (r *ClientFS) Readlink(h vfs.Handle) (string, error) {
	return r.c.NFS().Readlink(r.ctx, h)
}

// Link implements vfs.FS.
func (r *ClientFS) Link(dir vfs.Handle, name string, target vfs.Handle) (vfs.Attr, error) {
	if err := r.c.NFS().Link(r.ctx, target, dir, name); err != nil {
		return vfs.Attr{}, err
	}
	return r.c.NFS().Lookup(r.ctx, dir, name)
}

// StatFS implements vfs.FS.
func (r *ClientFS) StatFS() (vfs.StatFS, error) {
	st, err := r.c.NFS().StatFS(r.ctx, r.c.Root())
	if err != nil {
		return vfs.StatFS{}, err
	}
	return vfs.StatFS{
		BlockSize:   st.BSize,
		TotalBlocks: uint64(st.Blocks),
		FreeBlocks:  uint64(st.BFree),
		AvailBlocks: uint64(st.BAvail),
	}, nil
}
