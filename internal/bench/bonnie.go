package bench

import (
	"fmt"
	"time"

	"discfs/internal/vfs"
)

// Bonnie is a port of Tim Bray's Bonnie benchmark (the paper's Figures
// 7-11): five sequential phases over one large file.
//
// Per-character phases go through a stdio-like 8 KiB buffer, exactly as
// Bonnie's putc/getc do — the per-character cost is the user-space loop,
// while the filesystem sees buffer-sized transfers.

// ChunkSize is the I/O unit of the block phases and the stdio buffer of
// the char phases (Bonnie used the stdio default; 8 KiB matches both
// 2001-era stdio and the NFSv2 transfer limit).
const ChunkSize = 8192

// BonnieResult holds throughputs in KiB/s for the five phases, in the
// paper's figure order.
type BonnieResult struct {
	OutputCharKBps  float64 // Figure 7: Sequential Output (Char)
	OutputBlockKBps float64 // Figure 8: Sequential Output (Block)
	RewriteKBps     float64 // Figure 9: Sequential Output (Rewrite)
	InputCharKBps   float64 // Figure 10: Sequential Input (Char)
	InputBlockKBps  float64 // Figure 11: Sequential Input (Block)
}

// kbps converts (bytes, duration) to KiB/s.
func kbps(bytes int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / 1024 / d.Seconds()
}

// bonnieFile creates (or truncates) the benchmark file.
func bonnieFile(fs vfs.FS, dir vfs.Handle, name string) (vfs.Handle, error) {
	if a, err := fs.Lookup(dir, name); err == nil {
		zero := uint64(0)
		if _, err := fs.SetAttr(a.Handle, vfs.SetAttr{Size: &zero}); err != nil {
			return vfs.Handle{}, err
		}
		return a.Handle, nil
	}
	a, err := fs.Create(dir, name, 0o644)
	if err != nil {
		return vfs.Handle{}, err
	}
	return a.Handle, nil
}

// OutputChar writes size bytes one character at a time through the
// stdio-style buffer (Figure 7's workload).
func OutputChar(fs vfs.FS, h vfs.Handle, size int64) error {
	buf := make([]byte, 0, ChunkSize)
	var off uint64
	for i := int64(0); i < size; i++ {
		// putc(i & 0x7f): one call per byte, buffered.
		buf = append(buf, byte(i&0x7f))
		if len(buf) == ChunkSize {
			if _, err := fs.Write(h, off, buf); err != nil {
				return err
			}
			off += uint64(len(buf))
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := fs.Write(h, off, buf); err != nil {
			return err
		}
	}
	return nil
}

// OutputBlock writes size bytes in ChunkSize blocks (Figure 8).
func OutputBlock(fs vfs.FS, h vfs.Handle, size int64) error {
	block := make([]byte, ChunkSize)
	for i := range block {
		block[i] = byte(i)
	}
	for off := int64(0); off < size; off += ChunkSize {
		n := int64(ChunkSize)
		if off+n > size {
			n = size - off
		}
		if _, err := fs.Write(h, uint64(off), block[:n]); err != nil {
			return err
		}
	}
	return nil
}

// Rewrite reads each block, dirties one byte, and writes it back
// (Figure 9) — Bonnie's read/modify/write pass.
func Rewrite(fs vfs.FS, h vfs.Handle, size int64) error {
	for off := int64(0); off < size; off += ChunkSize {
		n := uint32(ChunkSize)
		if off+int64(n) > size {
			n = uint32(size - off)
		}
		data, _, err := fs.Read(h, uint64(off), n)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			break
		}
		data[0] ^= 1
		if _, err := fs.Write(h, uint64(off), data); err != nil {
			return err
		}
	}
	return nil
}

// InputChar reads the file one character at a time through the buffer
// (Figure 10).
func InputChar(fs vfs.FS, h vfs.Handle, size int64) error {
	var sum byte
	for off := int64(0); off < size; off += ChunkSize {
		n := uint32(ChunkSize)
		if off+int64(n) > size {
			n = uint32(size - off)
		}
		data, _, err := fs.Read(h, uint64(off), n)
		if err != nil {
			return err
		}
		// getc(): consume byte by byte so the per-character loop cost is
		// paid, as in Bonnie.
		for _, b := range data {
			sum += b
		}
		if len(data) == 0 {
			break
		}
	}
	_ = sum
	return nil
}

// InputBlock reads the file in ChunkSize blocks (Figure 11).
func InputBlock(fs vfs.FS, h vfs.Handle, size int64) error {
	for off := int64(0); off < size; off += ChunkSize {
		n := uint32(ChunkSize)
		if off+int64(n) > size {
			n = uint32(size - off)
		}
		data, _, err := fs.Read(h, uint64(off), n)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			break
		}
	}
	return nil
}

// Bonnie runs all five phases on a fresh file under dir and reports
// throughputs. The paper used a 100 MB file on 2001 hardware; size
// scales it.
func Bonnie(fs vfs.FS, dir vfs.Handle, size int64) (BonnieResult, error) {
	h, err := bonnieFile(fs, dir, "bonnie.scratch")
	if err != nil {
		return BonnieResult{}, fmt.Errorf("bench: creating scratch file: %w", err)
	}
	var res BonnieResult

	start := time.Now()
	if err := OutputChar(fs, h, size); err != nil {
		return res, fmt.Errorf("bench: output char: %w", err)
	}
	res.OutputCharKBps = kbps(size, time.Since(start))

	start = time.Now()
	if err := OutputBlock(fs, h, size); err != nil {
		return res, fmt.Errorf("bench: output block: %w", err)
	}
	res.OutputBlockKBps = kbps(size, time.Since(start))

	start = time.Now()
	if err := Rewrite(fs, h, size); err != nil {
		return res, fmt.Errorf("bench: rewrite: %w", err)
	}
	res.RewriteKBps = kbps(size, time.Since(start))

	start = time.Now()
	if err := InputChar(fs, h, size); err != nil {
		return res, fmt.Errorf("bench: input char: %w", err)
	}
	res.InputCharKBps = kbps(size, time.Since(start))

	start = time.Now()
	if err := InputBlock(fs, h, size); err != nil {
		return res, fmt.Errorf("bench: input block: %w", err)
	}
	res.InputBlockKBps = kbps(size, time.Since(start))

	if err := fs.Remove(dir, "bonnie.scratch"); err != nil {
		return res, fmt.Errorf("bench: cleanup: %w", err)
	}
	return res, nil
}

// StatTree walks the tree under root depth-first, stat'ing every entry
// through the vfs interface: one ReadDir per directory and one Lookup
// per name — the find / ls -lR metadata workload that complements
// Bonnie's data plane. Over a RemoteFS on a raw NFS client this costs
// one RPC per name, which makes it exactly the per-name baseline the
// batched READDIRPLUS walk (WalkStatPlus) is measured against.
func StatTree(fs vfs.FS, root vfs.Handle) (files, dirs int, bytes int64, err error) {
	ents, err := fs.ReadDir(root)
	if err != nil {
		return 0, 0, 0, err
	}
	for _, e := range ents {
		a, err := fs.Lookup(root, e.Name)
		if err != nil {
			return files, dirs, bytes, err
		}
		if a.Type == vfs.TypeDir {
			dirs++
			f, d, b, err := StatTree(fs, a.Handle)
			files, dirs, bytes = files+f, dirs+d, bytes+b
			if err != nil {
				return files, dirs, bytes, err
			}
			continue
		}
		files++
		bytes += int64(a.Size)
	}
	return files, dirs, bytes, nil
}
