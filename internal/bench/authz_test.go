package bench

import (
	"testing"
)

// The authorization micro-benchmark (Fig 8/9-style): parallel compliance
// checks against one server, N distinct principals. Cached exercises the
// sharded decision cache; Uncached forces a full KeyNote evaluation per
// check (cache disabled).
//
//	go test ./internal/bench -bench=Authz -cpu=8

func benchAuthz(b *testing.B, goroutines, cacheSize int) {
	b.Helper()
	a, err := NewAuthzSetup(32, cacheSize, 96)
	if err != nil {
		b.Fatal(err)
	}
	defer a.Close()
	// Warm: every (peer, handle) decision computed once.
	a.RunAuthz(goroutines, 2)
	b.ResetTimer()
	per := b.N/goroutines + 1
	res := a.RunAuthz(goroutines, per)
	b.StopTimer()
	b.ReportMetric(res.OpsPerSec(), "checks/s")
}

func BenchmarkAuthzCached1(b *testing.B)   { benchAuthz(b, 1, 128) }
func BenchmarkAuthzCached4(b *testing.B)   { benchAuthz(b, 4, 128) }
func BenchmarkAuthzCached8(b *testing.B)   { benchAuthz(b, 8, 128) }
func BenchmarkAuthzUncached1(b *testing.B) { benchAuthz(b, 1, -1) }
func BenchmarkAuthzUncached4(b *testing.B) { benchAuthz(b, 4, -1) }
func BenchmarkAuthzUncached8(b *testing.B) { benchAuthz(b, 8, -1) }

func TestAuthzSetup(t *testing.T) {
	a, err := NewAuthzSetup(4, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	res := a.RunAuthz(4, 50)
	if res.Ops != 200 {
		t.Fatalf("ops = %d, want 200", res.Ops)
	}
	st := a.Server.Stats()
	if st.Decisions != 200 {
		t.Errorf("decisions = %d, want 200", st.Decisions)
	}
	if st.CacheHits == 0 {
		t.Error("no cache hits in cached run")
	}
	if st.Denials != 0 {
		t.Errorf("denials = %d, want 0", st.Denials)
	}
}
