package bench

import (
	"testing"
)

// TestStreamSpeedup is the data-plane acceptance measure: negotiated
// 512 KiB transfers must deliver at least 3x the aggregate sequential
// streaming throughput of the v2 8 KiB baseline on the uncached path
// (every byte is one synchronous RPC, so the per-operation saving is
// isolated from cache pipelining).
func TestStreamSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("streaming measurement skipped in -short mode")
	}
	s, err := NewStreamSetup()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Aggregate throughput = total bytes moved / total wall time for the
	// write-then-read pass (the Bonnie convention: the slow direction
	// dominates, as it does for real workloads). Best of two runs per
	// size, as the rest of the harness reports best-of-N.
	const size = 4 << 20
	measure := func(transfer int) (StreamResult, float64) {
		var best StreamResult
		bestAgg := 0.0
		for i := 0; i < 2; i++ {
			res, err := s.Stream(size, transfer, false)
			if err != nil {
				t.Fatal(err)
			}
			agg := AggregateMBps(res)
			if agg > bestAgg {
				best, bestAgg = res, agg
			}
		}
		return best, bestAgg
	}
	base, aggBase := measure(8192)
	big, aggBig := measure(512 << 10)
	t.Logf("8 KiB:   write %.1f MB/s, read %.1f MB/s, aggregate %.1f MB/s", base.WriteMBps, base.ReadMBps, aggBase)
	t.Logf("512 KiB: write %.1f MB/s, read %.1f MB/s, aggregate %.1f MB/s", big.WriteMBps, big.ReadMBps, aggBig)

	if aggBase <= 0 || aggBig < 3*aggBase {
		t.Errorf("512 KiB aggregate %.1f MB/s vs 8 KiB %.1f MB/s: below the 3x acceptance bound",
			aggBig, aggBase)
	}
}

// TestStreamCachedCorrectness: the cached streaming path moves the same
// bytes (the throughput table's cached rows are measured elsewhere;
// here we only assert it works at both granule sizes).
func TestStreamCachedCorrectness(t *testing.T) {
	s, err := NewStreamSetup()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, transfer := range []int{8192, 512 << 10} {
		if _, err := s.Stream(2<<20, transfer, true); err != nil {
			t.Errorf("cached stream at %d: %v", transfer, err)
		}
	}
}

// BenchmarkStream reports streaming throughput for the CI trajectory;
// run with -benchtime=1x for a smoke pass.
func BenchmarkStream(b *testing.B) {
	s, err := NewStreamSetup()
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for _, bc := range []struct {
		name     string
		transfer int
		cached   bool
	}{
		{"8KiB-uncached", 8192, false},
		{"512KiB-uncached", 512 << 10, false},
		{"8KiB-cached", 8192, true},
		{"512KiB-cached", 512 << 10, true},
	} {
		b.Run(bc.name, func(b *testing.B) {
			const size = 8 << 20
			var wSum, rSum float64
			for i := 0; i < b.N; i++ {
				res, err := s.Stream(size, bc.transfer, bc.cached)
				if err != nil {
					b.Fatal(err)
				}
				wSum += res.WriteMBps
				rSum += res.ReadMBps
			}
			b.SetBytes(2 * size)
			b.ReportMetric(wSum/float64(b.N), "write-MB/s")
			b.ReportMetric(rSum/float64(b.N), "read-MB/s")
		})
	}
}
