package bench

import (
	"strings"

	"discfs/internal/vfs"
)

// SearchResult aggregates the wc-style counts of the Figure 12 workload.
type SearchResult struct {
	Files int
	Lines int64
	Words int64
	Bytes int64
}

// Search walks the tree under root and, for every .c and .h file, reads
// the full contents and counts lines, words and bytes — the paper's
// "simple script that goes through every .c and .h file of the OpenBSD
// kernel source code and counts the number of lines, words and bytes".
func Search(fs vfs.FS, root vfs.Handle) (SearchResult, error) {
	var res SearchResult
	err := walkDir(fs, root, &res)
	return res, err
}

func walkDir(fs vfs.FS, dir vfs.Handle, res *SearchResult) error {
	ents, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range ents {
		// Resolve through Lookup: remote backends return names only,
		// and this is the per-file LOOKUP the real script incurs.
		attr, err := fs.Lookup(dir, e.Name)
		if err != nil {
			return err
		}
		switch attr.Type {
		case vfs.TypeDir:
			if err := walkDir(fs, attr.Handle, res); err != nil {
				return err
			}
		case vfs.TypeRegular:
			if !strings.HasSuffix(e.Name, ".c") && !strings.HasSuffix(e.Name, ".h") {
				continue
			}
			if err := wcFile(fs, attr.Handle, attr.Size, res); err != nil {
				return err
			}
			res.Files++
		}
	}
	return nil
}

// wcFile reads a file in ChunkSize pieces and counts lines/words/bytes.
func wcFile(fs vfs.FS, h vfs.Handle, size uint64, res *SearchResult) error {
	inWord := false
	var off uint64
	for off < size {
		n := uint32(ChunkSize)
		if off+uint64(n) > size {
			n = uint32(size - off)
		}
		data, eof, err := fs.Read(h, off, n)
		if err != nil {
			return err
		}
		if len(data) == 0 {
			break
		}
		for _, c := range data {
			res.Bytes++
			if c == '\n' {
				res.Lines++
			}
			isSpace := c == ' ' || c == '\t' || c == '\n' || c == '\r'
			if isSpace {
				inWord = false
			} else if !inWord {
				inWord = true
				res.Words++
			}
		}
		off += uint64(len(data))
		if eof {
			break
		}
	}
	return nil
}
