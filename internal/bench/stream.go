package bench

// The streaming-throughput table: sequential whole-file read and write
// over the full DisCFS stack (secure channel, RPC, credential checks,
// write-behind server) at the negotiated transfer size versus the v2
// 8 KiB baseline. This is the data plane's acceptance measure — the
// negotiated size must deliver a multiple of the baseline's throughput
// because it issues a fraction of the per-operation costs (RPC framing,
// AEAD seals, syscalls, policy checks).

import (
	"context"
	"fmt"
	"os"
	"time"

	"discfs/internal/core"
	"discfs/internal/keynote"
)

// StreamResult is one streaming measurement.
type StreamResult struct {
	// Size is the file size moved, in bytes.
	Size int64
	// Transfer is the negotiated per-RPC payload in effect.
	Transfer int
	// Cached reports whether the client data cache (readahead +
	// write-behind) was on.
	Cached bool
	// WriteMBps is the sequential write throughput, including the
	// Sync/COMMIT durability barrier.
	WriteMBps float64
	// ReadMBps is the sequential read throughput from a cold client
	// (a fresh attach, so every byte crosses the wire).
	ReadMBps float64
}

// StreamSetup is a DisCFS server prepared for streaming measurements.
type StreamSetup struct {
	addr    string
	userKey *keynote.KeyPair
	srv     *core.Server
}

// NewStreamSetup brings up a write-behind DisCFS server (the system's
// fast configuration) with one RWX-credentialed user.
func NewStreamSetup() (*StreamSetup, error) {
	backing, err := ffsStore()
	if err != nil {
		return nil, err
	}
	adminKey := keynote.DeterministicKey("stream-admin")
	userKey := keynote.DeterministicKey("stream-user")
	srv, err := core.NewServer(core.ServerConfig{
		Backing:     backing,
		ServerKey:   adminKey,
		CacheSize:   128,
		WriteBehind: true,
	})
	if err != nil {
		return nil, err
	}
	if _, err := srv.IssueCredential(userKey.Principal, backing.Root().Ino, "RWX", "stream user"); err != nil {
		srv.Close()
		return nil, err
	}
	addr, err := srv.Start()
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &StreamSetup{addr: addr, userKey: userKey, srv: srv}, nil
}

// Close tears the server down.
func (s *StreamSetup) Close() { s.srv.Close() }

// dial attaches a client at the given proposed transfer size.
func (s *StreamSetup) dial(transfer int, cached bool) (*core.Client, error) {
	opts := []core.ClientOption{core.WithMaxTransfer(transfer)}
	if !cached {
		opts = append(opts, core.WithNoDataCache())
	}
	return core.Dial(context.Background(), s.addr, s.userKey, opts...)
}

// warm forces the client's lazy data-connection pool to dial (and its
// flush workers to spin up) against a throwaway file, so connection
// handshakes happen outside the measured region — steady-state
// throughput, not attach cost, is what the table reports.
func (s *StreamSetup) warm(c *core.Client, transfer int) error {
	ctx := context.Background()
	f, err := c.Open(ctx, fmt.Sprintf("/warm-%d.dat", transfer), os.O_CREATE|os.O_RDWR|os.O_TRUNC)
	if err != nil {
		return err
	}
	defer f.Close()
	buf := make([]byte, transfer)
	for i := 0; i < 9; i++ { // one block per pool slot, and one spare
		if _, err := f.Write(buf); err != nil {
			return err
		}
	}
	if err := f.Sync(); err != nil {
		return err
	}
	for off := int64(0); ; off += int64(len(buf)) {
		if _, err := f.ReadAt(buf, off); err != nil {
			break
		}
	}
	return nil
}

// Stream measures one configuration: a sequential write of size bytes
// (with the Sync barrier inside the timed region) by one client, then a
// sequential read of the file by a freshly attached client, so both
// directions move every byte across the wire.
func (s *StreamSetup) Stream(size int64, transfer int, cached bool) (StreamResult, error) {
	ctx := context.Background()
	res := StreamResult{Size: size, Transfer: transfer, Cached: cached}
	const appChunk = 1 << 20 // application-level write(2) size
	buf := make([]byte, appChunk)
	for i := range buf {
		buf[i] = byte(i*2654435761 + i>>12)
	}
	name := fmt.Sprintf("/stream-%d-%d-%v.dat", size, transfer, cached)

	w, err := s.dial(transfer, cached)
	if err != nil {
		return res, err
	}
	defer w.Close()
	if cached {
		if err := s.warm(w, transfer); err != nil {
			return res, err
		}
	}
	wf, err := w.Open(ctx, name, os.O_CREATE|os.O_WRONLY|os.O_TRUNC)
	if err != nil {
		return res, err
	}
	start := time.Now()
	for off := int64(0); off < size; {
		n := size - off
		if n > appChunk {
			n = appChunk
		}
		if _, err := wf.Write(buf[:n]); err != nil {
			return res, err
		}
		off += n
	}
	if err := wf.Sync(); err != nil {
		return res, err
	}
	res.WriteMBps = mbps(size, time.Since(start))
	if err := wf.Close(); err != nil {
		return res, err
	}

	// Cold reader: a fresh attach so nothing is client-cached.
	r, err := s.dial(transfer, cached)
	if err != nil {
		return res, err
	}
	defer r.Close()
	if cached {
		if err := s.warm(r, transfer); err != nil {
			return res, err
		}
	}
	rf, err := r.Open(ctx, name, os.O_RDONLY)
	if err != nil {
		return res, err
	}
	start = time.Now()
	var total int64
	for {
		n, err := rf.Read(buf)
		total += int64(n)
		if err != nil {
			break
		}
	}
	if total != size {
		return res, fmt.Errorf("bench: stream read %d of %d bytes", total, size)
	}
	res.ReadMBps = mbps(size, time.Since(start))
	return res, rf.Close()
}

func mbps(size int64, d time.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(size) / (1 << 20) / d.Seconds()
}

// AggregateMBps is the result's aggregate throughput: total bytes moved
// (write + read) over total wall time — the Bonnie-style figure the
// acceptance bound is measured on.
func AggregateMBps(r StreamResult) float64 {
	if r.WriteMBps <= 0 || r.ReadMBps <= 0 {
		return 0
	}
	sz := float64(r.Size) / (1 << 20)
	return 2 * sz / (sz/r.WriteMBps + sz/r.ReadMBps)
}
