package bench

import (
	"strings"
	"testing"

	"discfs/internal/vfs"
)

func TestBonnieRunsOnAllSetups(t *testing.T) {
	setups, err := AllSetups()
	if err != nil {
		t.Fatalf("AllSetups: %v", err)
	}
	for _, s := range setups {
		defer s.Close()
	}
	const size = 256 * 1024 // small: correctness, not measurement
	for _, s := range setups {
		res, err := Bonnie(s.FS, s.FS.Root(), size)
		if err != nil {
			t.Fatalf("%s: Bonnie: %v", s.Name, err)
		}
		for phase, v := range map[string]float64{
			"output-char":  res.OutputCharKBps,
			"output-block": res.OutputBlockKBps,
			"rewrite":      res.RewriteKBps,
			"input-char":   res.InputCharKBps,
			"input-block":  res.InputBlockKBps,
		} {
			if v <= 0 {
				t.Errorf("%s: %s throughput = %v", s.Name, phase, v)
			}
		}
	}
}

func TestBonniePhasesProduceCorrectData(t *testing.T) {
	s, err := SetupFFS()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	root := s.FS.Root()
	h, err := bonnieFile(s.FS, root, "check")
	if err != nil {
		t.Fatal(err)
	}
	const size = 20000 // not chunk-aligned on purpose
	if err := OutputChar(s.FS, h, size); err != nil {
		t.Fatalf("OutputChar: %v", err)
	}
	a, err := s.FS.GetAttr(h)
	if err != nil || a.Size != size {
		t.Fatalf("size after char output = %d, want %d (%v)", a.Size, size, err)
	}
	data, _, err := s.FS.Read(h, 0, size)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range data {
		if b != byte(i&0x7f) {
			t.Fatalf("byte %d = %d, want %d", i, b, byte(i&0x7f))
		}
	}
	if err := Rewrite(s.FS, h, size); err != nil {
		t.Fatalf("Rewrite: %v", err)
	}
	// Rewrite flips the first byte of each chunk.
	data, _, _ = s.FS.Read(h, 0, size)
	if data[0] != byte(0)^1 {
		t.Errorf("rewrite did not dirty byte 0")
	}
	if data[1] != 1 {
		t.Errorf("rewrite corrupted byte 1: %d", data[1])
	}
	if err := InputChar(s.FS, h, size); err != nil {
		t.Errorf("InputChar: %v", err)
	}
	if err := InputBlock(s.FS, h, size); err != nil {
		t.Errorf("InputBlock: %v", err)
	}
}

func TestGenerateTreeDeterministic(t *testing.T) {
	spec := TreeSpec{Subsystems: 3, FilesPerDir: 5, MeanFileSize: 2048, Seed: 7}
	s1, _ := SetupFFS()
	defer s1.Close()
	s2, _ := SetupFFS()
	defer s2.Close()
	f1, b1, err := GenerateTree(s1.FS, s1.FS.Root(), spec)
	if err != nil {
		t.Fatalf("GenerateTree: %v", err)
	}
	f2, b2, err := GenerateTree(s2.FS, s2.FS.Root(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if f1 != f2 || b1 != b2 {
		t.Errorf("generation not deterministic: %d/%d vs %d/%d", f1, b1, f2, b2)
	}
	if f1 != 15 {
		t.Errorf("files = %d, want 15", f1)
	}
	// The content looks like C source.
	sys, err := s1.FS.Lookup(s1.FS.Root(), "sys")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := s1.FS.ReadDir(sys.Handle)
	if err != nil || len(dirs) != 3 {
		t.Fatalf("subsystems = %d, %v", len(dirs), err)
	}
	d0, _ := s1.FS.Lookup(sys.Handle, dirs[0].Name)
	files, _ := s1.FS.ReadDir(d0.Handle)
	var cCount, hCount int
	for _, f := range files {
		switch {
		case strings.HasSuffix(f.Name, ".c"):
			cCount++
		case strings.HasSuffix(f.Name, ".h"):
			hCount++
		}
	}
	if cCount == 0 || hCount == 0 {
		t.Errorf("file mix: %d .c, %d .h", cCount, hCount)
	}
	attr, _ := s1.FS.Lookup(d0.Handle, files[0].Name)
	content, _, err := s1.FS.Read(attr.Handle, 0, 256)
	if err != nil || !strings.Contains(string(content), "#include <sys/param.h>") {
		t.Errorf("content not C-like: %q (%v)", content[:min(64, len(content))], err)
	}
}

func TestSearchCountsMatchAcrossSetups(t *testing.T) {
	spec := TreeSpec{Subsystems: 4, FilesPerDir: 6, MeanFileSize: 4096, Seed: 11}
	setups, err := AllSetups()
	if err != nil {
		t.Fatal(err)
	}
	var results []SearchResult
	for _, s := range setups {
		defer s.Close()
		if _, _, err := GenerateTree(s.Populate, s.Populate.Root(), spec); err != nil {
			t.Fatalf("%s: GenerateTree: %v", s.Name, err)
		}
		res, err := Search(s.FS, s.FS.Root())
		if err != nil {
			t.Fatalf("%s: Search: %v", s.Name, err)
		}
		if res.Files != 24 || res.Lines == 0 || res.Words == 0 || res.Bytes == 0 {
			t.Errorf("%s: result = %+v", s.Name, res)
		}
		results = append(results, res)
	}
	// Identical trees must yield identical counts through every stack.
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("setup %d result %+v differs from FFS %+v", i, results[i], results[0])
		}
	}
}

func TestSearchSkipsNonSourceFiles(t *testing.T) {
	s, _ := SetupFFS()
	defer s.Close()
	root := s.FS.Root()
	a, _ := s.FS.Create(root, "README", 0o644)
	s.FS.Write(a.Handle, 0, []byte("not counted\n"))
	c, _ := s.FS.Create(root, "x.c", 0o644)
	s.FS.Write(c.Handle, 0, []byte("int x;\n"))
	res, err := Search(s.FS, root)
	if err != nil {
		t.Fatal(err)
	}
	if res.Files != 1 {
		t.Errorf("files = %d, want 1", res.Files)
	}
	if res.Bytes != 7 {
		t.Errorf("bytes = %d, want 7", res.Bytes)
	}
	if res.Lines != 1 || res.Words != 2 {
		t.Errorf("lines/words = %d/%d, want 1/2", res.Lines, res.Words)
	}
}

func TestDisCFSStatsExposed(t *testing.T) {
	s, err := SetupDisCFS()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Stats == nil {
		t.Fatal("no Stats on DisCFS setup")
	}
	// Drive some traffic and observe cache effectiveness.
	h, err := bonnieFile(s.FS, s.FS.Root(), "f")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := s.FS.Write(h, 0, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.CacheHits == 0 {
		t.Errorf("no cache hits after repeated writes: %+v", st)
	}
	if st.Decisions == 0 {
		t.Errorf("no decisions recorded: %+v", st)
	}
}

func TestRemoteFSLargeIO(t *testing.T) {
	s, err := SetupCFSNE()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	root := s.FS.Root()
	a, err := s.FS.Create(root, "big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A write larger than one NFS transfer must be split transparently.
	data := make([]byte, 40000)
	for i := range data {
		data[i] = byte(i * 3)
	}
	if _, err := s.FS.Write(a.Handle, 0, data); err != nil {
		t.Fatalf("large write: %v", err)
	}
	got, _, err := s.FS.Read(a.Handle, 0, 40000)
	if err != nil {
		t.Fatalf("large read: %v", err)
	}
	if len(got) != len(data) {
		t.Fatalf("read %d bytes, want %d", len(got), len(data))
	}
	for i := range got {
		if got[i] != data[i] {
			t.Fatalf("byte %d differs", i)
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestSetupsExposeExpectedNames(t *testing.T) {
	setups, err := AllSetups()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"FFS", "CFS-NE", "DisCFS"}
	for i, s := range setups {
		defer s.Close()
		if s.Name != want[i] {
			t.Errorf("setup %d = %q, want %q", i, s.Name, want[i])
		}
		if _, err := s.FS.GetAttr(s.FS.Root()); err != nil {
			t.Errorf("%s: root GetAttr: %v", s.Name, err)
		}
		var _ vfs.FS = s.FS
	}
}
