package bench

// The dedup table: streaming write throughput through the full stack
// (secure channel, write-behind server) onto a modeled exclusive disk,
// with and without the content-addressed store, at varying duplicate
// fractions. With dedup on, a duplicate chunk never reaches the
// spindle — it is absorbed as an index mutation — so throughput on
// duplicate-heavy streams must rise by a multiple of the write ratio;
// on all-unique streams the layer must cost little more than the
// hashing. The workload models N clients uploading overlapping content:
// the shared segments are identical across writers, so cross-file
// dedup counts too.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"discfs/internal/core"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
)

// DedupDiskMBps is the modeled disk bandwidth for the dedup table —
// the same spindle-bound regime as the federation table, so avoided
// writes translate directly into wall-clock time.
const DedupDiskMBps = 32

// dedupSegment is the workload granule: each writer's stream is a
// sequence of 2 MiB segments, each either drawn from a small shared
// pool (duplicate) or freshly random (unique).
const dedupSegment = 2 << 20

// DedupResult is one dedup-table measurement.
type DedupResult struct {
	// Dedup reports whether the content-addressed layer was stacked.
	Dedup bool
	// DupPct is the duplicate fraction of the stream, in percent.
	DupPct int
	// Writers is the number of concurrent streaming writers.
	Writers int
	// AggregateMBps is total logical bytes written over the wall-clock
	// window, including every writer's Sync/COMMIT barrier.
	AggregateMBps float64
	// Chunks, BytesLogical, BytesStored and Hits snapshot the chunk
	// store after the run (zero with Dedup false). BytesLogical over
	// BytesStored is the realized dedup ratio.
	Chunks       int64
	BytesLogical int64
	BytesStored  int64
	Hits         uint64
}

// dedupFill fills buf with bytes derived from seed (cheap splitmix64
// stream — incompressible enough that no two seeds collide a chunk).
func dedupFill(buf []byte, seed uint64) {
	x := seed
	for i := 0; i+8 <= len(buf); i += 8 {
		x += 0x9e3779b97f4a7c15
		z := x
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		buf[i] = byte(z)
		buf[i+1] = byte(z >> 8)
		buf[i+2] = byte(z >> 16)
		buf[i+3] = byte(z >> 24)
		buf[i+4] = byte(z >> 32)
		buf[i+5] = byte(z >> 40)
		buf[i+6] = byte(z >> 48)
		buf[i+7] = byte(z >> 56)
	}
}

// RunDedupOne measures one configuration: writers concurrent clients
// each streaming perWriter bytes (dupPct percent of whose segments come
// from a pool shared by all writers) into its own file on one
// write-behind server over a DedupDiskMBps exclusive modeled disk, with
// the content-addressed layer stacked iff dedupOn.
func RunDedupOne(dedupOn bool, dupPct, writers int, perWriter int64) (DedupResult, error) {
	res := DedupResult{Dedup: dedupOn, DupPct: dupPct, Writers: writers}
	backing, err := ffs.New(ffs.Config{
		BlockSize: 8192,
		NumBlocks: 1 << 16,
		Disk:      ffs.DiskModel{BytesPerSecond: DedupDiskMBps << 20, Exclusive: true},
	})
	if err != nil {
		return res, err
	}
	adminKey := keynote.DeterministicKey("dedup-bench-admin")
	userKey := keynote.DeterministicKey("dedup-bench-user")
	srv, err := core.NewServer(core.ServerConfig{
		Backing:     backing,
		ServerKey:   adminKey,
		CacheSize:   128,
		WriteBehind: true,
		Dedup:       dedupOn,
	})
	if err != nil {
		return res, err
	}
	defer srv.Close()
	if _, err := srv.IssueCredential(userKey.Principal, backing.Root().Ino, "RWX", "dedup bench user"); err != nil {
		return res, err
	}
	addr, err := srv.Start()
	if err != nil {
		return res, err
	}

	ctx := context.Background()
	c, err := core.Dial(ctx, addr, userKey)
	if err != nil {
		return res, err
	}
	defer c.Close()

	// The shared pool: segments every writer repeats. Deterministic, so
	// re-running the table measures the same stream.
	shared := make([][]byte, 2)
	for i := range shared {
		shared[i] = make([]byte, dedupSegment)
		dedupFill(shared[i], uint64(0xD0D0+i))
	}

	// Warm outside the window: open every file and push one small write
	// through it (dials the data-connection pool, spins up committers and
	// the chunker's hash workers), then truncate back.
	files := make([]*core.File, writers)
	for i := range files {
		f, err := c.Open(ctx, fmt.Sprintf("/dedup-w%d.dat", i), os.O_CREATE|os.O_RDWR|os.O_TRUNC)
		if err != nil {
			return res, err
		}
		files[i] = f
		defer f.Close()
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for i := range files {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := files[i]
			if _, err := f.Write(shared[0][:256<<10]); err != nil {
				errs[i] = err
				return
			}
			if err := f.Sync(); err != nil {
				errs[i] = err
				return
			}
			if err := f.Truncate(0); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = f.Seek(0, 0)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	segs := int((perWriter + dedupSegment - 1) / dedupSegment)
	start := time.Now()
	for i := range files {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := files[i]
			unique := make([]byte, dedupSegment)
			for s := 0; s < segs; s++ {
				seg := unique
				// Spread duplicate segments evenly through the stream:
				// segment s is a duplicate iff its percent position moves
				// past another dupPct step.
				if (s*dupPct)/100 != ((s+1)*dupPct)/100 || dupPct == 100 {
					seg = shared[s%len(shared)]
				} else {
					dedupFill(unique, uint64(i)<<32|uint64(s))
				}
				n := perWriter - int64(s)*dedupSegment
				if n > dedupSegment {
					n = dedupSegment
				}
				if _, err := f.Write(seg[:n]); err != nil {
					errs[i] = err
					return
				}
			}
			errs[i] = f.Sync()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	total := float64(perWriter) * float64(writers)
	res.AggregateMBps = total / (1 << 20) / elapsed.Seconds()
	st := srv.Stats()
	res.Chunks = st.DedupChunks
	res.BytesLogical = st.DedupBytesLogical
	res.BytesStored = st.DedupBytesStored
	res.Hits = st.DedupHits
	return res, nil
}

// RunDedup measures the dedup table: the non-dedup baseline on the
// duplicate-heavy stream, then the dedup layer at each duplicate
// fraction. One fresh server per row.
func RunDedup(dupPcts []int, writers int, perWriter int64) ([]DedupResult, error) {
	base, err := RunDedupOne(false, dupPcts[len(dupPcts)-1], writers, perWriter)
	if err != nil {
		return nil, fmt.Errorf("bench: dedup baseline: %w", err)
	}
	out := []DedupResult{base}
	for _, pct := range dupPcts {
		r, err := RunDedupOne(true, pct, writers, perWriter)
		if err != nil {
			return nil, fmt.Errorf("bench: dedup %d%%: %w", pct, err)
		}
		out = append(out, r)
	}
	return out, nil
}
