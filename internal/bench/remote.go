// Package bench contains the paper's evaluation harness: a port of the
// Bonnie filesystem benchmark (Figures 7-11), the kernel-source search
// macro-benchmark (Figure 12), the synthetic source tree it runs over,
// and the three filesystem setups compared throughout §6 — FFS (local),
// CFS-NE (user-level NFS loopback, no encryption) and DisCFS (CFS-NE
// plus credential access control over the secure channel).
package bench

import (
	"context"

	"discfs/internal/nfs"
	"discfs/internal/vfs"
)

// ClientAPI is the NFS client surface RemoteFS needs; both *nfs.Client
// and *nfs.CachingClient satisfy it, so workloads can run over a raw or
// an attribute-caching client.
type ClientAPI interface {
	GetAttr(ctx context.Context, h vfs.Handle) (vfs.Attr, error)
	SetAttr(ctx context.Context, h vfs.Handle, sa nfs.SAttr) (vfs.Attr, error)
	Lookup(ctx context.Context, dir vfs.Handle, name string) (vfs.Attr, error)
	Readlink(ctx context.Context, h vfs.Handle) (string, error)
	Read(ctx context.Context, h vfs.Handle, offset, count uint32) ([]byte, vfs.Attr, error)
	Write(ctx context.Context, h vfs.Handle, offset uint32, data []byte) (vfs.Attr, error)
	Create(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error)
	Remove(ctx context.Context, dir vfs.Handle, name string) error
	Rename(ctx context.Context, fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error
	Link(ctx context.Context, target vfs.Handle, dir vfs.Handle, name string) error
	Symlink(ctx context.Context, dir vfs.Handle, name, target string, mode uint32) error
	Mkdir(ctx context.Context, dir vfs.Handle, name string, mode uint32) (vfs.Attr, error)
	Rmdir(ctx context.Context, dir vfs.Handle, name string) error
	ReadDirAll(ctx context.Context, dir vfs.Handle) ([]nfs.DirEntry, error)
	StatFS(ctx context.Context, h vfs.Handle) (nfs.StatFSResult, error)
}

var (
	_ ClientAPI = (*nfs.Client)(nil)
	_ ClientAPI = (*nfs.CachingClient)(nil)
)

// RemoteFS adapts an NFS client connection to the vfs.FS interface, so
// every benchmark workload runs unchanged against local and remote
// filesystems — the role the kernel NFS client plays in the paper.
type RemoteFS struct {
	c    ClientAPI
	root vfs.Handle
	ctx  context.Context
	// xfer is the wire chunk size: the client's negotiated transfer
	// size when it exposes one, the v2 baseline otherwise.
	xfer uint32
}

// NewRemoteFS wraps an NFS client with a known root handle. The vfs.FS
// interface carries no context, so RemoteFS issues every RPC under
// context.Background; use NewRemoteFSContext to bound the whole run.
func NewRemoteFS(c ClientAPI, root vfs.Handle) *RemoteFS {
	return NewRemoteFSContext(context.Background(), c, root)
}

// NewRemoteFSContext is NewRemoteFS with every RPC issued under ctx.
func NewRemoteFSContext(ctx context.Context, c ClientAPI, root vfs.Handle) *RemoteFS {
	xfer := uint32(nfs.MaxData)
	if md, ok := c.(interface{ MaxData() uint32 }); ok {
		xfer = md.MaxData()
	}
	return &RemoteFS{c: c, root: root, ctx: ctx, xfer: xfer}
}

var _ vfs.FS = (*RemoteFS)(nil)

// Root implements vfs.FS.
func (r *RemoteFS) Root() vfs.Handle { return r.root }

// GetAttr implements vfs.FS.
func (r *RemoteFS) GetAttr(h vfs.Handle) (vfs.Attr, error) { return r.c.GetAttr(r.ctx, h) }

// SetAttr implements vfs.FS.
func (r *RemoteFS) SetAttr(h vfs.Handle, s vfs.SetAttr) (vfs.Attr, error) {
	return remoteSetAttr(r.ctx, r.c, h, s)
}

// remoteSetAttr translates a vfs.SetAttr into an NFS SETATTR call.
func remoteSetAttr(ctx context.Context, c ClientAPI, h vfs.Handle, s vfs.SetAttr) (vfs.Attr, error) {
	sa := nfs.NewSAttr()
	if s.Mode != nil {
		sa.Mode = *s.Mode
	}
	if s.UID != nil {
		sa.UID = *s.UID
	}
	if s.GID != nil {
		sa.GID = *s.GID
	}
	if s.Size != nil {
		sa.Size = uint32(*s.Size)
	}
	if s.Atime != nil {
		sa.SetAtime = true
		sa.Atime = *s.Atime
	}
	if s.Mtime != nil {
		sa.SetMtime = true
		sa.Mtime = *s.Mtime
	}
	return c.SetAttr(ctx, h, sa)
}

// Lookup implements vfs.FS.
func (r *RemoteFS) Lookup(dir vfs.Handle, name string) (vfs.Attr, error) {
	return r.c.Lookup(r.ctx, dir, name)
}

// Read implements vfs.FS, splitting large reads into wire-sized RPCs.
func (r *RemoteFS) Read(h vfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	var out []byte
	remaining := count
	for remaining > 0 {
		n := remaining
		if n > r.xfer {
			n = r.xfer
		}
		data, attr, err := r.c.Read(r.ctx, h, uint32(off)+uint32(len(out)), n)
		if err != nil {
			return nil, false, err
		}
		out = append(out, data...)
		remaining -= uint32(len(data))
		if len(data) == 0 || uint64(off)+uint64(len(out)) >= attr.Size {
			return out, true, nil
		}
		if uint32(len(data)) < n {
			return out, false, nil
		}
	}
	return out, false, nil
}

// Write implements vfs.FS, splitting large writes into wire-sized RPCs.
func (r *RemoteFS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	var attr vfs.Attr
	var err error
	for done := 0; done < len(data) || len(data) == 0; {
		n := len(data) - done
		if n > int(r.xfer) {
			n = int(r.xfer)
		}
		attr, err = r.c.Write(r.ctx, h, uint32(off)+uint32(done), data[done:done+n])
		if err != nil {
			return vfs.Attr{}, err
		}
		done += n
		if len(data) == 0 {
			break
		}
		if done >= len(data) {
			break
		}
	}
	return attr, nil
}

// Create implements vfs.FS.
func (r *RemoteFS) Create(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	return r.c.Create(r.ctx, dir, name, mode)
}

// Remove implements vfs.FS.
func (r *RemoteFS) Remove(dir vfs.Handle, name string) error { return r.c.Remove(r.ctx, dir, name) }

// Rename implements vfs.FS.
func (r *RemoteFS) Rename(fd vfs.Handle, fn string, td vfs.Handle, tn string) error {
	return r.c.Rename(r.ctx, fd, fn, td, tn)
}

// Mkdir implements vfs.FS.
func (r *RemoteFS) Mkdir(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	return r.c.Mkdir(r.ctx, dir, name, mode)
}

// Rmdir implements vfs.FS.
func (r *RemoteFS) Rmdir(dir vfs.Handle, name string) error { return r.c.Rmdir(r.ctx, dir, name) }

// ReadDir implements vfs.FS.
func (r *RemoteFS) ReadDir(dir vfs.Handle) ([]vfs.DirEntry, error) {
	ents, err := r.c.ReadDirAll(r.ctx, dir)
	if err != nil {
		return nil, err
	}
	out := make([]vfs.DirEntry, 0, len(ents))
	for _, e := range ents {
		// READDIR returns fileids only; resolve handles lazily via
		// Lookup when the caller needs them. For benchmark walks the
		// name is what matters; the handle is filled by Lookup.
		out = append(out, vfs.DirEntry{Name: e.Name, Handle: vfs.Handle{Ino: uint64(e.FileID)}})
	}
	return out, nil
}

// Symlink implements vfs.FS.
func (r *RemoteFS) Symlink(dir vfs.Handle, name, target string, mode uint32) (vfs.Attr, error) {
	if err := r.c.Symlink(r.ctx, dir, name, target, mode); err != nil {
		return vfs.Attr{}, err
	}
	return r.c.Lookup(r.ctx, dir, name)
}

// Readlink implements vfs.FS.
func (r *RemoteFS) Readlink(h vfs.Handle) (string, error) { return r.c.Readlink(r.ctx, h) }

// Link implements vfs.FS.
func (r *RemoteFS) Link(dir vfs.Handle, name string, target vfs.Handle) (vfs.Attr, error) {
	if err := r.c.Link(r.ctx, target, dir, name); err != nil {
		return vfs.Attr{}, err
	}
	return r.c.Lookup(r.ctx, dir, name)
}

// StatFS implements vfs.FS.
func (r *RemoteFS) StatFS() (vfs.StatFS, error) {
	st, err := r.c.StatFS(r.ctx, r.root)
	if err != nil {
		return vfs.StatFS{}, err
	}
	return vfs.StatFS{
		BlockSize:   st.BSize,
		TotalBlocks: uint64(st.Blocks),
		FreeBlocks:  uint64(st.BFree),
		AvailBlocks: uint64(st.BAvail),
	}, nil
}
