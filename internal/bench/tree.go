package bench

import (
	"fmt"
	"math/rand"
	"strings"

	"discfs/internal/vfs"
)

// The paper's Figure 12 workload walks "every .c and .h file of the
// OpenBSD kernel source code" counting lines, words and bytes. We cannot
// ship that tree; GenerateTree builds a deterministic synthetic kernel
// source tree with the same structural properties — a couple of
// directory levels (sys/<subsystem>/), a few files per directory split
// between .c and .h, and realistically sized pseudo-C contents — which
// is what stresses lookup, read, and the policy cache.

// TreeSpec parameterizes the synthetic source tree.
type TreeSpec struct {
	// Subsystems is the number of top-level directories under sys/.
	Subsystems int
	// FilesPerDir is the number of source files per subsystem.
	FilesPerDir int
	// MeanFileSize is the average file size in bytes (sizes vary ±50%).
	MeanFileSize int
	// Depth nests a chain of subdirectories (deep01/, deep02/, …) under
	// each subsystem, every level holding FilesPerDir files; 0 or 1
	// keeps the flat two-level layout. Deeper trees multiply the entry
	// count without touching the data plane — the shape the metadata
	// walk benchmark needs.
	Depth int
	// Seed makes generation deterministic.
	Seed int64
}

// DefaultTreeSpec approximates the metadata load of a kernel tree walk
// at laptop-benchmark scale (~1.5k files).
var DefaultTreeSpec = TreeSpec{
	Subsystems:   24,
	FilesPerDir:  64,
	MeanFileSize: 12 * 1024,
	Seed:         2001,
}

var subsystemNames = []string{
	"kern", "vm", "net", "netinet", "nfs", "ufs", "dev", "arch",
	"sys", "crypto", "ddb", "isofs", "miscfs", "msdosfs", "ntfs",
	"pci", "scsi", "stand", "uvm", "altq", "compat", "ipsec", "lib", "conf",
}

// GenerateTree writes the tree under root and returns the total number
// of files and bytes written.
func GenerateTree(fs vfs.FS, root vfs.Handle, spec TreeSpec) (files int, bytes int64, err error) {
	rng := rand.New(rand.NewSource(spec.Seed))
	sys, err := fs.Mkdir(root, "sys", 0o755)
	if err != nil {
		return 0, 0, fmt.Errorf("bench: mkdir sys: %w", err)
	}
	for i := 0; i < spec.Subsystems; i++ {
		name := subsystemNames[i%len(subsystemNames)]
		if i >= len(subsystemNames) {
			name = fmt.Sprintf("%s%d", name, i/len(subsystemNames))
		}
		dir, err := fs.Mkdir(sys.Handle, name, 0o755)
		if err != nil {
			return files, bytes, fmt.Errorf("bench: mkdir %s: %w", name, err)
		}
		depth := spec.Depth
		if depth < 1 {
			depth = 1
		}
		cur := dir.Handle
		for lvl := 0; lvl < depth; lvl++ {
			if lvl > 0 {
				sub, err := fs.Mkdir(cur, fmt.Sprintf("deep%02d", lvl), 0o755)
				if err != nil {
					return files, bytes, fmt.Errorf("bench: mkdir %s/deep%02d: %w", name, lvl, err)
				}
				cur = sub.Handle
			}
			for j := 0; j < spec.FilesPerDir; j++ {
				ext := ".c"
				if j%4 == 3 { // kernel trees run roughly 3:1 .c to .h
					ext = ".h"
				}
				fname := fmt.Sprintf("%s_%03d%s", name, j, ext)
				if lvl > 0 {
					fname = fmt.Sprintf("%s_d%d_%03d%s", name, lvl, j, ext)
				}
				attr, err := fs.Create(cur, fname, 0o644)
				if err != nil {
					return files, bytes, fmt.Errorf("bench: create %s: %w", fname, err)
				}
				size := spec.MeanFileSize/2 + rng.Intn(spec.MeanFileSize)
				content := syntheticSource(rng, fname, size)
				if _, err := fs.Write(attr.Handle, 0, content); err != nil {
					return files, bytes, fmt.Errorf("bench: write %s: %w", fname, err)
				}
				files++
				bytes += int64(len(content))
			}
		}
	}
	return files, bytes, nil
}

var cIdentifiers = []string{
	"softc", "mbuf", "vnode", "proc", "inode", "buf", "uio", "cred",
	"flags", "error", "unit", "addr", "len", "pool", "queue", "lock",
}

// syntheticSource produces pseudo-C text of roughly size bytes with a
// realistic line/word structure for the wc-style counting pass.
func syntheticSource(rng *rand.Rand, name string, size int) []byte {
	var b strings.Builder
	b.Grow(size + 256)
	fmt.Fprintf(&b, "/*\t$Synth: %s,v 1.%d 2001/06/15 Exp $\t*/\n\n", name, rng.Intn(40)+1)
	b.WriteString("#include <sys/param.h>\n#include <sys/systm.h>\n\n")
	fn := 0
	for b.Len() < size {
		fn++
		fmt.Fprintf(&b, "static int\n%s_fn%d(struct %s *%s, int %s)\n{\n",
			strings.TrimSuffix(strings.TrimSuffix(name, ".c"), ".h"), fn,
			cIdentifiers[rng.Intn(len(cIdentifiers))],
			cIdentifiers[rng.Intn(len(cIdentifiers))],
			cIdentifiers[rng.Intn(len(cIdentifiers))])
		stmts := 3 + rng.Intn(12)
		for s := 0; s < stmts; s++ {
			fmt.Fprintf(&b, "\t%s = %s + %d;\n",
				cIdentifiers[rng.Intn(len(cIdentifiers))],
				cIdentifiers[rng.Intn(len(cIdentifiers))],
				rng.Intn(4096))
		}
		b.WriteString("\treturn (0);\n}\n\n")
	}
	return []byte(b.String())
}
