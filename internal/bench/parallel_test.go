package bench

import (
	"fmt"
	"testing"
)

// TestParallelWriteScaling is the PR's acceptance measurement: at 8
// writers the concurrent FFS write path must deliver at least 2x the
// aggregate throughput of the global-lock baseline. The disk model
// charges a per-seek latency, so the win is device overlap — available
// on a single-core runner — rather than CPU parallelism.
func TestParallelWriteScaling(t *testing.T) {
	const writers = 8
	const perWriter = 1 << 20 // 1 MiB each

	serialViews, _, err := NewParallelFFSSerial(writers)
	if err != nil {
		t.Fatal(err)
	}
	serial, err := ParallelWrite(serialViews, perWriter)
	if err != nil {
		t.Fatalf("serial baseline: %v", err)
	}

	concViews, fs, err := NewParallelFFS(writers)
	if err != nil {
		t.Fatal(err)
	}
	conc, err := ParallelWrite(concViews, perWriter)
	if err != nil {
		t.Fatalf("concurrent: %v", err)
	}
	if errs := fs.Check(); len(errs) != 0 {
		t.Fatalf("fsck after parallel writes: %v", errs)
	}

	ratio := conc.KBps() / serial.KBps()
	t.Logf("global-lock baseline: %.0f KB/s; per-inode locking: %.0f KB/s; ratio %.2fx",
		serial.KBps(), conc.KBps(), ratio)
	if ratio < 2.0 {
		t.Errorf("parallel write speedup = %.2fx, want >= 2x over the global-lock baseline", ratio)
	}
}

// TestParallelWriteDisCFSWriteBehind runs the full client-server path
// with server write-behind on and off: a correctness pass (all bytes
// land, stats move) sized for CI, not a measurement.
func TestParallelWriteDisCFSWriteBehind(t *testing.T) {
	for _, wb := range []bool{false, true} {
		t.Run(fmt.Sprintf("writeBehind=%v", wb), func(t *testing.T) {
			views, stats, closeAll, err := NewParallelDisCFS(4, wb)
			if err != nil {
				t.Fatal(err)
			}
			defer closeAll()
			res, err := ParallelWrite(views, 128*1024)
			if err != nil {
				t.Fatal(err)
			}
			if res.KBps() <= 0 {
				t.Errorf("throughput = %v", res.KBps())
			}
			st := stats()
			if wb {
				if st.WritesGathered == 0 {
					t.Errorf("write-behind on but no writes gathered: %+v", st)
				}
				if st.Commits == 0 {
					t.Errorf("sync barrier issued no COMMITs: %+v", st)
				}
				if st.WriteQueueDepth != 0 {
					t.Errorf("queue not drained after barrier: depth=%d", st.WriteQueueDepth)
				}
			} else if st.WritesGathered != 0 {
				t.Errorf("write-behind off but stats show gathering: %+v", st)
			}
			// Every writer's bytes must be on the server (the barrier ran
			// inside ParallelWrite): verify sizes through another view.
			for i := range views {
				name := fmt.Sprintf("pw%d.dat", i)
				a, err := views[0].Lookup(views[0].Root(), name)
				if err != nil {
					t.Fatalf("lookup %s: %v", name, err)
				}
				if a.Size != 128*1024 {
					t.Errorf("%s size = %d, want %d", name, a.Size, 128*1024)
				}
			}
		})
	}
}

// BenchmarkParallelWrite measures the aggregate multi-writer
// throughput of the concurrent write path at several widths, with the
// global-lock baseline for comparison:
//
//	go test -bench=ParallelWrite -benchtime=1x ./internal/bench
func BenchmarkParallelWrite(b *testing.B) {
	const perWriter = 512 * 1024
	for _, writers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("serial/%dw", writers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				views, _, err := NewParallelFFSSerial(writers)
				if err != nil {
					b.Fatal(err)
				}
				res, err := ParallelWrite(views, perWriter)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KBps(), "KB/s")
			}
		})
		b.Run(fmt.Sprintf("concurrent/%dw", writers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				views, _, err := NewParallelFFS(writers)
				if err != nil {
					b.Fatal(err)
				}
				res, err := ParallelWrite(views, perWriter)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.KBps(), "KB/s")
			}
		})
	}
}
