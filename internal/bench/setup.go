package bench

import (
	"context"
	"fmt"
	"net"

	"discfs/internal/cfs"
	"discfs/internal/core"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
	"discfs/internal/nfs"
	"discfs/internal/sunrpc"
	"discfs/internal/vfs"
)

// Setup is one benchmarkable filesystem configuration.
type Setup struct {
	// Name is the paper's label: "FFS", "CFS-NE" or "DisCFS".
	Name string
	// FS is the filesystem under test, local or remote.
	FS vfs.FS
	// Populate is direct, uncredentialed access to the backing store for
	// pre-loading workloads, the way the paper's kernel tree was already
	// on the server's disk before measurement. Measuring through FS
	// after populating through Populate keeps the KeyNote session at the
	// paper's size (one user credential) instead of one credential per
	// created file.
	Populate vfs.FS
	// Stats reports DisCFS policy statistics (nil for the baselines).
	Stats func() core.Stats
	// Close releases servers and connections.
	Close func()
	// addr is the server's TCP address (CFS-NE only; for extra dials).
	addr string
}

// ffsStore builds the common backing store.
func ffsStore() (*ffs.FFS, error) {
	return ffs.New(ffs.Config{BlockSize: 8192, NumBlocks: 1 << 17})
}

// SetupFFS is the paper's local-filesystem baseline: direct calls into
// the FFS substrate, no RPC, no policy.
func SetupFFS() (*Setup, error) {
	fs, err := ffsStore()
	if err != nil {
		return nil, err
	}
	return &Setup{Name: "FFS", FS: fs, Populate: fs, Close: func() {}}, nil
}

// SetupCFSNE is the paper's base case: the CFS layer with encryption
// off, exported by the user-level NFS server over TCP, accessed through
// the NFS client — everything DisCFS does except credentials and the
// secure channel.
func SetupCFSNE() (*Setup, error) {
	backing, err := ffsStore()
	if err != nil {
		return nil, err
	}
	ne, err := cfs.New(backing, "", false)
	if err != nil {
		return nil, err
	}
	rpcSrv := sunrpc.NewServer()
	nfs.NewServer(nfs.StaticExport{FS: ne}).RegisterAll(rpcSrv)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go rpcSrv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		rpcSrv.Close()
		return nil, err
	}
	client := nfs.NewClient(sunrpc.NewClient(conn))
	root, err := client.Mount(context.Background(), "/export")
	if err != nil {
		rpcSrv.Close()
		return nil, err
	}
	// Negotiate large transfers, as a modern kernel client would.
	if _, err := client.Negotiate(context.Background(), 0); err != nil {
		rpcSrv.Close()
		return nil, err
	}
	return &Setup{
		Name:     "CFS-NE",
		FS:       NewRemoteFS(client, root),
		Populate: ne,
		Close: func() {
			client.RPC().Close()
			rpcSrv.Close()
		},
		addr: ln.Addr().String(),
	}, nil
}

// SetupDisCFS is the full system: CFS-NE plus KeyNote credential checks,
// served over the authenticated secure channel (the paper's IPsec), with
// the policy decision cache at the paper's size of 128 entries and the
// client-side data cache (readahead + write-behind) enabled — the
// system's default configuration.
func SetupDisCFS() (*Setup, error) {
	return setupDisCFS("DisCFS")
}

// SetupDisCFSNoCache is SetupDisCFS with the client data cache disabled
// (WithNoDataCache): every read and write is one synchronous RPC. The
// Figure 7-11 benchmarks run both so the cache's win is reported.
func SetupDisCFSNoCache() (*Setup, error) {
	return setupDisCFS("DisCFS-nocache", core.WithNoDataCache())
}

func setupDisCFS(name string, opts ...core.ClientOption) (*Setup, error) {
	backing, err := ffsStore()
	if err != nil {
		return nil, err
	}
	ne, err := cfs.New(backing, "", false)
	if err != nil {
		return nil, err
	}
	adminKey := keynote.DeterministicKey("bench-admin")
	userKey := keynote.DeterministicKey("bench-user")
	srv, err := core.NewServer(core.ServerConfig{
		Backing:   ne,
		ServerKey: adminKey,
		CacheSize: 128,
	})
	if err != nil {
		return nil, err
	}
	// The benchmark user holds an RWX credential on the tree, as the
	// measured user in the paper's runs did.
	if _, err := srv.IssueCredential(userKey.Principal, ne.Root().Ino, "RWX", "benchmark user"); err != nil {
		srv.Close()
		return nil, err
	}
	addr, err := srv.Start()
	if err != nil {
		srv.Close()
		return nil, err
	}
	client, err := core.Dial(context.Background(), addr, userKey, opts...)
	if err != nil {
		srv.Close()
		return nil, err
	}
	fsys := NewClientFS(client)
	return &Setup{
		Name:     name,
		FS:       fsys,
		Populate: ne,
		Stats:    srv.Stats,
		Close: func() {
			fsys.Close()
			client.Close()
			srv.Close()
		},
	}, nil
}

// AllSetups builds the three configurations of the paper's evaluation.
func AllSetups() ([]*Setup, error) {
	var out []*Setup
	for _, mk := range []func() (*Setup, error){SetupFFS, SetupCFSNE, SetupDisCFS} {
		s, err := mk()
		if err != nil {
			for _, p := range out {
				p.Close()
			}
			return nil, fmt.Errorf("bench: %w", err)
		}
		out = append(out, s)
	}
	return out, nil
}

// DialCFSNECached opens a second connection to the CFS-NE setup's server
// and wraps it in the attribute-caching client, for the client-cache
// ablation. The returned close function tears down only this connection.
func DialCFSNECached(s *Setup) (*nfs.CachingClient, vfs.Handle, func(), error) {
	if s.addr == "" {
		return nil, vfs.Handle{}, nil, fmt.Errorf("bench: setup has no server address")
	}
	conn, err := net.Dial("tcp", s.addr)
	if err != nil {
		return nil, vfs.Handle{}, nil, err
	}
	client := nfs.NewClient(sunrpc.NewClient(conn))
	root, err := client.Mount(context.Background(), "/export")
	if err != nil {
		client.RPC().Close()
		return nil, vfs.Handle{}, nil, err
	}
	cc := nfs.NewCachingClient(client, 0)
	return cc, root, func() { client.RPC().Close() }, nil
}
