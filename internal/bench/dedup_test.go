package bench

import "testing"

// TestDedupSpeedup is the dedup acceptance gate: on a duplicate-heavy
// stream (90% shared segments) over the same modeled exclusive disk,
// the content-addressed store must deliver at least 3x the non-dedup
// baseline's aggregate write throughput — duplicate chunks become index
// mutations instead of spindle traffic, and the hashing stays off the
// acknowledgment path.
func TestDedupSpeedup(t *testing.T) {
	const (
		writers   = 3
		perWriter = 16 << 20
		dupPct    = 90
	)
	base, err := RunDedupOne(false, dupPct, writers, perWriter)
	if err != nil {
		t.Fatalf("baseline: %v", err)
	}
	dd, err := RunDedupOne(true, dupPct, writers, perWriter)
	if err != nil {
		t.Fatalf("dedup: %v", err)
	}
	t.Logf("aggregate write MB/s at %d%% duplicates: raw %.1f, dedup %.1f (%.2fx); stored %d of %d logical bytes in %d chunks, %d hits",
		dupPct, base.AggregateMBps, dd.AggregateMBps, dd.AggregateMBps/base.AggregateMBps,
		dd.BytesStored, dd.BytesLogical, dd.Chunks, dd.Hits)
	if base.AggregateMBps <= 0 || dd.AggregateMBps <= 0 {
		t.Fatalf("degenerate throughput: base %+v dedup %+v", base, dd)
	}
	if dd.BytesStored >= dd.BytesLogical/2 {
		t.Fatalf("dedup stored %d bytes for %d logical — the duplicate stream did not deduplicate",
			dd.BytesStored, dd.BytesLogical)
	}
	if speedup := dd.AggregateMBps / base.AggregateMBps; speedup < 3.0 {
		t.Fatalf("dedup speedup %.2fx, want >= 3x (raw %.1f MB/s, dedup %.1f MB/s)",
			speedup, base.AggregateMBps, dd.AggregateMBps)
	}
}
