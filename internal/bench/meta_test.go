package bench

import (
	"testing"
)

// TestMetaSpeedup is the metadata-plane acceptance measure: over the
// 10k-entry tree, the batched READDIRPLUS walk must beat the per-name
// LOOKUP walk by at least 5x. The per-name walk pays one round trip per
// entry; the batched walk pays one per page, so the bound holds with a
// wide margin on any machine where the loopback round trip is not free.
func TestMetaSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("metadata walk measurement skipped in -short mode")
	}
	res, err := Meta(MetaTreeSpec, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("tree: %d files, %d dirs", res.Files, res.Dirs)
	t.Logf("per-name walk %.3fs, readdirplus walk %.3fs: %.1fx", res.LegacySec, res.PlusSec, res.Speedup)
	if res.Speedup < 5 {
		t.Errorf("readdirplus walk speedup %.1fx: below the 5x acceptance bound", res.Speedup)
	}
}

// TestMetaWalksAgree runs the comparison on a small tree even in -short
// mode; Meta itself fails if the two walks see different files, dirs or
// bytes.
func TestMetaWalksAgree(t *testing.T) {
	spec := TreeSpec{Subsystems: 4, FilesPerDir: 8, MeanFileSize: 256, Depth: 2, Seed: 7}
	res, err := Meta(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 2 * 8; res.Files != want {
		t.Errorf("walked %d files, want %d", res.Files, want)
	}
	if want := 1 + 4*2; res.Dirs != want {
		t.Errorf("walked %d dirs, want %d", res.Dirs, want)
	}
}

// BenchmarkMeta reports both walk flavors for the CI trajectory; run
// with -benchtime=1x for a smoke pass.
func BenchmarkMeta(b *testing.B) {
	spec := TreeSpec{Subsystems: 8, FilesPerDir: 32, MeanFileSize: 512, Depth: 2, Seed: 2003}
	m, err := NewMetaSetup(spec)
	if err != nil {
		b.Fatal(err)
	}
	defer m.Close()
	b.Run("per-name", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, _, err := m.WalkLegacy(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("readdirplus", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, _, _, err := m.WalkPlus(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
