package bench

import (
	"testing"
)

// TestFedSpeedup is the scale-out acceptance gate: three servers on
// disjoint working sets must deliver at least 2.4x the aggregate write
// throughput of one server with the same modeled per-server disk —
// near-linear scaling, with the slack covering the shared client CPU
// and the secure channel.
func TestFedSpeedup(t *testing.T) {
	const (
		writers   = 6
		perWriter = 4 << 20
	)
	results, err := RunFed([]int{1, 3}, writers, perWriter)
	if err != nil {
		t.Fatalf("RunFed: %v", err)
	}
	single, tripled := results[0].AggregateMBps, results[1].AggregateMBps
	t.Logf("aggregate write MB/s: 1 server %.1f, 3 servers %.1f (%.2fx)",
		single, tripled, tripled/single)
	if single <= 0 || tripled <= 0 {
		t.Fatalf("degenerate throughput: %v", results)
	}
	if speedup := tripled / single; speedup < 2.4 {
		t.Fatalf("3-server speedup %.2fx, want >= 2.4x (1 server %.1f MB/s, 3 servers %.1f MB/s)",
			speedup, single, tripled)
	}
}

// TestSpreadNames pins the working-set picker: names land round-robin
// on their assigned shards and never repeat.
func TestSpreadNames(t *testing.T) {
	names := SpreadNames(3, 9)
	seen := make(map[string]bool)
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate name %s", n)
		}
		seen[n] = true
	}
	s, err := NewFedSetup(3, 0)
	if err != nil {
		t.Fatalf("NewFedSetup: %v", err)
	}
	defer s.Close()
	c, err := s.Dial()
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	defer c.Close()
	ctx := t.Context()
	for i, n := range names {
		if _, _, err := c.WriteFile(ctx, "/data/"+n, []byte("x")); err != nil {
			t.Fatalf("WriteFile %s: %v", n, err)
		}
		want := i % 3
		b := s.backings[want]
		d, err := b.Lookup(b.Root(), "data")
		if err != nil {
			t.Fatalf("shard %d: lookup /data: %v", want, err)
		}
		if _, err := b.Lookup(d.Handle, n); err != nil {
			t.Fatalf("%s not on shard %d: %v", n, want, err)
		}
	}
}
