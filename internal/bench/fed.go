package bench

// The federation scale-out table: aggregate streaming write throughput
// against 1..N sharded servers. Each server's store sits on a modeled
// disk with Exclusive cost accounting (the device lock is held while
// the modeled transfer elapses), so a single server is genuinely
// device-bound and every added shard adds real spindle bandwidth — the
// property horizontal scale-out claims. Clients route writes to the
// shard owning each file name (consistent hashing of the /data
// subtree), so disjoint working sets spread evenly with no
// coordination between servers.

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"discfs/internal/core"
	"discfs/internal/fed"
	"discfs/internal/ffs"
	"discfs/internal/keynote"
)

// FedDiskMBps is the modeled per-server disk bandwidth for the
// scale-out table: slow enough that one server saturates its spindle
// long before the CPU (the stack clears an order of magnitude more
// with a free disk), so the aggregate scales with servers. Note the
// store's metadata traffic — inode, bitmap and indirect-block updates
// around every data block — consumes spindle bandwidth too, so
// effective file throughput sits well under this figure, identically
// at every shard count.
const FedDiskMBps = 32

// FedResult is one scale-out measurement.
type FedResult struct {
	// Servers is the shard count.
	Servers int
	// Writers is the number of concurrent streaming writers.
	Writers int
	// AggregateMBps is total bytes moved over the wall-clock window,
	// including every writer's Sync/COMMIT barrier.
	AggregateMBps float64
}

// FedSetup is a federation of n independent DisCFS servers sharing one
// administrator trust anchor, each on its own modeled disk, each
// exporting the /data shard subtree.
type FedSetup struct {
	n        int
	addrs    []string
	srvs     []*core.Server
	backings []*ffs.FFS // per-shard stores, for ground-truth checks
	userKey  *keynote.KeyPair
	chain    string
}

// NewFedSetup provisions n servers with diskMBps of Exclusive modeled
// disk bandwidth each, pre-creates /data everywhere (as discfsd
// -fed-subtree does), and credentials one user RWX on every shard.
func NewFedSetup(n int, diskMBps int64) (*FedSetup, error) {
	adminKey := keynote.DeterministicKey("fed-bench-admin")
	userKey := keynote.DeterministicKey("fed-bench-user")
	s := &FedSetup{n: n, userKey: userKey}
	for i := 0; i < n; i++ {
		backing, err := ffs.New(ffs.Config{
			BlockSize: 8192,
			NumBlocks: 1 << 16,
			Disk:      ffs.DiskModel{BytesPerSecond: diskMBps << 20, Exclusive: true},
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		if _, err := backing.Mkdir(backing.Root(), "data", 0o755); err != nil {
			s.Close()
			return nil, err
		}
		srv, err := core.NewServer(core.ServerConfig{
			Backing:   backing,
			ServerKey: adminKey,
			CacheSize: 128,
		})
		if err != nil {
			s.Close()
			return nil, err
		}
		cred, err := srv.IssueCredential(userKey.Principal, backing.Root().Ino, "RWX",
			fmt.Sprintf("fed bench user, shard %d", i))
		if err != nil {
			srv.Close()
			s.Close()
			return nil, err
		}
		addr, err := srv.Start()
		if err != nil {
			srv.Close()
			s.Close()
			return nil, err
		}
		s.srvs = append(s.srvs, srv)
		s.backings = append(s.backings, backing)
		s.addrs = append(s.addrs, addr)
		s.chain += cred.Source + "\n\n"
	}
	return s, nil
}

// Close tears every server down.
func (s *FedSetup) Close() {
	for _, srv := range s.srvs {
		srv.Close()
	}
}

// Dial attaches a federated client (shard subtree /data) and submits
// the user's credential chain to every shard.
func (s *FedSetup) Dial() (*core.Client, error) {
	c, err := core.Dial(context.Background(), s.addrs[0], s.userKey,
		core.WithServers(s.addrs[1:]...), core.WithShardSubtree("/data"))
	if err != nil {
		return nil, err
	}
	if _, err := c.SubmitCredentialText(context.Background(), s.chain); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// SpreadNames picks `count` file names such that name i lives on shard
// i%n — a disjoint, evenly spread working set. Placement is a pure
// function of (shard count, name), so the picked set matches what the
// servers will actually hold.
func SpreadNames(n, count int) []string {
	table, err := fed.New(fed.Spec{Extra: make([]string, n-1), ShardSubtree: "/data"})
	if err != nil {
		panic(err) // static spec; cannot fail for n >= 1
	}
	names := make([]string, count)
	next := 0
	for i := range names {
		for ; ; next++ {
			cand := fmt.Sprintf("w-%04d.dat", next)
			if table.Owner(cand) == i%n {
				names[i] = cand
				next++
				break
			}
		}
	}
	return names
}

// Aggregate measures total streaming write throughput: writers
// concurrent goroutines, each moving perWriter bytes into its own file
// in /data and Syncing inside the timed window. File names are spread
// round-robin across shards.
func (s *FedSetup) Aggregate(writers int, perWriter int64) (FedResult, error) {
	ctx := context.Background()
	res := FedResult{Servers: s.n, Writers: writers}
	c, err := s.Dial()
	if err != nil {
		return res, err
	}
	defer c.Close()

	names := SpreadNames(s.n, writers)
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(i*2654435761 + i>>12)
	}

	// Warm outside the window: create every file, push one write-behind
	// window through it (dialing the per-shard data-connection pools and
	// spinning up flush workers), then truncate back to empty.
	files := make([]*core.File, writers)
	for i, name := range names {
		f, err := c.Open(ctx, "/data/"+name, os.O_CREATE|os.O_RDWR|os.O_TRUNC)
		if err != nil {
			return res, err
		}
		files[i] = f
		defer f.Close()
	}
	var wg sync.WaitGroup
	errs := make([]error, writers)
	warm := func(i int) {
		defer wg.Done()
		f := files[i]
		for n := 0; n < 4; n++ {
			if _, err := f.Write(buf[:256<<10]); err != nil {
				errs[i] = err
				return
			}
		}
		if err := f.Sync(); err != nil {
			errs[i] = err
			return
		}
		if err := f.Truncate(0); err != nil {
			errs[i] = err
			return
		}
		if _, err := f.Seek(0, 0); err != nil {
			errs[i] = err
		}
	}
	for i := range files {
		wg.Add(1)
		go warm(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}

	start := time.Now()
	for i := range files {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f := files[i]
			for moved := int64(0); moved < perWriter; {
				chunk := int64(len(buf))
				if rem := perWriter - moved; rem < chunk {
					chunk = rem
				}
				if _, err := f.Write(buf[:chunk]); err != nil {
					errs[i] = err
					return
				}
				moved += chunk
			}
			errs[i] = f.Sync()
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	total := float64(perWriter) * float64(writers)
	res.AggregateMBps = total / (1 << 20) / elapsed.Seconds()
	return res, nil
}

// RunFed measures the scale-out curve for the given shard counts with
// one fresh federation per point.
func RunFed(serverCounts []int, writers int, perWriter int64) ([]FedResult, error) {
	var out []FedResult
	for _, n := range serverCounts {
		s, err := NewFedSetup(n, FedDiskMBps)
		if err != nil {
			return nil, err
		}
		r, err := s.Aggregate(writers, perWriter)
		s.Close()
		if err != nil {
			return nil, fmt.Errorf("bench: fed %d servers: %w", n, err)
		}
		out = append(out, r)
	}
	return out, nil
}
