package keynote

import (
	"fmt"
	"strings"
)

// tokKind enumerates lexical token kinds of the assertion expression
// languages (Licensees and Conditions fields share one lexer).
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString  // quoted string literal (value already unescaped)
	tokNumber  // integer or float literal
	tokLParen  // (
	tokRParen  // )
	tokLBrace  // {
	tokRBrace  // }
	tokSemi    // ;
	tokComma   // ,
	tokArrow   // ->
	tokAndAnd  // &&
	tokOrOr    // ||
	tokNot     // !
	tokEq      // ==
	tokNe      // !=
	tokLt      // <
	tokLe      // <=
	tokGt      // >
	tokGe      // >=
	tokRegex   // ~=
	tokPlus    // +
	tokMinus   // -
	tokStar    // *
	tokSlash   // /
	tokPercent // %
	tokCaret   // ^
	tokDot     // . (string concatenation)
	tokAt      // @ (numeric coercion)
	tokDollar  // $ (attribute dereference)
	tokAssign  // = (Local-Constants only)
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokString:
		return "string"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokSemi:
		return "';'"
	case tokComma:
		return "','"
	case tokArrow:
		return "'->'"
	case tokAndAnd:
		return "'&&'"
	case tokOrOr:
		return "'||'"
	case tokNot:
		return "'!'"
	case tokEq:
		return "'=='"
	case tokNe:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokRegex:
		return "'~='"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokPercent:
		return "'%'"
	case tokCaret:
		return "'^'"
	case tokDot:
		return "'.'"
	case tokAt:
		return "'@'"
	case tokDollar:
		return "'$'"
	case tokAssign:
		return "'='"
	}
	return "unknown token"
}

// token is a single lexical token with its source offset.
type token struct {
	kind tokKind
	text string // identifier name, unescaped string value, or number text
	off  int
}

// lexer tokenizes a field body. It is shared by the Licensees,
// Local-Constants and Conditions parsers.
type lexer struct {
	field string // field name for error messages
	src   string
	pos   int
	toks  []token
	idx   int
}

// newLexer tokenizes src fully, returning the first error encountered.
func newLexer(field, src string) (*lexer, error) {
	l := &lexer{field: field, src: src}
	if err := l.run(); err != nil {
		return nil, err
	}
	return l, nil
}

func (l *lexer) errf(off int, format string, args ...any) error {
	return &SyntaxError{Field: l.field, Offset: off, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) run() error {
	for {
		tok, err := l.next()
		if err != nil {
			return err
		}
		l.toks = append(l.toks, tok)
		if tok.kind == tokEOF {
			return nil
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentByte(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) next() (token, error) {
	src := l.src
	// Skip whitespace (field continuation lines were already folded into
	// spaces by the assertion splitter, but tolerate raw newlines too).
	for l.pos < len(src) {
		switch src[l.pos] {
		case ' ', '\t', '\r', '\n':
			l.pos++
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(src) {
		return token{kind: tokEOF, off: start}, nil
	}
	c := src[l.pos]
	switch {
	case isIdentStart(c):
		for l.pos < len(src) && isIdentByte(src[l.pos]) {
			l.pos++
		}
		return token{kind: tokIdent, text: src[start:l.pos], off: start}, nil
	case isDigit(c):
		for l.pos < len(src) && isDigit(src[l.pos]) {
			l.pos++
		}
		if l.pos+1 < len(src) && src[l.pos] == '.' && isDigit(src[l.pos+1]) {
			l.pos++
			for l.pos < len(src) && isDigit(src[l.pos]) {
				l.pos++
			}
		}
		return token{kind: tokNumber, text: src[start:l.pos], off: start}, nil
	case c == '"':
		val, end, err := lexString(src, l.pos)
		if err != nil {
			return token{}, l.errf(start, "%v", err)
		}
		l.pos = end
		return token{kind: tokString, text: val, off: start}, nil
	}
	// Operators.
	two := ""
	if l.pos+1 < len(src) {
		two = src[l.pos : l.pos+2]
	}
	switch two {
	case "->":
		l.pos += 2
		return token{kind: tokArrow, off: start}, nil
	case "&&":
		l.pos += 2
		return token{kind: tokAndAnd, off: start}, nil
	case "||":
		l.pos += 2
		return token{kind: tokOrOr, off: start}, nil
	case "==":
		l.pos += 2
		return token{kind: tokEq, off: start}, nil
	case "!=":
		l.pos += 2
		return token{kind: tokNe, off: start}, nil
	case "<=":
		l.pos += 2
		return token{kind: tokLe, off: start}, nil
	case ">=":
		l.pos += 2
		return token{kind: tokGe, off: start}, nil
	case "~=":
		l.pos += 2
		return token{kind: tokRegex, off: start}, nil
	}
	l.pos++
	switch c {
	case '(':
		return token{kind: tokLParen, off: start}, nil
	case ')':
		return token{kind: tokRParen, off: start}, nil
	case '{':
		return token{kind: tokLBrace, off: start}, nil
	case '}':
		return token{kind: tokRBrace, off: start}, nil
	case ';':
		return token{kind: tokSemi, off: start}, nil
	case ',':
		return token{kind: tokComma, off: start}, nil
	case '!':
		return token{kind: tokNot, off: start}, nil
	case '<':
		return token{kind: tokLt, off: start}, nil
	case '>':
		return token{kind: tokGt, off: start}, nil
	case '+':
		return token{kind: tokPlus, off: start}, nil
	case '-':
		return token{kind: tokMinus, off: start}, nil
	case '*':
		return token{kind: tokStar, off: start}, nil
	case '/':
		return token{kind: tokSlash, off: start}, nil
	case '%':
		return token{kind: tokPercent, off: start}, nil
	case '^':
		return token{kind: tokCaret, off: start}, nil
	case '.':
		return token{kind: tokDot, off: start}, nil
	case '@':
		return token{kind: tokAt, off: start}, nil
	case '$':
		return token{kind: tokDollar, off: start}, nil
	case '=':
		return token{kind: tokAssign, off: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

// lexString scans a quoted string starting at src[start] == '"'.
// It returns the unescaped value and the position just past the closing
// quote. Escapes: \" \\ \n \t; a backslash-newline is a line continuation
// that contributes nothing (RFC 2704 section 3).
func lexString(src string, start int) (string, int, error) {
	var b strings.Builder
	i := start + 1
	for i < len(src) {
		c := src[i]
		switch c {
		case '"':
			return b.String(), i + 1, nil
		case '\\':
			if i+1 >= len(src) {
				return "", 0, fmt.Errorf("unterminated escape in string")
			}
			i++
			switch src[i] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '\n':
				// line continuation: swallow
			default:
				return "", 0, fmt.Errorf("unknown escape \\%c in string", src[i])
			}
			i++
		default:
			b.WriteByte(c)
			i++
		}
	}
	return "", 0, fmt.Errorf("unterminated string literal")
}

// peek returns the current token without consuming it.
func (l *lexer) peek() token { return l.toks[l.idx] }

// peek2 returns the token after the current one (or EOF).
func (l *lexer) peek2() token {
	if l.idx+1 < len(l.toks) {
		return l.toks[l.idx+1]
	}
	return l.toks[len(l.toks)-1]
}

// take consumes and returns the current token.
func (l *lexer) take() token {
	t := l.toks[l.idx]
	if l.idx < len(l.toks)-1 {
		l.idx++
	}
	return t
}

// expect consumes a token of the given kind or returns an error.
func (l *lexer) expect(k tokKind) (token, error) {
	t := l.peek()
	if t.kind != k {
		return token{}, l.errf(t.off, "expected %v, found %v", k, t.kind)
	}
	return l.take(), nil
}
