package keynote

import (
	"crypto"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/rsa"
	"crypto/sha256"
	"crypto/x509"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"strings"
)

// Algorithm identifies the public-key algorithm of a principal.
type Algorithm string

// Supported key algorithms. The paper's prototype used DSA; DSA is
// deprecated in modern Go, so Ed25519 takes its place as the default
// signature scheme and RSA is kept for interoperability breadth.
const (
	AlgNone    Algorithm = ""        // opaque principal (not a key)
	AlgEd25519 Algorithm = "ed25519" // Ed25519 (default)
	AlgRSA     Algorithm = "rsa"     // RSA with SHA-256
)

// Principal is a KeyNote principal: either a public key in canonical text
// encoding (e.g. "ed25519-hex:3081de…") or an opaque name (e.g. "POLICY").
// Principals compare by their canonical string form.
type Principal string

// PolicyPrincipal is the distinguished authorizer of local policy
// assertions, which are unconditionally trusted and need no signature.
const PolicyPrincipal Principal = "POLICY"

// IsKey reports whether the principal is a cryptographic key (as opposed
// to an opaque name such as "POLICY").
func (p Principal) IsKey() bool {
	alg, _, err := splitKey(string(p))
	return err == nil && alg != AlgNone
}

// Algorithm returns the principal's key algorithm, or AlgNone for opaque
// principals.
func (p Principal) Algorithm() Algorithm {
	alg, _, err := splitKey(string(p))
	if err != nil {
		return AlgNone
	}
	return alg
}

// Short returns an abbreviated form of the principal for logs: the
// algorithm prefix and the first eight hex digits of the key material.
func (p Principal) Short() string {
	alg, raw, err := splitKey(string(p))
	if err != nil || alg == AlgNone {
		s := string(p)
		if len(s) > 16 {
			return s[:16] + "…"
		}
		return s
	}
	h := hex.EncodeToString(raw)
	if len(h) > 8 {
		h = h[:8]
	}
	return string(alg) + ":" + h
}

// splitKey parses a principal string of the form "<alg>-<enc>:<data>".
// It returns AlgNone with no error for strings that do not look like keys.
func splitKey(s string) (Algorithm, []byte, error) {
	colon := strings.IndexByte(s, ':')
	if colon < 0 {
		return AlgNone, nil, nil
	}
	prefix := strings.ToLower(s[:colon])
	data := s[colon+1:]
	var alg Algorithm
	var enc string
	switch {
	case strings.HasPrefix(prefix, "ed25519-"):
		alg, enc = AlgEd25519, prefix[len("ed25519-"):]
	case strings.HasPrefix(prefix, "rsa-"):
		alg, enc = AlgRSA, prefix[len("rsa-"):]
	default:
		return AlgNone, nil, nil // opaque principal containing a colon
	}
	raw, err := decodeKeyData(enc, data)
	if err != nil {
		return AlgNone, nil, fmt.Errorf("keynote: bad %s key encoding: %w", alg, err)
	}
	return alg, raw, nil
}

func decodeKeyData(enc, data string) ([]byte, error) {
	switch enc {
	case "hex":
		return hex.DecodeString(strings.ToLower(data))
	case "base64":
		return base64.StdEncoding.DecodeString(data)
	default:
		return nil, fmt.Errorf("unknown encoding %q", enc)
	}
}

// canonicalPrincipal normalizes a principal string: cryptographic keys are
// rewritten to lowercase "<alg>-hex:" form so that the same key in hex and
// base64 encodings compares equal; opaque names are returned unchanged.
func canonicalPrincipal(s string) (Principal, error) {
	alg, raw, err := splitKey(s)
	if err != nil {
		return "", err
	}
	if alg == AlgNone {
		return Principal(s), nil
	}
	return Principal(string(alg) + "-hex:" + hex.EncodeToString(raw)), nil
}

// PublicKey reconstructs the crypto public key of a key principal.
func (p Principal) PublicKey() (crypto.PublicKey, error) {
	alg, raw, err := splitKey(string(p))
	if err != nil {
		return nil, err
	}
	switch alg {
	case AlgEd25519:
		if len(raw) != ed25519.PublicKeySize {
			return nil, fmt.Errorf("keynote: ed25519 key has %d bytes, want %d", len(raw), ed25519.PublicKeySize)
		}
		return ed25519.PublicKey(raw), nil
	case AlgRSA:
		pub, err := x509.ParsePKIXPublicKey(raw)
		if err != nil {
			return nil, fmt.Errorf("keynote: parsing rsa key: %w", err)
		}
		rpub, ok := pub.(*rsa.PublicKey)
		if !ok {
			return nil, fmt.Errorf("keynote: key is %T, not RSA", pub)
		}
		return rpub, nil
	default:
		return nil, fmt.Errorf("keynote: principal %s is not a key", p.Short())
	}
}

// KeyPair is a principal together with its private key, able to sign
// credentials and requests.
type KeyPair struct {
	Principal Principal
	priv      crypto.Signer
	alg       Algorithm
}

// GenerateKey creates a new Ed25519 key pair.
func GenerateKey() (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("keynote: generating key: %w", err)
	}
	p := Principal("ed25519-hex:" + hex.EncodeToString(pub))
	return &KeyPair{Principal: p, priv: priv, alg: AlgEd25519}, nil
}

// GenerateRSAKey creates a new RSA key pair of the given size in bits.
func GenerateRSAKey(bits int) (*KeyPair, error) {
	priv, err := rsa.GenerateKey(rand.Reader, bits)
	if err != nil {
		return nil, fmt.Errorf("keynote: generating rsa key: %w", err)
	}
	der, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("keynote: encoding rsa key: %w", err)
	}
	p := Principal("rsa-hex:" + hex.EncodeToString(der))
	return &KeyPair{Principal: p, priv: priv, alg: AlgRSA}, nil
}

// KeyFromSeed reconstructs an Ed25519 key pair from its 32-byte seed
// (the persistence format of key files).
func KeyFromSeed(seed []byte) (*KeyPair, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("keynote: seed is %d bytes, want %d", len(seed), ed25519.SeedSize)
	}
	priv := ed25519.NewKeyFromSeed(seed)
	pub := priv.Public().(ed25519.PublicKey)
	p := Principal("ed25519-hex:" + hex.EncodeToString(pub))
	return &KeyPair{Principal: p, priv: priv, alg: AlgEd25519}, nil
}

// Seed returns the Ed25519 seed for persistence, or nil for non-Ed25519
// keys.
func (k *KeyPair) Seed() []byte {
	if priv, ok := k.priv.(ed25519.PrivateKey); ok {
		return priv.Seed()
	}
	return nil
}

// DeterministicKey derives an Ed25519 key pair from a seed string. It is
// intended for tests and examples that need stable principals; real
// deployments must use GenerateKey.
func DeterministicKey(seed string) *KeyPair {
	sum := sha256.Sum256([]byte("keynote-deterministic:" + seed))
	priv := ed25519.NewKeyFromSeed(sum[:])
	pub := priv.Public().(ed25519.PublicKey)
	p := Principal("ed25519-hex:" + hex.EncodeToString(pub))
	return &KeyPair{Principal: p, priv: priv, alg: AlgEd25519}
}

// Algorithm returns the key pair's algorithm.
func (k *KeyPair) Algorithm() Algorithm { return k.alg }

// Signer exposes the underlying private key, for use by transport layers
// (the secure channel signs its handshake with the same identity key).
func (k *KeyPair) Signer() crypto.Signer { return k.priv }

// signatureAlgName returns the identifier embedded in Signature fields,
// e.g. "sig-ed25519-hex:".
func (k *KeyPair) signatureAlgName() string {
	switch k.alg {
	case AlgEd25519:
		return "sig-ed25519-hex:"
	case AlgRSA:
		return "sig-rsa-sha256-hex:"
	default:
		return "sig-unknown-hex:"
	}
}

// signMessage signs msg with the key pair's algorithm and returns the raw
// signature bytes.
func (k *KeyPair) signMessage(msg []byte) ([]byte, error) {
	switch k.alg {
	case AlgEd25519:
		return k.priv.Sign(rand.Reader, msg, crypto.Hash(0))
	case AlgRSA:
		sum := sha256.Sum256(msg)
		return k.priv.Sign(rand.Reader, sum[:], crypto.SHA256)
	default:
		return nil, fmt.Errorf("keynote: cannot sign with algorithm %q", k.alg)
	}
}

// verifyMessage checks a raw signature by principal p over msg, where
// algName is the signature algorithm identifier from the credential.
func verifyMessage(p Principal, algName string, msg, sig []byte) error {
	pub, err := p.PublicKey()
	if err != nil {
		return err
	}
	switch {
	case strings.HasPrefix(algName, "sig-ed25519-"):
		epub, ok := pub.(ed25519.PublicKey)
		if !ok {
			return fmt.Errorf("keynote: %s signature but %s key", algName, p.Algorithm())
		}
		if !ed25519.Verify(epub, msg, sig) {
			return ErrBadSignature
		}
		return nil
	case strings.HasPrefix(algName, "sig-rsa-sha256-"):
		rpub, ok := pub.(*rsa.PublicKey)
		if !ok {
			return fmt.Errorf("keynote: %s signature but %s key", algName, p.Algorithm())
		}
		sum := sha256.Sum256(msg)
		if err := rsa.VerifyPKCS1v15(rpub, crypto.SHA256, sum[:], sig); err != nil {
			return ErrBadSignature
		}
		return nil
	default:
		return fmt.Errorf("keynote: unknown signature algorithm %q", algName)
	}
}
