package keynote

import (
	"strings"
	"testing"
)

// evalCond parses a Conditions body and evaluates it against attrs using
// the given ordered values, returning the resulting value name.
func evalCond(t *testing.T, cond string, attrs map[string]string, values []string) string {
	t.Helper()
	prog, err := parseConditions(cond, nil)
	if err != nil {
		t.Fatalf("parseConditions(%q): %v", cond, err)
	}
	order, err := newValueOrder(values)
	if err != nil {
		t.Fatalf("newValueOrder: %v", err)
	}
	ev := &env{attrs: func(n string) (string, bool) {
		switch n {
		case "_MIN_TRUST":
			return values[0], true
		case "_MAX_TRUST":
			return values[len(values)-1], true
		}
		v, ok := attrs[n]
		return v, ok
	}}
	return values[prog.eval(ev, order)]
}

var binVals = []string{"false", "true"}

func TestConditionsStringComparison(t *testing.T) {
	attrs := map[string]string{"app_domain": "DisCFS", "HANDLE": "666240"}
	cases := []struct {
		cond string
		want string
	}{
		{`app_domain == "DisCFS" -> "true";`, "true"},
		{`app_domain == "RCS" -> "true";`, "false"},
		{`app_domain != "RCS" -> "true";`, "true"},
		{`HANDLE == "666240" -> "true";`, "true"},
		{`HANDLE < "7" -> "true";`, "true"}, // lexicographic
		{`"abc" < "abd" -> "true";`, "true"},
		{`"b" >= "a" && "a" <= "a" -> "true";`, "true"},
		{`missing == "" -> "true";`, "true"}, // undefined attr reads as ""
	}
	for _, c := range cases {
		if got := evalCond(t, c.cond, attrs, binVals); got != c.want {
			t.Errorf("%q = %q, want %q", c.cond, got, c.want)
		}
	}
}

func TestConditionsNumericComparison(t *testing.T) {
	attrs := map[string]string{"size": "4096", "hour": "14", "pi": "3.14"}
	cases := []struct {
		cond string
		want string
	}{
		{`@size > 1000 -> "true";`, "true"},
		{`@size == 4096 -> "true";`, "true"},
		{`@hour >= 9 && @hour < 17 -> "true";`, "true"},
		{`@pi > 3 && @pi < 4 -> "true";`, "true"},
		{`@size + 4 == 4100 -> "true";`, "true"},
		{`@size * 2 == 8192 -> "true";`, "true"},
		{`@size / 2 == 2048 -> "true";`, "true"},
		{`@size % 100 == 96 -> "true";`, "true"},
		{`2 ^ 10 == 1024 -> "true";`, "true"},
		{`-@hour == -14 -> "true";`, "true"},
		{`@absent == 0 -> "true";`, "true"},     // missing attr coerces to 0
		{`@app_domain == 0 -> "true";`, "true"}, // non-numeric coerces to 0
		{`@size / 0 == 1 -> "true";`, "false"},  // division by zero fails closed
	}
	for _, c := range cases {
		if got := evalCond(t, c.cond, attrs, binVals); got != c.want {
			t.Errorf("%q = %q, want %q", c.cond, got, c.want)
		}
	}
}

func TestConditionsRegex(t *testing.T) {
	attrs := map[string]string{"filename": "report.pdf", "path": "/docs/2001/report.pdf"}
	cases := []struct {
		cond string
		want string
	}{
		{`filename ~= "\\.pdf$" -> "true";`, "true"},
		{`filename ~= "^report" -> "true";`, "true"},
		{`filename ~= "\\.doc$" -> "true";`, "false"},
		{`path ~= "/docs/" -> "true";`, "true"},
		{`filename ~= "(" -> "true";`, "false"}, // bad regex fails closed
	}
	for _, c := range cases {
		if got := evalCond(t, c.cond, attrs, binVals); got != c.want {
			t.Errorf("%q = %q, want %q", c.cond, got, c.want)
		}
	}
}

func TestConditionsStringOps(t *testing.T) {
	attrs := map[string]string{"dir": "docs", "file": "a.txt", "docs_owner": "bob", "who": "bob"}
	cases := []struct {
		cond string
		want string
	}{
		{`dir . "/" . file == "docs/a.txt" -> "true";`, "true"},
		{`$("dir") == "docs" -> "true";`, "true"},
		// $ dereference: attribute named by (dir . "_owner") is docs_owner.
		{`$(dir . "_owner") == who -> "true";`, "true"},
	}
	for _, c := range cases {
		if got := evalCond(t, c.cond, attrs, binVals); got != c.want {
			t.Errorf("%q = %q, want %q", c.cond, got, c.want)
		}
	}
}

func TestConditionsBooleanStructure(t *testing.T) {
	attrs := map[string]string{"a": "1", "b": "2"}
	cases := []struct {
		cond string
		want string
	}{
		{`true -> "true";`, "true"},
		{`false -> "true";`, "false"},
		{`!false -> "true";`, "true"},
		{`!(a == "1") -> "true";`, "false"},
		{`a == "1" || b == "9" -> "true";`, "true"},
		{`a == "9" || b == "2" -> "true";`, "true"},
		{`a == "9" || b == "9" -> "true";`, "false"},
		{`(a == "1") && (b == "2") -> "true";`, "true"},
	}
	for _, c := range cases {
		if got := evalCond(t, c.cond, attrs, binVals); got != c.want {
			t.Errorf("%q = %q, want %q", c.cond, got, c.want)
		}
	}
}

var rwxVals = []string{"false", "X", "W", "WX", "R", "RX", "RW", "RWX"}

func TestConditionsMultiValue(t *testing.T) {
	attrs := map[string]string{"HANDLE": "42", "level": "low"}
	cases := []struct {
		cond string
		want string
	}{
		// The paper's Figure 5 credential shape.
		{`(app_domain == "DisCFS") && (HANDLE == "42") -> "RWX";`, "false"},
		{`(HANDLE == "42") -> "RWX";`, "RWX"},
		// Multiple clauses: maximum of satisfied clause values.
		{`HANDLE == "42" -> "R"; HANDLE == "42" -> "W";`, "R"}, // R > W in DisCFS order
		{`HANDLE == "42" -> "W"; HANDLE == "0" -> "RWX";`, "W"},
		// Clause with no arrow returns _MAX_TRUST.
		{`HANDLE == "42";`, "RWX"},
		// Unknown value name collapses to _MIN_TRUST.
		{`HANDLE == "42" -> "SUPERUSER";`, "false"},
		// Value can be a string expression.
		{`HANDLE == "42" -> _MAX_TRUST;`, "RWX"},
		{`HANDLE == "42" -> "R" . "W";`, "RW"},
		// Nested programs.
		{`HANDLE == "42" -> { level == "low" -> "R"; level == "high" -> "RWX"; };`, "R"},
		{`HANDLE == "0" -> { true -> "RWX"; };`, "false"},
	}
	for _, c := range cases {
		if got := evalCond(t, c.cond, attrs, rwxVals); got != c.want {
			t.Errorf("%q = %q, want %q", c.cond, got, c.want)
		}
	}
}

func TestConditionsParseErrors(t *testing.T) {
	bad := []string{
		`app_domain == `,
		`-> "true";`,
		`a == "x" -> ;`,
		`a == 5;`,                   // string vs number
		`@a == "x";`,                // number vs string
		`a + "b" == "c";`,           // '+' on strings
		`a . 5 == "c";`,             // '.' on number
		`!a == "b";`,                // '!' on string… binds to a, making !string
		`true && a;`,                // '&&' with string operand
		`a == "b" -> "v" c == "d";`, // missing semicolon between clauses
		`a == "b" "c";`,             // junk after test
		`(a == "b" -> "v";`,         // unbalanced paren
		`a == "b" -> { true; `,      // unbalanced brace
		`5 < 6 < 7;`,                // chained comparison (bool < num)
	}
	for _, c := range bad {
		if _, err := parseConditions(c, nil); err == nil {
			t.Errorf("parseConditions(%q) succeeded, want error", c)
		}
	}
	// Trailing clause without semicolon at EOF is accepted (lenient).
	if _, err := parseConditions(`a == "b" -> "true"`, nil); err != nil {
		t.Errorf("lenient trailing semicolon: %v", err)
	}
}

func TestConditionsLocalConstantSubstitution(t *testing.T) {
	consts := map[string]string{"TARGET": "666240"}
	prog, err := parseConditions(`HANDLE == TARGET -> "true";`, consts)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	order, _ := newValueOrder(binVals)
	ev := &env{attrs: func(n string) (string, bool) {
		if n == "HANDLE" {
			return "666240", true
		}
		return "", false
	}}
	if got := binVals[prog.eval(ev, order)]; got != "true" {
		t.Errorf("constant substitution failed: got %q", got)
	}
}

func TestLexerStrings(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{`"hello"`, "hello"},
		{`"he\"llo"`, `he"llo`},
		{`"back\\slash"`, `back\slash`},
		{`"tab\there"`, "tab\there"},
		{`"new\nline"`, "new\nline"},
	}
	for _, c := range cases {
		lx, err := newLexer("test", c.in)
		if err != nil {
			t.Fatalf("lex %q: %v", c.in, err)
		}
		tok := lx.take()
		if tok.kind != tokString || tok.text != c.want {
			t.Errorf("lex %q = %q, want %q", c.in, tok.text, c.want)
		}
	}
	for _, bad := range []string{`"unterminated`, `"bad\escape"`, `"trail\`} {
		if _, err := newLexer("test", bad); err == nil {
			t.Errorf("lex %q succeeded, want error", bad)
		}
	}
}

func TestLexerOperators(t *testing.T) {
	lx, err := newLexer("test", `-> && || == != <= >= ~= < > ! + - * / % ^ . @ $ ( ) { } ; , =`)
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	want := []tokKind{tokArrow, tokAndAnd, tokOrOr, tokEq, tokNe, tokLe, tokGe, tokRegex,
		tokLt, tokGt, tokNot, tokPlus, tokMinus, tokStar, tokSlash, tokPercent, tokCaret,
		tokDot, tokAt, tokDollar, tokLParen, tokRParen, tokLBrace, tokRBrace, tokSemi, tokComma, tokAssign, tokEOF}
	for i, w := range want {
		tok := lx.take()
		if tok.kind != w {
			t.Fatalf("token %d = %v, want %v", i, tok.kind, w)
		}
	}
}

func TestLexerRejectsStrayCharacters(t *testing.T) {
	if _, err := newLexer("test", "a ? b"); err == nil {
		t.Error("stray '?' accepted")
	}
}

func TestNumberLexing(t *testing.T) {
	lx, err := newLexer("test", "42 3.14 0 10.5")
	if err != nil {
		t.Fatalf("lex: %v", err)
	}
	want := []string{"42", "3.14", "0", "10.5"}
	for _, w := range want {
		tok := lx.take()
		if tok.kind != tokNumber || tok.text != w {
			t.Errorf("number token = %v %q, want %q", tok.kind, tok.text, w)
		}
	}
}

func TestConditionsDeepNesting(t *testing.T) {
	// Build a deeply nested program and confirm it parses and evaluates.
	depth := 50
	cond := strings.Repeat(`true -> { `, depth) + `true -> "true";` + strings.Repeat(` };`, depth)
	if got := evalCond(t, cond, nil, binVals); got != "true" {
		t.Errorf("deep nesting eval = %q, want true", got)
	}
}
