package keynote

import (
	"strings"
	"sync"
	"testing"
)

func newTestSession(t *testing.T) (*Session, *KeyPair, *KeyPair, *KeyPair) {
	t.Helper()
	s, err := NewSession(discfsValues)
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	admin := DeterministicKey("admin")
	bob := DeterministicKey("bob")
	alice := DeterministicKey("alice")
	pol := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `app_domain == "DisCFS" -> "RWX";`,
	})
	if err := s.AddPolicy(pol); err != nil {
		t.Fatalf("AddPolicy: %v", err)
	}
	return s, admin, bob, alice
}

func TestSessionDelegationFlow(t *testing.T) {
	s, admin, bob, alice := newTestSession(t)
	adminToBob := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" && HANDLE == "5" -> "RW";`,
	})
	bobToAlice := mustSign(t, bob, AssertionSpec{
		Licensees:  LicenseesOr(alice.Principal),
		Conditions: `app_domain == "DisCFS" && HANDLE == "5" -> "R";`,
	})
	if err := s.AddCredential(adminToBob); err != nil {
		t.Fatalf("AddCredential: %v", err)
	}
	if err := s.AddCredential(bobToAlice); err != nil {
		t.Fatalf("AddCredential: %v", err)
	}
	attrs := map[string]string{"app_domain": "DisCFS", "HANDLE": "5"}
	res, err := s.Query(attrs, alice.Principal)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Value != "R" {
		t.Errorf("alice = %q, want R", res.Value)
	}
	res, err = s.Query(attrs, bob.Principal)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	if res.Value != "RW" {
		t.Errorf("bob = %q, want RW", res.Value)
	}
}

func TestSessionAddCredentialText(t *testing.T) {
	s, admin, bob, _ := newTestSession(t)
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "R";`,
	})
	added, err := s.AddCredentialText(cred.Source)
	if err != nil {
		t.Fatalf("AddCredentialText: %v", err)
	}
	if len(added) != 1 {
		t.Fatalf("added %d, want 1", len(added))
	}
	// Idempotent resubmission.
	added, err = s.AddCredentialText(cred.Source)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if len(added) != 0 {
		t.Errorf("resubmit added %d, want 0", len(added))
	}
	if n := len(s.Credentials()); n != 1 {
		t.Errorf("session holds %d credentials, want 1", n)
	}
}

func TestSessionRejectsTamperedText(t *testing.T) {
	s, admin, bob, _ := newTestSession(t)
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `HANDLE == "5" -> "R";`,
	})
	tampered := strings.Replace(cred.Source, `"R";`, `"RWX";`, 1)
	if _, err := s.AddCredentialText(tampered); err == nil {
		t.Error("tampered credential accepted")
	}
	if n := len(s.Credentials()); n != 0 {
		t.Errorf("session holds %d credentials, want 0", n)
	}
}

func TestSessionRejectsUnsignedCredential(t *testing.T) {
	s, _, bob, _ := newTestSession(t)
	text := "Authorizer: " + quotePrincipal(bob.Principal) + "\nLicensees: \"x\"\n"
	if _, err := s.AddCredentialText(text); err == nil {
		t.Error("unsigned credential accepted")
	}
}

func TestSessionPolicyText(t *testing.T) {
	s, err := NewSession([]string{"false", "true"})
	if err != nil {
		t.Fatalf("NewSession: %v", err)
	}
	admin := DeterministicKey("admin")
	err = s.AddPolicyText("# root policy\nAuthorizer: \"POLICY\"\nLicensees: " +
		quotePrincipal(admin.Principal) + "\n")
	if err != nil {
		t.Fatalf("AddPolicyText: %v", err)
	}
	if len(s.Policies()) != 1 {
		t.Errorf("policies = %d, want 1", len(s.Policies()))
	}
	// Non-POLICY assertions must be rejected as policy.
	bad := "Authorizer: " + quotePrincipal(admin.Principal) + "\nLicensees: \"x\"\n"
	if err := s.AddPolicyText(bad); err == nil {
		t.Error("non-POLICY assertion accepted as policy")
	}
}

func TestSessionRevocationBySignature(t *testing.T) {
	s, admin, bob, _ := newTestSession(t)
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "RWX";`,
	})
	if err := s.AddCredential(cred); err != nil {
		t.Fatalf("AddCredential: %v", err)
	}
	attrs := map[string]string{"app_domain": "DisCFS"}
	res, _ := s.Query(attrs, bob.Principal)
	if res.Value != "RWX" {
		t.Fatalf("pre-revocation = %q, want RWX", res.Value)
	}
	if !s.RevokeCredential(cred.SignatureValue) {
		t.Fatal("RevokeCredential found nothing")
	}
	if s.RevokeCredential(cred.SignatureValue) {
		t.Error("double revocation reported success")
	}
	res, _ = s.Query(attrs, bob.Principal)
	if res.Value != "false" {
		t.Errorf("post-revocation = %q, want false", res.Value)
	}
}

func TestSessionRevocationByKey(t *testing.T) {
	s, admin, bob, alice := newTestSession(t)
	adminToBob := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "RWX";`,
	})
	bobToAlice := mustSign(t, bob, AssertionSpec{
		Licensees:  LicenseesOr(alice.Principal),
		Conditions: `app_domain == "DisCFS" -> "R";`,
	})
	if err := s.AddCredential(adminToBob); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCredential(bobToAlice); err != nil {
		t.Fatal(err)
	}
	attrs := map[string]string{"app_domain": "DisCFS"}

	// Revoking Bob's key cuts off both Bob and Alice (her chain runs
	// through his credential).
	removed := s.RevokeKey(bob.Principal)
	if removed != 1 {
		t.Errorf("removed %d credentials, want 1 (bob's issuance)", removed)
	}
	if !s.Revoked(bob.Principal) {
		t.Error("bob not marked revoked")
	}
	res, _ := s.Query(attrs, bob.Principal)
	if res.Value != "false" {
		t.Errorf("revoked bob = %q, want false", res.Value)
	}
	res, _ = s.Query(attrs, alice.Principal)
	if res.Value != "false" {
		t.Errorf("alice after bob revoked = %q, want false", res.Value)
	}
	// Bob cannot resubmit.
	if _, err := s.AddCredentialText(bobToAlice.Source); err == nil {
		t.Error("revoked key's credential accepted")
	}
}

func TestSessionGenerationBumps(t *testing.T) {
	s, admin, bob, _ := newTestSession(t)
	g0 := s.Generation()
	cred := mustSign(t, admin, AssertionSpec{Licensees: LicenseesOr(bob.Principal)})
	if err := s.AddCredential(cred); err != nil {
		t.Fatal(err)
	}
	g1 := s.Generation()
	if g1 == g0 {
		t.Error("generation unchanged after AddCredential")
	}
	s.RevokeCredential(cred.SignatureValue)
	if s.Generation() == g1 {
		t.Error("generation unchanged after revocation")
	}
}

func TestSessionConcurrentUse(t *testing.T) {
	s, admin, bob, _ := newTestSession(t)
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "R";`,
	})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				_, _ = s.AddCredentialText(cred.Source)
				_, _ = s.Query(map[string]string{"app_domain": "DisCFS"}, bob.Principal)
				_ = s.Generation()
				_ = s.Credentials()
			}
		}()
	}
	wg.Wait()
	if n := len(s.Credentials()); n != 1 {
		t.Errorf("after concurrent adds, %d credentials, want 1", n)
	}
}

func TestSessionValuesCopied(t *testing.T) {
	vals := []string{"false", "true"}
	s, err := NewSession(vals)
	if err != nil {
		t.Fatal(err)
	}
	vals[0] = "mutated"
	got := s.Values()
	if got[0] != "false" {
		t.Error("session values aliased caller slice")
	}
	got[1] = "mutated"
	if s.Values()[1] != "true" {
		t.Error("Values() exposes internal slice")
	}
}

func TestNewSessionValidatesValues(t *testing.T) {
	if _, err := NewSession(nil); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := NewSession([]string{"a", "a"}); err == nil {
		t.Error("duplicate values accepted")
	}
}
