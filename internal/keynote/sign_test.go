package keynote

import (
	"encoding/base64"
	"encoding/hex"
	"strings"
	"testing"
)

// TestSignatureBase64Encoding: signatures may arrive base64-encoded
// ("sig-ed25519-base64:") when signed under that identifier; and because
// the identifier is covered by the signature, *transcoding* an existing
// hex signature to base64 must NOT verify (algorithm-substitution
// resistance).
func TestSignatureBase64Encoding(t *testing.T) {
	key := DeterministicKey("b64-signer")
	spec := AssertionSpec{
		Licensees:  LicenseesOr(DeterministicKey("b64-holder").Principal),
		Conditions: `HANDLE == "9" -> "R";`,
	}
	// Sign natively under the base64 identifier.
	body := spec.compose(quotePrincipal(key.Principal))
	const algName = "sig-ed25519-base64:"
	msg := append([]byte(body), algName...)
	rawSig, err := key.signMessage(msg)
	if err != nil {
		t.Fatal(err)
	}
	full := body + "Signature: \"" + algName + base64.StdEncoding.EncodeToString(rawSig) + "\"\n"
	a, err := ParseAssertion(full)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := a.Verify(); err != nil {
		t.Errorf("native base64 signature rejected: %v", err)
	}

	// Transcoding a hex signature to base64 changes the covered
	// identifier and must fail.
	cred := mustSign(t, key, spec)
	hexAlg, sig, err := splitSignatureValue(cred.SignatureValue)
	if err != nil || hexAlg != "sig-ed25519-hex:" {
		t.Fatalf("alg = %q, %v", hexAlg, err)
	}
	transcoded := strings.Replace(cred.Source, cred.SignatureValue,
		algName+base64.StdEncoding.EncodeToString(sig), 1)
	ta, err := ParseAssertion(transcoded)
	if err != nil {
		t.Fatalf("parse transcoded: %v", err)
	}
	if err := ta.Verify(); err == nil {
		t.Error("algorithm-substituted signature verified")
	}
}

// TestSplitSignatureValueErrors pins the malformed-signature paths.
func TestSplitSignatureValueErrors(t *testing.T) {
	bad := []string{
		"no-colon-here",
		"sig-ed25519-hex:zz",     // bad hex
		"sig-ed25519-base64:!!!", // bad base64
		"sig-ed25519-rot13:abcd", // unknown encoding
	}
	for _, v := range bad {
		if _, _, err := splitSignatureValue(v); err == nil {
			t.Errorf("splitSignatureValue(%q) succeeded", v)
		}
	}
	// Uppercase hex is normalized.
	key := DeterministicKey("case-signer")
	cred := mustSign(t, key, AssertionSpec{Licensees: `"x"`})
	upper := strings.Replace(cred.Source, cred.SignatureValue,
		strings.ToUpper(cred.SignatureValue), 1)
	// The algorithm prefix must stay intact for signedBytes; only the
	// data part may vary in case — replace carefully.
	algName, sig, _ := splitSignatureValue(cred.SignatureValue)
	upper = strings.Replace(cred.Source,
		cred.SignatureValue, algName+strings.ToUpper(hex.EncodeToString(sig)), 1)
	a, err := ParseAssertion(upper)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := a.Verify(); err != nil {
		t.Errorf("uppercase hex signature rejected: %v", err)
	}
}

// TestSanitizeFieldText: embedded newlines in composed fields fold into
// continuation lines rather than terminating the field.
func TestSanitizeFieldText(t *testing.T) {
	key := DeterministicKey("nl-signer")
	cred, err := Sign(key, AssertionSpec{
		Licensees:  LicenseesOr("holder"),
		Conditions: "HANDLE == \"1\"\n-> \"R\";",
		Comment:    "line one\nline two",
	})
	if err != nil {
		t.Fatalf("Sign with newlines: %v", err)
	}
	re, err := ParseAssertion(cred.Source)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if err := re.Verify(); err != nil {
		t.Errorf("verify: %v", err)
	}
	// A malicious comment cannot inject a field.
	evil, err := Sign(key, AssertionSpec{
		Licensees: LicenseesOr("holder"),
		Comment:   "x\nLicensees: \"attacker\"",
	})
	if err != nil {
		t.Fatalf("Sign evil: %v", err)
	}
	lics := evil.Licensees()
	if len(lics) != 1 || lics[0] != "holder" {
		t.Errorf("comment injected a field: licensees = %v", lics)
	}
}
