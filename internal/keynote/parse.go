package keynote

import (
	"fmt"
	"strings"
)

// Assertion is a parsed KeyNote assertion: either local policy
// (Authorizer: "POLICY", unsigned) or a credential (signed by its
// authorizer). The original text is retained because signatures cover the
// exact bytes of the assertion.
type Assertion struct {
	// Source is the exact text the assertion was parsed from.
	Source string
	// Authorizer is the principal delegating authority.
	Authorizer Principal
	// Comment is the free-text Comment field, if any.
	Comment string
	// SignatureValue is the signature field value (e.g.
	// "sig-ed25519-hex:30…"), empty for unsigned assertions.
	SignatureValue string

	licensees  licExpr
	conditions *condProgram
	constants  map[string]string
	sigStart   int // byte offset of the Signature field within Source; -1 if unsigned
	verified   bool
}

// Licensees returns every principal mentioned in the Licensees field.
func (a *Assertion) Licensees() []Principal {
	if a.licensees == nil {
		return nil
	}
	return a.licensees.principals(nil)
}

// Signed reports whether the assertion carries a Signature field.
func (a *Assertion) Signed() bool { return a.sigStart >= 0 }

// Verified reports whether Verify has succeeded on this assertion.
func (a *Assertion) Verified() bool { return a.verified }

// field names, lowercase. Signature must be the last field (RFC 2704 §4.6.7).
const (
	fVersion    = "keynote-version"
	fAuthorizer = "authorizer"
	fLicensees  = "licensees"
	fConstants  = "local-constants"
	fConditions = "conditions"
	fComment    = "comment"
	fSignature  = "signature"
)

// rawField is one logical field with the offset of its first byte in the
// assertion source.
type rawField struct {
	name  string // lowercased
	body  string
	start int
}

// splitFields breaks assertion text into logical fields. A field begins
// with "Name:" at the start of a line; lines beginning with whitespace
// continue the previous field. Lines starting with '#' are comments.
func splitFields(src string) ([]rawField, error) {
	var fields []rawField
	off := 0
	for off < len(src) {
		end := strings.IndexByte(src[off:], '\n')
		var line string
		next := len(src)
		if end >= 0 {
			line = src[off : off+end]
			next = off + end + 1
		} else {
			line = src[off:]
		}
		switch {
		case strings.HasPrefix(line, "#"):
			// comment line
		case len(strings.TrimSpace(line)) == 0:
			// blank line: ignore (assertion splitting happens upstream)
		case line[0] == ' ' || line[0] == '\t':
			if len(fields) == 0 {
				return nil, &SyntaxError{Offset: off, Msg: "continuation line before any field"}
			}
			fields[len(fields)-1].body += "\n" + line
		default:
			colon := strings.IndexByte(line, ':')
			if colon < 0 {
				return nil, &SyntaxError{Offset: off, Msg: fmt.Sprintf("missing ':' in field line %q", line)}
			}
			name := strings.ToLower(strings.TrimSpace(line[:colon]))
			fields = append(fields, rawField{name: name, body: line[colon+1:], start: off})
		}
		off = next
	}
	return fields, nil
}

// ParseAssertion parses a single KeyNote assertion. The signature, if
// present, is parsed but not verified; call Verify or add the assertion to
// a Session to check it.
func ParseAssertion(src string) (*Assertion, error) {
	fields, err := splitFields(src)
	if err != nil {
		return nil, err
	}
	if len(fields) == 0 {
		return nil, &SyntaxError{Msg: "empty assertion"}
	}
	a := &Assertion{Source: src, sigStart: -1}
	seen := make(map[string]bool, len(fields))
	// Local-Constants must be processed before fields that reference the
	// constants, regardless of textual order.
	for _, f := range fields {
		if seen[f.name] {
			return nil, &SyntaxError{Offset: f.start, Msg: "duplicate field " + f.name}
		}
		seen[f.name] = true
		if f.name == fConstants {
			consts, err := parseConstants(f.body)
			if err != nil {
				return nil, err
			}
			a.constants = consts
		}
	}
	for i, f := range fields {
		switch f.name {
		case fVersion:
			v := strings.TrimSpace(f.body)
			v = strings.Trim(v, `"`)
			if v != "2" {
				return nil, &SyntaxError{Field: "KeyNote-Version", Offset: f.start, Msg: "unsupported version " + v}
			}
		case fAuthorizer:
			p, err := parsePrincipalField(f.body, a.constants)
			if err != nil {
				return nil, err
			}
			a.Authorizer = p
		case fLicensees:
			if strings.TrimSpace(f.body) == "" {
				break // empty licensees: delegates to no one
			}
			le, err := parseLicensees(f.body, a.constants)
			if err != nil {
				return nil, err
			}
			a.licensees = le
		case fConstants:
			// handled above
		case fConditions:
			if strings.TrimSpace(f.body) == "" {
				break // empty conditions: no restriction (_MAX_TRUST)
			}
			prog, err := parseConditions(f.body, a.constants)
			if err != nil {
				return nil, err
			}
			a.conditions = prog
		case fComment:
			a.Comment = strings.TrimSpace(f.body)
		case fSignature:
			if i != len(fields)-1 {
				return nil, &SyntaxError{Field: "Signature", Offset: f.start, Msg: "Signature must be the last field"}
			}
			sv := strings.TrimSpace(f.body)
			sv = strings.Trim(sv, `"`)
			if sv == "" {
				return nil, &SyntaxError{Field: "Signature", Offset: f.start, Msg: "empty signature"}
			}
			a.SignatureValue = sv
			a.sigStart = f.start
		default:
			return nil, &SyntaxError{Offset: f.start, Msg: "unknown field " + f.name}
		}
	}
	if a.Authorizer == "" {
		return nil, &SyntaxError{Field: "Authorizer", Msg: "missing Authorizer field"}
	}
	return a, nil
}

// ParseAssertions parses a file of assertions separated by blank lines.
func ParseAssertions(src string) ([]*Assertion, error) {
	var out []*Assertion
	for _, chunk := range splitAssertionText(src) {
		a, err := ParseAssertion(chunk)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// splitAssertionText splits on runs of blank lines, dropping top-level
// comment lines between assertions.
func splitAssertionText(src string) []string {
	var chunks []string
	var cur strings.Builder
	flush := func() {
		if strings.TrimSpace(cur.String()) != "" {
			chunks = append(chunks, cur.String())
		}
		cur.Reset()
	}
	for _, line := range strings.SplitAfter(src, "\n") {
		if strings.TrimSpace(line) == "" {
			flush()
			continue
		}
		if strings.HasPrefix(line, "#") && cur.Len() == 0 {
			continue
		}
		cur.WriteString(line)
	}
	flush()
	return chunks
}

// parsePrincipalField parses an Authorizer field body: one principal,
// quoted or a bare identifier (possibly a local constant), or the special
// name POLICY.
func parsePrincipalField(body string, constants map[string]string) (Principal, error) {
	lx, err := newLexer("Authorizer", body)
	if err != nil {
		return "", err
	}
	t := lx.take()
	var text string
	switch t.kind {
	case tokString:
		text = t.text
	case tokIdent:
		text = t.text
		if constants != nil {
			if v, ok := constants[text]; ok {
				text = v
			}
		}
	default:
		return "", lx.errf(t.off, "expected a principal, found %v", t.kind)
	}
	if e := lx.peek(); e.kind != tokEOF {
		return "", lx.errf(e.off, "unexpected %v after principal", e.kind)
	}
	return canonicalPrincipal(text)
}

// parseConstants parses a Local-Constants body: IDENT = "value" pairs.
func parseConstants(body string) (map[string]string, error) {
	lx, err := newLexer("Local-Constants", body)
	if err != nil {
		return nil, err
	}
	consts := make(map[string]string)
	for {
		t := lx.peek()
		if t.kind == tokEOF {
			return consts, nil
		}
		name, err := lx.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := lx.expect(tokAssign); err != nil {
			return nil, err
		}
		val, err := lx.expect(tokString)
		if err != nil {
			return nil, err
		}
		if _, dup := consts[name.text]; dup {
			return nil, lx.errf(name.off, "duplicate constant %s", name.text)
		}
		consts[name.text] = val.text
	}
}
