// Package keynote implements the KeyNote trust-management system
// (RFC 2704), the policy engine at the heart of DisCFS.
//
// KeyNote dispenses with user names and access-control lists: principals
// are public keys, and authority flows through signed assertions
// (credentials) from a locally trusted policy to the key making a request.
// A compliance check answers the question "does this set of policies and
// credentials authorize this action, requested by these keys, and at what
// level?" where the levels are an application-chosen ordered set of
// compliance values (DisCFS uses false < X < W < WX < R < RX < RW < RWX).
//
// The package provides:
//
//   - Parsing of KeyNote assertions (Authorizer, Licensees, Local-Constants,
//     Conditions, Comment, Signature fields) with RFC 2704 quoting rules.
//   - The conditions expression language: string, numeric and regular
//     expression tests over an action attribute set, combined with
//     && || ! and structured into "test -> value" clauses.
//   - Licensee expressions: conjunction (&&), disjunction (||) and
//     threshold (k-of) combinations of principals.
//   - The query semantics of RFC 2704 section 5: a monotone fixpoint over
//     the delegation graph computing the compliance value of the action.
//   - Signed credentials using Ed25519 (primary) or RSA-SHA256. The paper's
//     prototype used DSA; see DESIGN.md for the substitution rationale.
//   - Sessions: long-lived collections of verified credentials, matching
//     the persistent KeyNote session the DisCFS daemon keeps per client.
package keynote
