package keynote

import (
	"fmt"
	"sync"
)

// Session is a persistent collection of policy and verified credential
// assertions, mirroring the "persistent KeyNote session" the DisCFS
// daemon keeps per attached client. Sessions are safe for concurrent use.
type Session struct {
	mu       sync.RWMutex
	values   []string
	policies []*Assertion
	creds    []*Assertion
	bySig    map[string]*Assertion
	// revokedKeys holds principals whose credentials are disregarded,
	// implementing the paper's "notify the server about bad keys"
	// revocation model (§4.1).
	revokedKeys map[Principal]bool
	gen         uint64 // bumped on every mutation, for cache invalidation
}

// NewSession creates a session with the given ordered compliance values
// (least trust first).
func NewSession(values []string) (*Session, error) {
	if _, err := newValueOrder(values); err != nil {
		return nil, err
	}
	vals := make([]string, len(values))
	copy(vals, values)
	return &Session{
		values:      vals,
		bySig:       make(map[string]*Assertion),
		revokedKeys: make(map[Principal]bool),
	}, nil
}

// Values returns the session's ordered compliance value set.
func (s *Session) Values() []string {
	out := make([]string, len(s.values))
	copy(out, s.values)
	return out
}

// Generation returns a counter that changes whenever the session's
// assertion set changes; policy-decision caches key their validity on it.
func (s *Session) Generation() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.gen
}

// AddPolicyText parses and installs unsigned local policy assertions
// (Authorizer: "POLICY"). Multiple assertions may be separated by blank
// lines.
func (s *Session) AddPolicyText(text string) error {
	as, err := ParseAssertions(text)
	if err != nil {
		return err
	}
	for _, a := range as {
		if a.Authorizer != PolicyPrincipal {
			return ErrNotPolicy
		}
		a.verified = true
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policies = append(s.policies, as...)
	s.gen++
	return nil
}

// AddPolicy installs an already-composed policy assertion.
func (s *Session) AddPolicy(a *Assertion) error {
	if a.Authorizer != PolicyPrincipal {
		return ErrNotPolicy
	}
	a.verified = true
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policies = append(s.policies, a)
	s.gen++
	return nil
}

// AddCredentialText parses, verifies, and installs credential assertions.
// Unsigned assertions and bad signatures are rejected; credentials from
// revoked keys are rejected.
func (s *Session) AddCredentialText(text string) ([]*Assertion, error) {
	as, err := ParseAssertions(text)
	if err != nil {
		return nil, err
	}
	for _, a := range as {
		if err := a.Verify(); err != nil {
			return nil, err
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	added := make([]*Assertion, 0, len(as))
	for _, a := range as {
		if s.revokedKeys[a.Authorizer] {
			return added, fmt.Errorf("keynote: credential authorizer %s is revoked", a.Authorizer.Short())
		}
		if _, dup := s.bySig[a.SignatureValue]; dup {
			continue // idempotent re-submission
		}
		s.creds = append(s.creds, a)
		s.bySig[a.SignatureValue] = a
		added = append(added, a)
	}
	if len(added) > 0 {
		s.gen++
	}
	return added, nil
}

// AddCredential verifies and installs one credential assertion.
func (s *Session) AddCredential(a *Assertion) error {
	if err := a.Verify(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.revokedKeys[a.Authorizer] {
		return fmt.Errorf("keynote: credential authorizer %s is revoked", a.Authorizer.Short())
	}
	if _, dup := s.bySig[a.SignatureValue]; dup {
		return nil
	}
	s.creds = append(s.creds, a)
	s.bySig[a.SignatureValue] = a
	s.gen++
	return nil
}

// RevokeCredential removes the credential with the given signature value.
// It reports whether a credential was removed.
func (s *Session) RevokeCredential(signatureValue string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.bySig[signatureValue]
	if !ok {
		return false
	}
	delete(s.bySig, signatureValue)
	for i, c := range s.creds {
		if c == a {
			s.creds = append(s.creds[:i], s.creds[i+1:]...)
			break
		}
	}
	s.gen++
	return true
}

// RevokeKey marks a principal as bad: all its existing credentials are
// dropped and future submissions are refused. It returns the number of
// credentials removed.
func (s *Session) RevokeKey(p Principal) int {
	c, err := canonicalPrincipal(string(p))
	if err != nil {
		c = p
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.revokedKeys[c] = true
	removed := 0
	kept := s.creds[:0]
	for _, a := range s.creds {
		if a.Authorizer == c {
			delete(s.bySig, a.SignatureValue)
			removed++
			continue
		}
		kept = append(kept, a)
	}
	s.creds = kept
	s.gen++
	return removed
}

// Revoked reports whether a principal has been revoked.
func (s *Session) Revoked(p Principal) bool {
	c, err := canonicalPrincipal(string(p))
	if err != nil {
		c = p
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.revokedKeys[c]
}

// Credentials returns the verified credentials currently in the session.
func (s *Session) Credentials() []*Assertion {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Assertion, len(s.creds))
	copy(out, s.creds)
	return out
}

// Policies returns the installed policy assertions.
func (s *Session) Policies() []*Assertion {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*Assertion, len(s.policies))
	copy(out, s.policies)
	return out
}

// Query runs a compliance check with the session's assertions and value
// order. Requesters that have been revoked fail closed to _MIN_TRUST.
func (s *Session) Query(attributes map[string]string, requesters ...Principal) (Result, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, r := range requesters {
		c, err := canonicalPrincipal(string(r))
		if err != nil {
			return Result{}, err
		}
		if s.revokedKeys[c] {
			return Result{Value: s.values[0], Index: 0}, nil
		}
	}
	return Evaluate(s.policies, s.creds, Query{
		Values:     s.values,
		Attributes: attributes,
		Requesters: requesters,
	})
}
