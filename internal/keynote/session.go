package keynote

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Session is a persistent collection of policy and verified credential
// assertions, mirroring the "persistent KeyNote session" the DisCFS
// daemon keeps per attached client. Sessions are safe for concurrent
// use and read-mostly: the assertion set lives in an immutable Snapshot
// published through an atomic pointer, so Query takes no lock at all;
// mutations (credential submission, revocation) copy-on-write a new
// snapshot under a writer mutex and bump the generation counter.
type Session struct {
	mu   sync.Mutex // serializes mutations; readers never take it
	snap atomic.Pointer[Snapshot]
	// volatileAttrs are action-attribute names whose values change
	// between queries without a session mutation (e.g. the time of day).
	// Snapshots record whether any assertion depends on one, so decision
	// caches can bound reuse. Written only under mu.
	volatileAttrs map[string]bool
}

// NewSession creates a session with the given ordered compliance values
// (least trust first).
func NewSession(values []string) (*Session, error) {
	if _, err := newValueOrder(values); err != nil {
		return nil, err
	}
	vals := make([]string, len(values))
	copy(vals, values)
	s := &Session{}
	s.snap.Store(&Snapshot{
		values:      vals,
		bySig:       make(map[string]*Assertion),
		byLicensee:  make(map[Principal][]*Assertion),
		revoked:     make(map[Principal]bool),
		revokedSigs: make(map[string]bool),
	})
	return s, nil
}

// Snapshot returns the current immutable view of the session. Callers
// that make several reads that must agree with each other (a query plus
// the generation it was computed under) should take one snapshot and
// use it for all of them.
func (s *Session) Snapshot() *Snapshot { return s.snap.Load() }

// SetVolatileAttributes declares action-attribute names whose values
// change between queries with no session mutation — for DisCFS, the
// time attributes (hour, minute, weekday, now). Snapshots report (via
// Volatile) whether any installed assertion references one, which lets
// decision caches clamp entry lifetimes. Call before assertions are
// installed; existing assertions are rescanned.
func (s *Session) SetVolatileAttributes(names ...string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.volatileAttrs = make(map[string]bool, len(names))
	for _, n := range names {
		s.volatileAttrs[n] = true
	}
	next := s.snap.Load().clone()
	next.recomputeVolatile(s.volatileAttrs)
	s.snap.Store(next)
}

// Values returns the session's ordered compliance value set.
func (s *Session) Values() []string { return s.Snapshot().Values() }

// Generation returns a counter that changes whenever the session's
// assertion set changes; policy-decision caches key their validity on it.
func (s *Session) Generation() uint64 { return s.Snapshot().gen }

// mutate runs fn over a copy of the current snapshot and, when fn
// reports a change, publishes the copy with a bumped generation.
func (s *Session) mutate(fn func(next *Snapshot) (changed bool, err error)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	next := s.snap.Load().clone()
	changed, err := fn(next)
	if changed {
		next.gen++
		s.snap.Store(next)
	}
	return err
}

// AddPolicyText parses and installs unsigned local policy assertions
// (Authorizer: "POLICY"). Multiple assertions may be separated by blank
// lines.
func (s *Session) AddPolicyText(text string) error {
	as, err := ParseAssertions(text)
	if err != nil {
		return err
	}
	for _, a := range as {
		if a.Authorizer != PolicyPrincipal {
			return ErrNotPolicy
		}
		a.verified = true
	}
	return s.mutate(func(next *Snapshot) (bool, error) {
		for _, a := range as {
			next.policies = append(next.policies, a)
			next.index(a)
			next.volatile = next.volatile || a.referencesAny(s.volatileAttrs)
		}
		return len(as) > 0, nil
	})
}

// AddPolicy installs an already-composed policy assertion.
func (s *Session) AddPolicy(a *Assertion) error {
	if a.Authorizer != PolicyPrincipal {
		return ErrNotPolicy
	}
	a.verified = true
	return s.mutate(func(next *Snapshot) (bool, error) {
		next.policies = append(next.policies, a)
		next.index(a)
		next.volatile = next.volatile || a.referencesAny(s.volatileAttrs)
		return true, nil
	})
}

// AddCredentialText parses, verifies, and installs credential assertions.
// Unsigned assertions and bad signatures are rejected; credentials from
// revoked keys are rejected. Signature verification runs before the
// writer lock is taken, so concurrent submissions verify in parallel.
func (s *Session) AddCredentialText(text string) ([]*Assertion, error) {
	as, err := ParseAssertions(text)
	if err != nil {
		return nil, err
	}
	for _, a := range as {
		if err := a.Verify(); err != nil {
			return nil, err
		}
	}
	var added []*Assertion
	err = s.mutate(func(next *Snapshot) (bool, error) {
		added = make([]*Assertion, 0, len(as))
		for _, a := range as {
			if next.revoked[a.Authorizer] {
				return len(added) > 0, fmt.Errorf("keynote: credential authorizer %s is revoked", a.Authorizer.Short())
			}
			if next.revokedSigs[a.SignatureValue] {
				return len(added) > 0, fmt.Errorf("keynote: credential signature is revoked")
			}
			if _, dup := next.bySig[a.SignatureValue]; dup {
				continue // idempotent re-submission
			}
			next.creds = append(next.creds, a)
			next.bySig[a.SignatureValue] = a
			next.index(a)
			next.volatile = next.volatile || a.referencesAny(s.volatileAttrs)
			added = append(added, a)
		}
		return len(added) > 0, nil
	})
	return added, err
}

// AddCredential verifies and installs one credential assertion.
func (s *Session) AddCredential(a *Assertion) error {
	if err := a.Verify(); err != nil {
		return err
	}
	return s.mutate(func(next *Snapshot) (bool, error) {
		if next.revoked[a.Authorizer] {
			return false, fmt.Errorf("keynote: credential authorizer %s is revoked", a.Authorizer.Short())
		}
		if next.revokedSigs[a.SignatureValue] {
			return false, fmt.Errorf("keynote: credential signature is revoked")
		}
		if _, dup := next.bySig[a.SignatureValue]; dup {
			return false, nil
		}
		next.creds = append(next.creds, a)
		next.bySig[a.SignatureValue] = a
		next.index(a)
		next.volatile = next.volatile || a.referencesAny(s.volatileAttrs)
		return true, nil
	})
}

// RevokeCredential withdraws the credential with the given signature
// value and reports whether a credential was removed. The signature is
// recorded permanently (and logged in the revocation log) the first
// time, whether or not the credential is currently installed, so a
// later resubmission — or a replicated copy arriving on another server
// — is refused rather than silently reinstated.
func (s *Session) RevokeCredential(signatureValue string) bool {
	removed := false
	s.mutate(func(next *Snapshot) (bool, error) {
		changed := false
		if !next.revokedSigs[signatureValue] {
			next.revokedSigs[signatureValue] = true
			next.appendRevocation(RevokedCredential, signatureValue)
			changed = true
		}
		a, ok := next.bySig[signatureValue]
		if !ok {
			return changed, nil
		}
		delete(next.bySig, signatureValue)
		for i, c := range next.creds {
			if c == a {
				next.creds = append(next.creds[:i], next.creds[i+1:]...)
				break
			}
		}
		next.reindex()
		next.recomputeVolatile(s.volatileAttrs)
		removed = true
		return true, nil
	})
	return removed
}

// RevokeKey marks a principal as bad: all its existing credentials are
// dropped, future submissions are refused, and a revocation log entry
// is appended. It returns the number of credentials removed. Revoking
// an already-revoked principal is a no-op (no generation bump, no new
// log entry), which keeps replicated re-application convergent.
func (s *Session) RevokeKey(p Principal) int {
	c, err := canonicalPrincipal(string(p))
	if err != nil {
		c = p
	}
	removed := 0
	s.mutate(func(next *Snapshot) (bool, error) {
		if next.revoked[c] {
			return false, nil
		}
		next.revoked[c] = true
		next.appendRevocation(RevokedKey, string(c))
		kept := next.creds[:0]
		for _, a := range next.creds {
			if a.Authorizer == c {
				delete(next.bySig, a.SignatureValue)
				removed++
				continue
			}
			kept = append(kept, a)
		}
		next.creds = kept
		next.reindex()
		next.recomputeVolatile(s.volatileAttrs)
		return true, nil
	})
	return removed
}

// Revoked reports whether a principal has been revoked.
func (s *Session) Revoked(p Principal) bool { return s.Snapshot().Revoked(p) }

// Credentials returns the verified credentials currently in the session.
func (s *Session) Credentials() []*Assertion { return s.Snapshot().Credentials() }

// Policies returns the installed policy assertions.
func (s *Session) Policies() []*Assertion { return s.Snapshot().Policies() }

// Query runs a compliance check with the session's assertions and value
// order. Requesters that have been revoked fail closed to _MIN_TRUST.
// The check runs lock-free against the current snapshot and evaluates
// only the requesting principals' delegation graph.
func (s *Session) Query(attributes map[string]string, requesters ...Principal) (Result, error) {
	return s.Snapshot().Query(attributes, requesters...)
}
