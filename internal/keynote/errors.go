package keynote

import "errors"

// Sentinel errors returned by parsing, verification and query evaluation.
var (
	// ErrBadSignature indicates a credential signature that does not
	// verify against its Authorizer key.
	ErrBadSignature = errors.New("keynote: signature verification failed")

	// ErrUnsigned indicates a credential assertion with no Signature
	// field. Only local policy (Authorizer: "POLICY") may be unsigned.
	ErrUnsigned = errors.New("keynote: credential assertion is unsigned")

	// ErrNotPolicy is returned when an unsigned assertion whose
	// authorizer is not POLICY is added as policy.
	ErrNotPolicy = errors.New("keynote: assertion authorizer is not POLICY")

	// ErrNoValues indicates a query with an empty compliance value set.
	ErrNoValues = errors.New("keynote: query needs at least one compliance value")

	// ErrSyntax wraps assertion syntax errors.
	ErrSyntax = errors.New("keynote: syntax error")
)

// SyntaxError describes a parse failure with position information.
type SyntaxError struct {
	// Field is the assertion field being parsed ("Conditions", …), if any.
	Field string
	// Offset is the byte offset within the field text.
	Offset int
	// Msg describes the problem.
	Msg string
}

func (e *SyntaxError) Error() string {
	if e.Field == "" {
		return "keynote: syntax error at offset " + itoa(e.Offset) + ": " + e.Msg
	}
	return "keynote: syntax error in " + e.Field + " at offset " + itoa(e.Offset) + ": " + e.Msg
}

// Is makes SyntaxError match ErrSyntax in errors.Is chains.
func (e *SyntaxError) Is(target error) bool { return target == ErrSyntax }

// itoa avoids importing strconv in this tiny file's hot path; it is the
// classic reversed-digit integer formatter.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}
