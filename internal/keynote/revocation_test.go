package keynote

import "testing"

// TestRevocationLogDense: every applied revocation appends exactly one
// log entry with a dense 1-based sequence, and Revocations(since)
// returns exactly the suffix past the cursor — the contract the
// server-to-server revocation feed replicates on.
func TestRevocationLogDense(t *testing.T) {
	s, admin, bob, alice := newTestSession(t)
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "R";`,
	})
	if err := s.AddCredential(cred); err != nil {
		t.Fatal(err)
	}
	if got := s.RevocationSeq(); got != 0 {
		t.Fatalf("RevocationSeq before any revocation = %d, want 0", got)
	}

	if !s.RevokeCredential(cred.SignatureValue) {
		t.Fatal("RevokeCredential: not found")
	}
	s.RevokeKey(alice.Principal)
	s.RevokeKey(bob.Principal)

	revs := s.Revocations(0)
	if len(revs) != 3 {
		t.Fatalf("Revocations(0) = %d entries, want 3", len(revs))
	}
	for i, r := range revs {
		if r.Seq != uint64(i)+1 {
			t.Errorf("entry %d: Seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	want := []struct {
		kind   RevocationKind
		target string
	}{
		{RevokedCredential, cred.SignatureValue},
		{RevokedKey, string(alice.Principal)},
		{RevokedKey, string(bob.Principal)},
	}
	for i, w := range want {
		if revs[i].Kind != w.kind || revs[i].Target != w.target {
			t.Errorf("entry %d = (%d, %.20q), want (%d, %.20q)",
				i, revs[i].Kind, revs[i].Target, w.kind, w.target)
		}
	}
	if got := s.RevocationSeq(); got != 3 {
		t.Errorf("RevocationSeq = %d, want 3", got)
	}
	if tail := s.Revocations(2); len(tail) != 1 || tail[0].Seq != 3 {
		t.Errorf("Revocations(2) = %v, want the single Seq-3 entry", tail)
	}
	if tail := s.Revocations(3); len(tail) != 0 {
		t.Errorf("Revocations(3) = %v, want empty", tail)
	}
}

// TestRevokedSignaturePermanent: a revoked credential signature stays
// refused forever, even when the revocation arrived before the
// credential was ever submitted — the property that lets a feed entry
// fence shards that never saw the credential.
func TestRevokedSignaturePermanent(t *testing.T) {
	s, admin, bob, _ := newTestSession(t)
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "R";`,
	})
	if err := s.AddCredential(cred); err != nil {
		t.Fatal(err)
	}
	if !s.RevokeCredential(cred.SignatureValue) {
		t.Fatal("RevokeCredential: not found")
	}
	if err := s.AddCredential(cred); err == nil {
		t.Error("revoked credential re-added")
	}
	if _, err := s.AddCredentialText(cred.Source); err == nil {
		t.Error("revoked credential re-added as text")
	}

	// Revocation ahead of submission: the shard never held the
	// credential, the feed entry lands first, submission is refused.
	other := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "RW";`,
	})
	if s.RevokeCredential(other.SignatureValue) {
		t.Error("RevokeCredential reported an absent credential as removed")
	}
	if err := s.AddCredential(other); err == nil {
		t.Error("pre-revoked credential accepted")
	}
	if !s.Snapshot().RevokedCredential(other.SignatureValue) {
		t.Error("pre-revoked signature not recorded")
	}
}

// TestRevokeKeyIdempotent: revoking the same principal again drops
// nothing, appends no log entry, and bumps no generation — replayed
// feed entries must be free.
func TestRevokeKeyIdempotent(t *testing.T) {
	s, admin, bob, alice := newTestSession(t)
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "RW";`,
	})
	// A delegation issued by bob: revoking bob's key must drop it.
	deleg := mustSign(t, bob, AssertionSpec{
		Licensees:  LicenseesOr(alice.Principal),
		Conditions: `app_domain == "DisCFS" -> "R";`,
	})
	if err := s.AddCredential(cred); err != nil {
		t.Fatal(err)
	}
	if err := s.AddCredential(deleg); err != nil {
		t.Fatal(err)
	}
	if n := s.RevokeKey(bob.Principal); n != 1 {
		t.Fatalf("RevokeKey dropped %d credentials, want 1", n)
	}
	seq, gen := s.RevocationSeq(), s.Generation()
	if n := s.RevokeKey(bob.Principal); n != 0 {
		t.Errorf("repeat RevokeKey dropped %d credentials, want 0", n)
	}
	if s.RevocationSeq() != seq {
		t.Errorf("repeat RevokeKey grew the log: %d -> %d", seq, s.RevocationSeq())
	}
	if s.Generation() != gen {
		t.Errorf("repeat RevokeKey bumped the generation: %d -> %d", gen, s.Generation())
	}
}
