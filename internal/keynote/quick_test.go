package keynote

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// Property: any string survives the quoting used for principals and field
// composition — compose a credential whose comment and conditions embed
// the string, sign it, reparse it, and verify.
func TestQuickSignReparseVerify(t *testing.T) {
	key := DeterministicKey("quick-signer")
	lic := DeterministicKey("quick-lic")
	f := func(handle uint32, value uint8) bool {
		v := discfsValues[int(value)%len(discfsValues)]
		cred, err := Sign(key, AssertionSpec{
			Licensees:  LicenseesOr(lic.Principal),
			Conditions: `HANDLE == "` + itoa(int(handle)) + `" -> "` + v + `";`,
			Comment:    "quick",
		})
		if err != nil {
			return false
		}
		re, err := ParseAssertion(cred.Source)
		if err != nil {
			return false
		}
		return re.Verify() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: flipping any single byte of a signed credential either breaks
// parsing or breaks verification — it never yields a different valid
// credential.
func TestQuickTamperResistance(t *testing.T) {
	key := DeterministicKey("tamper-signer")
	lic := DeterministicKey("tamper-lic")
	cred := mustSign(t, key, AssertionSpec{
		Licensees:  LicenseesOr(lic.Principal),
		Conditions: `HANDLE == "12345" -> "RW";`,
	})
	src := []byte(cred.Source)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		pos := rng.Intn(len(src))
		orig := src[pos]
		delta := byte(1 + rng.Intn(255))
		src[pos] = orig + delta
		a, err := ParseAssertion(string(src))
		if err == nil {
			// If it parses identically-signed, verification must fail —
			// unless the flip landed in a byte that does not change the
			// parsed semantics nor the signed bytes (impossible here:
			// the signature covers everything before the Signature
			// field, and flips inside the signature value change it).
			if vErr := a.Verify(); vErr == nil && a.Source != cred.Source {
				t.Fatalf("byte flip at %d produced a different valid credential", pos)
			}
		}
		src[pos] = orig
	}
}

// Property: compliance results are monotone in the credential set —
// adding credentials never lowers the result, removing never raises it.
func TestQuickMonotonicity(t *testing.T) {
	admin := DeterministicKey("mono-admin")
	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `true -> "RWX";`,
	})
	keys := make([]*KeyPair, 6)
	for i := range keys {
		keys[i] = DeterministicKey("mono-" + itoa(i))
	}
	// A pool of random-ish credentials between the keys.
	var pool []*Assertion
	signers := append([]*KeyPair{admin}, keys...)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 24; i++ {
		signer := signers[rng.Intn(len(signers))]
		lic := keys[rng.Intn(len(keys))]
		val := discfsValues[rng.Intn(len(discfsValues))]
		pool = append(pool, mustSign(t, signer, AssertionSpec{
			Licensees:  LicenseesOr(lic.Principal),
			Conditions: `true -> "` + val + `";`,
		}))
	}
	requester := keys[0].Principal
	query := func(creds []*Assertion) int {
		res, err := Evaluate([]*Assertion{policy}, creds, Query{
			Values:     discfsValues,
			Requesters: []Principal{requester},
		})
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return res.Index
	}
	for trial := 0; trial < 40; trial++ {
		// Random subset, then add one more credential: value must not drop.
		var subset []*Assertion
		for _, c := range pool {
			if rng.Intn(2) == 0 {
				subset = append(subset, c)
			}
		}
		before := query(subset)
		extra := pool[rng.Intn(len(pool))]
		after := query(append(append([]*Assertion{}, subset...), extra))
		if after < before {
			t.Fatalf("adding a credential lowered compliance: %d -> %d", before, after)
		}
	}
}

// Property: the licensee expression algebra matches its spec on random
// valuations: && is min, || is max, k-of is the k-th largest.
func TestQuickLicenseeAlgebra(t *testing.T) {
	f := func(a, b, c uint8) bool {
		va, vb, vc := int(a%8), int(b%8), int(c%8)
		val := func(p Principal) int {
			switch p {
			case "ka":
				return va
			case "kb":
				return vb
			case "kc":
				return vc
			}
			return 0
		}
		and, err := parseLicensees(`"ka" && "kb"`, nil)
		if err != nil {
			return false
		}
		or, err := parseLicensees(`"ka" || "kb"`, nil)
		if err != nil {
			return false
		}
		kof, err := parseLicensees(`2-of("ka", "kb", "kc")`, nil)
		if err != nil {
			return false
		}
		minAB := va
		if vb < minAB {
			minAB = vb
		}
		maxAB := va
		if vb > maxAB {
			maxAB = vb
		}
		// 2nd largest of the three.
		vals := []int{va, vb, vc}
		for i := 0; i < len(vals); i++ {
			for j := i + 1; j < len(vals); j++ {
				if vals[j] > vals[i] {
					vals[i], vals[j] = vals[j], vals[i]
				}
			}
		}
		second := vals[1]
		return and.eval(val) == minAB && or.eval(val) == maxAB && kof.eval(val) == second
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: string literals round-trip through quoting and the lexer.
func TestQuickStringQuoting(t *testing.T) {
	f := func(s string) bool {
		// The lexer works on bytes; restrict to valid single-line content
		// by replacing the characters our composer folds.
		if strings.ContainsAny(s, "\n\r") {
			s = strings.NewReplacer("\n", " ", "\r", " ").Replace(s)
		}
		q := quotePrincipal(Principal(s))
		lx, err := newLexer("quick", q)
		if err != nil {
			return false
		}
		tok := lx.take()
		return tok.kind == tokString && tok.text == s && lx.peek().kind == tokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: conditions evaluation never panics on random attribute values.
func TestQuickEvalRobustness(t *testing.T) {
	prog, err := parseConditions(
		`a == b -> "X"; @a < @b -> "W"; a ~= b -> "R"; $a == "q" -> "RWX";`, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	order, _ := newValueOrder(discfsValues)
	f := func(a, b string) bool {
		ev := &env{attrs: func(n string) (string, bool) {
			switch n {
			case "a":
				return a, true
			case "b":
				return b, true
			}
			return "", false
		}}
		idx := prog.eval(ev, order)
		return idx >= 0 && idx < len(discfsValues)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
