package keynote

import (
	"fmt"
	"strings"
)

// valueOrder is an ordered set of compliance values, lowest (least trust)
// first. DisCFS uses: false, X, W, WX, R, RX, RW, RWX.
type valueOrder struct {
	names []string
	idx   map[string]int
}

func newValueOrder(values []string) (*valueOrder, error) {
	if len(values) == 0 {
		return nil, ErrNoValues
	}
	v := &valueOrder{names: values, idx: make(map[string]int, len(values))}
	for i, n := range values {
		if _, dup := v.idx[n]; dup {
			return nil, fmt.Errorf("keynote: duplicate compliance value %q", n)
		}
		v.idx[n] = i
	}
	return v, nil
}

// index maps a value name to its position; unknown names collapse to
// _MIN_TRUST (0), which fails closed.
func (v *valueOrder) index(name string) int {
	if i, ok := v.idx[name]; ok {
		return i
	}
	return 0
}

func (v *valueOrder) max() int { return len(v.names) - 1 }

// Query is one compliance-check request: does policy plus credentials
// authorize the action described by Attributes, requested by Requesters,
// and at which of the ordered Values?
type Query struct {
	// Values is the ordered compliance value set, least trust first,
	// e.g. {"false", "true"} or DisCFS's 8 permission combinations.
	Values []string
	// Attributes is the action attribute set.
	Attributes map[string]string
	// Requesters are the principals requesting the action (the
	// _ACTION_AUTHORIZERS); typically the key that signed the request or
	// was authenticated on the secure channel.
	Requesters []Principal
}

// Result is the outcome of a compliance check.
type Result struct {
	// Value is the compliance value name, e.g. "RWX" or "false".
	Value string
	// Index is Value's position in the query's ordered set; 0 is least
	// trust.
	Index int
}

// Evaluate runs the RFC 2704 query semantics over the given policy and
// credential assertions. Credential assertions must already be verified
// (Session handles this); unverified credentials are ignored, failing
// closed rather than trusting unchecked signatures.
func Evaluate(policies, credentials []*Assertion, q Query) (Result, error) {
	order, err := newValueOrder(q.Values)
	if err != nil {
		return Result{}, err
	}
	if len(q.Requesters) == 0 {
		return Result{}, fmt.Errorf("keynote: query has no requester principals")
	}

	// Canonicalize requesters for comparison.
	requesters := make(map[Principal]bool, len(q.Requesters))
	reqNames := make([]string, 0, len(q.Requesters))
	for _, r := range q.Requesters {
		c, err := canonicalPrincipal(string(r))
		if err != nil {
			return Result{}, err
		}
		requesters[c] = true
		reqNames = append(reqNames, string(c))
	}

	// Intrinsic attributes visible to every conditions program.
	intrinsics := map[string]string{
		"_MIN_TRUST":          order.names[0],
		"_MAX_TRUST":          order.names[order.max()],
		"_VALUES":             strings.Join(order.names, ","),
		"_ACTION_AUTHORIZERS": strings.Join(reqNames, ","),
	}
	ev := &env{attrs: func(name string) (string, bool) {
		if v, ok := intrinsics[name]; ok {
			return v, true
		}
		v, ok := q.Attributes[name]
		return v, ok
	}}

	// Index assertions by authorizer and precompute each assertion's
	// conditions value (it does not depend on the principal valuation).
	type node struct {
		cond int
		lic  licExpr
	}
	byAuth := make(map[Principal][]node)
	addAssertion := func(a *Assertion) {
		cond := order.max()
		if a.conditions != nil {
			cond = a.conditions.eval(ev, order)
		}
		byAuth[a.Authorizer] = append(byAuth[a.Authorizer], node{cond: cond, lic: a.licensees})
	}
	for _, a := range policies {
		if a.Authorizer != PolicyPrincipal {
			continue // defense in depth; Session enforces this
		}
		addAssertion(a)
	}
	for _, a := range credentials {
		if !a.Verified() {
			continue
		}
		addAssertion(a)
	}

	// Monotone fixpoint: principal values only increase, so iteration
	// terminates after at most |principals| × |values| rounds.
	val := make(map[Principal]int)
	lookup := func(p Principal) int {
		if requesters[p] {
			return order.max()
		}
		return val[p]
	}
	maxRounds := (len(byAuth)+1)*len(order.names) + 2
	for round := 0; round < maxRounds; round++ {
		changed := false
		for auth, nodes := range byAuth {
			if requesters[auth] {
				continue // requesters are pinned at _MAX_TRUST
			}
			best := val[auth]
			for _, n := range nodes {
				lv := 0
				if n.lic != nil {
					lv = n.lic.eval(lookup)
				}
				v := n.cond
				if lv < v {
					v = lv
				}
				if v > best {
					best = v
				}
			}
			if best != val[auth] {
				val[auth] = best
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	idx := lookup(PolicyPrincipal)
	return Result{Value: order.names[idx], Index: idx}, nil
}
