package keynote

import (
	"testing"
)

// discfsValues is the paper's ordered compliance set (§5): the eight
// permission combinations translating to octal rwx bits.
var discfsValues = []string{"false", "X", "W", "WX", "R", "RX", "RW", "RWX"}

// mustPolicy/mustSign are small test helpers.
func mustPolicy(t *testing.T, spec AssertionSpec) *Assertion {
	t.Helper()
	a, err := NewPolicy(spec)
	if err != nil {
		t.Fatalf("NewPolicy: %v", err)
	}
	return a
}

func mustSign(t *testing.T, key *KeyPair, spec AssertionSpec) *Assertion {
	t.Helper()
	a, err := Sign(key, spec)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	return a
}

// TestDelegationChain reproduces the paper's Figure 1: the administrator
// issues a credential to Bob (RWX on a handle), Bob issues one to Alice
// (R only). Alice's request must be granted at exactly R, and only when
// both credentials are presented.
func TestDelegationChain(t *testing.T) {
	admin := DeterministicKey("admin")
	bob := DeterministicKey("bob")
	alice := DeterministicKey("alice")

	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `app_domain == "DisCFS" -> "RWX";`,
	})
	adminToBob := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" && HANDLE == "666240" -> "RWX";`,
	})
	bobToAlice := mustSign(t, bob, AssertionSpec{
		Licensees:  LicenseesOr(alice.Principal),
		Conditions: `app_domain == "DisCFS" && HANDLE == "666240" -> "R";`,
	})

	attrs := map[string]string{"app_domain": "DisCFS", "HANDLE": "666240"}

	q := func(creds []*Assertion, who Principal) string {
		res, err := Evaluate([]*Assertion{policy}, creds, Query{
			Values: discfsValues, Attributes: attrs, Requesters: []Principal{who},
		})
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return res.Value
	}

	if got := q([]*Assertion{adminToBob, bobToAlice}, alice.Principal); got != "R" {
		t.Errorf("alice with full chain = %q, want R", got)
	}
	if got := q([]*Assertion{bobToAlice}, alice.Principal); got != "false" {
		t.Errorf("alice without bob's credential = %q, want false", got)
	}
	if got := q([]*Assertion{adminToBob}, alice.Principal); got != "false" {
		t.Errorf("alice without her credential = %q, want false", got)
	}
	if got := q([]*Assertion{adminToBob, bobToAlice}, bob.Principal); got != "RWX" {
		t.Errorf("bob = %q, want RWX", got)
	}
	// Wrong handle: nothing granted.
	attrs["HANDLE"] = "1"
	if got := q([]*Assertion{adminToBob, bobToAlice}, alice.Principal); got != "false" {
		t.Errorf("alice on wrong handle = %q, want false", got)
	}
}

// TestDelegationCannotAmplify checks the min() semantics: Bob holds only R
// but issues Alice an RWX credential; Alice must still get at most R.
func TestDelegationCannotAmplify(t *testing.T) {
	admin := DeterministicKey("admin")
	bob := DeterministicKey("bob")
	alice := DeterministicKey("alice")

	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `app_domain == "DisCFS" -> "RWX";`,
	})
	adminToBob := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `HANDLE == "7" -> "R";`,
	})
	bobToAlice := mustSign(t, bob, AssertionSpec{
		Licensees:  LicenseesOr(alice.Principal),
		Conditions: `HANDLE == "7" -> "RWX";`, // overreach
	})
	res, err := Evaluate([]*Assertion{policy}, []*Assertion{adminToBob, bobToAlice}, Query{
		Values:     discfsValues,
		Attributes: map[string]string{"app_domain": "DisCFS", "HANDLE": "7"},
		Requesters: []Principal{alice.Principal},
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Value != "R" {
		t.Errorf("amplified delegation = %q, want R", res.Value)
	}
}

// TestArbitraryChainLength: the paper contrasts DisCFS with the Exokernel's
// 8-level capability tree — chains here can be arbitrarily long.
func TestArbitraryChainLength(t *testing.T) {
	admin := DeterministicKey("admin")
	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `app_domain == "DisCFS" -> "RWX";`,
	})
	const depth = 20
	keys := make([]*KeyPair, depth)
	for i := range keys {
		keys[i] = DeterministicKey("chain-" + string(rune('a'+i)))
	}
	creds := make([]*Assertion, 0, depth)
	prev := admin
	for _, k := range keys {
		creds = append(creds, mustSign(t, prev, AssertionSpec{
			Licensees:  LicenseesOr(k.Principal),
			Conditions: `app_domain == "DisCFS" -> "RWX";`,
		}))
		prev = k
	}
	res, err := Evaluate([]*Assertion{policy}, creds, Query{
		Values:     discfsValues,
		Attributes: map[string]string{"app_domain": "DisCFS"},
		Requesters: []Principal{keys[depth-1].Principal},
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Value != "RWX" {
		t.Errorf("deep chain = %q, want RWX", res.Value)
	}
}

func TestThresholdLicensees(t *testing.T) {
	admin := DeterministicKey("admin")
	k1, k2, k3 := DeterministicKey("t1"), DeterministicKey("t2"), DeterministicKey("t3")
	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `true -> "RWX";`,
	})
	// Admin requires 2-of-3 signers for RWX on handle 9.
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesThreshold(2, k1.Principal, k2.Principal, k3.Principal),
		Conditions: `HANDLE == "9" -> "RWX";`,
	})
	attrs := map[string]string{"HANDLE": "9"}
	q := func(reqs ...Principal) string {
		res, err := Evaluate([]*Assertion{policy}, []*Assertion{cred}, Query{
			Values: discfsValues, Attributes: attrs, Requesters: reqs,
		})
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return res.Value
	}
	if got := q(k1.Principal); got != "false" {
		t.Errorf("1 of 3 = %q, want false", got)
	}
	if got := q(k1.Principal, k3.Principal); got != "RWX" {
		t.Errorf("2 of 3 = %q, want RWX", got)
	}
	if got := q(k1.Principal, k2.Principal, k3.Principal); got != "RWX" {
		t.Errorf("3 of 3 = %q, want RWX", got)
	}
}

func TestConjunctiveLicensees(t *testing.T) {
	admin := DeterministicKey("admin")
	k1, k2 := DeterministicKey("c1"), DeterministicKey("c2")
	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `true -> "RWX";`,
	})
	cred := mustSign(t, admin, AssertionSpec{
		Licensees: LicenseesAnd(k1.Principal, k2.Principal),
	})
	q := func(reqs ...Principal) string {
		res, err := Evaluate([]*Assertion{policy}, []*Assertion{cred}, Query{
			Values: discfsValues, Attributes: nil, Requesters: reqs,
		})
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return res.Value
	}
	if got := q(k1.Principal); got != "false" {
		t.Errorf("k1 alone = %q, want false", got)
	}
	if got := q(k1.Principal, k2.Principal); got != "RWX" {
		t.Errorf("k1&&k2 = %q, want RWX", got)
	}
}

// TestDelegationCycle: two keys delegating to each other must not grant
// authority that does not flow from policy, and evaluation must terminate.
func TestDelegationCycle(t *testing.T) {
	a := DeterministicKey("cyc-a")
	b := DeterministicKey("cyc-b")
	aToB := mustSign(t, a, AssertionSpec{Licensees: LicenseesOr(b.Principal)})
	bToA := mustSign(t, b, AssertionSpec{Licensees: LicenseesOr(a.Principal)})
	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(DeterministicKey("admin").Principal),
		Conditions: `true -> "RWX";`,
	})
	res, err := Evaluate([]*Assertion{policy}, []*Assertion{aToB, bToA}, Query{
		Values:     discfsValues,
		Requesters: []Principal{b.Principal},
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Value != "false" {
		t.Errorf("cycle without policy path = %q, want false", res.Value)
	}

	// Now give the cycle a policy entry point: admin delegates to a; the
	// cycle must not amplify and b must be granted via a→b.
	admin := DeterministicKey("admin")
	adminToA := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(a.Principal),
		Conditions: `true -> "R";`,
	})
	res, err = Evaluate([]*Assertion{policy}, []*Assertion{aToB, bToA, adminToA}, Query{
		Values:     discfsValues,
		Requesters: []Principal{b.Principal},
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Value != "R" {
		t.Errorf("cycle with policy path = %q, want R", res.Value)
	}
}

func TestUnverifiedCredentialsIgnored(t *testing.T) {
	admin := DeterministicKey("admin")
	bob := DeterministicKey("bob")
	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `true -> "RWX";`,
	})
	cred := mustSign(t, admin, AssertionSpec{Licensees: LicenseesOr(bob.Principal)})
	// Re-parse without verifying: Evaluate must fail closed.
	unverified, err := ParseAssertion(cred.Source)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := Evaluate([]*Assertion{policy}, []*Assertion{unverified}, Query{
		Values:     discfsValues,
		Requesters: []Principal{bob.Principal},
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Value != "false" {
		t.Errorf("unverified credential honored: %q", res.Value)
	}
}

func TestQueryErrors(t *testing.T) {
	if _, err := Evaluate(nil, nil, Query{Values: nil, Requesters: []Principal{"k"}}); err == nil {
		t.Error("empty values accepted")
	}
	if _, err := Evaluate(nil, nil, Query{Values: []string{"a", "a"}, Requesters: []Principal{"k"}}); err == nil {
		t.Error("duplicate values accepted")
	}
	if _, err := Evaluate(nil, nil, Query{Values: []string{"false", "true"}}); err == nil {
		t.Error("no requesters accepted")
	}
}

func TestIntrinsicAttributes(t *testing.T) {
	admin := DeterministicKey("admin")
	policy := mustPolicy(t, AssertionSpec{
		Licensees: LicenseesOr(admin.Principal),
		Conditions: `_MIN_TRUST == "false" && _MAX_TRUST == "RWX" ` +
			`&& _VALUES == "false,X,W,WX,R,RX,RW,RWX" ` +
			`&& _ACTION_AUTHORIZERS ~= "ed25519-hex:" -> "RWX";`,
	})
	res, err := Evaluate([]*Assertion{policy}, nil, Query{
		Values:     discfsValues,
		Requesters: []Principal{admin.Principal},
	})
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if res.Value != "RWX" {
		t.Errorf("intrinsics = %q, want RWX", res.Value)
	}
}

// TestTimeOfDayPolicy exercises the paper's §3.1 example: leisure files
// unavailable during office hours.
func TestTimeOfDayPolicy(t *testing.T) {
	admin := DeterministicKey("admin")
	user := DeterministicKey("user")
	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `true -> "RWX";`,
	})
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(user.Principal),
		Conditions: `file_class == "leisure" && (@hour < 9 || @hour >= 17) -> "R";`,
	})
	q := func(hour string) string {
		res, err := Evaluate([]*Assertion{policy}, []*Assertion{cred}, Query{
			Values:     discfsValues,
			Attributes: map[string]string{"file_class": "leisure", "hour": hour},
			Requesters: []Principal{user.Principal},
		})
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return res.Value
	}
	if got := q("12"); got != "false" {
		t.Errorf("noon = %q, want false", got)
	}
	if got := q("20"); got != "R" {
		t.Errorf("evening = %q, want R", got)
	}
	if got := q("8"); got != "R" {
		t.Errorf("early morning = %q, want R", got)
	}
}

// TestExpiryCondition shows credential lifetime via a date attribute, the
// mechanism behind the paper's "short-lived credentials" revocation note.
func TestExpiryCondition(t *testing.T) {
	admin := DeterministicKey("admin")
	user := DeterministicKey("user")
	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `true -> "RWX";`,
	})
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(user.Principal),
		Conditions: `now < "2002-01-01T00:00:00Z" -> "R";`,
	})
	q := func(now string) string {
		res, err := Evaluate([]*Assertion{policy}, []*Assertion{cred}, Query{
			Values:     discfsValues,
			Attributes: map[string]string{"now": now},
			Requesters: []Principal{user.Principal},
		})
		if err != nil {
			t.Fatalf("Evaluate: %v", err)
		}
		return res.Value
	}
	if got := q("2001-06-15T12:00:00Z"); got != "R" {
		t.Errorf("before expiry = %q, want R", got)
	}
	if got := q("2002-06-15T12:00:00Z"); got != "false" {
		t.Errorf("after expiry = %q, want false", got)
	}
}

// TestMultiRequesterIntrinsics: _ACTION_AUTHORIZERS lists every
// requester, and conditions can match individual principals in it.
func TestMultiRequesterIntrinsics(t *testing.T) {
	admin := DeterministicKey("mri-admin")
	k1 := DeterministicKey("mri-1")
	k2 := DeterministicKey("mri-2")
	policy := mustPolicy(t, AssertionSpec{
		Licensees: LicenseesAnd(k1.Principal, k2.Principal),
		Conditions: `_ACTION_AUTHORIZERS ~= "` + string(k1.Principal) + `" ` +
			`&& _ACTION_AUTHORIZERS ~= "` + string(k2.Principal) + `" -> "RWX";`,
	})
	_ = admin
	res, err := Evaluate([]*Assertion{policy}, nil, Query{
		Values:     discfsValues,
		Requesters: []Principal{k1.Principal, k2.Principal},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "RWX" {
		t.Errorf("joint request = %q, want RWX", res.Value)
	}
	res, err = Evaluate([]*Assertion{policy}, nil, Query{
		Values:     discfsValues,
		Requesters: []Principal{k1.Principal},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "false" {
		t.Errorf("single request = %q, want false", res.Value)
	}
}

// TestRequesterAuthoringAssertionStaysPinned: a requester that also
// authored assertions keeps its _MAX_TRUST valuation (requesters are
// trusted for their own request by definition).
func TestRequesterAuthoringAssertionStaysPinned(t *testing.T) {
	admin := DeterministicKey("pin-admin")
	bob := DeterministicKey("pin-bob")
	policy := mustPolicy(t, AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `true -> "RWX";`,
	})
	adminToBob := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `true -> "R";`,
	})
	// Bob also signed something (to a third party) — it must not
	// perturb his own valuation as requester.
	bobToCarol := mustSign(t, bob, AssertionSpec{
		Licensees:  LicenseesOr(DeterministicKey("pin-carol").Principal),
		Conditions: `true -> "RWX";`,
	})
	res, err := Evaluate([]*Assertion{policy}, []*Assertion{adminToBob, bobToCarol}, Query{
		Values:     discfsValues,
		Requesters: []Principal{bob.Principal},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "R" {
		t.Errorf("bob = %q, want R", res.Value)
	}
}
