package keynote

import (
	"sort"
	"strconv"
)

// licExpr is a licensees expression: principals combined with && (all
// must be authorized: minimum value), || (any suffices: maximum value)
// and k-of(...) thresholds (k-th largest value), per RFC 2704 section 5.
type licExpr interface {
	// eval computes the expression's compliance value index given a
	// valuation of principals.
	eval(val func(Principal) int) int
	// principals appends every principal mentioned to dst.
	principals(dst []Principal) []Principal
}

type licPrincipal struct{ p Principal }

type licAnd struct{ l, r licExpr }

type licOr struct{ l, r licExpr }

type licThreshold struct {
	k    int
	args []licExpr
}

func (n licPrincipal) eval(val func(Principal) int) int { return val(n.p) }

func (n licAnd) eval(val func(Principal) int) int {
	l, r := n.l.eval(val), n.r.eval(val)
	if l < r {
		return l
	}
	return r
}

func (n licOr) eval(val func(Principal) int) int {
	l, r := n.l.eval(val), n.r.eval(val)
	if l > r {
		return l
	}
	return r
}

func (n licThreshold) eval(val func(Principal) int) int {
	vals := make([]int, len(n.args))
	for i, a := range n.args {
		vals[i] = a.eval(val)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(vals)))
	if n.k <= 0 || n.k > len(vals) {
		return 0
	}
	return vals[n.k-1] // k-th largest: the value k operands reach together
}

func (n licPrincipal) principals(dst []Principal) []Principal { return append(dst, n.p) }

func (n licAnd) principals(dst []Principal) []Principal {
	return n.r.principals(n.l.principals(dst))
}

func (n licOr) principals(dst []Principal) []Principal {
	return n.r.principals(n.l.principals(dst))
}

func (n licThreshold) principals(dst []Principal) []Principal {
	for _, a := range n.args {
		dst = a.principals(dst)
	}
	return dst
}

// parseLicensees parses a Licensees field body. Grammar:
//
//	expr   := term ('||' term)*
//	term   := factor ('&&' factor)*
//	factor := principal | '(' expr ')' | NUM '-' 'of' '(' expr (',' expr)* ')'
//
// Principals are quoted strings or identifiers; identifiers matching a
// Local-Constants name are substituted first.
func parseLicensees(src string, constants map[string]string) (licExpr, error) {
	lx, err := newLexer("Licensees", src)
	if err != nil {
		return nil, err
	}
	p := &licParser{lx: lx, consts: constants}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if t := lx.peek(); t.kind != tokEOF {
		return nil, lx.errf(t.off, "unexpected %v after licensees expression", t.kind)
	}
	return e, nil
}

type licParser struct {
	lx     *lexer
	consts map[string]string
}

func (p *licParser) expr() (licExpr, error) {
	left, err := p.term()
	if err != nil {
		return nil, err
	}
	for p.lx.peek().kind == tokOrOr {
		p.lx.take()
		right, err := p.term()
		if err != nil {
			return nil, err
		}
		left = licOr{left, right}
	}
	return left, nil
}

func (p *licParser) term() (licExpr, error) {
	left, err := p.factor()
	if err != nil {
		return nil, err
	}
	for p.lx.peek().kind == tokAndAnd {
		p.lx.take()
		right, err := p.factor()
		if err != nil {
			return nil, err
		}
		left = licAnd{left, right}
	}
	return left, nil
}

func (p *licParser) factor() (licExpr, error) {
	t := p.lx.peek()
	switch t.kind {
	case tokLParen:
		p.lx.take()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.lx.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokNumber:
		// threshold: NUM '-' of '(' ... ')'
		p.lx.take()
		k, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, p.lx.errf(t.off, "bad threshold count %q", t.text)
		}
		if _, err := p.lx.expect(tokMinus); err != nil {
			return nil, err
		}
		of, err := p.lx.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if of.text != "of" && of.text != "OF" {
			return nil, p.lx.errf(of.off, "expected 'of' in threshold, found %q", of.text)
		}
		if _, err := p.lx.expect(tokLParen); err != nil {
			return nil, err
		}
		var args []licExpr
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			if p.lx.peek().kind == tokComma {
				p.lx.take()
				continue
			}
			break
		}
		if _, err := p.lx.expect(tokRParen); err != nil {
			return nil, err
		}
		if k < 1 || k > len(args) {
			return nil, p.lx.errf(t.off, "threshold %d out of range for %d operands", k, len(args))
		}
		return licThreshold{k: k, args: args}, nil
	case tokString, tokIdent:
		p.lx.take()
		text := t.text
		if t.kind == tokIdent && p.consts != nil {
			if v, ok := p.consts[text]; ok {
				text = v
			}
		}
		pr, err := canonicalPrincipal(text)
		if err != nil {
			return nil, p.lx.errf(t.off, "bad principal: %v", err)
		}
		return licPrincipal{pr}, nil
	}
	return nil, p.lx.errf(t.off, "unexpected %v in licensees expression", t.kind)
}
