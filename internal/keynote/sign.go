package keynote

import (
	"encoding/hex"
	"fmt"
	"strings"
)

// Signing model: the signature covers the assertion text from its first
// byte up to (but not including) the Signature field, concatenated with
// the signature algorithm identifier (e.g. "sig-ed25519-hex:"). This
// mirrors RFC 2704, which signs "everything but the signature data", and
// is reconstructible from a parsed assertion because Assertion retains
// its exact source text.

// signedBytes returns the message a signature of this assertion covers.
func (a *Assertion) signedBytes(algName string) []byte {
	end := a.sigStart
	if end < 0 {
		end = len(a.Source)
	}
	msg := make([]byte, 0, end+len(algName))
	msg = append(msg, a.Source[:end]...)
	msg = append(msg, algName...)
	return msg
}

// splitSignatureValue separates "sig-ed25519-hex:abcd…" into the algorithm
// identifier (with trailing colon) and the decoded signature bytes.
func splitSignatureValue(v string) (algName string, sig []byte, err error) {
	colon := strings.LastIndexByte(v, ':')
	if colon < 0 {
		return "", nil, fmt.Errorf("keynote: malformed signature value %q", v)
	}
	algName = strings.ToLower(v[:colon+1])
	data := v[colon+1:]
	switch {
	case strings.HasSuffix(algName, "-hex:"):
		sig, err = hex.DecodeString(strings.ToLower(data))
	case strings.HasSuffix(algName, "-base64:"):
		sig, err = decodeKeyData("base64", data)
	default:
		return "", nil, fmt.Errorf("keynote: unknown signature encoding in %q", algName)
	}
	if err != nil {
		return "", nil, fmt.Errorf("keynote: bad signature data: %w", err)
	}
	return algName, sig, nil
}

// Verify checks the assertion's signature against its Authorizer key.
// Policy assertions (Authorizer: "POLICY") are unsigned by definition and
// verify trivially. A signed assertion whose authorizer is not a
// cryptographic key cannot be verified.
func (a *Assertion) Verify() error {
	if a.Authorizer == PolicyPrincipal {
		a.verified = true
		return nil
	}
	if !a.Signed() {
		return ErrUnsigned
	}
	if !a.Authorizer.IsKey() {
		return fmt.Errorf("keynote: authorizer %s is not a key; cannot verify", a.Authorizer.Short())
	}
	algName, sig, err := splitSignatureValue(a.SignatureValue)
	if err != nil {
		return err
	}
	if err := verifyMessage(a.Authorizer, algName, a.signedBytes(algName), sig); err != nil {
		return err
	}
	a.verified = true
	return nil
}

// AssertionSpec describes an assertion to compose. Conditions and
// Licensees are field bodies in KeyNote syntax; helpers below build the
// common forms.
type AssertionSpec struct {
	// Authorizer is required for policy assertions (use PolicyPrincipal);
	// ignored by Sign, which uses the signing key's principal.
	Authorizer Principal
	// Licensees is the Licensees field body, e.g. `"ed25519-hex:ab…"`.
	Licensees string
	// LocalConstants, if non-empty, is the Local-Constants field body.
	LocalConstants string
	// Conditions is the Conditions field body; empty means no restriction.
	Conditions string
	// Comment is a free-text comment.
	Comment string
}

// compose renders the unsigned assertion text for the given authorizer.
func (s *AssertionSpec) compose(authorizer string) string {
	var b strings.Builder
	b.WriteString("KeyNote-Version: 2\n")
	if s.Comment != "" {
		b.WriteString("Comment: " + sanitizeFieldText(s.Comment) + "\n")
	}
	if s.LocalConstants != "" {
		b.WriteString("Local-Constants: " + sanitizeFieldText(s.LocalConstants) + "\n")
	}
	b.WriteString("Authorizer: " + authorizer + "\n")
	b.WriteString("Licensees: " + sanitizeFieldText(s.Licensees) + "\n")
	if s.Conditions != "" {
		b.WriteString("Conditions: " + sanitizeFieldText(s.Conditions) + "\n")
	}
	return b.String()
}

// sanitizeFieldText folds newlines into continuation lines so composed
// field bodies cannot terminate the field early.
func sanitizeFieldText(s string) string {
	return strings.ReplaceAll(s, "\n", "\n\t")
}

// NewPolicy composes an unsigned local policy assertion.
func NewPolicy(spec AssertionSpec) (*Assertion, error) {
	text := spec.compose(`"POLICY"`)
	a, err := ParseAssertion(text)
	if err != nil {
		return nil, err
	}
	if a.Authorizer != PolicyPrincipal {
		return nil, ErrNotPolicy
	}
	a.verified = true
	return a, nil
}

// Sign composes a credential assertion from spec, signs it with key, and
// returns the parsed, verified credential. The Authorizer field is the
// signing key's principal.
func Sign(key *KeyPair, spec AssertionSpec) (*Assertion, error) {
	body := spec.compose(quotePrincipal(key.Principal))
	algName := key.signatureAlgName()
	msg := append([]byte(body), algName...)
	rawSig, err := key.signMessage(msg)
	if err != nil {
		return nil, err
	}
	full := body + "Signature: \"" + algName + hex.EncodeToString(rawSig) + "\"\n"
	a, err := ParseAssertion(full)
	if err != nil {
		return nil, fmt.Errorf("keynote: composed credential does not reparse: %w", err)
	}
	if err := a.Verify(); err != nil {
		return nil, fmt.Errorf("keynote: composed credential does not verify: %w", err)
	}
	return a, nil
}

// quotePrincipal renders a principal as a quoted string token.
func quotePrincipal(p Principal) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`)
	return `"` + r.Replace(string(p)) + `"`
}

// LicenseesOr renders a Licensees field body authorizing any one of the
// given principals.
func LicenseesOr(ps ...Principal) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = quotePrincipal(p)
	}
	return strings.Join(parts, " || ")
}

// LicenseesAnd renders a Licensees field body requiring all given
// principals jointly.
func LicenseesAnd(ps ...Principal) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = quotePrincipal(p)
	}
	return strings.Join(parts, " && ")
}

// LicenseesThreshold renders a k-of(...) Licensees field body.
func LicenseesThreshold(k int, ps ...Principal) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = quotePrincipal(p)
	}
	return fmt.Sprintf("%d-of(%s)", k, strings.Join(parts, ", "))
}
