package keynote

// RevocationKind identifies what a revocation log entry withdraws.
type RevocationKind uint8

const (
	// RevokedKey withdraws a principal's entire authority: existing
	// credentials it authorized are dropped and future ones refused.
	RevokedKey RevocationKind = 1
	// RevokedCredential withdraws one credential, named by its
	// signature value. The signature stays refused permanently, so the
	// entry is meaningful even on a session that never held the
	// credential.
	RevokedCredential RevocationKind = 2
)

// Revocation is one entry of a session's monotonic revocation log: the
// durable record of a RevokeKey or RevokeCredential. The log is
// append-only with dense 1-based sequence numbers, exported so a
// replication layer (the DisCFS server-to-server revocation feed) can
// ship withdrawals between sessions with a plain position cursor.
// Entries are idempotent: re-applying one to a session that has already
// seen its target changes nothing.
type Revocation struct {
	Seq    uint64
	Kind   RevocationKind
	Target string // canonical principal text, or credential signature value
}

// Revocations returns the session's revocation log entries with
// Seq > since (pass 0 for the whole log).
func (s *Session) Revocations(since uint64) []Revocation {
	return s.Snapshot().Revocations(since)
}

// RevocationSeq returns the sequence number of the newest revocation
// log entry (0 when nothing has been revoked).
func (s *Session) RevocationSeq() uint64 {
	return s.Snapshot().RevocationSeq()
}

// RevokedCredential reports whether a credential signature has been
// revoked in the session.
func (s *Session) RevokedCredential(sig string) bool {
	return s.Snapshot().RevokedCredential(sig)
}

// CanonicalPrincipal normalizes a principal the same way the session's
// revocation bookkeeping does: keys are rewritten to lowercase
// "<alg>-hex:" form, opaque names pass through. Unparseable input is
// returned unchanged, matching RevokeKey's fallback.
func CanonicalPrincipal(p Principal) Principal {
	c, err := canonicalPrincipal(string(p))
	if err != nil {
		return p
	}
	return c
}

// appendRevocation records one log entry on a snapshot under mutation.
func (sn *Snapshot) appendRevocation(kind RevocationKind, target string) {
	sn.revlog = append(sn.revlog, Revocation{
		Seq:    uint64(len(sn.revlog)) + 1,
		Kind:   kind,
		Target: target,
	})
}
