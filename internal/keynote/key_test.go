package keynote

import (
	"encoding/base64"
	"encoding/hex"
	"strings"
	"testing"
)

func TestGenerateKeyProducesCanonicalPrincipal(t *testing.T) {
	k, err := GenerateKey()
	if err != nil {
		t.Fatalf("GenerateKey: %v", err)
	}
	if !strings.HasPrefix(string(k.Principal), "ed25519-hex:") {
		t.Errorf("principal %q lacks ed25519-hex prefix", k.Principal)
	}
	if !k.Principal.IsKey() {
		t.Errorf("generated principal not recognized as key")
	}
	if k.Principal.Algorithm() != AlgEd25519 {
		t.Errorf("algorithm = %v, want ed25519", k.Principal.Algorithm())
	}
}

func TestDeterministicKeyIsStable(t *testing.T) {
	a := DeterministicKey("alice")
	b := DeterministicKey("alice")
	c := DeterministicKey("bob")
	if a.Principal != b.Principal {
		t.Errorf("same seed produced different principals")
	}
	if a.Principal == c.Principal {
		t.Errorf("different seeds produced the same principal")
	}
}

func TestCanonicalPrincipalHexBase64Equivalence(t *testing.T) {
	k := DeterministicKey("canon")
	_, raw, err := splitKey(string(k.Principal))
	if err != nil {
		t.Fatalf("splitKey: %v", err)
	}
	b64 := "ed25519-base64:" + base64.StdEncoding.EncodeToString(raw)
	upperHex := "ED25519-HEX:" + strings.ToUpper(hex.EncodeToString(raw))

	c1, err := canonicalPrincipal(b64)
	if err != nil {
		t.Fatalf("canonical(base64): %v", err)
	}
	c2, err := canonicalPrincipal(upperHex)
	if err != nil {
		t.Fatalf("canonical(upper hex): %v", err)
	}
	if c1 != k.Principal || c2 != k.Principal {
		t.Errorf("canonicalization mismatch: %q, %q, want %q", c1, c2, k.Principal)
	}
}

func TestOpaquePrincipalPassesThrough(t *testing.T) {
	for _, s := range []string{"POLICY", "some-user", "mailto:alice@example.com"} {
		p, err := canonicalPrincipal(s)
		if err != nil {
			t.Fatalf("canonical(%q): %v", s, err)
		}
		if string(p) != s {
			t.Errorf("canonical(%q) = %q, want unchanged", s, p)
		}
		if p.IsKey() {
			t.Errorf("%q misidentified as a key", s)
		}
	}
}

func TestBadKeyEncodingRejected(t *testing.T) {
	if _, err := canonicalPrincipal("ed25519-hex:zzzz"); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := canonicalPrincipal("rsa-base64:!!!"); err == nil {
		t.Error("bad base64 accepted")
	}
}

func TestPublicKeyRoundTrip(t *testing.T) {
	k := DeterministicKey("pub")
	pub, err := k.Principal.PublicKey()
	if err != nil {
		t.Fatalf("PublicKey: %v", err)
	}
	if pub == nil {
		t.Fatal("nil public key")
	}
	// Wrong length must be rejected.
	if _, err := Principal("ed25519-hex:abcd").PublicKey(); err == nil {
		t.Error("short ed25519 key accepted")
	}
	if _, err := Principal("POLICY").PublicKey(); err == nil {
		t.Error("opaque principal produced a public key")
	}
}

func TestRSAKeySignVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA keygen is slow")
	}
	k, err := GenerateRSAKey(2048)
	if err != nil {
		t.Fatalf("GenerateRSAKey: %v", err)
	}
	if k.Principal.Algorithm() != AlgRSA {
		t.Fatalf("algorithm = %v, want rsa", k.Principal.Algorithm())
	}
	msg := []byte("the quick brown fox")
	sig, err := k.signMessage(msg)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if err := verifyMessage(k.Principal, "sig-rsa-sha256-hex:", msg, sig); err != nil {
		t.Errorf("verify: %v", err)
	}
	if err := verifyMessage(k.Principal, "sig-rsa-sha256-hex:", append(msg, 'x'), sig); err == nil {
		t.Error("tampered message verified")
	}
}

func TestShortFormsAreShort(t *testing.T) {
	k := DeterministicKey("short")
	s := k.Principal.Short()
	if len(s) > 24 {
		t.Errorf("Short() = %q too long", s)
	}
	long := Principal("an-extremely-long-opaque-principal-name")
	if got := long.Short(); len(got) > 20 {
		t.Errorf("opaque Short() = %q too long", got)
	}
}

func TestVerifyMessageAlgorithmMismatch(t *testing.T) {
	k := DeterministicKey("mismatch")
	msg := []byte("m")
	sig, err := k.signMessage(msg)
	if err != nil {
		t.Fatalf("sign: %v", err)
	}
	if err := verifyMessage(k.Principal, "sig-rsa-sha256-hex:", msg, sig); err == nil {
		t.Error("rsa verify against ed25519 key succeeded")
	}
	if err := verifyMessage(k.Principal, "sig-unknown-hex:", msg, sig); err == nil {
		t.Error("unknown algorithm accepted")
	}
}
