package keynote

import (
	"strings"
	"testing"
)

func TestParsePaperFigure5Shape(t *testing.T) {
	// The credential of the paper's Figure 5, with Ed25519 standing in
	// for DSA and without a real signature (parse-only).
	admin := DeterministicKey("admin")
	user := DeterministicKey("miltchev")
	text := "KeyNote-Version: 2\n" +
		"Authorizer: " + quotePrincipal(admin.Principal) + "\n" +
		"Licensees: " + quotePrincipal(user.Principal) + "\n" +
		"Conditions: (app_domain == \"DisCFS\") &&\n" +
		"\t(HANDLE == \"666240\") -> \"RWX\";\n" +
		"Comment: testdir\n"
	a, err := ParseAssertion(text)
	if err != nil {
		t.Fatalf("ParseAssertion: %v", err)
	}
	if a.Authorizer != admin.Principal {
		t.Errorf("authorizer = %s, want admin", a.Authorizer.Short())
	}
	lics := a.Licensees()
	if len(lics) != 1 || lics[0] != user.Principal {
		t.Errorf("licensees = %v, want [user]", lics)
	}
	if a.Comment != "testdir" {
		t.Errorf("comment = %q", a.Comment)
	}
	if a.Signed() {
		t.Error("unsigned assertion reports Signed")
	}
}

func TestParseContinuationLines(t *testing.T) {
	text := "KeyNote-Version: 2\n" +
		"Authorizer: \"POLICY\"\n" +
		"Licensees: \"user-one\" ||\n" +
		"   \"user-two\" ||\n" +
		"\t\"user-three\"\n" +
		"Conditions: a == \"1\"\n" +
		"  -> \"true\";\n"
	a, err := ParseAssertion(text)
	if err != nil {
		t.Fatalf("ParseAssertion: %v", err)
	}
	if got := len(a.Licensees()); got != 3 {
		t.Errorf("licensees count = %d, want 3", got)
	}
}

func TestParseFieldErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
	}{
		{"empty", ""},
		{"no colon", "KeyNote-Version 2\n"},
		{"unknown field", "KeyNote-Version: 2\nAuthorizer: \"POLICY\"\nFrobnicate: yes\n"},
		{"duplicate field", "Authorizer: \"POLICY\"\nAuthorizer: \"POLICY\"\n"},
		{"missing authorizer", "KeyNote-Version: 2\nLicensees: \"a\"\n"},
		{"bad version", "KeyNote-Version: 3\nAuthorizer: \"POLICY\"\n"},
		{"continuation first", "  Licensees: \"a\"\n"},
		{"signature not last", "Authorizer: \"POLICY\"\nSignature: \"sig-ed25519-hex:00\"\nComment: after\n"},
		{"empty signature", "Authorizer: \"POLICY\"\nSignature:\n"},
		{"two principals", "Authorizer: \"POLICY\" \"other\"\n"},
	}
	for _, c := range cases {
		if _, err := ParseAssertion(c.text); err == nil {
			t.Errorf("%s: parse succeeded, want error", c.name)
		}
	}
}

func TestParseAssertionsSplitting(t *testing.T) {
	text := "# leading comment\n" +
		"Authorizer: \"POLICY\"\nLicensees: \"a\"\n" +
		"\n" +
		"# comment between\n" +
		"\n" +
		"Authorizer: \"POLICY\"\nLicensees: \"b\"\n\n\n"
	as, err := ParseAssertions(text)
	if err != nil {
		t.Fatalf("ParseAssertions: %v", err)
	}
	if len(as) != 2 {
		t.Fatalf("got %d assertions, want 2", len(as))
	}
	if as[0].Licensees()[0] != "a" || as[1].Licensees()[0] != "b" {
		t.Errorf("licensees parsed wrong: %v / %v", as[0].Licensees(), as[1].Licensees())
	}
}

func TestLocalConstants(t *testing.T) {
	text := "KeyNote-Version: 2\n" +
		"Local-Constants: ALICE = \"ed25519-hex:" + strings.Repeat("ab", 32) + "\"\n" +
		"Authorizer: \"POLICY\"\n" +
		"Licensees: ALICE\n" +
		"Conditions: user == ALICE -> \"true\";\n"
	a, err := ParseAssertion(text)
	if err != nil {
		t.Fatalf("ParseAssertion: %v", err)
	}
	want := Principal("ed25519-hex:" + strings.Repeat("ab", 32))
	if got := a.Licensees(); len(got) != 1 || got[0] != want {
		t.Errorf("licensees = %v, want [%s]", got, want.Short())
	}
}

func TestLocalConstantsErrors(t *testing.T) {
	bad := []string{
		"Local-Constants: A\nAuthorizer: \"POLICY\"\n",
		"Local-Constants: A = \nAuthorizer: \"POLICY\"\n",
		"Local-Constants: A = \"x\" A = \"y\"\nAuthorizer: \"POLICY\"\n",
		"Local-Constants: = \"x\"\nAuthorizer: \"POLICY\"\n",
	}
	for _, text := range bad {
		if _, err := ParseAssertion(text); err == nil {
			t.Errorf("parse %q succeeded, want error", text)
		}
	}
}

func TestSignVerifyRoundTrip(t *testing.T) {
	bob := DeterministicKey("bob")
	alice := DeterministicKey("alice")
	cred, err := Sign(bob, AssertionSpec{
		Licensees:  LicenseesOr(alice.Principal),
		Conditions: `app_domain == "DisCFS" && HANDLE == "17" -> "R";`,
		Comment:    "bob delegates read on 17 to alice",
	})
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if !cred.Signed() || !cred.Verified() {
		t.Fatal("signed credential not marked signed+verified")
	}
	// Re-parse from text: must verify from scratch.
	re, err := ParseAssertion(cred.Source)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if re.Verified() {
		t.Error("fresh parse claims verified before Verify()")
	}
	if err := re.Verify(); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if re.Authorizer != bob.Principal {
		t.Errorf("authorizer = %s", re.Authorizer.Short())
	}
}

func TestVerifyDetectsTampering(t *testing.T) {
	bob := DeterministicKey("bob")
	alice := DeterministicKey("alice")
	eve := DeterministicKey("eve")
	cred, err := Sign(bob, AssertionSpec{
		Licensees:  LicenseesOr(alice.Principal),
		Conditions: `HANDLE == "17" -> "R";`,
	})
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}

	// Tamper 1: upgrade R to RWX.
	tampered := strings.Replace(cred.Source, `"R";`, `"RWX";`, 1)
	a, err := ParseAssertion(tampered)
	if err != nil {
		t.Fatalf("parse tampered: %v", err)
	}
	if err := a.Verify(); err == nil {
		t.Error("conditions tampering not detected")
	}

	// Tamper 2: swap the licensee for eve.
	tampered = strings.Replace(cred.Source, string(alice.Principal), string(eve.Principal), 1)
	a, err = ParseAssertion(tampered)
	if err != nil {
		t.Fatalf("parse tampered: %v", err)
	}
	if err := a.Verify(); err == nil {
		t.Error("licensee tampering not detected")
	}

	// Tamper 3: swap the authorizer (signature is by bob's key).
	tampered = strings.Replace(cred.Source, string(bob.Principal), string(eve.Principal), 1)
	a, err = ParseAssertion(tampered)
	if err != nil {
		t.Fatalf("parse tampered: %v", err)
	}
	if err := a.Verify(); err == nil {
		t.Error("authorizer substitution not detected")
	}
}

func TestVerifyUnsignedCredential(t *testing.T) {
	bob := DeterministicKey("bob")
	text := "KeyNote-Version: 2\nAuthorizer: " + quotePrincipal(bob.Principal) + "\nLicensees: \"x\"\n"
	a, err := ParseAssertion(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := a.Verify(); err != ErrUnsigned {
		t.Errorf("Verify = %v, want ErrUnsigned", err)
	}
}

func TestVerifyOpaqueAuthorizerRejected(t *testing.T) {
	text := "Authorizer: \"not-a-key\"\nLicensees: \"x\"\nSignature: \"sig-ed25519-hex:00ff\"\n"
	a, err := ParseAssertion(text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := a.Verify(); err == nil {
		t.Error("opaque authorizer verified")
	}
}

func TestPolicyVerifiesTrivially(t *testing.T) {
	a, err := ParseAssertion("Authorizer: \"POLICY\"\nLicensees: \"x\"\n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := a.Verify(); err != nil {
		t.Errorf("policy Verify: %v", err)
	}
}

func TestNewPolicyHelper(t *testing.T) {
	admin := DeterministicKey("admin")
	pol, err := NewPolicy(AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `app_domain == "DisCFS" -> "RWX";`,
		Comment:    "root of trust",
	})
	if err != nil {
		t.Fatalf("NewPolicy: %v", err)
	}
	if pol.Authorizer != PolicyPrincipal {
		t.Errorf("authorizer = %v", pol.Authorizer)
	}
	if !pol.Verified() {
		t.Error("policy not marked verified")
	}
}

func TestLicenseesHelpers(t *testing.T) {
	a, b, c := Principal("ka"), Principal("kb"), Principal("kc")
	if got := LicenseesOr(a, b); got != `"ka" || "kb"` {
		t.Errorf("LicenseesOr = %q", got)
	}
	if got := LicenseesAnd(a, b, c); got != `"ka" && "kb" && "kc"` {
		t.Errorf("LicenseesAnd = %q", got)
	}
	if got := LicenseesThreshold(2, a, b, c); got != `2-of("ka", "kb", "kc")` {
		t.Errorf("LicenseesThreshold = %q", got)
	}
	// All three must parse.
	for _, body := range []string{LicenseesOr(a, b), LicenseesAnd(a, b, c), LicenseesThreshold(2, a, b, c)} {
		if _, err := parseLicensees(body, nil); err != nil {
			t.Errorf("parseLicensees(%q): %v", body, err)
		}
	}
}

func TestLicenseesParseErrors(t *testing.T) {
	bad := []string{
		``,
		`"a" &&`,
		`|| "a"`,
		`5-of("a", "b")`,  // k > operands
		`0-of("a")`,       // k < 1
		`2-of("a" "b")`,   // missing comma
		`2-off("a", "b")`, // misspelled of
		`("a"`,            // unbalanced
		`"a" "b"`,         // juxtaposition
	}
	for _, body := range bad {
		if _, err := parseLicensees(body, nil); err == nil {
			t.Errorf("parseLicensees(%q) succeeded, want error", body)
		}
	}
}
