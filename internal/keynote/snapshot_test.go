package keynote

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// Tests for the read-mostly session: snapshot immutability, the
// licensee-indexed (pruned) query path, volatile-attribute tracking,
// and -race concurrency of Query against mutations.

// TestSnapshotPrunedQueryMatchesFullEvaluate: the indexed query over the
// requester's delegation graph must agree with a full evaluation over
// every assertion in the session, including with bystander credentials
// that the requester cannot reach.
func TestSnapshotPrunedQueryMatchesFullEvaluate(t *testing.T) {
	s, admin, bob, alice := newTestSession(t)
	// Chain: POLICY -> admin -> bob -> alice.
	adminToBob := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" && HANDLE == "5" -> "RW";`,
	})
	bobToAlice := mustSign(t, bob, AssertionSpec{
		Licensees:  LicenseesOr(alice.Principal),
		Conditions: `app_domain == "DisCFS" && HANDLE == "5" -> "R";`,
	})
	for _, c := range []*Assertion{adminToBob, bobToAlice} {
		if err := s.AddCredential(c); err != nil {
			t.Fatal(err)
		}
	}
	// Bystanders: delegations to unrelated principals that alice's graph
	// never reaches. The pruned query must skip them without changing
	// the answer.
	for i := 0; i < 16; i++ {
		other := DeterministicKey(fmt.Sprintf("bystander-%d", i))
		c := mustSign(t, admin, AssertionSpec{
			Licensees:  LicenseesOr(other.Principal),
			Conditions: `app_domain == "DisCFS" -> "RWX";`,
		})
		if err := s.AddCredential(c); err != nil {
			t.Fatal(err)
		}
	}
	attrs := map[string]string{"app_domain": "DisCFS", "HANDLE": "5"}
	for _, req := range []Principal{alice.Principal, bob.Principal, admin.Principal,
		DeterministicKey("stranger").Principal} {
		snap := s.Snapshot()
		pruned, err := snap.Query(attrs, req)
		if err != nil {
			t.Fatalf("snapshot query(%s): %v", req.Short(), err)
		}
		full, err := Evaluate(snap.Policies(), snap.Credentials(), Query{
			Values:     snap.Values(),
			Attributes: attrs,
			Requesters: []Principal{req},
		})
		if err != nil {
			t.Fatalf("full evaluate(%s): %v", req.Short(), err)
		}
		if pruned != full {
			t.Errorf("requester %s: pruned = %+v, full = %+v", req.Short(), pruned, full)
		}
	}
}

// TestSnapshotPrunedQueryThreshold: k-of licensee expressions span
// principals on and off the requester's reachable set; pruning must
// still collect the threshold assertion (it mentions the requester) and
// evaluate it identically.
func TestSnapshotPrunedQueryThreshold(t *testing.T) {
	s, admin, bob, alice := newTestSession(t)
	// admin delegates to 2-of(bob, alice, carol); bob and alice request
	// together.
	carol := DeterministicKey("carol")
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesThreshold(2, bob.Principal, alice.Principal, carol.Principal),
		Conditions: `app_domain == "DisCFS" -> "RW";`,
	})
	if err := s.AddCredential(cred); err != nil {
		t.Fatal(err)
	}
	attrs := map[string]string{"app_domain": "DisCFS"}
	res, err := s.Query(attrs, bob.Principal, alice.Principal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "RW" {
		t.Errorf("2-of-3 quorum = %q, want RW", res.Value)
	}
	// One requester alone does not meet the threshold.
	res, err = s.Query(attrs, bob.Principal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "false" {
		t.Errorf("1-of-3 = %q, want false", res.Value)
	}
}

// TestSnapshotImmutable: a snapshot taken before a mutation keeps
// answering with the old assertion set and generation.
func TestSnapshotImmutable(t *testing.T) {
	s, admin, bob, _ := newTestSession(t)
	before := s.Snapshot()
	genBefore := before.Generation()
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "R";`,
	})
	if err := s.AddCredential(cred); err != nil {
		t.Fatal(err)
	}
	attrs := map[string]string{"app_domain": "DisCFS"}
	res, err := before.Query(attrs, bob.Principal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "false" {
		t.Errorf("old snapshot sees new credential: %q", res.Value)
	}
	if before.Generation() != genBefore {
		t.Errorf("old snapshot generation moved")
	}
	res, err = s.Query(attrs, bob.Principal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "R" {
		t.Errorf("live session = %q, want R", res.Value)
	}
	if s.Generation() != genBefore+1 {
		t.Errorf("generation = %d, want %d", s.Generation(), genBefore+1)
	}
}

// TestVolatileAttributeTracking: snapshots report whether any assertion
// references a volatile attribute, through additions and removals.
func TestVolatileAttributeTracking(t *testing.T) {
	s, admin, bob, _ := newTestSession(t)
	s.SetVolatileAttributes("hour", "minute", "weekday", "now")
	if s.Snapshot().Volatile() {
		t.Fatal("fresh session volatile")
	}
	timed := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" && hour == "12" -> "R";`,
	})
	if err := s.AddCredential(timed); err != nil {
		t.Fatal(err)
	}
	if !s.Snapshot().Volatile() {
		t.Fatal("hour-gated credential not detected as volatile")
	}
	// Removing the only time-dependent assertion clears the flag.
	if !s.RevokeCredential(timed.SignatureValue) {
		t.Fatal("revoke failed")
	}
	if s.Snapshot().Volatile() {
		t.Error("volatile flag survived removal of the timed credential")
	}
}

// TestQueryLockFreeUnderMutation runs parallel queries against
// concurrent credential additions and revocations (-race), checking
// that observed generations are monotonic and results are always one of
// the legal values for the evolving session.
func TestQueryLockFreeUnderMutation(t *testing.T) {
	s, admin, bob, alice := newTestSession(t)
	adminToBob := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "RW";`,
	})
	if err := s.AddCredential(adminToBob); err != nil {
		t.Fatal(err)
	}
	attrs := map[string]string{"app_domain": "DisCFS"}
	stop := make(chan struct{})
	var failures atomic.Uint64
	var readers, writer sync.WaitGroup
	// Readers: query bob continuously, watching generation monotonicity.
	for g := 0; g < 4; g++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			var lastGen uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.Snapshot()
				if gen := snap.Generation(); gen < lastGen {
					failures.Add(1)
					return
				} else {
					lastGen = gen
				}
				res, err := snap.Query(attrs, bob.Principal)
				if err != nil || (res.Value != "RW" && res.Value != "false") {
					failures.Add(1)
					return
				}
			}
		}()
	}
	// Writer: churn delegations and revocations.
	writer.Add(1)
	go func() {
		defer writer.Done()
		for i := 0; i < 200; i++ {
			k := DeterministicKey(fmt.Sprintf("churn-%d", i))
			cred := mustSign(t, bob, AssertionSpec{
				Licensees:  LicenseesOr(k.Principal),
				Conditions: `app_domain == "DisCFS" -> "R";`,
			})
			if err := s.AddCredential(cred); err != nil {
				failures.Add(1)
				return
			}
			if i%3 == 0 {
				s.RevokeCredential(cred.SignatureValue)
			}
			if i%17 == 16 {
				s.RevokeKey(k.Principal)
			}
		}
	}()
	writer.Wait()
	close(stop)
	readers.Wait()
	_ = alice
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d reader/writer failures", n)
	}
}

// TestGenerationCountsMutations: every kind of mutation bumps the
// generation exactly once; no-op mutations do not.
func TestGenerationCountsMutations(t *testing.T) {
	s, admin, bob, _ := newTestSession(t)
	g0 := s.Generation()
	cred := mustSign(t, admin, AssertionSpec{
		Licensees:  LicenseesOr(bob.Principal),
		Conditions: `app_domain == "DisCFS" -> "R";`,
	})
	if err := s.AddCredential(cred); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != g0+1 {
		t.Fatalf("gen after add = %d, want %d", s.Generation(), g0+1)
	}
	// Duplicate submission: no change.
	if err := s.AddCredential(cred); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != g0+1 {
		t.Errorf("gen after duplicate add = %d, want %d", s.Generation(), g0+1)
	}
	// Revoking an unknown signature: nothing removed, but the signature
	// is recorded permanently (and logged for the feed) so a later
	// submission is refused — recording it is a mutation.
	if s.RevokeCredential("sig-ed25519-hex:nope") {
		t.Error("revoked a nonexistent credential")
	}
	if s.Generation() != g0+2 {
		t.Errorf("gen after unknown-sig revoke = %d, want %d", s.Generation(), g0+2)
	}
	// Revoking the same signature again: no change.
	if s.RevokeCredential("sig-ed25519-hex:nope") {
		t.Error("revoked a nonexistent credential twice")
	}
	if s.Generation() != g0+2 {
		t.Errorf("gen after repeat revoke = %d, want %d", s.Generation(), g0+2)
	}
	if !s.RevokeCredential(cred.SignatureValue) {
		t.Error("revoke failed")
	}
	if s.Generation() != g0+3 {
		t.Errorf("gen after revoke = %d, want %d", s.Generation(), g0+3)
	}
}
