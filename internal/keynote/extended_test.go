package keynote

import (
	"strings"
	"testing"
)

// TestRSACredentialEndToEnd signs and verifies with RSA, and mixes RSA
// and Ed25519 principals in one delegation chain — the engine must be
// algorithm-agnostic, as KeyNote is.
func TestRSACredentialEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("RSA keygen is slow")
	}
	rsaKey, err := GenerateRSAKey(2048)
	if err != nil {
		t.Fatalf("GenerateRSAKey: %v", err)
	}
	edKey := DeterministicKey("mixed-ed")

	// RSA authorizer → Ed25519 licensee.
	cred, err := Sign(rsaKey, AssertionSpec{
		Licensees:  LicenseesOr(edKey.Principal),
		Conditions: `HANDLE == "5" -> "RW";`,
		Comment:    "rsa signs for ed25519",
	})
	if err != nil {
		t.Fatalf("Sign(rsa): %v", err)
	}
	if !strings.Contains(cred.Source, "sig-rsa-sha256-hex:") {
		t.Errorf("signature algorithm missing from source")
	}
	re, err := ParseAssertion(cred.Source)
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Verify(); err != nil {
		t.Fatalf("Verify(rsa): %v", err)
	}
	// Tampering is caught for RSA too.
	tampered := strings.Replace(cred.Source, `"RW"`, `"RWX"`, 1)
	ta, err := ParseAssertion(tampered)
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Verify(); err == nil {
		t.Error("tampered RSA credential verified")
	}

	// Full chain: POLICY → rsa → ed25519.
	session, err := NewSession(discfsValues)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewPolicy(AssertionSpec{
		Licensees:  LicenseesOr(rsaKey.Principal),
		Conditions: `true -> "RWX";`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := session.AddPolicy(pol); err != nil {
		t.Fatal(err)
	}
	if err := session.AddCredential(cred); err != nil {
		t.Fatal(err)
	}
	res, err := session.Query(map[string]string{"HANDLE": "5"}, edKey.Principal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "RW" {
		t.Errorf("mixed-algorithm chain = %q, want RW", res.Value)
	}
}

// TestOperatorPrecedence pins the precedence rules of the conditions
// grammar.
func TestOperatorPrecedence(t *testing.T) {
	attrs := map[string]string{"a": "2", "b": "3", "c": "4"}
	cases := []struct {
		cond string
		want string
	}{
		// * binds tighter than +.
		{`@a + @b * @c == 14 -> "true";`, "true"},
		// unary minus binds tighter than *.
		{`-@a * @b == -6 -> "true";`, "true"},
		// ^ binds tighter than * and is right-associative.
		{`@a * @b ^ @a == 18 -> "true";`, "true"},
		{`@b ^ @a ^ 0 == 3 -> "true";`, "true"}, // 3^(2^0) = 3
		// && binds tighter than ||.
		{`false && false || true -> "true";`, "true"},
		{`true || false && false -> "true";`, "true"},
		// relational binds tighter than &&.
		{`@a < @b && @b < @c -> "true";`, "true"},
		// . (concat) binds tighter than ==.
		{`a . b == "23" -> "true";`, "true"},
		// parentheses override.
		{`(@a + @b) * @c == 20 -> "true";`, "true"},
	}
	for _, c := range cases {
		if got := evalCond(t, c.cond, attrs, binVals); got != c.want {
			t.Errorf("%q = %q, want %q", c.cond, got, c.want)
		}
	}
}

// TestNestedLicenseeExpressions combines &&, || and k-of in one field.
func TestNestedLicenseeExpressions(t *testing.T) {
	val := func(vals map[Principal]int) func(Principal) int {
		return func(p Principal) int { return vals[p] }
	}
	// (A && B) || 2-of(C, D, E)
	expr, err := parseLicensees(`("A" && "B") || 2-of("C", "D", "E")`, nil)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cases := []struct {
		vals map[Principal]int
		want int
	}{
		{map[Principal]int{"A": 7, "B": 7}, 7},                 // left arm
		{map[Principal]int{"A": 7}, 0},                         // A alone: no
		{map[Principal]int{"C": 7, "D": 7}, 7},                 // right arm
		{map[Principal]int{"C": 7}, 0},                         // C alone: no
		{map[Principal]int{"A": 3, "B": 5, "C": 7, "D": 6}, 6}, // max(min(3,5), 2nd(7,6,0)) = max(3,6)
	}
	for i, c := range cases {
		if got := expr.eval(val(c.vals)); got != c.want {
			t.Errorf("case %d: eval = %d, want %d", i, got, c.want)
		}
	}

	// k-of over sub-expressions.
	expr, err = parseLicensees(`2-of("A" && "B", "C", "D")`, nil)
	if err != nil {
		t.Fatalf("parse nested k-of: %v", err)
	}
	got := expr.eval(val(map[Principal]int{"A": 7, "B": 7, "C": 7}))
	if got != 7 {
		t.Errorf("2-of with satisfied && arm = %d, want 7", got)
	}
	got = expr.eval(val(map[Principal]int{"A": 7, "C": 7}))
	if got != 0 {
		// arm values: min(7,0)=0, 7, 0 → 2nd largest 0.
		t.Errorf("2-of with broken && arm = %d, want 0", got)
	}
}

// TestMultipleClausesAcrossValues exercises programs returning different
// values for different conditions — the paper's flexible-policy pitch.
func TestMultipleClausesAcrossValues(t *testing.T) {
	cond := `
		role == "owner" -> "RWX";
		role == "editor" -> "RW";
		role == "reviewer" -> "R";
		role == "ci" && target ~= "\\.log$" -> "W";
	`
	cases := []struct {
		role, target, want string
	}{
		{"owner", "x", "RWX"},
		{"editor", "x", "RW"},
		{"reviewer", "x", "R"},
		{"ci", "build.log", "W"},
		{"ci", "main.c", "false"},
		{"stranger", "x", "false"},
	}
	for _, c := range cases {
		got := evalCond(t, cond, map[string]string{"role": c.role, "target": c.target}, rwxVals)
		if got != c.want {
			t.Errorf("role=%s target=%s: %q, want %q", c.role, c.target, got, c.want)
		}
	}
}

// TestSessionWithManyPrincipals is a scale smoke test: 200 users each
// with a credential, queries resolve correctly for each.
func TestSessionWithManyPrincipals(t *testing.T) {
	admin := DeterministicKey("scale-admin")
	s, err := NewSession(discfsValues)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewPolicy(AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `true -> "RWX";`,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddPolicy(pol); err != nil {
		t.Fatal(err)
	}
	users := make([]*KeyPair, 200)
	for i := range users {
		users[i] = DeterministicKey("scale-user-" + itoa(i))
		value := discfsValues[1+i%7] // everything but "false"
		cred, err := Sign(admin, AssertionSpec{
			Licensees:  LicenseesOr(users[i].Principal),
			Conditions: `HANDLE == "` + itoa(i) + `" -> "` + value + `";`,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddCredential(cred); err != nil {
			t.Fatal(err)
		}
	}
	for i, u := range users {
		res, err := s.Query(map[string]string{"HANDLE": itoa(i)}, u.Principal)
		if err != nil {
			t.Fatal(err)
		}
		want := discfsValues[1+i%7]
		if res.Value != want {
			t.Errorf("user %d = %q, want %q", i, res.Value, want)
		}
		// And on someone else's handle: nothing.
		res, err = s.Query(map[string]string{"HANDLE": itoa(i + 1000)}, u.Principal)
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != "false" {
			t.Errorf("user %d on foreign handle = %q", i, res.Value)
		}
	}
}

// TestConditionsWhitespaceAndComments: conditions spread over
// continuation lines with odd spacing parse identically.
func TestConditionsWhitespaceRobustness(t *testing.T) {
	tight := `a=="1"&&b=="2"->"true";`
	loose := "a  ==  \"1\"\n\t&& b == \"2\"\n\t-> \"true\" ;"
	attrs := map[string]string{"a": "1", "b": "2"}
	if got := evalCond(t, tight, attrs, binVals); got != "true" {
		t.Errorf("tight spacing: %q", got)
	}
	if got := evalCond(t, loose, attrs, binVals); got != "true" {
		t.Errorf("loose spacing: %q", got)
	}
}

// TestEmptyConditionsMeansMaxTrust per RFC 2704: a credential without a
// Conditions field places no restrictions.
func TestEmptyConditionsMeansMaxTrust(t *testing.T) {
	admin := DeterministicKey("nc-admin")
	bob := DeterministicKey("nc-bob")
	s, _ := NewSession(discfsValues)
	pol, _ := NewPolicy(AssertionSpec{
		Licensees:  LicenseesOr(admin.Principal),
		Conditions: `true -> "RWX";`,
	})
	s.AddPolicy(pol)
	cred := mustSign(t, admin, AssertionSpec{Licensees: LicenseesOr(bob.Principal)})
	s.AddCredential(cred)
	res, err := s.Query(nil, bob.Principal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != "RWX" {
		t.Errorf("no-conditions credential = %q, want RWX", res.Value)
	}
}
