package keynote

import (
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// The conditions language of RFC 2704 distinguishes string expressions,
// numeric expressions and tests (booleans). We parse with a single
// precedence-climbing grammar into a typed AST and reject mixed-type
// operations at parse time, which matches the RFC's split grammar while
// avoiding backtracking on '('.

// exprType is the static type of a conditions expression node.
type exprType int

const (
	typeBool exprType = iota
	typeStr
	typeNum
)

func (t exprType) String() string {
	switch t {
	case typeBool:
		return "test"
	case typeStr:
		return "string"
	case typeNum:
		return "number"
	}
	return "?"
}

// env is the evaluation environment of a conditions program: the action
// attribute set plus the intrinsic attributes derived from the query.
type env struct {
	attrs func(string) (string, bool) // action attribute lookup
	// softErr records the first runtime evaluation problem (bad regex,
	// division by zero). Such clauses evaluate to false per RFC 2704
	// rather than aborting the query.
	softErr error
}

func (e *env) lookup(name string) string {
	if v, ok := e.attrs(name); ok {
		return v
	}
	return "" // undefined attributes read as the empty string
}

func (e *env) fail(err error) {
	if e.softErr == nil {
		e.softErr = err
	}
}

// expr is a node of the typed conditions AST.
type expr interface {
	typ() exprType
}

// Boolean nodes.

type boolConst struct{ v bool }

type boolAnd struct{ l, r expr }
type boolOr struct{ l, r expr }
type boolNot struct{ e expr }

// boolCmp compares two same-typed operands with a relational operator.
type boolCmp struct {
	op   tokKind // tokEq, tokNe, tokLt, tokLe, tokGt, tokGe
	kind exprType
	l, r expr
}

// boolRegex is the '~=' operator: left string matched against the regular
// expression on the right.
type boolRegex struct{ l, r expr }

func (boolConst) typ() exprType { return typeBool }
func (boolAnd) typ() exprType   { return typeBool }
func (boolOr) typ() exprType    { return typeBool }
func (boolNot) typ() exprType   { return typeBool }
func (boolCmp) typ() exprType   { return typeBool }
func (boolRegex) typ() exprType { return typeBool }

// String nodes.

type strLit struct{ s string }

// strAttr reads an action attribute by name (bare identifier).
type strAttr struct{ name string }

// strDeref is '$e': the attribute named by the value of e.
type strDeref struct{ e expr }

// strConcat is 'l . r'.
type strConcat struct{ l, r expr }

func (strLit) typ() exprType    { return typeStr }
func (strAttr) typ() exprType   { return typeStr }
func (strDeref) typ() exprType  { return typeStr }
func (strConcat) typ() exprType { return typeStr }

// Numeric nodes.

type numLit struct{ f float64 }

// numCoerce is '@e': numeric interpretation of a string expression.
// Non-numeric strings coerce to 0, matching the reference implementation.
type numCoerce struct{ e expr }

type numNeg struct{ e expr }

type numBin struct {
	op   tokKind // + - * / % ^
	l, r expr
}

func (numLit) typ() exprType    { return typeNum }
func (numCoerce) typ() exprType { return typeNum }
func (numNeg) typ() exprType    { return typeNum }
func (numBin) typ() exprType    { return typeNum }

// evalBool evaluates a boolean node.
func evalBool(e *env, x expr) bool {
	switch n := x.(type) {
	case boolConst:
		return n.v
	case boolAnd:
		return evalBool(e, n.l) && evalBool(e, n.r)
	case boolOr:
		return evalBool(e, n.l) || evalBool(e, n.r)
	case boolNot:
		return !evalBool(e, n.e)
	case boolCmp:
		if n.kind == typeStr {
			l, r := evalStr(e, n.l), evalStr(e, n.r)
			switch n.op {
			case tokEq:
				return l == r
			case tokNe:
				return l != r
			case tokLt:
				return l < r
			case tokLe:
				return l <= r
			case tokGt:
				return l > r
			case tokGe:
				return l >= r
			}
			return false
		}
		l, lok := evalNum(e, n.l)
		r, rok := evalNum(e, n.r)
		if !lok || !rok {
			return false
		}
		switch n.op {
		case tokEq:
			return l == r
		case tokNe:
			return l != r
		case tokLt:
			return l < r
		case tokLe:
			return l <= r
		case tokGt:
			return l > r
		case tokGe:
			return l >= r
		}
		return false
	case boolRegex:
		s := evalStr(e, n.l)
		pat := evalStr(e, n.r)
		re, err := compileRegex(pat)
		if err != nil {
			e.fail(err)
			return false
		}
		return re.MatchString(s)
	}
	return false
}

// evalStr evaluates a string node.
func evalStr(e *env, x expr) string {
	switch n := x.(type) {
	case strLit:
		return n.s
	case strAttr:
		return e.lookup(n.name)
	case strDeref:
		return e.lookup(evalStr(e, n.e))
	case strConcat:
		return evalStr(e, n.l) + evalStr(e, n.r)
	}
	return ""
}

// evalNum evaluates a numeric node; ok is false on runtime failure
// (division by zero), which makes the enclosing test false.
func evalNum(e *env, x expr) (float64, bool) {
	switch n := x.(type) {
	case numLit:
		return n.f, true
	case numCoerce:
		s := strings.TrimSpace(evalStr(e, n.e))
		if s == "" {
			return 0, true
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, true // non-numeric coerces to 0
		}
		return f, true
	case numNeg:
		v, ok := evalNum(e, n.e)
		return -v, ok
	case numBin:
		l, lok := evalNum(e, n.l)
		r, rok := evalNum(e, n.r)
		if !lok || !rok {
			return 0, false
		}
		switch n.op {
		case tokPlus:
			return l + r, true
		case tokMinus:
			return l - r, true
		case tokStar:
			return l * r, true
		case tokSlash:
			if r == 0 {
				e.fail(&SyntaxError{Field: "Conditions", Msg: "division by zero"})
				return 0, false
			}
			return l / r, true
		case tokPercent:
			if r == 0 {
				e.fail(&SyntaxError{Field: "Conditions", Msg: "modulo by zero"})
				return 0, false
			}
			return float64(int64(l) % int64(r)), true
		case tokCaret:
			return pow(l, r), true
		}
	}
	return 0, false
}

// pow computes l^r for the small integer exponents policies use, falling
// back to repeated multiplication; KeyNote policies do not need math.Pow
// precision and the stdlib-only constraint is trivially met either way.
func pow(l, r float64) float64 {
	n := int64(r)
	if float64(n) != r || n < 0 {
		// Fractional or negative exponents are outside RFC 2704's integer
		// usage; approximate via exp/log-free iteration is not worth it.
		// Return 0 to make the comparison fail closed.
		return 0
	}
	out := 1.0
	for ; n > 0; n-- {
		out *= l
	}
	return out
}

// regexCache memoizes compiled patterns; policy conditions are evaluated
// on every uncached file operation, so compilation cost matters.
var regexCache sync.Map // string -> *regexp.Regexp

// ---- static attribute references ----

// referencesAny reports whether the program mentions any of the named
// action attributes. A '$' dereference reads an attribute whose name is
// computed at evaluation time, so it conservatively counts as
// referencing everything.
func (p *condProgram) referencesAny(names map[string]bool) bool {
	for _, c := range p.clauses {
		if exprReferencesAny(c.test, names) {
			return true
		}
		if c.value != nil && exprReferencesAny(c.value, names) {
			return true
		}
		if c.sub != nil && c.sub.referencesAny(names) {
			return true
		}
	}
	return false
}

func exprReferencesAny(x expr, names map[string]bool) bool {
	switch n := x.(type) {
	case boolAnd:
		return exprReferencesAny(n.l, names) || exprReferencesAny(n.r, names)
	case boolOr:
		return exprReferencesAny(n.l, names) || exprReferencesAny(n.r, names)
	case boolNot:
		return exprReferencesAny(n.e, names)
	case boolCmp:
		return exprReferencesAny(n.l, names) || exprReferencesAny(n.r, names)
	case boolRegex:
		return exprReferencesAny(n.l, names) || exprReferencesAny(n.r, names)
	case strAttr:
		return names[n.name]
	case strDeref:
		return true // dynamic name: could be anything
	case strConcat:
		return exprReferencesAny(n.l, names) || exprReferencesAny(n.r, names)
	case numCoerce:
		return exprReferencesAny(n.e, names)
	case numNeg:
		return exprReferencesAny(n.e, names)
	case numBin:
		return exprReferencesAny(n.l, names) || exprReferencesAny(n.r, names)
	}
	return false
}

func compileRegex(pat string) (*regexp.Regexp, error) {
	if v, ok := regexCache.Load(pat); ok {
		return v.(*regexp.Regexp), nil
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, err
	}
	regexCache.Store(pat, re)
	return re, nil
}

// ---- Conditions program ----

// clause is one "test -> value ;" element of a conditions program. A
// missing "-> value" part returns _MAX_TRUST; the value may instead be a
// nested program in braces.
type clause struct {
	test  expr // boolean
	value expr // string expression naming a compliance value; nil if sub or bare
	sub   *condProgram
}

// condProgram is a parsed Conditions field.
type condProgram struct {
	clauses []clause
}

// evalProgram computes the compliance value index of a program: the
// maximum (in the query's value order) over all satisfied clauses, or 0
// (_MIN_TRUST) if none are satisfied. Values not present in the query's
// ordered set evaluate to _MIN_TRUST.
func (p *condProgram) eval(e *env, order *valueOrder) int {
	best := 0
	for _, c := range p.clauses {
		if !evalBool(e, c.test) {
			continue
		}
		var v int
		switch {
		case c.sub != nil:
			v = c.sub.eval(e, order)
		case c.value != nil:
			v = order.index(evalStr(e, c.value))
		default:
			v = order.max()
		}
		if v > best {
			best = v
		}
	}
	return best
}

// ---- Parser ----

// parseConditions parses a Conditions field body into a program.
// constants maps Local-Constants names to their string values; they are
// substituted wherever an identifier matches a constant name, per RFC
// 2704 section 4.4.
func parseConditions(src string, constants map[string]string) (*condProgram, error) {
	lx, err := newLexer("Conditions", src)
	if err != nil {
		return nil, err
	}
	p := &condParser{lx: lx, consts: constants}
	prog, err := p.program(false)
	if err != nil {
		return nil, err
	}
	if t := lx.peek(); t.kind != tokEOF {
		return nil, lx.errf(t.off, "unexpected %v after conditions program", t.kind)
	}
	return prog, nil
}

type condParser struct {
	lx     *lexer
	consts map[string]string
}

// program parses clauses until EOF (nested=false) or '}' (nested=true).
func (p *condParser) program(nested bool) (*condProgram, error) {
	prog := &condProgram{}
	for {
		t := p.lx.peek()
		if t.kind == tokEOF {
			if nested {
				return nil, p.lx.errf(t.off, "missing '}' in nested clause")
			}
			return prog, nil
		}
		if nested && t.kind == tokRBrace {
			return prog, nil
		}
		c, err := p.clause()
		if err != nil {
			return nil, err
		}
		prog.clauses = append(prog.clauses, c)
	}
}

func (p *condParser) clause() (clause, error) {
	test, err := p.expr(0)
	if err != nil {
		return clause{}, err
	}
	if test.typ() != typeBool {
		return clause{}, p.lx.errf(p.lx.peek().off, "clause test is a %v, want a test", test.typ())
	}
	c := clause{test: test}
	if p.lx.peek().kind == tokArrow {
		p.lx.take()
		if p.lx.peek().kind == tokLBrace {
			p.lx.take()
			sub, err := p.program(true)
			if err != nil {
				return clause{}, err
			}
			if _, err := p.lx.expect(tokRBrace); err != nil {
				return clause{}, err
			}
			c.sub = sub
		} else {
			v, err := p.expr(precRel + 1) // value: a string expression
			if err != nil {
				return clause{}, err
			}
			if v.typ() != typeStr {
				return clause{}, p.lx.errf(p.lx.peek().off, "clause value is a %v, want a string", v.typ())
			}
			c.value = v
		}
	}
	// The trailing ';' is mandatory after a value clause, optional after
	// a closing brace and before EOF (the reference parser is lenient).
	if p.lx.peek().kind == tokSemi {
		p.lx.take()
	} else if c.sub == nil && p.lx.peek().kind != tokEOF && p.lx.peek().kind != tokRBrace {
		return clause{}, p.lx.errf(p.lx.peek().off, "expected ';' after clause, found %v", p.lx.peek().kind)
	}
	return c, nil
}

// Operator precedence levels, low to high.
const (
	precOr   = 1 // ||
	precAnd  = 2 // &&
	precRel  = 3 // == != < <= > >= ~=
	precAdd  = 4 // + - .
	precMul  = 5 // * / %
	precPow  = 6 // ^
	precUnar = 7 // ! - @ $
)

func binPrec(k tokKind) int {
	switch k {
	case tokOrOr:
		return precOr
	case tokAndAnd:
		return precAnd
	case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe, tokRegex:
		return precRel
	case tokPlus, tokMinus, tokDot:
		return precAdd
	case tokStar, tokSlash, tokPercent:
		return precMul
	case tokCaret:
		return precPow
	}
	return 0
}

// expr is a precedence-climbing parser over the unified grammar. minPrec
// bounds which binary operators may be consumed.
func (p *condParser) expr(minPrec int) (expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.lx.peek()
		prec := binPrec(t.kind)
		if prec == 0 || prec < minPrec {
			return left, nil
		}
		p.lx.take()
		// ^ is right-associative; everything else left-associative.
		nextMin := prec + 1
		if t.kind == tokCaret {
			nextMin = prec
		}
		right, err := p.expr(nextMin)
		if err != nil {
			return nil, err
		}
		left, err = p.combine(t, left, right)
		if err != nil {
			return nil, err
		}
	}
}

func (p *condParser) combine(op token, l, r expr) (expr, error) {
	switch op.kind {
	case tokOrOr, tokAndAnd:
		if l.typ() != typeBool || r.typ() != typeBool {
			return nil, p.lx.errf(op.off, "%v needs tests on both sides (found %v and %v)", op.kind, l.typ(), r.typ())
		}
		if op.kind == tokAndAnd {
			return boolAnd{l, r}, nil
		}
		return boolOr{l, r}, nil
	case tokRegex:
		if l.typ() != typeStr || r.typ() != typeStr {
			return nil, p.lx.errf(op.off, "'~=' needs string operands")
		}
		return boolRegex{l, r}, nil
	case tokEq, tokNe, tokLt, tokLe, tokGt, tokGe:
		if l.typ() != r.typ() || l.typ() == typeBool {
			return nil, p.lx.errf(op.off, "cannot compare %v with %v", l.typ(), r.typ())
		}
		return boolCmp{op: op.kind, kind: l.typ(), l: l, r: r}, nil
	case tokDot:
		if l.typ() != typeStr || r.typ() != typeStr {
			return nil, p.lx.errf(op.off, "'.' needs string operands")
		}
		return strConcat{l, r}, nil
	case tokPlus, tokMinus, tokStar, tokSlash, tokPercent, tokCaret:
		if l.typ() != typeNum || r.typ() != typeNum {
			return nil, p.lx.errf(op.off, "%v needs numeric operands (use '@' to convert strings)", op.kind)
		}
		return numBin{op: op.kind, l: l, r: r}, nil
	}
	return nil, p.lx.errf(op.off, "unexpected operator")
}

func (p *condParser) unary() (expr, error) {
	t := p.lx.peek()
	switch t.kind {
	case tokNot:
		p.lx.take()
		e, err := p.expr(precUnar)
		if err != nil {
			return nil, err
		}
		if e.typ() != typeBool {
			return nil, p.lx.errf(t.off, "'!' needs a test")
		}
		return boolNot{e}, nil
	case tokMinus:
		p.lx.take()
		e, err := p.expr(precUnar)
		if err != nil {
			return nil, err
		}
		if e.typ() != typeNum {
			return nil, p.lx.errf(t.off, "unary '-' needs a number")
		}
		return numNeg{e}, nil
	case tokAt:
		p.lx.take()
		e, err := p.expr(precUnar)
		if err != nil {
			return nil, err
		}
		if e.typ() != typeStr {
			return nil, p.lx.errf(t.off, "'@' needs a string")
		}
		return numCoerce{e}, nil
	case tokDollar:
		p.lx.take()
		e, err := p.expr(precUnar)
		if err != nil {
			return nil, err
		}
		if e.typ() != typeStr {
			return nil, p.lx.errf(t.off, "'$' needs a string")
		}
		return strDeref{e}, nil
	case tokLParen:
		p.lx.take()
		e, err := p.expr(0)
		if err != nil {
			return nil, err
		}
		if _, err := p.lx.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokString:
		p.lx.take()
		return strLit{t.text}, nil
	case tokNumber:
		p.lx.take()
		f, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, p.lx.errf(t.off, "bad number %q", t.text)
		}
		return numLit{f}, nil
	case tokIdent:
		p.lx.take()
		switch t.text {
		case "true":
			return boolConst{true}, nil
		case "false":
			return boolConst{false}, nil
		}
		if p.consts != nil {
			if v, ok := p.consts[t.text]; ok {
				return strLit{v}, nil
			}
		}
		return strAttr{t.text}, nil
	}
	return nil, p.lx.errf(t.off, "unexpected %v in expression", t.kind)
}
