package keynote

// Snapshot is an immutable view of a Session's assertion set. Queries
// run against a snapshot without taking any lock: the session publishes
// a new snapshot (copy-on-write) on every mutation, and a snapshot once
// obtained never changes, so a decision and the generation it was
// computed under are consistent by construction.
type Snapshot struct {
	values   []string
	policies []*Assertion
	creds    []*Assertion
	bySig    map[string]*Assertion
	// byLicensee indexes every assertion (policy and credential) by each
	// principal its Licensees field mentions. Query walks this index from
	// the requester toward POLICY instead of scanning the whole session:
	// an assertion that licenses none of the principals reachable from
	// the requester can only ever contribute _MIN_TRUST, so skipping it
	// never changes the result.
	byLicensee map[Principal][]*Assertion
	revoked    map[Principal]bool
	// revokedSigs records every credential signature ever revoked.
	// Unlike bySig removal, this set is permanent: a revoked credential
	// stays refused on resubmission, so a replication layer can apply a
	// signature revocation before (or after) the credential itself
	// arrives and the outcome is the same.
	revokedSigs map[string]bool
	// revlog is the append-only revocation log: one entry per RevokeKey
	// or (first) RevokeCredential, in application order. Seq is 1-based
	// and monotonic, so replication cursors are just log positions.
	revlog []Revocation
	gen    uint64
	// volatile records whether any assertion's conditions reference one
	// of the session's volatile attributes (e.g. time of day). Decision
	// caches use it to bound how long a result may be reused.
	volatile bool
}

// Generation returns the mutation counter the snapshot was published at.
func (sn *Snapshot) Generation() uint64 { return sn.gen }

// Volatile reports whether any assertion references a volatile action
// attribute (see Session.SetVolatileAttributes).
func (sn *Snapshot) Volatile() bool { return sn.volatile }

// Values returns the snapshot's ordered compliance value set.
func (sn *Snapshot) Values() []string {
	out := make([]string, len(sn.values))
	copy(out, sn.values)
	return out
}

// Credentials returns the verified credentials in the snapshot.
func (sn *Snapshot) Credentials() []*Assertion {
	out := make([]*Assertion, len(sn.creds))
	copy(out, sn.creds)
	return out
}

// Policies returns the policy assertions in the snapshot.
func (sn *Snapshot) Policies() []*Assertion {
	out := make([]*Assertion, len(sn.policies))
	copy(out, sn.policies)
	return out
}

// NumCredentials returns the credential count without copying.
func (sn *Snapshot) NumCredentials() int { return len(sn.creds) }

// Revoked reports whether a principal has been revoked in this snapshot.
func (sn *Snapshot) Revoked(p Principal) bool {
	c, err := canonicalPrincipal(string(p))
	if err != nil {
		c = p
	}
	return sn.revoked[c]
}

// RevokedCredential reports whether a credential signature has been
// revoked in this snapshot. Signature revocations are permanent: the
// credential is refused on resubmission even after removal.
func (sn *Snapshot) RevokedCredential(sig string) bool { return sn.revokedSigs[sig] }

// Revocations returns a copy of the log entries with Seq > since (pass
// 0 for the whole log). Entries are ordered and Seq is dense, so a
// replication cursor is simply the last Seq it has consumed.
func (sn *Snapshot) Revocations(since uint64) []Revocation {
	if since >= uint64(len(sn.revlog)) {
		return nil
	}
	return append([]Revocation(nil), sn.revlog[since:]...)
}

// RevocationSeq returns the sequence number of the newest revocation
// log entry (0 when nothing has been revoked).
func (sn *Snapshot) RevocationSeq() uint64 { return uint64(len(sn.revlog)) }

// relevant collects the assertions on delegation paths from the
// requesters toward POLICY: breadth-first over the licensee index,
// following each collected assertion's authorizer upward. Principals a
// requester cannot reach hold _MIN_TRUST in the evaluation fixpoint, so
// assertions licensing only such principals are sound to omit.
func (sn *Snapshot) relevant(requesters []Principal) (pols, creds []*Assertion) {
	reached := make(map[Principal]bool, len(requesters)+8)
	queue := make([]Principal, 0, len(requesters)+8)
	for _, r := range requesters {
		if !reached[r] {
			reached[r] = true
			queue = append(queue, r)
		}
	}
	picked := make(map[*Assertion]bool, 8)
	for len(queue) > 0 {
		p := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, a := range sn.byLicensee[p] {
			if picked[a] {
				continue
			}
			picked[a] = true
			if a.Authorizer == PolicyPrincipal {
				pols = append(pols, a)
				continue
			}
			creds = append(creds, a)
			if !reached[a.Authorizer] {
				reached[a.Authorizer] = true
				queue = append(queue, a.Authorizer)
			}
		}
	}
	return pols, creds
}

// Query runs a compliance check against the snapshot. It takes no lock
// and evaluates only the requesting principals' delegation graph.
// Requesters that have been revoked fail closed to _MIN_TRUST.
func (sn *Snapshot) Query(attributes map[string]string, requesters ...Principal) (Result, error) {
	canon := make([]Principal, len(requesters))
	for i, r := range requesters {
		c, err := canonicalPrincipal(string(r))
		if err != nil {
			return Result{}, err
		}
		if sn.revoked[c] {
			return Result{Value: sn.values[0], Index: 0}, nil
		}
		canon[i] = c
	}
	pols, creds := sn.relevant(canon)
	return Evaluate(pols, creds, Query{
		Values:     sn.values,
		Attributes: attributes,
		Requesters: canon,
	})
}

// ---- construction (called by Session under its writer lock) ----

// clone copies the snapshot's containers for a mutation; the assertions
// themselves are immutable and shared.
func (sn *Snapshot) clone() *Snapshot {
	next := &Snapshot{
		values:      sn.values,
		policies:    append([]*Assertion(nil), sn.policies...),
		creds:       append([]*Assertion(nil), sn.creds...),
		bySig:       make(map[string]*Assertion, len(sn.bySig)+1),
		byLicensee:  make(map[Principal][]*Assertion, len(sn.byLicensee)+1),
		revoked:     make(map[Principal]bool, len(sn.revoked)),
		revokedSigs: make(map[string]bool, len(sn.revokedSigs)),
		revlog:      append([]Revocation(nil), sn.revlog...),
		gen:         sn.gen,
		volatile:    sn.volatile,
	}
	for k, v := range sn.bySig {
		next.bySig[k] = v
	}
	for k, v := range sn.byLicensee {
		// Copy the slice header's backing too: additions append to these.
		next.byLicensee[k] = append([]*Assertion(nil), v...)
	}
	for k := range sn.revoked {
		next.revoked[k] = true
	}
	for k := range sn.revokedSigs {
		next.revokedSigs[k] = true
	}
	return next
}

// index adds one assertion to the licensee index.
func (sn *Snapshot) index(a *Assertion) {
	for _, p := range a.Licensees() {
		sn.byLicensee[p] = append(sn.byLicensee[p], a)
	}
}

// reindex rebuilds the licensee index from scratch (after removals).
func (sn *Snapshot) reindex() {
	sn.byLicensee = make(map[Principal][]*Assertion, len(sn.byLicensee))
	for _, a := range sn.policies {
		sn.index(a)
	}
	for _, a := range sn.creds {
		sn.index(a)
	}
}

// recomputeVolatile rescans every assertion (after removals).
func (sn *Snapshot) recomputeVolatile(attrs map[string]bool) {
	sn.volatile = false
	for _, a := range sn.policies {
		if a.referencesAny(attrs) {
			sn.volatile = true
			return
		}
	}
	for _, a := range sn.creds {
		if a.referencesAny(attrs) {
			sn.volatile = true
			return
		}
	}
}

// referencesAny reports whether the assertion's Conditions mention any
// of the named action attributes.
func (a *Assertion) referencesAny(names map[string]bool) bool {
	if len(names) == 0 || a.conditions == nil {
		return false
	}
	return a.conditions.referencesAny(names)
}
