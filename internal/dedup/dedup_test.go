package dedup

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"discfs/internal/ffs"
	"discfs/internal/vfs"
)

// newBacking returns a fresh in-memory ffs big enough for the tests.
func newBacking(t *testing.T) *ffs.FFS {
	t.Helper()
	fs, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 16384, MaxInodes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// newTestFS wraps a fresh backing with small chunks so tests exercise
// multi-chunk files without megabytes of data.
func newTestFS(t *testing.T, opts ...Option) (*FS, *ffs.FFS) {
	t.Helper()
	backing := newBacking(t)
	opts = append([]Option{WithAvgChunkSize(4096), WithSweepInterval(0)}, opts...)
	d, err := Wrap(backing, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d, backing
}

func mkfile(t *testing.T, d *FS, name string) vfs.Handle {
	t.Helper()
	a, err := d.Create(d.Root(), name, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return a.Handle
}

func writeAt(t *testing.T, d *FS, h vfs.Handle, off uint64, data []byte) {
	t.Helper()
	if _, err := d.Write(h, off, data); err != nil {
		t.Fatalf("write %d bytes at %d: %v", len(data), off, err)
	}
}

// effectiveCuts is the file's chunk-length sequence with the open tail
// appended: the tail is the not-yet-finalized last chunk, so this is
// what the reference greedy split must equal.
func effectiveCuts(t *testing.T, d *FS, h vfs.Handle) []int {
	t.Helper()
	fst, err := d.state(h)
	if err != nil {
		t.Fatal(err)
	}
	fst.mu.RLock()
	defer fst.mu.RUnlock()
	out := make([]int, 0, len(fst.man.ents)+1)
	for _, e := range fst.man.ents {
		out = append(out, int(e.n))
	}
	if len(fst.tail) > 0 {
		out = append(out, len(fst.tail))
	}
	return out
}

func checkCuts(t *testing.T, d *FS, h vfs.Handle, data []byte, label string) {
	t.Helper()
	got := effectiveCuts(t, d, h)
	want := d.p.Split(data)
	if len(got) != len(want) {
		t.Fatalf("%s: %d chunks, reference split has %d", label, len(got), len(want))
	}
	for i, n := range want {
		if got[i] != n {
			t.Fatalf("%s: chunk %d is %d bytes, reference %d", label, i, got[i], n)
		}
	}
}

func readAll(t *testing.T, d *FS, h vfs.Handle) []byte {
	t.Helper()
	a, err := d.GetAttr(h)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, a.Size)
	if a.Size == 0 {
		return out
	}
	n, eof, err := d.ReadInto(h, 0, out)
	if err != nil {
		t.Fatal(err)
	}
	if uint64(n) != a.Size || !eof {
		t.Fatalf("ReadInto = %d, eof=%v, size %d", n, eof, a.Size)
	}
	return out
}

func TestRoundtrip(t *testing.T) {
	d, _ := newTestFS(t)
	h := mkfile(t, d, "f")
	data := randBytes(1, 100_000)
	writeAt(t, d, h, 0, data)
	if got := readAll(t, d, h); !bytes.Equal(got, data) {
		t.Fatal("roundtrip mismatch")
	}
	// Manifest chunking must equal the reference greedy split.
	checkCuts(t, d, h, data, "roundtrip")
}

// TestWriteSegmentationConverges writes the same bytes in many
// different segmentations and offsets; the manifest must always equal
// the reference split of the final content.
func TestWriteSegmentationConverges(t *testing.T) {
	d, _ := newTestFS(t)
	data := randBytes(2, 200_000)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 8; trial++ {
		h := mkfile(t, d, fmt.Sprintf("f%d", trial))
		switch trial {
		case 0: // one shot
			writeAt(t, d, h, 0, data)
		case 1: // sequential small writes
			for off := 0; off < len(data); off += 1000 {
				end := off + 1000
				if end > len(data) {
					end = len(data)
				}
				writeAt(t, d, h, uint64(off), data[off:end])
			}
		default: // random-order cover of the whole range
			var segs [][2]int
			for off := 0; off < len(data); {
				n := 1 + rng.Intn(30_000)
				if off+n > len(data) {
					n = len(data) - off
				}
				segs = append(segs, [2]int{off, off + n})
				off += n
			}
			rng.Shuffle(len(segs), func(i, j int) { segs[i], segs[j] = segs[j], segs[i] })
			for _, s := range segs {
				writeAt(t, d, h, uint64(s[0]), data[s[0]:s[1]])
			}
		}
		if got := readAll(t, d, h); !bytes.Equal(got, data) {
			t.Fatalf("trial %d: content mismatch", trial)
		}
		checkCuts(t, d, h, data, fmt.Sprintf("trial %d", trial))
	}
}

// TestModelStress runs random writes/truncates/reads against a plain
// byte-slice model.
func TestModelStress(t *testing.T) {
	d, _ := newTestFS(t)
	h := mkfile(t, d, "f")
	rng := rand.New(rand.NewSource(11))
	var model []byte
	const maxSize = 300_000
	for op := 0; op < 300; op++ {
		switch rng.Intn(10) {
		case 0, 1: // truncate
			n := rng.Intn(maxSize)
			if _, err := d.SetAttr(h, func() vfs.SetAttr {
				sz := uint64(n)
				return vfs.SetAttr{Size: &sz}
			}()); err != nil {
				t.Fatalf("op %d truncate(%d): %v", op, n, err)
			}
			if n <= len(model) {
				model = model[:n]
			} else {
				model = append(model, make([]byte, n-len(model))...)
			}
		case 2: // sparse write past EOF
			off := len(model) + rng.Intn(20_000)
			data := randBytes(rng.Int63(), 1+rng.Intn(10_000))
			writeAt(t, d, h, uint64(off), data)
			model = append(model, make([]byte, off-len(model))...)
			model = append(model, data...)
		default: // overwrite / extend
			off := 0
			if len(model) > 0 {
				off = rng.Intn(len(model))
			}
			data := randBytes(rng.Int63(), 1+rng.Intn(30_000))
			writeAt(t, d, h, uint64(off), data)
			if off+len(data) > len(model) {
				model = append(model, make([]byte, off+len(data)-len(model))...)
			}
			copy(model[off:], data)
		}
		if len(model) > maxSize {
			model = model[:maxSize]
			sz := uint64(maxSize)
			if _, err := d.SetAttr(h, vfs.SetAttr{Size: &sz}); err != nil {
				t.Fatal(err)
			}
		}
		if op%25 == 0 {
			if got := readAll(t, d, h); !bytes.Equal(got, model) {
				t.Fatalf("op %d: content diverged (len %d vs %d)", op, len(got), len(model))
			}
			if err := d.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got := readAll(t, d, h); !bytes.Equal(got, model) {
		t.Fatal("final content diverged")
	}
	// The manifest must still match the reference split after all the
	// incremental re-chunking.
	checkCuts(t, d, h, model, "final")
	res, err := d.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.RefMismatch != 0 || res.MissingChunk != 0 {
		t.Fatalf("verify: %+v", res)
	}
}

func TestRemountPersistence(t *testing.T) {
	backing := newBacking(t)
	d, err := Wrap(backing, WithAvgChunkSize(4096), WithSweepInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	data := randBytes(5, 150_000)
	a, err := d.Create(d.Root(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Write(a.Handle, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Wrap(backing, WithAvgChunkSize(4096), WithSweepInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	a2, err := d2.Lookup(d2.Root(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if a2.Size != uint64(len(data)) {
		t.Fatalf("remounted size %d, want %d", a2.Size, len(data))
	}
	got := make([]byte, len(data))
	if _, _, err := d2.ReadInto(a2.Handle, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("remounted content mismatch")
	}
	res, err := d2.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.RefMismatch != 0 || res.Orphans != 0 || res.MissingChunk != 0 {
		t.Fatalf("verify after remount: %+v", res)
	}
}

func TestDedupEffectiveness(t *testing.T) {
	d, _ := newTestFS(t)
	data := randBytes(6, 200_000)
	h1 := mkfile(t, d, "a")
	writeAt(t, d, h1, 0, data)
	before := d.Stats()
	h2 := mkfile(t, d, "b")
	writeAt(t, d, h2, 0, data)
	after := d.Stats()
	if after.Chunks != before.Chunks {
		t.Fatalf("duplicate file grew the store: %d -> %d chunks", before.Chunks, after.Chunks)
	}
	if after.BytesStored != before.BytesStored {
		t.Fatalf("duplicate file stored bytes: %d -> %d", before.BytesStored, after.BytesStored)
	}
	if after.Hits == before.Hits {
		t.Fatal("no dedup hits recorded")
	}
	if after.BytesLogical != 2*before.BytesLogical {
		t.Fatalf("logical bytes %d, want %d", after.BytesLogical, 2*before.BytesLogical)
	}
}

func TestRemoveReleasesChunks(t *testing.T) {
	d, _ := newTestFS(t)
	data := randBytes(7, 120_000)
	for _, name := range []string{"a", "b"} {
		h := mkfile(t, d, name)
		writeAt(t, d, h, 0, data)
	}
	if err := d.Remove(d.Root(), "a"); err != nil {
		t.Fatal(err)
	}
	d.SweepNow()
	if s := d.Stats(); s.Chunks == 0 {
		t.Fatal("shared chunks reclaimed while still referenced")
	}
	if err := d.Remove(d.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	if n := d.SweepNow(); n == 0 {
		t.Fatal("sweep reclaimed nothing after last unlink")
	}
	s := d.Stats()
	if s.Chunks != 0 || s.BytesStored != 0 || s.BytesLogical != 0 {
		t.Fatalf("store not empty after removal: %+v", s)
	}
	res, err := d.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.Chunks != 0 {
		t.Fatalf("verify found %d chunks", res.Chunks)
	}
}

func TestHiddenChunkStore(t *testing.T) {
	d, _ := newTestFS(t)
	if _, err := d.Lookup(d.Root(), chunksName); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Lookup(.chunks) = %v, want ErrNotExist", err)
	}
	ents, err := d.ReadDir(d.Root())
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.Name == chunksName {
			t.Fatal(".chunks visible in ReadDir")
		}
	}
	if _, err := d.Create(d.Root(), chunksName, 0o644); !errors.Is(err, vfs.ErrPerm) {
		t.Fatalf("Create(.chunks) = %v, want ErrPerm", err)
	}
	if _, err := d.Mkdir(d.Root(), chunksName, 0o755); !errors.Is(err, vfs.ErrPerm) {
		t.Fatalf("Mkdir(.chunks) = %v, want ErrPerm", err)
	}
	if err := d.Remove(d.Root(), chunksName); !errors.Is(err, vfs.ErrPerm) {
		t.Fatalf("Remove(.chunks) = %v, want ErrPerm", err)
	}
	h := mkfile(t, d, "f")
	_ = h
	if err := d.Rename(d.Root(), "f", d.Root(), chunksName); !errors.Is(err, vfs.ErrPerm) {
		t.Fatalf("Rename(-> .chunks) = %v, want ErrPerm", err)
	}
	// Deeper directories may use the name freely.
	sub, err := d.Mkdir(d.Root(), "dir", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create(sub.Handle, chunksName, 0o644); err != nil {
		t.Fatalf("Create(dir/.chunks) = %v", err)
	}
}

func TestHardLinkSharesManifest(t *testing.T) {
	d, _ := newTestFS(t)
	data := randBytes(8, 50_000)
	h := mkfile(t, d, "a")
	writeAt(t, d, h, 0, data)
	if _, err := d.Link(d.Root(), "b", h); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(d.Root(), "a"); err != nil {
		t.Fatal(err)
	}
	d.SweepNow()
	a, err := d.Lookup(d.Root(), "b")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, _, err := d.ReadInto(a.Handle, 0, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("content lost after removing one hard link")
	}
	if err := d.Remove(d.Root(), "b"); err != nil {
		t.Fatal(err)
	}
	d.SweepNow()
	if s := d.Stats(); s.Chunks != 0 {
		t.Fatalf("%d chunks leaked after last link removed", s.Chunks)
	}
}

func TestRenameReplaceReleasesTarget(t *testing.T) {
	d, _ := newTestFS(t)
	src := mkfile(t, d, "src")
	writeAt(t, d, src, 0, randBytes(9, 40_000))
	dst := mkfile(t, d, "dst")
	writeAt(t, d, dst, 0, randBytes(10, 40_000))
	before := d.Stats()
	if err := d.Rename(d.Root(), "src", d.Root(), "dst"); err != nil {
		t.Fatal(err)
	}
	d.SweepNow()
	after := d.Stats()
	if after.Chunks >= before.Chunks {
		t.Fatalf("replaced target's chunks not reclaimed: %d -> %d", before.Chunks, after.Chunks)
	}
	res, err := d.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.RefMismatch != 0 || res.Orphans != 0 {
		t.Fatalf("verify after rename: %+v", res)
	}
}

func TestTruncate(t *testing.T) {
	d, _ := newTestFS(t)
	h := mkfile(t, d, "f")
	data := randBytes(12, 100_000)
	writeAt(t, d, h, 0, data)
	for _, n := range []int{100_000, 33_333, 0, 50_000, 1} {
		sz := uint64(n)
		a, err := d.SetAttr(h, vfs.SetAttr{Size: &sz})
		if err != nil {
			t.Fatalf("truncate to %d: %v", n, err)
		}
		if a.Size != sz {
			t.Fatalf("truncate to %d reported size %d", n, a.Size)
		}
		want := make([]byte, n)
		copy(want, data[:min(n, len(data))])
		// Bytes beyond earlier shrinks are zero.
		if n > 33_333 && n <= 50_000 {
			for i := 33_333; i < n; i++ {
				want[i] = 0
			}
		}
		if n == 50_000 {
			want = make([]byte, n) // everything past the 0-truncate is zero
		}
		if n == 1 {
			want = []byte{0}
		}
		if got := readAll(t, d, h); !bytes.Equal(got, want) {
			t.Fatalf("content mismatch after truncate to %d", n)
		}
	}
}

func TestReadIntoMatchesRead(t *testing.T) {
	d, _ := newTestFS(t)
	h := mkfile(t, d, "f")
	data := randBytes(13, 70_000)
	writeAt(t, d, h, 0, data)
	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 50; i++ {
		off := uint64(rng.Intn(len(data) + 100))
		count := uint32(rng.Intn(20_000))
		b1, eof1, err1 := d.Read(h, off, count)
		dst := make([]byte, count)
		n, eof2, err2 := d.ReadInto(h, off, dst)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Read err=%v, ReadInto err=%v", err1, err2)
		}
		if err1 != nil {
			continue
		}
		if eof1 != eof2 || len(b1) != n || !bytes.Equal(b1, dst[:n]) {
			t.Fatalf("Read/ReadInto disagree at off=%d count=%d", off, count)
		}
	}
}

func TestConcurrentFiles(t *testing.T) {
	d, _ := newTestFS(t)
	const writers = 6
	shared := randBytes(15, 64_000) // common content so chunks contend
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			h, err := d.Create(d.Root(), fmt.Sprintf("w%d", w), 0o644)
			if err != nil {
				errs <- err
				return
			}
			rng := rand.New(rand.NewSource(int64(100 + w)))
			model := append([]byte(nil), shared...)
			if _, err := d.Write(h.Handle, 0, shared); err != nil {
				errs <- err
				return
			}
			for i := 0; i < 30; i++ {
				off := rng.Intn(len(model))
				data := shared[:1+rng.Intn(len(shared)-1)]
				if _, err := d.Write(h.Handle, uint64(off), data); err != nil {
					errs <- err
					return
				}
				if off+len(data) > len(model) {
					model = append(model, make([]byte, off+len(data)-len(model))...)
				}
				copy(model[off:], data)
				got := make([]byte, len(model))
				if _, _, err := d.ReadInto(h.Handle, 0, got); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, model) {
					errs <- fmt.Errorf("writer %d diverged at op %d", w, i)
					return
				}
			}
		}(w)
	}
	// A concurrent syncer and sweeper stress the flush protocol.
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				d.Sync()
				d.SweepNow()
				time.Sleep(time.Millisecond)
			}
		}
	}()
	wg.Wait()
	close(done)
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
	res, err := d.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.RefMismatch != 0 || res.MissingChunk != 0 {
		t.Fatalf("verify: %+v", res)
	}
}

func TestAttrOverlay(t *testing.T) {
	d, _ := newTestFS(t)
	h := mkfile(t, d, "f")
	data := randBytes(16, 123_456)
	writeAt(t, d, h, 0, data)
	a, err := d.GetAttr(h)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != uint64(len(data)) {
		t.Fatalf("size %d, want %d", a.Size, len(data))
	}
	if a.Blocks == 0 {
		t.Fatal("zero block count for non-empty file")
	}
	// Lookup sees the same overlay.
	la, err := d.Lookup(d.Root(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if la.Size != a.Size {
		t.Fatalf("Lookup size %d != GetAttr size %d", la.Size, a.Size)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestTruncateToZeroCommitRemount commits a file whose manifest went
// empty before its first record flush (create → write → truncate to 0 →
// COMMIT). The committed header must decode on remount — a regression
// here used to write a cap-0 header that the mount scan rejected as
// corrupt, failing the remount of the entire filesystem.
func TestTruncateToZeroCommitRemount(t *testing.T) {
	d, backing := newTestFS(t)
	h := mkfile(t, d, "f")
	writeAt(t, d, h, 0, randBytes(41, 20_000))
	var zero uint64
	if _, err := d.SetAttr(h, vfs.SetAttr{Size: &zero}); err != nil {
		t.Fatal(err)
	}
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	d2, err := Wrap(backing, WithAvgChunkSize(4096), WithSweepInterval(0))
	if err != nil {
		t.Fatalf("remount after committing an empty manifest: %v", err)
	}
	defer d2.Close()
	a, err := d2.Lookup(d2.Root(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != 0 {
		t.Fatalf("size %d after truncate-to-zero commit, want 0", a.Size)
	}
	// The file is still fully usable: write, commit, remount again.
	data := randBytes(42, 30_000)
	if _, err := d2.Write(a.Handle, 0, data); err != nil {
		t.Fatal(err)
	}
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	d3, err := Wrap(backing, WithAvgChunkSize(4096), WithSweepInterval(0))
	if err != nil {
		t.Fatalf("second remount: %v", err)
	}
	defer d3.Close()
	a, err = d3.Lookup(d3.Root(), "f")
	if err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, d3, a.Handle); !bytes.Equal(got, data) {
		t.Fatal("content lost across rewrite of a truncated-to-zero file")
	}
}

// TestRemountAcceptsLegacyEmptyManifest plants the header an older
// build committed for a truncated-to-empty file — valid magic, count 0,
// cap 0 — and checks the mount scan decodes it as an empty manifest
// instead of refusing the mount.
func TestRemountAcceptsLegacyEmptyManifest(t *testing.T) {
	backing := newBacking(t)
	a, err := backing.Create(backing.Root(), "legacy", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	var hdr [hdrSize]byte
	encodeHeader(hdr[:], 0, emptyLayout())
	if _, err := backing.Write(a.Handle, 0, hdr[:]); err != nil {
		t.Fatal(err)
	}
	d, err := Wrap(backing, WithAvgChunkSize(4096), WithSweepInterval(0))
	if err != nil {
		t.Fatalf("remount with legacy cap-0 empty header: %v", err)
	}
	defer d.Close()
	la, err := d.Lookup(d.Root(), "legacy")
	if err != nil {
		t.Fatal(err)
	}
	if la.Size != 0 {
		t.Fatalf("legacy empty manifest decodes to size %d, want 0", la.Size)
	}
}

// TestSetAttrMtimeOnly restores a timestamp without touching the size
// (the tar/rsync SETATTR shape): both the SETATTR reply and subsequent
// GETATTRs must report the new mtime, not the cached overlay value.
func TestSetAttrMtimeOnly(t *testing.T) {
	d, _ := newTestFS(t)
	h := mkfile(t, d, "f")
	writeAt(t, d, h, 0, randBytes(43, 10_000))
	want := time.Date(2001, 2, 3, 4, 5, 6, 0, time.UTC)
	na, err := d.SetAttr(h, vfs.SetAttr{Mtime: &want})
	if err != nil {
		t.Fatal(err)
	}
	if !na.Mtime.Equal(want) {
		t.Fatalf("SETATTR reply mtime %v, want %v", na.Mtime, want)
	}
	ga, err := d.GetAttr(h)
	if err != nil {
		t.Fatal(err)
	}
	if !ga.Mtime.Equal(want) {
		t.Fatalf("GETATTR mtime %v after SETATTR, want %v", ga.Mtime, want)
	}
	// The restored timestamp survives the attribute overlay even with
	// dirty write state on the file.
	writeAt(t, d, h, 0, randBytes(44, 100))
	if _, err := d.SetAttr(h, vfs.SetAttr{Mtime: &want}); err != nil {
		t.Fatal(err)
	}
	if ga, err = d.GetAttr(h); err != nil || !ga.Mtime.Equal(want) {
		t.Fatalf("GETATTR mtime %v (err %v) with dirty state, want %v", ga.Mtime, err, want)
	}
}

// TestWriteRacingRemoveFailsStale replays the Write/Remove race: a
// writer that fetched the fileState before Remove dropped it must fail
// with ErrStale once it gets the lock, instead of pinning chunk refs in
// an orphaned state no Sync or sweep will ever visit.
func TestWriteRacingRemoveFailsStale(t *testing.T) {
	d, _ := newTestFS(t)
	h := mkfile(t, d, "f")
	writeAt(t, d, h, 0, randBytes(45, 20_000))
	if err := d.Sync(); err != nil {
		t.Fatal(err)
	}
	fst, err := d.state(h) // the racing writer's state fetch…
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Remove(d.Root(), "f"); err != nil { // …loses to Remove
		t.Fatal(err)
	}
	fst.mu.Lock()
	werr := d.writeLocked(h, fst, 0, randBytes(46, 8192))
	fst.mu.Unlock()
	if !errors.Is(werr, vfs.ErrStale) {
		t.Fatalf("write into a dropped state: err %v, want ErrStale", werr)
	}
	// Nothing leaked: after a sweep the chunk index agrees exactly with
	// the manifests.
	d.SweepNow()
	res, err := d.Verify()
	if err != nil {
		t.Fatal(err)
	}
	if res.RefMismatch != 0 || res.Orphans != 0 || res.MissingChunk != 0 {
		t.Fatalf("orphaned-state write leaked chunk refs: %+v", res)
	}
}
