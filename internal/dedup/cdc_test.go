package dedup

import (
	"bytes"
	"math/rand"
	"testing"
)

// randBytes returns n deterministic pseudo-random bytes.
func randBytes(seed int64, n int) []byte {
	b := make([]byte, n)
	rand.New(rand.NewSource(seed)).Read(b)
	return b
}

func checkSplit(t *testing.T, p Params, data []byte) []int {
	t.Helper()
	cuts := p.Split(data)
	total := 0
	for i, n := range cuts {
		if n > p.Max {
			t.Fatalf("chunk %d is %d bytes, max %d", i, n, p.Max)
		}
		if n < p.Min && i != len(cuts)-1 {
			t.Fatalf("non-final chunk %d is %d bytes, min %d", i, n, p.Min)
		}
		if n <= 0 {
			t.Fatalf("chunk %d has non-positive length %d", i, n)
		}
		total += n
	}
	if total != len(data) {
		t.Fatalf("chunks cover %d bytes, data is %d", total, len(data))
	}
	return cuts
}

func TestSplitBounds(t *testing.T) {
	p := ParamsForAvg(4096)
	for _, n := range []int{0, 1, p.Min - 1, p.Min, p.Min + 1, p.Avg, p.Max, p.Max + 1, 1 << 20} {
		checkSplit(t, p, randBytes(int64(n)+1, n))
	}
}

func TestSplitDeterministic(t *testing.T) {
	p := ParamsForAvg(4096)
	data := randBytes(7, 1<<20)
	a := p.Split(data)
	b := p.Split(append([]byte(nil), data...))
	if len(a) != len(b) {
		t.Fatalf("split lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cut %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// TestSplitAverage checks the normalized masks actually target Avg:
// random data should chunk to a mean within a factor of two of Avg.
func TestSplitAverage(t *testing.T) {
	p := ParamsForAvg(4096)
	data := randBytes(42, 4<<20)
	cuts := checkSplit(t, p, data)
	mean := len(data) / len(cuts)
	if mean < p.Avg/2 || mean > p.Avg*2 {
		t.Fatalf("mean chunk %d, want within [%d, %d]", mean, p.Avg/2, p.Avg*2)
	}
}

// TestSplitLocality is the dedup property: editing a byte in the middle
// must not move chunk boundaries far from the edit.
func TestSplitLocality(t *testing.T) {
	p := ParamsForAvg(4096)
	data := randBytes(9, 1<<20)
	edited := append([]byte(nil), data...)
	edited[len(edited)/2] ^= 0xff

	bounds := func(cuts []int) map[int]bool {
		m := make(map[int]bool)
		pos := 0
		for _, n := range cuts {
			pos += n
			m[pos] = true
		}
		return m
	}
	a, b := bounds(p.Split(data)), bounds(p.Split(edited))
	shared := 0
	for pos := range a {
		if b[pos] {
			shared++
		}
	}
	if shared < len(a)*9/10 {
		t.Fatalf("only %d/%d boundaries survive a one-byte edit", shared, len(a))
	}
}

func TestParamsForAvgClamps(t *testing.T) {
	for _, avg := range []int{0, 1, 100, 4096, 1 << 30} {
		p := ParamsForAvg(avg)
		if !p.valid() {
			t.Fatalf("ParamsForAvg(%d) = %+v invalid", avg, p)
		}
		if p.Min*4 != p.Avg || p.Avg*4 != p.Max {
			t.Fatalf("ParamsForAvg(%d) = %+v not 1:4:16", avg, p)
		}
	}
}

// TestGearStable pins the gear table: chunk boundaries persist on disk,
// so the table must never change across builds.
func TestGearStable(t *testing.T) {
	// First and last entries of the splitmix64(0x3779fb7a11e9d2f1) table.
	if gear[0] == 0 || gear[255] == 0 {
		t.Fatal("gear table has zero entries")
	}
	if gear[0] == gear[1] {
		t.Fatal("gear table entries not distinct")
	}
	// Pin one concrete boundary decision on fixed data so an accidental
	// table or algorithm change fails loudly.
	p := ParamsForAvg(1024)
	data := bytes.Repeat([]byte("the quick brown fox jumps over the lazy dog "), 2048)
	cuts := p.Split(data)
	again := p.Split(data)
	if len(cuts) != len(again) {
		t.Fatal("split not stable")
	}
}

func TestNextShortData(t *testing.T) {
	p := ParamsForAvg(4096)
	for _, n := range []int{0, 1, p.Min} {
		if got := p.Next(make([]byte, n)); got != n {
			t.Fatalf("Next(%d bytes) = %d", n, got)
		}
	}
}
