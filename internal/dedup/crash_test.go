package dedup

// Crash-consistency suite for the dedup layer, mirroring the PR 4
// server-write-path suite: a fault-injecting block device with a
// volatile write cache simulates a power cut at every Nth write,
// dropping the cache after applying a pseudo-random subset of it in
// shuffled order. The assertions are the layer's durability contract:
//
//   - after recovery a file's content is exactly one of the states
//     captured at a Sync attempt, and never older than the last Sync
//     that was acknowledged before the cut — manifest commits are
//     atomic (the header flip), so no torn mix of two states is ever
//     visible;
//   - remounting (a fresh Wrap) always succeeds: the strict mount scan
//     is a structural fsck of the chunk store and every manifest;
//   - a cut during chunk write or GC never leaks chunks past the next
//     sweep — after SweepNow, Verify reports zero orphans and zero
//     refcount mismatches.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"discfs/internal/ffs"
	"discfs/internal/vfs"
)

var errPowerCut = errors.New("crashdev: power is out")

type cdWrite struct {
	bn   uint32
	data []byte
}

// crashDevice is a BlockDevice whose writes land in a volatile cache
// until Sync copies them to the backing MemDevice. Arm schedules a
// power cut after the Nth subsequent write.
type crashDevice struct {
	inner *ffs.MemDevice

	mu        sync.Mutex
	volatile  []cdWrite
	armed     bool
	countdown int
	cut       bool
	rng       *rand.Rand
}

func newCrashDevice(blockSize int, numBlocks uint32, seed int64) *crashDevice {
	return &crashDevice{
		inner: ffs.NewMemDevice(blockSize, numBlocks, ffs.DiskModel{}),
		rng:   rand.New(rand.NewSource(seed)),
	}
}

func (d *crashDevice) BlockSize() int    { return d.inner.BlockSize() }
func (d *crashDevice) NumBlocks() uint32 { return d.inner.NumBlocks() }

func (d *crashDevice) Arm(n int) {
	d.mu.Lock()
	d.armed = true
	d.countdown = n
	d.mu.Unlock()
}

func (d *crashDevice) Cut() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cut
}

// ReadBlock reads through the volatile cache (the drive serves its own
// cached writes), newest entry first.
func (d *crashDevice) ReadBlock(bn uint32, buf []byte) error {
	d.mu.Lock()
	for i := len(d.volatile) - 1; i >= 0; i-- {
		if d.volatile[i].bn == bn {
			data := d.volatile[i].data
			d.mu.Unlock()
			copy(buf, data)
			for i := len(data); i < len(buf); i++ {
				buf[i] = 0
			}
			return nil
		}
	}
	d.mu.Unlock()
	return d.inner.ReadBlock(bn, buf)
}

// WriteBlock caches the write; when the armed countdown expires, the
// power cut fires: a random subset of the cache lands on the platter in
// random order, the rest is lost.
func (d *crashDevice) WriteBlock(bn uint32, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cut {
		return nil // power is out; nobody reads the status
	}
	d.volatile = append(d.volatile, cdWrite{bn: bn, data: append([]byte(nil), data...)})
	if d.armed {
		d.countdown--
		if d.countdown <= 0 {
			d.performCutLocked()
		}
	}
	return nil
}

func (d *crashDevice) Sync() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.cut {
		return errPowerCut
	}
	for _, w := range d.volatile {
		if err := d.inner.WriteBlock(w.bn, w.data); err != nil {
			return err
		}
	}
	d.volatile = nil
	return nil
}

func (d *crashDevice) performCutLocked() {
	d.cut = true
	idx := d.rng.Perm(len(d.volatile))
	for _, i := range idx {
		if d.rng.Intn(2) == 0 {
			continue
		}
		w := d.volatile[i]
		_ = d.inner.WriteBlock(w.bn, w.data)
	}
	d.volatile = nil
}

func (d *crashDevice) Recover() {
	d.mu.Lock()
	d.cut = false
	d.armed = false
	d.volatile = nil
	d.mu.Unlock()
}

// ---- the suite ----

const (
	dedupCrashFiles = 3
	dedupCrashSize  = 48 << 10 // initial bytes per file
	dedupCrashOps   = 300
	dedupSyncEvery  = 4 // sync every Nth op
)

// dedupCrashIteration runs one power-cut scenario: cut after the
// cutAt-th device write of the churn phase. Reports whether the cut
// fired.
func dedupCrashIteration(t *testing.T, cutAt int) bool {
	t.Helper()
	dev := newCrashDevice(8192, 4096, int64(cutAt)*7919+1)
	backing, err := ffs.New(ffs.Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	wrapOpts := []Option{WithAvgChunkSize(4096), WithSweepInterval(0)}
	dd, err := Wrap(backing, wrapOpts...)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(int64(cutAt)*104729 + 3))

	// Setup phase (durable by construction): files with random content,
	// synced before the cut is armed.
	handles := make([]vfs.Handle, dedupCrashFiles)
	content := make([][]byte, dedupCrashFiles)
	for f := range handles {
		a, err := dd.Create(dd.Root(), fmt.Sprintf("f%d", f), 0o644)
		if err != nil {
			t.Fatal(err)
		}
		handles[f] = a.Handle
		content[f] = randBytes(int64(cutAt)*31+int64(f), dedupCrashSize)
		if _, err := dd.Write(handles[f], 0, content[f]); err != nil {
			t.Fatal(err)
		}
	}
	// A scratch file exercises truncate/rewrite/GC churn without content
	// assertions. The churn deliberately never unlinks while the cut is
	// armed: ffs's destructive namespace ops leave the mutation applied
	// in core when the metadata sync fails (see the note in ffs/dir.go),
	// which only a true remount-from-platter would reconcile — and this
	// harness reuses the in-core instance. The dedup sweeper reclaims by
	// truncation for the same reason, so GC itself stays in scope.
	scratch, err := dd.Create(dd.Root(), "scratch", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := dd.Sync(); err != nil {
		t.Fatal(err)
	}
	// snaps[f] is the file's state at each Sync attempt; ack[f] the
	// index of the last acknowledged one.
	snaps := make([][][]byte, dedupCrashFiles)
	ack := make([]int, dedupCrashFiles)
	for f := range snaps {
		snaps[f] = [][]byte{append([]byte(nil), content[f]...)}
	}

	dev.Arm(cutAt)
	for op := 0; op < dedupCrashOps && !dev.Cut(); op++ {
		f := rng.Intn(dedupCrashFiles)
		switch rng.Intn(10) {
		case 0: // truncate shrink (drops and re-chunks → decrefs)
			n := rng.Intn(len(content[f]) + 1)
			sz := uint64(n)
			if _, err := dd.SetAttr(handles[f], vfs.SetAttr{Size: &sz}); err != nil {
				continue
			}
			content[f] = content[f][:n]
		case 1: // scratch churn: truncate away and rewrite (mass decref
			// followed by fresh chunk writes — GC fodder)
			var zero uint64
			if _, err := dd.SetAttr(scratch.Handle, vfs.SetAttr{Size: &zero}); err == nil {
				dd.Write(scratch.Handle, 0, randBytes(rng.Int63(), 10_000))
			}
		case 2: // GC pressure: sweep mid-churn (syncs internally)
			for f := range snaps {
				snaps[f] = append(snaps[f], append([]byte(nil), content[f]...))
			}
			if err := dd.Sync(); err == nil && !dev.Cut() {
				for f := range ack {
					ack[f] = len(snaps[f]) - 1
				}
			}
			dd.SweepNow()
		default: // overwrite/extend with fresh bytes (always new chunks)
			off := rng.Intn(len(content[f]) + 1)
			data := randBytes(rng.Int63(), 1+rng.Intn(12_000))
			if _, err := dd.Write(handles[f], uint64(off), data); err != nil {
				continue
			}
			if off+len(data) > len(content[f]) {
				content[f] = append(content[f], make([]byte, off+len(data)-len(content[f]))...)
			}
			copy(content[f][off:], data)
		}
		if op%dedupSyncEvery == dedupSyncEvery-1 {
			for f := range snaps {
				snaps[f] = append(snaps[f], append([]byte(nil), content[f]...))
			}
			if err := dd.Sync(); err == nil && !dev.Cut() {
				for f := range ack {
					ack[f] = len(snaps[f]) - 1
				}
			}
		}
	}
	if !dev.Cut() {
		dd.Close()
		return false
	}

	// Power is gone: the layer's in-memory state must not heal the
	// damage, so abandon it without flushing.
	dd.abort()
	dev.Recover()

	// 1. The backing filesystem is structurally sound.
	if errs := backing.Check(); len(errs) != 0 {
		t.Fatalf("cut@%d: fsck after power cut: %v", cutAt, errs[0])
	}
	// 2. Remount succeeds: every manifest decodes, every referenced
	// chunk exists with the right size.
	d2, err := Wrap(backing, wrapOpts...)
	if err != nil {
		t.Fatalf("cut@%d: remount after power cut: %v", cutAt, err)
	}
	defer d2.Close()
	// 3. Per file: content equals a Sync-attempt state no older than
	// the last acknowledged sync.
	for f := 0; f < dedupCrashFiles; f++ {
		a, err := d2.Lookup(d2.Root(), fmt.Sprintf("f%d", f))
		if err != nil {
			t.Fatalf("cut@%d: f%d lost: %v", cutAt, f, err)
		}
		got := make([]byte, a.Size)
		if a.Size > 0 {
			if _, _, err := d2.ReadInto(a.Handle, 0, got); err != nil {
				t.Fatalf("cut@%d: read f%d: %v", cutAt, f, err)
			}
		}
		match := false
		for i := ack[f]; i < len(snaps[f]); i++ {
			if bytes.Equal(got, snaps[f][i]) {
				match = true
				break
			}
		}
		if !match {
			t.Fatalf("cut@%d: f%d (%d bytes) matches no Sync state ≥ the acked one (acked %d of %d attempts) — committed data lost or torn",
				cutAt, f, a.Size, ack[f], len(snaps[f]))
		}
	}
	// 4. Crash debris never outlives a sweep: orphaned chunks from the
	// cut are reclaimed, and refcounts agree with the manifests.
	d2.SweepNow()
	res, err := d2.Verify()
	if err != nil {
		t.Fatalf("cut@%d: verify: %v", cutAt, err)
	}
	if res.Orphans != 0 || res.RefMismatch != 0 || res.MissingChunk != 0 {
		t.Fatalf("cut@%d: chunk store leaked past sweep: %+v", cutAt, res)
	}
	return true
}

// TestDedupCrashConsistencySweep simulates a power cut at every device
// write position from 1 to 120 through the chunk-write/manifest-flush/
// GC pipeline.
func TestDedupCrashConsistencySweep(t *testing.T) {
	fired := 0
	for cut := 1; cut <= 120; cut++ {
		if dedupCrashIteration(t, cut) {
			fired++
		}
	}
	if fired < 100 {
		t.Fatalf("only %d of 120 cut points fired; workload too small", fired)
	}
	t.Logf("verified dedup commit durability across %d power-cut points", fired)
}

// flakySyncFS passes everything through to the wrapped FS but fails
// the Nth Sync call after arming with a transient error — without
// flushing, so writes issued before the failure stay in the volatile
// caches below. It models an fsync error the server survives.
type flakySyncFS struct {
	vfs.FS
	mu     sync.Mutex
	failIn int
}

var errFlakySync = errors.New("flaky: injected sync failure")

func (f *flakySyncFS) armSyncFail(n int) {
	f.mu.Lock()
	f.failIn = n
	f.mu.Unlock()
}

func (f *flakySyncFS) Sync() error {
	f.mu.Lock()
	if f.failIn > 0 {
		f.failIn--
		if f.failIn == 0 {
			f.mu.Unlock()
			return errFlakySync
		}
	}
	f.mu.Unlock()
	return vfs.SyncFS(f.FS)
}

// TestSyncFailureThenCrashKeepsManifestAtomic covers the failed-flush
// slot hazard: Sync #2 dies at its final device sync, after writing
// flipped manifest headers whose durability was never acknowledged.
// The next Sync's leading device sync then makes those headers durable
// — so its record writes must not target the slot the (now durable)
// flipped header governs, or a power cut mid-rewrite tears the
// manifest. The sweep cuts power at every early write position of that
// third Sync and requires each recovery to decode to exactly one of
// the three Sync-attempt states.
func TestSyncFailureThenCrashKeepsManifestAtomic(t *testing.T) {
	fired := 0
	for run := 1; run <= 120; run++ {
		// The retry Sync issues only a handful of device writes, so sweep
		// a small cut range under many randomization seeds: each seed
		// draws a different surviving subset of the torn write cache.
		cut := 1 + (run-1)%8
		dev := newCrashDevice(8192, 4096, int64(run)*977+5)
		backing, err := ffs.New(ffs.Config{Device: dev})
		if err != nil {
			t.Fatal(err)
		}
		flaky := &flakySyncFS{FS: backing}
		wrapOpts := []Option{WithAvgChunkSize(4096), WithSweepInterval(0)}
		dd, err := Wrap(flaky, wrapOpts...)
		if err != nil {
			t.Fatal(err)
		}
		// v1: a multi-chunk file, committed cleanly.
		v1 := randBytes(int64(run)*13+1, 48<<10)
		a, err := dd.Create(dd.Root(), "f", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dd.Write(a.Handle, 0, v1); err != nil {
			t.Fatal(err)
		}
		if err := dd.Sync(); err != nil {
			t.Fatal(err)
		}
		// v2: overwrite committed chunks, then a Sync that dies at phase
		// E — its third and last device sync — leaving flipped headers
		// unacknowledged in the volatile cache.
		v2 := append([]byte(nil), v1...)
		copy(v2, randBytes(int64(run)*13+2, 6000))
		if _, err := dd.Write(a.Handle, 0, v2[:6000]); err != nil {
			t.Fatal(err)
		}
		flaky.armSyncFail(3)
		if err := dd.Sync(); !errors.Is(err, errFlakySync) {
			t.Fatalf("cut@%d: injected sync failure not surfaced: %v", cut, err)
		}
		// v3: dirty the committed records again, then cut power during
		// the retry Sync's record/header traffic.
		v3 := append([]byte(nil), v2...)
		copy(v3, randBytes(int64(run)*13+3, 5000))
		if _, err := dd.Write(a.Handle, 0, v3[:5000]); err != nil {
			t.Fatal(err)
		}
		dev.Arm(cut)
		dd.Sync() // expected to die at the cut; error irrelevant
		if !dev.Cut() {
			dd.Close()
			continue
		}
		fired++
		dd.abort()
		dev.Recover()
		if errs := backing.Check(); len(errs) != 0 {
			t.Fatalf("cut@%d: fsck after power cut: %v", cut, errs[0])
		}
		d2, err := Wrap(backing, wrapOpts...)
		if err != nil {
			t.Fatalf("cut@%d: remount after failed-flush crash: %v", cut, err)
		}
		ra, err := d2.Lookup(d2.Root(), "f")
		if err != nil {
			t.Fatalf("cut@%d: file lost: %v", cut, err)
		}
		got := make([]byte, ra.Size)
		if ra.Size > 0 {
			if _, _, err := d2.ReadInto(ra.Handle, 0, got); err != nil {
				t.Fatalf("cut@%d: read: %v", cut, err)
			}
		}
		if !bytes.Equal(got, v1) && !bytes.Equal(got, v2) && !bytes.Equal(got, v3) {
			t.Fatalf("cut@%d: recovered content (%d bytes) matches no Sync-attempt state — manifest torn across slots", cut, ra.Size)
		}
		d2.SweepNow()
		res, err := d2.Verify()
		if err != nil {
			t.Fatalf("cut@%d: verify: %v", cut, err)
		}
		if res.Orphans != 0 || res.RefMismatch != 0 || res.MissingChunk != 0 {
			t.Fatalf("cut@%d: leaked chunks after failed-flush crash: %+v", cut, res)
		}
		d2.Close()
	}
	if fired == 0 {
		t.Fatal("no cut fired; workload too small for the sweep range")
	}
	t.Logf("verified slot atomicity across %d failed-flush power cuts", fired)
}

// TestDedupCrashDuringGC arms the cut around heavy sweep traffic
// specifically: every iteration deletes files, then sweeps repeatedly
// under write churn, so cuts land inside chunk reclamation and the
// manifest flush each GC cycle starts with.
func TestDedupCrashDuringGC(t *testing.T) {
	fired := 0
	for cut := 1; cut <= 40; cut++ {
		dev := newCrashDevice(8192, 4096, int64(cut)*131+7)
		backing, err := ffs.New(ffs.Config{Device: dev})
		if err != nil {
			t.Fatal(err)
		}
		dd, err := Wrap(backing, WithAvgChunkSize(4096), WithSweepInterval(0))
		if err != nil {
			t.Fatal(err)
		}
		keep := randBytes(int64(cut), 30_000)
		a, err := dd.Create(dd.Root(), "keep", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := dd.Write(a.Handle, 0, keep); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			v, err := dd.Create(dd.Root(), fmt.Sprintf("victim%d", i), 0o644)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := dd.Write(v.Handle, 0, randBytes(int64(cut)*100+int64(i), 20_000)); err != nil {
				t.Fatal(err)
			}
		}
		if err := dd.Sync(); err != nil {
			t.Fatal(err)
		}
		// Unlink the victims while still unarmed (the harness reuses the
		// in-core ffs instance, so armed unlinks would diverge from the
		// platter by ffs's documented no-rollback choice), then arm and
		// sweep: the cut lands inside the sweeper's chunk reclamation and
		// the manifest flush that precedes it.
		for i := 0; i < 4; i++ {
			if err := dd.Remove(dd.Root(), fmt.Sprintf("victim%d", i)); err != nil {
				t.Fatal(err)
			}
		}
		churn, err := dd.Create(dd.Root(), "churn", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		dev.Arm(cut)
		for i := 0; i < 8 && !dev.Cut(); i++ {
			dd.Write(churn.Handle, 0, randBytes(int64(cut)*1000+int64(i), 24_000))
			dd.SweepNow()
		}
		if !dev.Cut() {
			dd.Close()
			continue
		}
		fired++
		dd.abort()
		dev.Recover()
		if errs := backing.Check(); len(errs) != 0 {
			t.Fatalf("cut@%d: fsck: %v", cut, errs[0])
		}
		d2, err := Wrap(backing, WithAvgChunkSize(4096), WithSweepInterval(0))
		if err != nil {
			t.Fatalf("cut@%d: remount: %v", cut, err)
		}
		ka, err := d2.Lookup(d2.Root(), "keep")
		if err != nil {
			t.Fatalf("cut@%d: keep lost: %v", cut, err)
		}
		got := make([]byte, ka.Size)
		if _, _, err := d2.ReadInto(ka.Handle, 0, got); err != nil {
			t.Fatalf("cut@%d: read keep: %v", cut, err)
		}
		if !bytes.Equal(got, keep) {
			t.Fatalf("cut@%d: keep corrupted by GC of unrelated files", cut)
		}
		d2.SweepNow()
		res, err := d2.Verify()
		if err != nil {
			t.Fatalf("cut@%d: verify: %v", cut, err)
		}
		if res.Orphans != 0 || res.RefMismatch != 0 || res.MissingChunk != 0 {
			t.Fatalf("cut@%d: leaked chunks after GC crash: %+v", cut, res)
		}
		d2.Close()
	}
	if fired == 0 {
		t.Fatal("no cut fired")
	}
}
