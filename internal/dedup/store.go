package dedup

import (
	"encoding/hex"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"discfs/internal/vfs"
)

// sha is a chunk's content address.
type sha = [32]byte

// chunksName is the reserved root directory holding chunk files,
// fanned out into 256 subdirectories by the first address byte. The
// dedup layer hides it from the namespace it exports.
const chunksName = ".chunks"

const storeShards = 16

// chunkRec is one chunk's in-memory record. Refcounts are deliberately
// not persisted: they are rebuilt from the manifests at mount, so a
// crash can at worst leak an unreferenced chunk file until the next
// sweep, never lose referenced data to a stale count.
type chunkRec struct {
	refs int64
	size uint32
	h    vfs.Handle
	// done is non-nil while the creating writer materializes the chunk
	// file; concurrent adders of the same hash wait on it and retry.
	done chan struct{}
	// untrusted marks a chunk found orphaned at mount: its data may be
	// a torn pre-crash write, so the first writer to reference it again
	// rewrites the content instead of taking a dedup hit.
	untrusted bool
	// graveEpoch is the sync-started count observed when refs reached
	// zero. The sweeper may only delete the file once a full manifest
	// flush that *started after* that moment has completed — before
	// then an on-disk manifest may still reference the chunk.
	graveEpoch uint64
}

// store is the refcounted chunk index plus its persistence through the
// backing FS (chunk files under .chunks/xx/<hex-sha256>).
type store struct {
	backing vfs.FS

	mu [storeShards]sync.Mutex
	m  [storeShards]map[sha]*chunkRec

	dirMu     sync.Mutex
	chunksDir vfs.Handle
	subdir    [256]vfs.Handle

	chunks      atomic.Int64
	storedBytes atomic.Int64
	hits        atomic.Uint64
	gcChunks    atomic.Uint64
	gcBytes     atomic.Uint64
}

func newStore(backing vfs.FS) (*store, error) {
	st := &store{backing: backing}
	for i := range st.m {
		st.m[i] = make(map[sha]*chunkRec)
	}
	root := backing.Root()
	a, err := backing.Lookup(root, chunksName)
	if errors.Is(err, vfs.ErrNotExist) {
		a, err = backing.Mkdir(root, chunksName, 0o700)
	}
	if err != nil {
		return nil, fmt.Errorf("dedup: chunk store root: %w", err)
	}
	st.chunksDir = a.Handle
	return st, nil
}

func shardOf(sum sha) int { return int(sum[31]) % storeShards }

func chunkFileName(sum sha) string { return hex.EncodeToString(sum[:]) }

// subdirFor returns (creating on demand) the fan-out directory for sum.
func (st *store) subdirFor(b byte) (vfs.Handle, error) {
	st.dirMu.Lock()
	defer st.dirMu.Unlock()
	if !st.subdir[b].IsZero() {
		return st.subdir[b], nil
	}
	name := hex.EncodeToString([]byte{b})
	a, err := st.backing.Lookup(st.chunksDir, name)
	if errors.Is(err, vfs.ErrNotExist) {
		a, err = st.backing.Mkdir(st.chunksDir, name, 0o700)
	}
	if err != nil {
		return vfs.Handle{}, err
	}
	st.subdir[b] = a.Handle
	return a.Handle, nil
}

// writeChunk materializes sum's chunk file with data. The file's
// existence is durable when this returns (the backing FFS writes
// metadata synchronously); its *content* is volatile until the next
// device sync — the manifest-flush protocol orders a sync before any
// manifest entry referencing the chunk reaches disk.
func (st *store) writeChunk(sum sha, data []byte) (vfs.Handle, error) {
	dir, err := st.subdirFor(sum[0])
	if err != nil {
		return vfs.Handle{}, err
	}
	name := chunkFileName(sum)
	a, err := st.backing.Create(dir, name, 0o600)
	if errors.Is(err, vfs.ErrExist) {
		// Leftover from a lost race or an unscanned orphan: reuse the
		// inode, rewrite the content below.
		a, err = st.backing.Lookup(dir, name)
	}
	if err != nil {
		return vfs.Handle{}, err
	}
	if _, err := st.backing.Write(a.Handle, 0, data); err != nil {
		return vfs.Handle{}, err
	}
	if a.Size > uint64(len(data)) {
		sz := uint64(len(data))
		if _, err := st.backing.SetAttr(a.Handle, vfs.SetAttr{Size: &sz}); err != nil {
			return vfs.Handle{}, err
		}
	}
	return a.Handle, nil
}

// addRef stores one reference to the chunk with address sum and content
// data, writing the chunk file only if this is the first reference ever
// (or the surviving copy is untrusted). It reports whether the call was
// a dedup hit (no data written).
func (st *store) addRef(sum sha, data []byte) (hit bool, err error) {
	sh := shardOf(sum)
	for {
		st.mu[sh].Lock()
		rec := st.m[sh][sum]
		if rec == nil {
			rec = &chunkRec{refs: 1, size: uint32(len(data)), done: make(chan struct{})}
			st.m[sh][sum] = rec
			st.mu[sh].Unlock()
			h, werr := st.writeChunk(sum, data)
			st.mu[sh].Lock()
			if werr != nil {
				delete(st.m[sh], sum)
			} else {
				rec.h = h
			}
			close(rec.done)
			rec.done = nil
			st.mu[sh].Unlock()
			if werr != nil {
				return false, werr
			}
			st.chunks.Add(1)
			st.storedBytes.Add(int64(len(data)))
			return false, nil
		}
		if rec.done != nil {
			ch := rec.done
			st.mu[sh].Unlock()
			<-ch
			continue // re-examine: creation may have failed
		}
		if rec.untrusted {
			// Orphan found at mount: its bytes may be torn. Take the
			// reference, then rewrite the content with the known-good
			// copy before anyone can read it through a manifest.
			rec.refs++
			rec.untrusted = false
			rec.size = uint32(len(data))
			h := rec.h
			st.mu[sh].Unlock()
			if _, werr := st.backing.Write(h, 0, data); werr != nil {
				st.unref(sum, 0)
				return false, werr
			}
			return false, nil
		}
		rec.refs++
		st.mu[sh].Unlock()
		st.hits.Add(1)
		return true, nil
	}
}

// tally adds references discovered by the mount scan (no file writes).
func (st *store) tally(sum sha, n uint32) error {
	sh := shardOf(sum)
	st.mu[sh].Lock()
	defer st.mu[sh].Unlock()
	rec := st.m[sh][sum]
	if rec == nil {
		return fmt.Errorf("dedup: manifest references missing chunk %s", chunkFileName(sum))
	}
	if rec.size != n {
		return fmt.Errorf("dedup: chunk %s is %d bytes on disk, manifest expects %d",
			chunkFileName(sum), rec.size, n)
	}
	rec.refs++
	rec.untrusted = false // referenced by a durable manifest ⇒ data was synced
	return nil
}

// adopt records a chunk file discovered by the mount scan with no
// references yet; the scan's manifest pass increments via tally, and
// anything still at zero is an orphan for the sweeper.
func (st *store) adopt(sum sha, h vfs.Handle, size uint32) {
	sh := shardOf(sum)
	st.mu[sh].Lock()
	if st.m[sh][sum] == nil {
		st.m[sh][sum] = &chunkRec{refs: 0, size: size, h: h, untrusted: true}
		st.chunks.Add(1)
		st.storedBytes.Add(int64(size))
	}
	st.mu[sh].Unlock()
}

// unref drops one reference. epoch is the current sync-started count;
// it gates when the sweeper may delete the file (see chunkRec).
func (st *store) unref(sum sha, epoch uint64) {
	sh := shardOf(sum)
	st.mu[sh].Lock()
	rec := st.m[sh][sum]
	if rec != nil && rec.refs > 0 {
		rec.refs--
		if rec.refs == 0 {
			rec.graveEpoch = epoch
		}
	}
	st.mu[sh].Unlock()
}

// handleOf returns the chunk file handle and size for reads.
func (st *store) handleOf(sum sha) (vfs.Handle, uint32, bool) {
	sh := shardOf(sum)
	st.mu[sh].Lock()
	rec := st.m[sh][sum]
	st.mu[sh].Unlock()
	if rec == nil || rec.done != nil {
		return vfs.Handle{}, 0, false
	}
	return rec.h, rec.size, true
}

// sweep reclaims chunk files whose refcount is zero and whose zeroing
// predates syncDone (a completed full manifest flush), so no on-disk
// manifest can still reference them. The caller holds the layer's
// quiesce gate exclusively: no writer can resurrect a candidate while
// the sweep scans and reclaims.
//
// The hot-path sweep TRUNCATES the chunk file to zero rather than
// unlinking it: truncation frees the data blocks but touches no
// directory content, so a power cut mid-sweep can never tear a
// directory (the backing FFS leaves a failed unlink's directory
// rewrite applied in core but possibly lost on the platter — see the
// note above ffs.Remove). The empty file stays behind as a free slot:
// a later store of the same hash reuses it by name, and the mount scan
// discards empty slots. A clean shutdown passes unlink=true to compact
// the namespace for real.
func (st *store) sweep(syncDone uint64, unlink bool) (reclaimed int) {
	for sh := range st.m {
		st.mu[sh].Lock()
		for sum, rec := range st.m[sh] {
			if rec.refs != 0 || rec.done != nil {
				continue
			}
			if !rec.untrusted && rec.graveEpoch >= syncDone {
				continue // a durable manifest may still point here
			}
			if rec.size > 0 {
				var err error
				if unlink {
					var dir vfs.Handle
					if dir, err = st.subdirFor(sum[0]); err == nil {
						err = st.backing.Remove(dir, chunkFileName(sum))
					}
				} else {
					var zero uint64
					_, err = st.backing.SetAttr(rec.h, vfs.SetAttr{Size: &zero})
				}
				if err != nil && !errors.Is(err, vfs.ErrNotExist) && !errors.Is(err, vfs.ErrStale) {
					continue // try again next sweep
				}
				st.storedBytes.Add(-int64(rec.size))
				st.gcChunks.Add(1)
				st.gcBytes.Add(uint64(rec.size))
				reclaimed++
			} else if unlink {
				// Empty slot left by an earlier truncating sweep.
				if dir, err := st.subdirFor(sum[0]); err == nil {
					_ = st.backing.Remove(dir, chunkFileName(sum))
				}
			}
			delete(st.m[sh], sum)
			st.chunks.Add(-1)
		}
		st.mu[sh].Unlock()
	}
	return reclaimed
}

// scan loads the chunk directory into the index (refs zero, untrusted)
// — the mount scan's first pass; the manifest walk then tallies refs.
func (st *store) scan() error {
	subs, err := st.backing.ReadDir(st.chunksDir)
	if err != nil {
		return err
	}
	for _, sub := range subs {
		b, err := hex.DecodeString(sub.Name)
		if err != nil || len(b) != 1 {
			continue
		}
		st.dirMu.Lock()
		st.subdir[b[0]] = sub.Handle
		st.dirMu.Unlock()
		files, err := st.backing.ReadDir(sub.Handle)
		if err != nil {
			return err
		}
		for _, f := range files {
			raw, err := hex.DecodeString(f.Name)
			if err != nil || len(raw) != 32 {
				continue
			}
			var sum sha
			copy(sum[:], raw)
			a, err := st.backing.GetAttr(f.Handle)
			if err != nil {
				return err
			}
			st.adopt(sum, f.Handle, uint32(a.Size))
		}
	}
	return nil
}

// snapshotRefs copies the current refcounts (Verify support).
func (st *store) snapshotRefs() map[sha]int64 {
	out := make(map[sha]int64)
	for sh := range st.m {
		st.mu[sh].Lock()
		for sum, rec := range st.m[sh] {
			out[sum] = rec.refs
		}
		st.mu[sh].Unlock()
	}
	return out
}
