package dedup

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/bufpool"
	"discfs/internal/cache"
	"discfs/internal/vfs"
)

// Manifest on-disk format. A regular file's backing content is its
// chunk manifest: a 64-byte header followed by 64-byte records, each
// holding one chunk's SHA-256 address and length. Records never
// straddle a backing block (64 divides every power-of-two block size),
// so a torn multi-block write can only mix whole old and whole new
// records — each of which is valid — never half of one.
//
// Crash ordering (enforced by Sync): chunk data is made durable before
// any record referencing it is written, records are made durable before
// the header that extends their count, and the header — the commit
// point — is a single sub-block write. Manifest files never shrink;
// records past the header's count are dead and ignored.
const (
	hdrSize   = 64
	recSize   = 64
	magic     = 0x4443465344445550 // "DCFSDDUP"
	verCurr   = 1
	maxChunks = 1 << 28 // header sanity bound (~16 TiB files)
)

// ErrClosed is returned by operations on a closed layer.
var ErrClosed = errors.New("dedup: layer closed")

// entry is one manifest record: a chunk address and its length.
type entry struct {
	sum sha
	n   uint32
}

// manifest is a file's in-memory chunk map. offs caches cumulative
// chunk start offsets (len(ents)+1 items, offs[len] == size) for
// binary-searched reads.
type manifest struct {
	size uint64
	ents []entry
	offs []uint64
}

func emptyManifest() *manifest { return &manifest{offs: []uint64{0}} }

// rebuildOffs recomputes offs from entry index `from` on.
func (m *manifest) rebuildOffs(from int) {
	if cap(m.offs) < len(m.ents)+1 {
		no := make([]uint64, len(m.ents)+1)
		copy(no, m.offs[:from+1])
		m.offs = no
	} else {
		m.offs = m.offs[:len(m.ents)+1]
	}
	for i := from; i < len(m.ents); i++ {
		m.offs[i+1] = m.offs[i] + uint64(m.ents[i].n)
	}
}

// chunkAt returns the index of the chunk containing pos; pos == size
// maps to the last chunk. The manifest must be non-empty.
func (m *manifest) chunkAt(pos uint64) int {
	lo, hi := 0, len(m.ents)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.offs[mid] <= pos {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if pos >= m.offs[lo+1] && lo < len(m.ents)-1 {
		lo++
	}
	return lo
}

// boundary reports whether abs is a chunk boundary, returning the index
// of the first entry starting at abs (== len(ents) for EOF).
func (m *manifest) boundary(abs uint64) (int, bool) {
	lo, hi := 0, len(m.offs)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case m.offs[mid] < abs:
			lo = mid + 1
		case m.offs[mid] > abs:
			hi = mid - 1
		default:
			return mid, true
		}
	}
	return 0, false
}

// manLayout is a manifest's committed on-disk record geometry. The
// record array lives in one of two fixed slots (A at slotBase, B at
// slotBase+cap·recSize): pure appends extend the live slot past the
// committed count, anything that changes a committed record writes the
// whole array into the *other* slot, and outgrowing the slots moves to
// a doubled pair past both. Every record write therefore lands outside
// the region the committed header governs — the header flip is the one
// atomic commit point.
type manLayout struct {
	start uint64 // live record array offset
	base  uint64 // slot A offset (slot B is base + cap*recSize)
	cap   int    // records per slot
	count int    // committed record count
}

// fileState is the per-file in-memory state: the manifest plus dirty
// tracking for the write-behind manifest flush.
type fileState struct {
	mu    sync.RWMutex
	man   *manifest // nil until loaded
	disk  manLayout // committed layout (what the on-disk header says)
	dirty bool
	// dirtyFrom is the lowest entry index whose committed record is
	// stale (== len(ents) when only appends are pending).
	dirtyFrom int
	// diskUnknown means a failed Sync wrote manifest headers whose
	// durability was never acknowledged, so disk may not describe the
	// header the backing store actually holds. The next Sync re-reads
	// the header (after its leading device sync pins it down) before
	// choosing a slot, so record writes never land in the region the
	// committed header governs.
	diskUnknown bool
	// gone marks a state dropped by releaseIfGoneLocked (last link
	// removed). A writer that fetched the state before the drop must
	// fail with ErrStale instead of mutating the orphan — chunk refs
	// added to a dropped state are never flushed or released.
	gone  bool
	mtime time.Time
	// tail buffers the file's logical suffix past the last chunk
	// boundary — the "open chunk". Appends accumulate here and reach the
	// chunk store only when a cut finalizes (or Sync forces one), so the
	// flush quantum of the layer above — however small the write-gather
	// runs get under a slow disk — never rewrites a partial chunk on the
	// device or fragments the chunk sequence. man.size includes the
	// tail; man.offs[len(ents)] is where it starts.
	tail []byte
	// forced marks the last manifest entry as a Sync-forced short chunk;
	// the next append at EOF reabsorbs it into the tail so the chunk
	// sequence converges back to the canonical content-defined chunking
	// (and duplicate detection keeps working across COMMIT boundaries).
	forced bool
}

// Option configures Wrap.
type Option func(*config)

type config struct {
	params     Params
	cacheBytes int
	sweepEvery time.Duration
	workers    int
}

// WithParams sets the chunk geometry.
func WithParams(p Params) Option { return func(c *config) { c.params = p } }

// WithAvgChunkSize derives the geometry from a target average chunk
// size; the server passes maxTransfer/8 so a write-gather run spans
// several chunks.
func WithAvgChunkSize(avg int) Option {
	return func(c *config) { c.params = ParamsForAvg(avg) }
}

// WithCacheBytes bounds the sharded chunk read cache (0 disables).
func WithCacheBytes(n int) Option { return func(c *config) { c.cacheBytes = n } }

// WithSweepInterval sets the background GC cadence (0 disables the
// sweeper goroutine; SweepNow still works).
func WithSweepInterval(iv time.Duration) Option {
	return func(c *config) { c.sweepEvery = iv }
}

// FS is the deduplicating layer. It implements vfs.FS, vfs.Syncer and
// vfs.ReaderInto over any backing FS.
type FS struct {
	backing vfs.FS
	p       Params
	st      *store
	cache   *cache.Bytes
	root    vfs.Handle
	blockSz uint64

	fmu   sync.Mutex
	files map[vfs.Handle]*fileState

	dmu      sync.Mutex
	dirtySet map[vfs.Handle]struct{}

	// gate is the quiesce handshake (the ffs Check/Dump idiom): every
	// mutating operation holds it shared; the sweeper's candidate scan
	// and Verify hold it exclusively, so no writer can resurrect a
	// chunk mid-sweep.
	gate sync.RWMutex

	// syncMu serializes Sync; the epoch counters gate GC eligibility
	// (see chunkRec.graveEpoch).
	syncMu      sync.Mutex
	syncStarted atomic.Uint64
	syncDone    atomic.Uint64

	logical atomic.Int64

	tasks  chan func()
	stop   chan struct{}
	wg     sync.WaitGroup
	closed atomic.Bool
	once   sync.Once

	sweepEvery time.Duration
}

// Wrap stacks the deduplicating layer over backing. The mount scan
// rebuilds the chunk refcounts from the manifests on disk (refcounts
// are never persisted — a crash can only leak unreferenced chunks, and
// only until the next sweep reclaims them).
func Wrap(backing vfs.FS, opts ...Option) (*FS, error) {
	cfg := config{
		params:     DefaultParams(),
		cacheBytes: 32 << 20,
		sweepEvery: 2 * time.Second,
		workers:    runtime.GOMAXPROCS(0),
	}
	for _, o := range opts {
		o(&cfg)
	}
	if !cfg.params.valid() {
		return nil, fmt.Errorf("dedup: invalid chunk params %+v", cfg.params)
	}
	if cfg.workers > 4 {
		cfg.workers = 4
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	st, err := newStore(backing)
	if err != nil {
		return nil, err
	}
	d := &FS{
		backing:    backing,
		p:          cfg.params,
		st:         st,
		root:       backing.Root(),
		files:      make(map[vfs.Handle]*fileState),
		dirtySet:   make(map[vfs.Handle]struct{}),
		tasks:      make(chan func(), 64),
		stop:       make(chan struct{}),
		sweepEvery: cfg.sweepEvery,
	}
	d.blockSz = 8192
	if sfs, err := backing.StatFS(); err == nil && sfs.BlockSize > 0 {
		d.blockSz = uint64(sfs.BlockSize)
	}
	if cfg.cacheBytes > 0 {
		d.cache = cache.NewBytes(cfg.cacheBytes)
	}
	if err := d.mount(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.workers; i++ {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			for {
				select {
				case f := <-d.tasks:
					f()
				case <-d.stop:
					return
				}
			}
		}()
	}
	if d.sweepEvery > 0 {
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			t := time.NewTicker(d.sweepEvery)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					d.sweepOnce(false)
				case <-d.stop:
					return
				}
			}
		}()
	}
	return d, nil
}

// mount rebuilds the chunk index: pass 1 adopts every chunk file under
// .chunks (untrusted, zero refs); pass 2 walks the manifests and
// tallies references, clearing the untrusted mark on anything a durable
// manifest names. Whatever stays at zero refs is crash debris for the
// sweeper.
func (d *FS) mount() error {
	if err := d.st.scan(); err != nil {
		return err
	}
	return d.walkManifests(func(h vfs.Handle, man *manifest) error {
		for _, e := range man.ents {
			if err := d.st.tally(e.sum, e.n); err != nil {
				return err
			}
		}
		d.logical.Add(int64(man.size))
		return nil
	})
}

// walkManifests visits every regular file's on-disk manifest exactly
// once (hard links dedupe by handle), skipping the chunk store.
func (d *FS) walkManifests(visit func(vfs.Handle, *manifest) error) error {
	seen := make(map[vfs.Handle]bool)
	var walk func(dir vfs.Handle) error
	walk = func(dir vfs.Handle) error {
		ents, err := d.backing.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, de := range ents {
			if dir == d.root && de.Name == chunksName {
				continue
			}
			if seen[de.Handle] {
				continue
			}
			seen[de.Handle] = true
			a, err := d.backing.GetAttr(de.Handle)
			if err != nil {
				return err
			}
			switch a.Type {
			case vfs.TypeDir:
				if err := walk(a.Handle); err != nil {
					return err
				}
			case vfs.TypeRegular:
				man, _, err := d.readManifest(a)
				if err != nil {
					return fmt.Errorf("dedup: manifest of ino %d: %w", a.Handle.Ino, err)
				}
				if err := visit(a.Handle, man); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return walk(d.root)
}

// ---- manifest I/O ----

func encodeHeader(buf []byte, size uint64, l manLayout) {
	for i := range buf[:hdrSize] {
		buf[i] = 0
	}
	binary.LittleEndian.PutUint64(buf[0:], magic)
	binary.LittleEndian.PutUint32(buf[8:], verCurr)
	binary.LittleEndian.PutUint64(buf[16:], size)
	binary.LittleEndian.PutUint32(buf[24:], uint32(l.count))
	binary.LittleEndian.PutUint64(buf[28:], l.start)
	binary.LittleEndian.PutUint64(buf[36:], l.base)
	binary.LittleEndian.PutUint32(buf[44:], uint32(l.cap))
}

func encodeRec(buf []byte, e entry) {
	copy(buf[0:32], e.sum[:])
	binary.LittleEndian.PutUint32(buf[32:], e.n)
	for i := 36; i < recSize; i++ {
		buf[i] = 0
	}
}

// emptyLayout is a fresh file's record geometry: zero-capacity slots at
// the header's edge, so the first flush takes the grow path and sizes
// the slot pair to the file.
func emptyLayout() manLayout { return manLayout{start: hdrSize, base: hdrSize} }

// decodeHeader parses and validates a manifest header against the
// backing file's size. empty reports an all-zero header (a manifest
// whose first flush never committed). A cap-0 layout is accepted when
// the count is also 0 — headers committed for files truncated to empty
// before their first record flush look like this.
func decodeHeader(hdr []byte, backingSize uint64) (size uint64, l manLayout, empty bool, err error) {
	mg := binary.LittleEndian.Uint64(hdr[0:])
	if mg == 0 {
		return 0, emptyLayout(), true, nil
	}
	if mg != magic {
		return 0, manLayout{}, false, fmt.Errorf("%w: bad manifest magic", vfs.ErrIO)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != verCurr {
		return 0, manLayout{}, false, fmt.Errorf("%w: manifest version %d", vfs.ErrIO, v)
	}
	size = binary.LittleEndian.Uint64(hdr[16:])
	l = manLayout{
		count: int(binary.LittleEndian.Uint32(hdr[24:])),
		start: binary.LittleEndian.Uint64(hdr[28:]),
		base:  binary.LittleEndian.Uint64(hdr[36:]),
		cap:   int(binary.LittleEndian.Uint32(hdr[44:])),
	}
	switch {
	case l.count > maxChunks || l.cap > 2*maxChunks || l.count > l.cap,
		l.base < hdrSize,
		l.start != l.base && l.start != l.base+uint64(l.cap)*recSize,
		l.count > 0 && l.start+uint64(l.count)*recSize > backingSize:
		return 0, manLayout{}, false, fmt.Errorf("%w: manifest geometry corrupt", vfs.ErrIO)
	}
	return size, l, false, nil
}

// readManifest parses h's on-disk manifest. An empty file and an
// all-zero header both decode as an empty manifest (the latter is a
// manifest whose first flush never committed — the file's durable
// logical state is empty).
func (d *FS) readManifest(a vfs.Attr) (*manifest, manLayout, error) {
	if a.Size == 0 {
		return emptyManifest(), emptyLayout(), nil
	}
	var hdr [hdrSize]byte
	if _, _, err := vfs.ReadFSInto(d.backing, a.Handle, 0, hdr[:]); err != nil {
		return nil, manLayout{}, err
	}
	size, l, empty, err := decodeHeader(hdr[:], a.Size)
	if err != nil {
		return nil, manLayout{}, err
	}
	if empty {
		return emptyManifest(), emptyLayout(), nil
	}
	n := l.count
	m := &manifest{size: size, ents: make([]entry, n)}
	raw := bufpool.Get(n * recSize)
	defer bufpool.Put(raw)
	read := 0
	for read < len(raw) {
		nn, _, err := vfs.ReadFSInto(d.backing, a.Handle, l.start+uint64(read), raw[read:])
		if err != nil {
			return nil, manLayout{}, err
		}
		if nn == 0 {
			return nil, manLayout{}, fmt.Errorf("%w: manifest short read", vfs.ErrIO)
		}
		read += nn
	}
	var total uint64
	for i := range m.ents {
		rec := raw[i*recSize:]
		copy(m.ents[i].sum[:], rec[:32])
		m.ents[i].n = binary.LittleEndian.Uint32(rec[32:])
		if m.ents[i].n == 0 {
			return nil, manLayout{}, fmt.Errorf("%w: zero-length chunk record", vfs.ErrIO)
		}
		total += uint64(m.ents[i].n)
	}
	if total != size {
		return nil, manLayout{}, fmt.Errorf("%w: manifest covers %d bytes, header says %d", vfs.ErrIO, total, size)
	}
	m.offs = make([]uint64, n+1)
	m.rebuildOffs(0)
	return m, l, nil
}

// readLayout reads just h's committed header geometry, without the
// records. Sync uses it to resynchronize fst.disk with the header the
// backing store actually holds after a failed flush left the on-disk
// header state unknown.
func (d *FS) readLayout(h vfs.Handle) (manLayout, error) {
	a, err := d.backing.GetAttr(h)
	if err != nil {
		return manLayout{}, err
	}
	if a.Size == 0 {
		return emptyLayout(), nil
	}
	var hdr [hdrSize]byte
	if _, _, err := vfs.ReadFSInto(d.backing, h, 0, hdr[:]); err != nil {
		return manLayout{}, err
	}
	_, l, _, err := decodeHeader(hdr[:], a.Size)
	return l, err
}

// ---- per-file state ----

// state returns (creating if needed) h's fileState with the manifest
// loaded. The caller must hold the gate shared.
func (d *FS) state(h vfs.Handle) (*fileState, error) {
	d.fmu.Lock()
	fst := d.files[h]
	if fst == nil {
		fst = &fileState{}
		d.files[h] = fst
	}
	d.fmu.Unlock()
	fst.mu.Lock()
	err := d.loadLocked(h, fst)
	fst.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return fst, nil
}

// loadLocked populates fst.man from disk; the caller holds fst.mu.
func (d *FS) loadLocked(h vfs.Handle, fst *fileState) error {
	if fst.man != nil {
		return nil
	}
	a, err := d.backing.GetAttr(h)
	if err != nil {
		return err
	}
	if a.Type != vfs.TypeRegular {
		return vfs.ErrInval
	}
	man, layout, err := d.readManifest(a)
	if err != nil {
		return err
	}
	fst.man = man
	fst.disk = layout
	fst.dirty = false
	fst.dirtyFrom = len(man.ents)
	fst.mtime = a.Mtime
	return nil
}

// dropState forgets h's state (after the last link dies).
func (d *FS) dropState(h vfs.Handle) {
	d.fmu.Lock()
	delete(d.files, h)
	d.fmu.Unlock()
	d.dmu.Lock()
	delete(d.dirtySet, h)
	d.dmu.Unlock()
}

func (d *FS) markDirty(h vfs.Handle) {
	d.dmu.Lock()
	d.dirtySet[h] = struct{}{}
	d.dmu.Unlock()
}

// overlayLocked rewrites a backing attr with the file's logical
// geometry; the caller holds fst.mu (shared suffices).
func (d *FS) overlayLocked(a vfs.Attr, fst *fileState) vfs.Attr {
	a.Size = fst.man.size
	a.Blocks = (fst.man.size + d.blockSz - 1) / d.blockSz
	if !fst.mtime.IsZero() {
		a.Mtime = fst.mtime
	}
	return a
}

// attrOf returns h's attributes with the manifest overlay applied to
// regular files.
func (d *FS) attrOf(a vfs.Attr) (vfs.Attr, error) {
	if a.Type != vfs.TypeRegular {
		return a, nil
	}
	fst, err := d.state(a.Handle)
	if err != nil {
		return vfs.Attr{}, err
	}
	fst.mu.RLock()
	a = d.overlayLocked(a, fst)
	fst.mu.RUnlock()
	return a, nil
}

// ---- chunk reads ----

// readChunkInto fills dst with chunk content at innerOff. Whole-chunk
// reads go zero-copy from the backing store straight into dst (the
// vfs.ReaderInto path the NFS read plane depends on); partial reads are
// served from the sharded chunk cache, loading the full chunk on a miss
// so neighboring small reads hit.
func (d *FS) readChunkInto(e entry, innerOff uint64, dst []byte) error {
	if d.cache != nil {
		if v, ok := d.cache.Get(e.sum); ok {
			copy(dst, v[innerOff:])
			return nil
		}
	}
	h, _, ok := d.st.handleOf(e.sum)
	if !ok {
		return fmt.Errorf("%w: chunk missing from store", vfs.ErrIO)
	}
	if innerOff == 0 && len(dst) == int(e.n) {
		n, _, err := vfs.ReadFSInto(d.backing, h, 0, dst)
		if err != nil {
			return err
		}
		if n != len(dst) {
			return fmt.Errorf("%w: chunk short read", vfs.ErrIO)
		}
		return nil
	}
	buf := make([]byte, e.n)
	n, _, err := vfs.ReadFSInto(d.backing, h, 0, buf)
	if err != nil {
		return err
	}
	if n != len(buf) {
		return fmt.Errorf("%w: chunk short read", vfs.ErrIO)
	}
	copy(dst, buf[innerOff:])
	if d.cache != nil {
		d.cache.Put(e.sum, buf)
	}
	return nil
}

// readRange fills dst with logical file content starting at abs; the
// caller holds the manifest lock (shared suffices) and has clamped the
// range to the file size.
func (d *FS) readRange(man *manifest, abs uint64, dst []byte) error {
	i := man.chunkAt(abs)
	for len(dst) > 0 {
		e := man.ents[i]
		inner := abs - man.offs[i]
		n := uint64(e.n) - inner
		if n > uint64(len(dst)) {
			n = uint64(len(dst))
		}
		if err := d.readChunkInto(e, inner, dst[:n]); err != nil {
			return err
		}
		dst = dst[n:]
		abs += n
		i++
	}
	return nil
}

// ---- vfs.FS ----

// Root implements vfs.FS.
func (d *FS) Root() vfs.Handle { return d.root }

// GetAttr implements vfs.FS with the logical-size overlay.
func (d *FS) GetAttr(h vfs.Handle) (vfs.Attr, error) {
	a, err := d.backing.GetAttr(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	return d.attrOf(a)
}

// Lookup implements vfs.FS; the chunk store directory is invisible.
func (d *FS) Lookup(dir vfs.Handle, name string) (vfs.Attr, error) {
	if dir == d.root && name == chunksName {
		return vfs.Attr{}, vfs.ErrNotExist
	}
	a, err := d.backing.Lookup(dir, name)
	if err != nil {
		return vfs.Attr{}, err
	}
	return d.attrOf(a)
}

// reserved reports namespace operations aimed at the chunk store root.
func (d *FS) reserved(dir vfs.Handle, name string) bool {
	return dir == d.root && name == chunksName
}

// Read implements vfs.FS.
func (d *FS) Read(h vfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	out := make([]byte, count)
	n, eof, err := d.ReadInto(h, off, out)
	if err != nil {
		return nil, false, err
	}
	return out[:n], eof, nil
}

// ReadInto implements vfs.ReaderInto: the read plane assembles file
// content from chunks directly into the caller's buffer.
func (d *FS) ReadInto(h vfs.Handle, off uint64, dst []byte) (int, bool, error) {
	fst, err := d.state(h)
	if err != nil {
		if errors.Is(err, vfs.ErrInval) {
			// Match the backing store's error for directory reads.
			return 0, false, vfs.ErrIsDir
		}
		return 0, false, err
	}
	fst.mu.RLock()
	defer fst.mu.RUnlock()
	if fst.gone {
		return 0, false, vfs.ErrStale
	}
	man := fst.man
	if off >= man.size {
		return 0, true, nil
	}
	n := uint64(len(dst))
	if off+n > man.size {
		n = man.size - off
	}
	// Committed chunks first, then the in-memory tail.
	committed := man.offs[len(man.ents)]
	p := dst[:n]
	if off < committed {
		cn := committed - off
		if cn > n {
			cn = n
		}
		if err := d.readRange(man, off, p[:cn]); err != nil {
			return 0, false, err
		}
		p = p[cn:]
		off += cn
	}
	if len(p) > 0 {
		copy(p, fst.tail[off-committed:])
	}
	return int(n), off+uint64(len(p)) >= man.size, nil
}

// Write implements vfs.FS: the hot path. The affected region is
// re-chunked from the preceding chunk boundary; chunking resumes old
// boundaries as soon as a cut coincides with one past the write (the
// CDC resynchronization property), so an overwrite re-hashes O(written
// bytes), not the file. New chunks are hashed on the worker pool and
// stored once; duplicate chunks mutate only the manifest.
func (d *FS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	a, err := d.backing.GetAttr(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	if a.Type == vfs.TypeDir {
		return vfs.Attr{}, vfs.ErrIsDir
	}
	if a.Type != vfs.TypeRegular {
		return vfs.Attr{}, vfs.ErrInval
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	if d.closed.Load() {
		return vfs.Attr{}, ErrClosed
	}
	fst, err := d.state(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	fst.mu.Lock()
	defer fst.mu.Unlock()
	if fst.gone {
		return vfs.Attr{}, vfs.ErrStale
	}
	if len(data) > 0 {
		if err := d.writeLocked(h, fst, off, data); err != nil {
			return vfs.Attr{}, err
		}
	}
	return d.overlayLocked(a, fst), nil
}

// writeLocked applies one write; the caller holds the gate shared and
// fst.mu exclusively. Writes at or past the last chunk boundary — the
// streaming-append hot path — go through the in-memory tail buffer;
// overwrites of committed chunks take the re-chunk/resync path below.
func (d *FS) writeLocked(h vfs.Handle, fst *fileState, off uint64, data []byte) error {
	if fst.gone {
		// A Remove dropped this state between the writer's state fetch
		// and its lock: mutating the orphan would pin chunk refs no Sync
		// or sweep can ever see again.
		return vfs.ErrStale
	}
	if off >= fst.man.offs[len(fst.man.ents)] {
		return d.writeTailLocked(h, fst, off, data)
	}
	man := fst.man
	committed := man.offs[len(man.ents)] // > off, so ents is non-empty
	oldSize := man.size
	end := off + uint64(len(data))
	newSize := oldSize
	if end > newSize {
		newSize = end
	}

	// The region to re-chunk starts at the boundary of the chunk
	// containing the write offset.
	b0Idx := man.chunkAt(off)
	b0 := man.offs[b0Idx]
	pre := int(off - b0)

	// Materialize [b0, end) into a pooled buffer: preserved prefix
	// bytes, then the new data. The buffer is owned by this call alone
	// (the one-owner rule) — hash workers only ever read sub-slices
	// inside hashCuts' barrier.
	region := bufpool.Get(pre + len(data))
	defer func() { bufpool.Put(region) }()
	if pre > 0 {
		if err := d.readRange(man, b0, region[:pre]); err != nil {
			return err
		}
	}
	copy(region[pre:], data)
	regionEnd := end

	// nextOld is the committed chunk containing regionEnd (== len(ents)
	// once regionEnd reaches the tail region).
	nextOld := len(man.ents)
	if end < committed {
		nextOld = man.chunkAt(end)
	}

	var cuts []int
	cur := 0
	suffix := len(man.ents)
	resynced := false
	for {
		n := d.p.Next(region[cur:])
		real := n == d.p.Max || n < len(region)-cur
		if !real && regionEnd < oldSize {
			// Provisional cut but the file continues: pull in the rest of
			// the next committed chunk — or the in-memory tail — and
			// re-chunk across it.
			oldLen := len(region)
			if nextOld < len(man.ents) {
				stop := man.offs[nextOld+1]
				region = bufpool.Grow(region, oldLen+int(stop-regionEnd))
				inner := regionEnd - man.offs[nextOld]
				if err := d.readChunkInto(man.ents[nextOld], inner, region[oldLen:]); err != nil {
					return err
				}
				regionEnd = stop
				nextOld++
			} else {
				inner := regionEnd - committed
				region = bufpool.Grow(region, oldLen+len(fst.tail)-int(inner))
				copy(region[oldLen:], fst.tail[inner:])
				regionEnd = oldSize
			}
			continue
		}
		if !real {
			break // provisional at the (new) EOF: the remainder becomes the tail
		}
		cuts = append(cuts, cur+n)
		cutAbs := b0 + uint64(cur+n)
		cur += n
		if cutAbs >= end && cutAbs <= committed {
			if j, ok := man.boundary(cutAbs); ok {
				suffix = j // resynchronized with the old chunk sequence
				resynced = true
				break
			}
		}
		if cur == len(region) {
			break // reached (new) EOF at an exact cut
		}
	}

	sums := d.hashCuts(region, cuts)
	epoch := d.syncStarted.Load()
	for i := range cuts {
		start := 0
		if i > 0 {
			start = cuts[i-1]
		}
		if _, err := d.st.addRef(sums[i], region[start:cuts[i]]); err != nil {
			for k := 0; k < i; k++ {
				d.st.unref(sums[k], epoch)
			}
			return err
		}
	}

	dropped := append([]entry(nil), man.ents[b0Idx:suffix]...)
	newEnts := make([]entry, len(cuts))
	for i := range cuts {
		start := 0
		if i > 0 {
			start = cuts[i-1]
		}
		newEnts[i] = entry{sum: sums[i], n: uint32(cuts[i] - start)}
	}
	man.ents = append(man.ents[:b0Idx:b0Idx], append(newEnts, man.ents[suffix:]...)...)
	man.size = newSize
	man.rebuildOffs(b0Idx)
	if !resynced {
		// Everything to the right of the last cut is the new open tail
		// (on a resync the surviving suffix — including the unchanged
		// tail buffer — is kept instead).
		fst.tail = append(fst.tail[:0], region[cur:]...)
		fst.forced = false
	}
	if b0Idx < fst.dirtyFrom {
		fst.dirtyFrom = b0Idx
	}
	fst.dirty = true
	fst.mtime = time.Now()
	d.markDirty(h)
	d.logical.Add(int64(newSize) - int64(oldSize))
	for _, e := range dropped {
		d.st.unref(e.sum, epoch)
	}
	return nil
}

// writeTailLocked applies a write entirely at or past the last chunk
// boundary: grow the tail buffer (zero-filling any sparse gap), copy
// the data, and spill whatever chunks the write finalized. The caller
// holds the gate shared and fst.mu exclusively.
func (d *FS) writeTailLocked(h vfs.Handle, fst *fileState, off uint64, data []byte) error {
	man := fst.man
	// Reabsorb a Sync-forced short chunk on the next extending write: pop
	// it back into the tail so re-chunking restores the canonical cut
	// sequence. The bytes come from the chunk cache (the forced spill
	// seeded it), so this costs no device traffic.
	if fst.forced && len(fst.tail) == 0 && len(man.ents) > 0 {
		last := man.ents[len(man.ents)-1]
		buf := make([]byte, last.n)
		if err := d.readChunkInto(last, 0, buf); err == nil {
			man.ents = man.ents[:len(man.ents)-1]
			man.rebuildOffs(len(man.ents))
			fst.tail = buf
			if len(man.ents) < fst.dirtyFrom {
				fst.dirtyFrom = len(man.ents)
			}
			d.st.unref(last.sum, d.syncStarted.Load())
		}
	}
	fst.forced = false

	committed := man.offs[len(man.ents)]
	oldSize := man.size
	fst.dirty = true
	fst.mtime = time.Now()
	d.markDirty(h)
	defer func() { d.logical.Add(int64(man.size) - int64(oldSize)) }()
	// Zero-fill a sparse gap in bounded segments so a far-EOF write
	// never buffers the hole in memory: the zeros spill as (mutually
	// deduplicating) chunks as they accumulate.
	if off > oldSize {
		const seg = 1 << 20
		for man.size < off {
			n := off - man.size
			if n > seg {
				n = seg
			}
			fst.tail = append(fst.tail, make([]byte, n)...)
			man.size += n
			if err := d.spillTailLocked(fst, false); err != nil {
				return err
			}
		}
		committed = man.offs[len(man.ents)]
	}
	end := off + uint64(len(data))
	if need := end - committed; uint64(len(fst.tail)) < need {
		fst.tail = append(fst.tail, make([]byte, need-uint64(len(fst.tail)))...)
	}
	copy(fst.tail[off-committed:], data)
	if end > man.size {
		man.size = end
	}
	return d.spillTailLocked(fst, false)
}

// spillTailLocked moves finalized chunks out of the tail buffer into
// the chunk store. A cut is final once it cannot move — a content cut
// with more bytes behind it, or a forced maximum-size cut; with force
// set (the Sync barrier) the provisional remainder is stored too, as a
// short chunk, and seeded into the chunk cache for reabsorption. The
// caller holds fst.mu exclusively and owns the dirty bookkeeping.
func (d *FS) spillTailLocked(fst *fileState, force bool) error {
	man := fst.man
	tail := fst.tail
	var cuts []int
	cur := 0
	for cur < len(tail) {
		n := d.p.Next(tail[cur:])
		if n < d.p.Max && cur+n == len(tail) && !force {
			break // provisional: the next write may move this cut
		}
		cur += n
		cuts = append(cuts, cur)
	}
	if len(cuts) == 0 {
		return nil
	}
	sums := d.hashCuts(tail, cuts)
	epoch := d.syncStarted.Load()
	for i := range cuts {
		start := 0
		if i > 0 {
			start = cuts[i-1]
		}
		if _, err := d.st.addRef(sums[i], tail[start:cuts[i]]); err != nil {
			for k := 0; k < i; k++ {
				d.st.unref(sums[k], epoch)
			}
			return err
		}
	}
	base := len(man.ents)
	for i := range cuts {
		start := 0
		if i > 0 {
			start = cuts[i-1]
		}
		man.ents = append(man.ents, entry{sum: sums[i], n: uint32(cuts[i] - start)})
	}
	man.rebuildOffs(base)
	if force && d.cache != nil {
		start := 0
		if len(cuts) > 1 {
			start = cuts[len(cuts)-2]
		}
		d.cache.Put(sums[len(sums)-1], append([]byte(nil), tail[start:cur]...))
	}
	fst.tail = tail[:copy(tail, tail[cur:])]
	return nil
}

// hashCuts computes the chunk addresses, fanning out to the worker
// pool; a saturated pool hashes inline (writers never block behind each
// other's hashing).
func (d *FS) hashCuts(region []byte, cuts []int) []sha {
	sums := make([]sha, len(cuts))
	if len(cuts) == 1 {
		sums[0] = sha256.Sum256(region[:cuts[0]])
		return sums
	}
	var wg sync.WaitGroup
	start := 0
	for i := range cuts {
		i, s, e := i, start, cuts[i]
		start = cuts[i]
		wg.Add(1)
		task := func() {
			sums[i] = sha256.Sum256(region[s:e])
			wg.Done()
		}
		select {
		case d.tasks <- task:
		default:
			task()
		}
	}
	wg.Wait()
	return sums
}

// SetAttr implements vfs.FS; size changes are logical truncates against
// the manifest, everything else passes through to the backing store —
// with the cached mtime kept in step, so a SETATTR(mtime) (tar/rsync
// timestamp restore) survives the attribute overlay.
func (d *FS) SetAttr(h vfs.Handle, s vfs.SetAttr) (vfs.Attr, error) {
	a, err := d.backing.GetAttr(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	if a.Type != vfs.TypeRegular {
		if s.Size != nil {
			return vfs.Attr{}, vfs.ErrInval
		}
		return d.backing.SetAttr(h, s)
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	if d.closed.Load() {
		return vfs.Attr{}, ErrClosed
	}
	fst, err := d.state(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	fst.mu.Lock()
	defer fst.mu.Unlock()
	if fst.gone {
		return vfs.Attr{}, vfs.ErrStale
	}
	if s.Size != nil {
		if err := d.truncateLocked(h, fst, *s.Size); err != nil {
			return vfs.Attr{}, err
		}
	}
	rest := s
	rest.Size = nil
	if rest != (vfs.SetAttr{}) {
		if a, err = d.backing.SetAttr(h, rest); err != nil {
			return vfs.Attr{}, err
		}
		if rest.Mtime != nil {
			fst.mtime = *rest.Mtime
		}
	}
	return d.overlayLocked(a, fst), nil
}

// truncateLocked resizes the logical file. Shrinks drop and re-chunk at
// the cut; grows append zero chunks (which dedup against each other, so
// sparse extension is cheap on disk).
func (d *FS) truncateLocked(h vfs.Handle, fst *fileState, newSize uint64) error {
	man := fst.man
	old := man.size
	if newSize == old {
		return nil
	}
	if committed := man.offs[len(man.ents)]; newSize < old && newSize >= committed {
		// The cut lands inside the in-memory tail: no chunk changes.
		fst.tail = fst.tail[:newSize-committed]
		man.size = newSize
		fst.dirty = true
		fst.mtime = time.Now()
		d.markDirty(h)
		d.logical.Add(int64(newSize) - int64(old))
		return nil
	}
	if newSize > old {
		const seg = 1 << 20
		zeros := bufpool.Get(seg)
		defer bufpool.Put(zeros)
		for i := range zeros {
			zeros[i] = 0
		}
		for cur := old; cur < newSize; {
			n := newSize - cur
			if n > seg {
				n = seg
			}
			if err := d.writeLocked(h, fst, cur, zeros[:n]); err != nil {
				return err
			}
			cur += n
		}
		fst.mtime = time.Now()
		return nil
	}
	// Shrinking below the committed prefix: the tail is cut entirely.
	fst.tail = fst.tail[:0]
	fst.forced = false
	epoch := d.syncStarted.Load()
	j := 0
	var newEnts []entry
	if newSize > 0 {
		j = man.chunkAt(newSize)
		if man.offs[j] < newSize {
			// Re-chunk the partial cut chunk's surviving bytes.
			n := int(newSize - man.offs[j])
			buf := bufpool.Get(n)
			defer bufpool.Put(buf)
			if err := d.readRange(man, man.offs[j], buf); err != nil {
				return err
			}
			var cuts []int
			for cur := 0; cur < n; {
				c := d.p.Next(buf[cur:])
				cur += c
				cuts = append(cuts, cur)
			}
			sums := d.hashCuts(buf, cuts)
			for i := range cuts {
				start := 0
				if i > 0 {
					start = cuts[i-1]
				}
				if _, err := d.st.addRef(sums[i], buf[start:cuts[i]]); err != nil {
					for k := 0; k < i; k++ {
						d.st.unref(sums[k], epoch)
					}
					return err
				}
				newEnts = append(newEnts, entry{sum: sums[i], n: uint32(cuts[i] - start)})
			}
		}
	}
	dropped := append([]entry(nil), man.ents[j:]...)
	man.ents = append(man.ents[:j:j], newEnts...)
	man.size = newSize
	man.rebuildOffs(j)
	if j < fst.dirtyFrom {
		fst.dirtyFrom = j
	}
	fst.dirty = true
	fst.mtime = time.Now()
	d.markDirty(h)
	d.logical.Add(int64(newSize) - int64(old))
	for _, e := range dropped {
		d.st.unref(e.sum, epoch)
	}
	return nil
}

// Create implements vfs.FS.
func (d *FS) Create(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	if d.reserved(dir, name) {
		return vfs.Attr{}, vfs.ErrPerm
	}
	a, err := d.backing.Create(dir, name, mode)
	if err != nil {
		return vfs.Attr{}, err
	}
	d.fmu.Lock()
	if d.files[a.Handle] == nil {
		fst := &fileState{man: emptyManifest(), disk: emptyLayout(), mtime: a.Mtime}
		d.files[a.Handle] = fst
	}
	d.fmu.Unlock()
	return a, nil
}

// Remove implements vfs.FS; dropping the last link releases the file's
// chunk references.
func (d *FS) Remove(dir vfs.Handle, name string) error {
	if d.reserved(dir, name) {
		return vfs.ErrPerm
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	a, err := d.backing.Lookup(dir, name)
	if err != nil {
		return err
	}
	if a.Type != vfs.TypeRegular {
		return d.backing.Remove(dir, name)
	}
	fst, err := d.state(a.Handle)
	if err != nil {
		return err
	}
	fst.mu.Lock()
	defer fst.mu.Unlock()
	if err := d.backing.Remove(dir, name); err != nil {
		return err
	}
	d.releaseIfGoneLocked(a.Handle, fst)
	return nil
}

// releaseIfGoneLocked drops h's chunk references when the inode no
// longer exists (last link removed or replaced); the caller holds
// fst.mu exclusively.
func (d *FS) releaseIfGoneLocked(h vfs.Handle, fst *fileState) {
	if _, err := d.backing.GetAttr(h); err == nil {
		return // other hard links remain
	}
	epoch := d.syncStarted.Load()
	for _, e := range fst.man.ents {
		d.st.unref(e.sum, epoch)
	}
	d.logical.Add(-int64(fst.man.size))
	fst.man = emptyManifest()
	fst.tail = nil
	fst.forced = false
	fst.dirty = false
	fst.dirtyFrom = 0
	fst.gone = true
	d.dropState(h)
}

// Rename implements vfs.FS; a replaced regular target releases its
// chunk references.
func (d *FS) Rename(fromDir vfs.Handle, fromName string, toDir vfs.Handle, toName string) error {
	if d.reserved(fromDir, fromName) || d.reserved(toDir, toName) {
		return vfs.ErrPerm
	}
	d.gate.RLock()
	defer d.gate.RUnlock()
	ta, terr := d.backing.Lookup(toDir, toName)
	if terr == nil && ta.Type == vfs.TypeRegular {
		if sa, serr := d.backing.Lookup(fromDir, fromName); serr == nil && sa.Handle == ta.Handle {
			return d.backing.Rename(fromDir, fromName, toDir, toName)
		}
		fst, err := d.state(ta.Handle)
		if err != nil {
			return err
		}
		fst.mu.Lock()
		defer fst.mu.Unlock()
		if err := d.backing.Rename(fromDir, fromName, toDir, toName); err != nil {
			return err
		}
		d.releaseIfGoneLocked(ta.Handle, fst)
		return nil
	}
	return d.backing.Rename(fromDir, fromName, toDir, toName)
}

// Mkdir implements vfs.FS.
func (d *FS) Mkdir(dir vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	if d.reserved(dir, name) {
		return vfs.Attr{}, vfs.ErrPerm
	}
	return d.backing.Mkdir(dir, name, mode)
}

// Rmdir implements vfs.FS.
func (d *FS) Rmdir(dir vfs.Handle, name string) error {
	if d.reserved(dir, name) {
		return vfs.ErrPerm
	}
	return d.backing.Rmdir(dir, name)
}

// ReadDir implements vfs.FS; the chunk store stays invisible.
func (d *FS) ReadDir(dir vfs.Handle) ([]vfs.DirEntry, error) {
	ents, err := d.backing.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	if dir != d.root {
		return ents, nil
	}
	out := ents[:0]
	for _, e := range ents {
		if e.Name != chunksName {
			out = append(out, e)
		}
	}
	return out, nil
}

// Symlink implements vfs.FS.
func (d *FS) Symlink(dir vfs.Handle, name, target string, mode uint32) (vfs.Attr, error) {
	if d.reserved(dir, name) {
		return vfs.Attr{}, vfs.ErrPerm
	}
	return d.backing.Symlink(dir, name, target, mode)
}

// Readlink implements vfs.FS.
func (d *FS) Readlink(h vfs.Handle) (string, error) { return d.backing.Readlink(h) }

// Link implements vfs.FS; hard links share one manifest (state is keyed
// by handle), so no reference counting changes here.
func (d *FS) Link(dir vfs.Handle, name string, target vfs.Handle) (vfs.Attr, error) {
	if d.reserved(dir, name) {
		return vfs.Attr{}, vfs.ErrPerm
	}
	a, err := d.backing.Link(dir, name, target)
	if err != nil {
		return vfs.Attr{}, err
	}
	return d.attrOf(a)
}

// StatFS implements vfs.FS; capacity is the backing store's (the whole
// point is that dedup makes it go further).
func (d *FS) StatFS() (vfs.StatFS, error) { return d.backing.StatFS() }

// ---- durability ----

// Sync implements vfs.Syncer: the COMMIT barrier. The write-behind
// manifest flush happens here, in crash-safe order:
//
//	A. device sync — chunk data becomes durable;
//	B. dirty manifests' records are written, always OUTSIDE the region
//	   the committed header governs (appends past the committed count;
//	   rewrites as a full array in the other slot; growth in a fresh
//	   doubled slot pair past both — see manLayout);
//	C. device sync — records durable (referencing only synced chunks);
//	D. headers are written (the commit point, one sub-block write each);
//	E. device sync.
//
// A power cut in any window leaves every manifest decoding to either
// its previous committed state or a later acknowledged one, never to a
// torn mix or a record that names an unsynced chunk.
func (d *FS) Sync() error {
	d.syncMu.Lock()
	defer d.syncMu.Unlock()
	started := d.syncStarted.Add(1)
	if err := vfs.SyncFS(d.backing); err != nil {
		return err
	}
	d.dmu.Lock()
	set := d.dirtySet
	d.dirtySet = make(map[vfs.Handle]struct{})
	d.dmu.Unlock()
	type pendingHdr struct {
		h         vfs.Handle
		fst       *fileState
		layout    manLayout
		size      uint64
		prevDirty int
		buf       [hdrSize]byte
	}
	var hdrs []pendingHdr
	// flipped is set once phase D starts writing headers: from then on
	// an aborted flush leaves the on-disk headers in an unknown state
	// (some written, none acknowledged durable), which fail records on
	// the affected files so their next flush resynchronizes first.
	flipped := false
	// fail undoes an aborted flush: every file processed so far goes
	// back to dirty with its pre-flush dirtyFrom restored. Before the
	// header phase the committed state is provably still the old one
	// (records only ever land outside the governed region); after it,
	// fst.disk can no longer be trusted to match the on-disk header.
	fail := func(err error) error {
		for _, ph := range hdrs {
			ph.fst.mu.Lock()
			ph.fst.dirty = true
			if ph.prevDirty < ph.fst.dirtyFrom {
				ph.fst.dirtyFrom = ph.prevDirty
			}
			if flipped {
				ph.fst.diskUnknown = true
			}
			ph.fst.mu.Unlock()
		}
		d.dmu.Lock()
		for h := range set {
			d.dirtySet[h] = struct{}{}
		}
		d.dmu.Unlock()
		return err
	}
	for h := range set {
		d.fmu.Lock()
		fst := d.files[h]
		d.fmu.Unlock()
		if fst == nil {
			continue
		}
		fst.mu.Lock()
		if !fst.dirty || fst.man == nil {
			fst.mu.Unlock()
			continue
		}
		if fst.diskUnknown {
			// A previous Sync died after writing headers it never saw
			// acknowledged. The phase-A device sync above made whatever
			// header the backing holds durable, so re-reading it is the
			// ground truth for which slot the committed header governs —
			// without it a rewrite could target the governed slot and a
			// crash mid-rewrite would tear the manifest.
			l, lerr := d.readLayout(h)
			if errors.Is(lerr, vfs.ErrStale) || errors.Is(lerr, vfs.ErrNotExist) {
				fst.dirty = false
				fst.mu.Unlock()
				continue // file is gone; nothing to persist
			}
			if lerr != nil {
				fst.mu.Unlock()
				return fail(lerr)
			}
			fst.disk = l
			fst.diskUnknown = false
		}
		// Force the open tail chunk out: the manifest about to commit
		// must cover every acknowledged byte. The chunk write lands
		// before the phase-C sync below, so the ordering invariant (no
		// committed record names an unsynced chunk) holds.
		if len(fst.tail) > 0 {
			if err := d.spillTailLocked(fst, true); err != nil {
				fst.mu.Unlock()
				return fail(err)
			}
			fst.forced = true
		}
		n := len(fst.man.ents)
		next := manLayout{start: fst.disk.start, base: fst.disk.base, cap: fst.disk.cap, count: n}
		writeFrom := 0
		switch {
		case fst.disk.cap < 1 || n > fst.disk.cap:
			// Outgrown the slots — or a fresh file's first commit (the
			// emptyLayout's zero-capacity slots), which must size a real
			// slot pair even when the manifest itself is empty (a file
			// truncated to zero before its first flush): a committed
			// header never carries cap 0.
			next.cap = 2 * n
			if next.cap < 64 {
				next.cap = 64
			}
			next.base = fst.disk.base + 2*uint64(fst.disk.cap)*recSize
			next.start = next.base
		case fst.dirtyFrom >= fst.disk.count:
			// Committed records untouched: append past them in place.
			writeFrom = fst.disk.count
		default:
			// A committed record changed: full array into the other slot.
			if fst.disk.start == fst.disk.base {
				next.start = fst.disk.base + uint64(fst.disk.cap)*recSize
			} else {
				next.start = fst.disk.base
			}
		}
		if cnt := n - writeFrom; cnt > 0 {
			buf := bufpool.Get(cnt * recSize)
			for i := 0; i < cnt; i++ {
				encodeRec(buf[i*recSize:], fst.man.ents[writeFrom+i])
			}
			_, werr := d.backing.Write(h, next.start+uint64(writeFrom)*recSize, buf)
			bufpool.Put(buf)
			if errors.Is(werr, vfs.ErrStale) || errors.Is(werr, vfs.ErrNotExist) {
				fst.dirty = false
				fst.mu.Unlock()
				continue // file is gone; nothing to persist
			}
			if werr != nil {
				fst.mu.Unlock()
				return fail(werr)
			}
		}
		ph := pendingHdr{h: h, fst: fst, layout: next, size: fst.man.size, prevDirty: fst.dirtyFrom}
		encodeHeader(ph.buf[:], ph.size, next)
		hdrs = append(hdrs, ph)
		fst.dirty = false
		fst.dirtyFrom = n
		fst.mu.Unlock()
	}
	if err := vfs.SyncFS(d.backing); err != nil {
		return fail(err)
	}
	flipped = true
	for _, ph := range hdrs {
		if _, err := d.backing.Write(ph.h, 0, ph.buf[:]); err != nil &&
			!errors.Is(err, vfs.ErrStale) && !errors.Is(err, vfs.ErrNotExist) {
			return fail(err)
		}
	}
	if err := vfs.SyncFS(d.backing); err != nil {
		return fail(err)
	}
	for _, ph := range hdrs {
		ph.fst.mu.Lock()
		ph.fst.disk = ph.layout
		ph.fst.mu.Unlock()
	}
	d.syncDone.Store(started)
	return nil
}

// ---- GC ----

// sweepOnce runs one GC cycle: a full Sync (so on-disk manifests agree
// with memory), then — under the exclusive quiesce gate — reclamation
// of every chunk whose refcount zeroed before that sync. The hot path
// truncates chunk files rather than unlinking them (crash-safe against
// torn directory rewrites in the backing FS); Close passes unlink=true
// to compact the chunk namespace on clean shutdown.
func (d *FS) sweepOnce(unlink bool) int {
	if err := d.Sync(); err != nil {
		return 0
	}
	d.gate.Lock()
	n := d.st.sweep(d.syncDone.Load(), unlink)
	d.gate.Unlock()
	return n
}

// SweepNow forces one GC cycle and reports how many chunks it
// reclaimed (tests, soak harness, shutdown).
func (d *FS) SweepNow() int { return d.sweepOnce(false) }

// VerifyResult is the refcount fsck outcome.
type VerifyResult struct {
	Chunks       int // chunk files indexed
	Orphans      int // zero-reference chunks awaiting the sweeper
	RefMismatch  int // chunks whose in-memory refcount disagrees with the manifests
	MissingChunk int // manifest entries naming a chunk the store lacks
}

// Verify recomputes every chunk's reference count from the on-disk
// manifests (after a full Sync) and compares with the live index — the
// soak harness's leak gate. It holds the quiesce gate exclusively.
func (d *FS) Verify() (VerifyResult, error) {
	if err := d.Sync(); err != nil {
		return VerifyResult{}, err
	}
	d.gate.Lock()
	defer d.gate.Unlock()
	want := make(map[sha]int64)
	err := d.walkManifests(func(h vfs.Handle, man *manifest) error {
		for _, e := range man.ents {
			want[e.sum]++
		}
		return nil
	})
	if err != nil {
		return VerifyResult{}, err
	}
	have := d.st.snapshotRefs()
	var res VerifyResult
	res.Chunks = len(have)
	for sum, refs := range have {
		if refs == 0 {
			res.Orphans++
		}
		if want[sum] != refs {
			res.RefMismatch++
		}
	}
	for sum := range want {
		if _, ok := have[sum]; !ok {
			res.MissingChunk++
		}
	}
	return res, nil
}

// ---- lifecycle ----

// Close flushes manifests, stops the background workers and sweeps
// once so a clean shutdown leaves no garbage chunks behind.
func (d *FS) Close() error {
	var err error
	d.once.Do(func() {
		err = d.Sync()
		d.sweepOnce(true)
		d.closed.Store(true)
		close(d.stop)
		d.wg.Wait()
	})
	return err
}

// abort stops the background goroutines without flushing — the crash
// suite uses it to abandon a layer whose in-memory state must not heal
// the simulated power cut.
func (d *FS) abort() {
	d.once.Do(func() {
		d.closed.Store(true)
		close(d.stop)
		d.wg.Wait()
	})
}

// Stats is a counters snapshot for the metrics plane.
type Stats struct {
	Chunks       int64  // unique chunks stored
	BytesLogical int64  // bytes addressable through manifests
	BytesStored  int64  // bytes held in chunk files
	Hits         uint64 // writes absorbed as pure index mutations
	GCChunks     uint64 // chunks reclaimed by the sweeper
	GCBytes      uint64 // bytes reclaimed by the sweeper
	CacheHits    uint64 // chunk-cache hits on the read path
	CacheMisses  uint64 // chunk-cache misses on the read path
}

// Stats returns a snapshot.
func (d *FS) Stats() Stats {
	s := Stats{
		Chunks:       d.st.chunks.Load(),
		BytesLogical: d.logical.Load(),
		BytesStored:  d.st.storedBytes.Load(),
		Hits:         d.st.hits.Load(),
		GCChunks:     d.st.gcChunks.Load(),
		GCBytes:      d.st.gcBytes.Load(),
	}
	if d.cache != nil {
		s.CacheHits, s.CacheMisses = d.cache.Stats()
	}
	return s
}

// Params returns the chunk geometry in use.
func (d *FS) Params() Params { return d.p }
