package dedup

import (
	"bytes"
	"testing"

	"discfs/internal/ffs"
)

// FuzzCDC fuzzes the two properties the on-disk format depends on:
//
//  1. chunk geometry — every non-final chunk of the reference split
//     lies in [Min, Max], and the chunks exactly tile the input;
//  2. segmentation independence — writing the same bytes through the
//     dedup layer in fuzzer-chosen segments (including overlapping
//     rewrites) always converges to exactly the reference split.
//
// Property 2 is what makes dedup work at all: two clients uploading the
// same file through different WRITE patterns must produce identical
// chunk sequences or nothing deduplicates.
func FuzzCDC(f *testing.F) {
	f.Add([]byte("hello world"), uint16(3), uint16(5))
	f.Add(bytes.Repeat([]byte{0}, 40_000), uint16(1000), uint16(7))
	f.Add(bytes.Repeat([]byte("abcdef"), 10_000), uint16(600), uint16(0))
	f.Fuzz(driveCDC)
}

// driveCDC is the fuzz body (also callable from plain tests).
func driveCDC(t *testing.T, data []byte, segSeed uint16, order uint16) {
	{
		if len(data) > 128<<10 {
			data = data[:128<<10]
		}
		p := ParamsForAvg(1024) // 256/1024/4096: multi-chunk on small inputs
		cuts := p.Split(data)
		total := 0
		for i, n := range cuts {
			if n <= 0 || n > p.Max {
				t.Fatalf("chunk %d has length %d (max %d)", i, n, p.Max)
			}
			if n < p.Min && i != len(cuts)-1 {
				t.Fatalf("non-final chunk %d has length %d (min %d)", i, n, p.Min)
			}
			total += n
		}
		if total != len(data) {
			t.Fatalf("chunks cover %d of %d bytes", total, len(data))
		}
		if len(data) == 0 {
			return
		}

		// Drive the layer with a segmentation derived from the fuzz
		// inputs and check the manifest equals the reference split.
		backing, err := ffs.New(ffs.Config{BlockSize: 4096, NumBlocks: 8192})
		if err != nil {
			t.Fatal(err)
		}
		d, err := Wrap(backing, WithParams(p), WithSweepInterval(0))
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		a, err := d.Create(d.Root(), "f", 0o644)
		if err != nil {
			t.Fatal(err)
		}
		seg := int(segSeed)%8192 + 32
		var spans [][2]int
		for off := 0; off < len(data); off += seg {
			end := off + seg
			if end > len(data) {
				end = len(data)
			}
			spans = append(spans, [2]int{off, end})
		}
		if order%2 == 1 { // back-to-front: every write is a sparse extend
			for i, j := 0, len(spans)-1; i < j; i, j = i+1, j-1 {
				spans[i], spans[j] = spans[j], spans[i]
			}
		}
		for _, s := range spans {
			if _, err := d.Write(a.Handle, uint64(s[0]), data[s[0]:s[1]]); err != nil {
				t.Fatal(err)
			}
		}
		if order%3 == 0 { // rewrite a middle span: overwrite convergence
			mid := spans[len(spans)/2]
			if _, err := d.Write(a.Handle, uint64(mid[0]), data[mid[0]:mid[1]]); err != nil {
				t.Fatal(err)
			}
		}
		got := make([]byte, len(data))
		if _, _, err := d.ReadInto(a.Handle, 0, got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("content mismatch")
		}
		fst, err := d.state(a.Handle)
		if err != nil {
			t.Fatal(err)
		}
		fst.mu.RLock()
		eff := make([]int, 0, len(fst.man.ents)+1)
		for _, e := range fst.man.ents {
			eff = append(eff, int(e.n))
		}
		if len(fst.tail) > 0 {
			eff = append(eff, len(fst.tail))
		}
		fst.mu.RUnlock()
		if len(eff) != len(cuts) {
			t.Fatalf("manifest has %d chunks (incl. open tail), reference split %d", len(eff), len(cuts))
		}
		for i, n := range cuts {
			if eff[i] != n {
				t.Fatalf("chunk %d is %d bytes, reference %d", i, eff[i], n)
			}
		}
	}
}
