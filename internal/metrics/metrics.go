// Package metrics is the operations-plane instrumentation registry: a
// dependency-free Prometheus-text-format exposition of counters, gauges
// and fixed-bucket latency histograms. Every layer of the server —
// sunrpc, secchan, nfs, the policy engine, the write gatherer, the
// buffer pool — reports through one Registry so operators (and the soak
// harness) read a single coherent surface instead of per-layer ad-hoc
// counters.
//
// The implementation is deliberately small: atomic counters, a
// cumulative-bucket histogram with quantile readback, and func-backed
// collectors that sample existing component counters at scrape time (so
// instrumenting a layer costs nothing on its hot path).
package metrics

import (
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// A Registry holds a set of named metric families and renders them in
// Prometheus text exposition format. Constructors are idempotent: asking
// for an existing name of the same kind returns the existing metric, so
// independent layers may register against the same registry without
// coordinating.
type Registry struct {
	mu    sync.Mutex
	order []*family
	byVal map[string]*family
}

// family is one named metric family (possibly labeled).
type family struct {
	name, help, typ string
	value           any
	write           func(w *strings.Builder)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byVal: make(map[string]*family)}
}

func (r *Registry) register(name, help, typ string, kind any, write func(w *strings.Builder)) any {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.byVal[name]; ok {
		if f.typ != typ {
			panic("metrics: " + name + " re-registered as " + typ + ", was " + f.typ)
		}
		return f.value
	}
	f := &family{name: name, help: help, typ: typ, write: write}
	f.value = kind
	r.byVal[name] = f
	r.order = append(r.order, f)
	return kind
}

// ---- Counter ----

// A Counter is a monotonically increasing value.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reports the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{}
	return r.register(name, help, "counter", c, func(w *strings.Builder) {
		writeSample(w, name, "", float64(c.Value()))
	}).(*Counter)
}

// CounterFunc registers a counter whose value is sampled from fn at
// scrape time — the bridge from existing component counters (cache
// hits, audit totals, pool statistics) into the registry without
// double-counting state.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	r.register(name, help, "counter", fn, func(w *strings.Builder) {
		writeSample(w, name, "", float64(fn()))
	})
}

// ---- Gauge ----

// A Gauge is a value that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reports the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{}
	return r.register(name, help, "gauge", g, func(w *strings.Builder) {
		writeSample(w, name, "", float64(g.Value()))
	}).(*Gauge)
}

// GaugeFunc registers a gauge sampled from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, "gauge", fn, func(w *strings.Builder) {
		writeSample(w, name, "", fn())
	})
}

// ---- Histogram ----

// DefLatencyBuckets are the default RPC latency buckets: roughly
// exponential from 50µs (an in-memory cache hit) to 10s (a pathological
// stall), matching the range the NFS data plane actually spans.
var DefLatencyBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3, 250e-3, 500e-3,
	1, 2.5, 5, 10,
}

// A Histogram counts observations into fixed buckets and keeps a sum,
// supporting approximate quantile readback. Observation is lock-free.
type Histogram struct {
	bounds []float64 // upper bounds, ascending; an implicit +Inf bucket follows
	counts []atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	bounds := append([]float64(nil), buckets...)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		o := h.sum.Load()
		n := math.Float64bits(math.Float64frombits(o) + v)
		if h.sum.CompareAndSwap(o, n) {
			return
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum reports the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Snapshot captures the bucket state for merging and quantiles.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Bounds: h.bounds, Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Sum = h.Sum()
	s.Count = h.count.Load()
	return s
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the containing bucket; observations beyond the
// last bound report the last bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// A HistogramSnapshot is a point-in-time copy of histogram state;
// snapshots over the same buckets can be merged.
type HistogramSnapshot struct {
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Merge accumulates o into s (buckets must match; zero-value s adopts
// o's buckets).
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if s.Bounds == nil {
		s.Bounds = o.Bounds
		s.Counts = make([]uint64, len(o.Counts))
	}
	for i := range o.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Sum += o.Sum
	s.Count += o.Count
}

// Quantile estimates the q-quantile of the snapshot.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		next := cum + float64(c)
		if rank <= next || i == len(s.Counts)-1 {
			if i >= len(s.Bounds) {
				// +Inf bucket: report the last finite bound.
				return s.Bounds[len(s.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if c == 0 {
				return hi
			}
			frac := (rank - cum) / float64(c)
			return lo + (hi-lo)*frac
		}
		cum = next
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Histogram registers (or returns) a histogram with the given upper
// bounds (nil means DefLatencyBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	h := newHistogram(buckets)
	return r.register(name, help, "histogram", h, func(w *strings.Builder) {
		writeHistogram(w, name, "", h.Snapshot())
	}).(*Histogram)
}

// ---- Labeled vectors ----

// A CounterVec is a counter family partitioned by one label.
type CounterVec struct {
	label string
	mu    sync.Mutex
	m     map[string]*Counter
}

// With returns the counter for the given label value, creating it on
// first use.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.m[value]
	if !ok {
		c = &Counter{}
		v.m[value] = c
	}
	return c
}

// Total sums the family.
func (v *CounterVec) Total() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var t uint64
	for _, c := range v.m {
		t += c.Value()
	}
	return t
}

func (v *CounterVec) sorted() []string {
	keys := make([]string, 0, len(v.m))
	for k := range v.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	v := &CounterVec{label: label, m: make(map[string]*Counter)}
	return r.register(name, help, "counter", v, func(w *strings.Builder) {
		v.mu.Lock()
		defer v.mu.Unlock()
		for _, k := range v.sorted() {
			writeSample(w, name, labelPair(label, k), float64(v.m[k].Value()))
		}
	}).(*CounterVec)
}

// A HistogramVec is a histogram family partitioned by one label.
type HistogramVec struct {
	label   string
	buckets []float64
	mu      sync.Mutex
	m       map[string]*Histogram
}

// With returns the histogram for the given label value.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.m[value]
	if !ok {
		h = newHistogram(v.buckets)
		v.m[value] = h
	}
	return h
}

// Merged folds every label's buckets into one snapshot — the aggregate
// latency distribution across the family.
func (v *HistogramVec) Merged() HistogramSnapshot {
	v.mu.Lock()
	defer v.mu.Unlock()
	var s HistogramSnapshot
	for _, h := range v.m {
		s.Merge(h.Snapshot())
	}
	return s
}

// HistogramVec registers (or returns) a labeled histogram family.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	v := &HistogramVec{label: label, buckets: buckets, m: make(map[string]*Histogram)}
	return r.register(name, help, "histogram", v, func(w *strings.Builder) {
		v.mu.Lock()
		keys := make([]string, 0, len(v.m))
		for k := range v.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		snaps := make([]HistogramSnapshot, len(keys))
		for i, k := range keys {
			snaps[i] = v.m[k].Snapshot()
		}
		v.mu.Unlock()
		for i, k := range keys {
			writeHistogram(w, name, labelPair(v.label, k), snaps[i])
		}
	}).(*HistogramVec)
}

// ---- Exposition ----

// WriteText renders the registry in Prometheus text exposition format.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.order...)
	r.mu.Unlock()
	var b strings.Builder
	for _, f := range fams {
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.help)
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.typ)
		b.WriteByte('\n')
		f.write(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func labelPair(label, value string) string {
	return label + `="` + escapeLabel(value) + `"`
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

func writeSample(w *strings.Builder, name, labels string, v float64) {
	w.WriteString(name)
	if labels != "" {
		w.WriteByte('{')
		w.WriteString(labels)
		w.WriteByte('}')
	}
	w.WriteByte(' ')
	w.WriteString(formatFloat(v))
	w.WriteByte('\n')
}

func writeHistogram(w *strings.Builder, name, labels string, s HistogramSnapshot) {
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		le := labelPair("le", formatFloat(bound))
		if labels != "" {
			le = labels + "," + le
		}
		writeSample(w, name+"_bucket", le, float64(cum))
	}
	cum += s.Counts[len(s.Counts)-1]
	inf := labelPair("le", "+Inf")
	if labels != "" {
		inf = labels + "," + inf
	}
	writeSample(w, name+"_bucket", inf, float64(cum))
	writeSample(w, name+"_sum", labels, s.Sum)
	writeSample(w, name+"_count", labels, float64(cum))
}

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
