package metrics

import (
	"net"
	"net/http"
	"time"
)

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// A Health callback reports readiness: nil means healthy; an error is
// reported with a 503 (a draining server answers "draining" so load
// balancers stop routing to it before the listener goes away).
type Health func() error

// HealthHandler serves /healthz from the callback.
func HealthHandler(h Health) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		if h != nil {
			if err := h(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
}

// An HTTPServer is a running metrics endpoint (/metrics + /healthz).
type HTTPServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts an HTTP listener on addr exposing /metrics from reg and
// /healthz from health. It returns once the listener is bound; requests
// are served in the background until Close.
func Serve(addr string, reg *Registry, health Health) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", Handler(reg))
	mux.Handle("/healthz", HealthHandler(health))
	s := &HTTPServer{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr reports the bound listen address (useful with ":0").
func (s *HTTPServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight scrapes.
func (s *HTTPServer) Close() error { return s.srv.Close() }
