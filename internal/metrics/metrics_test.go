package metrics

import (
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndFunc(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("discfs_test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	sampled := uint64(0)
	r.CounterFunc("discfs_sampled_total", "sampled at scrape", func() uint64 { return sampled })
	sampled = 42

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		"# TYPE discfs_test_total counter",
		"discfs_test_total 5",
		"discfs_sampled_total 42", // read at scrape time, not registration
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, text)
		}
	}
}

func TestDuplicateRegistrationReturnsSame(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("discfs_dup_total", "x")
	b := r.Counter("discfs_dup_total", "x")
	if a != b {
		t.Fatal("duplicate Counter registration did not return the same collector")
	}
}

func TestGauge(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("discfs_depth", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("discfs_lat_seconds", "latency", []float64{0.001, 0.01, 0.1, 1})
	// 90 fast observations, 10 slow: p50 must land in the first bucket,
	// p99 in the slow one.
	for i := 0; i < 90; i++ {
		h.Observe(0.0005)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05)
	}
	if got := h.Count(); got != 100 {
		t.Fatalf("count = %d, want 100", got)
	}
	if p50 := h.Quantile(0.50); p50 > 0.001 {
		t.Errorf("p50 = %g, want <= 0.001", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 0.01 || p99 > 0.1 {
		t.Errorf("p99 = %g, want in (0.01, 0.1]", p99)
	}
	if q := h.Quantile(0.5); math.IsNaN(q) {
		t.Error("quantile is NaN on a populated histogram")
	}
}

func TestVecsAndText(t *testing.T) {
	r := NewRegistry()
	cv := r.CounterVec("discfs_errs_total", "errors by proc", "proc")
	cv.With("read").Add(3)
	cv.With("write").Inc()
	if got := cv.Total(); got != 4 {
		t.Fatalf("vec total = %d, want 4", got)
	}
	hv := r.HistogramVec("discfs_lat2_seconds", "latency by proc", "proc", []float64{0.01, 1})
	hv.With("read").Observe(0.005)
	hv.With("write").Observe(0.5)
	m := hv.Merged()
	if m.Count != 2 {
		t.Fatalf("merged count = %d, want 2", m.Count)
	}

	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	for _, want := range []string{
		`discfs_errs_total{proc="read"} 3`,
		`discfs_errs_total{proc="write"} 1`,
		`discfs_lat2_seconds_bucket{proc="read",le="0.01"} 1`,
		`discfs_lat2_seconds_bucket{proc="write",le="+Inf"} 1`,
		`discfs_lat2_seconds_count{proc="read"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("WriteText missing %q in:\n%s", want, text)
		}
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("discfs_conc_total", "contended")
	h := r.Histogram("discfs_conc_seconds", "contended", DefLatencyBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

func TestHTTPServe(t *testing.T) {
	r := NewRegistry()
	r.Counter("discfs_http_total", "served").Add(9)
	healthy := true
	srv, err := Serve("127.0.0.1:0", r, func() error {
		if !healthy {
			return io.ErrClosedPipe
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	code, body := get("/metrics")
	if code != http.StatusOK || !strings.Contains(body, "discfs_http_total 9") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, _ = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("/healthz = %d, want 200", code)
	}
	healthy = false
	code, _ = get("/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("/healthz while unhealthy = %d, want 503", code)
	}
}
