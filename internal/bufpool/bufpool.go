// Package bufpool is the shared buffer pool of the data plane: every
// layer that moves a READ/WRITE payload — the RPC record reader, the
// reply encoder, the secure-channel record layer — borrows its backing
// array here instead of allocating per message, so a large transfer
// costs one allocation end to end instead of one per layer boundary.
//
// Buffers are size-classed in powers of two; Get returns a slice whose
// capacity is exactly a class size, and Put only recycles slices whose
// capacity matches a class (anything else is left for the GC, so
// re-sliced or caller-grown buffers are always safe to Put).
//
// Ownership rule: a buffer has exactly one owner at a time. Whoever
// calls Get (or receives the buffer in a documented hand-off) must
// either Put it once or pass ownership on; after Put the slice must not
// be touched. Double-Put corrupts the pool — the counters exist so
// tests can catch imbalance (see Stats and Outstanding).
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

const (
	// minClassBits is the smallest class (4 KiB): below it pooling buys
	// nothing over the allocator's own size classes.
	minClassBits = 12
	// maxClassBits is the largest class (2 MiB): one maximal RPC record
	// (a 1 MiB transfer plus framing and AEAD overhead) fits with room.
	maxClassBits = 21
	numClasses   = maxClassBits - minClassBits + 1
)

// MaxPooled is the largest buffer size the pool recycles; larger Gets
// fall through to the allocator.
const MaxPooled = 1 << maxClassBits

var classes [numClasses]sync.Pool

var (
	gets   atomic.Int64 // pooled Gets (within MaxPooled)
	puts   atomic.Int64 // pooled Puts (class-sized capacity)
	misses atomic.Int64 // pooled Gets that found an empty pool
)

// classFor returns the index of the smallest class holding n bytes, or
// -1 when n exceeds MaxPooled.
func classFor(n int) int {
	if n > MaxPooled {
		return -1
	}
	if n <= 1<<minClassBits {
		return 0
	}
	return bits.Len(uint(n-1)) - minClassBits
}

// Get returns a buffer of length n. For n ≤ MaxPooled its capacity is
// the exact size class (so Put can recycle it); beyond that it is a
// plain allocation. The contents are NOT zeroed: the caller must
// overwrite every byte it reads back.
func Get(n int) []byte {
	ci := classFor(n)
	if ci < 0 {
		return make([]byte, n)
	}
	gets.Add(1)
	if v := classes[ci].Get(); v != nil {
		return (*(v.(*[]byte)))[:n]
	}
	misses.Add(1)
	return make([]byte, n, 1<<(minClassBits+ci))
}

// Put returns a buffer obtained from Get (or grown to an exact class
// capacity) to the pool. Slices with off-class capacity are dropped
// silently, so Put is always safe on any buffer whose ownership the
// caller holds. nil is a no-op.
func Put(b []byte) {
	c := cap(b)
	if c < 1<<minClassBits || c > MaxPooled || c&(c-1) != 0 {
		return
	}
	puts.Add(1)
	b = b[:0]
	classes[bits.Len(uint(c-1))-minClassBits].Put(&b)
}

// Grow returns a buffer of length n holding b's contents, recycling b
// when a larger class is needed. Capacity at least doubles, so repeated
// Grows are geometric, not quadratic.
func Grow(b []byte, n int) []byte {
	if n <= cap(b) {
		return b[:n]
	}
	want := n
	if d := 2 * cap(b); d > want {
		want = d
	}
	nb := Get(want)[:n]
	copy(nb, b)
	Put(b)
	return nb
}

// PoolStats is a snapshot of the pool's counters.
type PoolStats struct {
	Gets   int64 // pooled Get calls
	Puts   int64 // pooled Put calls that recycled a buffer
	Misses int64 // pooled Gets served by a fresh allocation
}

// Stats returns the global counters. Tests use the Gets−Puts balance as
// a leak check around code paths with strict one-owner hand-offs.
func Stats() PoolStats {
	return PoolStats{Gets: gets.Load(), Puts: puts.Load(), Misses: misses.Load()}
}

// Outstanding returns Gets−Puts: the number of pooled buffers currently
// owned by callers. Paths that hand buffers to long-lived caches (the
// client data cache) legitimately hold buffers open, so a global zero
// is only expected in targeted unit tests.
func Outstanding() int64 { return gets.Load() - puts.Load() }
