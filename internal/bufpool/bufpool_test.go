package bufpool

import (
	"testing"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n, want int
	}{
		{0, 0}, {1, 0}, {4096, 0}, {4097, 1}, {8192, 1},
		{8193, 2}, {1 << 20, 8}, {MaxPooled, numClasses - 1},
		{MaxPooled + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetLenAndClassCap(t *testing.T) {
	for _, n := range []int{1, 100, 4096, 9000, 512 << 10, MaxPooled} {
		b := Get(n)
		if len(b) != n {
			t.Fatalf("Get(%d): len = %d", n, len(b))
		}
		c := cap(b)
		if c&(c-1) != 0 || c < n || c > MaxPooled {
			t.Fatalf("Get(%d): cap %d is not a class size", n, c)
		}
		Put(b)
	}
	// Oversize falls through to the allocator with exact length.
	b := Get(MaxPooled + 1)
	if len(b) != MaxPooled+1 {
		t.Fatalf("oversize Get: len = %d", len(b))
	}
	Put(b) // must be a safe no-op
}

func TestRecycle(t *testing.T) {
	b := Get(10000)
	b[0] = 0xAB
	Put(b)
	// Same class: likely (not guaranteed — sync.Pool may drop) the same
	// backing array. Either way the length must be right and the buffer
	// usable.
	b2 := Get(12000)
	if len(b2) != 12000 {
		t.Fatalf("len = %d", len(b2))
	}
	Put(b2)
}

func TestPutOffClassDropped(t *testing.T) {
	before := Stats()
	Put(make([]byte, 0, 5000)) // not a power of two: dropped
	Put(make([]byte, 0, 64))   // below min class: dropped
	Put(nil)
	if after := Stats(); after.Puts != before.Puts {
		t.Errorf("off-class Put recycled: %+v -> %+v", before, after)
	}
}

func TestGrowGeometric(t *testing.T) {
	b := Get(100)
	copy(b, "hello")
	b = Grow(b, 5000)
	if len(b) != 5000 || string(b[:5]) != "hello" {
		t.Fatalf("Grow lost contents: len=%d %q", len(b), b[:5])
	}
	// Growing by one byte at a time must not reallocate every step.
	caps := 0
	prev := cap(b)
	for i := 0; i < 100000; i++ {
		b = Grow(b, len(b)+1)
		if cap(b) != prev {
			caps++
			if cap(b) < 2*prev {
				t.Fatalf("non-geometric growth: %d -> %d", prev, cap(b))
			}
			prev = cap(b)
		}
	}
	if caps > 6 {
		t.Errorf("%d reallocations growing 5000 -> 105000 bytes", caps)
	}
	Put(b)
}

// TestLeakBalance is the leak check: a strict get/put discipline leaves
// Outstanding unchanged.
func TestLeakBalance(t *testing.T) {
	before := Outstanding()
	var bufs [][]byte
	for i := 0; i < 64; i++ {
		bufs = append(bufs, Get(1<<uint(10+i%10)))
	}
	for _, b := range bufs {
		Put(b)
	}
	if after := Outstanding(); after != before {
		t.Errorf("leak: outstanding %d -> %d", before, after)
	}
}

func BenchmarkGetPut(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := Get(512 << 10)
		Put(buf)
	}
}
