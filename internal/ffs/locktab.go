package ffs

import (
	"sort"
	"sync"

	"discfs/internal/vfs"
)

// The concurrency model of the filesystem, replacing the original single
// RWMutex over everything:
//
//   - Every inode is guarded by its own RWMutex, held in read mode by
//     data reads (READ, GETATTR, LOOKUP, READDIR) and in write mode by
//     mutations, so writes to different files never contend and lookups
//     stay read-mostly. The locks live in a sharded, refcounted lock
//     table keyed by inode number rather than in the inode itself, so
//     lock identity survives the resolve-then-lock window and entries
//     for idle inodes cost nothing.
//   - The inode map, the block allocator and the fsck/dump quiescence
//     gate each have their own small lock (metaMu, allocMu, quiesce).
//   - Multi-inode operations follow one global lock order, so they are
//     deadlock-free by construction (see below).
//
// Lock ordering discipline
//
//  1. quiesce (shared) is taken first by every operation; Check and
//     Dump take it exclusively and therefore see a frozen filesystem.
//  2. renameMu serializes all renames. It also stabilizes directory
//     parent pointers, so rename's ancestry walks (the lock-order test
//     below and the "mv a a/b" check) run against a frozen topology.
//  3. Parent directory locks are acquired before child locks. The two
//     parents of a cross-directory rename are locked ancestor-first
//     when one contains the other — the same tree-descending order as
//     every parent→child acquisition — and by inode number only when
//     they are unrelated.
//  4. Child locks within one operation (rename's source and its
//     replaced target) are ordered directories-before-files, then by
//     inode number.
//
// Why this cannot deadlock: lock-order cycles need two operations each
// holding something the other wants. Single-inode operations (read,
// write, getattr) hold nothing else. Parent→child acquisitions follow
// the directory tree, which is acyclic — and an inode listed in a
// locked directory cannot be freed (its entry pins nlink ≥ 1), so
// child acquisition always terminates. Rename's parents phase descends
// the tree too whenever its two directories are comparable (rule 3), so
// it never holds a descendant while waiting on its ancestor — the
// inversion a concurrent rmdir/remove's parent→child chain could cycle
// with; when the parents are unrelated, no parent→child chain connects
// them (such chains stay within one subtree), so inode order is safe.
// The remaining shape — two multi-lock operations interleaving children
// — is rename-vs-rename, excluded by renameMu, or
// rename-vs-remove/rmdir/link, where rule 4 orders the directory child
// (the only lock a second operation could hold as a parent) first, so
// the rename never waits on a directory while holding a lock the
// directory's holder wants. metaMu and allocMu are leaves: nothing is
// acquired under them.

// ltShards is the shard count of the lock table; power of two.
const (
	ltShardBits = 5
	ltShards    = 1 << ltShardBits
)

// lockTable is a sharded table of per-inode locks. Entries are created
// on first acquisition and reference-counted away on release, so the
// table tracks only inodes with an active or pending holder.
type lockTable struct {
	shards [ltShards]lockShard
}

type lockShard struct {
	mu sync.Mutex
	m  map[uint64]*inodeLock
}

// inodeLock is one table entry. refs counts holders and waiters; the
// entry leaves the table when it reaches zero.
type inodeLock struct {
	mu   sync.RWMutex
	refs int
}

func (t *lockTable) init() {
	for i := range t.shards {
		t.shards[i].m = make(map[uint64]*inodeLock)
	}
}

func (t *lockTable) shard(ino uint64) *lockShard {
	// Fibonacci hashing spreads sequential inode numbers across shards.
	return &t.shards[(ino*0x9e3779b97f4a7c15)>>(64-ltShardBits)]
}

// pin returns the lock entry for ino, creating it if needed and
// incrementing its reference count. The caller must eventually unpin.
func (t *lockTable) pin(ino uint64) *inodeLock {
	s := t.shard(ino)
	s.mu.Lock()
	l := s.m[ino]
	if l == nil {
		l = &inodeLock{}
		s.m[ino] = l
	}
	l.refs++
	s.mu.Unlock()
	return l
}

// unpin drops a reference taken by pin, removing the entry at zero.
func (t *lockTable) unpin(ino uint64, l *inodeLock) {
	s := t.shard(ino)
	s.mu.Lock()
	l.refs--
	if l.refs == 0 {
		delete(s.m, ino)
	}
	s.mu.Unlock()
}

// entries reports how many inodes currently have a lock entry (tests).
func (t *lockTable) entries() int {
	n := 0
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// ---- FFS locking helpers ----
//
// Each helper pins the lock entry, acquires it, and re-checks that the
// inode is still live: an inode freed while we waited (its last link
// removed by a concurrent operation) answers ErrStale, exactly as a
// stale NFS handle does.

// rlockInode acquires ip's lock shared. The returned func releases it.
func (fs *FFS) rlockInode(ip *inode) (func(), error) {
	l := fs.locks.pin(ip.ino)
	l.mu.RLock()
	if ip.dead {
		l.mu.RUnlock()
		fs.locks.unpin(ip.ino, l)
		return nil, vfs.ErrStale
	}
	return func() {
		l.mu.RUnlock()
		fs.locks.unpin(ip.ino, l)
	}, nil
}

// wlockInode acquires ip's lock exclusively.
func (fs *FFS) wlockInode(ip *inode) (func(), error) {
	l := fs.locks.pin(ip.ino)
	l.mu.Lock()
	if ip.dead {
		l.mu.Unlock()
		fs.locks.unpin(ip.ino, l)
		return nil, vfs.ErrStale
	}
	return func() {
		l.mu.Unlock()
		fs.locks.unpin(ip.ino, l)
	}, nil
}

// lockChildren exclusively locks the given inodes in the canonical
// child order — directories before files, ascending inode number within
// each class (rule 4 of the lock discipline). Duplicates are locked
// once. The caller holds the parent directory locks.
func (fs *FFS) lockChildren(ips ...*inode) (func(), error) {
	uniq := ips[:0]
	for _, ip := range ips {
		dup := false
		for _, u := range uniq {
			if u == ip {
				dup = true
				break
			}
		}
		if !dup {
			uniq = append(uniq, ip)
		}
	}
	sort.Slice(uniq, func(i, j int) bool {
		di, dj := uniq[i].ftype == vfs.TypeDir, uniq[j].ftype == vfs.TypeDir
		if di != dj {
			return di
		}
		return uniq[i].ino < uniq[j].ino
	})
	unlocks := make([]func(), 0, len(uniq))
	release := func() {
		for i := len(unlocks) - 1; i >= 0; i-- {
			unlocks[i]()
		}
	}
	for _, ip := range uniq {
		u, err := fs.wlockInode(ip)
		if err != nil {
			release()
			return nil, err
		}
		unlocks = append(unlocks, u)
	}
	return release, nil
}

// dirIsAncestor reports whether anc is a proper ancestor of d. The
// caller must hold renameMu, which freezes the parent pointers the walk
// reads.
func (fs *FFS) dirIsAncestor(anc, d *inode) (bool, error) {
	for d.ino != 1 { // until root
		p, err := fs.getInode(d.parent)
		if err != nil {
			return false, err
		}
		if p == anc {
			return true, nil
		}
		d = p
	}
	return false, nil
}

// lockDirPair exclusively locks one or two distinct directories for a
// rename (rule 3): an ancestor before its descendant — matching the
// tree-descending order of every parent→child acquisition, so a
// concurrent rmdir/remove holding the ancestor and waiting on the
// descendant cannot cycle with us — and ascending inode order when the
// two are unrelated. The caller must hold renameMu.
func (fs *FFS) lockDirPair(a, b *inode) (func(), error) {
	if a == b {
		return fs.wlockInode(a)
	}
	first, second := a, b
	if second.ino < first.ino {
		first, second = second, first
	}
	// Inode order already puts first before second; it only inverts the
	// tree order if the higher-numbered directory contains the lower.
	if anc, err := fs.dirIsAncestor(second, first); err != nil {
		return nil, err
	} else if anc {
		first, second = second, first
	}
	u1, err := fs.wlockInode(first)
	if err != nil {
		return nil, err
	}
	u2, err := fs.wlockInode(second)
	if err != nil {
		u1()
		return nil, err
	}
	return func() { u2(); u1() }, nil
}
