package ffs

import (
	"fmt"
	"io"
	"time"

	"discfs/internal/vfs"
	"discfs/internal/xdr"
)

// Filesystem image persistence: Dump serializes the complete state —
// geometry, inode table, generation history, allocator, and every used
// block — and Load reconstructs it. Generation history is included so
// handles that were stale before a dump remain stale after a restore.
//
// The image is written through the shared XDR codec. The format is
// versioned by magic; it is a snapshot format (the whole image is built
// in memory), suited to backup/migration of the modest filesystems a
// DisCFS server exports rather than terabyte volumes.

// imageMagic identifies a dump stream.
var imageMagic = []byte("DisCFS-FFS-image-1")

// Dump writes the filesystem image to w. The filesystem is quiesced
// for the duration: the image is a consistent snapshot.
func (fs *FFS) Dump(w io.Writer) error {
	fs.quiesce.Lock()
	defer fs.quiesce.Unlock()

	e := xdr.NewEncoder()
	e.Opaque(imageMagic)
	e.Uint32(uint32(fs.blockSize))
	e.Uint32(fs.dev.NumBlocks())
	e.Uint64(fs.nextIno)
	e.Uint64(fs.maxInodes)
	e.Uint32(fs.rotor)

	// Inode table.
	e.Uint32(uint32(len(fs.inodes)))
	for _, ip := range fs.inodes {
		e.Uint64(ip.ino)
		e.Uint32(ip.gen)
		e.Uint32(uint32(ip.ftype))
		e.Uint32(ip.mode)
		e.Uint32(ip.nlink)
		e.Uint32(ip.uid)
		e.Uint32(ip.gid)
		e.Uint64(ip.size)
		e.Int64(ip.atime.UnixNano())
		e.Int64(ip.mtime.UnixNano())
		e.Int64(ip.ctime.UnixNano())
		for _, bn := range ip.direct {
			e.Uint32(bn)
		}
		e.Uint32(ip.indirect)
		e.Uint32(ip.dindirect)
		e.Uint64(ip.nblocks)
		e.String(ip.linkTarget)
		e.Uint64(ip.parent.Ino)
		e.Uint32(ip.parent.Gen)
	}

	// Generation history (for inodes live and dead).
	e.Uint32(uint32(len(fs.gens)))
	for ino, gen := range fs.gens {
		e.Uint64(ino)
		e.Uint32(gen)
	}

	// Used blocks (excluding the reserved superblock).
	var used []uint32
	for bn := uint32(1); bn < fs.dev.NumBlocks(); bn++ {
		if fs.isUsed(bn) {
			used = append(used, bn)
		}
	}
	e.Uint32(uint32(len(used)))
	buf := fs.getBlockBuf()
	defer fs.putBlockBuf(buf)
	for _, bn := range used {
		if err := fs.dev.ReadBlock(bn, buf); err != nil {
			return fmt.Errorf("ffs: dump: reading block %d: %w", bn, err)
		}
		e.Uint32(bn)
		e.OpaqueFixed(buf)
	}

	_, err := w.Write(e.Bytes())
	return err
}

// Load reconstructs a filesystem from an image produced by Dump. The
// optional now function injects a clock (nil means time.Now).
func Load(r io.Reader, now func() time.Time) (*FFS, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("ffs: load: %w", err)
	}
	d := xdr.NewDecoder(data)
	magic := d.Opaque(64)
	if d.Err() != nil || string(magic) != string(imageMagic) {
		return nil, fmt.Errorf("ffs: load: not an FFS image")
	}
	blockSize := d.Uint32()
	numBlocks := d.Uint32()
	nextIno := d.Uint64()
	maxInodes := d.Uint64()
	rotor := d.Uint32()
	if d.Err() != nil {
		return nil, fmt.Errorf("ffs: load: truncated header: %w", d.Err())
	}

	fs, err := New(Config{
		BlockSize: int(blockSize),
		NumBlocks: numBlocks,
		MaxInodes: maxInodes,
		Now:       now,
	})
	if err != nil {
		return nil, err
	}
	// Discard the freshly formatted root; the image carries everything.
	fs.inodes = make(map[uint64]*inode)
	fs.gens = make(map[uint64]uint32)
	fs.freeBitmap = make([]uint64, (int(numBlocks)+63)/64)
	fs.markUsed(0)
	fs.freeBlocks = numBlocks - 1
	fs.nextIno = nextIno
	fs.rotor = rotor

	nInodes := d.Count(int(maxInodes) + 1)
	for i := 0; i < nInodes; i++ {
		ip := &inode{}
		ip.ino = d.Uint64()
		ip.gen = d.Uint32()
		ip.ftype = vfs.FileType(d.Uint32())
		ip.mode = d.Uint32()
		ip.nlink = d.Uint32()
		ip.uid = d.Uint32()
		ip.gid = d.Uint32()
		ip.size = d.Uint64()
		ip.atime = time.Unix(0, d.Int64())
		ip.mtime = time.Unix(0, d.Int64())
		ip.ctime = time.Unix(0, d.Int64())
		for j := range ip.direct {
			ip.direct[j] = d.Uint32()
		}
		ip.indirect = d.Uint32()
		ip.dindirect = d.Uint32()
		ip.nblocks = d.Uint64()
		ip.linkTarget = d.String(vfs.MaxNameLen * 8)
		ip.parent.Ino = d.Uint64()
		ip.parent.Gen = d.Uint32()
		if d.Err() != nil {
			return nil, fmt.Errorf("ffs: load: inode %d: %w", i, d.Err())
		}
		fs.inodes[ip.ino] = ip
	}

	nGens := d.Count(1 << 24)
	for i := 0; i < nGens; i++ {
		ino := d.Uint64()
		gen := d.Uint32()
		if d.Err() != nil {
			return nil, fmt.Errorf("ffs: load: generation table: %w", d.Err())
		}
		fs.gens[ino] = gen
	}

	nBlocks := d.Count(int(numBlocks))
	for i := 0; i < nBlocks; i++ {
		bn := d.Uint32()
		blk := d.OpaqueFixed(int(blockSize))
		if d.Err() != nil {
			return nil, fmt.Errorf("ffs: load: block %d: %w", i, d.Err())
		}
		if bn == 0 || bn >= numBlocks {
			return nil, fmt.Errorf("ffs: load: block number %d out of range", bn)
		}
		if fs.isUsed(bn) {
			return nil, fmt.Errorf("ffs: load: duplicate block %d", bn)
		}
		if err := fs.dev.WriteBlock(bn, blk); err != nil {
			return nil, fmt.Errorf("ffs: load: writing block %d: %w", bn, err)
		}
		fs.markUsed(bn)
		fs.freeBlocks--
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("ffs: load: %d trailing bytes", d.Remaining())
	}
	if _, ok := fs.inodes[1]; !ok {
		return nil, fmt.Errorf("ffs: load: image has no root inode")
	}
	return fs, nil
}
