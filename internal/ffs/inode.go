package ffs

import (
	"encoding/binary"
	"time"

	"discfs/internal/vfs"
)

// nDirect is the number of direct block pointers per inode, as in FFS.
const nDirect = 12

// inode is the in-core inode. Block pointer 0 means "unallocated" (block
// 0 is reserved for the superblock), so sparse files read as zeros.
//
// ino, gen and ftype are immutable after creation and may be read
// without the inode's lock; every other field is guarded by the inode's
// entry in the filesystem's lock table.
type inode struct {
	ino   uint64
	gen   uint32
	ftype vfs.FileType
	mode  uint32
	nlink uint32
	uid   uint32
	gid   uint32
	size  uint64
	atime time.Time
	mtime time.Time
	ctime time.Time

	direct    [nDirect]uint32
	indirect  uint32 // single-indirect block of pointers
	dindirect uint32 // double-indirect block

	// linkTarget holds symlink targets. FFS stores short targets in the
	// inode ("fast symlinks"); we keep all targets in-core.
	linkTarget string

	// parent is the containing directory (directories only; the root is
	// its own parent). It backs Lookup("..").
	parent vfs.Handle

	// nblocks counts allocated data+indirect blocks, for fattr and df.
	nblocks uint64

	// dead marks an inode freed by dropInode. Set under the inode's
	// exclusive lock, so an operation that waited out a concurrent
	// remove observes it on acquisition and answers ErrStale.
	dead bool
}

func (ip *inode) attr() vfs.Attr {
	return vfs.Attr{
		Handle: vfs.Handle{Ino: ip.ino, Gen: ip.gen},
		Type:   ip.ftype,
		Mode:   ip.mode,
		Nlink:  ip.nlink,
		UID:    ip.uid,
		GID:    ip.gid,
		Size:   ip.size,
		Blocks: ip.nblocks,
		Atime:  ip.atime,
		Mtime:  ip.mtime,
		Ctime:  ip.ctime,
	}
}

// ptrsPerBlock returns how many block pointers fit one block.
func (fs *FFS) ptrsPerBlock() uint64 { return uint64(fs.blockSize) / 4 }

// maxBlocks returns the largest block index addressable by an inode.
func (fs *FFS) maxFileBlocks() uint64 {
	p := fs.ptrsPerBlock()
	return nDirect + p + p*p
}

// blockOfPtr reads pointer slot idx of indirect block bn.
func (fs *FFS) readPtr(bn uint32, idx uint64) (uint32, error) {
	buf := fs.getBlockBuf()
	defer fs.putBlockBuf(buf)
	if err := fs.dev.ReadBlock(bn, buf); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(buf[idx*4:]), nil
}

// writePtr sets pointer slot idx of indirect block bn.
func (fs *FFS) writePtr(bn uint32, idx uint64, val uint32) error {
	buf := fs.getBlockBuf()
	defer fs.putBlockBuf(buf)
	if err := fs.dev.ReadBlock(bn, buf); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(buf[idx*4:], val)
	return fs.dev.WriteBlock(bn, buf)
}

// bmap resolves logical block lbn of ip to a device block. When alloc is
// true, missing blocks (including indirect blocks) are allocated and the
// caller must hold ip's exclusive lock; read-only resolution needs the
// shared lock. Returns 0 for holes when alloc is false.
func (fs *FFS) bmap(ip *inode, lbn uint64, alloc bool) (uint32, error) {
	p := fs.ptrsPerBlock()
	switch {
	case lbn < nDirect:
		bn := ip.direct[lbn]
		if bn == 0 && alloc {
			var err error
			bn, err = fs.allocBlock(ip)
			if err != nil {
				return 0, err
			}
			ip.direct[lbn] = bn
		}
		return bn, nil

	case lbn < nDirect+p:
		if ip.indirect == 0 {
			if !alloc {
				return 0, nil
			}
			bn, err := fs.allocBlock(ip)
			if err != nil {
				return 0, err
			}
			ip.indirect = bn
		}
		idx := lbn - nDirect
		bn, err := fs.readPtr(ip.indirect, idx)
		if err != nil {
			return 0, err
		}
		if bn == 0 && alloc {
			bn, err = fs.allocBlock(ip)
			if err != nil {
				return 0, err
			}
			if err := fs.writePtr(ip.indirect, idx, bn); err != nil {
				return 0, err
			}
		}
		return bn, nil

	case lbn < nDirect+p+p*p:
		if ip.dindirect == 0 {
			if !alloc {
				return 0, nil
			}
			bn, err := fs.allocBlock(ip)
			if err != nil {
				return 0, err
			}
			ip.dindirect = bn
		}
		rel := lbn - nDirect - p
		l1, l2 := rel/p, rel%p
		mid, err := fs.readPtr(ip.dindirect, l1)
		if err != nil {
			return 0, err
		}
		if mid == 0 {
			if !alloc {
				return 0, nil
			}
			mid, err = fs.allocBlock(ip)
			if err != nil {
				return 0, err
			}
			if err := fs.writePtr(ip.dindirect, l1, mid); err != nil {
				return 0, err
			}
		}
		bn, err := fs.readPtr(mid, l2)
		if err != nil {
			return 0, err
		}
		if bn == 0 && alloc {
			bn, err = fs.allocBlock(ip)
			if err != nil {
				return 0, err
			}
			if err := fs.writePtr(mid, l2, bn); err != nil {
				return 0, err
			}
		}
		return bn, nil
	}
	return 0, vfs.ErrFBig
}

// truncateTo frees blocks beyond newSize and updates ip.size. The
// caller holds ip's exclusive lock.
func (fs *FFS) truncateTo(ip *inode, newSize uint64) error {
	if newSize >= ip.size {
		ip.size = newSize
		return nil
	}
	p := fs.ptrsPerBlock()
	bs := uint64(fs.blockSize)
	keep := (newSize + bs - 1) / bs // first logical block to free

	// Zero the tail of the last kept block so a later grow reads zeros.
	if newSize%bs != 0 {
		if bn, err := fs.bmap(ip, newSize/bs, false); err != nil {
			return err
		} else if bn != 0 {
			buf := fs.getBlockBuf()
			if err := fs.dev.ReadBlock(bn, buf); err != nil {
				fs.putBlockBuf(buf)
				return err
			}
			for i := newSize % bs; i < bs; i++ {
				buf[i] = 0
			}
			err := fs.dev.WriteBlock(bn, buf)
			fs.putBlockBuf(buf)
			if err != nil {
				return err
			}
		}
	}

	// Direct blocks.
	for l := keep; l < nDirect; l++ {
		if ip.direct[l] != 0 {
			fs.freeBlock(ip, ip.direct[l])
			ip.direct[l] = 0
		}
	}
	// Single indirect.
	if ip.indirect != 0 {
		start := uint64(0)
		if keep > nDirect {
			start = keep - nDirect
		}
		if start < p {
			for i := start; i < p; i++ {
				bn, err := fs.readPtr(ip.indirect, i)
				if err != nil {
					return err
				}
				if bn != 0 {
					fs.freeBlock(ip, bn)
					if err := fs.writePtr(ip.indirect, i, 0); err != nil {
						return err
					}
				}
			}
		}
		if start == 0 {
			fs.freeBlock(ip, ip.indirect)
			ip.indirect = 0
		}
	}
	// Double indirect.
	if ip.dindirect != 0 {
		start := uint64(0)
		if keep > nDirect+p {
			start = keep - nDirect - p
		}
		for l1 := uint64(0); l1 < p; l1++ {
			mid, err := fs.readPtr(ip.dindirect, l1)
			if err != nil {
				return err
			}
			if mid == 0 {
				continue
			}
			lo, hi := l1*p, (l1+1)*p
			if start >= hi {
				continue // fully retained
			}
			from := uint64(0)
			if start > lo {
				from = start - lo
			}
			for l2 := from; l2 < p; l2++ {
				bn, err := fs.readPtr(mid, l2)
				if err != nil {
					return err
				}
				if bn != 0 {
					fs.freeBlock(ip, bn)
					if err := fs.writePtr(mid, l2, 0); err != nil {
						return err
					}
				}
			}
			if from == 0 {
				fs.freeBlock(ip, mid)
				if err := fs.writePtr(ip.dindirect, l1, 0); err != nil {
					return err
				}
			}
		}
		if start == 0 {
			fs.freeBlock(ip, ip.dindirect)
			ip.dindirect = 0
		}
	}
	ip.size = newSize
	return nil
}

// freeAllBlocks releases every block of ip (used when the inode dies).
func (fs *FFS) freeAllBlocks(ip *inode) error {
	return fs.truncateTo(ip, 0)
}
