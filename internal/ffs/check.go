package ffs

import (
	"fmt"

	"discfs/internal/vfs"
)

// Check runs fsck-style invariant verification and returns every
// inconsistency found. Property tests call it after random operation
// sequences; a healthy filesystem returns nil.
//
// Invariants checked:
//  1. Every block referenced by an inode (data, indirect, double
//     indirect) is marked used in the allocator bitmap, and no block is
//     referenced twice.
//  2. The allocator's free-block count matches the bitmap.
//  3. Every inode's nblocks equals its actual block usage.
//  4. Every inode reachable from the root has a link count equal to its
//     directory reference count (plus 2-for-self semantics for dirs).
//  5. Every directory entry points at a live inode with a matching
//     generation, and every live inode is reachable.
func (fs *FFS) Check() []error {
	// Quiesce the filesystem: Check needs a frozen view of the inode
	// table, the allocator and every file's block pointers at once.
	fs.quiesce.Lock()
	defer fs.quiesce.Unlock()

	var errs []error
	report := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf(format, args...))
	}

	// Walk every inode's block pointers.
	refs := make(map[uint32]uint64) // block -> referencing ino
	addRef := func(ino uint64, bn uint32) {
		if bn == 0 {
			return
		}
		if prev, dup := refs[bn]; dup {
			report("block %d referenced by both ino %d and ino %d", bn, prev, ino)
			return
		}
		refs[bn] = ino
		if !fs.isUsed(bn) {
			report("block %d referenced by ino %d but marked free", bn, ino)
		}
	}

	p := fs.ptrsPerBlock()
	for ino, ip := range fs.inodes {
		var used uint64
		count := func(bn uint32) {
			if bn != 0 {
				used++
				addRef(ino, bn)
			}
		}
		for _, bn := range ip.direct {
			count(bn)
		}
		if ip.indirect != 0 {
			count(ip.indirect)
			for i := uint64(0); i < p; i++ {
				bn, err := fs.readPtr(ip.indirect, i)
				if err != nil {
					report("ino %d: reading indirect: %v", ino, err)
					break
				}
				count(bn)
			}
		}
		if ip.dindirect != 0 {
			count(ip.dindirect)
			for i := uint64(0); i < p; i++ {
				mid, err := fs.readPtr(ip.dindirect, i)
				if err != nil {
					report("ino %d: reading dindirect: %v", ino, err)
					break
				}
				if mid == 0 {
					continue
				}
				count(mid)
				for j := uint64(0); j < p; j++ {
					bn, err := fs.readPtr(mid, j)
					if err != nil {
						report("ino %d: reading dindirect L2: %v", ino, err)
						break
					}
					count(bn)
				}
			}
		}
		if used != ip.nblocks {
			report("ino %d: nblocks=%d but %d blocks in use", ino, ip.nblocks, used)
		}
	}

	// Bitmap vs free count.
	var usedBits uint32
	for bn := uint32(0); bn < fs.dev.NumBlocks(); bn++ {
		if fs.isUsed(bn) {
			usedBits++
		}
	}
	if got := fs.dev.NumBlocks() - usedBits; got != fs.freeBlocks {
		report("free count %d but bitmap says %d", fs.freeBlocks, got)
	}
	// Every used block except the superblock must be referenced.
	for bn := uint32(1); bn < fs.dev.NumBlocks(); bn++ {
		if fs.isUsed(bn) {
			if _, ok := refs[bn]; !ok {
				report("block %d marked used but unreferenced", bn)
			}
		}
	}

	// Reachability and link counts.
	type linkInfo struct{ fromDirs uint32 }
	links := make(map[uint64]*linkInfo, len(fs.inodes))
	for ino := range fs.inodes {
		links[ino] = &linkInfo{}
	}
	visited := make(map[uint64]bool)
	var walk func(ip *inode)
	walk = func(dir *inode) {
		if visited[dir.ino] {
			report("directory ino %d reached twice (cycle or extra link)", dir.ino)
			return
		}
		visited[dir.ino] = true
		ents, err := fs.readDirLocked(dir)
		if err != nil {
			report("ino %d: readdir: %v", dir.ino, err)
			return
		}
		seen := make(map[string]bool, len(ents))
		for _, e := range ents {
			if seen[e.Name] {
				report("ino %d: duplicate entry %q", dir.ino, e.Name)
			}
			seen[e.Name] = true
			child, ok := fs.inodes[e.Handle.Ino]
			if !ok {
				report("ino %d: entry %q points at dead ino %d", dir.ino, e.Name, e.Handle.Ino)
				continue
			}
			if child.gen != e.Handle.Gen {
				report("ino %d: entry %q has gen %d, inode has %d", dir.ino, e.Name, e.Handle.Gen, child.gen)
				continue
			}
			links[child.ino].fromDirs++
			if child.ftype == vfs.TypeDir {
				if child.parent.Ino != dir.ino || child.parent.Gen != dir.gen {
					report("ino %d: parent pointer is (%d,%d), want (%d,%d)",
						child.ino, child.parent.Ino, child.parent.Gen, dir.ino, dir.gen)
				}
				walk(child)
			}
		}
	}
	root, ok := fs.inodes[1]
	if !ok {
		report("no root inode")
		return errs
	}
	links[1].fromDirs++ // the implicit self-reference of the root
	walk(root)

	for ino, ip := range fs.inodes {
		if !visited[ino] && ip.ftype == vfs.TypeDir {
			report("directory ino %d unreachable", ino)
		}
		want := links[ino].fromDirs
		if ip.ftype == vfs.TypeDir {
			// "." self link plus one ".." per subdirectory.
			want++ // "."
			ents, err := fs.readDirLocked(ip)
			if err == nil {
				for _, e := range ents {
					if c, ok := fs.inodes[e.Handle.Ino]; ok && c.ftype == vfs.TypeDir {
						want++
					}
				}
			}
			// Stored entries already counted one parent ref; the root
			// counted its self-reference above.
		}
		if ip.ftype != vfs.TypeDir && want == 0 {
			report("ino %d (type %d) unreachable", ino, ip.ftype)
		}
		if ip.nlink != want {
			report("ino %d: nlink=%d, want %d", ino, ip.nlink, want)
		}
	}
	return errs
}
