package ffs

import (
	"bytes"
	"testing"

	"discfs/internal/vfs"
)

// TestReadIntoMatchesRead drives ReadInto across alignments, holes and
// EOF and checks it agrees byte-for-byte with Read.
func TestReadIntoMatchesRead(t *testing.T) {
	fs, err := New(Config{BlockSize: 512, NumBlocks: 4096})
	if err != nil {
		t.Fatal(err)
	}
	root := fs.Root()
	attr, err := fs.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	h := attr.Handle
	// Content with a hole: [0,700) data, hole to 2048, [2048,3000) data.
	head := bytes.Repeat([]byte{0xA1}, 700)
	tail := bytes.Repeat([]byte{0xB2}, 952)
	if _, err := fs.Write(h, 0, head); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.SetAttr(h, vfs.SetAttr{Size: ptr(uint64(2048))}); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(h, 2048, tail); err != nil {
		t.Fatal(err)
	}

	for _, tc := range []struct {
		off uint64
		n   int
	}{
		{0, 512},    // aligned full block
		{0, 3000},   // whole file
		{100, 700},  // straddles data/hole
		{512, 1536}, // aligned span over the hole
		{700, 100},  // inside the hole
		{2999, 10},  // clamped at EOF
		{3000, 10},  // at EOF
		{9999, 10},  // beyond EOF
		{1, 2998},   // everything unaligned
	} {
		want, wantEOF, err := fs.Read(h, tc.off, uint32(tc.n))
		if err != nil {
			t.Fatalf("Read(%d,%d): %v", tc.off, tc.n, err)
		}
		dst := bytes.Repeat([]byte{0xFF}, tc.n) // dirty, to catch unwritten spans
		n, eof, err := fs.ReadInto(h, tc.off, dst)
		if err != nil {
			t.Fatalf("ReadInto(%d,%d): %v", tc.off, tc.n, err)
		}
		if n != len(want) || eof != wantEOF {
			t.Fatalf("ReadInto(%d,%d) = (%d,%v), Read = (%d,%v)", tc.off, tc.n, n, eof, len(want), wantEOF)
		}
		if !bytes.Equal(dst[:n], want) {
			t.Fatalf("ReadInto(%d,%d) content mismatch", tc.off, tc.n)
		}
	}
}

// TestLargeSingleCallWrite: the store accepts a multi-megabyte write in
// one call (the negotiated data plane issues 512 KiB and larger writes
// without chunking at the vfs boundary).
func TestLargeSingleCallWrite(t *testing.T) {
	fs, err := New(Config{BlockSize: 8192, NumBlocks: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	attr, err := fs.Create(fs.Root(), "big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 2<<20+333)
	for i := range data {
		data[i] = byte(i * 11)
	}
	if _, err := fs.Write(attr.Handle, 0, data); err != nil {
		t.Fatalf("2 MiB single write: %v", err)
	}
	got := make([]byte, len(data))
	n, eof, err := fs.ReadInto(attr.Handle, 0, got)
	if err != nil || n != len(data) || !eof {
		t.Fatalf("ReadInto: n=%d eof=%v err=%v", n, eof, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("large write corrupted")
	}
}

func ptr[T any](v T) *T { return &v }
