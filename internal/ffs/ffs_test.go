package ffs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"discfs/internal/vfs"
)

// newFS creates a small test filesystem.
func newFS(t *testing.T) *FFS {
	t.Helper()
	fs, err := New(Config{BlockSize: 1024, NumBlocks: 4096})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return fs
}

// mustCheck fails the test if fsck finds inconsistencies.
func mustCheck(t *testing.T, fs *FFS) {
	t.Helper()
	if errs := fs.Check(); len(errs) != 0 {
		for _, e := range errs {
			t.Errorf("fsck: %v", e)
		}
		t.FailNow()
	}
}

func TestFormatAndRoot(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	attr, err := fs.GetAttr(root)
	if err != nil {
		t.Fatalf("GetAttr(root): %v", err)
	}
	if attr.Type != vfs.TypeDir {
		t.Errorf("root type = %v", attr.Type)
	}
	if attr.Nlink != 2 {
		t.Errorf("root nlink = %d, want 2", attr.Nlink)
	}
	mustCheck(t, fs)
}

func TestCreateWriteRead(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	attr, err := fs.Create(root, "hello.txt", 0o644)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	msg := []byte("hello, distributed world")
	if _, err := fs.Write(attr.Handle, 0, msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, eof, err := fs.Read(attr.Handle, 0, 100)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("read = %q, want %q", got, msg)
	}
	if !eof {
		t.Error("eof = false at end of file")
	}
	// Partial read.
	got, eof, err = fs.Read(attr.Handle, 7, 11)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if string(got) != "distributed" || eof {
		t.Errorf("partial read = %q eof=%v", got, eof)
	}
	// Lookup finds it.
	found, err := fs.Lookup(root, "hello.txt")
	if err != nil {
		t.Fatalf("Lookup: %v", err)
	}
	if found.Handle != attr.Handle {
		t.Error("lookup returned different handle")
	}
	mustCheck(t, fs)
}

func TestWriteAcrossBlockBoundaries(t *testing.T) {
	fs := newFS(t) // 1 KiB blocks
	root := fs.Root()
	attr, err := fs.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 7)
	}
	// Write in odd-sized chunks at odd offsets.
	for off := 0; off < len(data); off += 777 {
		end := off + 777
		if end > len(data) {
			end = len(data)
		}
		if _, err := fs.Write(attr.Handle, uint64(off), data[off:end]); err != nil {
			t.Fatalf("Write(%d): %v", off, err)
		}
	}
	got, _, err := fs.Read(attr.Handle, 0, 6000)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("cross-block write corrupted data")
	}
	mustCheck(t, fs)
}

func TestLargeFileThroughIndirectBlocks(t *testing.T) {
	fs := newFS(t) // 1 KiB blocks → 12 KiB direct, 256 KiB single-indirect
	root := fs.Root()
	attr, err := fs.Create(root, "big", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// 300 KiB reaches into the double-indirect range
	// (12 + 256 direct+indirect KiB < 300 KiB).
	size := 300 * 1024
	data := make([]byte, size)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(data)
	if _, err := fs.Write(attr.Handle, 0, data); err != nil {
		t.Fatalf("Write: %v", err)
	}
	a, err := fs.GetAttr(attr.Handle)
	if err != nil {
		t.Fatal(err)
	}
	if a.Size != uint64(size) {
		t.Errorf("size = %d, want %d", a.Size, size)
	}
	// Read in 8 KiB chunks.
	var got []byte
	for off := uint64(0); off < uint64(size); {
		chunk, eof, err := fs.Read(attr.Handle, off, 8192)
		if err != nil {
			t.Fatalf("Read(%d): %v", off, err)
		}
		got = append(got, chunk...)
		off += uint64(len(chunk))
		if eof {
			break
		}
	}
	if !bytes.Equal(got, data) {
		t.Error("large file corrupted")
	}
	mustCheck(t, fs)

	// Truncate back to zero must free every block.
	free0, _ := fs.StatFS()
	zero := uint64(0)
	if _, err := fs.SetAttr(attr.Handle, vfs.SetAttr{Size: &zero}); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	free1, _ := fs.StatFS()
	if free1.FreeBlocks <= free0.FreeBlocks {
		t.Errorf("truncate freed no blocks: %d -> %d", free0.FreeBlocks, free1.FreeBlocks)
	}
	mustCheck(t, fs)
}

func TestSparseFileReadsZeros(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	attr, _ := fs.Create(root, "sparse", 0o644)
	// Write one byte far into the file.
	if _, err := fs.Write(attr.Handle, 100*1024, []byte{0xff}); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, _, err := fs.Read(attr.Handle, 50*1024, 16)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatalf("hole read nonzero byte %x", b)
		}
	}
	a, _ := fs.GetAttr(attr.Handle)
	if a.Size != 100*1024+1 {
		t.Errorf("size = %d", a.Size)
	}
	// The hole must not consume 100 KiB of blocks.
	if a.Blocks > 5 {
		t.Errorf("sparse file used %d blocks", a.Blocks)
	}
	mustCheck(t, fs)
}

func TestTruncateGrowAndShrink(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	attr, _ := fs.Create(root, "t", 0o644)
	if _, err := fs.Write(attr.Handle, 0, bytes.Repeat([]byte("x"), 3000)); err != nil {
		t.Fatal(err)
	}
	sz := uint64(1000)
	if _, err := fs.SetAttr(attr.Handle, vfs.SetAttr{Size: &sz}); err != nil {
		t.Fatal(err)
	}
	got, eof, err := fs.Read(attr.Handle, 0, 5000)
	if err != nil || !eof {
		t.Fatalf("Read: %v eof=%v", err, eof)
	}
	if len(got) != 1000 {
		t.Errorf("after shrink, len = %d", len(got))
	}
	// Grow: the extended range reads as zeros.
	sz = 2000
	if _, err := fs.SetAttr(attr.Handle, vfs.SetAttr{Size: &sz}); err != nil {
		t.Fatal(err)
	}
	got, _, err = fs.Read(attr.Handle, 1000, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatalf("grown region nonzero")
		}
	}
	mustCheck(t, fs)
}

func TestRemoveFreesSpace(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	before, _ := fs.StatFS()
	attr, _ := fs.Create(root, "f", 0o644)
	if _, err := fs.Write(attr.Handle, 0, make([]byte, 50*1024)); err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(root, "f"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	after, _ := fs.StatFS()
	// Root directory may have grown a block for the entry; allow 1 block
	// of slack.
	if after.FreeBlocks+1 < before.FreeBlocks {
		t.Errorf("blocks leaked: %d free before, %d after", before.FreeBlocks, after.FreeBlocks)
	}
	if _, err := fs.Lookup(root, "f"); !errors.Is(err, vfs.ErrNotExist) {
		t.Errorf("lookup after remove = %v", err)
	}
	// The handle is now stale.
	if _, err := fs.GetAttr(attr.Handle); !errors.Is(err, vfs.ErrStale) {
		t.Errorf("GetAttr on removed file = %v, want ErrStale", err)
	}
	mustCheck(t, fs)
}

func TestGenerationPreventsHandleReuse(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	a1, _ := fs.Create(root, "a", 0o644)
	if err := fs.Remove(root, "a"); err != nil {
		t.Fatal(err)
	}
	// Even if a new file gets the same ino, the old handle must not
	// resolve to it.
	for i := 0; i < 10; i++ {
		fs.Create(root, fmt.Sprintf("b%d", i), 0o644)
	}
	if _, err := fs.GetAttr(a1.Handle); !errors.Is(err, vfs.ErrStale) {
		t.Errorf("stale handle resolved: %v", err)
	}
	mustCheck(t, fs)
}

func TestMkdirRmdir(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	d, err := fs.Mkdir(root, "sub", 0o755)
	if err != nil {
		t.Fatalf("Mkdir: %v", err)
	}
	rootAttr, _ := fs.GetAttr(root)
	if rootAttr.Nlink != 3 {
		t.Errorf("root nlink = %d, want 3 after mkdir", rootAttr.Nlink)
	}
	if d.Nlink != 2 {
		t.Errorf("new dir nlink = %d, want 2", d.Nlink)
	}
	// Lookup "." and "..".
	dot, err := fs.Lookup(d.Handle, ".")
	if err != nil || dot.Handle != d.Handle {
		t.Errorf("lookup . = %v, %v", dot.Handle, err)
	}
	dotdot, err := fs.Lookup(d.Handle, "..")
	if err != nil || dotdot.Handle != root {
		t.Errorf("lookup .. = %v, %v", dotdot.Handle, err)
	}
	// Rmdir of non-empty must fail.
	if _, err := fs.Create(d.Handle, "x", 0o644); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(root, "sub"); !errors.Is(err, vfs.ErrNotEmpty) {
		t.Errorf("rmdir non-empty = %v", err)
	}
	if err := fs.Remove(d.Handle, "x"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir(root, "sub"); err != nil {
		t.Fatalf("Rmdir: %v", err)
	}
	rootAttr, _ = fs.GetAttr(root)
	if rootAttr.Nlink != 2 {
		t.Errorf("root nlink = %d, want 2 after rmdir", rootAttr.Nlink)
	}
	mustCheck(t, fs)
}

func TestRemoveOnDirectoryFails(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	fs.Mkdir(root, "d", 0o755)
	if err := fs.Remove(root, "d"); !errors.Is(err, vfs.ErrIsDir) {
		t.Errorf("Remove(dir) = %v, want ErrIsDir", err)
	}
	fs.Create(root, "f", 0o644)
	if err := fs.Rmdir(root, "f"); !errors.Is(err, vfs.ErrNotDir) {
		t.Errorf("Rmdir(file) = %v, want ErrNotDir", err)
	}
}

func TestRenameBasic(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	attr, _ := fs.Create(root, "old", 0o644)
	fs.Write(attr.Handle, 0, []byte("payload"))
	if err := fs.Rename(root, "old", root, "new"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := fs.Lookup(root, "old"); !errors.Is(err, vfs.ErrNotExist) {
		t.Error("old name still present")
	}
	got, err := fs.Lookup(root, "new")
	if err != nil {
		t.Fatalf("Lookup(new): %v", err)
	}
	if got.Handle != attr.Handle {
		t.Error("rename changed the handle")
	}
	mustCheck(t, fs)
}

func TestRenameAcrossDirectories(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	d1, _ := fs.Mkdir(root, "d1", 0o755)
	d2, _ := fs.Mkdir(root, "d2", 0o755)
	f, _ := fs.Create(d1.Handle, "f", 0o644)
	if err := fs.Rename(d1.Handle, "f", d2.Handle, "g"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := fs.Lookup(d2.Handle, "g"); err != nil {
		t.Errorf("moved file missing: %v", err)
	}
	_ = f
	mustCheck(t, fs)

	// Moving a directory updates parent link counts and "..".
	sub, _ := fs.Mkdir(d1.Handle, "sub", 0o755)
	if err := fs.Rename(d1.Handle, "sub", d2.Handle, "sub"); err != nil {
		t.Fatalf("Rename(dir): %v", err)
	}
	dotdot, err := fs.Lookup(sub.Handle, "..")
	if err != nil || dotdot.Handle != d2.Handle {
		t.Errorf(".. after move = %v, want d2", dotdot.Handle)
	}
	a1, _ := fs.GetAttr(d1.Handle)
	a2, _ := fs.GetAttr(d2.Handle)
	if a1.Nlink != 2 || a2.Nlink != 3 {
		t.Errorf("nlink after dir move: d1=%d d2=%d, want 2,3", a1.Nlink, a2.Nlink)
	}
	mustCheck(t, fs)
}

func TestRenameReplacesTarget(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	src, _ := fs.Create(root, "src", 0o644)
	fs.Write(src.Handle, 0, []byte("source"))
	dst, _ := fs.Create(root, "dst", 0o644)
	fs.Write(dst.Handle, 0, []byte("victim"))
	if err := fs.Rename(root, "src", root, "dst"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	got, err := fs.Lookup(root, "dst")
	if err != nil || got.Handle != src.Handle {
		t.Errorf("dst = %v %v, want src handle", got.Handle, err)
	}
	if _, err := fs.GetAttr(dst.Handle); !errors.Is(err, vfs.ErrStale) {
		t.Error("replaced target still alive")
	}
	mustCheck(t, fs)
}

func TestRenameDirIntoOwnSubtreeFails(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	a, _ := fs.Mkdir(root, "a", 0o755)
	b, _ := fs.Mkdir(a.Handle, "b", 0o755)
	if err := fs.Rename(root, "a", b.Handle, "evil"); !errors.Is(err, vfs.ErrInval) {
		t.Errorf("rename into own subtree = %v, want ErrInval", err)
	}
	mustCheck(t, fs)
}

func TestHardLinks(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	f, _ := fs.Create(root, "f", 0o644)
	fs.Write(f.Handle, 0, []byte("shared"))
	l, err := fs.Link(root, "l", f.Handle)
	if err != nil {
		t.Fatalf("Link: %v", err)
	}
	if l.Nlink != 2 {
		t.Errorf("nlink = %d, want 2", l.Nlink)
	}
	// Content visible through both names.
	la, _ := fs.Lookup(root, "l")
	got, _, _ := fs.Read(la.Handle, 0, 100)
	if string(got) != "shared" {
		t.Errorf("link content = %q", got)
	}
	// Removing one name keeps the file.
	if err := fs.Remove(root, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.GetAttr(f.Handle); err != nil {
		t.Errorf("file died with one link left: %v", err)
	}
	if err := fs.Remove(root, "l"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.GetAttr(f.Handle); !errors.Is(err, vfs.ErrStale) {
		t.Error("file survived last unlink")
	}
	mustCheck(t, fs)

	// Hard links to directories are forbidden.
	d, _ := fs.Mkdir(root, "d", 0o755)
	if _, err := fs.Link(root, "dl", d.Handle); !errors.Is(err, vfs.ErrIsDir) {
		t.Errorf("Link(dir) = %v, want ErrIsDir", err)
	}
}

func TestSymlinks(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	s, err := fs.Symlink(root, "s", "/target/path", 0o777)
	if err != nil {
		t.Fatalf("Symlink: %v", err)
	}
	if s.Type != vfs.TypeSymlink {
		t.Errorf("type = %v", s.Type)
	}
	target, err := fs.Readlink(s.Handle)
	if err != nil || target != "/target/path" {
		t.Errorf("Readlink = %q, %v", target, err)
	}
	f, _ := fs.Create(root, "f", 0o644)
	if _, err := fs.Readlink(f.Handle); !errors.Is(err, vfs.ErrInval) {
		t.Errorf("Readlink(file) = %v, want ErrInval", err)
	}
	mustCheck(t, fs)
}

func TestReadDir(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	names := []string{"a", "bb", "ccc", "dddd"}
	for _, n := range names {
		if _, err := fs.Create(root, n, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := fs.ReadDir(root)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	if len(ents) != len(names) {
		t.Fatalf("got %d entries, want %d", len(ents), len(names))
	}
	seen := map[string]bool{}
	for _, e := range ents {
		seen[e.Name] = true
	}
	for _, n := range names {
		if !seen[n] {
			t.Errorf("missing entry %q", n)
		}
	}
}

func TestNameValidation(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	for _, bad := range []string{"", ".", "..", "a/b", "nul\x00byte"} {
		if _, err := fs.Create(root, bad, 0o644); err == nil {
			t.Errorf("Create(%q) succeeded", bad)
		}
	}
	long := string(bytes.Repeat([]byte("n"), 300))
	if _, err := fs.Create(root, long, 0o644); !errors.Is(err, vfs.ErrNameTooLong) {
		t.Errorf("long name = %v, want ErrNameTooLong", err)
	}
	if _, err := fs.Create(root, "ok name.txt", 0o644); err != nil {
		t.Errorf("valid name rejected: %v", err)
	}
}

func TestDuplicateCreateFails(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	if _, err := fs.Create(root, "f", 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(root, "f", 0o644); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("duplicate create = %v, want ErrExist", err)
	}
	if _, err := fs.Mkdir(root, "f", 0o755); !errors.Is(err, vfs.ErrExist) {
		t.Errorf("mkdir over file = %v, want ErrExist", err)
	}
}

func TestOutOfSpace(t *testing.T) {
	fs, err := New(Config{BlockSize: 512, NumBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	root := fs.Root()
	attr, err := fs.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, err = fs.Write(attr.Handle, 0, make([]byte, 64*1024))
	if !errors.Is(err, vfs.ErrNoSpace) {
		t.Errorf("huge write = %v, want ErrNoSpace", err)
	}
}

func TestSetAttrModeAndTimes(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	attr, _ := fs.Create(root, "f", 0o644)
	mode := uint32(0o600)
	got, err := fs.SetAttr(attr.Handle, vfs.SetAttr{Mode: &mode})
	if err != nil {
		t.Fatalf("SetAttr: %v", err)
	}
	if got.Mode != 0o600 {
		t.Errorf("mode = %o", got.Mode)
	}
	uid, gid := uint32(1000), uint32(100)
	got, err = fs.SetAttr(attr.Handle, vfs.SetAttr{UID: &uid, GID: &gid})
	if err != nil || got.UID != 1000 || got.GID != 100 {
		t.Errorf("uid/gid = %d/%d, %v", got.UID, got.GID, err)
	}
}

func TestStatFS(t *testing.T) {
	fs := newFS(t)
	s, err := fs.StatFS()
	if err != nil {
		t.Fatal(err)
	}
	if s.BlockSize != 1024 || s.TotalBlocks != 4096 {
		t.Errorf("statfs = %+v", s)
	}
	if s.FreeBlocks >= s.TotalBlocks {
		t.Errorf("free %d >= total %d", s.FreeBlocks, s.TotalBlocks)
	}
}

// TestRandomOperationsPreserveInvariants drives the filesystem with a
// random operation mix and runs fsck afterwards — the core property test.
func TestRandomOperationsPreserveInvariants(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	rng := rand.New(rand.NewSource(99))
	dirs := []vfs.Handle{root}
	type file struct {
		dir  vfs.Handle
		name string
	}
	var files []file
	nameCtr := 0
	newName := func() string {
		nameCtr++
		return fmt.Sprintf("n%04d", nameCtr)
	}
	for i := 0; i < 2000; i++ {
		switch op := rng.Intn(10); {
		case op < 3: // create
			d := dirs[rng.Intn(len(dirs))]
			n := newName()
			if _, err := fs.Create(d, n, 0o644); err == nil {
				files = append(files, file{d, n})
			}
		case op < 5 && len(files) > 0: // write
			f := files[rng.Intn(len(files))]
			if a, err := fs.Lookup(f.dir, f.name); err == nil {
				data := make([]byte, rng.Intn(4096))
				rng.Read(data)
				fs.Write(a.Handle, uint64(rng.Intn(8192)), data)
			}
		case op < 6: // mkdir
			d := dirs[rng.Intn(len(dirs))]
			if a, err := fs.Mkdir(d, newName(), 0o755); err == nil {
				dirs = append(dirs, a.Handle)
			}
		case op < 8 && len(files) > 0: // remove
			i := rng.Intn(len(files))
			f := files[i]
			if err := fs.Remove(f.dir, f.name); err == nil {
				files = append(files[:i], files[i+1:]...)
			}
		case op < 9 && len(files) > 0: // rename
			i := rng.Intn(len(files))
			f := files[i]
			to := dirs[rng.Intn(len(dirs))]
			n := newName()
			if err := fs.Rename(f.dir, f.name, to, n); err == nil {
				files[i] = file{to, n}
			}
		default: // truncate
			if len(files) == 0 {
				continue
			}
			f := files[rng.Intn(len(files))]
			if a, err := fs.Lookup(f.dir, f.name); err == nil {
				sz := uint64(rng.Intn(10000))
				fs.SetAttr(a.Handle, vfs.SetAttr{Size: &sz})
			}
		}
		if i%500 == 499 {
			mustCheck(t, fs)
		}
	}
	mustCheck(t, fs)
}

func TestConcurrentAccess(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			for i := 0; i < 40; i++ {
				name := fmt.Sprintf("g%d-f%d", g, i)
				a, err := fs.Create(root, name, 0o644)
				if err != nil {
					done <- err
					return
				}
				if _, err := fs.Write(a.Handle, 0, []byte(name)); err != nil {
					done <- err
					return
				}
				got, _, err := fs.Read(a.Handle, 0, 64)
				if err != nil || string(got) != name {
					done <- fmt.Errorf("read %q, %v", got, err)
					return
				}
				if err := fs.Remove(root, name); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatalf("goroutine: %v", err)
		}
	}
	mustCheck(t, fs)
}

func TestDiskModelCharges(t *testing.T) {
	dev := NewMemDevice(512, 64, DiskModel{BytesPerSecond: 1 << 30})
	buf := make([]byte, 512)
	if err := dev.WriteBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadBlock(3, buf); err != nil {
		t.Fatal(err)
	}
	// Out-of-range accesses fail.
	if err := dev.ReadBlock(64, buf); err == nil {
		t.Error("read beyond device succeeded")
	}
	if err := dev.WriteBlock(64, buf); err == nil {
		t.Error("write beyond device succeeded")
	}
}
