package ffs

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"discfs/internal/vfs"
)

// buildPopulated makes a filesystem with directories, files, links, a
// symlink, a sparse file, and some deleted inodes (to exercise the
// generation table).
func buildPopulated(t *testing.T) *FFS {
	t.Helper()
	fs := newFS(t)
	root := fs.Root()
	docs, err := fs.Mkdir(root, "docs", 0o755)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		a, err := fs.Create(docs.Handle, fmt.Sprintf("f%d.txt", i), 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Write(a.Handle, 0, bytes.Repeat([]byte{byte(i)}, 100*(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	big, _ := fs.Create(root, "big", 0o644)
	fs.Write(big.Handle, 0, bytes.Repeat([]byte("B"), 40*1024)) // through indirects
	sparse, _ := fs.Create(root, "sparse", 0o644)
	fs.Write(sparse.Handle, 90000, []byte("end"))
	orig, _ := fs.Create(root, "orig", 0o600)
	fs.Write(orig.Handle, 0, []byte("linked"))
	fs.Link(root, "alias", orig.Handle)
	fs.Symlink(root, "sym", "/target/elsewhere", 0o777)
	// Delete a file so its generation history matters.
	doomed, _ := fs.Create(root, "doomed", 0o644)
	fs.Remove(root, "doomed")
	_ = doomed
	return fs
}

func TestDumpLoadRoundTrip(t *testing.T) {
	fs := buildPopulated(t)
	mustCheck(t, fs)

	var img bytes.Buffer
	if err := fs.Dump(&img); err != nil {
		t.Fatalf("Dump: %v", err)
	}
	restored, err := Load(&img, nil)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	mustCheck(t, restored)

	// Same namespace and content.
	var walk func(orig, rest vfs.Handle, path string)
	walk = func(oh, rh vfs.Handle, path string) {
		oe, err := fs.ReadDir(oh)
		if err != nil {
			t.Fatalf("%s: orig readdir: %v", path, err)
		}
		re, err := restored.ReadDir(rh)
		if err != nil {
			t.Fatalf("%s: restored readdir: %v", path, err)
		}
		if len(oe) != len(re) {
			t.Fatalf("%s: %d vs %d entries", path, len(oe), len(re))
		}
		for _, e := range oe {
			oa, err := fs.Lookup(oh, e.Name)
			if err != nil {
				t.Fatal(err)
			}
			ra, err := restored.Lookup(rh, e.Name)
			if err != nil {
				t.Fatalf("%s/%s missing after restore: %v", path, e.Name, err)
			}
			if oa.Handle != ra.Handle || oa.Type != ra.Type || oa.Size != ra.Size ||
				oa.Mode != ra.Mode || oa.Nlink != ra.Nlink {
				t.Fatalf("%s/%s attr mismatch: %+v vs %+v", path, e.Name, oa, ra)
			}
			switch oa.Type {
			case vfs.TypeDir:
				walk(oa.Handle, ra.Handle, path+"/"+e.Name)
			case vfs.TypeRegular:
				od, _, err := fs.Read(oa.Handle, 0, uint32(oa.Size))
				if err != nil {
					t.Fatal(err)
				}
				rd, _, err := restored.Read(ra.Handle, 0, uint32(ra.Size))
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(od, rd) {
					t.Fatalf("%s/%s content differs", path, e.Name)
				}
			case vfs.TypeSymlink:
				ot, _ := fs.Readlink(oa.Handle)
				rt, err := restored.Readlink(ra.Handle)
				if err != nil || ot != rt {
					t.Fatalf("%s/%s symlink differs: %q vs %q (%v)", path, e.Name, ot, rt, err)
				}
			}
		}
	}
	walk(fs.Root(), restored.Root(), "")

	// StatFS agrees on usage.
	so, _ := fs.StatFS()
	sr, _ := restored.StatFS()
	if so.FreeBlocks != sr.FreeBlocks || so.TotalBlocks != sr.TotalBlocks {
		t.Errorf("statfs differs: %+v vs %+v", so, sr)
	}
}

func TestLoadPreservesStaleHandles(t *testing.T) {
	fs := newFS(t)
	root := fs.Root()
	a, _ := fs.Create(root, "gone", 0o644)
	if err := fs.Remove(root, "gone"); err != nil {
		t.Fatal(err)
	}
	var img bytes.Buffer
	if err := fs.Dump(&img); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&img, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The old handle must still be stale — and a new file reusing the
	// ino must get a later generation.
	if _, err := restored.GetAttr(a.Handle); !errors.Is(err, vfs.ErrStale) {
		t.Errorf("stale handle resolved after restore: %v", err)
	}
	b, err := restored.Create(restored.Root(), "new", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if b.Handle == a.Handle {
		t.Error("restored filesystem reissued a dead handle")
	}
	mustCheck(t, restored)
}

func TestLoadContinuesOperating(t *testing.T) {
	fs := buildPopulated(t)
	var img bytes.Buffer
	if err := fs.Dump(&img); err != nil {
		t.Fatal(err)
	}
	restored, err := Load(&img, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The restored filesystem is fully operational.
	root := restored.Root()
	a, err := restored.Create(root, "post-restore", 0o644)
	if err != nil {
		t.Fatalf("create after restore: %v", err)
	}
	if _, err := restored.Write(a.Handle, 0, []byte("works")); err != nil {
		t.Fatalf("write after restore: %v", err)
	}
	got, _, err := restored.Read(a.Handle, 0, 16)
	if err != nil || string(got) != "works" {
		t.Errorf("read after restore: %q, %v", got, err)
	}
	if err := restored.Remove(root, "big"); err != nil {
		t.Fatalf("remove after restore: %v", err)
	}
	mustCheck(t, restored)
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": []byte("not an image at all, definitely not"),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data), nil); err == nil {
			t.Errorf("%s: Load succeeded", name)
		}
	}
	// Truncated image: cut a valid image in half.
	fs := buildPopulated(t)
	var img bytes.Buffer
	if err := fs.Dump(&img); err != nil {
		t.Fatal(err)
	}
	half := img.Bytes()[:img.Len()/2]
	if _, err := Load(bytes.NewReader(half), nil); err == nil {
		t.Error("truncated image loaded")
	}
	// Trailing garbage.
	full := append(append([]byte{}, img.Bytes()...), 0xde, 0xad)
	if _, err := Load(bytes.NewReader(full), nil); err == nil {
		t.Error("image with trailing bytes loaded")
	}
}
