package ffs

import (
	"sync"
	"testing"

	"discfs/internal/vfs"
)

// TestLockTableRefcounting: entries exist only while pinned.
func TestLockTableRefcounting(t *testing.T) {
	var lt lockTable
	lt.init()
	l1 := lt.pin(42)
	l2 := lt.pin(42)
	if l1 != l2 {
		t.Fatal("same ino pinned twice returned different entries")
	}
	if got := lt.entries(); got != 1 {
		t.Fatalf("entries = %d, want 1", got)
	}
	lt.unpin(42, l1)
	if got := lt.entries(); got != 1 {
		t.Fatalf("entries after one unpin = %d, want 1", got)
	}
	lt.unpin(42, l2)
	if got := lt.entries(); got != 0 {
		t.Fatalf("entries after both unpins = %d, want 0", got)
	}
}

// TestLockTableStorm: concurrent pin/lock/unlock across overlapping
// inode sets leaves the table empty, and the locks actually exclude —
// counters guarded by the table's locks stay exact (run with -race).
func TestLockTableStorm(t *testing.T) {
	var lt lockTable
	lt.init()
	const workers = 16
	const ops = 2000
	var counters [37]int
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				ino := uint64((w + i) % len(counters))
				l := lt.pin(ino)
				if i%3 == 0 {
					l.mu.Lock()
					counters[ino]++
					l.mu.Unlock()
				} else {
					l.mu.RLock()
					_ = counters[ino]
					l.mu.RUnlock()
				}
				lt.unpin(ino, l)
			}
		}(w)
	}
	wg.Wait()
	if got := lt.entries(); got != 0 {
		t.Fatalf("entries after storm = %d, want 0", got)
	}
	total := 0
	for _, c := range counters {
		total += c
	}
	if want := workers * ((ops + 2) / 3); total != want {
		t.Fatalf("guarded counter total = %d, want %d (lost increments = broken exclusion)", total, want)
	}
}

// TestStaleAfterRemoveWhileWaiting: an operation that waits out a
// remove observes the dead inode and answers ErrStale.
func TestStaleAfterRemoveWhileWaiting(t *testing.T) {
	fs, err := New(Config{BlockSize: 1024, NumBlocks: 1024})
	if err != nil {
		t.Fatal(err)
	}
	a, err := fs.Create(fs.Root(), "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Remove(fs.Root(), "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(a.Handle, 0, []byte("x")); err != vfs.ErrStale {
		t.Fatalf("Write to removed file = %v, want ErrStale", err)
	}
	if _, _, err := fs.Read(a.Handle, 0, 1); err != vfs.ErrStale {
		t.Fatalf("Read of removed file = %v, want ErrStale", err)
	}
}
