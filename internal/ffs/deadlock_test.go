package ffs

// Deadlock regression for the ordered-lock discipline: adversarial
// rename cycles (a↔b swaps within and across directories, directory
// renames, removes and hard links over the same names) from 8 workers,
// guarded by a watchdog. Before the renameMu + canonical child order
// discipline, these interleavings could deadlock (e.g. a rename
// locking its target file while a remove holding the source directory
// waits on it). The test's only assertions are: it finishes, and fsck
// passes.

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"discfs/internal/vfs"
)

// TestDeadlockRenameIntoOlderSubdirVsRmdir pins the parents-phase
// inversion: a directory with a smaller inode number living UNDER a
// newer directory (an old dir renamed beneath a new one). Pure inode
// ordering of rename's two parents then locks the child directory
// before its ancestor, while rmdir locks ancestor-then-child — a cycle
// that wedged both operations (and, through the quiesce gate, the whole
// filesystem) within seconds. Rule 3's ancestor-first ordering closes
// it.
func TestDeadlockRenameIntoOlderSubdirVsRmdir(t *testing.T) {
	fs, err := New(Config{BlockSize: 1024, NumBlocks: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	root := fs.Root()
	oldA, err := fs.Mkdir(root, "old", 0o755) // allocated first: smaller ino
	if err != nil {
		t.Fatal(err)
	}
	pA, err := fs.Mkdir(root, "p", 0o755) // allocated later: larger ino
	if err != nil {
		t.Fatal(err)
	}
	if oldA.Handle.Ino >= pA.Handle.Ino {
		t.Fatalf("test setup: ino(old)=%d not below ino(p)=%d", oldA.Handle.Ino, pA.Handle.Ino)
	}
	if err := fs.Rename(root, "old", pA.Handle, "old"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Create(pA.Handle, "f", 0o644); err != nil {
		t.Fatal(err)
	}
	// A keeper entry makes every Rmdir fail ErrNotEmpty — after it has
	// taken both locks, which is where the cycle lived.
	if _, err := fs.Create(oldA.Handle, "keep", 0o644); err != nil {
		t.Fatal(err)
	}

	const iters = 4000
	done := make(chan struct{})
	errs := make(chan error, 4)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(2)
		go func() { // renamer: bounce p/f into and out of p/old
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := fs.Rename(pA.Handle, "f", oldA.Handle, "f"); err != nil && !errors.Is(err, vfs.ErrNotExist) {
					errs <- fmt.Errorf("rename down: %v", err)
					return
				}
				if err := fs.Rename(oldA.Handle, "f", pA.Handle, "f"); err != nil && !errors.Is(err, vfs.ErrNotExist) {
					errs <- fmt.Errorf("rename up: %v", err)
					return
				}
			}
		}()
		go func() { // remover: rmdir always takes parent-then-child locks
			defer wg.Done()
			for i := 0; i < iters; i++ {
				if err := fs.Rmdir(pA.Handle, "old"); !errors.Is(err, vfs.ErrNotEmpty) {
					errs <- fmt.Errorf("rmdir: %v, want ErrNotEmpty", err)
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("deadlock: rename-vs-rmdir wedged after 60s\n%s", buf[:n])
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if es := fs.Check(); len(es) != 0 {
		t.Fatalf("fsck after storm: %v", es[0])
	}
}

func TestDeadlockAdversarialRenameCycles(t *testing.T) {
	fs, err := New(Config{BlockSize: 1024, NumBlocks: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	root := fs.Root()
	// Two directories, two shared file names, a subdirectory that
	// workers rename back and forth between A and B, and a deeper
	// nesting so ancestry walks run during the storm.
	mk := func(dir vfs.Handle, name string) vfs.Handle {
		a, err := fs.Mkdir(dir, name, 0o755)
		if err != nil {
			t.Fatal(err)
		}
		return a.Handle
	}
	dirA := mk(root, "A")
	dirB := mk(root, "B")
	mk(dirA, "suba")
	mk(dirB, "deep")
	for _, spec := range []struct {
		dir  vfs.Handle
		name string
	}{{dirA, "x"}, {dirA, "y"}, {dirB, "x"}, {dirB, "y"}} {
		if _, err := fs.Create(spec.dir, spec.name, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	const workers = 8
	const opsPerWorker = 1500
	benign := func(err error) bool {
		return err == nil ||
			errors.Is(err, vfs.ErrNotExist) || errors.Is(err, vfs.ErrExist) ||
			errors.Is(err, vfs.ErrIsDir) || errors.Is(err, vfs.ErrNotDir) ||
			errors.Is(err, vfs.ErrNotEmpty) || errors.Is(err, vfs.ErrInval) ||
			errors.Is(err, vfs.ErrStale)
	}
	done := make(chan struct{})
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(6000 + w)))
			for op := 0; op < opsPerWorker; op++ {
				var err error
				switch rng.Intn(12) {
				case 0:
					err = fs.Rename(dirA, "x", dirB, "x")
				case 1:
					err = fs.Rename(dirB, "x", dirA, "x")
				case 2:
					err = fs.Rename(dirA, "x", dirA, "y") // same-dir swap
				case 3:
					err = fs.Rename(dirB, "y", dirB, "x")
				case 4:
					err = fs.Rename(dirA, "suba", dirB, "suba") // directory rename
				case 5:
					err = fs.Rename(dirB, "suba", dirA, "suba")
				case 6: // rename a directory onto a deeper path (ancestry walk)
					err = fs.Rename(dirB, "deep", dirA, "deep")
				case 7:
					err = fs.Rename(dirA, "deep", dirB, "deep")
				case 8: // remove + recreate the contended target
					if err = fs.Remove(dirA, "y"); benign(err) {
						_, err = fs.Create(dirA, "y", 0o644)
					}
				case 9: // hard link across directories, then unlink
					if a, lerr := fs.Lookup(dirB, "x"); lerr == nil {
						if _, err = fs.Link(dirA, fmt.Sprintf("lnk%d", w), a.Handle); err == nil || benign(err) {
							err = fs.Remove(dirA, fmt.Sprintf("lnk%d", w))
						}
					}
				case 10: // reads race the namespace storm
					_, err = fs.ReadDir(dirA)
				default:
					_, err = fs.Lookup(dirB, "..")
				}
				if !benign(err) {
					errs <- fmt.Errorf("worker %d op %d: %v", w, op, err)
					return
				}
			}
		}(w)
	}
	go func() {
		wg.Wait()
		close(done)
	}()

	select {
	case <-done:
	case <-time.After(60 * time.Second):
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("deadlock: workers wedged after 60s\n%s", buf[:n])
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if es := fs.Check(); len(es) != 0 {
		t.Fatalf("fsck after rename storm: %v", es[0])
	}
}
