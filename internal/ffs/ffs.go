package ffs

import (
	"sync"
	"time"

	"discfs/internal/vfs"
)

// Default geometry: 8 KiB blocks (the FFS default of the paper's era and
// the NFSv2 maximum transfer size) on a 2 GiB device.
const (
	DefaultBlockSize = 8192
	DefaultNumBlocks = 1 << 18
)

// Config parameterizes a new filesystem.
type Config struct {
	// BlockSize is the block size in bytes; it must be a multiple of 4.
	// 0 means DefaultBlockSize.
	BlockSize int
	// NumBlocks is the device capacity; 0 means DefaultNumBlocks.
	NumBlocks uint32
	// MaxInodes bounds the inode table; 0 derives it from NumBlocks.
	MaxInodes uint64
	// Disk adds a synthetic seek/bandwidth cost model.
	Disk DiskModel
	// Device supplies the block device; nil means a MemDevice with the
	// geometry above. Tests inject fault-injecting devices here.
	Device BlockDevice
	// Now supplies timestamps; nil means time.Now. Benchmarks inject a
	// cheap clock here.
	Now func() time.Time
}

// FFS is the filesystem. All methods are safe for concurrent use.
//
// Locking is fine-grained (see locktab.go for the full discipline):
// every inode has its own lock in a sharded table, the inode map and
// the block allocator have their own small mutexes, renames serialize
// on renameMu, and Check/Dump quiesce the filesystem through a
// read-mostly gate every operation holds shared.
type FFS struct {
	dev       BlockDevice
	blockSize int

	// quiesce is held shared by every operation and exclusively by
	// Check and Dump, which need a frozen filesystem.
	quiesce sync.RWMutex

	// metaMu guards the inode table. Leaf lock: nothing else is
	// acquired while holding it.
	metaMu    sync.RWMutex
	inodes    map[uint64]*inode
	nextIno   uint64
	gens      map[uint64]uint32 // last generation per inode slot, survives frees
	maxInodes uint64

	// allocMu guards the block allocator. Leaf lock.
	allocMu    sync.Mutex
	freeBitmap []uint64 // one bit per device block; 1 = in use
	freeBlocks uint32
	rotor      uint32 // next-fit allocation pointer

	// renameMu serializes renames and freezes the directory topology
	// for rename's ancestry walk.
	renameMu sync.Mutex

	// locks is the sharded per-inode lock table.
	locks lockTable

	// syncer is the device's volatile-cache flush hook, nil when the
	// device has none. Metadata writes (directory blocks, indirect
	// pointer blocks, freshly zeroed allocations) are flushed through it
	// synchronously, as FFS writes metadata; file data stays volatile
	// until an explicit Sync — the COMMIT durability model.
	syncer SyncDevice

	now func() time.Time

	bufPool sync.Pool
}

// New creates a filesystem per cfg and formats it with an empty root
// directory.
func New(cfg Config) (*FFS, error) {
	bs := cfg.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	if bs < 512 || bs%4 != 0 {
		return nil, vfs.ErrInval
	}
	nb := cfg.NumBlocks
	if nb == 0 {
		nb = DefaultNumBlocks
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	dev := cfg.Device
	if dev == nil {
		dev = NewMemDevice(bs, nb, cfg.Disk)
	} else {
		if dev.BlockSize() != bs && cfg.BlockSize != 0 {
			return nil, vfs.ErrInval
		}
		bs = dev.BlockSize()
		nb = dev.NumBlocks()
	}
	maxInodes := cfg.MaxInodes
	if maxInodes == 0 {
		maxInodes = uint64(nb) // one file per block, as good a bound as any
	}
	fs := &FFS{
		dev:        dev,
		blockSize:  bs,
		inodes:     make(map[uint64]*inode),
		gens:       make(map[uint64]uint32),
		nextIno:    1,
		maxInodes:  maxInodes,
		freeBitmap: make([]uint64, (int(nb)+63)/64),
		freeBlocks: nb - 1, // block 0 is the superblock
		rotor:      1,
		now:        now,
	}
	if sd, ok := dev.(SyncDevice); ok {
		fs.syncer = sd
	}
	fs.locks.init()
	fs.bufPool.New = func() any {
		b := make([]byte, bs)
		return &b
	}
	fs.markUsed(0) // superblock
	// Format: create the root directory (ino 1).
	root, err := fs.allocInode(vfs.TypeDir, 0o755, 0, 0)
	if err != nil {
		return nil, err
	}
	root.nlink = 2 // "." and the root's self-reference
	root.parent = vfs.Handle{Ino: root.ino, Gen: root.gen}
	return fs, nil
}

// Device exposes the underlying block device (tests and df).
func (fs *FFS) Device() BlockDevice { return fs.dev }

func (fs *FFS) getBlockBuf() []byte  { return *(fs.bufPool.Get().(*[]byte)) }
func (fs *FFS) putBlockBuf(b []byte) { fs.bufPool.Put(&b) }

// Sync flushes the device's volatile write cache, if it has one. It is
// the durability barrier behind the NFS COMMIT operation: data written
// before a successful Sync survives a power cut; later unsynced writes
// may not. It implements the optional vfs.Syncer capability.
func (fs *FFS) Sync() error {
	if fs.syncer != nil {
		return fs.syncer.Sync()
	}
	return nil
}

// syncMeta flushes the device after a metadata write (directory blocks,
// indirect pointers, zeroed allocations), keeping metadata synchronous
// the way FFS does even when file data is allowed to sit in a volatile
// device cache until COMMIT. Same barrier as Sync; the name marks the
// call sites as mandatory, not client-driven.
func (fs *FFS) syncMeta() error { return fs.Sync() }

// ---- allocation ----

// markUsed/markFree/isUsed mutate the allocator bitmap; callers hold
// allocMu (or own the filesystem exclusively, as New and Load do).
func (fs *FFS) markUsed(bn uint32) { fs.freeBitmap[bn/64] |= 1 << (bn % 64) }
func (fs *FFS) markFree(bn uint32) { fs.freeBitmap[bn/64] &^= 1 << (bn % 64) }
func (fs *FFS) isUsed(bn uint32) bool {
	return fs.freeBitmap[bn/64]&(1<<(bn%64)) != 0
}

// allocBlock finds a free block next-fit from the rotor, charging it to
// ip's block count. The caller holds ip's exclusive lock; the bitmap is
// touched under allocMu, and the zeroing write happens outside it (the
// block already belongs to ip alone).
func (fs *FFS) allocBlock(ip *inode) (uint32, error) {
	fs.allocMu.Lock()
	if fs.freeBlocks == 0 {
		fs.allocMu.Unlock()
		return 0, vfs.ErrNoSpace
	}
	nb := fs.dev.NumBlocks()
	bn := fs.rotor
	found := false
	for i := uint32(0); i < nb; i++ {
		if bn >= nb {
			bn = 1
		}
		if !fs.isUsed(bn) {
			fs.markUsed(bn)
			fs.freeBlocks--
			fs.rotor = bn + 1
			found = true
			break
		}
		bn++
	}
	fs.allocMu.Unlock()
	if !found {
		return 0, vfs.ErrNoSpace
	}
	ip.nblocks++
	// Freshly allocated blocks must read as zeros even if the device
	// slot held stale data.
	if err := fs.dev.WriteBlock(bn, nil); err != nil {
		return 0, err
	}
	return bn, nil
}

// freeBlock returns bn to the allocator. The caller holds ip's
// exclusive lock.
func (fs *FFS) freeBlock(ip *inode, bn uint32) {
	fs.allocMu.Lock()
	fs.markFree(bn)
	fs.freeBlocks++
	fs.allocMu.Unlock()
	if ip.nblocks > 0 {
		ip.nblocks--
	}
}

// allocInode creates a new in-core inode with a fresh generation. The
// new inode is private to the caller until a directory entry makes it
// visible.
func (fs *FFS) allocInode(t vfs.FileType, mode, uid, gid uint32) (*inode, error) {
	n := fs.now()
	fs.metaMu.Lock()
	if uint64(len(fs.inodes)) >= fs.maxInodes {
		fs.metaMu.Unlock()
		return nil, vfs.ErrNoSpace
	}
	ino := fs.nextIno
	fs.nextIno++
	gen := fs.gens[ino] + 1
	fs.gens[ino] = gen
	ip := &inode{
		ino: ino, gen: gen, ftype: t, mode: mode & 0o7777,
		nlink: 1, uid: uid, gid: gid,
		atime: n, mtime: n, ctime: n,
	}
	fs.inodes[ino] = ip
	fs.metaMu.Unlock()
	return ip, nil
}

// getInode resolves a handle to its live in-core inode, checking the
// generation number. The inode is not locked; the ino, gen and ftype
// fields are immutable, everything else requires the inode's lock.
func (fs *FFS) getInode(h vfs.Handle) (*inode, error) {
	fs.metaMu.RLock()
	ip, ok := fs.inodes[h.Ino]
	fs.metaMu.RUnlock()
	if !ok || ip.gen != h.Gen {
		return nil, vfs.ErrStale
	}
	return ip, nil
}

// dropInode frees an inode whose link count reached zero. The caller
// holds the inode's exclusive lock, or the inode is still private
// (creation rollback). Waiters queued on the inode's lock observe dead
// and answer ErrStale.
func (fs *FFS) dropInode(ip *inode) error {
	ip.dead = true
	err := fs.freeAllBlocks(ip)
	fs.metaMu.Lock()
	if cur, ok := fs.inodes[ip.ino]; ok && cur == ip {
		delete(fs.inodes, ip.ino)
	}
	fs.metaMu.Unlock()
	return err
}

// ---- vfs.FS implementation ----

// Root returns the root directory handle.
func (fs *FFS) Root() vfs.Handle {
	fs.metaMu.RLock()
	gen := fs.inodes[1].gen
	fs.metaMu.RUnlock()
	return vfs.Handle{Ino: 1, Gen: gen}
}

// GetAttr implements vfs.FS.
func (fs *FFS) GetAttr(h vfs.Handle) (vfs.Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	unlock, err := fs.rlockInode(ip)
	if err != nil {
		return vfs.Attr{}, err
	}
	defer unlock()
	return ip.attr(), nil
}

// SetAttr implements vfs.FS.
func (fs *FFS) SetAttr(h vfs.Handle, s vfs.SetAttr) (vfs.Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	unlock, err := fs.wlockInode(ip)
	if err != nil {
		return vfs.Attr{}, err
	}
	defer unlock()
	if s.Mode != nil {
		ip.mode = *s.Mode & 0o7777
	}
	if s.UID != nil {
		ip.uid = *s.UID
	}
	if s.GID != nil {
		ip.gid = *s.GID
	}
	if s.Size != nil {
		if ip.ftype == vfs.TypeDir {
			return vfs.Attr{}, vfs.ErrIsDir
		}
		if err := fs.truncateTo(ip, *s.Size); err != nil {
			return vfs.Attr{}, err
		}
		ip.mtime = fs.now()
		if err := fs.syncMeta(); err != nil {
			return vfs.Attr{}, err
		}
	}
	if s.Atime != nil {
		ip.atime = *s.Atime
	}
	if s.Mtime != nil {
		ip.mtime = *s.Mtime
	}
	ip.ctime = fs.now()
	return ip.attr(), nil
}

// Read implements vfs.FS.
func (fs *FFS) Read(h vfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return nil, false, err
	}
	if ip.ftype == vfs.TypeDir {
		return nil, false, vfs.ErrIsDir
	}
	unlock, err := fs.rlockInode(ip)
	if err != nil {
		return nil, false, err
	}
	defer unlock()
	return fs.readLocked(ip, off, count)
}

// readLocked reads file content; the caller holds ip's lock (shared
// suffices: block pointers and content only change under the exclusive
// lock).
func (fs *FFS) readLocked(ip *inode, off uint64, count uint32) ([]byte, bool, error) {
	if off >= ip.size {
		return nil, true, nil
	}
	n := uint64(count)
	if off+n > ip.size {
		n = ip.size - off
	}
	out := make([]byte, n)
	_, eof, err := fs.readIntoLocked(ip, off, out)
	if err != nil {
		return nil, false, err
	}
	return out, eof, nil
}

// ReadInto implements vfs.ReaderInto: file content is read directly
// into dst — block-aligned spans straight from the device with no
// intermediate buffer, so a maximal negotiated transfer costs one copy
// inside the store instead of two plus an allocation.
func (fs *FFS) ReadInto(h vfs.Handle, off uint64, dst []byte) (int, bool, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return 0, false, err
	}
	if ip.ftype == vfs.TypeDir {
		return 0, false, vfs.ErrIsDir
	}
	unlock, err := fs.rlockInode(ip)
	if err != nil {
		return 0, false, err
	}
	defer unlock()
	if off >= ip.size {
		return 0, true, nil
	}
	n := uint64(len(dst))
	if off+n > ip.size {
		n = ip.size - off
	}
	return fs.readIntoLocked(ip, off, dst[:n])
}

// readIntoLocked fills dst with content at off; the caller holds ip's
// lock and has clamped len(dst) to the file size.
func (fs *FFS) readIntoLocked(ip *inode, off uint64, dst []byte) (int, bool, error) {
	n := uint64(len(dst))
	bs := uint64(fs.blockSize)
	var buf []byte // partial-block staging, fetched lazily
	defer func() {
		if buf != nil {
			fs.putBlockBuf(buf)
		}
	}()
	for done := uint64(0); done < n; {
		lbn := (off + done) / bs
		boff := (off + done) % bs
		chunk := bs - boff
		if chunk > n-done {
			chunk = n - done
		}
		bn, err := fs.bmap(ip, lbn, false)
		if err != nil {
			return 0, false, err
		}
		switch {
		case bn == 0:
			// hole: zeros
			clear(dst[done : done+chunk])
		case boff == 0 && chunk == bs:
			// Block-aligned full block: read straight into dst.
			if err := fs.dev.ReadBlock(bn, dst[done:done+chunk]); err != nil {
				return 0, false, err
			}
		default:
			if buf == nil {
				buf = fs.getBlockBuf()
			}
			if err := fs.dev.ReadBlock(bn, buf); err != nil {
				return 0, false, err
			}
			copy(dst[done:done+chunk], buf[boff:boff+chunk])
		}
		done += chunk
	}
	return int(n), off+n >= ip.size, nil
}

// Write implements vfs.FS.
func (fs *FFS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	if ip.ftype == vfs.TypeDir {
		return vfs.Attr{}, vfs.ErrIsDir
	}
	unlock, err := fs.wlockInode(ip)
	if err != nil {
		return vfs.Attr{}, err
	}
	defer unlock()
	if err := fs.writeLocked(ip, off, data); err != nil {
		return vfs.Attr{}, err
	}
	return ip.attr(), nil
}

// writeLocked writes data at off; the caller holds ip's exclusive lock.
func (fs *FFS) writeLocked(ip *inode, off uint64, data []byte) error {
	bs := uint64(fs.blockSize)
	end := off + uint64(len(data))
	if end/bs >= fs.maxFileBlocks() {
		return vfs.ErrFBig
	}
	blocksBefore := ip.nblocks
	buf := fs.getBlockBuf()
	defer fs.putBlockBuf(buf)
	for done := uint64(0); done < uint64(len(data)); {
		lbn := (off + done) / bs
		boff := (off + done) % bs
		chunk := bs - boff
		if chunk > uint64(len(data))-done {
			chunk = uint64(len(data)) - done
		}
		bn, err := fs.bmap(ip, lbn, true)
		if err != nil {
			return err
		}
		if boff == 0 && chunk == bs {
			// Full-block write: no read-modify-write.
			if err := fs.dev.WriteBlock(bn, data[done:done+chunk]); err != nil {
				return err
			}
		} else {
			if err := fs.dev.ReadBlock(bn, buf); err != nil {
				return err
			}
			copy(buf[boff:boff+chunk], data[done:done+chunk])
			if err := fs.dev.WriteBlock(bn, buf); err != nil {
				return err
			}
		}
		done += chunk
	}
	if end > ip.size {
		ip.size = end
	}
	n := fs.now()
	ip.mtime = n
	ip.ctime = n
	if ip.nblocks != blocksBefore {
		// The write allocated blocks: indirect pointers and zeroed slots
		// reached the device. Flush them so a power cut cannot leave
		// metadata pointing at unwritten blocks.
		return fs.syncMeta()
	}
	return nil
}

// StatFS implements vfs.FS.
func (fs *FFS) StatFS() (vfs.StatFS, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	fs.allocMu.Lock()
	free := uint64(fs.freeBlocks)
	fs.allocMu.Unlock()
	fs.metaMu.RLock()
	used := uint64(len(fs.inodes))
	fs.metaMu.RUnlock()
	nb := uint64(fs.dev.NumBlocks())
	return vfs.StatFS{
		BlockSize:   uint32(fs.blockSize),
		TotalBlocks: nb,
		FreeBlocks:  free,
		AvailBlocks: free,
		TotalInodes: fs.maxInodes,
		FreeInodes:  fs.maxInodes - used,
	}, nil
}
