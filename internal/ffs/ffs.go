package ffs

import (
	"sync"
	"time"

	"discfs/internal/vfs"
)

// Default geometry: 8 KiB blocks (the FFS default of the paper's era and
// the NFSv2 maximum transfer size) on a 2 GiB device.
const (
	DefaultBlockSize = 8192
	DefaultNumBlocks = 1 << 18
)

// Config parameterizes a new filesystem.
type Config struct {
	// BlockSize is the block size in bytes; it must be a multiple of 4.
	// 0 means DefaultBlockSize.
	BlockSize int
	// NumBlocks is the device capacity; 0 means DefaultNumBlocks.
	NumBlocks uint32
	// MaxInodes bounds the inode table; 0 derives it from NumBlocks.
	MaxInodes uint64
	// Disk adds a synthetic seek/bandwidth cost model.
	Disk DiskModel
	// Device supplies the block device; nil means a MemDevice with the
	// geometry above. Tests inject fault-injecting devices here.
	Device BlockDevice
	// Now supplies timestamps; nil means time.Now. Benchmarks inject a
	// cheap clock here.
	Now func() time.Time
}

// FFS is the filesystem. All methods are safe for concurrent use.
type FFS struct {
	dev       BlockDevice
	blockSize int

	mu        sync.RWMutex
	inodes    map[uint64]*inode
	nextIno   uint64
	gens      map[uint64]uint32 // last generation per inode slot, survives frees
	maxInodes uint64

	freeBitmap []uint64 // one bit per device block; 1 = in use
	freeBlocks uint32
	rotor      uint32 // next-fit allocation pointer

	now func() time.Time

	bufPool sync.Pool
}

// New creates a filesystem per cfg and formats it with an empty root
// directory.
func New(cfg Config) (*FFS, error) {
	bs := cfg.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	if bs < 512 || bs%4 != 0 {
		return nil, vfs.ErrInval
	}
	nb := cfg.NumBlocks
	if nb == 0 {
		nb = DefaultNumBlocks
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	dev := cfg.Device
	if dev == nil {
		dev = NewMemDevice(bs, nb, cfg.Disk)
	} else {
		if dev.BlockSize() != bs && cfg.BlockSize != 0 {
			return nil, vfs.ErrInval
		}
		bs = dev.BlockSize()
		nb = dev.NumBlocks()
	}
	maxInodes := cfg.MaxInodes
	if maxInodes == 0 {
		maxInodes = uint64(nb) // one file per block, as good a bound as any
	}
	fs := &FFS{
		dev:        dev,
		blockSize:  bs,
		inodes:     make(map[uint64]*inode),
		gens:       make(map[uint64]uint32),
		nextIno:    1,
		maxInodes:  maxInodes,
		freeBitmap: make([]uint64, (int(nb)+63)/64),
		freeBlocks: nb - 1, // block 0 is the superblock
		rotor:      1,
		now:        now,
	}
	fs.bufPool.New = func() any {
		b := make([]byte, bs)
		return &b
	}
	fs.markUsed(0) // superblock
	// Format: create the root directory (ino 1).
	root := fs.allocInode(vfs.TypeDir, 0o755, 0, 0)
	root.nlink = 2 // "." and the root's self-reference
	root.parent = vfs.Handle{Ino: root.ino, Gen: root.gen}
	return fs, nil
}

// Device exposes the underlying block device (tests and df).
func (fs *FFS) Device() BlockDevice { return fs.dev }

func (fs *FFS) getBlockBuf() []byte  { return *(fs.bufPool.Get().(*[]byte)) }
func (fs *FFS) putBlockBuf(b []byte) { fs.bufPool.Put(&b) }

// ---- allocation ----

func (fs *FFS) markUsed(bn uint32) { fs.freeBitmap[bn/64] |= 1 << (bn % 64) }
func (fs *FFS) markFree(bn uint32) { fs.freeBitmap[bn/64] &^= 1 << (bn % 64) }
func (fs *FFS) isUsed(bn uint32) bool {
	return fs.freeBitmap[bn/64]&(1<<(bn%64)) != 0
}

// allocBlock finds a free block next-fit from the rotor, charging it to
// ip's block count. Caller holds fs.mu.
func (fs *FFS) allocBlock(ip *inode) (uint32, error) {
	if fs.freeBlocks == 0 {
		return 0, vfs.ErrNoSpace
	}
	nb := fs.dev.NumBlocks()
	bn := fs.rotor
	for i := uint32(0); i < nb; i++ {
		if bn >= nb {
			bn = 1
		}
		if !fs.isUsed(bn) {
			fs.markUsed(bn)
			fs.freeBlocks--
			fs.rotor = bn + 1
			ip.nblocks++
			// Freshly allocated blocks must read as zeros even if the
			// device slot held stale data.
			if err := fs.dev.WriteBlock(bn, nil); err != nil {
				return 0, err
			}
			return bn, nil
		}
		bn++
	}
	return 0, vfs.ErrNoSpace
}

func (fs *FFS) freeBlock(ip *inode, bn uint32) {
	fs.markFree(bn)
	fs.freeBlocks++
	if ip.nblocks > 0 {
		ip.nblocks--
	}
}

// allocInode creates a new in-core inode with a fresh generation.
// Caller holds fs.mu (or is the constructor).
func (fs *FFS) allocInode(t vfs.FileType, mode, uid, gid uint32) *inode {
	ino := fs.nextIno
	fs.nextIno++
	gen := fs.gens[ino] + 1
	fs.gens[ino] = gen
	n := fs.now()
	ip := &inode{
		ino: ino, gen: gen, ftype: t, mode: mode & 0o7777,
		nlink: 1, uid: uid, gid: gid,
		atime: n, mtime: n, ctime: n,
	}
	fs.inodes[ino] = ip
	return ip
}

// getInode resolves a handle, checking the generation number.
// Caller holds fs.mu (read or write).
func (fs *FFS) getInode(h vfs.Handle) (*inode, error) {
	ip, ok := fs.inodes[h.Ino]
	if !ok {
		return nil, vfs.ErrStale
	}
	if ip.gen != h.Gen {
		return nil, vfs.ErrStale
	}
	return ip, nil
}

// dropInode frees an inode whose link count reached zero.
func (fs *FFS) dropInode(ip *inode) error {
	if err := fs.freeAllBlocks(ip); err != nil {
		return err
	}
	delete(fs.inodes, ip.ino)
	return nil
}

// ---- vfs.FS implementation ----

// Root returns the root directory handle.
func (fs *FFS) Root() vfs.Handle {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	return vfs.Handle{Ino: 1, Gen: fs.inodes[1].gen}
}

// GetAttr implements vfs.FS.
func (fs *FFS) GetAttr(h vfs.Handle) (vfs.Attr, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	return ip.attr(), nil
}

// SetAttr implements vfs.FS.
func (fs *FFS) SetAttr(h vfs.Handle, s vfs.SetAttr) (vfs.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	if s.Mode != nil {
		ip.mode = *s.Mode & 0o7777
	}
	if s.UID != nil {
		ip.uid = *s.UID
	}
	if s.GID != nil {
		ip.gid = *s.GID
	}
	if s.Size != nil {
		if ip.ftype == vfs.TypeDir {
			return vfs.Attr{}, vfs.ErrIsDir
		}
		if err := fs.truncateTo(ip, *s.Size); err != nil {
			return vfs.Attr{}, err
		}
		ip.mtime = fs.now()
	}
	if s.Atime != nil {
		ip.atime = *s.Atime
	}
	if s.Mtime != nil {
		ip.mtime = *s.Mtime
	}
	ip.ctime = fs.now()
	return ip.attr(), nil
}

// Read implements vfs.FS.
func (fs *FFS) Read(h vfs.Handle, off uint64, count uint32) ([]byte, bool, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return nil, false, err
	}
	if ip.ftype == vfs.TypeDir {
		return nil, false, vfs.ErrIsDir
	}
	return fs.readLocked(ip, off, count)
}

func (fs *FFS) readLocked(ip *inode, off uint64, count uint32) ([]byte, bool, error) {
	if off >= ip.size {
		return nil, true, nil
	}
	n := uint64(count)
	if off+n > ip.size {
		n = ip.size - off
	}
	out := make([]byte, n)
	bs := uint64(fs.blockSize)
	buf := fs.getBlockBuf()
	defer fs.putBlockBuf(buf)
	for done := uint64(0); done < n; {
		lbn := (off + done) / bs
		boff := (off + done) % bs
		chunk := bs - boff
		if chunk > n-done {
			chunk = n - done
		}
		bn, err := fs.bmap(ip, lbn, false)
		if err != nil {
			return nil, false, err
		}
		if bn == 0 {
			// hole: zeros
			for i := uint64(0); i < chunk; i++ {
				out[done+i] = 0
			}
		} else {
			if err := fs.dev.ReadBlock(bn, buf); err != nil {
				return nil, false, err
			}
			copy(out[done:done+chunk], buf[boff:boff+chunk])
		}
		done += chunk
	}
	return out, off+n >= ip.size, nil
}

// Write implements vfs.FS.
func (fs *FFS) Write(h vfs.Handle, off uint64, data []byte) (vfs.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	if ip.ftype == vfs.TypeDir {
		return vfs.Attr{}, vfs.ErrIsDir
	}
	if err := fs.writeLocked(ip, off, data); err != nil {
		return vfs.Attr{}, err
	}
	return ip.attr(), nil
}

func (fs *FFS) writeLocked(ip *inode, off uint64, data []byte) error {
	bs := uint64(fs.blockSize)
	end := off + uint64(len(data))
	if end/bs >= fs.maxFileBlocks() {
		return vfs.ErrFBig
	}
	buf := fs.getBlockBuf()
	defer fs.putBlockBuf(buf)
	for done := uint64(0); done < uint64(len(data)); {
		lbn := (off + done) / bs
		boff := (off + done) % bs
		chunk := bs - boff
		if chunk > uint64(len(data))-done {
			chunk = uint64(len(data)) - done
		}
		bn, err := fs.bmap(ip, lbn, true)
		if err != nil {
			return err
		}
		if boff == 0 && chunk == bs {
			// Full-block write: no read-modify-write.
			if err := fs.dev.WriteBlock(bn, data[done:done+chunk]); err != nil {
				return err
			}
		} else {
			if err := fs.dev.ReadBlock(bn, buf); err != nil {
				return err
			}
			copy(buf[boff:boff+chunk], data[done:done+chunk])
			if err := fs.dev.WriteBlock(bn, buf); err != nil {
				return err
			}
		}
		done += chunk
	}
	if end > ip.size {
		ip.size = end
	}
	n := fs.now()
	ip.mtime = n
	ip.ctime = n
	return nil
}

// StatFS implements vfs.FS.
func (fs *FFS) StatFS() (vfs.StatFS, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	nb := uint64(fs.dev.NumBlocks())
	free := uint64(fs.freeBlocks)
	return vfs.StatFS{
		BlockSize:   uint32(fs.blockSize),
		TotalBlocks: nb,
		FreeBlocks:  free,
		AvailBlocks: free,
		TotalInodes: fs.maxInodes,
		FreeInodes:  fs.maxInodes - uint64(len(fs.inodes)),
	}, nil
}
