package ffs

import (
	"encoding/binary"
	"fmt"

	"discfs/internal/vfs"
)

// Directory entries are stored packed in the directory's data blocks:
//
//	ino   uint64  (big endian)
//	gen   uint32
//	nlen  uint16
//	name  nlen bytes
//
// "." and ".." are synthesized by Lookup, not stored; each directory
// inode carries its parent handle instead (root is its own parent).

const direntHeader = 8 + 4 + 2

// appendDirent serializes one entry.
func appendDirent(buf []byte, h vfs.Handle, name string) []byte {
	var hdr [direntHeader]byte
	binary.BigEndian.PutUint64(hdr[0:], h.Ino)
	binary.BigEndian.PutUint32(hdr[8:], h.Gen)
	binary.BigEndian.PutUint16(hdr[12:], uint16(len(name)))
	buf = append(buf, hdr[:]...)
	return append(buf, name...)
}

// parseDirents decodes a directory's full content.
func parseDirents(data []byte) ([]vfs.DirEntry, error) {
	var out []vfs.DirEntry
	for off := 0; off < len(data); {
		if off+direntHeader > len(data) {
			return nil, fmt.Errorf("%w: truncated directory entry", vfs.ErrIO)
		}
		ino := binary.BigEndian.Uint64(data[off:])
		gen := binary.BigEndian.Uint32(data[off+8:])
		nlen := int(binary.BigEndian.Uint16(data[off+12:]))
		off += direntHeader
		if off+nlen > len(data) {
			return nil, fmt.Errorf("%w: truncated directory name", vfs.ErrIO)
		}
		out = append(out, vfs.DirEntry{
			Name:   string(data[off : off+nlen]),
			Handle: vfs.Handle{Ino: ino, Gen: gen},
		})
		off += nlen
	}
	return out, nil
}

// readDirLocked returns the parsed entries of dir. The caller holds
// dir's lock (shared suffices).
func (fs *FFS) readDirLocked(dir *inode) ([]vfs.DirEntry, error) {
	if dir.ftype != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	data, _, err := fs.readDirBytes(dir)
	if err != nil {
		return nil, err
	}
	return parseDirents(data)
}

// readDirBytes reads the raw directory content.
func (fs *FFS) readDirBytes(dir *inode) ([]byte, bool, error) {
	if dir.size == 0 {
		return nil, true, nil
	}
	if dir.size > uint64(int(^uint(0)>>1)) {
		return nil, false, vfs.ErrFBig
	}
	return fs.readLocked(dir, 0, uint32(dir.size))
}

// dirLookupLocked finds name in dir. The caller holds dir's lock.
func (fs *FFS) dirLookupLocked(dir *inode, name string) (vfs.Handle, bool, error) {
	ents, err := fs.readDirLocked(dir)
	if err != nil {
		return vfs.Handle{}, false, err
	}
	for _, e := range ents {
		if e.Name == name {
			return e.Handle, true, nil
		}
	}
	return vfs.Handle{}, false, nil
}

// dirAddLocked appends an entry (caller holds dir's exclusive lock and
// has checked for duplicates).
func (fs *FFS) dirAddLocked(dir *inode, h vfs.Handle, name string) error {
	ent := appendDirent(nil, h, name)
	return fs.writeLocked(dir, dir.size, ent)
}

// dirRemoveLocked deletes name from dir, rewriting the remaining
// entries. Reports whether the entry existed. The caller holds dir's
// exclusive lock.
func (fs *FFS) dirRemoveLocked(dir *inode, name string) (vfs.Handle, bool, error) {
	ents, err := fs.readDirLocked(dir)
	if err != nil {
		return vfs.Handle{}, false, err
	}
	var removed vfs.Handle
	found := false
	var buf []byte
	for _, e := range ents {
		if !found && e.Name == name {
			removed = e.Handle
			found = true
			continue
		}
		buf = appendDirent(buf, e.Handle, e.Name)
	}
	if !found {
		return vfs.Handle{}, false, nil
	}
	if err := fs.truncateTo(dir, 0); err != nil {
		return vfs.Handle{}, false, err
	}
	if len(buf) > 0 {
		if err := fs.writeLocked(dir, 0, buf); err != nil {
			return vfs.Handle{}, false, err
		}
	} else {
		dir.mtime = fs.now()
	}
	return removed, true, nil
}

// Lookup implements vfs.FS. It never holds two locks at once: the entry
// handle is read under the directory's shared lock, which is released
// before the child's attributes are read under the child's — so lookups
// stay read-mostly and can never participate in a lock-order cycle. The
// child may disappear in the window; that answers ErrStale exactly as a
// racing LOOKUP/REMOVE does on a real NFS server.
func (fs *FFS) Lookup(dirH vfs.Handle, name string) (vfs.Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return vfs.Attr{}, err
	}
	if dir.ftype != vfs.TypeDir {
		return vfs.Attr{}, vfs.ErrNotDir
	}
	var childH vfs.Handle
	switch name {
	case ".":
		unlock, err := fs.rlockInode(dir)
		if err != nil {
			return vfs.Attr{}, err
		}
		a := dir.attr()
		unlock()
		return a, nil
	case "..":
		unlock, err := fs.rlockInode(dir)
		if err != nil {
			return vfs.Attr{}, err
		}
		childH = dir.parent
		unlock()
	default:
		if !vfs.ValidName(name) {
			if len(name) > vfs.MaxNameLen {
				return vfs.Attr{}, vfs.ErrNameTooLong
			}
			return vfs.Attr{}, vfs.ErrInval
		}
		unlock, err := fs.rlockInode(dir)
		if err != nil {
			return vfs.Attr{}, err
		}
		h, ok, err := fs.dirLookupLocked(dir, name)
		unlock()
		if err != nil {
			return vfs.Attr{}, err
		}
		if !ok {
			return vfs.Attr{}, vfs.ErrNotExist
		}
		childH = h
	}
	child, err := fs.getInode(childH)
	if err != nil {
		return vfs.Attr{}, err
	}
	unlock, err := fs.rlockInode(child)
	if err != nil {
		return vfs.Attr{}, err
	}
	a := child.attr()
	unlock()
	return a, nil
}

// ReadDir implements vfs.FS.
func (fs *FFS) ReadDir(dirH vfs.Handle) ([]vfs.DirEntry, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return nil, err
	}
	unlock, err := fs.rlockInode(dir)
	if err != nil {
		return nil, err
	}
	defer unlock()
	return fs.readDirLocked(dir)
}

// checkNewName validates name and ensures it is absent from dir. The
// caller holds dir's exclusive lock.
func (fs *FFS) checkNewName(dir *inode, name string) error {
	if dir.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if !vfs.ValidName(name) {
		if len(name) > vfs.MaxNameLen {
			return vfs.ErrNameTooLong
		}
		return vfs.ErrInval
	}
	_, exists, err := fs.dirLookupLocked(dir, name)
	if err != nil {
		return err
	}
	if exists {
		return vfs.ErrExist
	}
	return nil
}

// createEntry is the common create/mkdir/symlink path: under dir's
// exclusive lock it validates the name, allocates an inode via mk, and
// links it into dir, rolling the inode back on failure.
func (fs *FFS) createEntry(dirH vfs.Handle, name string, mk func(dir *inode) (*inode, error)) (vfs.Attr, error) {
	dir, err := fs.getInode(dirH)
	if err != nil {
		return vfs.Attr{}, err
	}
	if dir.ftype != vfs.TypeDir {
		return vfs.Attr{}, vfs.ErrNotDir
	}
	unlock, err := fs.wlockInode(dir)
	if err != nil {
		return vfs.Attr{}, err
	}
	defer unlock()
	if err := fs.checkNewName(dir, name); err != nil {
		return vfs.Attr{}, err
	}
	ip, err := mk(dir)
	if err != nil {
		return vfs.Attr{}, err
	}
	oldSize := dir.size
	if err := fs.dirAddLocked(dir, vfs.Handle{Ino: ip.ino, Gen: ip.gen}, name); err != nil {
		// The append may have grown the directory (and synced part of
		// the growth) before failing; truncating back to the old size
		// restores the in-core state to the last durable one.
		_ = fs.truncateTo(dir, oldSize)
		fs.dropInode(ip)
		return vfs.Attr{}, err
	}
	if ip.ftype == vfs.TypeDir {
		dir.nlink++ // the child's ".."
	}
	if err := fs.syncMeta(); err != nil {
		// The entry's durability cannot be promised: roll the creation
		// back so the in-core state matches the last synced device
		// state (the entry was appended, so truncating to the old size
		// removes exactly it).
		_ = fs.truncateTo(dir, oldSize)
		if ip.ftype == vfs.TypeDir {
			dir.nlink--
		}
		_ = fs.dropInode(ip)
		return vfs.Attr{}, err
	}
	return ip.attr(), nil
}

// Create implements vfs.FS.
func (fs *FFS) Create(dirH vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	return fs.createEntry(dirH, name, func(*inode) (*inode, error) {
		return fs.allocInode(vfs.TypeRegular, mode, 0, 0)
	})
}

// Mkdir implements vfs.FS.
func (fs *FFS) Mkdir(dirH vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	return fs.createEntry(dirH, name, func(dir *inode) (*inode, error) {
		ip, err := fs.allocInode(vfs.TypeDir, mode, 0, 0)
		if err != nil {
			return nil, err
		}
		ip.nlink = 2 // "." plus the entry in the parent
		ip.parent = vfs.Handle{Ino: dir.ino, Gen: dir.gen}
		return ip, nil
	})
}

// Symlink implements vfs.FS.
func (fs *FFS) Symlink(dirH vfs.Handle, name, target string, mode uint32) (vfs.Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	return fs.createEntry(dirH, name, func(*inode) (*inode, error) {
		ip, err := fs.allocInode(vfs.TypeSymlink, mode, 0, 0)
		if err != nil {
			return nil, err
		}
		ip.linkTarget = target
		ip.size = uint64(len(target))
		return ip, nil
	})
}

// Destructive namespace operations (Remove, Rmdir, Rename) report a
// metadata-sync failure with the mutation left applied, unlike the
// creation paths, which roll back. Undoing an unlink would have to
// resurrect inodes and blocks already returned to the allocator —
// possibly re-taken by a concurrent operation — in the middle of an
// error path; and NFS's non-idempotent-operation semantics already
// require clients to tolerate a failed REMOVE/RENAME having taken
// effect (the retry answers ErrNotExist, which clients treat as done).

// Remove implements vfs.FS. Lock order: directory, then the (non-
// directory) child.
func (fs *FFS) Remove(dirH vfs.Handle, name string) error {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return err
	}
	if dir.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	unlockDir, err := fs.wlockInode(dir)
	if err != nil {
		return err
	}
	defer unlockDir()
	h, ok, err := fs.dirLookupLocked(dir, name)
	if err != nil {
		return err
	}
	if !ok {
		return vfs.ErrNotExist
	}
	ip, err := fs.getInode(h)
	if err != nil {
		return err
	}
	if ip.ftype == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	// The entry in the locked dir pins the child's link count, so it
	// cannot die while we wait for its lock.
	unlockChild, err := fs.wlockInode(ip)
	if err != nil {
		return err
	}
	defer unlockChild()
	if _, _, err := fs.dirRemoveLocked(dir, name); err != nil {
		return err
	}
	ip.nlink--
	ip.ctime = fs.now()
	if ip.nlink == 0 {
		if err := fs.dropInode(ip); err != nil {
			return err
		}
	}
	return fs.syncMeta()
}

// Rmdir implements vfs.FS. Lock order: parent directory, then child
// directory (a tree edge, so acquisition follows the hierarchy).
func (fs *FFS) Rmdir(dirH vfs.Handle, name string) error {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return err
	}
	if dir.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	unlockDir, err := fs.wlockInode(dir)
	if err != nil {
		return err
	}
	defer unlockDir()
	h, ok, err := fs.dirLookupLocked(dir, name)
	if err != nil {
		return err
	}
	if !ok {
		return vfs.ErrNotExist
	}
	ip, err := fs.getInode(h)
	if err != nil {
		return err
	}
	if ip.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	unlockChild, err := fs.wlockInode(ip)
	if err != nil {
		return err
	}
	defer unlockChild()
	ents, err := fs.readDirLocked(ip)
	if err != nil {
		return err
	}
	if len(ents) != 0 {
		return vfs.ErrNotEmpty
	}
	if _, _, err := fs.dirRemoveLocked(dir, name); err != nil {
		return err
	}
	dir.nlink-- // the child's ".." is gone
	if err := fs.dropInode(ip); err != nil {
		return err
	}
	return fs.syncMeta()
}

// Rename implements vfs.FS.
//
// Renames follow the strictest form of the lock discipline: renameMu
// serializes them (and freezes the directory topology for the subtree
// check), the two parents are locked in inode order, and the affected
// children (the source, and the replaced target if any) are locked in
// canonical child order afterwards.
func (fs *FFS) Rename(fromDirH vfs.Handle, fromName string, toDirH vfs.Handle, toName string) error {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	fs.renameMu.Lock()
	defer fs.renameMu.Unlock()

	fromDir, err := fs.getInode(fromDirH)
	if err != nil {
		return err
	}
	toDir, err := fs.getInode(toDirH)
	if err != nil {
		return err
	}
	if fromDir.ftype != vfs.TypeDir || toDir.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if !vfs.ValidName(toName) {
		if len(toName) > vfs.MaxNameLen {
			return vfs.ErrNameTooLong
		}
		return vfs.ErrInval
	}
	unlockDirs, err := fs.lockDirPair(fromDir, toDir)
	if err != nil {
		return err
	}
	defer unlockDirs()

	srcH, ok, err := fs.dirLookupLocked(fromDir, fromName)
	if err != nil {
		return err
	}
	if !ok {
		return vfs.ErrNotExist
	}
	src, err := fs.getInode(srcH)
	if err != nil {
		return err
	}
	if fromDir == toDir && fromName == toName {
		return nil
	}
	if src == fromDir || src == toDir {
		return vfs.ErrInval // self-referential entry; refuse rather than self-deadlock
	}
	// A directory must not be moved into its own subtree (src == toDir
	// was rejected above; renameMu freezes the topology the walk reads).
	if src.ftype == vfs.TypeDir {
		if anc, err := fs.dirIsAncestor(src, toDir); err != nil {
			return err
		} else if anc {
			return vfs.ErrInval
		}
	}
	// Resolve an existing target before locking children.
	dstH, dstExists, err := fs.dirLookupLocked(toDir, toName)
	if err != nil {
		return err
	}
	var dst *inode
	if dstExists {
		dst, err = fs.getInode(dstH)
		if err != nil {
			return err
		}
		if dst == src {
			return nil // hard links to the same inode: no-op
		}
		if dst == fromDir || dst == toDir {
			return vfs.ErrInval
		}
		switch {
		case dst.ftype == vfs.TypeDir && src.ftype != vfs.TypeDir:
			return vfs.ErrIsDir
		case dst.ftype != vfs.TypeDir && src.ftype == vfs.TypeDir:
			return vfs.ErrNotDir
		}
	}
	children := []*inode{src}
	if dst != nil {
		children = append(children, dst)
	}
	unlockChildren, err := fs.lockChildren(children...)
	if err != nil {
		return err
	}
	defer unlockChildren()

	if dst != nil {
		if dst.ftype == vfs.TypeDir {
			ents, err := fs.readDirLocked(dst)
			if err != nil {
				return err
			}
			if len(ents) != 0 {
				return vfs.ErrNotEmpty
			}
			if _, _, err := fs.dirRemoveLocked(toDir, toName); err != nil {
				return err
			}
			toDir.nlink--
			if err := fs.dropInode(dst); err != nil {
				return err
			}
		} else {
			if _, _, err := fs.dirRemoveLocked(toDir, toName); err != nil {
				return err
			}
			dst.nlink--
			if dst.nlink == 0 {
				if err := fs.dropInode(dst); err != nil {
					return err
				}
			}
		}
	}
	if _, _, err := fs.dirRemoveLocked(fromDir, fromName); err != nil {
		return err
	}
	if err := fs.dirAddLocked(toDir, srcH, toName); err != nil {
		return err
	}
	if src.ftype == vfs.TypeDir && fromDir != toDir {
		src.parent = vfs.Handle{Ino: toDir.ino, Gen: toDir.gen}
		fromDir.nlink--
		toDir.nlink++
	}
	src.ctime = fs.now()
	return fs.syncMeta()
}

// Readlink implements vfs.FS.
func (fs *FFS) Readlink(h vfs.Handle) (string, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return "", err
	}
	if ip.ftype != vfs.TypeSymlink {
		return "", vfs.ErrInval
	}
	unlock, err := fs.rlockInode(ip)
	if err != nil {
		return "", err
	}
	defer unlock()
	return ip.linkTarget, nil
}

// Link implements vfs.FS. Lock order: directory, then the (non-
// directory) target.
func (fs *FFS) Link(dirH vfs.Handle, name string, target vfs.Handle) (vfs.Attr, error) {
	fs.quiesce.RLock()
	defer fs.quiesce.RUnlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return vfs.Attr{}, err
	}
	tp, err := fs.getInode(target)
	if err != nil {
		return vfs.Attr{}, err
	}
	if tp.ftype == vfs.TypeDir {
		return vfs.Attr{}, vfs.ErrIsDir
	}
	if tp == dir {
		return vfs.Attr{}, vfs.ErrInval
	}
	unlockDir, err := fs.wlockInode(dir)
	if err != nil {
		return vfs.Attr{}, err
	}
	defer unlockDir()
	if err := fs.checkNewName(dir, name); err != nil {
		return vfs.Attr{}, err
	}
	unlockTarget, err := fs.wlockInode(tp)
	if err != nil {
		return vfs.Attr{}, err
	}
	defer unlockTarget()
	oldSize := dir.size
	if err := fs.dirAddLocked(dir, target, name); err != nil {
		_ = fs.truncateTo(dir, oldSize)
		return vfs.Attr{}, err
	}
	tp.nlink++
	tp.ctime = fs.now()
	if err := fs.syncMeta(); err != nil {
		_ = fs.truncateTo(dir, oldSize)
		tp.nlink--
		return vfs.Attr{}, err
	}
	return tp.attr(), nil
}
