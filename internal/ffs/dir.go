package ffs

import (
	"encoding/binary"
	"fmt"

	"discfs/internal/vfs"
)

// Directory entries are stored packed in the directory's data blocks:
//
//	ino   uint64  (big endian)
//	gen   uint32
//	nlen  uint16
//	name  nlen bytes
//
// "." and ".." are synthesized by Lookup, not stored; each directory
// inode carries its parent handle instead (root is its own parent).

const direntHeader = 8 + 4 + 2

// appendDirent serializes one entry.
func appendDirent(buf []byte, h vfs.Handle, name string) []byte {
	var hdr [direntHeader]byte
	binary.BigEndian.PutUint64(hdr[0:], h.Ino)
	binary.BigEndian.PutUint32(hdr[8:], h.Gen)
	binary.BigEndian.PutUint16(hdr[12:], uint16(len(name)))
	buf = append(buf, hdr[:]...)
	return append(buf, name...)
}

// parseDirents decodes a directory's full content.
func parseDirents(data []byte) ([]vfs.DirEntry, error) {
	var out []vfs.DirEntry
	for off := 0; off < len(data); {
		if off+direntHeader > len(data) {
			return nil, fmt.Errorf("%w: truncated directory entry", vfs.ErrIO)
		}
		ino := binary.BigEndian.Uint64(data[off:])
		gen := binary.BigEndian.Uint32(data[off+8:])
		nlen := int(binary.BigEndian.Uint16(data[off+12:]))
		off += direntHeader
		if off+nlen > len(data) {
			return nil, fmt.Errorf("%w: truncated directory name", vfs.ErrIO)
		}
		out = append(out, vfs.DirEntry{
			Name:   string(data[off : off+nlen]),
			Handle: vfs.Handle{Ino: ino, Gen: gen},
		})
		off += nlen
	}
	return out, nil
}

// readDirLocked returns the parsed entries of dir. Caller holds fs.mu.
func (fs *FFS) readDirLocked(dir *inode) ([]vfs.DirEntry, error) {
	if dir.ftype != vfs.TypeDir {
		return nil, vfs.ErrNotDir
	}
	data, _, err := fs.readDirBytes(dir)
	if err != nil {
		return nil, err
	}
	return parseDirents(data)
}

// readDirBytes reads the raw directory content.
func (fs *FFS) readDirBytes(dir *inode) ([]byte, bool, error) {
	if dir.size == 0 {
		return nil, true, nil
	}
	if dir.size > uint64(int(^uint(0)>>1)) {
		return nil, false, vfs.ErrFBig
	}
	return fs.readLocked(dir, 0, uint32(dir.size))
}

// dirLookupLocked finds name in dir.
func (fs *FFS) dirLookupLocked(dir *inode, name string) (vfs.Handle, bool, error) {
	ents, err := fs.readDirLocked(dir)
	if err != nil {
		return vfs.Handle{}, false, err
	}
	for _, e := range ents {
		if e.Name == name {
			return e.Handle, true, nil
		}
	}
	return vfs.Handle{}, false, nil
}

// dirAddLocked appends an entry (caller has checked for duplicates).
func (fs *FFS) dirAddLocked(dir *inode, h vfs.Handle, name string) error {
	ent := appendDirent(nil, h, name)
	return fs.writeLocked(dir, dir.size, ent)
}

// dirRemoveLocked deletes name from dir, rewriting the remaining
// entries. Reports whether the entry existed.
func (fs *FFS) dirRemoveLocked(dir *inode, name string) (vfs.Handle, bool, error) {
	ents, err := fs.readDirLocked(dir)
	if err != nil {
		return vfs.Handle{}, false, err
	}
	var removed vfs.Handle
	found := false
	var buf []byte
	for _, e := range ents {
		if !found && e.Name == name {
			removed = e.Handle
			found = true
			continue
		}
		buf = appendDirent(buf, e.Handle, e.Name)
	}
	if !found {
		return vfs.Handle{}, false, nil
	}
	if err := fs.truncateTo(dir, 0); err != nil {
		return vfs.Handle{}, false, err
	}
	if len(buf) > 0 {
		if err := fs.writeLocked(dir, 0, buf); err != nil {
			return vfs.Handle{}, false, err
		}
	} else {
		dir.mtime = fs.now()
	}
	return removed, true, nil
}

// Lookup implements vfs.FS.
func (fs *FFS) Lookup(dirH vfs.Handle, name string) (vfs.Attr, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return vfs.Attr{}, err
	}
	if dir.ftype != vfs.TypeDir {
		return vfs.Attr{}, vfs.ErrNotDir
	}
	switch name {
	case ".":
		return dir.attr(), nil
	case "..":
		parent, err := fs.getInode(dir.parent)
		if err != nil {
			return vfs.Attr{}, err
		}
		return parent.attr(), nil
	}
	if !vfs.ValidName(name) {
		if len(name) > vfs.MaxNameLen {
			return vfs.Attr{}, vfs.ErrNameTooLong
		}
		return vfs.Attr{}, vfs.ErrInval
	}
	h, ok, err := fs.dirLookupLocked(dir, name)
	if err != nil {
		return vfs.Attr{}, err
	}
	if !ok {
		return vfs.Attr{}, vfs.ErrNotExist
	}
	child, err := fs.getInode(h)
	if err != nil {
		return vfs.Attr{}, err
	}
	return child.attr(), nil
}

// ReadDir implements vfs.FS.
func (fs *FFS) ReadDir(dirH vfs.Handle) ([]vfs.DirEntry, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return nil, err
	}
	return fs.readDirLocked(dir)
}

// checkNewName validates name and ensures it is absent from dir.
func (fs *FFS) checkNewName(dir *inode, name string) error {
	if dir.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if !vfs.ValidName(name) {
		if len(name) > vfs.MaxNameLen {
			return vfs.ErrNameTooLong
		}
		return vfs.ErrInval
	}
	_, exists, err := fs.dirLookupLocked(dir, name)
	if err != nil {
		return err
	}
	if exists {
		return vfs.ErrExist
	}
	return nil
}

// Create implements vfs.FS.
func (fs *FFS) Create(dirH vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return vfs.Attr{}, err
	}
	if err := fs.checkNewName(dir, name); err != nil {
		return vfs.Attr{}, err
	}
	if uint64(len(fs.inodes)) >= fs.maxInodes {
		return vfs.Attr{}, vfs.ErrNoSpace
	}
	ip := fs.allocInode(vfs.TypeRegular, mode, 0, 0)
	if err := fs.dirAddLocked(dir, vfs.Handle{Ino: ip.ino, Gen: ip.gen}, name); err != nil {
		fs.dropInode(ip)
		return vfs.Attr{}, err
	}
	return ip.attr(), nil
}

// Mkdir implements vfs.FS.
func (fs *FFS) Mkdir(dirH vfs.Handle, name string, mode uint32) (vfs.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return vfs.Attr{}, err
	}
	if err := fs.checkNewName(dir, name); err != nil {
		return vfs.Attr{}, err
	}
	if uint64(len(fs.inodes)) >= fs.maxInodes {
		return vfs.Attr{}, vfs.ErrNoSpace
	}
	ip := fs.allocInode(vfs.TypeDir, mode, 0, 0)
	ip.nlink = 2 // "." plus the entry in the parent
	ip.parent = vfs.Handle{Ino: dir.ino, Gen: dir.gen}
	if err := fs.dirAddLocked(dir, vfs.Handle{Ino: ip.ino, Gen: ip.gen}, name); err != nil {
		fs.dropInode(ip)
		return vfs.Attr{}, err
	}
	dir.nlink++ // the child's ".."
	return ip.attr(), nil
}

// Remove implements vfs.FS.
func (fs *FFS) Remove(dirH vfs.Handle, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return err
	}
	if dir.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	h, ok, err := fs.dirLookupLocked(dir, name)
	if err != nil {
		return err
	}
	if !ok {
		return vfs.ErrNotExist
	}
	ip, err := fs.getInode(h)
	if err != nil {
		return err
	}
	if ip.ftype == vfs.TypeDir {
		return vfs.ErrIsDir
	}
	if _, _, err := fs.dirRemoveLocked(dir, name); err != nil {
		return err
	}
	ip.nlink--
	ip.ctime = fs.now()
	if ip.nlink == 0 {
		return fs.dropInode(ip)
	}
	return nil
}

// Rmdir implements vfs.FS.
func (fs *FFS) Rmdir(dirH vfs.Handle, name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return err
	}
	if dir.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	h, ok, err := fs.dirLookupLocked(dir, name)
	if err != nil {
		return err
	}
	if !ok {
		return vfs.ErrNotExist
	}
	ip, err := fs.getInode(h)
	if err != nil {
		return err
	}
	if ip.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	ents, err := fs.readDirLocked(ip)
	if err != nil {
		return err
	}
	if len(ents) != 0 {
		return vfs.ErrNotEmpty
	}
	if _, _, err := fs.dirRemoveLocked(dir, name); err != nil {
		return err
	}
	dir.nlink-- // the child's ".." is gone
	return fs.dropInode(ip)
}

// Rename implements vfs.FS.
func (fs *FFS) Rename(fromDirH vfs.Handle, fromName string, toDirH vfs.Handle, toName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fromDir, err := fs.getInode(fromDirH)
	if err != nil {
		return err
	}
	toDir, err := fs.getInode(toDirH)
	if err != nil {
		return err
	}
	if fromDir.ftype != vfs.TypeDir || toDir.ftype != vfs.TypeDir {
		return vfs.ErrNotDir
	}
	if !vfs.ValidName(toName) {
		if len(toName) > vfs.MaxNameLen {
			return vfs.ErrNameTooLong
		}
		return vfs.ErrInval
	}
	srcH, ok, err := fs.dirLookupLocked(fromDir, fromName)
	if err != nil {
		return err
	}
	if !ok {
		return vfs.ErrNotExist
	}
	src, err := fs.getInode(srcH)
	if err != nil {
		return err
	}
	if fromDir == toDir && fromName == toName {
		return nil
	}
	// A directory must not be moved into its own subtree.
	if src.ftype == vfs.TypeDir {
		for d := toDir; ; {
			if d == src {
				return vfs.ErrInval
			}
			if d.ino == 1 { // reached root
				break
			}
			p, err := fs.getInode(d.parent)
			if err != nil {
				return err
			}
			d = p
		}
	}
	// Handle an existing target.
	dstH, dstExists, err := fs.dirLookupLocked(toDir, toName)
	if err != nil {
		return err
	}
	if dstExists {
		dst, err := fs.getInode(dstH)
		if err != nil {
			return err
		}
		if dst == src {
			return nil // hard links to the same inode: no-op
		}
		switch {
		case dst.ftype == vfs.TypeDir && src.ftype != vfs.TypeDir:
			return vfs.ErrIsDir
		case dst.ftype != vfs.TypeDir && src.ftype == vfs.TypeDir:
			return vfs.ErrNotDir
		case dst.ftype == vfs.TypeDir:
			ents, err := fs.readDirLocked(dst)
			if err != nil {
				return err
			}
			if len(ents) != 0 {
				return vfs.ErrNotEmpty
			}
			if _, _, err := fs.dirRemoveLocked(toDir, toName); err != nil {
				return err
			}
			toDir.nlink--
			if err := fs.dropInode(dst); err != nil {
				return err
			}
		default:
			if _, _, err := fs.dirRemoveLocked(toDir, toName); err != nil {
				return err
			}
			dst.nlink--
			if dst.nlink == 0 {
				if err := fs.dropInode(dst); err != nil {
					return err
				}
			}
		}
	}
	if _, _, err := fs.dirRemoveLocked(fromDir, fromName); err != nil {
		return err
	}
	if err := fs.dirAddLocked(toDir, srcH, toName); err != nil {
		return err
	}
	if src.ftype == vfs.TypeDir && fromDir != toDir {
		src.parent = vfs.Handle{Ino: toDir.ino, Gen: toDir.gen}
		fromDir.nlink--
		toDir.nlink++
	}
	src.ctime = fs.now()
	return nil
}

// Symlink implements vfs.FS.
func (fs *FFS) Symlink(dirH vfs.Handle, name, target string, mode uint32) (vfs.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return vfs.Attr{}, err
	}
	if err := fs.checkNewName(dir, name); err != nil {
		return vfs.Attr{}, err
	}
	if uint64(len(fs.inodes)) >= fs.maxInodes {
		return vfs.Attr{}, vfs.ErrNoSpace
	}
	ip := fs.allocInode(vfs.TypeSymlink, mode, 0, 0)
	ip.linkTarget = target
	ip.size = uint64(len(target))
	if err := fs.dirAddLocked(dir, vfs.Handle{Ino: ip.ino, Gen: ip.gen}, name); err != nil {
		fs.dropInode(ip)
		return vfs.Attr{}, err
	}
	return ip.attr(), nil
}

// Readlink implements vfs.FS.
func (fs *FFS) Readlink(h vfs.Handle) (string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	ip, err := fs.getInode(h)
	if err != nil {
		return "", err
	}
	if ip.ftype != vfs.TypeSymlink {
		return "", vfs.ErrInval
	}
	return ip.linkTarget, nil
}

// Link implements vfs.FS.
func (fs *FFS) Link(dirH vfs.Handle, name string, target vfs.Handle) (vfs.Attr, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	dir, err := fs.getInode(dirH)
	if err != nil {
		return vfs.Attr{}, err
	}
	tp, err := fs.getInode(target)
	if err != nil {
		return vfs.Attr{}, err
	}
	if tp.ftype == vfs.TypeDir {
		return vfs.Attr{}, vfs.ErrIsDir
	}
	if err := fs.checkNewName(dir, name); err != nil {
		return vfs.Attr{}, err
	}
	if err := fs.dirAddLocked(dir, target, name); err != nil {
		return vfs.Attr{}, err
	}
	tp.nlink++
	tp.ctime = fs.now()
	return tp.attr(), nil
}
