// Package ffs implements an inode- and block-based local filesystem in
// the style of the Berkeley Fast File System. It is both the backing
// store the DisCFS server exports and the "FFS" baseline of the paper's
// evaluation (local filesystem, no RPC, no policy checks).
//
// The layout is faithful in structure: fixed-size blocks addressed
// through 12 direct pointers, one single-indirect and one double-indirect
// block per inode; directories store packed entries in their data blocks;
// inode slots carry generation numbers that advance on reuse, so stale
// handles are detected (the inode+generation scheme the paper proposes
// as future work). Persistence to a real disk is out of scope — the
// device is RAM-backed, optionally with a seek/bandwidth cost model.
package ffs

import (
	"fmt"
	"sync"
	"time"
)

// BlockDevice is the storage a filesystem is built on.
type BlockDevice interface {
	// BlockSize returns the device block size in bytes.
	BlockSize() int
	// NumBlocks returns the device capacity in blocks.
	NumBlocks() uint32
	// ReadBlock fills buf (BlockSize bytes) from block bn.
	ReadBlock(bn uint32, buf []byte) error
	// WriteBlock stores data (at most BlockSize bytes) to block bn.
	WriteBlock(bn uint32, data []byte) error
}

// SyncDevice is an optional BlockDevice capability: a device with a
// volatile write cache implements Sync to flush it to stable storage.
// The filesystem calls it synchronously after metadata writes and from
// FFS.Sync (the COMMIT durability barrier); crash-consistency tests
// inject devices that lose unsynced writes at a simulated power cut.
type SyncDevice interface {
	Sync() error
}

// DiskModel adds synthetic device costs, letting experiments approximate
// spinning-disk behaviour. The zero value charges nothing.
type DiskModel struct {
	// SeekLatency is charged once per non-sequential block access.
	SeekLatency time.Duration
	// BytesPerSecond bounds transfer bandwidth; 0 means unlimited.
	BytesPerSecond int64
	// Exclusive serializes the modeled delay like one spindle: the
	// device lock is held while the cost elapses, so concurrent
	// accesses queue instead of overlapping their delays. Without it
	// the model bounds per-access latency but not aggregate bandwidth —
	// N goroutines extract N times BytesPerSecond. Scale-out
	// experiments set it so a server's throughput is genuinely
	// device-bound and adding servers adds real aggregate bandwidth.
	Exclusive bool
}

// MemDevice is a RAM-backed block device with lazy allocation.
type MemDevice struct {
	blockSize int
	numBlocks uint32
	model     DiskModel

	mu     sync.Mutex
	blocks map[uint32][]byte
	lastBn uint32
	// debt accumulates Exclusive-mode delay not yet slept. Per-block
	// delays at realistic bandwidths are tens of microseconds — far
	// below what time.Sleep can honor accurately — so the model sleeps
	// in coarser quanta and settles against the measured sleep time
	// (overshoot carries forward as credit).
	debt time.Duration
}

// exclusiveQuantum is the Exclusive-mode sleep granularity: large
// enough that scheduler overshoot is a small relative error, small
// enough that devices stay smoothly paced.
const exclusiveQuantum = 2 * time.Millisecond

// NewMemDevice creates a device with numBlocks blocks of blockSize bytes.
func NewMemDevice(blockSize int, numBlocks uint32, model DiskModel) *MemDevice {
	return &MemDevice{
		blockSize: blockSize,
		numBlocks: numBlocks,
		model:     model,
		blocks:    make(map[uint32][]byte),
	}
}

// BlockSize returns the device block size.
func (d *MemDevice) BlockSize() int { return d.blockSize }

// NumBlocks returns the device capacity in blocks.
func (d *MemDevice) NumBlocks() uint32 { return d.numBlocks }

// charge applies the disk model for an access to bn of n bytes.
// Called with d.mu held.
func (d *MemDevice) charge(bn uint32, n int) {
	m := d.model
	var delay time.Duration
	if m.SeekLatency > 0 && bn != d.lastBn+1 && bn != d.lastBn {
		delay += m.SeekLatency
	}
	if m.BytesPerSecond > 0 {
		delay += time.Duration(int64(n) * int64(time.Second) / m.BytesPerSecond)
	}
	d.lastBn = bn
	if m.Exclusive {
		// Hold d.mu while the cost elapses: one access at a time, like
		// one head. The sleep itself is batched through a debt account.
		d.debt += delay
		if d.debt >= exclusiveQuantum {
			start := time.Now()
			time.Sleep(d.debt)
			d.debt -= time.Since(start)
		}
		return
	}
	if delay > 0 {
		d.mu.Unlock()
		time.Sleep(delay)
		d.mu.Lock()
	}
}

// ReadBlock implements BlockDevice.
func (d *MemDevice) ReadBlock(bn uint32, buf []byte) error {
	if bn >= d.numBlocks {
		return fmt.Errorf("ffs: read of block %d beyond device (%d blocks)", bn, d.numBlocks)
	}
	if len(buf) != d.blockSize {
		return fmt.Errorf("ffs: read buffer is %d bytes, want %d", len(buf), d.blockSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.charge(bn, d.blockSize)
	if b, ok := d.blocks[bn]; ok {
		copy(buf, b)
	} else {
		for i := range buf {
			buf[i] = 0
		}
	}
	return nil
}

// WriteBlock implements BlockDevice.
func (d *MemDevice) WriteBlock(bn uint32, data []byte) error {
	if bn >= d.numBlocks {
		return fmt.Errorf("ffs: write of block %d beyond device (%d blocks)", bn, d.numBlocks)
	}
	if len(data) > d.blockSize {
		return fmt.Errorf("ffs: write of %d bytes exceeds block size %d", len(data), d.blockSize)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.charge(bn, len(data))
	b, ok := d.blocks[bn]
	if !ok {
		b = make([]byte, d.blockSize)
		d.blocks[bn] = b
	}
	copy(b, data)
	if len(data) < d.blockSize {
		for i := len(data); i < d.blockSize; i++ {
			b[i] = 0
		}
	}
	return nil
}

// Sync implements SyncDevice. RAM is "stable storage" here, so there is
// nothing to flush.
func (d *MemDevice) Sync() error { return nil }

// AllocatedBlocks reports how many blocks hold data, for tests.
func (d *MemDevice) AllocatedBlocks() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.blocks)
}
