package ffs

// Concurrency stress for the per-inode lock table: workers hammer one
// filesystem with create/write/read/rename/remove/mkdir traffic across
// a set of SHARED directories while a checker goroutine periodically
// quiesces the filesystem and runs fsck. Names are worker-unique, so
// each worker tracks its own files against a byte-exact model even
// though every directory is contended. Run with -race (CI does).

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"discfs/internal/vfs"
)

type stressFile struct {
	name    string
	dir     int // index into the shared dirs
	content []byte
	exists  bool
}

func stressFSWorker(t *testing.T, fs *FFS, dirs []vfs.Handle, worker, ops int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	const filesPerWorker = 4
	files := make([]stressFile, filesPerWorker)
	for j := range files {
		files[j] = stressFile{name: fmt.Sprintf("w%d-f%d", worker, j)}
	}
	resolve := func(f *stressFile) (vfs.Handle, error) {
		a, err := fs.Lookup(dirs[f.dir], f.name)
		if err != nil {
			return vfs.Handle{}, err
		}
		return a.Handle, nil
	}
	for op := 0; op < ops; op++ {
		f := &files[rng.Intn(filesPerWorker)]
		switch k := rng.Intn(10); {
		case k < 2: // create or remove
			if !f.exists {
				if _, err := fs.Create(dirs[f.dir], f.name, 0o644); err != nil {
					return fmt.Errorf("w%d op %d: create %s: %w", worker, op, f.name, err)
				}
				f.exists = true
				f.content = nil
			} else {
				if err := fs.Remove(dirs[f.dir], f.name); err != nil {
					return fmt.Errorf("w%d op %d: remove %s: %w", worker, op, f.name, err)
				}
				f.exists = false
			}
		case k < 6: // write a random span
			if !f.exists {
				continue
			}
			h, err := resolve(f)
			if err != nil {
				return fmt.Errorf("w%d op %d: lookup %s: %w", worker, op, f.name, err)
			}
			off := rng.Intn(20000)
			n := rng.Intn(9000) + 1
			data := make([]byte, n)
			for i := range data {
				data[i] = byte(worker*31 + op*7 + i)
			}
			if _, err := fs.Write(h, uint64(off), data); err != nil {
				return fmt.Errorf("w%d op %d: write %s: %w", worker, op, f.name, err)
			}
			if need := off + n; len(f.content) < need {
				f.content = append(f.content, make([]byte, need-len(f.content))...)
			}
			copy(f.content[off:], data)
		case k < 8: // read back and verify byte-exactly
			if !f.exists {
				continue
			}
			h, err := resolve(f)
			if err != nil {
				return fmt.Errorf("w%d op %d: lookup %s: %w", worker, op, f.name, err)
			}
			got, _, err := fs.Read(h, 0, uint32(len(f.content)+1))
			if err != nil {
				return fmt.Errorf("w%d op %d: read %s: %w", worker, op, f.name, err)
			}
			if !bytes.Equal(got, f.content) {
				d := 0
				for d < len(got) && d < len(f.content) && got[d] == f.content[d] {
					d++
				}
				return fmt.Errorf("w%d op %d: %s differs at byte %d (len got=%d want=%d)",
					worker, op, f.name, d, len(got), len(f.content))
			}
		default: // rename into another shared directory (same unique name)
			if !f.exists {
				continue
			}
			to := rng.Intn(len(dirs))
			if err := fs.Rename(dirs[f.dir], f.name, dirs[to], f.name); err != nil {
				return fmt.Errorf("w%d op %d: rename %s d%d->d%d: %w", worker, op, f.name, f.dir, to, err)
			}
			f.dir = to
		}
	}
	return nil
}

func TestStressConcurrentNamespace(t *testing.T) {
	fs, err := New(Config{BlockSize: 4096, NumBlocks: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	root := fs.Root()
	const nDirs = 4
	dirs := make([]vfs.Handle, nDirs)
	for i := range dirs {
		a, err := fs.Mkdir(root, fmt.Sprintf("d%d", i), 0o755)
		if err != nil {
			t.Fatal(err)
		}
		dirs[i] = a.Handle
	}

	const workers, ops = 8, 300
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// A checker goroutine quiesces the live filesystem mid-stress.
	var checkerWg sync.WaitGroup
	checkerWg.Add(1)
	go func() {
		defer checkerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if es := fs.Check(); len(es) != 0 {
				errs <- fmt.Errorf("mid-stress fsck: %v", es[0])
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := stressFSWorker(t, fs, dirs, w, ops, int64(4000+w)); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	checkerWg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if es := fs.Check(); len(es) != 0 {
		t.Fatalf("final fsck: %v", es[0])
	}
	if got := fs.locks.entries(); got != 0 {
		t.Errorf("lock table has %d leaked entries after stress", got)
	}
}
