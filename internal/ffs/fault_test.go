package ffs

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"discfs/internal/vfs"
)

// faultDevice wraps a BlockDevice and fails operations on demand —
// the I/O error injection harness.
type faultDevice struct {
	BlockDevice
	mu        sync.Mutex
	failReads bool
	failWrite bool
	// failAfter counts down; when it reaches zero the next operation
	// fails once. Negative disables.
	failAfter int
}

var errInjected = errors.New("injected device fault")

func (d *faultDevice) arm(after int) {
	d.mu.Lock()
	d.failAfter = after
	d.mu.Unlock()
}

func (d *faultDevice) countdown() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failAfter < 0 {
		return false
	}
	if d.failAfter == 0 {
		d.failAfter = -1
		return true
	}
	d.failAfter--
	return false
}

func (d *faultDevice) ReadBlock(bn uint32, buf []byte) error {
	d.mu.Lock()
	fr := d.failReads
	d.mu.Unlock()
	if fr || d.countdown() {
		return errInjected
	}
	return d.BlockDevice.ReadBlock(bn, buf)
}

func (d *faultDevice) WriteBlock(bn uint32, data []byte) error {
	d.mu.Lock()
	fw := d.failWrite
	d.mu.Unlock()
	if fw || d.countdown() {
		return errInjected
	}
	return d.BlockDevice.WriteBlock(bn, data)
}

func newFaultFS(t *testing.T) (*FFS, *faultDevice) {
	t.Helper()
	dev := &faultDevice{
		BlockDevice: NewMemDevice(1024, 4096, DiskModel{}),
		failAfter:   -1,
	}
	fs, err := New(Config{Device: dev})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return fs, dev
}

func TestReadFaultPropagates(t *testing.T) {
	fs, dev := newFaultFS(t)
	root := fs.Root()
	a, err := fs.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(a.Handle, 0, []byte("data")); err != nil {
		t.Fatal(err)
	}
	dev.mu.Lock()
	dev.failReads = true
	dev.mu.Unlock()
	if _, _, err := fs.Read(a.Handle, 0, 4); !errors.Is(err, errInjected) {
		t.Errorf("Read with failing device = %v, want injected fault", err)
	}
	dev.mu.Lock()
	dev.failReads = false
	dev.mu.Unlock()
	// The filesystem recovers once the device does.
	got, _, err := fs.Read(a.Handle, 0, 4)
	if err != nil || !bytes.Equal(got, []byte("data")) {
		t.Errorf("Read after recovery = %q, %v", got, err)
	}
	mustCheck(t, fs)
}

func TestWriteFaultPropagatesAndStateStaysSound(t *testing.T) {
	fs, dev := newFaultFS(t)
	root := fs.Root()
	a, err := fs.Create(root, "f", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	dev.mu.Lock()
	dev.failWrite = true
	dev.mu.Unlock()
	if _, err := fs.Write(a.Handle, 0, []byte("doomed")); !errors.Is(err, errInjected) {
		t.Errorf("Write with failing device = %v, want injected fault", err)
	}
	dev.mu.Lock()
	dev.failWrite = false
	dev.mu.Unlock()
	// After recovery the file is still usable and fsck may report the
	// block allocated during the failed write (allocation happened, data
	// write failed) — what must NOT happen is corruption of other files.
	if _, err := fs.Write(a.Handle, 0, []byte("fine")); err != nil {
		t.Errorf("Write after recovery: %v", err)
	}
	got, _, err := fs.Read(a.Handle, 0, 4)
	if err != nil || string(got) != "fine" {
		t.Errorf("Read after recovery = %q, %v", got, err)
	}
}

func TestMidOperationFaultLeavesOtherFilesIntact(t *testing.T) {
	fs, dev := newFaultFS(t)
	root := fs.Root()
	stable, err := fs.Create(root, "stable", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	content := bytes.Repeat([]byte("S"), 3000)
	if _, err := fs.Write(stable.Handle, 0, content); err != nil {
		t.Fatal(err)
	}
	victim, err := fs.Create(root, "victim", 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// Fail a few device ops into a multi-block write.
	dev.arm(2)
	_, werr := fs.Write(victim.Handle, 0, bytes.Repeat([]byte("V"), 5000))
	if werr == nil {
		t.Log("mid-write fault did not trigger (allocation pattern changed); arming tighter")
	}
	// The stable file is untouched regardless.
	got, _, err := fs.Read(stable.Handle, 0, 3000)
	if err != nil || !bytes.Equal(got, content) {
		t.Errorf("stable file damaged by unrelated fault: %v", err)
	}
}

func TestCustomDeviceGeometryRespected(t *testing.T) {
	dev := NewMemDevice(2048, 512, DiskModel{})
	fs, err := New(Config{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	st, err := fs.StatFS()
	if err != nil {
		t.Fatal(err)
	}
	if st.BlockSize != 2048 || st.TotalBlocks != 512 {
		t.Errorf("geometry = %+v, want device's 2048/512", st)
	}
	// Conflicting explicit block size is rejected.
	if _, err := New(Config{Device: dev, BlockSize: 4096}); !errors.Is(err, vfs.ErrInval) {
		t.Errorf("conflicting geometry accepted: %v", err)
	}
}
