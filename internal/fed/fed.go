// Package fed implements DisCFS namespace federation: a client-side
// routing table that partitions one logical tree across several
// independent servers ("shards").
//
// Two mechanisms compose:
//
//   - Grafts: static mount-style bindings. A graft maps an absolute
//     path to a shard; resolving that path yields the shard's exported
//     root, and everything beneath it lives on that shard.
//   - Shard subtree: one configured directory whose immediate children
//     are spread across all shards by consistent hashing of the child
//     name. Every shard holds the same subtree path in its own tree;
//     a child lives on the shard its name hashes to.
//
// Routing is purely client-side. Servers are stock discfsd processes
// that know nothing about each other; authority spans them because
// KeyNote credentials are self-certifying delegation chains that each
// server evaluates locally (no shared session state). The shard a
// handle belongs to is carried in the top byte of the handle's inode
// number (see internal/nfs ShardOfIno/TagIno), so after the first
// lookup every operation routes without consulting the table.
//
// The hash ring is keyed by shard *index*, not address: given the same
// shard count, Owner is deterministic across processes, which lets
// tooling (benchmarks, tests, operators) predict placement.
package fed

import (
	"fmt"
	"hash/fnv"
	"net"
	"path"
	"sort"
	"strings"
)

// Spec configures a federation. The zero value means "no federation".
type Spec struct {
	// Extra holds the addresses of shards 1..N-1. Shard 0 is the
	// primary server the client dials; it exports the logical root.
	Extra []string

	// Grafts maps cleaned absolute paths to shard ids. The grafted
	// path resolves to that shard's root directory.
	Grafts map[string]int

	// ShardSubtree is the absolute path of the directory whose
	// children are consistent-hashed across all shards ("" disables).
	ShardSubtree string
}

// Table is a compiled, immutable routing table.
type Table struct {
	n       int // shard count, >= 1
	grafts  map[string]int
	subtree string
	ring    ring
}

// Enabled reports whether sp describes any federation at all.
func (sp Spec) Enabled() bool {
	return len(sp.Extra) > 0 || len(sp.Grafts) > 0 || sp.ShardSubtree != ""
}

// Clean canonicalizes p as an absolute slash path ("/a/b"; "/" for the
// root).
func Clean(p string) string {
	if !strings.HasPrefix(p, "/") {
		p = "/" + p
	}
	return path.Clean(p)
}

// New compiles a spec into a routing table. The shard count is
// 1+len(sp.Extra); every graft target must name a valid shard, and the
// shard subtree must not sit at or under a graft (a graft would shadow
// it on the grafted shard).
func New(sp Spec) (*Table, error) {
	t := &Table{n: 1 + len(sp.Extra)}
	if len(sp.Grafts) > 0 {
		t.grafts = make(map[string]int, len(sp.Grafts))
		for p, sh := range sp.Grafts {
			cp := Clean(p)
			if cp == "/" {
				return nil, fmt.Errorf("fed: cannot graft the root")
			}
			if sh < 0 || sh >= t.n {
				return nil, fmt.Errorf("fed: graft %s: shard %d out of range [0,%d)", cp, sh, t.n)
			}
			if sh == 0 {
				// The primary already exports the logical root; grafting
				// it back in would alias the root inside itself (an
				// infinite directory cycle for any tree walk).
				return nil, fmt.Errorf("fed: graft %s: cannot graft to the primary (shard 0)", cp)
			}
			t.grafts[cp] = sh
		}
	}
	if sp.ShardSubtree != "" {
		t.subtree = Clean(sp.ShardSubtree)
		if t.subtree == "/" {
			return nil, fmt.Errorf("fed: cannot shard the root directory")
		}
		for g := range t.grafts {
			if t.subtree == g || strings.HasPrefix(t.subtree, g+"/") {
				return nil, fmt.Errorf("fed: shard subtree %s lies under graft %s", t.subtree, g)
			}
		}
	}
	t.ring = newRing(t.n)
	return t, nil
}

// NumShards returns the shard count (>= 1).
func (t *Table) NumShards() int { return t.n }

// ShardSubtree returns the cleaned sharded-directory path, or "".
func (t *Table) ShardSubtree() string { return t.subtree }

// Graft returns the shard a cleaned path is grafted to, if any.
func (t *Table) Graft(cleanPath string) (int, bool) {
	if t.grafts == nil {
		return 0, false
	}
	sh, ok := t.grafts[cleanPath]
	return sh, ok
}

// GraftsUnder returns the graft names directly inside dir (a cleaned
// path), sorted; used to surface mount points in listings and walks.
func (t *Table) GraftsUnder(dir string) []string {
	var names []string
	for g := range t.grafts {
		parent, name := path.Split(g)
		if Clean(parent) == dir {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Sharded reports whether dir (a cleaned path) is the shard subtree,
// i.e. whether its children are hashed across shards.
func (t *Table) Sharded(dir string) bool {
	return t.subtree != "" && dir == t.subtree
}

// Owner returns the shard owning a child name of the shard subtree.
func (t *Table) Owner(name string) int { return t.ring.owner(name) }

// ring is a consistent-hash ring over shard indexes with virtual
// nodes, so adding a shard moves only ~1/n of the keyspace.
type ring struct {
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

const vnodes = 64

func newRing(n int) ring {
	r := ring{points: make([]ringPoint, 0, n*vnodes)}
	for sh := 0; sh < n; sh++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d/vnode-%d", sh, v)),
				shard: sh,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

func (r ring) owner(name string) int {
	h := hash64(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap around the ring
	}
	return r.points[i].shard
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ParsePeers parses a comma-separated revocation-feed peer list
// ("host:port,host:port") into validated addresses. Entries are
// trimmed; empty entries and duplicates are rejected.
func ParsePeers(list string) ([]string, error) {
	if strings.TrimSpace(list) == "" {
		return nil, nil
	}
	parts := strings.Split(list, ",")
	addrs := make([]string, 0, len(parts))
	for _, p := range parts {
		addrs = append(addrs, strings.TrimSpace(p))
	}
	if err := ValidatePeers(addrs); err != nil {
		return nil, err
	}
	return addrs, nil
}

// ValidatePeers checks a revocation-feed peer list: every address must
// be a non-empty host:port, and no address may repeat.
func ValidatePeers(addrs []string) error {
	seen := make(map[string]bool, len(addrs))
	for _, a := range addrs {
		if strings.TrimSpace(a) == "" {
			return fmt.Errorf("fed: empty peer address")
		}
		if _, _, err := net.SplitHostPort(a); err != nil {
			return fmt.Errorf("fed: peer %q: %v", a, err)
		}
		if seen[a] {
			return fmt.Errorf("fed: duplicate peer %q", a)
		}
		seen[a] = true
	}
	return nil
}
