package fed

import (
	"fmt"
	"testing"
)

func TestSpecValidation(t *testing.T) {
	if _, err := New(Spec{Grafts: map[string]int{"/a": 3}}); err == nil {
		t.Fatal("graft to out-of-range shard accepted")
	}
	if _, err := New(Spec{Grafts: map[string]int{"/": 0}, Extra: []string{"x"}}); err == nil {
		t.Fatal("root graft accepted")
	}
	if _, err := New(Spec{ShardSubtree: "/"}); err == nil {
		t.Fatal("sharding the root accepted")
	}
	if _, err := New(Spec{
		Extra:        []string{"x"},
		Grafts:       map[string]int{"/archive": 1},
		ShardSubtree: "/archive/data",
	}); err == nil {
		t.Fatal("shard subtree under a graft accepted")
	}
	tab, err := New(Spec{
		Extra:        []string{"x", "y"},
		Grafts:       map[string]int{"archive": 2, "/pub/mirror": 1},
		ShardSubtree: "data/",
	})
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumShards() != 3 {
		t.Fatalf("NumShards = %d, want 3", tab.NumShards())
	}
	if got := tab.ShardSubtree(); got != "/data" {
		t.Fatalf("ShardSubtree = %q, want /data", got)
	}
	if sh, ok := tab.Graft("/archive"); !ok || sh != 2 {
		t.Fatalf("Graft(/archive) = %d,%v", sh, ok)
	}
	if _, ok := tab.Graft("/archive/sub"); ok {
		t.Fatal("Graft matched a descendant of the graft point")
	}
	if !tab.Sharded("/data") || tab.Sharded("/data/x") || tab.Sharded("/") {
		t.Fatal("Sharded predicate wrong")
	}
	if got := tab.GraftsUnder("/"); len(got) != 1 || got[0] != "archive" {
		t.Fatalf("GraftsUnder(/) = %v", got)
	}
	if got := tab.GraftsUnder("/pub"); len(got) != 1 || got[0] != "mirror" {
		t.Fatalf("GraftsUnder(/pub) = %v", got)
	}
}

// TestRingDeterministicAndBalanced pins the two properties routing
// relies on: Owner depends only on (shard count, name) so separate
// processes agree on placement, and names spread roughly evenly.
func TestRingDeterministicAndBalanced(t *testing.T) {
	a, _ := New(Spec{Extra: []string{"b", "c"}})
	b, _ := New(Spec{Extra: []string{"different", "addresses"}})
	counts := make([]int, 3)
	const names = 3000
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("file-%04d.dat", i)
		sh := a.Owner(name)
		if sh < 0 || sh >= 3 {
			t.Fatalf("Owner(%s) = %d out of range", name, sh)
		}
		if b.Owner(name) != sh {
			t.Fatalf("Owner(%s) differs between equal-sized rings", name)
		}
		counts[sh]++
	}
	for sh, n := range counts {
		if n < names/3/2 || n > names/3*2 {
			t.Fatalf("shard %d owns %d of %d names: ring badly unbalanced %v", sh, n, names, counts)
		}
	}
}

// TestRingStability: growing the ring by one shard must not reshuffle
// the whole keyspace — consistent hashing moves only a minority of
// names.
func TestRingStability(t *testing.T) {
	three, _ := New(Spec{Extra: []string{"b", "c"}})
	four, _ := New(Spec{Extra: []string{"b", "c", "d"}})
	moved := 0
	const names = 3000
	for i := 0; i < names; i++ {
		name := fmt.Sprintf("file-%04d.dat", i)
		if three.Owner(name) != four.Owner(name) {
			moved++
		}
	}
	// Ideal is 1/4 of names; allow generous slack but far below a full
	// reshuffle (which would move ~2/3).
	if moved > names/2 {
		t.Fatalf("adding one shard moved %d/%d names", moved, names)
	}
}

func TestCleanPaths(t *testing.T) {
	for in, want := range map[string]string{
		"data":     "/data",
		"/data/":   "/data",
		"//a//b/.": "/a/b",
		"/":        "/",
		"":         "/",
	} {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers(" a:1 , b:2,c:3 ")
	if err != nil {
		t.Fatalf("ParsePeers: %v", err)
	}
	if len(got) != 3 || got[0] != "a:1" || got[1] != "b:2" || got[2] != "c:3" {
		t.Fatalf("ParsePeers = %v, want trimmed [a:1 b:2 c:3]", got)
	}
	if got, err = ParsePeers("   "); err != nil || got != nil {
		t.Fatalf("ParsePeers(blank) = %v, %v, want nil, nil", got, err)
	}
	for _, bad := range []string{"a:1,,b:2", "nohostport", "a:1,a:1"} {
		if _, err := ParsePeers(bad); err == nil {
			t.Errorf("ParsePeers(%q) accepted", bad)
		}
	}
	if err := ValidatePeers([]string{"x:1", "y:2"}); err != nil {
		t.Errorf("ValidatePeers(valid) = %v", err)
	}
	if err := ValidatePeers([]string{""}); err == nil {
		t.Error("ValidatePeers(empty entry) accepted")
	}
}
