// Package limiter implements per-principal admission control for the
// server request path: a token-bucket rate limit plus a concurrency cap
// keyed by the authenticated secure-channel principal. The paper's
// threat model has many mutually-untrusting principals sharing one
// server; the limiter keeps a single hot principal from starving the
// rest while leaving everyone else at full speed.
//
// Acquire blocks for at most the configured wait: a request that would
// have to wait longer is rejected with ErrLimited immediately, so
// callers can distinguish shaping (back off and retry) from a hung
// server (no reply at all).
package limiter

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrLimited is the sentinel all limiter rejections wrap.
var ErrLimited = errors.New("limiter: principal over limit")

// Limits configures one principal's admission budget. Zero values mean
// unlimited on that axis.
type Limits struct {
	// RPS is the sustained request rate (tokens per second).
	RPS float64
	// Burst is the bucket depth; 0 defaults to max(1, RPS).
	Burst float64
	// InFlight caps concurrently executing requests.
	InFlight int
}

func (l Limits) normalized() Limits {
	if l.RPS > 0 && l.Burst <= 0 {
		l.Burst = l.RPS
		if l.Burst < 1 {
			l.Burst = 1
		}
	}
	return l
}

// unlimited reports whether the limits constrain nothing.
func (l Limits) unlimited() bool { return l.RPS <= 0 && l.InFlight <= 0 }

// DefaultMaxWait bounds how long Acquire shapes a request before
// rejecting it.
const DefaultMaxWait = 250 * time.Millisecond

// Config configures a Limiter.
type Config struct {
	// Default applies to every principal without an override.
	Default Limits
	// Overrides maps canonical principal strings to their limits.
	Overrides map[string]Limits
	// MaxWait bounds shaping delay before rejection (0 means
	// DefaultMaxWait; negative means reject immediately).
	MaxWait time.Duration
	// Now injects a clock for tests; nil means time.Now. Only token
	// refill reads it — shaping sleeps use the real clock.
	Now func() time.Time
}

// Stats are cumulative limiter rejection counts.
type Stats struct {
	// ThrottledRate counts rejections by the token bucket.
	ThrottledRate uint64
	// ThrottledConcurrency counts rejections by the in-flight cap.
	ThrottledConcurrency uint64
}

// A Limiter admits requests per principal.
type Limiter struct {
	cfg Config

	mu      sync.Mutex
	buckets map[string]*bucket

	throttledRate atomic.Uint64
	throttledConc atomic.Uint64
}

// bucket is one principal's admission state.
type bucket struct {
	limits Limits
	slots  chan struct{} // concurrency cap; nil means unlimited

	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// New builds a limiter; returns nil when nothing is limited (callers
// may skip the admission hook entirely).
func New(cfg Config) *Limiter {
	cfg.Default = cfg.Default.normalized()
	norm := make(map[string]Limits, len(cfg.Overrides))
	limited := !cfg.Default.unlimited()
	for k, v := range cfg.Overrides {
		v = v.normalized()
		norm[k] = v
		if !v.unlimited() {
			limited = true
		}
	}
	cfg.Overrides = norm
	if !limited {
		return nil
	}
	if cfg.MaxWait == 0 {
		cfg.MaxWait = DefaultMaxWait
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Limiter{cfg: cfg, buckets: make(map[string]*bucket)}
}

// bucketFor returns (creating on first use) the principal's bucket.
func (l *Limiter) bucketFor(principal string) *bucket {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, ok := l.buckets[principal]
	if !ok {
		lim := l.cfg.Default
		if o, ok := l.cfg.Overrides[principal]; ok {
			lim = o
		}
		b = &bucket{limits: lim, tokens: lim.Burst, last: l.cfg.Now()}
		if lim.InFlight > 0 {
			b.slots = make(chan struct{}, lim.InFlight)
		}
		l.buckets[principal] = b
	}
	return b
}

// Principals reports how many principals have admission state.
func (l *Limiter) Principals() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

// Stats reports cumulative rejection counts.
func (l *Limiter) Stats() Stats {
	return Stats{
		ThrottledRate:        l.throttledRate.Load(),
		ThrottledConcurrency: l.throttledConc.Load(),
	}
}

// Acquire admits one request for principal, blocking up to the
// configured wait while shaping. On success it returns a release
// function the caller must invoke when the request finishes; on
// rejection it returns an error wrapping ErrLimited.
func (l *Limiter) Acquire(principal string) (func(), error) {
	b := l.bucketFor(principal)
	release := func() {}
	maxWait := l.cfg.MaxWait
	if maxWait < 0 {
		maxWait = 0
	}

	if b.slots != nil {
		select {
		case b.slots <- struct{}{}:
		default:
			if maxWait == 0 {
				l.throttledConc.Add(1)
				return nil, fmt.Errorf("%w: %d requests in flight", ErrLimited, b.limits.InFlight)
			}
			t := time.NewTimer(maxWait)
			select {
			case b.slots <- struct{}{}:
				t.Stop()
			case <-t.C:
				l.throttledConc.Add(1)
				return nil, fmt.Errorf("%w: %d requests in flight", ErrLimited, b.limits.InFlight)
			}
		}
		release = func() { <-b.slots }
	}

	if b.limits.RPS > 0 {
		b.mu.Lock()
		now := l.cfg.Now()
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * b.limits.RPS
			if b.tokens > b.limits.Burst {
				b.tokens = b.limits.Burst
			}
			b.last = now
		}
		var wait time.Duration
		if b.tokens < 1 {
			// Reserve the token and sleep out the deficit outside the
			// lock — arrivals queue FIFO-ish by growing the deficit.
			wait = time.Duration((1 - b.tokens) / b.limits.RPS * float64(time.Second))
			if wait > maxWait {
				b.mu.Unlock()
				release()
				l.throttledRate.Add(1)
				return nil, fmt.Errorf("%w: rate %g req/s exceeded", ErrLimited, b.limits.RPS)
			}
		}
		b.tokens--
		b.mu.Unlock()
		if wait > 0 {
			time.Sleep(wait)
		}
	}

	return release, nil
}
