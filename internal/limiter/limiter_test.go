package limiter

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTokenBucketRate drives the bucket with an injected clock: a hot
// principal at 100 req/s with burst 10 must admit exactly its budget —
// the burst up front plus one token per 10ms step — and reject the
// rest immediately (MaxWait < 0 disables shaping).
func TestTokenBucketRate(t *testing.T) {
	now := time.Unix(0, 0)
	l := New(Config{
		Overrides: map[string]Limits{"hot": {RPS: 100, Burst: 10}},
		MaxWait:   -1,
		Now:       func() time.Time { return now },
	})
	if l == nil {
		t.Fatal("New returned nil for a limited config")
	}

	admitted, rejected := 0, 0
	admit := func(n int) {
		for i := 0; i < n; i++ {
			rel, err := l.Acquire("hot")
			if err != nil {
				if !errors.Is(err, ErrLimited) {
					t.Fatalf("rejection does not wrap ErrLimited: %v", err)
				}
				rejected++
				continue
			}
			rel()
			admitted++
		}
	}

	admit(30) // burst: 10 admitted, 20 rejected
	if admitted != 10 {
		t.Fatalf("burst admitted %d, want 10", admitted)
	}
	for step := 0; step < 100; step++ { // 1s in 10ms steps = 100 tokens
		now = now.Add(10 * time.Millisecond)
		admit(3) // over-offered: 1 per step fits the budget
	}
	if admitted != 110 {
		t.Errorf("admitted %d over burst+1s, want 110 (burst 10 + 100 rps)", admitted)
	}
	if rejected == 0 {
		t.Error("no rejections despite 3x over-offering")
	}
	if st := l.Stats(); st.ThrottledRate != uint64(rejected) {
		t.Errorf("Stats().ThrottledRate = %d, want %d", st.ThrottledRate, rejected)
	}
}

// TestInFlightCap exercises the concurrency axis: with InFlight 2 the
// third concurrent request is refused until a slot is released.
func TestInFlightCap(t *testing.T) {
	l := New(Config{
		Overrides: map[string]Limits{"p": {InFlight: 2}},
		MaxWait:   -1,
	})
	r1, err := l.Acquire("p")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := l.Acquire("p")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Acquire("p"); !errors.Is(err, ErrLimited) {
		t.Fatalf("third acquire = %v, want ErrLimited", err)
	}
	r1()
	r3, err := l.Acquire("p")
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r3()
	r2()
	if st := l.Stats(); st.ThrottledConcurrency != 1 {
		t.Errorf("ThrottledConcurrency = %d, want 1", st.ThrottledConcurrency)
	}
}

// TestFairnessUnderContention is the noisy-neighbor property under the
// race detector: 8 goroutines — 4 hammering one rate-limited hot
// principal, 4 as distinct unlimited principals — run concurrently.
// The hot principal must be capped near its budget while every cold
// request is admitted (0% degradation against a no-contention
// baseline, where the issue tolerates 10%).
func TestFairnessUnderContention(t *testing.T) {
	const (
		hotRPS   = 50.0
		duration = 300 * time.Millisecond
		coldN    = 2000 // fixed offered load per cold goroutine
	)
	l := New(Config{
		Overrides: map[string]Limits{"hot": {RPS: hotRPS}},
		MaxWait:   -1,
	})

	var hotAdmitted, hotRejected, coldAdmitted atomic.Uint64
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				rel, err := l.Acquire("hot")
				if err != nil {
					hotRejected.Add(1)
					continue
				}
				rel()
				hotAdmitted.Add(1)
			}
		}()
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			key := []string{"alice", "bob", "carol", "dave"}[id]
			for i := 0; i < coldN; i++ {
				rel, err := l.Acquire(key)
				if err != nil {
					t.Errorf("cold principal %s throttled: %v", key, err)
					return
				}
				rel()
				coldAdmitted.Add(1)
			}
		}(g)
	}
	wg.Wait()

	// Budget: the initial burst (== RPS when unset) plus refill over the
	// window, with headroom for scheduling jitter.
	budget := hotRPS + hotRPS*duration.Seconds()
	if got := hotAdmitted.Load(); float64(got) > budget*1.5 {
		t.Errorf("hot admitted %d, want <= ~%.0f (rate cap leaking)", got, budget)
	}
	if hotRejected.Load() == 0 {
		t.Error("hot principal was never throttled under 4-goroutine hammering")
	}
	if got := coldAdmitted.Load(); got != 4*coldN {
		t.Errorf("cold admitted %d of %d offered: unlimited principals degraded", got, 4*coldN)
	}
	if got := l.Principals(); got != 5 {
		t.Errorf("Principals() = %d, want 5", got)
	}
}
