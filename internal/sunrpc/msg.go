// Package sunrpc implements ONC RPC version 2 (RFC 5531) over TCP with
// record marking, the remote procedure call layer NFS is defined on.
//
// The package provides a concurrent Client with xid matching and a
// Server that dispatches by (program, version, procedure) and exposes
// the transport's authenticated peer identity to handlers — the hook the
// DisCFS server uses to bind NFS requests to the client's public key.
package sunrpc

import (
	"errors"
	"fmt"

	"discfs/internal/xdr"
)

// RPC protocol constants (RFC 5531).
const (
	rpcVersion = 2

	msgTypeCall  = 0
	msgTypeReply = 1

	replyStatAccepted = 0
	replyStatDenied   = 1
)

// AcceptStat is the status of an accepted RPC reply.
type AcceptStat uint32

// Accepted-reply status codes.
const (
	Success      AcceptStat = 0 // call executed
	ProgUnavail  AcceptStat = 1 // program not exported here
	ProgMismatch AcceptStat = 2 // version not supported
	ProcUnavail  AcceptStat = 3 // procedure not defined
	GarbageArgs  AcceptStat = 4 // arguments failed to decode
	SystemErr    AcceptStat = 5 // internal error

	// ServerBusy is an implementation extension (both ends of this
	// protocol are ours): the server is saturated or draining and
	// refused to execute the call. Distinguishing overload from a hung
	// server lets clients back off and retry instead of timing out.
	ServerBusy AcceptStat = 100
)

func (s AcceptStat) String() string {
	switch s {
	case Success:
		return "success"
	case ProgUnavail:
		return "program unavailable"
	case ProgMismatch:
		return "program version mismatch"
	case ProcUnavail:
		return "procedure unavailable"
	case GarbageArgs:
		return "garbage arguments"
	case SystemErr:
		return "system error"
	case ServerBusy:
		return "server busy"
	}
	return fmt.Sprintf("accept status %d", uint32(s))
}

// Reject status codes for denied replies.
const (
	rejectRPCMismatch = 0
	rejectAuthError   = 1
)

// Auth flavors.
const (
	AuthNone = 0
	AuthSys  = 1
)

// maxAuthBody is the RFC limit on opaque_auth body length.
const maxAuthBody = 400

// OpaqueAuth is an RPC authenticator.
type OpaqueAuth struct {
	Flavor uint32
	Body   []byte
}

func (a OpaqueAuth) encode(e *xdr.Encoder) {
	e.Uint32(a.Flavor)
	e.Opaque(a.Body)
}

func decodeAuth(d *xdr.Decoder) OpaqueAuth {
	return OpaqueAuth{Flavor: d.Uint32(), Body: d.Opaque(maxAuthBody)}
}

// callHeader is the decoded body of an RPC CALL message.
type callHeader struct {
	Xid  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	Cred OpaqueAuth
	Verf OpaqueAuth
}

// encodeCall serializes a call message header; the caller appends the
// procedure arguments directly to e.
func encodeCall(e *xdr.Encoder, h callHeader) {
	e.Uint32(h.Xid)
	e.Uint32(msgTypeCall)
	e.Uint32(rpcVersion)
	e.Uint32(h.Prog)
	e.Uint32(h.Vers)
	e.Uint32(h.Proc)
	h.Cred.encode(e)
	h.Verf.encode(e)
}

// RPCError is a non-success RPC-level outcome (the call never reached, or
// was rejected by, the remote procedure).
type RPCError struct {
	Stat AcceptStat // for accepted-but-failed replies
	Msg  string
}

func (e *RPCError) Error() string {
	if e.Msg != "" {
		return "sunrpc: " + e.Msg
	}
	return "sunrpc: " + e.Stat.String()
}

// Is makes a ServerBusy RPCError match ErrServerBusy under errors.Is,
// so callers can detect backpressure without depending on the concrete
// error type.
func (e *RPCError) Is(target error) bool {
	return target == ErrServerBusy && e.Stat == ServerBusy
}

// ErrServerBusy reports that the server refused the call because it is
// saturated (the in-flight cap stayed full beyond the bounded wait) or
// draining. The caller should back off and retry, possibly elsewhere.
var ErrServerBusy = errors.New("sunrpc: server busy")

// ErrDenied indicates the server denied the call (auth error or RPC
// version mismatch).
var ErrDenied = errors.New("sunrpc: call denied")
