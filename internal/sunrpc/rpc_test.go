package sunrpc

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"discfs/internal/xdr"
)

// echoProg implements a toy program: proc 1 echoes a string, proc 2 adds
// two uint32s, proc 3 returns the transport peer identity.
const (
	echoProg = 400100
	echoVers = 1
)

func echoHandler(ctx *Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (AcceptStat, error) {
	switch proc {
	case 0:
		return Success, nil
	case 1:
		s := args.String(1 << 16)
		if args.Err() != nil {
			return GarbageArgs, nil
		}
		res.String(s)
		return Success, nil
	case 2:
		a, b := args.Uint32(), args.Uint32()
		if args.Err() != nil {
			return GarbageArgs, nil
		}
		res.Uint32(a + b)
		return Success, nil
	case 3:
		res.String(ctx.Peer)
		return Success, nil
	case 4:
		panic("deliberate handler panic")
	case 5:
		return 0, errors.New("deliberate handler error")
	}
	return ProcUnavail, nil
}

// startServer launches a server on a loopback listener and returns a
// connected client plus a cleanup function.
func startServer(t *testing.T) *Client {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer()
	srv.Register(echoProg, echoVers, echoHandler)
	go srv.Serve(ln)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := NewClient(conn)
	t.Cleanup(func() {
		c.Close()
		srv.Close()
	})
	return c
}

func TestNullProcedure(t *testing.T) {
	c := startServer(t)
	d, err := c.Call(t.Context(), echoProg, echoVers, 0, nil)
	if err != nil {
		t.Fatalf("null call: %v", err)
	}
	if d.Remaining() != 0 {
		t.Errorf("null call returned %d bytes", d.Remaining())
	}
}

func TestEchoAndAdd(t *testing.T) {
	c := startServer(t)
	e := xdr.NewEncoder()
	e.String("hello rpc")
	d, err := c.Call(t.Context(), echoProg, echoVers, 1, e.Bytes())
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	if got := d.String(1 << 16); got != "hello rpc" {
		t.Errorf("echo = %q", got)
	}

	e.Reset()
	e.Uint32(40)
	e.Uint32(2)
	d, err = c.Call(t.Context(), echoProg, echoVers, 2, e.Bytes())
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	if got := d.Uint32(); got != 42 {
		t.Errorf("add = %d", got)
	}
}

func TestProgUnavail(t *testing.T) {
	c := startServer(t)
	_, err := c.Call(t.Context(), 999999, 1, 0, nil)
	var re *RPCError
	if !errors.As(err, &re) || re.Stat != ProgUnavail {
		t.Errorf("err = %v, want ProgUnavail", err)
	}
}

func TestProgMismatch(t *testing.T) {
	c := startServer(t)
	_, err := c.Call(t.Context(), echoProg, 99, 0, nil)
	var re *RPCError
	if !errors.As(err, &re) || re.Stat != ProgMismatch {
		t.Errorf("err = %v, want ProgMismatch", err)
	}
}

func TestProcUnavail(t *testing.T) {
	c := startServer(t)
	_, err := c.Call(t.Context(), echoProg, echoVers, 77, nil)
	var re *RPCError
	if !errors.As(err, &re) || re.Stat != ProcUnavail {
		t.Errorf("err = %v, want ProcUnavail", err)
	}
}

func TestGarbageArgs(t *testing.T) {
	c := startServer(t)
	// proc 2 wants 8 bytes; send 1 word.
	e := xdr.NewEncoder()
	e.Uint32(1)
	_, err := c.Call(t.Context(), echoProg, echoVers, 2, e.Bytes())
	var re *RPCError
	if !errors.As(err, &re) || re.Stat != GarbageArgs {
		t.Errorf("err = %v, want GarbageArgs", err)
	}
}

func TestHandlerPanicBecomesSystemErr(t *testing.T) {
	c := startServer(t)
	_, err := c.Call(t.Context(), echoProg, echoVers, 4, nil)
	var re *RPCError
	if !errors.As(err, &re) || re.Stat != SystemErr {
		t.Errorf("err = %v, want SystemErr", err)
	}
	// The connection must survive the panic.
	if _, err := c.Call(t.Context(), echoProg, echoVers, 0, nil); err != nil {
		t.Errorf("connection dead after panic: %v", err)
	}
}

func TestHandlerErrorBecomesSystemErr(t *testing.T) {
	c := startServer(t)
	_, err := c.Call(t.Context(), echoProg, echoVers, 5, nil)
	var re *RPCError
	if !errors.As(err, &re) || re.Stat != SystemErr {
		t.Errorf("err = %v, want SystemErr", err)
	}
}

func TestConcurrentCalls(t *testing.T) {
	c := startServer(t)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(n uint32) {
			defer wg.Done()
			for j := uint32(0); j < 50; j++ {
				e := xdr.NewEncoder()
				e.Uint32(n)
				e.Uint32(j)
				d, err := c.Call(t.Context(), echoProg, echoVers, 2, e.Bytes())
				if err != nil {
					t.Errorf("call: %v", err)
					return
				}
				if got := d.Uint32(); got != n+j {
					t.Errorf("add(%d,%d) = %d", n, j, got)
					return
				}
			}
		}(uint32(i))
	}
	wg.Wait()
}

func TestClientFailsPendingOnClose(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	// Server that accepts and immediately closes.
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			conn.Close()
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := NewClient(conn)
	defer c.Close()
	if _, err := c.Call(t.Context(), echoProg, echoVers, 0, nil); err == nil {
		t.Error("call on closed connection succeeded")
	}
	// Subsequent calls fail fast with the sticky error.
	if _, err := c.Call(t.Context(), echoProg, echoVers, 0, nil); err == nil {
		t.Error("second call succeeded")
	}
}

func TestRecordMarkingFragmentation(t *testing.T) {
	// A record larger than maxFragment must round-trip via multiple
	// fragments.
	var buf bytes.Buffer
	big := make([]byte, maxFragment*2+1234)
	for i := range big {
		big[i] = byte(i)
	}
	if err := writeRecord(&buf, big); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := readRecord(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, big) {
		t.Error("fragmented record corrupted")
	}
}

func TestRecordSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	// Forged header: 8 MiB fragment, past maxRecordSize.
	buf.Write([]byte{0x80, 0x80, 0x00, 0x00})
	if _, err := readRecord(&buf); err == nil {
		t.Error("oversized record accepted")
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		var buf bytes.Buffer
		if err := writeRecord(&buf, payload); err != nil {
			return false
		}
		got, err := readRecord(&buf)
		if err != nil {
			return false
		}
		return bytes.Equal(got, payload) || (len(payload) == 0 && len(got) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRPCVersionMismatchDenied(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer()
	srv.Register(echoProg, echoVers, echoHandler)
	go srv.Serve(ln)
	defer srv.Close()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Hand-craft a call with rpcvers=3.
	e := xdr.NewEncoder()
	e.Uint32(7)           // xid
	e.Uint32(msgTypeCall) // call
	e.Uint32(3)           // bad rpc version
	e.Uint32(echoProg)
	e.Uint32(echoVers)
	e.Uint32(0)
	OpaqueAuth{}.encode(e)
	OpaqueAuth{}.encode(e)
	if err := writeRecord(conn, e.Bytes()); err != nil {
		t.Fatalf("write: %v", err)
	}
	rec, err := readRecord(conn)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	_, err = decodeReply(rec)
	if !errors.Is(err, ErrDenied) {
		t.Errorf("err = %v, want ErrDenied", err)
	}
}

// TestServerSurvivesWireGarbage floods the server with random byte
// records and raw junk; the connection handling must never panic and the
// server must keep serving well-formed calls afterwards.
func TestServerSurvivesWireGarbage(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.Register(echoProg, echoVers, echoHandler)
	go srv.Serve(ln)
	defer srv.Close()

	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 30; trial++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		switch trial % 3 {
		case 0:
			// Raw junk, no record framing.
			junk := make([]byte, rng.Intn(512))
			rng.Read(junk)
			conn.Write(junk)
		case 1:
			// Valid framing, random record body.
			body := make([]byte, rng.Intn(256))
			rng.Read(body)
			writeRecord(conn, body)
		case 2:
			// Valid call header, truncated args.
			e := xdr.NewEncoder()
			e.Uint32(uint32(trial)) // xid
			e.Uint32(msgTypeCall)
			e.Uint32(rpcVersion)
			e.Uint32(echoProg)
			e.Uint32(echoVers)
			e.Uint32(2) // proc add
			OpaqueAuth{}.encode(e)
			OpaqueAuth{}.encode(e)
			e.Uint32(7) // only half the args
			writeRecord(conn, e.Bytes())
		}
		conn.Close()
	}

	// The server still works.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()
	e := xdr.NewEncoder()
	e.Uint32(20)
	e.Uint32(22)
	d, err := c.Call(t.Context(), echoProg, echoVers, 2, e.Bytes())
	if err != nil {
		t.Fatalf("call after garbage flood: %v", err)
	}
	if got := d.Uint32(); got != 42 {
		t.Errorf("add = %d", got)
	}
}

// TestCallHonorsContext: a canceled context releases the caller while the
// handler is still running, and the connection remains usable.
func TestCallHonorsContext(t *testing.T) {
	block := make(chan struct{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer()
	srv.Register(echoProg, echoVers, func(ctx *Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (AcceptStat, error) {
		if proc == 9 {
			<-block
		}
		return Success, nil
	})
	go srv.Serve(ln)
	defer srv.Close()
	defer close(block)
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewClient(conn)
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(ctx, echoProg, echoVers, 9, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("canceled call = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled call still blocked after 5s")
	}

	// A pre-canceled context fails before touching the wire.
	if _, err := c.Call(ctx, echoProg, echoVers, 0, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-canceled call = %v", err)
	}

	// The connection is still healthy for fresh calls.
	if _, err := c.Call(context.Background(), echoProg, echoVers, 0, nil); err != nil {
		t.Errorf("call after abandoned call: %v", err)
	}
}
