package sunrpc

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"

	"discfs/internal/bufpool"
)

// TestReadRecordManyFragments reassembles a record sent as 100
// fragments — the case the preallocate-and-grow-geometrically path
// exists for (the old append-per-fragment reassembly was quadratic).
func TestReadRecordManyFragments(t *testing.T) {
	const frags = 100
	const fragLen = 1000
	want := make([]byte, frags*fragLen)
	for i := range want {
		want[i] = byte(i * 7)
	}
	var buf bytes.Buffer
	var hdr [4]byte
	for i := 0; i < frags; i++ {
		v := uint32(fragLen)
		if i == frags-1 {
			v |= lastFragmentBit
		}
		binary.BigEndian.PutUint32(hdr[:], v)
		buf.Write(hdr[:])
		buf.Write(want[i*fragLen : (i+1)*fragLen])
	}
	got, err := readRecord(&buf)
	if err != nil {
		t.Fatalf("readRecord: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("100-fragment record corrupted")
	}
	bufpool.Put(got)
}

// TestReadRecordZeroLengthFragments exercises empty fragments mid-record
// and a zero-length record.
func TestReadRecordZeroLengthFragments(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 0) // empty, not last
	buf.Write(hdr[:])
	binary.BigEndian.PutUint32(hdr[:], 3|lastFragmentBit)
	buf.Write(hdr[:])
	buf.Write([]byte("abc"))
	got, err := readRecord(&buf)
	if err != nil || string(got) != "abc" {
		t.Fatalf("got %q, %v", got, err)
	}

	buf.Reset()
	binary.BigEndian.PutUint32(hdr[:], lastFragmentBit)
	buf.Write(hdr[:])
	got, err = readRecord(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty record: %q, %v", got, err)
	}
}

// TestReadRecordTruncated: EOF mid-record is a truncation error, not a
// clean EOF.
func TestReadRecordTruncated(t *testing.T) {
	var buf bytes.Buffer
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], 100) // not last, then nothing
	buf.Write(hdr[:])
	buf.Write(make([]byte, 100))
	if _, err := readRecord(&buf); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated record: %v", err)
	}
}

// TestWriteFramed checks the in-place single-Write framing used by the
// client call path and the server reply path.
func TestWriteFramed(t *testing.T) {
	payload := []byte("some rpc record")
	msg := make([]byte, headerRoom+len(payload))
	copy(msg[headerRoom:], payload)
	var buf bytes.Buffer
	if err := writeFramed(&buf, msg); err != nil {
		t.Fatal(err)
	}
	got, err := readRecord(&buf)
	if err != nil || !bytes.Equal(got, payload) {
		t.Fatalf("round trip: %q, %v", got, err)
	}

	// Oversized payloads fall back to fragmented writes.
	big := make([]byte, maxFragment+headerRoom+999)
	for i := range big {
		big[i] = byte(i)
	}
	buf.Reset()
	if err := writeFramed(&buf, big); err != nil {
		t.Fatal(err)
	}
	got, err = readRecord(&buf)
	if err != nil || !bytes.Equal(got, big[headerRoom:]) {
		t.Fatalf("fragmented framed write failed: %v", err)
	}
}

// TestRecordPoolBalance: a serial write/read cycle returns every pooled
// buffer (the leak check of the record layer).
func TestRecordPoolBalance(t *testing.T) {
	payload := make([]byte, 300<<10)
	before := bufpool.Outstanding()
	for i := 0; i < 32; i++ {
		var buf bytes.Buffer
		if err := writeRecord(&buf, payload); err != nil {
			t.Fatal(err)
		}
		rec, err := readRecord(&buf)
		if err != nil {
			t.Fatal(err)
		}
		bufpool.Put(rec)
	}
	if after := bufpool.Outstanding(); after != before {
		t.Errorf("record layer leaked %d pooled buffers", after-before)
	}
}

func BenchmarkReadRecordLarge(b *testing.B) {
	payload := make([]byte, 512<<10)
	var frame bytes.Buffer
	if err := writeRecord(&frame, payload); err != nil {
		b.Fatal(err)
	}
	raw := frame.Bytes()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rec, err := readRecord(bytes.NewReader(raw))
		if err != nil {
			b.Fatal(err)
		}
		bufpool.Put(rec)
	}
}
