package sunrpc

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"discfs/internal/xdr"
)

// slowProg parks every call briefly so concurrency is observable.
const (
	slowProg = 400200
	slowVers = 1
)

// TestMaxInFlightBoundsConcurrency floods a limit-2 server with slow
// calls from two pipelined connections and asserts no more than two
// handlers ever run at once — the worker cap that keeps a request flood
// (or a stress test) from growing a goroutine per record.
func TestMaxInFlightBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int32
	handler := func(ctx *Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (AcceptStat, error) {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(20 * time.Millisecond)
		cur.Add(-1)
		return Success, nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(WithMaxInFlight(2))
	srv.Register(slowProg, slowVers, handler)
	go srv.Serve(ln)
	defer srv.Close()

	var clients []*Client
	for i := 0; i < 2; i++ {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		c := NewClient(conn)
		defer c.Close()
		clients = append(clients, c)
	}

	const calls = 12
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		c := clients[i%len(clients)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call(t.Context(), slowProg, slowVers, 0, nil); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("call: %v", err)
	}
	if p := peak.Load(); p > 2 {
		t.Errorf("peak concurrent handlers = %d, want <= 2", p)
	}
	if p := peak.Load(); p < 2 {
		t.Logf("peak concurrency only reached %d (timing)", p)
	}
}

// TestSaturationRefusesBusy saturates a limit-1 server whose queue
// wait is near zero: the overflow call must come back as an explicit
// ServerBusy refusal (matching ErrServerBusy) rather than blocking the
// connection's read loop, and the refusal must be counted.
func TestSaturationRefusesBusy(t *testing.T) {
	entered := make(chan struct{}, 1)
	release := make(chan struct{})
	handler := func(ctx *Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (AcceptStat, error) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
		return Success, nil
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	srv := NewServer(WithMaxInFlight(1), WithQueueWait(time.Millisecond))
	srv.Register(slowProg, slowVers, handler)
	go srv.Serve(ln)
	defer srv.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	c := NewClient(conn)
	defer c.Close()

	first := make(chan error, 1)
	go func() {
		_, err := c.Call(t.Context(), slowProg, slowVers, 0, nil)
		first <- err
	}()
	<-entered // the single slot is now held by the parked handler
	// Overflow calls while the only slot is parked on release. The
	// handler never yields it, so these cannot be ordinary slow calls:
	// an error-free return would mean the cap leaked.
	deadline := time.Now().Add(2 * time.Second)
	busy := 0
	for busy == 0 && time.Now().Before(deadline) {
		_, err := c.Call(t.Context(), slowProg, slowVers, 0, nil)
		if err == nil {
			t.Fatal("overflow call succeeded while the slot was held")
		}
		if !errors.Is(err, ErrServerBusy) {
			t.Fatalf("overflow call = %v, want ErrServerBusy", err)
		}
		busy++
	}
	if busy == 0 {
		t.Fatal("no ServerBusy refusal within 2s")
	}
	close(release)
	if err := <-first; err != nil {
		t.Fatalf("parked call: %v", err)
	}
	st := srv.Stats()
	if st.QueueFull == 0 || st.Busy == 0 {
		t.Errorf("Stats() = %+v, want QueueFull > 0 and Busy > 0", st)
	}
}

// TestMaxInFlightUnbounded verifies n <= 0 removes the bound.
func TestMaxInFlightUnbounded(t *testing.T) {
	srv := NewServer(WithMaxInFlight(0))
	if srv.sem != nil {
		t.Fatal("WithMaxInFlight(0) left a semaphore in place")
	}
}
