package sunrpc

import (
	"encoding/binary"
	"fmt"
	"io"
)

// TCP record marking (RFC 5531 §11): each RPC message is sent as one or
// more fragments, each prefixed by a 4-byte header whose high bit marks
// the final fragment and whose low 31 bits carry the fragment length.

const (
	lastFragmentBit = 1 << 31
	// maxRecordSize bounds a reassembled record; NFSv2 READ/WRITE carry
	// at most 8 KiB of data, so 1 MiB is generous while still preventing
	// hostile length fields from exhausting memory.
	maxRecordSize = 1 << 20
	// maxFragment is the largest fragment we emit.
	maxFragment = 1 << 16
)

// writeRecord sends buf as one record, fragmenting as needed. Header and
// payload go out in a single Write: on high-latency transports the extra
// segment for a separate 4-byte header measurably inflates RPC times.
func writeRecord(w io.Writer, buf []byte) error {
	if len(buf) <= maxFragment {
		msg := make([]byte, 4+len(buf))
		binary.BigEndian.PutUint32(msg, uint32(len(buf))|lastFragmentBit)
		copy(msg[4:], buf)
		_, err := w.Write(msg)
		return err
	}
	var hdr [4]byte
	for {
		n := len(buf)
		last := true
		if n > maxFragment {
			n = maxFragment
			last = false
		}
		v := uint32(n)
		if last {
			v |= lastFragmentBit
		}
		binary.BigEndian.PutUint32(hdr[:], v)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
		if last {
			return nil
		}
	}
}

// readRecord reassembles one record from r.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	var rec []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, err
		}
		v := binary.BigEndian.Uint32(hdr[:])
		last := v&lastFragmentBit != 0
		n := int(v &^ lastFragmentBit)
		if n > maxRecordSize || len(rec)+n > maxRecordSize {
			return nil, fmt.Errorf("sunrpc: record exceeds %d bytes", maxRecordSize)
		}
		start := len(rec)
		rec = append(rec, make([]byte, n)...)
		if _, err := io.ReadFull(r, rec[start:]); err != nil {
			return nil, err
		}
		if last {
			return rec, nil
		}
	}
}
