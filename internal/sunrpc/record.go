package sunrpc

import (
	"encoding/binary"
	"fmt"
	"io"

	"discfs/internal/bufpool"
)

// TCP record marking (RFC 5531 §11): each RPC message is sent as one or
// more fragments, each prefixed by a 4-byte header whose high bit marks
// the final fragment and whose low 31 bits carry the fragment length.

const (
	lastFragmentBit = 1 << 31
	// maxRecordSize bounds a reassembled record. The negotiated-transfer
	// data plane carries up to nfs.MaxTransferLimit (1 MiB) of READ/WRITE
	// payload per record; 4 MiB leaves room for headers, the secure
	// channel's AEAD overhead and multi-fragment peers while still
	// stopping hostile length fields from exhausting memory.
	maxRecordSize = 4 << 20
	// maxFragment is the largest fragment we emit: big enough that a
	// maximal record leaves in one fragment (one header, one Write).
	maxFragment = 1 << 20
)

// headerRoom is the zero prefix encoders reserve so writeFramed can
// patch the record-marking header in place and issue a single Write.
const headerRoom = 4

// writeRecord sends buf as one record, fragmenting as needed. Header and
// payload go out in a single Write: on high-latency transports the extra
// segment for a separate 4-byte header measurably inflates RPC times.
func writeRecord(w io.Writer, buf []byte) error {
	if len(buf) <= maxFragment {
		msg := bufpool.Get(4 + len(buf))
		binary.BigEndian.PutUint32(msg, uint32(len(buf))|lastFragmentBit)
		copy(msg[4:], buf)
		_, err := w.Write(msg)
		bufpool.Put(msg)
		return err
	}
	return writeFragmented(w, buf)
}

// writeFramed sends msg — whose first headerRoom bytes are reserved
// header space and whose remainder is the record — patching the header
// in place so a single-fragment record costs no copy at all.
func writeFramed(w io.Writer, msg []byte) error {
	rec := msg[headerRoom:]
	if len(rec) <= maxFragment {
		binary.BigEndian.PutUint32(msg, uint32(len(rec))|lastFragmentBit)
		_, err := w.Write(msg)
		return err
	}
	return writeFragmented(w, rec)
}

// writeFragmented is the multi-fragment slow path.
func writeFragmented(w io.Writer, buf []byte) error {
	var hdr [4]byte
	for {
		n := len(buf)
		last := true
		if n > maxFragment {
			n = maxFragment
			last = false
		}
		v := uint32(n)
		if last {
			v |= lastFragmentBit
		}
		binary.BigEndian.PutUint32(hdr[:], v)
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := w.Write(buf[:n]); err != nil {
			return err
		}
		buf = buf[n:]
		if last {
			return nil
		}
	}
}

// readRecord reassembles one record from r. The returned buffer comes
// from bufpool; ownership passes to the caller (the server returns it
// after dispatch, the client hands it to the reply's consumer).
//
// The record buffer is preallocated from the first fragment's length
// hint — the common single-fragment record is read straight into a
// right-sized buffer — and grows geometrically for multi-fragment
// records instead of reallocating per fragment.
func readRecord(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	var rec []byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if rec != nil && err == io.EOF {
				err = io.ErrUnexpectedEOF // EOF mid-record is a truncation
			}
			bufpool.Put(rec)
			return nil, err
		}
		v := binary.BigEndian.Uint32(hdr[:])
		last := v&lastFragmentBit != 0
		n := int(v &^ lastFragmentBit)
		if n > maxRecordSize || len(rec)+n > maxRecordSize {
			bufpool.Put(rec)
			return nil, fmt.Errorf("sunrpc: record exceeds %d bytes", maxRecordSize)
		}
		start := len(rec)
		if rec == nil {
			rec = bufpool.Get(n)
		} else {
			rec = bufpool.Grow(rec, start+n)
		}
		if _, err := io.ReadFull(r, rec[start:]); err != nil {
			bufpool.Put(rec)
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return nil, err
		}
		if last {
			return rec, nil
		}
	}
}
