package sunrpc

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"discfs/internal/bufpool"
	"discfs/internal/xdr"
)

// Client is a concurrent ONC RPC client over a single connection.
// Multiple goroutines may issue calls; replies are matched by xid.
type Client struct {
	conn io.ReadWriteCloser

	wmu  sync.Mutex // serializes record writes
	mu   sync.Mutex // guards xid, pending, err, obs
	xid  uint32
	pend map[uint32]chan clientReply
	err  error // sticky connection failure
	obs  func(d time.Duration, err error)
}

type clientReply struct {
	data []byte
	err  error
}

// NewClient wraps an established connection (plain TCP or a secure
// channel) and starts the reply reader.
func NewClient(conn io.ReadWriteCloser) *Client {
	c := &Client{
		conn: conn,
		xid:  1,
		pend: make(map[uint32]chan clientReply),
	}
	go c.readLoop()
	return c
}

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// Broken reports whether the connection has failed: once the read loop
// or a write poisons the client, every further call returns the sticky
// error, so the owner should redial rather than retry.
func (c *Client) Broken() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// Fail poisons the client: the connection is closed and every current
// and future call fails with err. Owners use it when a redial learns
// the link can never come back (the server refused the handshake for a
// revoked identity), so callers see the cause rather than the stale
// transport error of the cut connection. Unlike internal poisoning,
// Fail overrides an earlier sticky error.
func (c *Client) Fail(err error) {
	c.mu.Lock()
	c.err = err
	for xid, ch := range c.pend {
		delete(c.pend, xid)
		ch <- clientReply{err: err}
	}
	c.mu.Unlock()
	c.conn.Close()
}

// SetObserver installs a per-call hook invoked with each call's
// duration and outcome (nil on success). Used for per-connection
// request/latency metrics; pass nil to disable.
func (c *Client) SetObserver(obs func(d time.Duration, err error)) {
	c.mu.Lock()
	c.obs = obs
	c.mu.Unlock()
}

func (c *Client) observe(start time.Time, err error) {
	c.mu.Lock()
	obs := c.obs
	c.mu.Unlock()
	if obs != nil {
		obs(time.Since(start), err)
	}
}

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		rec, err := readRecord(br)
		if err != nil {
			c.failAll(err)
			return
		}
		d := xdr.NewDecoder(rec)
		xid := d.Uint32()
		c.mu.Lock()
		ch, ok := c.pend[xid]
		if ok {
			delete(c.pend, xid)
		}
		c.mu.Unlock()
		if ok {
			// Ownership of the pooled record passes to the caller with
			// the reply (see Call).
			ch <- clientReply{data: rec}
		} else {
			bufpool.Put(rec) // late reply for an abandoned call
		}
	}
}

func (c *Client) failAll(err error) {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err == nil {
		// First failure wins: a Fail-installed cause is not clobbered by
		// the read loop observing the connection it just closed.
		c.err = err
	}
	for xid, ch := range c.pend {
		delete(c.pend, xid)
		ch <- clientReply{err: c.err}
	}
}

// Call invokes (prog, vers, proc) with pre-encoded args and returns a
// decoder positioned at the start of the results.
//
// The decoder's backing buffer is a pooled record whose ownership
// passes to the caller; data obtained from it (Opaque aliases) stays
// valid for as long as the caller keeps it.
//
// Call honors ctx: a canceled or expired context abandons the in-flight
// call immediately and returns ctx.Err(). The request may still execute
// on the server — cancellation releases the caller, it does not undo
// side effects already dispatched.
func (c *Client) Call(ctx context.Context, prog, vers, proc uint32, args []byte) (*xdr.Decoder, error) {
	return c.CallAppend(ctx, prog, vers, proc, len(args), func(e *xdr.Encoder) {
		e.OpaqueFixed(args)
	})
}

// CallAppend is Call with the procedure arguments encoded directly into
// the outgoing record by encodeArgs — the append-free path for bulk
// payloads (a WRITE's data is copied exactly once, into the wire
// record). sizeHint presizes the record buffer (0 is fine).
func (c *Client) CallAppend(ctx context.Context, prog, vers, proc uint32, sizeHint int, encodeArgs func(*xdr.Encoder)) (*xdr.Decoder, error) {
	start := time.Now()
	d, err := c.callAppend(ctx, prog, vers, proc, sizeHint, encodeArgs)
	c.observe(start, err)
	return d, err
}

func (c *Client) callAppend(ctx context.Context, prog, vers, proc uint32, sizeHint int, encodeArgs func(*xdr.Encoder)) (*xdr.Decoder, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	xid := c.xid
	c.xid++
	ch := make(chan clientReply, 1)
	c.pend[xid] = ch
	c.mu.Unlock()

	e := xdr.NewEncoderWith(bufpool.Get(headerRoom + 64 + sizeHint))
	e.Reserve(headerRoom) // record-marking header, patched by writeFramed
	encodeCall(e, callHeader{
		Xid:  xid,
		Prog: prog,
		Vers: vers,
		Proc: proc,
		Cred: OpaqueAuth{Flavor: AuthNone},
		Verf: OpaqueAuth{Flavor: AuthNone},
	})
	encodeArgs(e)

	msg := e.Bytes()
	err := c.writeCancelable(ctx, msg)
	bufpool.Put(msg)
	if err != nil {
		c.mu.Lock()
		delete(c.pend, xid)
		c.mu.Unlock()
		return nil, err
	}

	select {
	case rep := <-ch:
		if rep.err != nil {
			return nil, rep.err
		}
		d, err := decodeReply(rep.data)
		if err != nil {
			bufpool.Put(rep.data) // envelope-level failure: nothing aliases it
		}
		return d, err
	case <-ctx.Done():
		// Unregister so a late reply is dropped; the buffered channel
		// keeps the reader from blocking if it already claimed the entry.
		c.mu.Lock()
		delete(c.pend, xid)
		c.mu.Unlock()
		return nil, ctx.Err()
	}
}

// writeDeadliner is satisfied by transports whose blocked writes can be
// interrupted (net.Conn, secchan.Conn).
type writeDeadliner interface {
	SetWriteDeadline(t time.Time) error
}

// writeCancelable sends one framed record (headerRoom-prefixed) under
// wmu. When the transport supports write deadlines, a context that
// expires mid-write forces the blocked write to fail instead of wedging
// the caller (and everyone queued on wmu) forever; the interrupted
// record leaves the connection mid-frame, so the resulting transport
// error poisons it for all callers — the correct outcome for an
// undeliverable request.
func (c *Client) writeCancelable(ctx context.Context, rec []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	wd, ok := c.conn.(writeDeadliner)
	if ok && ctx.Done() != nil {
		// context.AfterFunc avoids a goroutine per call; the poisoned
		// channel joins a callback that already started, so a late poison
		// cannot land on the shared connection after the deadline reset.
		poisoned := make(chan struct{})
		stop := context.AfterFunc(ctx, func() {
			_ = wd.SetWriteDeadline(time.Unix(1, 0))
			close(poisoned)
		})
		defer func() {
			if !stop() {
				<-poisoned
			}
			_ = wd.SetWriteDeadline(time.Time{})
		}()
	}
	err := writeFramed(c.conn, rec)
	if err != nil && ctx.Err() != nil {
		// The record may be half-sent; close so the read loop fails every
		// pending call instead of desynchronizing on the next frame.
		c.conn.Close()
		return ctx.Err()
	}
	return err
}

// decodeReply validates the RPC reply envelope and returns a decoder over
// the procedure results.
func decodeReply(rec []byte) (*xdr.Decoder, error) {
	d := xdr.NewDecoder(rec)
	_ = d.Uint32() // xid, already matched
	if mt := d.Uint32(); mt != msgTypeReply {
		return nil, fmt.Errorf("sunrpc: message type %d is not a reply", mt)
	}
	switch stat := d.Uint32(); stat {
	case replyStatAccepted:
		_ = decodeAuth(d) // verf
		astat := AcceptStat(d.Uint32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if astat != Success {
			return nil, &RPCError{Stat: astat}
		}
		return d, nil
	case replyStatDenied:
		reason := d.Uint32()
		if d.Err() != nil {
			return nil, d.Err()
		}
		switch reason {
		case rejectRPCMismatch:
			return nil, fmt.Errorf("%w: rpc version mismatch", ErrDenied)
		case rejectAuthError:
			return nil, fmt.Errorf("%w: authentication error", ErrDenied)
		}
		return nil, fmt.Errorf("%w: reason %d", ErrDenied, reason)
	default:
		return nil, errors.New("sunrpc: bad reply status")
	}
}
