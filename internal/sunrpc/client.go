package sunrpc

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sync"

	"discfs/internal/xdr"
)

// Client is a concurrent ONC RPC client over a single connection.
// Multiple goroutines may issue calls; replies are matched by xid.
type Client struct {
	conn io.ReadWriteCloser

	wmu  sync.Mutex // serializes record writes
	mu   sync.Mutex // guards xid, pending, err
	xid  uint32
	pend map[uint32]chan clientReply
	err  error // sticky connection failure
}

type clientReply struct {
	data []byte
	err  error
}

// NewClient wraps an established connection (plain TCP or a secure
// channel) and starts the reply reader.
func NewClient(conn io.ReadWriteCloser) *Client {
	c := &Client{
		conn: conn,
		xid:  1,
		pend: make(map[uint32]chan clientReply),
	}
	go c.readLoop()
	return c
}

// Close tears down the connection; outstanding calls fail.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) readLoop() {
	br := bufio.NewReaderSize(c.conn, 64<<10)
	for {
		rec, err := readRecord(br)
		if err != nil {
			c.failAll(err)
			return
		}
		d := xdr.NewDecoder(rec)
		xid := d.Uint32()
		c.mu.Lock()
		ch, ok := c.pend[xid]
		if ok {
			delete(c.pend, xid)
		}
		c.mu.Unlock()
		if ok {
			ch <- clientReply{data: rec}
		}
	}
}

func (c *Client) failAll(err error) {
	if err == io.EOF {
		err = io.ErrUnexpectedEOF
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.err = err
	for xid, ch := range c.pend {
		delete(c.pend, xid)
		ch <- clientReply{err: err}
	}
}

// Call invokes (prog, vers, proc) with pre-encoded args and returns a
// decoder positioned at the start of the results.
func (c *Client) Call(prog, vers, proc uint32, args []byte) (*xdr.Decoder, error) {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	xid := c.xid
	c.xid++
	ch := make(chan clientReply, 1)
	c.pend[xid] = ch
	c.mu.Unlock()

	e := xdr.NewEncoder()
	encodeCall(e, callHeader{
		Xid:  xid,
		Prog: prog,
		Vers: vers,
		Proc: proc,
		Cred: OpaqueAuth{Flavor: AuthNone},
		Verf: OpaqueAuth{Flavor: AuthNone},
	}, args)

	c.wmu.Lock()
	err := writeRecord(c.conn, e.Bytes())
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pend, xid)
		c.mu.Unlock()
		return nil, err
	}

	rep := <-ch
	if rep.err != nil {
		return nil, rep.err
	}
	return decodeReply(rep.data)
}

// decodeReply validates the RPC reply envelope and returns a decoder over
// the procedure results.
func decodeReply(rec []byte) (*xdr.Decoder, error) {
	d := xdr.NewDecoder(rec)
	_ = d.Uint32() // xid, already matched
	if mt := d.Uint32(); mt != msgTypeReply {
		return nil, fmt.Errorf("sunrpc: message type %d is not a reply", mt)
	}
	switch stat := d.Uint32(); stat {
	case replyStatAccepted:
		_ = decodeAuth(d) // verf
		astat := AcceptStat(d.Uint32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		if astat != Success {
			return nil, &RPCError{Stat: astat}
		}
		return d, nil
	case replyStatDenied:
		reason := d.Uint32()
		if d.Err() != nil {
			return nil, d.Err()
		}
		switch reason {
		case rejectRPCMismatch:
			return nil, fmt.Errorf("%w: rpc version mismatch", ErrDenied)
		case rejectAuthError:
			return nil, fmt.Errorf("%w: authentication error", ErrDenied)
		}
		return nil, fmt.Errorf("%w: reason %d", ErrDenied, reason)
	default:
		return nil, errors.New("sunrpc: bad reply status")
	}
}
