package sunrpc

import (
	"bufio"
	"errors"
	"io"
	"log"
	"net"
	"sync"

	"discfs/internal/bufpool"
	"discfs/internal/xdr"
)

// PeerIdentifier is implemented by transports that authenticate the
// remote end (the secure channel). When a server connection implements
// it, handlers receive the peer identity in the call Context.
type PeerIdentifier interface {
	PeerID() string
}

// Context carries per-call transport information to procedure handlers.
type Context struct {
	// Peer is the authenticated identity of the caller ("" over plain
	// TCP). For DisCFS this is the client's canonical principal.
	Peer string
	// RemoteAddr is the transport address of the caller.
	RemoteAddr net.Addr
}

// Handler executes one procedure. It decodes arguments from args and
// encodes results into res. Returning a non-Success status discards res
// and reports the status to the caller; returning an error produces
// SystemErr.
//
// Buffer contract: the args decoder's backing record is pooled and
// recycled as soon as the handler returns — a handler that retains any
// decoded bytes (an Opaque alias) past its return must copy them. res
// writes directly into the reply record, so results are encoded exactly
// once.
type Handler func(ctx *Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (AcceptStat, error)

// progVers keys the dispatch table.
type progVers struct {
	prog, vers uint32
}

// Server is an ONC RPC server multiplexing any number of programs over
// one listener.
type Server struct {
	mu       sync.RWMutex
	handlers map[progVers]Handler
	versions map[uint32][2]uint32 // prog -> [low, high] for ProgMismatch replies
	// Logf, if set, receives per-connection error diagnostics.
	Logf func(format string, args ...any)

	// sem bounds concurrently executing procedure calls across all
	// connections; nil means unbounded.
	sem chan struct{}

	wg        sync.WaitGroup
	lnMu      sync.Mutex
	listeners []net.Listener
	closed    bool
}

// A ServerOption configures NewServer.
type ServerOption func(*Server)

// DefaultMaxInFlight is the default bound on concurrently executing
// procedure calls. Pipelined clients each spawn a goroutine per call;
// without a bound a flood of calls (or a stress test) can exhaust
// memory with parked handler goroutines.
const DefaultMaxInFlight = 1024

// maxPerConnPipeline bounds the records a single connection may have in
// flight (executing or awaiting their reply write). It keeps one client
// that stops reading replies from parking unbounded goroutines, without
// letting it pin the server-wide execution semaphore.
const maxPerConnPipeline = 256

// WithMaxInFlight bounds the number of procedure calls executing
// concurrently across all connections; further records queue in the
// per-connection read loops (natural backpressure on the transport).
// The slot is held only while the handler runs — not across the reply
// write — so a stalled reader cannot starve other connections.
// n <= 0 removes the bound.
func WithMaxInFlight(n int) ServerOption {
	return func(s *Server) {
		if n <= 0 {
			s.sem = nil
			return
		}
		s.sem = make(chan struct{}, n)
	}
}

// NewServer returns an empty server with the default in-flight bound.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		handlers: make(map[progVers]Handler),
		versions: make(map[uint32][2]uint32),
		sem:      make(chan struct{}, DefaultMaxInFlight),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Register installs a handler for (prog, vers).
func (s *Server) Register(prog, vers uint32, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[progVers{prog, vers}] = h
	lo, hi := vers, vers
	if v, ok := s.versions[prog]; ok {
		lo, hi = v[0], v[1]
		if vers < lo {
			lo = vers
		}
		if vers > hi {
			hi = vers
		}
	}
	s.versions[prog] = [2]uint32{lo, hi}
}

// Serve accepts connections from ln until Close. It blocks. A server
// may serve several listeners concurrently (e.g. a secure channel and a
// plain TCP endpoint).
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return errors.New("sunrpc: server closed")
	}
	s.listeners = append(s.listeners, ln)
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.lnMu.Lock()
			closed := s.closed
			s.lnMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops every listener and waits for in-flight connections.
func (s *Server) Close() error {
	s.lnMu.Lock()
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	s.lnMu.Unlock()
	var err error
	for _, ln := range lns {
		if e := ln.Close(); e != nil && err == nil {
			err = e
		}
	}
	s.wg.Wait()
	return err
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ServeConn processes RPC calls from a single connection until EOF.
// Exported so transports that perform their own accept loop (the secure
// channel listener) can hand connections to the RPC layer.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	ctx := &Context{RemoteAddr: conn.RemoteAddr()}
	if pi, ok := conn.(PeerIdentifier); ok {
		ctx.Peer = pi.PeerID()
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var wmu sync.Mutex // replies may be written from concurrent handlers
	connSem := make(chan struct{}, maxPerConnPipeline)
	for {
		rec, err := readRecord(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("sunrpc: read: %v", err)
			}
			return
		}
		// NFS clients pipeline requests; serve each call in its own
		// goroutine so a slow operation does not stall the connection.
		// Two bounds apply backpressure by blocking this read loop: the
		// per-connection pipeline cap (so a client that stops reading
		// replies parks a bounded number of goroutines) and the
		// server-wide execution semaphore (held only while the handler
		// runs, so a stalled connection cannot starve the others).
		connSem <- struct{}{}
		if s.sem != nil {
			s.sem <- struct{}{}
		}
		s.wg.Add(1)
		go func(rec []byte) {
			defer s.wg.Done()
			defer func() { <-connSem }()
			reply, err := s.dispatch(ctx, rec)
			bufpool.Put(rec) // handlers must not retain args past dispatch
			if s.sem != nil {
				<-s.sem // before the reply write, which may block
			}
			if err != nil {
				s.logf("sunrpc: dispatch: %v", err)
				return // undecodable call: drop it
			}
			wmu.Lock()
			werr := writeFramed(conn, reply)
			wmu.Unlock()
			bufpool.Put(reply)
			if werr != nil {
				s.logf("sunrpc: write: %v", werr)
			}
		}(rec)
	}
}

// dispatch decodes one call record and produces the encoded reply
// record: a pooled, headerRoom-prefixed buffer ready for writeFramed,
// with the procedure results encoded in place (no copy from a side
// encoder). Ownership of the reply buffer passes to the caller.
func (s *Server) dispatch(ctx *Context, rec []byte) ([]byte, error) {
	d := xdr.NewDecoder(rec)
	xid := d.Uint32()
	mtype := d.Uint32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if mtype != msgTypeCall {
		return nil, errors.New("not a call message")
	}
	rpcvers := d.Uint32()
	prog := d.Uint32()
	vers := d.Uint32()
	proc := d.Uint32()
	_ = decodeAuth(d) // cred: transport handles authentication
	_ = decodeAuth(d) // verf
	if d.Err() != nil {
		return nil, d.Err()
	}

	e := xdr.NewEncoderWith(bufpool.Get(512))
	e.Reserve(headerRoom) // record-marking header, patched by writeFramed
	e.Uint32(xid)
	e.Uint32(msgTypeReply)
	if rpcvers != rpcVersion {
		e.Uint32(replyStatDenied)
		e.Uint32(rejectRPCMismatch)
		e.Uint32(rpcVersion) // low
		e.Uint32(rpcVersion) // high
		return e.Bytes(), nil
	}
	e.Uint32(replyStatAccepted)
	OpaqueAuth{Flavor: AuthNone}.encode(e)

	s.mu.RLock()
	h, ok := s.handlers[progVers{prog, vers}]
	verRange, progKnown := s.versions[prog]
	s.mu.RUnlock()

	switch {
	case !progKnown:
		e.Uint32(uint32(ProgUnavail))
	case !ok:
		e.Uint32(uint32(ProgMismatch))
		e.Uint32(verRange[0])
		e.Uint32(verRange[1])
	default:
		// The accept stat precedes the results on the wire but is known
		// only after the handler runs: reserve it, let the handler encode
		// results in place, and patch it — rolling the body back if the
		// handler failed.
		statOff := e.Reserve(4)
		bodyOff := e.Len()
		stat, err := func() (stat AcceptStat, err error) {
			defer func() {
				if r := recover(); r != nil {
					log.Printf("sunrpc: handler panic: prog=%d proc=%d: %v", prog, proc, r)
					stat, err = SystemErr, nil
				}
			}()
			return h(ctx, proc, d, e)
		}()
		if err != nil {
			s.logf("sunrpc: handler error: prog=%d proc=%d: %v", prog, proc, err)
			stat = SystemErr
		}
		if stat != Success {
			e.Truncate(bodyOff) // discard any partial results
		}
		e.PatchUint32(statOff, uint32(stat))
	}
	return e.Bytes(), nil
}
