package sunrpc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"discfs/internal/bufpool"
	"discfs/internal/xdr"
)

// PeerIdentifier is implemented by transports that authenticate the
// remote end (the secure channel). When a server connection implements
// it, handlers receive the peer identity in the call Context.
type PeerIdentifier interface {
	PeerID() string
}

// Context carries per-call transport information to procedure handlers.
type Context struct {
	// Peer is the authenticated identity of the caller ("" over plain
	// TCP). For DisCFS this is the client's canonical principal.
	Peer string
	// RemoteAddr is the transport address of the caller.
	RemoteAddr net.Addr
}

// Handler executes one procedure. It decodes arguments from args and
// encodes results into res. Returning a non-Success status discards res
// and reports the status to the caller; returning an error produces
// SystemErr.
//
// Buffer contract: the args decoder's backing record is pooled and
// recycled as soon as the handler returns — a handler that retains any
// decoded bytes (an Opaque alias) past its return must copy them. res
// writes directly into the reply record, so results are encoded exactly
// once.
type Handler func(ctx *Context, proc uint32, args *xdr.Decoder, res *xdr.Encoder) (AcceptStat, error)

// progVers keys the dispatch table.
type progVers struct {
	prog, vers uint32
}

// Server is an ONC RPC server multiplexing any number of programs over
// one listener.
type Server struct {
	mu       sync.RWMutex
	handlers map[progVers]Handler
	versions map[uint32][2]uint32 // prog -> [low, high] for ProgMismatch replies
	// Logf, if set, receives per-connection error diagnostics.
	Logf func(format string, args ...any)

	// sem bounds concurrently executing procedure calls across all
	// connections; nil means unbounded.
	sem chan struct{}
	// semWait bounds how long a record waits for an execution slot when
	// the server is saturated before being refused with ServerBusy.
	semWait time.Duration

	wg        sync.WaitGroup
	lnMu      sync.Mutex
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	closed    bool

	// drainMu/draining fence dispatch during graceful drain: once set,
	// new records are answered ServerBusy without executing while
	// in-flight handlers (tracked by hwg) run to completion.
	drainMu  sync.Mutex
	draining bool
	hwg      sync.WaitGroup

	requests  atomic.Uint64
	queueFull atomic.Uint64
	busy      atomic.Uint64
	inflight  atomic.Int64
}

// Stats are cumulative server-side RPC transport counters.
type Stats struct {
	// Requests counts records received for dispatch.
	Requests uint64
	// QueueFull counts records that found the in-flight cap saturated
	// and had to wait for a slot (the backpressure signal).
	QueueFull uint64
	// Busy counts records refused with ServerBusy (saturation beyond
	// the bounded wait, or drain).
	Busy uint64
	// InFlight is the number of handlers executing right now.
	InFlight int64
}

// Stats samples the transport counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:  s.requests.Load(),
		QueueFull: s.queueFull.Load(),
		Busy:      s.busy.Load(),
		InFlight:  s.inflight.Load(),
	}
}

// A ServerOption configures NewServer.
type ServerOption func(*Server)

// DefaultMaxInFlight is the default bound on concurrently executing
// procedure calls. Pipelined clients each spawn a goroutine per call;
// without a bound a flood of calls (or a stress test) can exhaust
// memory with parked handler goroutines.
const DefaultMaxInFlight = 1024

// maxPerConnPipeline bounds the records a single connection may have in
// flight (executing or awaiting their reply write). It keeps one client
// that stops reading replies from parking unbounded goroutines, without
// letting it pin the server-wide execution semaphore.
const maxPerConnPipeline = 256

// DefaultQueueWait is the default bounded wait for an execution slot at
// saturation; beyond it the record is refused with ServerBusy so
// callers can tell backpressure from a hung server.
const DefaultQueueWait = time.Second

// WithQueueWait sets how long a record may wait for an execution slot
// when the in-flight cap is saturated before being refused with
// ServerBusy. d <= 0 refuses immediately at saturation.
func WithQueueWait(d time.Duration) ServerOption {
	return func(s *Server) { s.semWait = d }
}

// WithMaxInFlight bounds the number of procedure calls executing
// concurrently across all connections; further records queue in the
// per-connection read loops (natural backpressure on the transport).
// The slot is held only while the handler runs — not across the reply
// write — so a stalled reader cannot starve other connections.
// n <= 0 removes the bound.
func WithMaxInFlight(n int) ServerOption {
	return func(s *Server) {
		if n <= 0 {
			s.sem = nil
			return
		}
		s.sem = make(chan struct{}, n)
	}
}

// NewServer returns an empty server with the default in-flight bound.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		handlers: make(map[progVers]Handler),
		versions: make(map[uint32][2]uint32),
		sem:      make(chan struct{}, DefaultMaxInFlight),
		semWait:  DefaultQueueWait,
		conns:    make(map[net.Conn]struct{}),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s
}

// Register installs a handler for (prog, vers).
func (s *Server) Register(prog, vers uint32, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[progVers{prog, vers}] = h
	lo, hi := vers, vers
	if v, ok := s.versions[prog]; ok {
		lo, hi = v[0], v[1]
		if vers < lo {
			lo = vers
		}
		if vers > hi {
			hi = vers
		}
	}
	s.versions[prog] = [2]uint32{lo, hi}
}

// Serve accepts connections from ln until Close. It blocks. A server
// may serve several listeners concurrently (e.g. a secure channel and a
// plain TCP endpoint).
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return errors.New("sunrpc: server closed")
	}
	s.listeners = append(s.listeners, ln)
	s.lnMu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.lnMu.Lock()
			closed := s.closed
			s.lnMu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops every listener, cuts live connections, and waits for
// their handlers to wind down. It is the hard stop — connections are
// not drained (that is Drain's job), so a federated server whose peers
// hold long-lived feed connections into it still terminates.
func (s *Server) Close() error {
	s.lnMu.Lock()
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.lnMu.Unlock()
	var err error
	for _, ln := range lns {
		if e := ln.Close(); e != nil && err == nil {
			err = e
		}
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// ClosePeer closes every live connection whose transport identifies its
// peer (PeerIdentifier) as id, and returns how many it closed. The
// authorization layer uses it to cut a revoked principal's sessions the
// moment the revocation is applied, instead of waiting for the next
// call to fail its credential check.
func (s *Server) ClosePeer(id string) int {
	s.lnMu.Lock()
	var victims []net.Conn
	for conn := range s.conns {
		if pi, ok := conn.(PeerIdentifier); ok && pi.PeerID() == id {
			victims = append(victims, conn)
		}
	}
	s.lnMu.Unlock()
	for _, conn := range victims {
		conn.Close()
	}
	return len(victims)
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// ServeConn processes RPC calls from a single connection until EOF.
// Exported so transports that perform their own accept loop (the secure
// channel listener) can hand connections to the RPC layer.
func (s *Server) ServeConn(conn net.Conn) {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		conn.Close()
		return
	}
	if s.conns == nil {
		s.conns = make(map[net.Conn]struct{})
	}
	s.conns[conn] = struct{}{}
	s.lnMu.Unlock()
	defer func() {
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
		conn.Close()
	}()
	ctx := &Context{RemoteAddr: conn.RemoteAddr()}
	if pi, ok := conn.(PeerIdentifier); ok {
		ctx.Peer = pi.PeerID()
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	var wmu sync.Mutex // replies may be written from concurrent handlers
	connSem := make(chan struct{}, maxPerConnPipeline)
	for {
		rec, err := readRecord(br)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.logf("sunrpc: read: %v", err)
			}
			return
		}
		// NFS clients pipeline requests; serve each call in its own
		// goroutine so a slow operation does not stall the connection.
		// The per-connection pipeline cap bounds this read loop (so a
		// client that stops reading replies parks a bounded number of
		// goroutines); the server-wide execution semaphore is acquired
		// in the call goroutine with a bounded wait — a record that
		// cannot get a slot within semWait is refused with ServerBusy
		// instead of silently wedging the connection at saturation.
		connSem <- struct{}{}
		s.wg.Add(1)
		go func(rec []byte) {
			defer s.wg.Done()
			defer func() { <-connSem }()
			s.serveRecord(ctx, conn, &wmu, rec)
		}(rec)
	}
}

// serveRecord executes one call record: admission through the in-flight
// semaphore and the drain fence, dispatch, reply write. It owns rec.
func (s *Server) serveRecord(ctx *Context, conn net.Conn, wmu *sync.Mutex, rec []byte) {
	s.requests.Add(1)
	if s.sem != nil {
		select {
		case s.sem <- struct{}{}:
		default:
			// Saturated: count the event, then wait a bounded time for a
			// slot before refusing the call.
			s.queueFull.Add(1)
			if s.semWait <= 0 {
				s.refuseBusy(conn, wmu, rec)
				return
			}
			t := time.NewTimer(s.semWait)
			select {
			case s.sem <- struct{}{}:
				t.Stop()
			case <-t.C:
				s.refuseBusy(conn, wmu, rec)
				return
			}
		}
	}
	// The drain fence: in-flight handlers (hwg) run to completion and
	// deliver their replies; records arriving after the fence are
	// refused without executing.
	s.drainMu.Lock()
	if s.draining {
		s.drainMu.Unlock()
		if s.sem != nil {
			<-s.sem
		}
		s.refuseBusy(conn, wmu, rec)
		return
	}
	s.hwg.Add(1)
	s.drainMu.Unlock()

	s.inflight.Add(1)
	reply, err := s.dispatch(ctx, rec)
	s.inflight.Add(-1)
	bufpool.Put(rec) // handlers must not retain args past dispatch
	if s.sem != nil {
		<-s.sem // before the reply write, which may block
	}
	if err != nil {
		s.logf("sunrpc: dispatch: %v", err)
		s.hwg.Done()
		return // undecodable call: drop it
	}
	wmu.Lock()
	werr := writeFramed(conn, reply)
	wmu.Unlock()
	bufpool.Put(reply)
	s.hwg.Done() // after the reply write: drain waits for delivery too
	if werr != nil {
		s.logf("sunrpc: write: %v", werr)
	}
}

// refuseBusy answers rec with an accepted reply carrying ServerBusy,
// consuming rec.
func (s *Server) refuseBusy(conn net.Conn, wmu *sync.Mutex, rec []byte) {
	s.busy.Add(1)
	if len(rec) < 8 || binary.BigEndian.Uint32(rec[4:8]) != msgTypeCall {
		bufpool.Put(rec)
		return // not a call: nothing sensible to answer
	}
	xid := binary.BigEndian.Uint32(rec[:4])
	bufpool.Put(rec)
	e := xdr.NewEncoderWith(bufpool.Get(64))
	e.Reserve(headerRoom)
	e.Uint32(xid)
	e.Uint32(msgTypeReply)
	e.Uint32(replyStatAccepted)
	OpaqueAuth{Flavor: AuthNone}.encode(e)
	e.Uint32(uint32(ServerBusy))
	reply := e.Bytes()
	wmu.Lock()
	werr := writeFramed(conn, reply)
	wmu.Unlock()
	bufpool.Put(reply)
	if werr != nil {
		s.logf("sunrpc: write: %v", werr)
	}
}

// Drain gracefully shuts the server down: listeners close (no new
// connections), new records are refused with ServerBusy, and in-flight
// handlers run to completion — including their reply writes — before
// remaining connections are torn down. If the in-flight calls do not
// finish within timeout, connections are cut anyway and an error is
// returned; handler goroutines still running are abandoned (the caller
// is exiting).
func (s *Server) Drain(timeout time.Duration) error {
	s.lnMu.Lock()
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	s.lnMu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}

	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	done := make(chan struct{})
	go func() {
		s.hwg.Wait()
		close(done)
	}()
	var forced bool
	select {
	case <-done:
	case <-time.After(timeout):
		forced = true
	}

	s.lnMu.Lock()
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.lnMu.Unlock()
	for _, c := range conns {
		c.Close()
	}
	if forced {
		return fmt.Errorf("sunrpc: drain deadline (%v) exceeded with %d calls in flight", timeout, s.inflight.Load())
	}
	s.wg.Wait()
	return nil
}

// dispatch decodes one call record and produces the encoded reply
// record: a pooled, headerRoom-prefixed buffer ready for writeFramed,
// with the procedure results encoded in place (no copy from a side
// encoder). Ownership of the reply buffer passes to the caller.
func (s *Server) dispatch(ctx *Context, rec []byte) ([]byte, error) {
	d := xdr.NewDecoder(rec)
	xid := d.Uint32()
	mtype := d.Uint32()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if mtype != msgTypeCall {
		return nil, errors.New("not a call message")
	}
	rpcvers := d.Uint32()
	prog := d.Uint32()
	vers := d.Uint32()
	proc := d.Uint32()
	_ = decodeAuth(d) // cred: transport handles authentication
	_ = decodeAuth(d) // verf
	if d.Err() != nil {
		return nil, d.Err()
	}

	e := xdr.NewEncoderWith(bufpool.Get(512))
	e.Reserve(headerRoom) // record-marking header, patched by writeFramed
	e.Uint32(xid)
	e.Uint32(msgTypeReply)
	if rpcvers != rpcVersion {
		e.Uint32(replyStatDenied)
		e.Uint32(rejectRPCMismatch)
		e.Uint32(rpcVersion) // low
		e.Uint32(rpcVersion) // high
		return e.Bytes(), nil
	}
	e.Uint32(replyStatAccepted)
	OpaqueAuth{Flavor: AuthNone}.encode(e)

	s.mu.RLock()
	h, ok := s.handlers[progVers{prog, vers}]
	verRange, progKnown := s.versions[prog]
	s.mu.RUnlock()

	switch {
	case !progKnown:
		e.Uint32(uint32(ProgUnavail))
	case !ok:
		e.Uint32(uint32(ProgMismatch))
		e.Uint32(verRange[0])
		e.Uint32(verRange[1])
	default:
		// The accept stat precedes the results on the wire but is known
		// only after the handler runs: reserve it, let the handler encode
		// results in place, and patch it — rolling the body back if the
		// handler failed.
		statOff := e.Reserve(4)
		bodyOff := e.Len()
		stat, err := func() (stat AcceptStat, err error) {
			defer func() {
				if r := recover(); r != nil {
					log.Printf("sunrpc: handler panic: prog=%d proc=%d: %v", prog, proc, r)
					stat, err = SystemErr, nil
				}
			}()
			return h(ctx, proc, d, e)
		}()
		if err != nil {
			s.logf("sunrpc: handler error: prog=%d proc=%d: %v", prog, proc, err)
			stat = SystemErr
		}
		if stat != Success {
			e.Truncate(bodyOff) // discard any partial results
		}
		e.PatchUint32(statOff, uint32(stat))
	}
	return e.Bytes(), nil
}
