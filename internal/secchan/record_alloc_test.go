package secchan

import (
	"bufio"
	"bytes"
	"io"
	"net"
	"testing"
)

// sinkConn satisfies net.Conn for tests that only exercise Write.
type sinkConn struct {
	net.Conn
	w io.Writer
}

func (s sinkConn) Write(p []byte) (int, error) { return s.w.Write(p) }

// recordPair wires a writing Conn to a reading Conn through an
// in-memory buffer, sharing one traffic key — just the record layer, no
// handshake.
func recordPair(t testing.TB) (*Conn, *Conn, *bytes.Buffer) {
	t.Helper()
	key := bytes.Repeat([]byte{0x42}, 32)
	wa, err := newAEAD(key)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := newAEAD(key)
	if err != nil {
		t.Fatal(err)
	}
	var pipe bytes.Buffer
	wc := &Conn{raw: sinkConn{w: &pipe}, waead: wa, wkey: key}
	rc := &Conn{br: bufio.NewReaderSize(&pipe, 64<<10), raead: ra, rkey: key}
	return wc, rc, &pipe
}

// TestRecordLayerAllocs is the allocation guard for the data plane's
// crypto hop: sealing reuses the connection's wbuf and opening decrypts
// in place in the retained rawbuf, so a steady-state record round trip
// must not allocate per-record buffers (the small constant covers the
// GCM interface call's nonce/AAD escapes).
func TestRecordLayerAllocs(t *testing.T) {
	wc, rc, _ := recordPair(t)
	payload := make([]byte, 256<<10)
	out := make([]byte, len(payload))

	roundTrip := func() {
		if _, err := wc.Write(payload); err != nil {
			t.Fatal(err)
		}
		for n := 0; n < len(payload); {
			m, err := rc.Read(out[n:])
			if err != nil {
				t.Fatal(err)
			}
			n += m
		}
	}
	roundTrip() // warm: sizes wbuf and rawbuf

	allocs := testing.AllocsPerRun(50, roundTrip)
	if allocs > 8 {
		t.Errorf("record round trip allocates %.1f objects/op; the seal/open buffers must be reused", allocs)
	}
}

// TestRecordLayerLargeRecord: a maximal record (1 MiB class) round-trips
// through one seal/open.
func TestRecordLayerLargeRecord(t *testing.T) {
	wc, rc, _ := recordPair(t)
	payload := make([]byte, maxRecord)
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	if _, err := wc.Write(payload); err != nil {
		t.Fatal(err)
	}
	if wc.wseq != 1 {
		t.Fatalf("payload of %d split into %d records, want 1", len(payload), wc.wseq)
	}
	got := make([]byte, len(payload))
	if _, err := io.ReadFull(readerOnly{rc}, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("large record corrupted")
	}
}

// readerOnly adapts a Conn to io.Reader without exposing net.Conn.
type readerOnly struct{ c *Conn }

func (r readerOnly) Read(p []byte) (int, error) { return r.c.Read(p) }

func BenchmarkRecordRoundTrip(b *testing.B) {
	wc, rc, _ := recordPair(b)
	payload := make([]byte, 512<<10)
	out := make([]byte, len(payload))
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := wc.Write(payload); err != nil {
			b.Fatal(err)
		}
		for n := 0; n < len(payload); {
			m, err := rc.Read(out[n:])
			if err != nil {
				b.Fatal(err)
			}
			n += m
		}
	}
}
