package secchan

import (
	"bytes"
	"crypto/ed25519"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"discfs/internal/keynote"
)

// pipePair runs both handshake ends over an in-memory duplex pipe.
func pipePair(t *testing.T, serverCfg, clientCfg Config) (client, server *Conn) {
	t.Helper()
	cRaw, sRaw := net.Pipe()
	var wg sync.WaitGroup
	var sErr, cErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		server, sErr = Server(sRaw, serverCfg)
	}()
	go func() {
		defer wg.Done()
		client, cErr = Client(cRaw, clientCfg)
	}()
	wg.Wait()
	if sErr != nil || cErr != nil {
		t.Fatalf("handshake: server=%v client=%v", sErr, cErr)
	}
	t.Cleanup(func() {
		client.Close()
		server.Close()
	})
	return client, server
}

func TestHandshakeExchangesIdentities(t *testing.T) {
	serverKey := keynote.DeterministicKey("server")
	clientKey := keynote.DeterministicKey("client")
	client, server := pipePair(t,
		Config{Identity: serverKey}, Config{Identity: clientKey})
	if server.Peer() != clientKey.Principal {
		t.Errorf("server sees peer %s, want client", server.Peer().Short())
	}
	if client.Peer() != serverKey.Principal {
		t.Errorf("client sees peer %s, want server", client.Peer().Short())
	}
	if server.PeerID() != string(clientKey.Principal) {
		t.Error("PeerID mismatch")
	}
}

func TestBidirectionalTransfer(t *testing.T) {
	client, server := pipePair(t,
		Config{Identity: keynote.DeterministicKey("s")},
		Config{Identity: keynote.DeterministicKey("c")})

	msg1 := []byte("hello from client")
	msg2 := []byte("hello from server")
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		client.Write(msg1)
		buf := make([]byte, len(msg2))
		if _, err := io.ReadFull(client, buf); err != nil || !bytes.Equal(buf, msg2) {
			t.Errorf("client read %q, %v", buf, err)
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]byte, len(msg1))
		if _, err := io.ReadFull(server, buf); err != nil || !bytes.Equal(buf, msg1) {
			t.Errorf("server read %q, %v", buf, err)
		}
		server.Write(msg2)
	}()
	wg.Wait()
}

func TestLargeTransferFragmentsIntoRecords(t *testing.T) {
	client, server := pipePair(t,
		Config{Identity: keynote.DeterministicKey("s")},
		Config{Identity: keynote.DeterministicKey("c")})
	data := make([]byte, 3*maxRecord+777)
	for i := range data {
		data[i] = byte(i * 13)
	}
	go func() {
		client.Write(data)
	}()
	got := make([]byte, len(data))
	if _, err := io.ReadFull(server, got); err != nil {
		t.Fatalf("read: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("large transfer corrupted")
	}
}

func TestAuthorizeCallbackRejects(t *testing.T) {
	serverKey := keynote.DeterministicKey("server")
	badClient := keynote.DeterministicKey("bad-client")
	cRaw, sRaw := net.Pipe()
	defer cRaw.Close()
	defer sRaw.Close()
	var wg sync.WaitGroup
	var sErr, cErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, sErr = Server(sRaw, Config{
			Identity: serverKey,
			Authorize: func(p keynote.Principal) error {
				return fmt.Errorf("key %s is revoked", p.Short())
			},
		})
	}()
	go func() {
		defer wg.Done()
		_, cErr = Client(cRaw, Config{Identity: badClient})
	}()
	wg.Wait()
	if !errors.Is(sErr, ErrRejected) {
		t.Errorf("server err = %v, want ErrRejected", sErr)
	}
	// The verdict record delivers the rejection to the initiator too.
	if !errors.Is(cErr, ErrRejected) {
		t.Errorf("client err = %v, want ErrRejected", cErr)
	}
	if errors.Is(cErr, ErrKeyRevoked) {
		t.Errorf("client err = %v, must not claim revocation for a generic rejection", cErr)
	}
}

func TestAuthorizeRevokedReachesClient(t *testing.T) {
	serverKey := keynote.DeterministicKey("server")
	revoked := keynote.DeterministicKey("revoked-client")
	cRaw, sRaw := net.Pipe()
	defer cRaw.Close()
	defer sRaw.Close()
	var wg sync.WaitGroup
	var cErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		_, _ = Server(sRaw, Config{
			Identity:  serverKey,
			Authorize: func(p keynote.Principal) error { return ErrKeyRevoked },
		})
	}()
	go func() {
		defer wg.Done()
		_, cErr = Client(cRaw, Config{Identity: revoked})
	}()
	wg.Wait()
	if !errors.Is(cErr, ErrKeyRevoked) {
		t.Errorf("client err = %v, want ErrKeyRevoked", cErr)
	}
}

// tamperConn wraps a net.Conn and flips a byte in the nth written record
// payload, simulating an on-path attacker.
type tamperConn struct {
	net.Conn
	mu      sync.Mutex
	records int
	target  int
}

func (tc *tamperConn) Write(p []byte) (int, error) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	// Record writes arrive as header then body; count bodies by pairs.
	tc.records++
	if tc.records == tc.target && len(p) > 0 {
		q := make([]byte, len(p))
		copy(q, p)
		q[len(q)/2] ^= 0x40
		return tc.Conn.Write(q)
	}
	return tc.Conn.Write(p)
}

func TestTamperingDetected(t *testing.T) {
	cRaw, sRaw := net.Pipe()
	serverKey := keynote.DeterministicKey("s")
	clientKey := keynote.DeterministicKey("c")
	var server *Conn
	var sErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		server, sErr = Server(sRaw, Config{Identity: serverKey})
	}()
	// Handshake goes through untampered; tamper with the post-handshake
	// data record. Client writes: ClientHello header, ClientHello body,
	// ClientAuth record, then the data record = write #4.
	tc := &tamperConn{Conn: cRaw, target: 4}
	client, cErr := Client(tc, Config{Identity: clientKey})
	wg.Wait()
	if sErr != nil || cErr != nil {
		t.Fatalf("handshake: %v / %v", sErr, cErr)
	}
	defer client.Close()
	defer server.Close()

	go client.Write([]byte("this record will be corrupted in flight"))
	buf := make([]byte, 64)
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err := server.Read(buf)
	if !errors.Is(err, ErrRecord) {
		t.Errorf("read of tampered record = %v, want ErrRecord", err)
	}
}

// TestReplayDetected replays a captured record; the strict sequence
// numbering must reject it.
func TestReplayDetected(t *testing.T) {
	// Build a raw TCP pair so we can capture bytes.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	serverKey := keynote.DeterministicKey("s")
	clientKey := keynote.DeterministicKey("c")
	var server *Conn
	var sErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		raw, err := ln.Accept()
		if err != nil {
			sErr = err
			return
		}
		server, sErr = Server(raw, Config{Identity: serverKey})
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client, err := Client(raw, Config{Identity: clientKey})
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if sErr != nil {
		t.Fatal(sErr)
	}
	defer client.Close()
	defer server.Close()

	// Send one legitimate record and read it.
	if _, err := client.Write([]byte("legitimate")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 32)
	n, err := server.Read(buf)
	if err != nil || string(buf[:n]) != "legitimate" {
		t.Fatalf("first read: %q %v", buf[:n], err)
	}

	// Capture the ciphertext of a second record by re-encrypting… we
	// can't intercept the TCP stream post-hoc, so instead inject a
	// duplicate of a record we construct: write a record, then write the
	// very same ciphertext bytes again directly to the raw socket.
	c2 := client
	// Seal a record with the client's current sequence number manually.
	c2.wmu.Lock()
	seq := c2.wseq
	var aad [8]byte
	binary.BigEndian.PutUint64(aad[:], seq)
	ct := c2.waead.Seal(nil, sealNonce(seq), []byte("replayable"), aad[:])
	c2.wseq++
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(ct)))
	raw.Write(hdr[:])
	raw.Write(ct)
	// Replay the identical bytes: the server's receive sequence has
	// advanced, so authentication must fail.
	raw.Write(hdr[:])
	raw.Write(ct)
	c2.wmu.Unlock()

	n, err = server.Read(buf)
	if err != nil || string(buf[:n]) != "replayable" {
		t.Fatalf("original record: %q %v", buf[:n], err)
	}
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	_, err = server.Read(buf)
	if !errors.Is(err, ErrRecord) {
		t.Errorf("replayed record = %v, want ErrRecord", err)
	}
}

func TestServerImpersonationFails(t *testing.T) {
	// A MITM replaying the server hello with its own identity but
	// without the private key cannot produce a valid signature: here we
	// simply check that a wrong signature aborts the client.
	cRaw, sRaw := net.Pipe()
	defer cRaw.Close()
	defer sRaw.Close()
	go func() {
		// Fake server: reads ClientHello, replies with garbage signature.
		fields, err := readMsg(sRaw, msgClientHello, 3)
		if err != nil {
			return
		}
		_ = fields
		id := keynote.DeterministicKey("fake")
		pub := id.Signer().(ed25519.PrivateKey).Public().(ed25519.PublicKey)
		sig := make([]byte, ed25519.SignatureSize)
		eph := make([]byte, 32)
		nonce := make([]byte, nonceLen)
		writeMsg(sRaw, msgServerHello, eph, nonce, pub, sig)
	}()
	_, err := Client(cRaw, Config{Identity: keynote.DeterministicKey("c")})
	if !errors.Is(err, ErrHandshake) {
		t.Errorf("client err = %v, want ErrHandshake", err)
	}
}

func TestHandshakeGarbageRejected(t *testing.T) {
	cRaw, sRaw := net.Pipe()
	defer cRaw.Close()
	go func() {
		cRaw.Write([]byte{0, 0, 0, 5, 99, 1, 2, 3, 4}) // bogus message type
	}()
	_, err := Server(sRaw, Config{Identity: keynote.DeterministicKey("s"),
		HandshakeTimeout: 2 * time.Second})
	if err == nil {
		t.Error("garbage handshake accepted")
	}
	sRaw.Close()
}

func TestListenerSurvivesBadPeers(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sl := NewListener(ln, Config{Identity: keynote.DeterministicKey("s"),
		HandshakeTimeout: time.Second})
	defer sl.Close()

	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := sl.Accept()
		if err == nil {
			accepted <- conn
		}
	}()
	// First: a garbage peer that immediately disconnects.
	junk, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	junk.Write([]byte("not a handshake at all-------"))
	junk.Close()
	// Then a real client; the listener must still accept it.
	conn, err := Dial(ln.Addr().String(), Config{Identity: keynote.DeterministicKey("c")})
	if err != nil {
		t.Fatalf("Dial after junk peer: %v", err)
	}
	defer conn.Close()
	select {
	case sc := <-accepted:
		if sc.(*Conn).Peer() != keynote.DeterministicKey("c").Principal {
			t.Error("accepted wrong peer")
		}
		sc.Close()
	case <-time.After(5 * time.Second):
		t.Fatal("listener did not accept the good client")
	}
}

func TestHKDFProperties(t *testing.T) {
	// Deterministic, length-exact, and sensitive to every input.
	a := hkdf([]byte("secret"), []byte("salt"), "info", 64)
	b := hkdf([]byte("secret"), []byte("salt"), "info", 64)
	if !bytes.Equal(a, b) {
		t.Error("hkdf not deterministic")
	}
	if len(a) != 64 {
		t.Errorf("len = %d", len(a))
	}
	for _, alt := range [][]byte{
		hkdf([]byte("Secret"), []byte("salt"), "info", 64),
		hkdf([]byte("secret"), []byte("Salt"), "info", 64),
		hkdf([]byte("secret"), []byte("salt"), "Info", 64),
	} {
		if bytes.Equal(a, alt) {
			t.Error("hkdf ignores an input")
		}
	}
}

func TestQuickRecordRoundTrip(t *testing.T) {
	client, server := pipePair(t,
		Config{Identity: keynote.DeterministicKey("s")},
		Config{Identity: keynote.DeterministicKey("c")})
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		errc := make(chan error, 1)
		go func() {
			_, err := client.Write(payload)
			errc <- err
		}()
		got := make([]byte, len(payload))
		if _, err := io.ReadFull(server, got); err != nil {
			return false
		}
		if err := <-errc; err != nil {
			return false
		}
		return bytes.Equal(got, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// pipePairCfg is pipePair with full configs for both ends.
func pipePairCfg(t *testing.T, serverCfg, clientCfg Config) (client, server *Conn) {
	t.Helper()
	return pipePair(t, serverCfg, clientCfg)
}

// TestRekeyingTransfersAcrossSALifetimes pushes enough records through a
// channel with a tiny SA lifetime to force several key ratchets in both
// directions; data must survive and stay ordered.
func TestRekeyingTransfersAcrossSALifetimes(t *testing.T) {
	sCfg := Config{Identity: keynote.DeterministicKey("s"), RekeyRecords: 8}
	cCfg := Config{Identity: keynote.DeterministicKey("c"), RekeyRecords: 8}
	client, server := pipePairCfg(t, sCfg, cCfg)

	const rounds = 50 // >> 8: several ratchets
	go func() {
		for i := 0; i < rounds; i++ {
			msg := []byte{byte(i), byte(i >> 8)}
			if _, err := client.Write(msg); err != nil {
				return
			}
		}
	}()
	buf := make([]byte, 2)
	for i := 0; i < rounds; i++ {
		if _, err := io.ReadFull(server, buf); err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if buf[0] != byte(i) || buf[1] != byte(i>>8) {
			t.Fatalf("record %d corrupted after rekey: %v", i, buf)
		}
	}
	// And the reverse direction.
	go func() {
		for i := 0; i < rounds; i++ {
			server.Write([]byte{byte(i)})
		}
	}()
	one := make([]byte, 1)
	for i := 0; i < rounds; i++ {
		if _, err := io.ReadFull(client, one); err != nil {
			t.Fatalf("reverse read %d: %v", i, err)
		}
		if one[0] != byte(i) {
			t.Fatalf("reverse record %d corrupted: %v", i, one)
		}
	}
}

// TestRekeyMismatchBreaksChannel: ends configured with different SA
// lifetimes must fail authentication at the first boundary — a
// misconfiguration is detected, not silently accepted.
func TestRekeyMismatchBreaksChannel(t *testing.T) {
	sCfg := Config{Identity: keynote.DeterministicKey("s"), RekeyRecords: 4}
	cCfg := Config{Identity: keynote.DeterministicKey("c"), RekeyRecords: 1000000}
	client, server := pipePairCfg(t, sCfg, cCfg)

	go func() {
		// Write enough records to cross the server's boundary. The
		// server's read seq starts at 1 (ClientAuth was record 0). The
		// pipe is synchronous, so this goroutine blocks once the server
		// stops reading; the test cleanup closing the conns unblocks it.
		for i := 0; i < 10; i++ {
			if _, err := client.Write([]byte("x")); err != nil {
				return
			}
		}
	}()
	buf := make([]byte, 1)
	var err error
	server.SetReadDeadline(time.Now().Add(2 * time.Second))
	for i := 0; i < 10; i++ {
		if _, err = server.Read(buf); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrRecord) {
		t.Errorf("mismatched rekey config: err = %v, want ErrRecord", err)
	}
}

// TestRatchetIsOneWay: the ratcheted key differs and the old key cannot
// be recovered from the new one (we can only check difference and
// determinism here; one-wayness follows from HKDF).
func TestRatchetIsOneWay(t *testing.T) {
	k0 := []byte("0123456789abcdef0123456789abcdef")
	k1 := ratchet(k0)
	k1b := ratchet(k0)
	if !bytes.Equal(k1, k1b) {
		t.Error("ratchet not deterministic")
	}
	if bytes.Equal(k0, k1) {
		t.Error("ratchet returned the input key")
	}
	if len(k1) != 32 {
		t.Errorf("ratcheted key length %d", len(k1))
	}
	k2 := ratchet(k1)
	if bytes.Equal(k1, k2) {
		t.Error("second ratchet returned its input")
	}
}
